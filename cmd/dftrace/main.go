// dftrace is the pipeline observability tool: it compiles a pipe-structured
// Val program, runs it under the tracer on either executable model — the
// firing-rule simulator (default) or the cycle-accurate packet-level
// machine (-machine) — and reports every cell's achieved inter-firing
// interval against the analytic maximum-cycle-ratio prediction, together
// with a bottleneck verdict (unbalanced critical cycle vs saturated machine
// resource). With -trace it also writes a Chrome trace-event JSON file
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
//
// Usage:
//
//	dftrace [flags] program.val
//
// Flags:
//
//	-fill kind     input data: ramp | sin | const | alt (default ramp)
//	-machine       run on the packet-level machine
//	-pes/-fus/-ams machine shape (defaults 4/2/2)
//	-butterfly     use the butterfly routing network
//	-hotspot       pile every cell onto PE 0 (contention demo)
//	-place s       re-place cells (stage | random | hotspot | mincost |
//	               profile) and report a before/after contention verdict:
//	               the baseline assignment (-hotspot or the default) runs
//	               first, then the re-placed machine, and the final lines
//	               grade the delta ("contention: improved | unchanged |
//	               worse"). profile plans from the baseline run's metrics.
//	-todd          use Todd's for-iter scheme
//	-no-balance    skip balancing (see the unbalanced critical cycle)
//	-trace FILE    write Chrome trace-event JSON to FILE
//	-span FILE     write the run's span tree (job → placement.plan → run,
//	               with per-shard children on sharded runs) as JSON
//	-top n         rows in the per-cell rate table (default 12; 0 = all)
//	-events n      keep and print the last n raw events (default 0)
//	-summary       also print the raw metrics digest
//	-http ADDR     serve live telemetry (/metrics, /runs, /healthz, pprof)
//	-version       print version and build info, then exit
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"staticpipe/internal/buildinfo"
	"staticpipe/internal/core"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/machine"
	"staticpipe/internal/obs"
	"staticpipe/internal/place"
	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/trace"
	"staticpipe/internal/trace/analyze"
	"staticpipe/internal/value"
)

func main() {
	var (
		fill      = flag.String("fill", "ramp", "input data: ramp | sin | const | alt")
		useMach   = flag.Bool("machine", false, "run on the packet-level machine")
		pes       = flag.Int("pes", 4, "machine processing elements")
		fus       = flag.Int("fus", 2, "machine function units")
		ams       = flag.Int("ams", 2, "machine array memories")
		butterfly = flag.Bool("butterfly", false, "butterfly routing network")
		hotspot   = flag.Bool("hotspot", false, "place every compute cell on PE 0")
		placeMode = flag.String("place", "", "re-place cells (stage | random | hotspot | mincost | profile) and report the before/after contention delta")
		todd      = flag.Bool("todd", false, "Todd's for-iter scheme")
		noBal     = flag.Bool("no-balance", false, "skip balancing")
		traceOut  = flag.String("trace", "", "write Chrome trace-event JSON to this file")
		spanOut   = flag.String("span", "", "write the run's span tree as JSON to this file")
		top       = flag.Int("top", 12, "rows in the per-cell rate table (0 = all)")
		events    = flag.Int("events", 0, "keep and print the last n raw events")
		summary   = flag.Bool("summary", false, "print the raw metrics digest too")
		httpAddr  = flag.String("http", "", "serve live telemetry on this address (e.g. :9090)")
		version   = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dftrace " + buildinfo.String())
		return
	}

	src, err := readSource(flag.Args())
	if err != nil {
		fatal(err)
	}
	opts := core.Options{NoBalance: *noBal}
	if *todd {
		opts.ForIterScheme = foriter.Todd
	}

	var run *telemetry.Run
	if *httpAddr != "" {
		reg := telemetry.NewRegistry()
		srv, err := telemetry.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
		label := "stdin"
		if flag.NArg() > 0 {
			label = flag.Arg(0)
		}
		model := "exec"
		if *useMach {
			model = "machine"
		}
		run = reg.NewRun(label, model)
		opts.Progress = run.Progress()
	}

	metrics := trace.NewMetrics()
	tracers := trace.Multi{metrics}
	if run != nil {
		tracers = append(tracers, run.Tracer())
	}
	var ring *trace.Ring
	if *events > 0 {
		ring = trace.NewRing(*events)
		tracers = append(tracers, ring)
	}
	var chrome *trace.Chrome
	var traceFile *os.File
	if *traceOut != "" {
		traceFile, err = os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		chrome = trace.NewChrome(traceFile)
		tracers = append(tracers, chrome)
	}
	opts.Tracer = tracers

	var spanTree *obs.Tree
	var runSpan *obs.Span
	if *spanOut != "" {
		label := "stdin"
		if flag.NArg() > 0 {
			label = flag.Arg(0)
		}
		spanTree = obs.NewTree(obs.KindJob, label)
	}

	u, err := core.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	if run != nil {
		run.AddWarnings(u.Compiled.Warnings...)
	}
	inputs := map[string][]value.Value{}
	for _, in := range u.Checked.Inputs {
		inputs[in.Name] = progs.Synth(*fill, in.Len())
	}

	var ran *graph.Graph
	var baseline *analyze.Analysis
	if *useMach {
		if err := u.Compiled.SetInputs(inputs); err != nil {
			fatal(err)
		}
		cfg := machine.Config{PEs: *pes, FUs: *fus, AMs: *ams, Tracer: tracers}
		if run != nil {
			cfg.Progress = run.Progress()
		}
		if *butterfly {
			cfg.Network = machine.Butterfly
		}
		if *hotspot {
			cfg.Assign = machine.HotSpot
		}
		if *placeMode != "" {
			// Before/after verdict mode: run the baseline assignment with a
			// private metrics sink (the registered tracers see only the
			// re-placed run), then swap in the requested placement.
			baseMetrics := trace.NewMetrics()
			base := cfg
			base.Tracer = trace.Multi{baseMetrics}
			base.Progress = nil
			baseRes, err := machine.Run(u.Compiled.Graph, base)
			if err != nil {
				fatal(fmt.Errorf("placement baseline run: %w", err))
			}
			baseline, err = analyze.Analyze(baseRes.Graph, baseMetrics)
			if err != nil {
				fatal(err)
			}
			plSpan := spanTree.Root().Child(obs.KindPlacement, *placeMode)
			if err := replace(*placeMode, u.Compiled.Graph, &cfg, baseMetrics); err != nil {
				fatal(err)
			}
			plSpan.Set("pes", int64(cfg.PEs))
			plSpan.End()
		}
		if spanTree != nil {
			runSpan = spanTree.Root().Child(obs.KindRun, "machine")
			cfg.Ctx = obs.WithSpan(context.Background(), runSpan)
		}
		res, err := machine.Run(u.Compiled.Graph, cfg)
		if err != nil {
			fatal(err)
		}
		fmt.Print(machine.Describe(res))
		ran = res.Graph
	} else {
		var bind core.Binding
		if spanTree != nil {
			runSpan = spanTree.Root().Child(obs.KindRun, "exec")
			bind.Ctx = obs.WithSpan(context.Background(), runSpan)
		}
		res, err := u.Artifact().Run(bind, inputs)
		if err != nil {
			fatal(err)
		}
		for _, sink := range res.Exec.Graph.Sinks() {
			if len(sink.Label) >= 8 && sink.Label[:8] == "discard:" {
				continue
			}
			fmt.Printf("sink %q: %d values, II=%.3f over %d cycles\n",
				sink.Label, len(res.Exec.Outputs[sink.Label]), res.Exec.II(sink.Label), res.Exec.Cycles)
		}
		ran = res.Exec.Graph
	}

	if run != nil {
		run.Finish(nil)
	}
	if spanTree != nil {
		runSpan.End()
		spanTree.Root().End()
		if err := writeSpanFile(*spanOut, spanTree); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote span tree %s\n", *spanOut)
	}
	analysis, err := analyze.Analyze(ran, metrics)
	if err != nil {
		fatal(err)
	}
	fmt.Print(analysis.Render(*top))
	if baseline != nil {
		fmt.Print(analyze.RenderDelta(baseline, analysis))
	}
	if *summary {
		fmt.Print(metrics.Summary(*top))
	}
	if ring != nil {
		fmt.Printf("last %d of %d events:\n", len(ring.Events()), ring.Total())
		for _, e := range ring.Events() {
			fmt.Println("  " + ring.Meta().Format(e))
		}
	}
	if chrome != nil {
		if err := chrome.Close(); err != nil {
			fatal(err)
		}
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (open in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}

// replace resolves the -place flag into cfg's assignment. profile plans
// from the baseline run's metrics — the run the verdict compares against is
// exactly the profile the new mapping was derived from.
func replace(mode string, g *graph.Graph, cfg *machine.Config, baseMetrics *trace.Metrics) error {
	switch mode {
	case "stage":
		cfg.Assign = machine.ByStage
		cfg.Placement = nil
	case "random":
		cfg.Assign = machine.Random
		cfg.Placement = nil
	case "hotspot":
		cfg.Assign = machine.HotSpot
		cfg.Placement = nil
	case "mincost", "profile":
		opts := place.Options{PEs: cfg.PEs}
		if mode == "profile" {
			opts.Metrics = baseMetrics
		}
		pl, err := place.Plan(g, opts)
		if err != nil {
			return err
		}
		cfg.Assign = machine.Placed
		cfg.Placement = pl.PE
	default:
		return fmt.Errorf("unknown -place %q (want stage, random, hotspot, mincost or profile)", mode)
	}
	return nil
}

// writeSpanFile dumps the span tree snapshot as indented JSON.
func writeSpanFile(path string, t *obs.Tree) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t.Snapshot()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func readSource(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("dftrace: expected at most one source file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
