package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"staticpipe/internal/obs"
	"staticpipe/internal/progs"
	"staticpipe/internal/serve"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/value"
)

// smoke is the self-contained load test ci.sh runs: it starts a full
// dfserve stack on a loopback port, fires n concurrent submissions mixing
// fast-path and offloaded jobs (some canceled mid-flight), and then
// verifies the service invariants:
//
//   - every admitted job reached a terminal state (no stuck jobs)
//   - the admission ledger reconciles: submitted == admitted + rejected
//   - overflow rejections came back as 429, never an error or a hang
//   - after shutdown the process goroutine count returns to its
//     pre-service baseline (no leaked workers, streams, or timers)
//   - the /metrics exposition passes the Prometheus text-format linter
//   - the SLO verdict line is greppable: "slo: ok" on a clean run,
//     "slo: burning ..." when saturate starves the pool so every queue
//     wait blows its objective
func smoke(n int, cfg serve.Config, saturate bool) error {
	baseline := stableGoroutines()

	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	if saturate {
		// One pool worker, everything offloaded, and a queue-wait bound no
		// real wait can meet: the queue_wait objective burns by design and
		// the flight recorder captures the offending jobs.
		cfg.PoolWorkers = 1
		cfg.OffloadThreshold = -1
		cfg.QueueDepth = n
		cfg.SLOQueueWaitMax = time.Nanosecond
	} else {
		// Force contention so the test exercises both admission paths and
		// the overflow branch even on a large machine: a small queue plus a
		// cost threshold that sends every non-trivial program to the pool.
		if cfg.QueueDepth == 256 || cfg.QueueDepth == 0 {
			cfg.QueueDepth = n/4 + 1
		}
		// The production default (500ms) gates pathological waits; a loaded
		// CI box can exceed it on an honest run, so the clean smoke only
		// alerts on waits that are wrong at any speed.
		cfg.SLOQueueWaitMax = 5 * time.Second
	}
	svc := serve.New(cfg)
	mux := telemetry.NewMuxHealth(reg, svc.HealthStats, svc.WriteMetrics)
	svc.Register(mux)
	srv, err := telemetry.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		return err
	}
	base := "http://" + srv.Addr()

	type outcome struct {
		status int
		id     int64
		err    error
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			// Thirds: small fast-path jobs, large offloaded jobs, and
			// large offloaded jobs we cancel right after admission.
			var p progs.Program
			switch i % 3 {
			case 0:
				p = progs.Fig2(32)
			default:
				p = progs.Fig2(8192)
			}
			spec := serve.Spec{
				Tenant: fmt.Sprintf("t%d", i%4),
				Source: p.Source,
				Inputs: wireInputs(p.Inputs),
			}
			body, err := json.Marshal(spec)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var view serve.JobView
			data, _ := io.ReadAll(resp.Body)
			o := outcome{status: resp.StatusCode}
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
				if err := json.Unmarshal(data, &view); err != nil {
					o.err = fmt.Errorf("job %d: bad response %q: %v", i, data, err)
				}
				o.id = view.ID
				if i%3 == 2 && resp.StatusCode == http.StatusAccepted {
					r, err := http.Post(fmt.Sprintf("%s/jobs/%d/cancel", base, view.ID), "", nil)
					if err == nil {
						r.Body.Close()
					}
				}
			} else if resp.StatusCode != http.StatusTooManyRequests {
				o.err = fmt.Errorf("job %d: unexpected status %d: %s", i, resp.StatusCode, data)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	var accepted, rejected429 int
	for _, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		switch o.status {
		case http.StatusOK, http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected429++
		}
	}

	// Every accepted job must reach a terminal state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		pending := 0
		for _, o := range outcomes {
			if o.id == 0 {
				continue
			}
			if j := svc.Get(o.id); j != nil && !j.State().Terminal() {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d jobs still non-terminal after 60s", pending)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Ledger reconciliation, per tenant and in aggregate.
	var sub, adm, rej int64
	for i := 0; i < 4; i++ {
		s, a, r := svc.Counters(fmt.Sprintf("t%d", i))
		if s != a+r {
			return fmt.Errorf("tenant t%d ledger: submitted %d != admitted %d + rejected %d", i, s, a, r)
		}
		sub, adm, rej = sub+s, adm+a, rej+r
	}
	if sub != int64(n) {
		return fmt.Errorf("ledger counted %d submissions, sent %d", sub, n)
	}
	if int(adm) != accepted || int(rej) != rejected429 {
		return fmt.Errorf("ledger admitted=%d rejected=%d vs HTTP accepted=%d rejected=%d",
			adm, rej, accepted, rejected429)
	}

	// The /metrics exposition must parse as Prometheus text format — the
	// registry, serve, and SLO families all ride one endpoint, and a
	// malformed family would silently break every scrape.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("scraping /metrics: %w", err)
	}
	probs := telemetry.LintExposition(mresp.Body)
	mresp.Body.Close()
	if len(probs) != 0 {
		return fmt.Errorf("/metrics fails exposition lint:\n%s", strings.Join(probs, "\n"))
	}
	fmt.Println("smoke: /metrics exposition lint ok")

	// The artifact-cache line is greppable too: the smoke submits only two
	// distinct programs, so once the first compile of each lands everything
	// else must be served from cache. Coalesced lookups count as served —
	// the startup burst races n submissions of 2 programs, so most of the
	// non-compiling lookups coalesce onto the two in-flight compiles rather
	// than hitting a resident entry.
	if cfg.Cache != nil {
		st := cfg.Cache.Stats()
		lookups := st.Hits + st.Misses + st.Coalesced
		served := st.Hits + st.Coalesced
		ratePct := 0.0
		if lookups > 0 {
			ratePct = 100 * float64(served) / float64(lookups)
		}
		fmt.Printf("cache: %d lookups, %d hits, %d coalesced, %d misses, hit rate %.0f%%, %.1fms compile saved\n",
			lookups, st.Hits, st.Coalesced, st.Misses, ratePct,
			float64(st.CompileSaved.Microseconds())/1000)
	}

	// The SLO verdict is the greppable health line: ci.sh greps for
	// "slo: ok" on the clean run and "slo: burning" on the saturated one.
	verdict := cfg.SLO.Verdict()
	fmt.Println(verdict)
	if saturate {
		if !strings.Contains(verdict, "slo: burning") || !strings.Contains(verdict, serve.SLOQueueWait) {
			return fmt.Errorf("saturated smoke did not burn the %s objective: %q", serve.SLOQueueWait, verdict)
		}
		// The flight recorder must hold the offending span trees.
		fresp, err := http.Get(base + "/debug/flight")
		if err != nil {
			return fmt.Errorf("scraping /debug/flight: %w", err)
		}
		var dump obs.Dump
		err = json.NewDecoder(fresp.Body).Decode(&dump)
		fresp.Body.Close()
		if err != nil {
			return fmt.Errorf("decoding /debug/flight: %w", err)
		}
		if len(dump.Spans) == 0 {
			return fmt.Errorf("saturated smoke left no span trees in /debug/flight")
		}
		fmt.Printf("smoke: /debug/flight holds %d span trees, %d admission records\n",
			len(dump.Spans), len(dump.Admissions))
	} else if verdict != "slo: ok" {
		return fmt.Errorf("clean smoke verdict: %q, want \"slo: ok\"", verdict)
	}

	// Graceful teardown, then the goroutine-leak check. goleak is not
	// vendored, so this is a stabilized runtime.NumGoroutine comparison
	// against the pre-service baseline with headroom for runtime helpers.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http drain: %w", err)
	}
	if err := svc.Close(drainCtx); err != nil {
		return fmt.Errorf("pool drain: %w", err)
	}
	http.DefaultClient.CloseIdleConnections()
	for end := time.Now().Add(10 * time.Second); ; {
		if g := stableGoroutines(); g <= baseline+3 {
			break
		} else if time.Now().After(end) {
			return fmt.Errorf("goroutine leak: %d before service, %d after shutdown", baseline, g)
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("smoke: %d accepted (%d rejected 429), ledger reconciled, no goroutine leak\n",
		accepted, rejected429)
	return nil
}

// wireInputs converts simulator inputs to the JSON wire format.
func wireInputs(in map[string][]value.Value) map[string]serve.Stream {
	out := make(map[string]serve.Stream, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// stableGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree, settling transient runtime goroutines.
func stableGoroutines() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}
