package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"time"

	"staticpipe/internal/progs"
	"staticpipe/internal/serve"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/value"
)

// smoke is the self-contained load test ci.sh runs: it starts a full
// dfserve stack on a loopback port, fires n concurrent submissions mixing
// fast-path and offloaded jobs (some canceled mid-flight), and then
// verifies the service invariants:
//
//   - every admitted job reached a terminal state (no stuck jobs)
//   - the admission ledger reconciles: submitted == admitted + rejected
//   - overflow rejections came back as 429, never an error or a hang
//   - after shutdown the process goroutine count returns to its
//     pre-service baseline (no leaked workers, streams, or timers)
func smoke(n int, cfg serve.Config) error {
	baseline := stableGoroutines()

	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	// Force contention so the test exercises both admission paths and the
	// overflow branch even on a large machine: a small queue plus a cost
	// threshold that sends every non-trivial program to the pool.
	if cfg.QueueDepth == 256 || cfg.QueueDepth == 0 {
		cfg.QueueDepth = n/4 + 1
	}
	svc := serve.New(cfg)
	mux := telemetry.NewMux(reg, svc.WriteMetrics)
	svc.Register(mux)
	srv, err := telemetry.ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		return err
	}
	base := "http://" + srv.Addr()

	type outcome struct {
		status int
		id     int64
		err    error
	}
	outcomes := make([]outcome, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			// Thirds: small fast-path jobs, large offloaded jobs, and
			// large offloaded jobs we cancel right after admission.
			var p progs.Program
			switch i % 3 {
			case 0:
				p = progs.Fig2(32)
			default:
				p = progs.Fig2(8192)
			}
			spec := serve.Spec{
				Tenant: fmt.Sprintf("t%d", i%4),
				Source: p.Source,
				Inputs: wireInputs(p.Inputs),
			}
			body, err := json.Marshal(spec)
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			resp, err := http.Post(base+"/jobs", "application/json", bytes.NewReader(body))
			if err != nil {
				outcomes[i] = outcome{err: err}
				return
			}
			defer resp.Body.Close()
			var view serve.JobView
			data, _ := io.ReadAll(resp.Body)
			o := outcome{status: resp.StatusCode}
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
				if err := json.Unmarshal(data, &view); err != nil {
					o.err = fmt.Errorf("job %d: bad response %q: %v", i, data, err)
				}
				o.id = view.ID
				if i%3 == 2 && resp.StatusCode == http.StatusAccepted {
					r, err := http.Post(fmt.Sprintf("%s/jobs/%d/cancel", base, view.ID), "", nil)
					if err == nil {
						r.Body.Close()
					}
				}
			} else if resp.StatusCode != http.StatusTooManyRequests {
				o.err = fmt.Errorf("job %d: unexpected status %d: %s", i, resp.StatusCode, data)
			}
			outcomes[i] = o
		}(i)
	}
	wg.Wait()

	var accepted, rejected429 int
	for _, o := range outcomes {
		if o.err != nil {
			return o.err
		}
		switch o.status {
		case http.StatusOK, http.StatusAccepted:
			accepted++
		case http.StatusTooManyRequests:
			rejected429++
		}
	}

	// Every accepted job must reach a terminal state.
	deadline := time.Now().Add(60 * time.Second)
	for {
		pending := 0
		for _, o := range outcomes {
			if o.id == 0 {
				continue
			}
			if j := svc.Get(o.id); j != nil && !j.State().Terminal() {
				pending++
			}
		}
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%d jobs still non-terminal after 60s", pending)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Ledger reconciliation, per tenant and in aggregate.
	var sub, adm, rej int64
	for i := 0; i < 4; i++ {
		s, a, r := svc.Counters(fmt.Sprintf("t%d", i))
		if s != a+r {
			return fmt.Errorf("tenant t%d ledger: submitted %d != admitted %d + rejected %d", i, s, a, r)
		}
		sub, adm, rej = sub+s, adm+a, rej+r
	}
	if sub != int64(n) {
		return fmt.Errorf("ledger counted %d submissions, sent %d", sub, n)
	}
	if int(adm) != accepted || int(rej) != rejected429 {
		return fmt.Errorf("ledger admitted=%d rejected=%d vs HTTP accepted=%d rejected=%d",
			adm, rej, accepted, rejected429)
	}

	// Graceful teardown, then the goroutine-leak check. goleak is not
	// vendored, so this is a stabilized runtime.NumGoroutine comparison
	// against the pre-service baseline with headroom for runtime helpers.
	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("http drain: %w", err)
	}
	if err := svc.Close(drainCtx); err != nil {
		return fmt.Errorf("pool drain: %w", err)
	}
	http.DefaultClient.CloseIdleConnections()
	for end := time.Now().Add(10 * time.Second); ; {
		if g := stableGoroutines(); g <= baseline+3 {
			break
		} else if time.Now().After(end) {
			return fmt.Errorf("goroutine leak: %d before service, %d after shutdown", baseline, g)
		}
		time.Sleep(50 * time.Millisecond)
	}

	fmt.Printf("smoke: %d accepted (%d rejected 429), ledger reconciled, no goroutine leak\n",
		accepted, rejected429)
	return nil
}

// wireInputs converts simulator inputs to the JSON wire format.
func wireInputs(in map[string][]value.Value) map[string]serve.Stream {
	out := make(map[string]serve.Stream, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// stableGoroutines samples runtime.NumGoroutine until two consecutive
// reads agree, settling transient runtime goroutines.
func stableGoroutines() int {
	prev := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		time.Sleep(10 * time.Millisecond)
		cur := runtime.NumGoroutine()
		if cur == prev {
			return cur
		}
		prev = cur
	}
	return prev
}
