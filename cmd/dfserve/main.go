// dfserve runs the simulation service: a multi-tenant HTTP API that
// compiles and simulates pipe-structured Val programs with admission
// control. Small jobs run inline on the request (fast path); large ones
// queue to a bounded worker pool driving the sharded simulation engine.
// The job API mounts next to the telemetry surface, so one listener serves
// /jobs, /metrics, /runs, /healthz, and /debug/pprof.
//
// Usage:
//
//	dfserve [flags]
//
// Flags:
//
//	-http ADDR        listen address (default 127.0.0.1:8080)
//	-pool N           worker-pool size (default GOMAXPROCS)
//	-queue N          offload queue depth (default 256)
//	-offload COST     fast/offload cost threshold, cells x est. cycles
//	-sim-workers N    sharded-engine workers per offloaded job (0 = sequential)
//	-rate R           per-tenant admission rate, jobs/sec (0 = unlimited)
//	-burst N          per-tenant token-bucket burst (default 16)
//	-keep N           terminal jobs retained per tenant (default 64)
//	-max-cycles N     hard per-job simulation cycle cap
//	-job-timeout D    per-job wall-clock bound (e.g. 30s; 0 = none)
//	-cache-entries N  artifact-cache capacity in compiled programs (0 disables the cache)
//	-cache-bytes N    artifact-cache byte budget (default 256 MiB)
//	-smoke N          run the self-contained N-job load test and exit
//	-saturate         with -smoke: starve the pool so queue-wait SLOs burn
//	-version          print version and build info, then exit
//
// Observability is always on: every job records a span tree (GET
// /jobs/{id}/span, ?format=chrome for chrome://tracing), a bounded flight
// recorder keeps the most recent trees, admission decisions, and stall
// snapshots (GET /debug/flight; SIGQUIT dumps it to stderr without
// stopping the process), and an SLO engine evaluates burn rates over the
// outcome stream (staticpipe_slo_* families on /metrics).
//
// SIGINT/SIGTERM trigger a graceful drain: the listener stops accepting,
// in-flight requests and queued jobs finish (bounded by -job-timeout and
// a drain deadline), then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"staticpipe/internal/artifact"
	"staticpipe/internal/buildinfo"
	"staticpipe/internal/obs"
	"staticpipe/internal/serve"
	"staticpipe/internal/telemetry"
)

func main() {
	var (
		httpAddr   = flag.String("http", "127.0.0.1:8080", "listen address")
		pool       = flag.Int("pool", 0, "worker-pool size (0 = GOMAXPROCS)")
		queue      = flag.Int("queue", 256, "offload queue depth")
		offload    = flag.Int64("offload", 0, "fast/offload cost threshold (0 = default 1<<20, negative = offload everything)")
		simWorkers = flag.Int("sim-workers", 0, "sharded-engine workers per offloaded job")
		rate       = flag.Float64("rate", 0, "per-tenant admission rate, jobs/sec (0 = unlimited)")
		burst      = flag.Int("burst", 16, "per-tenant token-bucket burst")
		keep       = flag.Int("keep", 64, "terminal jobs retained per tenant")
		maxCycles  = flag.Int("max-cycles", 0, "per-job simulation cycle cap (0 = default)")
		jobTimeout = flag.Duration("job-timeout", 0, "per-job wall-clock bound (0 = none)")
		cacheEnt   = flag.Int("cache-entries", 256, "artifact-cache capacity in compiled programs (0 disables)")
		cacheBytes = flag.Int64("cache-bytes", 256<<20, "artifact-cache byte budget")
		smokeN     = flag.Int("smoke", 0, "run the self-contained N-job load test and exit")
		saturate   = flag.Bool("saturate", false, "with -smoke: starve the pool so queue-wait SLOs burn")
		version    = flag.Bool("version", false, "print version and build info")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.String())
		return
	}

	// Observability is not optional: every dfserve process records spans,
	// keeps a flight recorder, and evaluates SLO burn rates.
	flight := obs.NewFlight(0, 0, 0)
	slo := serve.DefaultSLOs()

	cfg := serve.Config{
		PoolWorkers:      *pool,
		QueueDepth:       *queue,
		OffloadThreshold: *offload,
		SimWorkers:       *simWorkers,
		TenantRate:       *rate,
		TenantBurst:      *burst,
		KeepFinished:     *keep,
		MaxCycles:        *maxCycles,
		JobTimeout:       *jobTimeout,
		Flight:           flight,
		SLO:              slo,
	}
	if *cacheEnt > 0 {
		cfg.Cache = artifact.New(artifact.Config{MaxEntries: *cacheEnt, MaxBytes: *cacheBytes})
	}

	if *smokeN > 0 {
		if err := smoke(*smokeN, cfg, *saturate); err != nil {
			fmt.Fprintln(os.Stderr, "smoke:", err)
			os.Exit(1)
		}
		fmt.Printf("smoke: %d jobs OK\n", *smokeN)
		return
	}

	reg := telemetry.NewRegistry().KeepFinished(*keep)
	cfg.Registry = reg
	svc := serve.New(cfg)
	mux := telemetry.NewMuxHealth(reg, svc.HealthStats, svc.WriteMetrics)
	svc.Register(mux)

	// SIGQUIT dumps the flight recorder to stderr and keeps serving — the
	// kill -QUIT incident workflow, without losing the process.
	quitCh := make(chan os.Signal, 1)
	signal.Notify(quitCh, syscall.SIGQUIT)
	go func() {
		for range quitCh {
			fmt.Fprintln(os.Stderr, "dfserve: SIGQUIT — flight recorder dump:")
			if err := flight.Dump().WriteTo(os.Stderr); err != nil {
				fmt.Fprintln(os.Stderr, "dfserve: flight dump:", err)
			}
		}
	}()

	srv, err := telemetry.ServeHandler(*httpAddr, mux)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("dfserve listening on http://%s (POST /jobs; metrics at /metrics)\n", srv.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	fmt.Println("dfserve: draining...")

	drainCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "dfserve: http drain:", err)
	}
	if err := svc.Close(drainCtx); err != nil {
		fmt.Fprintln(os.Stderr, "dfserve: pool drain:", err)
	}
	fmt.Println("dfserve: stopped")
}
