package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// runDFC invokes the CLI entry point with captured streams.
func runDFC(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(""), &out, &errb)
	return out.String(), errb.String(), code
}

// TestGolden pins the deterministic CLI outputs (listings, dumps, reports,
// DOT renderings) against golden files; regenerate with go test -update.
func TestGolden(t *testing.T) {
	src := filepath.Join("testdata", "addone.val")
	cases := []struct {
		name string
		args []string
	}{
		{"report", []string{"-report", src}},
		{"list", []string{"-list", src}},
		{"flow", []string{"-flow", src}},
		{"dump-after-dedup", []string{"-passes", "dedup,balance", "-dump-after", "dedup", src}},
		{"dump-after-all", []string{"-passes", "dedup,balance,expand-fifos", "-dump-after", "all", src}},
		{"passes-empty", []string{"-passes", "", "-report", src}},
		{"passes-naive", []string{"-passes", "balance-naive", "-report", src}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, errOut, code := runDFC(t, tc.args...)
			if code != 0 {
				t.Fatalf("exit %d, stderr: %s", code, errOut)
			}
			golden := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run go test -update): %v", err)
			}
			if out != string(want) {
				t.Errorf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", golden, out, want)
			}
		})
	}
}

// TestStats checks the -stats table without pinning nondeterministic wall
// times.
func TestStats(t *testing.T) {
	out, errOut, code := runDFC(t, "-stats", "-passes", "dedup,balance", filepath.Join("testdata", "addone.val"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
	if !strings.Contains(out, "passes (wall / cells / arcs):") {
		t.Errorf("missing stats header:\n%s", out)
	}
	for _, pass := range []string{"dedup", "balance"} {
		if !strings.Contains(out, pass) {
			t.Errorf("stats missing pass %q:\n%s", pass, out)
		}
	}
}

// TestVerifyEach runs the verifier after every pass on a real program.
func TestVerifyEach(t *testing.T) {
	_, errOut, code := runDFC(t, "-verify-each", "-passes", "dedup,balance,expand-fifos", filepath.Join("testdata", "addone.val"))
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut)
	}
}

// TestBadPass checks the unknown-pass diagnostic.
func TestBadPass(t *testing.T) {
	_, errOut, code := runDFC(t, "-passes", "no-such-pass", filepath.Join("testdata", "addone.val"))
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "unknown pass") {
		t.Errorf("stderr missing diagnostic: %s", errOut)
	}
}

// TestParseError checks that source errors carry line:column positions.
func TestParseError(t *testing.T) {
	f := filepath.Join(t.TempDir(), "bad.val")
	if err := os.WriteFile(f, []byte("input C : array[real] [1, 8];\noutput ;\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, errOut, code := runDFC(t, f)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut, "2:") {
		t.Errorf("stderr missing source position: %s", errOut)
	}
}
