// dfc is the pipe-structured Val compiler: it translates a .val program
// into a balanced machine-level dataflow instruction graph and prints a
// compile report, the cell listing, or Graphviz renderings of the
// instruction graph and the block-level flow dependency graph.
//
// Usage:
//
//	dfc [flags] program.val
//	dfc [flags] < program.val
//
// Flags:
//
//	-report        print the compile report (default)
//	-list          print the instruction-cell listing
//	-dot           print the instruction graph in Graphviz syntax
//	-flow          print the flow dependency graph in Graphviz syntax
//	-todd          use Todd's for-iter scheme instead of the companion scheme
//	-parallel      use the parallel forall scheme instead of the pipeline scheme
//	-literal-ctl   generate control streams from literal instruction cells
//	-no-balance    skip balancing
//	-naive-balance use longest-path leveling instead of optimal balancing
//	-passes        explicit compilation pass list (overrides the strategy flags)
//	-dump-after    print the cell listing after the named pass ("all" = every pass)
//	-verify-each   run the IR verifier after every compilation pass
//	-stats         print per-pass compilation statistics
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"staticpipe/internal/buildinfo"
	"staticpipe/internal/core"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/passes"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/progs"
	"staticpipe/internal/value"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dfc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		report    = fs.Bool("report", false, "print the compile report (default)")
		list      = fs.Bool("list", false, "print the instruction-cell listing")
		dot       = fs.Bool("dot", false, "print the instruction graph as Graphviz dot")
		flow      = fs.Bool("flow", false, "print the flow dependency graph as Graphviz dot")
		todd      = fs.Bool("todd", false, "use Todd's for-iter scheme")
		parallel  = fs.Bool("parallel", false, "use the parallel forall scheme")
		litCtl    = fs.Bool("literal-ctl", false, "literal control-stream subgraphs")
		noBal     = fs.Bool("no-balance", false, "skip balancing")
		naiveBal  = fs.Bool("naive-balance", false, "longest-path leveling")
		dedup     = fs.Bool("dedup", false, "common-cell elimination before balancing")
		passList  = fs.String("passes", "", "comma-separated compilation pass list, e.g. \"dedup,balance\" (available: "+strings.Join(passes.Names(), ", ")+"); overrides the strategy flags")
		dumpAfter = fs.String("dump-after", "", "print the cell listing after the named pass; \"all\" dumps after every pass")
		verify    = fs.Bool("verify-each", false, "run the IR verifier after every compilation pass")
		stats     = fs.Bool("stats", false, "print per-pass compilation statistics")
		emit      = fs.String("emit", "", "write the loadable instruction graph to this file (run it with dfsim -graph)")
		fill      = fs.String("fill", "ramp", "input data baked into an emitted graph: ramp | sin | const | alt")
		version   = fs.Bool("version", false, "print version and build info, then exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *version {
		fmt.Fprintln(stdout, "dfc "+buildinfo.String())
		return 0
	}

	src, err := readSource(fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	opts := core.Options{
		LiteralControl: *litCtl,
		NoBalance:      *noBal,
		NaiveBalance:   *naiveBal,
		Dedup:          *dedup,
		Passes:         *passList,
		VerifyEach:     *verify,
	}
	if *todd {
		opts.ForIterScheme = foriter.Todd
	}
	if *parallel {
		opts.ForallScheme = forall.Parallel
	}
	printed := false
	dumped := false
	if *dumpAfter != "" {
		opts.Snapshot = func(pass string, g *graph.Graph) {
			if *dumpAfter != "all" && *dumpAfter != pass {
				return
			}
			fmt.Fprintf(stdout, "== after %s ==\n", pass)
			fmt.Fprint(stdout, g.String())
			dumped = true
		}
	}
	u, err := core.Compile(src, opts)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	printed = dumped
	if *stats {
		fmt.Fprintf(stdout, "passes (wall / cells / arcs):\n")
		for _, s := range u.PassStats() {
			fmt.Fprintf(stdout, "  %s\n", s)
		}
		printed = true
	}
	if *emit != "" {
		inputs := map[string][]value.Value{}
		for _, in := range u.Checked.Inputs {
			inputs[in.Name] = progs.Synth(*fill, in.Len())
		}
		if err := u.Compiled.SetInputs(inputs); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		data, err := u.Compiled.Graph.Marshal()
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := os.WriteFile(*emit, data, 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stdout, "wrote %s (%d cells, inputs filled with %q data)\n",
			*emit, u.Compiled.Graph.NumNodes(), *fill)
		printed = true
	}
	if *flow {
		fmt.Fprint(stdout, pipestruct.FlowDOT(u.Checked))
		printed = true
	}
	if *dot {
		fmt.Fprint(stdout, u.Compiled.Graph.DOT("program"))
		printed = true
	}
	if *list {
		fmt.Fprint(stdout, u.Compiled.Graph.String())
		printed = true
	}
	if *report || !printed {
		fmt.Fprint(stdout, u.Report())
	}
	return 0
}

func readSource(args []string, stdin io.Reader) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("dfc: expected at most one source file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		return string(data), err
	}
	data, err := io.ReadAll(stdin)
	return string(data), err
}
