// dfc is the pipe-structured Val compiler: it translates a .val program
// into a balanced machine-level dataflow instruction graph and prints a
// compile report, the cell listing, or Graphviz renderings of the
// instruction graph and the block-level flow dependency graph.
//
// Usage:
//
//	dfc [flags] program.val
//	dfc [flags] < program.val
//
// Flags:
//
//	-report        print the compile report (default)
//	-list          print the instruction-cell listing
//	-dot           print the instruction graph in Graphviz syntax
//	-flow          print the flow dependency graph in Graphviz syntax
//	-todd          use Todd's for-iter scheme instead of the companion scheme
//	-parallel      use the parallel forall scheme instead of the pipeline scheme
//	-literal-ctl   generate control streams from literal instruction cells
//	-no-balance    skip balancing
//	-naive-balance use longest-path leveling instead of optimal balancing
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"staticpipe/internal/core"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/progs"
	"staticpipe/internal/value"
)

func main() {
	var (
		report   = flag.Bool("report", false, "print the compile report (default)")
		list     = flag.Bool("list", false, "print the instruction-cell listing")
		dot      = flag.Bool("dot", false, "print the instruction graph as Graphviz dot")
		flow     = flag.Bool("flow", false, "print the flow dependency graph as Graphviz dot")
		todd     = flag.Bool("todd", false, "use Todd's for-iter scheme")
		parallel = flag.Bool("parallel", false, "use the parallel forall scheme")
		litCtl   = flag.Bool("literal-ctl", false, "literal control-stream subgraphs")
		noBal    = flag.Bool("no-balance", false, "skip balancing")
		naiveBal = flag.Bool("naive-balance", false, "longest-path leveling")
		dedup    = flag.Bool("dedup", false, "common-cell elimination before balancing")
		emit     = flag.String("emit", "", "write the loadable instruction graph to this file (run it with dfsim -graph)")
		fill     = flag.String("fill", "ramp", "input data baked into an emitted graph: ramp | sin | const | alt")
	)
	flag.Parse()

	src, err := readSource(flag.Args())
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		LiteralControl: *litCtl,
		NoBalance:      *noBal,
		NaiveBalance:   *naiveBal,
		Dedup:          *dedup,
	}
	if *todd {
		opts.ForIterScheme = foriter.Todd
	}
	if *parallel {
		opts.ForallScheme = forall.Parallel
	}
	u, err := core.Compile(src, opts)
	if err != nil {
		fatal(err)
	}
	printed := false
	if *emit != "" {
		inputs := map[string][]value.Value{}
		for _, in := range u.Checked.Inputs {
			inputs[in.Name] = progs.Synth(*fill, in.Len())
		}
		if err := u.Compiled.SetInputs(inputs); err != nil {
			fatal(err)
		}
		data, err := u.Compiled.Graph.Marshal()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*emit, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d cells, inputs filled with %q data)\n",
			*emit, u.Compiled.Graph.NumNodes(), *fill)
		printed = true
	}
	if *flow {
		fmt.Print(pipestruct.FlowDOT(u.Checked))
		printed = true
	}
	if *dot {
		fmt.Print(u.Compiled.Graph.DOT("program"))
		printed = true
	}
	if *list {
		fmt.Print(u.Compiled.Graph.String())
		printed = true
	}
	if *report || !printed {
		fmt.Print(u.Report())
	}
}

func readSource(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("dfc: expected at most one source file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
