// dfsim compiles a pipe-structured Val program and executes it, either on
// the firing-rule simulator (default) or on the cycle-accurate packet-level
// machine (-machine). Input arrays are filled synthetically (-fill) since
// the simulator is a study tool, not a numerical library.
//
// Usage:
//
//	dfsim [flags] program.val
//
// Flags:
//
//	-fill kind     input data: ramp | sin | const | alt (default ramp)
//	-batch n       advance n independent input streams ("lanes") in one run;
//	               stdout stays byte-identical to a scalar run (lane 0), the
//	               per-lane summary goes to stderr
//	-print n       print at most n elements per output (default 8; 0 = all)
//	-machine       run on the packet-level machine
//	-pes n         machine PEs (default 4)
//	-fus n         machine function units (default 2)
//	-ams n         machine array memories (default 2)
//	-butterfly     use the butterfly routing network
//	-place s       machine cell → PE placement: stage | random | hotspot |
//	               mincost | profile (profile = silent pre-run, then re-plan
//	               from the observed traffic); outputs are placement-invariant
//	-todd          use Todd's for-iter scheme
//	-no-balance    skip balancing
//	-verify        cross-check against the reference interpreter
//	-cache         route compiles through a process-local artifact cache
//	               (-verify's second compile becomes a hit); stats to stderr
//	-trace FILE    write a Chrome trace-event JSON file (Perfetto-loadable)
//	-metrics       print per-cell/per-unit metrics after the run
//	-http ADDR     serve live telemetry (/metrics, /runs, /healthz, pprof)
//	-version       print version and build info, then exit
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"staticpipe/internal/artifact"
	"staticpipe/internal/buildinfo"
	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/machine"
	"staticpipe/internal/place"
	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

func main() {
	var (
		fill      = flag.String("fill", "ramp", "input data: ramp | sin | const | alt")
		batch     = flag.Int("batch", 0, "advance N independent input streams in one run (lane 0 output is byte-identical)")
		printN    = flag.Int("print", 8, "max elements printed per output (0 = all)")
		useMach   = flag.Bool("machine", false, "run on the packet-level machine")
		pes       = flag.Int("pes", 4, "machine processing elements")
		fus       = flag.Int("fus", 2, "machine function units")
		ams       = flag.Int("ams", 2, "machine array memories")
		workers   = flag.Int("workers", 0, "simulate with the sharded parallel engine using N workers (output is byte-identical)")
		butterfly = flag.Bool("butterfly", false, "butterfly routing network")
		placeMode = flag.String("place", "", "machine placement: stage | random | hotspot | mincost | profile")
		todd      = flag.Bool("todd", false, "Todd's for-iter scheme")
		noBal     = flag.Bool("no-balance", false, "skip balancing")
		verify    = flag.Bool("verify", false, "cross-check against the interpreter")
		useCache  = flag.Bool("cache", false, "route compiles through a process-local artifact cache; stats to stderr")
		graphFile = flag.Bool("graph", false, "the argument is a serialized instruction graph (dfc -emit), not Val source")
		waterfall = flag.Bool("waterfall", false, "print a cell-by-cycle firing chart (use small inputs)")
		traceOut  = flag.String("trace", "", "write Chrome trace-event JSON to this file")
		metrics   = flag.Bool("metrics", false, "print per-cell/per-unit metrics after the run")
		httpAddr  = flag.String("http", "", "serve live telemetry on this address (e.g. :9090)")
		version   = flag.Bool("version", false, "print version and build info, then exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("dfsim " + buildinfo.String())
		return
	}

	model := "exec"
	if *useMach {
		model = "machine"
	}
	var run *telemetry.Run
	var prog *trace.Progress
	if *httpAddr != "" {
		reg := telemetry.NewRegistry()
		srv, err := telemetry.Serve(*httpAddr, reg)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
		label := "stdin"
		if flag.NArg() > 0 {
			label = flag.Arg(0)
		}
		run = reg.NewRun(label, model)
		prog = run.Progress()
	}

	var tracer trace.Tracer
	var agg *trace.Metrics
	var chrome *trace.Chrome
	var traceFile *os.File
	if *metrics || *traceOut != "" || run != nil {
		var multi trace.Multi
		if *metrics {
			agg = trace.NewMetrics()
			multi = append(multi, agg)
		}
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fatal(err)
			}
			traceFile = f
			chrome = trace.NewChrome(f)
			multi = append(multi, chrome)
		}
		if run != nil {
			multi = append(multi, run.Tracer())
		}
		tracer = multi
	}
	finish := func() {
		if run != nil {
			run.Finish(nil)
		}
		if agg != nil {
			fmt.Print(agg.Summary(12))
		}
		if chrome != nil {
			if err := chrome.Close(); err != nil {
				fatal(err)
			}
			if err := traceFile.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s\n", *traceOut)
		}
	}

	if *graphFile {
		if len(flag.Args()) != 1 {
			fatal(fmt.Errorf("dfsim -graph needs exactly one graph file"))
		}
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		g, err := graph.Unmarshal(data)
		if err != nil {
			fatal(err)
		}
		if *useMach {
			cfg := machine.Config{PEs: *pes, FUs: *fus, AMs: *ams, Workers: *workers, Tracer: tracer, Progress: prog, Batch: *batch}
			if *butterfly {
				cfg.Network = machine.Butterfly
			}
			if err := applyPlacement(*placeMode, g, &cfg); err != nil {
				fatal(err)
			}
			res, err := machine.Run(g, cfg)
			if err != nil {
				fatalPartial(err, res, machine.Describe)
			}
			fmt.Print(machine.Describe(res))
			printOutputs(res.Outputs, *printN)
			machineLaneSummary(res)
			finish()
			return
		}
		res, err := exec.Run(g, exec.Options{Workers: *workers, Tracer: tracer, Progress: prog, Batch: *batch})
		if err != nil {
			fatalPartial(err, res, exec.Describe)
		}
		fmt.Print(exec.Describe(res))
		printOutputs(res.Outputs, *printN)
		execLaneSummary(res)
		finish()
		return
	}

	src, err := readSource(flag.Args())
	if err != nil {
		fatal(err)
	}
	// Compile options carry only what shapes the artifact; the run-time
	// attachments (tracer, progress, workers) bind per run below, so a
	// cached artifact is shareable between the traced main run and the
	// tracer-free verify run.
	opts := core.Options{NoBalance: *noBal, Batch: *batch}
	if *todd {
		opts.ForIterScheme = foriter.Todd
	}
	bind := core.Binding{Tracer: tracer, Progress: prog, Workers: *workers}

	var cache *artifact.Cache
	if *useCache {
		cache = artifact.New(artifact.Config{})
	}
	compile := func(o core.Options) (*core.Unit, error) {
		if cache == nil {
			return core.Compile(src, o)
		}
		art, outcome, err := cache.Get(artifact.KeyFor(src, o, "", 0), func() (*core.Artifact, error) {
			return core.CompileArtifact(src, o)
		})
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "cache: compile %s\n", outcome)
		return art.Unit(), nil
	}
	defer func() {
		if cache != nil {
			st := cache.Stats()
			fmt.Fprintf(os.Stderr, "cache: %d hits, %d misses, %d entries, %.1fms compile saved\n",
				st.Hits, st.Misses, st.Entries, float64(st.CompileSaved.Microseconds())/1000)
		}
	}()

	u, err := compile(opts)
	if err != nil {
		fatal(err)
	}
	if run != nil {
		run.AddWarnings(u.Compiled.Warnings...)
	}

	inputs := map[string][]value.Value{}
	for _, in := range u.Checked.Inputs {
		inputs[in.Name] = progs.Synth(*fill, in.Len())
	}

	if *verify {
		// Validate runs the graph too, with no tracer bound, so the traced
		// run below stays the only one in the event stream. Under -cache a
		// scalar main run makes this second compile a hit.
		vopts := opts
		vopts.Batch = 0
		vu, err := compile(vopts)
		if err != nil {
			fatal(err)
		}
		if err := vu.Validate(inputs, 1e-9); err != nil {
			fatal(fmt.Errorf("verification failed: %w", err))
		}
		fmt.Println("verified: compiled graph matches the reference interpreter")
	}

	if *useMach {
		if err := u.Compiled.SetInputs(inputs); err != nil {
			fatal(err)
		}
		cfg := machine.Config{PEs: *pes, FUs: *fus, AMs: *ams, Workers: *workers, Tracer: tracer, Progress: prog,
			Batch: *batch, LaneInputs: laneFill(inputs, *batch)}
		if *butterfly {
			cfg.Network = machine.Butterfly
		}
		if err := applyPlacement(*placeMode, u.Compiled.Graph, &cfg); err != nil {
			fatal(err)
		}
		res, err := machine.Run(u.Compiled.Graph, cfg)
		if err != nil {
			fatalPartial(err, res, machine.Describe)
		}
		fmt.Print(machine.Describe(res))
		printOutputs(res.Outputs, *printN)
		machineLaneSummary(res)
		finish()
		return
	}

	if *waterfall {
		if err := u.Compiled.SetInputs(inputs); err != nil {
			fatal(err)
		}
		chart, err := exec.Waterfall(u.Compiled.Graph, exec.Options{}, 0)
		if err != nil {
			fatal(err)
		}
		fmt.Print(chart)
		return
	}

	if *batch > 1 {
		res, err := u.Artifact().RunBatch(bind, inputs, laneFill(inputs, *batch))
		if err != nil {
			fatal(err)
		}
		// Lane 0 consumed the baseline inputs, so stdout is byte-identical
		// to a scalar run; the per-lane summary goes to stderr.
		fmt.Print(exec.Describe(res.Exec))
		byName := map[string][]value.Value{}
		for name, arr := range res.Lanes[0].Outputs {
			byName[name] = arr.Elems
		}
		printOutputs(byName, *printN)
		execLaneSummary(res.Exec)
		finish()
		return
	}

	res, err := u.Artifact().Run(bind, inputs)
	if err != nil {
		fatal(err)
	}
	fmt.Print(exec.Describe(res.Exec))
	byName := map[string][]value.Value{}
	for name, arr := range res.Outputs {
		byName[name] = arr.Elems
	}
	printOutputs(byName, *printN)
	finish()
}

// applyPlacement resolves the -place flag into cfg's assignment strategy.
// mincost plans from the static graph; profile first runs the machine once,
// silently, under the baseline assignment to observe real traffic, then
// plans from those metrics. Placement never changes what a run computes, so
// the profile pre-run is safe to discard.
func applyPlacement(mode string, g *graph.Graph, cfg *machine.Config) error {
	switch mode {
	case "":
		return nil
	case "stage":
		cfg.Assign = machine.ByStage
	case "random":
		cfg.Assign = machine.Random
	case "hotspot":
		cfg.Assign = machine.HotSpot
	case "mincost", "profile":
		opts := place.Options{PEs: cfg.PEs}
		if mode == "profile" {
			m := trace.NewMetrics()
			pre := *cfg
			pre.Tracer = m
			pre.Progress = nil
			pre.Batch = 0
			pre.LaneInputs = nil
			if _, err := machine.Run(g, pre); err != nil {
				return fmt.Errorf("placement profile pre-run: %w", err)
			}
			opts.Metrics = m
		}
		pl, err := place.Plan(g, opts)
		if err != nil {
			return err
		}
		cfg.Assign = machine.Placed
		cfg.Placement = pl.PE
	default:
		return fmt.Errorf("unknown -place %q (want stage, random, hotspot, mincost or profile)", mode)
	}
	return nil
}

// laneFill builds per-lane input streams for -batch: lane l consumes the
// base synthetic streams rotated by l, so lanes carry distinct data while
// every stream keeps its declared length. Lane 0 (nil entry) keeps the
// baseline streams.
func laneFill(inputs map[string][]value.Value, b int) []map[string][]value.Value {
	if b <= 1 {
		return nil
	}
	lanes := make([]map[string][]value.Value, b)
	for l := 1; l < b; l++ {
		m := make(map[string][]value.Value, len(inputs))
		for name, vs := range inputs {
			m[name] = rotVals(vs, l)
		}
		lanes[l] = m
	}
	return lanes
}

func rotVals(vs []value.Value, k int) []value.Value {
	if len(vs) == 0 {
		return vs
	}
	k %= len(vs)
	return append(append([]value.Value(nil), vs[k:]...), vs[:k]...)
}

// execLaneSummary prints one line per lane to stderr — stdout must stay
// byte-identical to a scalar run so output diffing keeps working.
func execLaneSummary(res *exec.Result) {
	for l, lr := range res.Lanes {
		n := 0
		for _, vs := range lr.Outputs {
			n += len(vs)
		}
		fmt.Fprintf(os.Stderr, "batch: lane %d: cycles=%d clean=%v outputs=%d\n", l, lr.Cycles, lr.Clean, n)
	}
}

func machineLaneSummary(res *machine.Result) {
	for l, lr := range res.Lanes {
		n := 0
		for _, vs := range lr.Outputs {
			n += len(vs)
		}
		fmt.Fprintf(os.Stderr, "batch: lane %d: cycles=%d clean=%v packets=%d outputs=%d\n",
			l, lr.Cycles, lr.Clean, lr.TotalPackets, n)
	}
}

func printOutputs(outputs map[string][]value.Value, limit int) {
	names := make([]string, 0, len(outputs))
	for name := range outputs {
		if len(name) >= 8 && name[:8] == "discard:" {
			continue // internal drains of unconsumed streams
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		vals := outputs[name]
		n := len(vals)
		shown := n
		if limit > 0 && shown > limit {
			shown = limit
		}
		fmt.Printf("%s (%d elements):", name, n)
		for i := 0; i < shown; i++ {
			fmt.Printf(" %v", vals[i])
		}
		if shown < n {
			fmt.Printf(" ...")
		}
		fmt.Println()
	}
}

func readSource(args []string) (string, error) {
	if len(args) > 1 {
		return "", fmt.Errorf("dfsim: expected at most one source file, got %d", len(args))
	}
	if len(args) == 1 {
		data, err := os.ReadFile(args[0])
		return string(data), err
	}
	data, err := io.ReadAll(os.Stdin)
	return string(data), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// fatalPartial reports a failed run together with the partial result's
// summary (cycle count, output counts, stall diagnostics) when the
// simulator returned one — a run that exhausted MaxCycles is diagnosed by
// exactly that information.
func fatalPartial[R any](err error, res *R, describe func(*R) string) {
	fmt.Fprintln(os.Stderr, err)
	if res != nil {
		fmt.Fprint(os.Stderr, describe(res))
	}
	os.Exit(1)
}
