// dfbench regenerates every experiment of the reproduction (E1–E14 in
// DESIGN.md): for each figure and quantitative claim of the paper it runs
// the corresponding workload and prints a table of paper-claim versus
// measured value. EXPERIMENTS.md is the archived output of this tool with
// commentary.
//
// Usage:
//
//	dfbench [-quick] [-only E7] [-json BENCH_run.json] [-compare BENCH_baseline.json]
//	        [-tolerance 0.20] [-parallel N] [-batch B] [-metrics] [-trace PREFIX]
//
// -json captures every headline number as machine-readable records for the
// perf trajectory; -compare checks this run's cycles/sec records against a
// committed baseline and exits nonzero on a regression beyond -tolerance
// (default 20%, skipping gracefully when the baseline file does not
// exist); -parallel N runs N independent benchmark instances across
// goroutines and reports aggregate simulation throughput instead of the
// experiment table; -batch B advances B independent copies of each input
// stream per simulator run through the batched engine (lane 0 results stay
// byte-identical, and the suite accounts aggregate lane cycles); -metrics
// prints a per-cell digest after each simulated run; -trace PREFIX writes
// one Chrome trace-event JSON file per run.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"staticpipe/internal/artifact"
	"staticpipe/internal/balance"
	"staticpipe/internal/buildinfo"
	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/machine"
	"staticpipe/internal/obs"
	"staticpipe/internal/place"
	"staticpipe/internal/progs"
	"staticpipe/internal/recurrence"
	"staticpipe/internal/serve"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/trace"
	"staticpipe/internal/trace/analyze"
	"staticpipe/internal/value"
)

var (
	quick    = flag.Bool("quick", false, "smaller problem sizes")
	only     = flag.String("only", "", "run a single experiment, e.g. E7")
	jsonOut  = flag.String("json", "", "write results as machine-readable JSON (e.g. BENCH_run.json)")
	compareF = flag.String("compare", "", "compare cycles/sec against a baseline JSON; exit nonzero on >20% regression")
	parallel = flag.Int("parallel", 0, "run N independent benchmark instances across goroutines and report throughput")
	samples  = flag.Int("samples", 1, "repeat the suite N times and record the median TOTAL cycles/sec (variance-aware bench guard)")
	workersF = flag.Int("workers", 0, "drive simulations with the sharded parallel engine using N workers (results are byte-identical)")
	batchF   = flag.Int("batch", 0, "advance B independent input streams per simulator run through the batched engine (lane 0 is byte-identical)")
	tolF     = flag.Float64("tolerance", 0.20, "fractional cycles/sec drop -compare fails the build on (0.20 = 20%)")
	metricsF = flag.Bool("metrics", false, "print a per-cell metrics digest after each simulated run")
	tracePfx = flag.String("trace", "", "write Chrome trace-event JSON per run to PREFIX-NNN-label.json")
	httpAddr = flag.String("http", "", "serve live telemetry on this address (e.g. :9090)")
	cacheF   = flag.Bool("cache", false, "route suite compiles through a shared content-addressed artifact cache (repeat -samples passes skip recompilation)")
	version  = flag.Bool("version", false, "print version and build info, then exit")
)

// benchCache is non-nil when -cache is set: every run() compile goes
// through it, so identical (source, options) pairs — notably the repeat
// passes of -samples — reuse one immutable artifact instead of recompiling.
var benchCache *artifact.Cache

// registry is non-nil when -http is serving; -parallel registers each
// instance's exec and machine runs under separate labels.
var registry *telemetry.Registry

// benchRecord is one headline number in -json output.
type benchRecord struct {
	Exp    string  `json:"exp"`
	Metric string  `json:"metric"`
	Value  float64 `json:"value"`
}

var (
	records []benchRecord
	curExp  string
	// recording is cleared on the repeat passes of -samples so only the
	// first pass contributes per-experiment records; repeats contribute
	// only their TOTAL rate to the median.
	recording = true
	// per-experiment simulation accounting for the cycles/sec records:
	// simulated cycles and wall time spent inside simulator Run calls.
	simCycles int
	simWall   time.Duration
	// suite-wide totals, recorded under exp TOTAL; the bench guard compares
	// this aggregate because individual quick experiments finish in well
	// under a millisecond and their rates are dominated by timer noise.
	grandCycles int
	grandWall   time.Duration
	// benchFlight records one span tree per experiment pass (timings and
	// headline rates as attrs). When the bench guard fails, the dump is
	// written next to the run so the regression report points at data, not
	// just a percentage.
	benchFlight = obs.NewFlight(0, 0, 0)
)

// record captures one headline number under the current experiment.
func record(metric string, v float64) {
	if !recording {
		return
	}
	records = append(records, benchRecord{Exp: curExp, Metric: metric, Value: v})
}

// addSim accounts one simulator run toward the experiment's cycles/sec.
func addSim(cycles int, wall time.Duration) {
	simCycles += cycles
	simWall += wall
	grandCycles += cycles
	grandWall += wall
}

var traceSeq int

// runTracer builds the tracer for one simulated run; both returns are
// no-ops unless -metrics or -trace is set. Call finish after the run.
func runTracer(label string) (tr trace.Tracer, finish func()) {
	if !*metricsF && *tracePfx == "" {
		return nil, func() {}
	}
	var multi trace.Multi
	var agg *trace.Metrics
	if *metricsF {
		agg = trace.NewMetrics()
		multi = append(multi, agg)
	}
	var chrome *trace.Chrome
	var f *os.File
	var name string
	if *tracePfx != "" {
		traceSeq++
		name = fmt.Sprintf("%s-%03d-%s.json", *tracePfx, traceSeq, label)
		var err error
		f, err = os.Create(name)
		if err != nil {
			fatal(err)
		}
		chrome = trace.NewChrome(f)
		multi = append(multi, chrome)
	}
	return multi, func() {
		if agg != nil {
			fmt.Printf("  -- metrics (%s) --\n%s", label, agg.Summary(6))
		}
		if chrome != nil {
			if err := chrome.Close(); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("  wrote trace %s\n", name)
		}
	}
}

func main() {
	flag.Parse()
	if *version {
		fmt.Println("dfbench " + buildinfo.String())
		return
	}
	if *cacheF {
		benchCache = artifact.New(artifact.Config{})
	}
	if *httpAddr != "" {
		registry = telemetry.NewRegistry()
		srv, err := telemetry.Serve(*httpAddr, registry)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry: serving http://%s/metrics\n", srv.Addr())
	}
	experiments := []struct {
		id, title string
		run       func(size int)
		size      int
		quickSize int
	}{
		{"E1", "Fig 2: scalar pipeline at the maximum rate", e1, 1024, 128},
		{"E2", "§3: rate independent of stage count", e2, 512, 64},
		{"E3", "Fig 4: gated array selection", e3, 1024, 128},
		{"E4", "Fig 5: pipelined conditional", e4, 1024, 128},
		{"E5", "Fig 6 / Example 1: primitive forall (Theorem 2)", e5, 1024, 128},
		{"E6", "Fig 7: Todd's for-iter scheme (rate 1/3)", e6, 1024, 128},
		{"E7", "Fig 8: companion scheme (Theorem 3, rate 1/2)", e7, 1024, 128},
		{"E8", "Fig 3: composed pipe-structured program (Theorem 4)", e8, 1024, 128},
		{"E9", "§8: balancing time and optimal buffering", e9, 1000, 200},
		{"E10", "§9: delay-for-rate interleaved recurrences", e10, 256, 64},
		{"E11", "§7: companion tree of log₂(p) levels", e11, 0, 0},
		{"E12", "§2: array-memory packet fraction ≤ 1/8", e12, 64, 32},
		{"E13", "machine-level throughput vs PE count", e13, 128, 48},
		{"E14", "§6: forall pipeline vs parallel scheme", e14, 48, 24},
		{"E15", "§9 extension: two-dimensional arrays", e15, 24, 12},
		{"E16", "ablations: control realization, network, placement", e16, 64, 24},
		{"E17", "ablation: common-cell elimination", e17, 256, 64},
		{"E18", "sharded parallel engine: P=1..8 scaling on both cores", e18, 96, 32},
		{"E19", "service layer: jobs/sec through admission + worker pool", e19, 1024, 256},
		{"E20", "batched multi-stream execution: B-lane amortization", e20, 512, 512},
		{"E21", "contention-aware placement: min-cost mapping vs bystage/hotspot", e21, 256, 96},
		{"E22", "artifact cache: admission jobs/sec at 0/50/95% hit rates", e22, 24, 12},
	}
	if *parallel > 0 {
		runParallel(*parallel)
	} else {
		runSuite := func() float64 {
			grandCycles, grandWall = 0, 0
			for _, e := range experiments {
				if *only != "" && !strings.EqualFold(*only, e.id) {
					continue
				}
				size := e.size
				if *quick {
					size = e.quickSize
				}
				curExp = e.id
				simCycles, simWall = 0, 0
				fmt.Printf("=== %s — %s ===\n", e.id, e.title)
				tree := obs.NewTree(obs.KindRun, e.id)
				start := time.Now()
				e.run(size)
				record("seconds", time.Since(start).Seconds())
				if simWall > 0 {
					record("cycles_per_sec", float64(simCycles)/simWall.Seconds())
				}
				root := tree.Root()
				root.Set("title", e.title)
				root.Set("size", size)
				root.Set("sim_cycles", simCycles)
				root.Set("sim_wall_ns", simWall.Nanoseconds())
				if simWall > 0 {
					root.Set("cycles_per_sec", float64(simCycles)/simWall.Seconds())
				}
				root.End()
				benchFlight.RecordTree(tree)
				fmt.Printf("(%.2fs)\n\n", time.Since(start).Seconds())
			}
			if grandWall == 0 {
				return 0
			}
			return float64(grandCycles) / grandWall.Seconds()
		}
		rates := []float64{runSuite()}
		// Repeat passes for -samples: per-experiment records are taken from
		// the first pass only; the guarded TOTAL rate is the median across
		// passes, which tames the timer noise a single quick pass carries.
		recording = false
		for s := 2; s <= *samples; s++ {
			stdout := os.Stdout
			null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
			if err != nil {
				fatal(err)
			}
			os.Stdout = null
			r := runSuite()
			os.Stdout = stdout
			null.Close()
			rates = append(rates, r)
			fmt.Printf("sample %d/%d: %.0f cycles/sec\n", s, *samples, r)
		}
		recording = true
		if rates[0] > 0 {
			curExp = "TOTAL"
			rate := median(rates)
			record("cycles_per_sec", rate)
			if len(rates) > 1 {
				record("samples", float64(len(rates)))
				fmt.Printf("total: median of %d samples: %.0f cycles/sec\n", len(rates), rate)
			} else {
				fmt.Printf("total: %d simulated cycles in %.3fs of simulator time (%.0f cycles/sec)\n",
					grandCycles, grandWall.Seconds(), rate)
			}
		}
	}
	if benchCache != nil {
		st := benchCache.Stats()
		fmt.Printf("cache: %d hits, %d misses, %d coalesced, %.1fms compile saved\n",
			st.Hits, st.Misses, st.Coalesced, float64(st.CompileSaved.Microseconds())/1000)
	}
	if *jsonOut != "" {
		out := struct {
			Tool    string        `json:"tool"`
			Quick   bool          `json:"quick"`
			Results []benchRecord `json:"results"`
		}{Tool: "dfbench", Quick: *quick, Results: records}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d records to %s\n", len(records), *jsonOut)
	}
	if *compareF != "" {
		if !compareBaseline(*compareF) {
			os.Exit(1)
		}
	}
}

// parallelWorkload is one independent benchmark instance for -parallel:
// compile the Fig 3 composed program and run it on both simulator kernels.
// Units are not safe for concurrent runs, so each instance compiles its
// own — and each instance gets its own tracer sinks (execRun, machRun),
// never shared across goroutines. Returns the simulated cycles contributed.
func parallelWorkload(n int, execRun, machRun *telemetry.Run) (int, error) {
	p := progs.Fig3(n)
	cycles := 0
	eopts := core.Options{}
	if execRun != nil {
		eopts.Tracer = execRun.Tracer()
		eopts.Progress = execRun.Progress()
	}
	u, err := core.Compile(p.Source, eopts)
	if err == nil {
		var res *core.RunResult
		res, err = u.Run(p.Inputs)
		if err == nil {
			cycles += res.Exec.Cycles
		}
	}
	if execRun != nil {
		execRun.Finish(err)
	}
	if err != nil {
		return cycles, err
	}

	mu, err := core.Compile(p.Source, core.Options{})
	if err == nil {
		if err = mu.Compiled.SetInputs(p.Inputs); err == nil {
			cfg := machine.Config{PEs: 8, FUs: 4, AMs: 4}
			if machRun != nil {
				cfg.Tracer = machRun.Tracer()
				cfg.Progress = machRun.Progress()
			}
			var mres *machine.Result
			mres, err = machine.Run(mu.Compiled.Graph, cfg)
			if err == nil {
				cycles += mres.Cycles
			}
		}
	}
	if machRun != nil {
		machRun.Finish(err)
	}
	return cycles, err
}

// runParallel fans N independent benchmark instances across goroutines and
// reports per-instance and aggregate simulation throughput. With -http each
// instance registers two labeled telemetry runs (parI/exec, parI/machine),
// so a live scrape shows every instance's progress separately.
func runParallel(n int) {
	size := 1024
	if *quick {
		size = 128
	}
	curExp = "PAR"
	fmt.Printf("=== parallel fan-out: %d independent instances (Fig 3, n=%d, exec+machine) ===\n", n, size)

	start := time.Now()
	c1, err := parallelWorkload(size, nil, nil)
	if err != nil {
		fatal(err)
	}
	single := time.Since(start)
	singleRate := float64(c1) / single.Seconds()
	fmt.Printf("  single instance: %d cycles in %.3fs (%.0f cycles/sec)\n", c1, single.Seconds(), singleRate)

	cycles := make([]int, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	start = time.Now()
	for i := range cycles {
		var execRun, machRun *telemetry.Run
		if registry != nil {
			execRun = registry.NewRun(fmt.Sprintf("par%d/exec", i), "exec")
			machRun = registry.NewRun(fmt.Sprintf("par%d/machine", i), "machine")
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cycles[i], errs[i] = parallelWorkload(size, execRun, machRun)
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	for i, err := range errs {
		if err != nil {
			fatal(fmt.Errorf("instance %d: %w", i, err))
		}
	}
	total := 0
	for i, c := range cycles {
		total += c
		fmt.Printf("  instance %2d: %d cycles (%.0f cycles/sec amortized)\n", i, c, float64(c)/wall.Seconds())
	}
	aggRate := float64(total) / wall.Seconds()
	fmt.Printf("  aggregate: %d cycles in %.3fs (%.0f cycles/sec, %.2fx single-instance rate)\n",
		total, wall.Seconds(), aggRate, aggRate/singleRate)
	record("cycles_per_sec_single", singleRate)
	record("cycles_per_sec_aggregate", aggRate)
	record("instances", float64(n))
}

// writeFlightDump writes the per-experiment flight recorder to a temp file
// and returns its path ("" if nothing was recorded or the write failed) —
// the bench guard prints it so a regression report carries the span trees
// of the slow run, not just the headline percentage.
func writeFlightDump() string {
	dump := benchFlight.Dump()
	if len(dump.Spans) == 0 {
		return ""
	}
	f, err := os.CreateTemp("", "dfbench-flight-*.json")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench guard: flight dump: %v\n", err)
		return ""
	}
	werr := dump.WriteTo(f)
	cerr := f.Close()
	if werr != nil || cerr != nil {
		fmt.Fprintf(os.Stderr, "bench guard: flight dump: %v %v\n", werr, cerr)
		return ""
	}
	return f.Name()
}

// compareBaseline checks this run's cycles/sec records against a committed
// baseline JSON, failing on a regression beyond the tolerance. Returns true
// when the comparison passes (or is skipped because no baseline exists).
func compareBaseline(path string) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Printf("no baseline at %s; skipping cycles/sec comparison\n", path)
			return true
		}
		fatal(err)
	}
	var base struct {
		Tool    string        `json:"tool"`
		Quick   bool          `json:"quick"`
		Results []benchRecord `json:"results"`
	}
	if err := json.Unmarshal(data, &base); err != nil {
		fmt.Fprintf(os.Stderr, "bad baseline %s: %v\n", path, err)
		return false
	}
	if base.Quick != *quick {
		fmt.Printf("baseline %s was recorded with quick=%v, this run uses quick=%v; skipping comparison\n",
			path, base.Quick, *quick)
		return true
	}
	baseline := make(map[string]float64)
	for _, r := range base.Results {
		if strings.HasPrefix(r.Metric, "cycles_per_sec") {
			baseline[r.Exp+"/"+r.Metric] = r.Value
		}
	}
	// Individual quick experiments finish in well under a millisecond, so
	// their rates swing wildly between identical runs; only the suite-wide
	// TOTAL aggregate is stable enough to gate on. Per-experiment records
	// are compared informationally.
	type regression struct {
		name   string
		before float64 // baseline cycles/sec
		after  float64 // this run's cycles/sec
	}
	var regressed []regression
	compared, failed := 0, 0
	for _, r := range records {
		if !strings.HasPrefix(r.Metric, "cycles_per_sec") {
			continue
		}
		want, ok := baseline[r.Exp+"/"+r.Metric]
		if !ok || want <= 0 {
			continue
		}
		ratio := r.Value / want
		gating := r.Exp == "TOTAL"
		if gating {
			compared++
		}
		if ratio < 1-*tolF {
			regressed = append(regressed, regression{r.Exp + "/" + r.Metric, want, r.Value})
			if gating {
				failed++
				fmt.Fprintf(os.Stderr, "REGRESSION %s/%s: %.0f cycles/sec vs baseline %.0f (%.0f%%)\n",
					r.Exp, r.Metric, r.Value, want, 100*ratio)
			} else {
				fmt.Printf("  note %s/%s: %.0f cycles/sec vs baseline %.0f (%.0f%%, informational)\n",
					r.Exp, r.Metric, r.Value, want, 100*ratio)
			}
		} else {
			fmt.Printf("  ok %s/%s: %.0f cycles/sec vs baseline %.0f (%.0f%%)\n",
				r.Exp, r.Metric, r.Value, want, 100*ratio)
		}
	}
	if compared == 0 {
		fmt.Printf("baseline %s has no comparable TOTAL cycles/sec record; skipping comparison\n", path)
		return true
	}
	if failed > 0 {
		// Name every experiment that slowed, not just the gating aggregate:
		// the per-experiment list is what points at the culprit.
		fmt.Fprintf(os.Stderr, "bench guard: aggregate cycles/sec regressed >%.0f%% vs %s\n",
			100**tolF, path)
		fmt.Fprintf(os.Stderr, "regressed experiments (before -> after cycles/sec, signed delta):\n")
		for _, r := range regressed {
			fmt.Fprintf(os.Stderr, "  %-28s %12.0f -> %-12.0f (%+.1f%%)\n",
				r.name, r.before, r.after, 100*(r.after/r.before-1))
		}
		if dumpPath := writeFlightDump(); dumpPath != "" {
			fmt.Fprintf(os.Stderr, "bench guard: per-experiment flight recorder dump at %s\n", dumpPath)
		}
		return false
	}
	fmt.Printf("bench guard: aggregate cycles/sec within %.0f%% of %s\n", 100**tolF, path)
	return true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// median returns the middle value of the samples (mean of the two middles
// when even), without disturbing the caller's slice.
func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// run compiles and runs a program, returning the result. Run-time knobs
// (tracer, workers) travel in a Binding, never in the compile options:
// compile options feed the artifact-cache key, and a cached artifact must
// not carry one run's tracer into another run.
func run(p progs.Program, opts core.Options) (*core.Unit, *core.RunResult) {
	tr, finish := runTracer(p.Name)
	bind := core.Binding{Tracer: tr, Workers: opts.Workers}
	opts.Tracer, opts.Workers = nil, 0
	if bind.Workers == 0 {
		bind.Workers = *workersF
	}
	if opts.Batch == 0 {
		opts.Batch = *batchF
	}
	u, err := compileUnit(p.Source, opts)
	if err != nil {
		fatal(err)
	}
	start := time.Now()
	res, err := u.Artifact().Run(bind, p.Inputs)
	if err != nil {
		fatal(err)
	}
	addSim(execSimCycles(res.Exec), time.Since(start))
	finish()
	return u, res
}

// compileUnit compiles src directly, or through the shared artifact cache
// when -cache is set.
func compileUnit(src string, opts core.Options) (*core.Unit, error) {
	if benchCache == nil {
		return core.Compile(src, opts)
	}
	art, _, err := benchCache.Get(artifact.KeyFor(src, opts, "", 0), func() (*core.Artifact, error) {
		return core.CompileArtifact(src, opts)
	})
	if err != nil {
		return nil, err
	}
	return art.Unit(), nil
}

// execSimCycles is the cycle count one firing-rule run contributes to the
// suite's cycles/sec: lane-0 cycles for a scalar run, summed per-lane
// cycles for a batched one (B lanes of simulation really happened).
func execSimCycles(res *exec.Result) int {
	if res.Batch <= 1 {
		return res.Cycles
	}
	total := 0
	for _, lr := range res.Lanes {
		total += lr.Cycles
	}
	return total
}

// machineSimCycles is execSimCycles for the packet-level machine.
func machineSimCycles(res *machine.Result) int {
	if res.Batch <= 1 {
		return res.Cycles
	}
	total := 0
	for _, lr := range res.Lanes {
		total += lr.Cycles
	}
	return total
}

// execRun runs a hand-built graph on the firing-rule simulator, counting
// it toward the experiment's cycles/sec.
func execRun(g *graph.Graph, opts exec.Options) *exec.Result {
	if opts.Workers == 0 {
		opts.Workers = *workersF
	}
	if opts.Batch == 0 {
		opts.Batch = *batchF
	}
	start := time.Now()
	res, err := exec.Run(g, opts)
	if err != nil {
		fatal(err)
	}
	addSim(execSimCycles(res), time.Since(start))
	return res
}

// machineRun runs a graph on the packet-level machine under the bench
// tracer.
func machineRun(label string, g *graph.Graph, cfg machine.Config) *machine.Result {
	tr, finish := runTracer(label)
	cfg.Tracer = tr
	if cfg.Workers == 0 {
		cfg.Workers = *workersF
	}
	if cfg.Batch == 0 {
		cfg.Batch = *batchF
	}
	start := time.Now()
	res, err := machine.Run(g, cfg)
	if err != nil {
		fatal(err)
	}
	addSim(machineSimCycles(res), time.Since(start))
	finish()
	return res
}

func e1(n int) {
	p := progs.Fig2(n)
	_, res := run(p, core.Options{})
	fmt.Printf("  %-34s paper: II = 2      measured: II = %.3f over %d results\n",
		"fully pipelined scalar pipe", res.II(p.Output), n)
	record("ii", res.II(p.Output))
}

func e2(n int) {
	fmt.Printf("  paper: \"the computation rate of a pipeline is not dependent on the number of stages\"\n")
	fmt.Printf("  %8s  %14s  %10s\n", "stages", "II (cycles)", "latency")
	for _, stages := range []int{4, 16, 64, 256} {
		g := graph.New()
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		prev := g.AddSource("in", value.Reals(vals))
		for s := 0; s < stages; s++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		g.Connect(prev, g.AddSink("out"), 0)
		res := execRun(g, exec.Options{})
		fmt.Printf("  %8d  %14.3f  %10d\n", stages, res.II("out"), res.Arrivals["out"][0].Cycle)
		record(fmt.Sprintf("ii_stages_%d", stages), res.II("out"))
	}
}

func e3(m int) {
	p := progs.Fig4(m)
	_, bal := run(p, core.Options{})
	_, unbal := run(p, core.Options{NoBalance: true})
	fmt.Printf("  paper: selection + FIFO skew buffers give full pipelining\n")
	fmt.Printf("  %-12s  II = %.3f\n", "balanced", bal.II(p.Output))
	fmt.Printf("  %-12s  II = %.3f\n", "unbalanced", unbal.II(p.Output))
	record("ii_balanced", bal.II(p.Output))
	record("ii_unbalanced", unbal.II(p.Output))
}

func e4(n int) {
	p := progs.Fig5(n)
	_, bal := run(p, core.Options{})
	_, unbal := run(p, core.Options{NoBalance: true})
	fmt.Printf("  paper: gated arms + MERGE, \"fully pipelined ... only if all paths are of equal length\"\n")
	fmt.Printf("  %-12s  II = %.3f\n", "balanced", bal.II(p.Output))
	fmt.Printf("  %-12s  II = %.3f\n", "unbalanced", unbal.II(p.Output))
	record("ii_balanced", bal.II(p.Output))
	record("ii_unbalanced", unbal.II(p.Output))
}

func e5(m int) {
	p := progs.Example1(m)
	u, res := run(p, core.Options{})
	stats := u.Compiled.Graph.ComputeStats()
	fmt.Printf("  paper (Theorem 2): every primitive forall is fully pipelined\n")
	fmt.Printf("  m=%d: II = %.3f, cells = %d (buffer stages %d)\n",
		m, res.II(p.Output), stats.Cells, stats.BufferUnits)
	record("ii", res.II(p.Output))
	record("cells", float64(stats.Cells))
	if err := u.Validate(p.Inputs, 1e-9); err != nil {
		fatal(err)
	}
	fmt.Printf("  outputs match the reference interpreter\n")
}

func e6(m int) {
	p := progs.Example2(m)
	_, res := run(p, core.Options{ForIterScheme: foriter.Todd})
	fmt.Printf("  paper: \"the initialization rate of the pipeline can not be higher than 1/3\"\n")
	fmt.Printf("  Todd scheme: II = %.3f (rate %.3f)\n", res.II(p.Output), 1/res.II(p.Output))
	record("ii_todd", res.II(p.Output))
}

func e7(m int) {
	p := progs.Example2(m)
	_, todd := run(p, core.Options{ForIterScheme: foriter.Todd})
	u, comp := run(p, core.Options{ForIterScheme: foriter.Companion})
	fmt.Printf("  paper (Theorem 3): the companion pipeline restores the maximum rate\n")
	fmt.Printf("  %-12s  II = %.3f\n", "todd", todd.II(p.Output))
	fmt.Printf("  %-12s  II = %.3f\n", "companion", comp.II(p.Output))
	fmt.Printf("  speedup %.2fx\n", todd.II(p.Output)/comp.II(p.Output))
	record("ii_todd", todd.II(p.Output))
	record("ii_companion", comp.II(p.Output))
	record("speedup", todd.II(p.Output)/comp.II(p.Output))
	if err := u.Validate(p.Inputs, 1e-9); err != nil {
		fatal(err)
	}
	fmt.Printf("  outputs match the reference interpreter (within FP reassociation)\n")
}

func e8(m int) {
	p := progs.Fig3(m)
	u, res := run(p, core.Options{})
	pred, err := u.PredictII()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  paper (Theorem 4): the composed program is fully pipelined\n")
	fmt.Printf("  end-to-end II = %.3f, predicted %s\n", res.II(p.Output), pred)
	record("ii", res.II(p.Output))
	record("ii_predicted", pred.Float())
	for _, blk := range u.Compiled.Blocks {
		fmt.Printf("  block %-4s %-8s scheme=%s\n", blk.Name, blk.Form, blk.Scheme)
	}
}

func e9(n int) {
	fmt.Printf("  paper (§8): balancing is polynomial; optimum buffering = LP dual of min-cost flow\n")
	fmt.Printf("  %8s  %16s  %16s  %12s\n", "cells", "naive buffers", "optimal buffers", "reduction")
	for _, size := range []int{n / 8, n / 4, n} {
		rng := rand.New(rand.NewSource(9))
		var cons []balance.Constraint
		for u := 0; u < size; u++ {
			for k := 0; k < 3; k++ {
				v := u + 1 + rng.Intn(size-u)
				if v < size {
					cons = append(cons, balance.Constraint{U: u, V: v, W: 1})
				}
			}
		}
		naive, err := balance.Naive(size, cons)
		if err != nil {
			fatal(err)
		}
		opt, err := balance.Solve(size, cons)
		if err != nil {
			fatal(err)
		}
		nb, ob := balance.TotalSlack(cons, naive), balance.TotalSlack(cons, opt)
		fmt.Printf("  %8d  %16d  %16d  %11.1f%%\n", size, nb, ob, 100*float64(nb-ob)/float64(nb))
		record(fmt.Sprintf("naive_buffers_%d", size), float64(nb))
		record(fmt.Sprintf("optimal_buffers_%d", size), float64(ob))
	}
}

func e10(n int) {
	fmt.Printf("  paper (§9): a FIFO delay restores the maximum rate for interleaved recurrences\n")
	fmt.Printf("  %8s  %12s  %14s\n", "rows", "FIFO stages", "II (cycles)")
	for _, rows := range []int{2, 4, 8, 16} {
		g := graph.New()
		av := make([]value.Value, rows*n)
		bv := make([]value.Value, rows*n)
		for j := range av {
			av[j] = value.R(0.6)
			bv[j] = value.R(float64(j%5) - 2)
		}
		out, err := foriter.InterleavedLinear(g, "x", rows, n,
			g.AddSource("a", av), g.AddSource("b", bv),
			value.Reals(make([]float64, rows)))
		if err != nil {
			fatal(err)
		}
		g.Connect(out, g.AddSink("x"), 0)
		res := execRun(g, exec.Options{})
		fmt.Printf("  %8d  %12d  %14.3f\n", rows, 2*rows-3, res.II("x"))
		record(fmt.Sprintf("ii_rows_%d", rows), res.II("x"))
	}
}

func e11(int) {
	fmt.Printf("  paper (§7): G is associative, so a log2(p)-level companion tree suffices\n")
	fmt.Printf("  %8s  %12s  %14s\n", "p", "tree levels", "linear levels")
	rng := rand.New(rand.NewSource(11))
	for _, p := range []int{2, 4, 8, 16} {
		ps := make([]recurrence.Param, p)
		for i := range ps {
			ps[i] = recurrence.Param{A: rng.Float64(), B: rng.Float64()}
		}
		tree := recurrence.ComposeTree(ps)
		fold := ps[0]
		for i := 1; i < p; i++ {
			fold = recurrence.G(ps[i], fold)
		}
		agree := "agree"
		if !value.Close(value.R(tree.A), value.R(fold.A), 1e-9) ||
			!value.Close(value.R(tree.B), value.R(fold.B), 1e-9) {
			agree = "DIFFER"
		}
		fmt.Printf("  %8d  %12d  %14d  (tree and fold %s)\n",
			p, recurrence.TreeDepth(p), p-1, agree)
	}
}

func e12(m int) {
	src := fmt.Sprintf(`
param m = %d;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
    Q : real := P*P + 0.5*P + 1.;
    S : real := Q*Q - P*Q + 2.*P;
  construct B[i]*(S*S) + Q
  endall;
output A;
`, m)
	u, err := core.Compile(src, core.Options{})
	if err != nil {
		fatal(err)
	}
	bs := make([]value.Value, m+2)
	cs := make([]value.Value, m+2)
	for i := range bs {
		bs[i] = value.R(1)
		cs[i] = value.R(float64(i))
	}
	if err := u.Compiled.SetInputs(map[string][]value.Value{"B": bs, "C": cs}); err != nil {
		fatal(err)
	}
	res := machineRun("e12-am-fraction", u.Compiled.Graph, machine.Config{PEs: 8, AMs: 2})
	fmt.Printf("  paper: \"one eighth or less of the operation packets would be sent to the array memories\"\n")
	fmt.Printf("  measured AM fraction: %.4f of %d packets (result %d, ack %d, operation %d)\n",
		res.AMFraction(), res.TotalPackets,
		res.Packets["result"], res.Packets["ack"], res.Packets["operation"])
	record("am_fraction", res.AMFraction())
	record("total_packets", float64(res.TotalPackets))
}

func e13(m int) {
	p := progs.Fig3(m)
	u, err := core.Compile(p.Source, core.Options{})
	if err != nil {
		fatal(err)
	}
	if err := u.Compiled.SetInputs(p.Inputs); err != nil {
		fatal(err)
	}
	fmt.Printf("  machine-level makespan of the Fig 3 program (crossbar network, 4 AMs)\n")
	fmt.Printf("  %8s  %14s  %14s\n", "PEs", "cycles", "PE util")
	for _, pes := range []int{1, 2, 4, 8, 16, 32} {
		res := machineRun(fmt.Sprintf("e13-pes-%d", pes), u.Compiled.Graph, machine.Config{PEs: pes, AMs: 4})
		fmt.Printf("  %8d  %14d  %13.1f%%\n", pes, res.Cycles, 100*res.Utilization())
		record(fmt.Sprintf("cycles_pes_%d", pes), float64(res.Cycles))
		record(fmt.Sprintf("util_pes_%d", pes), res.Utilization())
	}
}

func e15(m int) {
	src := fmt.Sprintf(`
param m = %d;
param n = %d;
input U : array2[real] [0, m+1][0, n+1];
V : array2[real] :=
  forall i in [0, m+1], j in [0, n+1]
  construct if (i = 0) | (i = m+1) | (j = 0) | (j = n+1)
            then U[i, j]
            else 0.25 * (U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1])
            endif
  endall;
output V;
`, m, m)
	u, err := core.Compile(src, core.Options{})
	if err != nil {
		fatal(err)
	}
	side := m + 2
	us := make([]value.Value, side*side)
	for i := range us {
		us[i] = value.R(float64(i%7) / 7)
	}
	inputs := map[string][]value.Value{"U": us}
	if err := u.Validate(inputs, 1e-12); err != nil {
		fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  paper (§9): \"the extension ... to array values of multiple dimension is straightforward\"\n")
	fmt.Printf("  %dx%d five-point Jacobi sweep: II = %.3f, matches the interpreter\n",
		side, side, res.II("V"))
	record("ii", res.II("V"))
}

func e16(m int) {
	p := progs.Example1(m)
	fmt.Printf("  control-stream realization (Example 1, m=%d):\n", m)
	for _, s := range []struct {
		name string
		opt  core.Options
	}{
		{"idealized generators", core.Options{}},
		{"literal counter subgraphs", core.Options{LiteralControl: true}},
	} {
		u, res := run(p, s.opt)
		fmt.Printf("    %-26s cells=%4d  II=%.3f\n", s.name,
			u.Compiled.Graph.ComputeStats().Cells, res.II(p.Output))
		key := strings.ReplaceAll(s.name, " ", "_")
		record("ii_"+key, res.II(p.Output))
		record("cells_"+key, float64(u.Compiled.Graph.ComputeStats().Cells))
	}

	fp := progs.Fig3(m)
	uu, err := core.Compile(fp.Source, core.Options{})
	if err != nil {
		fatal(err)
	}
	if err := uu.Compiled.SetInputs(fp.Inputs); err != nil {
		fatal(err)
	}
	fmt.Printf("  routing network (Fig 3, 8 PEs):\n")
	for _, nk := range []machine.NetworkKind{machine.Crossbar, machine.Butterfly} {
		res := machineRun(fmt.Sprintf("e16-net-%s", nk), uu.Compiled.Graph,
			machine.Config{PEs: 8, AMs: 4, Network: nk})
		fmt.Printf("    %-26s cycles=%5d\n", nk, res.Cycles)
		record(fmt.Sprintf("cycles_net_%s", nk), float64(res.Cycles))
	}
	fmt.Printf("  cell placement (Fig 3, 8 PEs, crossbar):\n")
	for _, as := range []machine.Assignment{machine.RoundRobin, machine.Random, machine.ByStage} {
		res := machineRun(fmt.Sprintf("e16-assign-%s", as), uu.Compiled.Graph,
			machine.Config{PEs: 8, AMs: 4, Assign: as, Seed: 5})
		fmt.Printf("    %-26s cycles=%5d\n", as, res.Cycles)
		record(fmt.Sprintf("cycles_assign_%s", as), float64(res.Cycles))
	}
}

func e17(m int) {
	p := progs.Fig3(m)
	fmt.Printf("  hash-consing duplicate cells (Fig 3, m=%d):\n", m)
	for _, s := range []struct {
		name string
		opt  core.Options
	}{
		{"plain", core.Options{}},
		{"dedup", core.Options{Dedup: true}},
	} {
		u, res := run(p, s.opt)
		fmt.Printf("    %-8s cells=%3d (removed %d)  II=%.3f\n", s.name,
			u.Compiled.Graph.ComputeStats().Cells, u.Compiled.Deduped, res.II(p.Output))
		record("ii_"+s.name, res.II(p.Output))
		record("cells_"+s.name, float64(u.Compiled.Graph.ComputeStats().Cells))
	}
	fmt.Printf("  (sharing generators across the loop boundary costs rate; see EXPERIMENTS.md)\n")
}

func e14(m int) {
	p := progs.Example1(m)
	fmt.Printf("  paper (§6): the parallel scheme replicates the body per element\n")
	fmt.Printf("  %-10s  %8s  %12s\n", "scheme", "cells", "II (cycles)")
	for _, s := range []struct {
		name string
		opt  core.Options
	}{
		{"pipeline", core.Options{ForallScheme: forall.Pipeline}},
		{"parallel", core.Options{ForallScheme: forall.Parallel}},
	} {
		u, res := run(p, s.opt)
		fmt.Printf("  %-10s  %8d  %12.3f\n", s.name,
			u.Compiled.Graph.ComputeStats().Cells, res.II(p.Output))
		record("ii_"+s.name, res.II(p.Output))
		record("cells_"+s.name, float64(u.Compiled.Graph.ComputeStats().Cells))
	}
}

// e18Graph builds w independent arithmetic lanes of d stages each: a graph
// wide enough that every shard of the partitioned engine carries real work
// per instruction time, so the scaling measurement reflects the engine and
// not the barrier.
func e18Graph(w, d, n int) *graph.Graph {
	g := graph.New()
	for k := 0; k < w; k++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + k)
		}
		prev := g.AddSource(fmt.Sprintf("in%d", k), value.Reals(vals))
		for s := 0; s < d; s++ {
			op := graph.OpAdd
			if s%2 == 1 {
				op = graph.OpMul
			}
			c := g.Add(op, "")
			g.Connect(prev, c, 0)
			g.SetLiteral(c, 1, value.R(float64(s%3)+1))
			prev = c
		}
		g.Connect(prev, g.AddSink(fmt.Sprintf("out%d", k)), 0)
	}
	return g
}

func e18(n int) {
	const lanes, depth = 16, 16
	fmt.Printf("  sharded parallel engine on %d lanes x %d stages, %d elements/lane\n",
		lanes, depth, n)
	fmt.Printf("  host runs %d-way (GOMAXPROCS); wall-clock speedup needs real cores,\n",
		runtime.GOMAXPROCS(0))
	fmt.Printf("  so the scaling figure is the aggregate shard rate P*cycles/wall —\n")
	fmt.Printf("  it rises with P exactly when the parallel overhead stays sublinear\n")
	fmt.Printf("  firing-rule simulator:\n")
	fmt.Printf("  %4s  %14s  %16s\n", "P", "wall cyc/s", "aggregate cyc/s")
	agg := map[int]float64{}
	for _, p := range []int{1, 2, 4, 8} {
		g := e18Graph(lanes, depth, n)
		start := time.Now()
		res, err := exec.Run(g, exec.Options{Workers: p})
		if err != nil {
			fatal(err)
		}
		wall := time.Since(start)
		addSim(res.Cycles, wall)
		wallRate := float64(res.Cycles) / wall.Seconds()
		agg[p] = float64(p*res.Cycles) / wall.Seconds()
		fmt.Printf("  %4d  %14.0f  %16.0f\n", p, wallRate, agg[p])
		record(fmt.Sprintf("wall_cps_p%d", p), wallRate)
		record(fmt.Sprintf("agg_cps_p%d", p), agg[p])
	}
	record("agg_speedup_p4", agg[4]/agg[1])
	fmt.Printf("  aggregate speedup P=4 vs P=1: %.2fx\n", agg[4]/agg[1])
	fmt.Printf("  packet-level machine (8 PEs, 4 FUs, 4 AMs):\n")
	for _, p := range []int{1, 4} {
		g := e18Graph(lanes, depth, n)
		start := time.Now()
		res := machineRun(fmt.Sprintf("e18-machine-p%d", p), g,
			machine.Config{PEs: 8, FUs: 4, AMs: 4, Workers: p})
		wall := time.Since(start)
		rate := float64(p*res.Cycles) / wall.Seconds()
		fmt.Printf("  %4d  cycles=%5d  aggregate %14.0f cyc/s\n", p, res.Cycles, rate)
		record(fmt.Sprintf("machine_agg_cps_p%d", p), rate)
	}
}

// e19 measures the service layer itself: jobs/sec through admission
// control and the worker pool when every job is offloaded, across queue
// depths. Depth 1 serializes admission against the pool (every submit
// races one free slot), depth 64 decouples them; the spread between the
// two is the queueing overhead the admission controller adds on top of
// raw simulation. Submitters retry 429s, so the figure includes the
// back-off cost a real client would pay.
func e19(n int) {
	const jobs, submitters = 32, 8
	p := progs.Fig2(n)
	in := make(map[string]serve.Stream, len(p.Inputs))
	for k, v := range p.Inputs {
		in[k] = v
	}
	fmt.Printf("  %d offloaded jobs (Fig 2, n=%d) from %d submitters, pool=%d\n",
		jobs, n, submitters, runtime.GOMAXPROCS(0))
	fmt.Printf("  %6s  %10s  %12s\n", "depth", "jobs/sec", "retries")
	for _, depth := range []int{1, 8, 64} {
		svc := serve.New(serve.Config{OffloadThreshold: -1, QueueDepth: depth})
		start := time.Now()
		var wg sync.WaitGroup
		var retries int64
		done := make([]*serve.Job, jobs)
		wg.Add(submitters)
		for s := 0; s < submitters; s++ {
			go func(s int) {
				defer wg.Done()
				for i := s; i < jobs; i += submitters {
					for {
						j, rej := svc.Submit(nil, serve.Spec{Source: p.Source, Inputs: in})
						if rej == nil {
							done[i] = j
							break
						}
						if rej.Reason != serve.ReasonQueueFull {
							fatal(rej)
						}
						atomic.AddInt64(&retries, 1)
						time.Sleep(200 * time.Microsecond)
					}
				}
			}(s)
		}
		wg.Wait()
		cycles := 0
		for _, j := range done {
			<-j.Done()
			if res := j.Result(); res != nil {
				cycles += res.Cycles
			}
		}
		wall := time.Since(start)
		// Deliberately not addSim'd: E19's wall clock is dominated by
		// admission, queueing, and submitter back-off — folding it into the
		// gated TOTAL cycles/sec would make the engine-regression guard
		// noisy. The jobs/sec records below are the service-level metric.
		_ = cycles
		jps := float64(jobs) / wall.Seconds()
		fmt.Printf("  %6d  %10.1f  %12d\n", depth, jps, retries)
		record(fmt.Sprintf("jobs_per_sec_depth_%d", depth), jps)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := svc.Close(ctx); err != nil {
			fatal(err)
		}
		cancel()
	}
}

// e22Chain synthesizes a k-block forall chain: each block is a cheap
// elementwise pass over the previous array, so compile cost (parse, check,
// graph construction, balancing) grows linearly with k while a run moves
// only m tokens per block. That is the compile-dominated regime the
// artifact cache targets — and salt lands in a literal, so every salt is a
// distinct source and therefore a distinct cache key.
func e22Chain(k, m, salt int) (src string, inputs map[string]serve.Stream) {
	var b strings.Builder
	fmt.Fprintf(&b, "param m = %d;\ninput U : array[real] [0, m+1];\n", m)
	prev := "U"
	for s := 0; s < k; s++ {
		cur := fmt.Sprintf("S%d", s)
		fmt.Fprintf(&b, "%s : array[real] :=\n  forall i in [1, m]\n  construct %d. + 0.25 * %s[i]\n  endall;\n",
			cur, salt, prev)
		prev = cur
	}
	fmt.Fprintf(&b, "output %s;\n", prev)
	vals := make([]value.Value, m+2)
	for i := range vals {
		vals[i] = value.R(float64(i))
	}
	return b.String(), map[string]serve.Stream{"U": vals}
}

// e22 measures what the artifact cache buys at the admission boundary:
// jobs/sec through Submit and mean admission latency over a repeat-heavy
// submission mix. Each mix fixes the number of distinct programs so the
// expected cache hit rate is 0%, 50%, or 95%; repeats are drawn from a
// seeded Zipf, so a popular head dominates the way real multi-tenant
// traffic does. The same mix runs twice — cache disabled, then enabled —
// and the speedup at 95% is the headline number: with hot programs cached,
// admission skips the compiler entirely and the submit wall collapses
// toward pure admission-control cost. The issue's acceptance gate wants
// >= 5x there.
func e22(n int) {
	const jobs, submitters = 80, 8
	fmt.Printf("  %d offloaded jobs (%d-block chains) from %d submitters\n", jobs, n, submitters)
	fmt.Printf("  %8s  %6s  %10s  %12s  %9s\n", "hit mix", "cache", "jobs/sec", "adm. mean", "speedup")
	for _, mix := range []struct {
		label    string
		key      string
		distinct int
	}{
		{"0%", "hit0", jobs},
		{"50%", "hit50", jobs / 2},
		{"95%", "hit95", jobs / 20},
	} {
		// Deterministic assignment: every distinct program appears once (the
		// compulsory misses), then the Zipf picks which ones repeat.
		rng := rand.New(rand.NewSource(22))
		zipf := rand.NewZipf(rng, 1.3, 1, uint64(mix.distinct-1))
		specs := make([]serve.Spec, jobs)
		for i := range specs {
			pi := i
			if i >= mix.distinct {
				pi = int(zipf.Uint64())
			}
			src, in := e22Chain(n, 8, pi)
			specs[i] = serve.Spec{Tenant: fmt.Sprintf("t%d", i%4), Source: src, Inputs: in}
		}
		var jps [2]float64
		for _, cached := range []bool{false, true} {
			cfg := serve.Config{OffloadThreshold: -1, QueueDepth: jobs, PoolWorkers: 1}
			if cached {
				cfg.Cache = artifact.New(artifact.Config{})
			}
			svc := serve.New(cfg)
			var admNanos int64
			done := make([]*serve.Job, jobs)
			start := time.Now()
			var wg sync.WaitGroup
			wg.Add(submitters)
			for s := 0; s < submitters; s++ {
				go func(s int) {
					defer wg.Done()
					for i := s; i < jobs; i += submitters {
						t0 := time.Now()
						j, rej := svc.Submit(nil, specs[i])
						atomic.AddInt64(&admNanos, time.Since(t0).Nanoseconds())
						if rej != nil {
							fatal(rej)
						}
						done[i] = j
					}
				}(s)
			}
			wg.Wait()
			// The submit wall stops here: the queue is deep enough that no
			// Submit ever blocked on execution, so this is admission +
			// compile (or cache lookup) cost alone.
			wall := time.Since(start)
			for _, j := range done {
				<-j.Done()
			}
			// Deliberately not addSim'd, like E19: the metric is service-level
			// admission throughput, not engine cycles/sec.
			rate := float64(jobs) / wall.Seconds()
			admMean := time.Duration(admNanos / jobs)
			arm, idx := "off", 0
			if cached {
				arm, idx = "on", 1
			}
			jps[idx] = rate
			record(fmt.Sprintf("jobs_per_sec_%s_cache_%s", mix.key, arm), rate)
			record(fmt.Sprintf("adm_mean_us_%s_cache_%s", mix.key, arm), float64(admMean.Microseconds()))
			if cached {
				fmt.Printf("  %8s  %6s  %10.0f  %12s  %8.1fx\n", mix.label, arm, rate, admMean, jps[1]/jps[0])
			} else {
				fmt.Printf("  %8s  %6s  %10.0f  %12s  %9s\n", mix.label, arm, rate, admMean, "-")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			if err := svc.Close(ctx); err != nil {
				fatal(err)
			}
			cancel()
		}
		record("admission_speedup_"+mix.key, jps[1]/jps[0])
	}
}

// e20Route builds w independent d-stage identity pipelines: the pure
// array-move kernel (§2's array-memory streaming), where per-lane marginal
// work is one token copy. It bounds the batched engine's amortization from
// above, with e18Graph's elementwise-arithmetic lanes as the compute-bound
// companion kernel.
func e20Route(w, d, n int) *graph.Graph {
	g := graph.New()
	for k := 0; k < w; k++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + k)
		}
		prev := g.AddSource(fmt.Sprintf("in%d", k), value.Reals(vals))
		for s := 0; s < d; s++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		g.Connect(prev, g.AddSink(fmt.Sprintf("out%d", k)), 0)
	}
	return g
}

// e20 measures what batching buys: B independent input streams advance
// through one compiled graph in a single run, so per-cycle planning and
// bookkeeping amortize over B lanes. The aggregate lane-cycles/sec ratio
// B=16 vs B=1 is the amortization factor; the issue's acceptance gate
// wants >= 5x on at least two array kernels.
func e20(n int) {
	fmt.Printf("  batched engine: aggregate lane-cycles/sec, %d elements/lane\n", n)
	fmt.Printf("  %-28s %5s  %16s  %9s\n", "kernel", "B", "lane-cycles/sec", "speedup")
	kernels := []struct {
		key, title string
		mk         func() *graph.Graph
	}{
		{"route", "route 8x16 (array move)", func() *graph.Graph { return e20Route(8, 16, n) }},
		{"scale", "scale 8x16 (elementwise)", func() *graph.Graph { return e18Graph(8, 16, n) }},
	}
	// Each rep is short enough that a scheduler hiccup on a shared machine
	// can halve (or double) a single rate, so every round runs all three
	// lane counts back to back and the speedup is the median of per-round
	// B/B=1 ratios — ambient contention hits both sides of a ratio, where
	// comparing medians of separately-timed blocks does not.
	const reps = 9
	batches := []int{1, 4, 16}
	for _, k := range kernels {
		rates := make([][]float64, len(batches))
		ratios := make([][]float64, len(batches))
		for r := 0; r < reps; r++ {
			roundRate := make([]float64, len(batches))
			for bi, b := range batches {
				g := k.mk()
				start := time.Now()
				res, err := exec.Run(g, exec.Options{Batch: b, Workers: *workersF})
				if err != nil {
					fatal(err)
				}
				wall := time.Since(start)
				cycles := execSimCycles(res)
				addSim(cycles, wall)
				roundRate[bi] = float64(cycles) / wall.Seconds()
			}
			for bi := range batches {
				rates[bi] = append(rates[bi], roundRate[bi])
				ratios[bi] = append(ratios[bi], roundRate[bi]/roundRate[0])
			}
		}
		for bi, b := range batches {
			sort.Float64s(rates[bi])
			sort.Float64s(ratios[bi])
			rate, speedup := rates[bi][reps/2], ratios[bi][reps/2]
			fmt.Printf("  %-28s %5d  %16.0f  %8.2fx\n", k.title, b, rate, speedup)
			record(fmt.Sprintf("cycles_per_sec_%s_b%d", k.key, b), rate)
			if b == 16 {
				record(fmt.Sprintf("batch_speedup_%s_b16", k.key), speedup)
			}
		}
	}
}

// e21Graph builds w parallel d-cell identity chains with cell creation
// interleaved across chains (row by row), so contiguous-ID placement
// (bystage) cuts every chain arc while a connectivity-aware mapping keeps
// each chain on one PE. Same shape as e20Route but hostile creation order.
func e21Graph(w, d, n int) *graph.Graph {
	g := graph.New()
	prev := make([]*graph.Node, w)
	for k := 0; k < w; k++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i*w + k)
		}
		prev[k] = g.AddSource(fmt.Sprintf("in%d", k), value.Reals(vals))
	}
	for s := 0; s < d; s++ {
		for k := 0; k < w; k++ {
			c := g.Add(graph.OpID, "")
			g.Connect(prev[k], c, 0)
			prev[k] = c
		}
	}
	for k := 0; k < w; k++ {
		g.Connect(prev[k], g.AddSink(fmt.Sprintf("out%d", k)), 0)
	}
	return g
}

// e21 pins the tentpole claim: on a kernel whose creation order fights
// contiguous placement, the min-cost spatial mapping strictly lowers the
// analyzer's contention severity versus bystage (resource-bound → merely
// saturated instruction bandwidth, the §2 two-cells-per-PE floor) and beats
// the hotspot demo by well over 2x in simulated cycles — while every
// placement computes byte-identical output streams.
func e21(n int) {
	const w, d = 8, 2
	g := e21Graph(w, d, n)
	base := machine.Config{PEs: w, FUs: 1, AMs: 2 * w, NetDelay: 1}
	pl, err := place.Plan(g, place.Options{PEs: w})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("  contention kernel %dx%d, %d elements/chain (PEs=%d FUs=1 AMs=%d net=1):\n",
		w, d, n, w, 2*w)
	fmt.Printf("  %-10s %8s  %s\n", "placement", "cycles", "severity")
	cases := []struct {
		key string
		cfg machine.Config
	}{
		{"bystage", base},
		{"hotspot", base},
		{"mincost", base},
	}
	cases[0].cfg.Assign = machine.ByStage
	cases[1].cfg.Assign = machine.HotSpot
	cases[2].cfg.Assign = machine.Placed
	cases[2].cfg.Placement = pl.PE
	cycles := map[string]int{}
	severity := map[string]int{}
	var outputs any
	for _, c := range cases {
		m := trace.NewMetrics()
		tr, finish := runTracer("e21-" + c.key)
		multi := trace.Multi{m}
		if tr != nil {
			multi = append(multi, tr)
		}
		cfg := c.cfg
		cfg.Tracer = multi
		if cfg.Workers == 0 {
			cfg.Workers = *workersF
		}
		start := time.Now()
		res, err := machine.Run(g, cfg)
		if err != nil {
			fatal(err)
		}
		addSim(machineSimCycles(res), time.Since(start))
		finish()
		a, err := analyze.Analyze(res.Graph, m)
		if err != nil {
			fatal(err)
		}
		if outputs == nil {
			outputs = res.Outputs
		} else if !reflect.DeepEqual(outputs, res.Outputs) {
			fatal(fmt.Errorf("e21: outputs diverge under %s placement", c.key))
		}
		cycles[c.key] = res.Cycles
		severity[c.key] = a.Severity
		fmt.Printf("  %-10s %8d  %-14s\n", c.key, res.Cycles, analyze.SeverityWord(a.Severity))
		record("cycles_"+c.key, float64(res.Cycles))
		record("severity_"+c.key, float64(a.Severity))
	}
	vsHot := float64(cycles["hotspot"]) / float64(cycles["mincost"])
	vsStage := float64(cycles["bystage"]) / float64(cycles["mincost"])
	fmt.Printf("  mincost speedup: %.2fx vs hotspot, %.2fx vs bystage; severity %s -> %s\n",
		vsHot, vsStage, analyze.SeverityWord(severity["bystage"]), analyze.SeverityWord(severity["mincost"]))
	record("speedup_vs_hotspot", vsHot)
	record("speedup_vs_bystage", vsStage)
}
