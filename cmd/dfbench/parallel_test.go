package main

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"staticpipe/internal/telemetry"
)

// Parallel benchmark instances with telemetry sinks attached must be
// race-free: every instance gets its own trace.Live and trace.Progress
// (never shared across goroutines), and a scraper reads consistent
// snapshots while all instances emit. Run under -race (scripts/ci.sh does)
// to pin the audit of trace.Metrics/Ring/Multi sharing for -parallel.
func TestParallelWorkloadWithTelemetryIsRaceFree(t *testing.T) {
	const instances = 4
	reg := telemetry.NewRegistry()

	var wg sync.WaitGroup
	cycles := make([]int, instances)
	errs := make([]error, instances)
	for i := 0; i < instances; i++ {
		execRun := reg.NewRun(fmt.Sprintf("par%d/exec", i), "exec")
		machRun := reg.NewRun(fmt.Sprintf("par%d/machine", i), "machine")
		wg.Add(1)
		go func(i int, er, mr *telemetry.Run) {
			defer wg.Done()
			cycles[i], errs[i] = parallelWorkload(24, er, mr)
		}(i, execRun, machRun)
	}

	// Scrape concurrently with the emitting instances: the exported text
	// must always be well-formed, whatever phase each instance is in.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for j := 0; j < 50; j++ {
			var sb strings.Builder
			telemetry.WriteMetrics(&sb, reg)
			if !strings.Contains(sb.String(), "staticpipe_run_info") {
				t.Error("scrape missing run_info family")
				return
			}
		}
	}()
	wg.Wait()
	<-done

	for i := 0; i < instances; i++ {
		if errs[i] != nil {
			t.Fatalf("instance %d: %v", i, errs[i])
		}
		if cycles[i] == 0 {
			t.Fatalf("instance %d simulated no cycles", i)
		}
	}
	for _, run := range reg.Runs() {
		in := run.Info()
		if in.State != telemetry.StateDone {
			t.Errorf("run %s state = %s, want done", in.Label, in.State)
		}
		if in.Cycle == 0 {
			t.Errorf("run %s recorded no cycle progress", in.Label)
		}
		if snap := run.Tracer().Snapshot(); snap.Events == 0 {
			t.Errorf("run %s aggregated no events", in.Label)
		}
	}
}
