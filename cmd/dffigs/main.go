// dffigs regenerates the paper's machine-code figures as Graphviz files,
// built by the actual compilers rather than drawn by hand: Fig 2 (scalar
// pipeline), Fig 3 (flow dependency graph), Fig 4 (gated array selection),
// Fig 5 (pipelined conditional), Fig 6 (Example 1's forall), Fig 7 (Todd's
// for-iter scheme), and Fig 8 (the companion scheme).
//
// Usage:
//
//	dffigs [-dir docs/figures] [-m 6]
//
// Render with: dot -Tsvg docs/figures/fig8.dot -o fig8.svg
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"staticpipe/internal/balance"
	"staticpipe/internal/buildinfo"
	"staticpipe/internal/core"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/pe"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/progs"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

func main() {
	dir := flag.String("dir", "docs/figures", "output directory")
	m := flag.Int("m", 6, "array extent used for the figure graphs (small keeps the drawings readable)")
	version := flag.Bool("version", false, "print version and build info, then exit")
	flag.Parse()
	if *version {
		fmt.Println("dffigs " + buildinfo.String())
		return
	}
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	figs := []struct {
		name  string
		title string
		build func(m int) (*graph.Graph, error)
	}{
		{"fig2", "Fig 2: pipelined execution of (y+2)(y-3), y=a*b", fig2},
		{"fig4", "Fig 4: pipelined mapping for array selection", fig4},
		{"fig5", "Fig 5: fully pipelined if-then-else", fig5},
		{"fig6", "Fig 6: pipelined mapping of Example 1's forall", fig6},
		{"fig7", "Fig 7: Todd's translation of Example 2 (rate 1/3)", fig7},
		{"fig8", "Fig 8: companion-pipeline mapping of Example 2 (rate 1/2)", fig8},
	}
	for _, f := range figs {
		g, err := f.build(*m)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", f.name, err))
		}
		path := filepath.Join(*dir, f.name+".dot")
		if err := os.WriteFile(path, []byte(g.DOT(f.title)), 0o644); err != nil {
			fatal(err)
		}
		stats := g.ComputeStats()
		fmt.Printf("%-10s %3d cells  %3d arcs   %s\n", f.name+".dot", stats.Cells, stats.Arcs, f.title)
	}

	// Fig 3 is the block-level flow dependency graph.
	p := progs.Fig3(*m)
	u, err := core.Compile(p.Source, core.Options{})
	if err != nil {
		fatal(err)
	}
	path := filepath.Join(*dir, "fig3.dot")
	if err := os.WriteFile(path, []byte(pipestruct.FlowDOT(u.Checked)), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%-10s block-level flow dependency graph\n", "fig3.dot")
}

// exprGraph compiles a primitive expression over [lo, hi] with the given
// 1-D arrays (each spanning [alo, ahi]) and balances it.
func exprGraph(src string, lo, hi int64, arrays map[string][2]int64) (*graph.Graph, error) {
	e, err := val.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	b := pe.NewBuilder(g, "i", lo, hi, nil, pe.Options{})
	for name, rng := range arrays {
		n := int(rng[1] - rng[0] + 1)
		b.BindArray(name, g.AddSource(name, value.Reals(make([]float64, n))), rng[0], rng[1])
	}
	out, err := b.CompileStream(e)
	if err != nil {
		return nil, err
	}
	g.Connect(out, g.AddSink("out"), 0)
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource && len(n.Out) == 0 {
			g.Connect(n, g.AddSink("discard:"+n.Label), 0)
		}
	}
	if _, err := balance.Balance(g); err != nil {
		return nil, err
	}
	return g, nil
}

func fig2(m int) (*graph.Graph, error) {
	return exprGraph("let y : real := a[i]*b[i] in (y + 2.)*(y - 3.) endlet",
		1, int64(m), map[string][2]int64{"a": {1, int64(m)}, "b": {1, int64(m)}})
}

func fig4(m int) (*graph.Graph, error) {
	return exprGraph("0.25 * (C[i-1] + 2.*C[i] + C[i+1])",
		1, int64(m), map[string][2]int64{"C": {0, int64(m) + 1}})
}

func fig5(m int) (*graph.Graph, error) {
	return exprGraph("if C[i] > 0. then -(A[i] + B[i]) else 5.*(A[i]*B[i] + 2.) endif",
		1, int64(m), map[string][2]int64{
			"A": {1, int64(m)}, "B": {1, int64(m)}, "C": {1, int64(m)},
		})
}

// blockGraph compiles a full forall or for-iter block with balanced output.
func blockGraph(src string, m int, arrays map[string][2]int64, opts foriter.Options, isForall bool, faOpts forall.Options) (*graph.Graph, error) {
	e, err := val.ParseExpr(src)
	if err != nil {
		return nil, err
	}
	g := graph.New()
	avail := map[string]forall.Input{}
	for name, rng := range arrays {
		n := int(rng[1] - rng[0] + 1)
		avail[name] = forall.Input{
			Node: g.AddSource(name, value.Reals(make([]float64, n))),
			Lo:   rng[0], Hi: rng[1],
		}
	}
	params := map[string]int64{"m": int64(m)}
	var out *graph.Node
	if isForall {
		o, err := forall.Compile(g, e.(*val.Forall), params, avail, faOpts)
		if err != nil {
			return nil, err
		}
		out = o.Node
	} else {
		o, err := foriter.Compile(g, e.(*val.ForIter), params, avail, opts)
		if err != nil {
			return nil, err
		}
		out = o.Node
	}
	g.Connect(out, g.AddSink("out"), 0)
	if _, err := balance.Balance(g); err != nil {
		return nil, err
	}
	return g, nil
}

const example1Body = `
forall i in [0, m+1]
  P : real := if (i = 0) | (i = m+1) then C[i]
              else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
construct B[i]*(P*P)
endall`

const example2Body = `
for i : integer := 1; T : array[real] := [0: 0.]
do
  let P : real := A[i]*T[i-1] + B[i]
  in if i < m then iter T := T[i: P]; i := i + 1 enditer
     else T[i: P] endif
  endlet
endfor`

func fig6(m int) (*graph.Graph, error) {
	return blockGraph(example1Body, m,
		map[string][2]int64{"B": {0, int64(m) + 1}, "C": {0, int64(m) + 1}},
		foriter.Options{}, true, forall.Options{})
}

func fig7(m int) (*graph.Graph, error) {
	return blockGraph(example2Body, m,
		map[string][2]int64{"A": {1, int64(m)}, "B": {1, int64(m)}},
		foriter.Options{Scheme: foriter.Todd}, false, forall.Options{})
}

func fig8(m int) (*graph.Graph, error) {
	return blockGraph(example2Body, m,
		map[string][2]int64{"A": {1, int64(m)}, "B": {1, int64(m)}},
		foriter.Options{Scheme: foriter.Companion}, false, forall.Options{})
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
