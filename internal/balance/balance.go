// Package balance equalizes path lengths in instruction graphs so that they
// sustain fully pipelined operation.
//
// The paper requires that "each path through the graph pass through exactly
// the same number of instruction cells" (§3); graphs built from expressions
// rarely satisfy this, so identity/FIFO buffer cells are inserted on short
// paths (Montz [14]). Section 8 states the algorithmic results this package
// implements:
//
//  1. balancing an acyclic flow graph is polynomial-time (Naive: longest-
//     path leveling by Bellman-Ford relaxation);
//  2. the buffering can often be reduced (Solve beats Naive whenever slack
//     placement matters);
//  3. optimum balancing — minimum total buffer stages — is the LP dual of a
//     min-cost flow problem (Solve constructs exactly that flow network and
//     reads the optimal levels off the solver's potentials).
//
// The constraint formulation: assign each cell an integer level π such that
// for every non-feedback arc (u,v), π(v) ≥ π(u) + stages(u), where
// stages(u) is 1 for ordinary cells and Cap for existing FIFO cells. The
// buffering inserted on the arc is the slack π(v) − π(u) − stages(u); the
// objective is the total slack. Rigid constraints (π(v) − π(u) = w exactly)
// support block-level composition where a block's interior must not be
// re-buffered.
package balance

import (
	"errors"
	"fmt"

	"staticpipe/internal/graph"
	"staticpipe/internal/mincost"
)

// Constraint is one difference constraint between levels:
// π(V) − π(U) ≥ W, with equality when Rigid.
type Constraint struct {
	U, V  int
	W     int64
	Rigid bool
}

// ErrInfeasible reports an unsatisfiable constraint system (a positive-
// weight cycle: for instruction graphs this means a directed cycle was not
// marked as feedback).
var ErrInfeasible = errors.New("balance: constraint system infeasible")

// Naive solves the constraint system by longest-path relaxation, producing
// the smallest feasible levels (ASAP leveling, the classical approach of
// Montz [14]). It runs in O(V·E) and is the baseline that Solve improves on.
func Naive(n int, cons []Constraint) ([]int64, error) {
	pi := make([]int64, n)
	for iter := 0; ; iter++ {
		changed := false
		for _, c := range cons {
			if nv := pi[c.U] + c.W; nv > pi[c.V] {
				pi[c.V] = nv
				changed = true
			}
			if c.Rigid {
				if nv := pi[c.V] - c.W; nv > pi[c.U] {
					pi[c.U] = nv
					changed = true
				}
			}
		}
		if !changed {
			return pi, nil
		}
		if iter > n+1 {
			return nil, ErrInfeasible
		}
	}
}

// Solve returns integer levels minimizing the total slack
// Σ_{non-rigid} (π(V) − π(U) − W) subject to the constraints. It builds the
// min-cost flow network that is the LP dual of the balancing problem (§8,
// conclusion 3) and recovers the optimal levels from the flow solver's
// potentials.
func Solve(n int, cons []Constraint) ([]int64, error) {
	if n == 0 {
		return nil, nil
	}
	// Dual derivation: minimizing Σ(π_V − π_U) over non-rigid constraints
	// subject to π_V − π_U ≥ W gives each node w an objective coefficient
	// a(w) = indeg(w) − outdeg(w) counted over non-rigid constraints. The
	// dual asks for a flow y ≥ 0 (free on rigid constraints) with node
	// divergence  inflow − outflow = a(w),  maximizing Σ W·y. We realize it
	// as min-cost max-flow: constraint edges carry cost −W; rigid
	// constraints contribute a reverse edge of cost +W so their dual
	// variable is sign-free; supplies are routed from a super-source to a
	// super-sink.
	a := make([]int64, n)
	for _, c := range cons {
		if !c.Rigid {
			a[c.V]++
			a[c.U]--
		}
	}
	var totalSupply int64
	for _, v := range a {
		if v < 0 {
			totalSupply += -v
		}
	}
	big := totalSupply + 1

	net := mincost.New(n + 2)
	s, t := n, n+1
	for _, c := range cons {
		net.AddEdge(c.U, c.V, big, -c.W)
		if c.Rigid {
			net.AddEdge(c.V, c.U, big, c.W)
		}
	}
	for w, av := range a {
		if av < 0 {
			net.AddEdge(s, w, -av, 0)
		} else if av > 0 {
			net.AddEdge(w, t, av, 0)
		}
	}
	flow, _, err := net.MinCostMaxFlow(s, t)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	if flow != totalSupply {
		return nil, fmt.Errorf("balance: internal error: flow %d < supply %d", flow, totalSupply)
	}
	h, err := net.Potentials()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	// Reduced-cost optimality of the flow makes π = −h feasible for the
	// primal, and complementary slackness makes it optimal.
	pi := make([]int64, n)
	var minPi int64
	for w := 0; w < n; w++ {
		pi[w] = -h[w]
		if w == 0 || pi[w] < minPi {
			minPi = pi[w]
		}
	}
	for w := range pi {
		pi[w] -= minPi // normalize to non-negative levels
	}
	if err := Check(n, cons, pi); err != nil {
		return nil, fmt.Errorf("balance: internal error: optimal levels infeasible: %v", err)
	}
	return pi, nil
}

// Check verifies that levels satisfy every constraint.
func Check(n int, cons []Constraint, pi []int64) error {
	if len(pi) < n {
		return fmt.Errorf("balance: %d levels for %d nodes", len(pi), n)
	}
	for _, c := range cons {
		d := pi[c.V] - pi[c.U]
		if d < c.W {
			return fmt.Errorf("balance: constraint π(%d)−π(%d) ≥ %d violated (got %d)", c.V, c.U, c.W, d)
		}
		if c.Rigid && d != c.W {
			return fmt.Errorf("balance: rigid constraint π(%d)−π(%d) = %d violated (got %d)", c.V, c.U, c.W, d)
		}
	}
	return nil
}

// TotalSlack sums the buffering implied by levels over non-rigid
// constraints.
func TotalSlack(cons []Constraint, pi []int64) int64 {
	var total int64
	for _, c := range cons {
		if !c.Rigid {
			total += pi[c.V] - pi[c.U] - c.W
		}
	}
	return total
}

// Plan is a balancing decision for an instruction graph: a level per cell
// and the buffer stages to insert per arc.
type Plan struct {
	// Levels holds π per NodeID.
	Levels []int64
	// Buffers maps arc ID to the FIFO stage count to insert (≥ 1 entries
	// only).
	Buffers map[int]int
	// Total is the total number of buffer stages the plan inserts.
	Total int
}

// stages returns the pipeline depth a token traverses inside cell n.
func stages(n *graph.Node) int64 {
	if n.Op == graph.OpFIFO {
		return int64(n.Cap)
	}
	return 1
}

// arcWeight is the timing weight of an arc in the full-rate schedule: the
// producing cell's stage count plus two cycles per token position of
// stream-grid skew (at the maximum rate of one firing per two cycles, a
// window gate's output for wave j emerges 2·Skew cycles after the wave-j
// baseline).
func arcWeight(g *graph.Graph, a *graph.Arc) int64 {
	return stages(g.Node(a.From)) + 2*int64(a.Skew)
}

// constraintsOf builds the level constraints of an instruction graph:
// one per non-feedback arc.
func constraintsOf(g *graph.Graph) []Constraint {
	var cons []Constraint
	for _, a := range g.Arcs() {
		if a.Feedback {
			continue
		}
		cons = append(cons, Constraint{U: int(a.From), V: int(a.To), W: arcWeight(g, a), Rigid: a.Rigid})
	}
	return cons
}

// PlanGraph computes a balancing plan for an instruction graph. With
// optimal=true it minimizes total buffer stages via the min-cost-flow dual;
// otherwise it uses naive longest-path leveling. Feedback arcs are exempt.
// The non-feedback part of the graph must be acyclic.
func PlanGraph(g *graph.Graph, optimal bool) (*Plan, error) {
	cons := constraintsOf(g)
	var (
		pi  []int64
		err error
	)
	if optimal {
		pi, err = Solve(g.NumNodes(), cons)
	} else {
		pi, err = Naive(g.NumNodes(), cons)
	}
	if err != nil {
		return nil, err
	}
	p := &Plan{Levels: pi, Buffers: map[int]int{}}
	for _, a := range g.Arcs() {
		if a.Feedback {
			continue
		}
		slack := pi[a.To] - pi[a.From] - arcWeight(g, a)
		if slack > 0 {
			p.Buffers[a.ID] = int(slack)
			p.Total += int(slack)
		}
	}
	return p, nil
}

// Apply inserts the plan's FIFO cells into the graph. Plan arc IDs refer to
// the graph's arcs as they were when the plan was computed; Apply must be
// called on that same graph before any further mutation.
func Apply(g *graph.Graph, p *Plan) {
	// Snapshot: InsertFIFO appends arcs, but existing arc IDs are stable.
	// Iterate in arc-ID order so inserted cell IDs are deterministic.
	arcs := make([]*graph.Arc, g.NumArcs())
	copy(arcs, g.Arcs())
	for _, a := range arcs {
		if k, ok := p.Buffers[a.ID]; ok {
			g.InsertFIFO(a, k)
		}
	}
}

// Balance computes an optimal plan and applies it, returning the plan.
func Balance(g *graph.Graph) (*Plan, error) {
	p, err := PlanGraph(g, true)
	if err != nil {
		return nil, err
	}
	Apply(g, p)
	if err := CheckBalanced(g); err != nil {
		return nil, fmt.Errorf("balance: internal error: graph unbalanced after Apply: %v", err)
	}
	return p, nil
}

// CheckBalanced verifies the §3 full-pipelining condition: an exact level
// assignment exists in which every non-feedback arc spans exactly the
// producing cell's stage count — equivalently, all reconvergent paths have
// equal length. Feedback arcs are ignored.
func CheckBalanced(g *graph.Graph) error {
	const unset = int64(-1 << 62)
	lvl := make([]int64, g.NumNodes())
	for i := range lvl {
		lvl[i] = unset
	}
	// Propagate exact levels across each weakly-connected component of the
	// non-feedback arc set.
	type halfEdge struct {
		other graph.NodeID
		delta int64 // level(other) − level(this)
	}
	adj := make([][]halfEdge, g.NumNodes())
	for _, a := range g.Arcs() {
		if a.Feedback {
			continue
		}
		w := arcWeight(g, a)
		adj[a.From] = append(adj[a.From], halfEdge{other: a.To, delta: w})
		adj[a.To] = append(adj[a.To], halfEdge{other: a.From, delta: -w})
	}
	for _, start := range g.Nodes() {
		if lvl[start.ID] != unset {
			continue
		}
		lvl[start.ID] = 0
		stack := []graph.NodeID{start.ID}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, he := range adj[u] {
				want := lvl[u] + he.delta
				switch lvl[he.other] {
				case unset:
					lvl[he.other] = want
					stack = append(stack, he.other)
				case want:
				default:
					return fmt.Errorf("balance: unbalanced at %s: level %d vs %d (unequal reconvergent paths)",
						g.Node(he.other).Name(), lvl[he.other], want)
				}
			}
		}
	}
	return nil
}
