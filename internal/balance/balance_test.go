package balance

import (
	"math/rand"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

func TestNaiveSimpleChain(t *testing.T) {
	cons := []Constraint{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}}
	pi, err := Naive(3, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(3, cons, pi); err != nil {
		t.Error(err)
	}
	if TotalSlack(cons, pi) != 0 {
		t.Errorf("chain slack = %d, want 0", TotalSlack(cons, pi))
	}
}

// An instance where ASAP leveling wastes a buffer stage that optimal
// placement saves. Node a fans out to t both directly and through x, and a
// parallel 4-stage chain pins t at level 4:
//
//	s -> a -> x -> t,  a -> t,  s -> b -> c -> d -> t
//
// ASAP puts a at level 1 (total slack 3); floating a to level 2 shares the
// slack between a's two output arcs (total slack 2).
func TestSolveBeatsNaive(t *testing.T) {
	// nodes: s=0 a=1 x=2 b=3 c=4 d=5 t=6
	cons := []Constraint{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 1},
		{U: 2, V: 6, W: 1},
		{U: 1, V: 6, W: 1},
		{U: 0, V: 3, W: 1},
		{U: 3, V: 4, W: 1},
		{U: 4, V: 5, W: 1},
		{U: 5, V: 6, W: 1},
	}
	naive, err := Naive(7, cons)
	if err != nil {
		t.Fatal(err)
	}
	if TotalSlack(cons, naive) != 3 {
		t.Errorf("naive slack = %d, want 3", TotalSlack(cons, naive))
	}
	opt, err := Solve(7, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(7, cons, opt); err != nil {
		t.Fatal(err)
	}
	if TotalSlack(cons, opt) != 2 {
		t.Errorf("optimal slack = %d, want 2 (a floats to level 2)", TotalSlack(cons, opt))
	}
}

func TestSolveRigid(t *testing.T) {
	// A rigid interior edge pins the relative levels.
	cons := []Constraint{
		{U: 0, V: 1, W: 3, Rigid: true},
		{U: 0, V: 2, W: 1},
		{U: 2, V: 1, W: 1},
	}
	pi, err := Solve(3, cons)
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(3, cons, pi); err != nil {
		t.Fatal(err)
	}
	if pi[1]-pi[0] != 3 {
		t.Errorf("rigid span = %d, want 3", pi[1]-pi[0])
	}
	// slack = (π2-π0-1) + (π1-π2-1) = 3-2 = 1 regardless of π2's position.
	if TotalSlack(cons, pi) != 1 {
		t.Errorf("slack = %d, want 1", TotalSlack(cons, pi))
	}
}

func TestInfeasibleCycle(t *testing.T) {
	cons := []Constraint{{U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1}}
	if _, err := Naive(2, cons); err == nil {
		t.Error("Naive accepted a positive cycle")
	}
	if _, err := Solve(2, cons); err == nil {
		t.Error("Solve accepted a positive cycle")
	}
}

func TestSolveEmpty(t *testing.T) {
	if pi, err := Solve(0, nil); err != nil || pi != nil {
		t.Errorf("Solve(0) = %v, %v", pi, err)
	}
	pi, err := Solve(3, nil)
	if err != nil || len(pi) != 3 {
		t.Errorf("Solve(3, nil) = %v, %v", pi, err)
	}
}

func TestCheckErrors(t *testing.T) {
	cons := []Constraint{{U: 0, V: 1, W: 2}}
	if err := Check(2, cons, []int64{0}); err == nil {
		t.Error("short level slice accepted")
	}
	if err := Check(2, cons, []int64{0, 1}); err == nil {
		t.Error("violated constraint accepted")
	}
	rig := []Constraint{{U: 0, V: 1, W: 2, Rigid: true}}
	if err := Check(2, rig, []int64{0, 3}); err == nil {
		t.Error("violated rigid constraint accepted")
	}
}

// Property: on random DAGs the optimal slack never exceeds the naive slack
// and both satisfy the constraints.
func TestQuickOptimalNeverWorse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(15)
		var cons []Constraint
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(4) == 0 {
					cons = append(cons, Constraint{U: u, V: v, W: int64(1 + rng.Intn(3))})
				}
			}
		}
		naive, err := Naive(n, cons)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		opt, err := Solve(n, cons)
		if err != nil {
			t.Fatalf("trial %d: solve: %v", trial, err)
		}
		if err := Check(n, cons, naive); err != nil {
			t.Fatalf("trial %d: naive infeasible: %v", trial, err)
		}
		if err := Check(n, cons, opt); err != nil {
			t.Fatalf("trial %d: optimal infeasible: %v", trial, err)
		}
		if TotalSlack(cons, opt) > TotalSlack(cons, naive) {
			t.Errorf("trial %d: optimal slack %d > naive %d", trial,
				TotalSlack(cons, opt), TotalSlack(cons, naive))
		}
	}
}

// buildDiamond builds the unbalanced reconvergent graph used by the exec
// tests: src fans out to a 1-cell path and a (depth)-cell path that rejoin.
func buildDiamond(depth, n int) *graph.Graph {
	g := graph.New()
	src := g.AddSource("in", value.Reals(make([]float64, n)))
	add := g.Add(graph.OpAdd, "join")
	sink := g.AddSink("out")
	prev := src
	for i := 0; i < depth; i++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, add, 0)
	g.Connect(src, add, 1)
	g.Connect(add, sink, 0)
	return g
}

func TestBalanceRestoresFullRate(t *testing.T) {
	for _, depth := range []int{2, 3, 5} {
		g := buildDiamond(depth, 64)
		plan, err := Balance(g)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if plan.Total != depth {
			t.Errorf("depth %d: inserted %d buffer stages, want %d", depth, plan.Total, depth)
		}
		res, err := exec.Run(g, exec.Options{})
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if ii := res.II("out"); ii != 2 {
			t.Errorf("depth %d: II after balancing = %v, want 2", depth, ii)
		}
	}
}

func TestCheckBalanced(t *testing.T) {
	g := buildDiamond(3, 8)
	if err := CheckBalanced(g); err == nil {
		t.Error("unbalanced diamond passed CheckBalanced")
	}
	if _, err := Balance(g); err != nil {
		t.Fatal(err)
	}
	if err := CheckBalanced(g); err != nil {
		t.Errorf("balanced graph failed CheckBalanced: %v", err)
	}
}

func TestPlanGraphExistingFIFOCounts(t *testing.T) {
	// A pre-existing FIFO(3) on the short path of a depth-3 diamond makes
	// the graph already balanced: the plan must be empty.
	g := graph.New()
	src := g.AddSource("in", value.Reals(make([]float64, 8)))
	add := g.Add(graph.OpAdd, "join")
	sink := g.AddSink("out")
	prev := src
	for i := 0; i < 3; i++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, add, 0)
	f := g.AddFIFO("skew", 3)
	g.Connect(src, f, 0)
	g.Connect(f, add, 1)
	g.Connect(add, sink, 0)

	plan, err := PlanGraph(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 0 {
		t.Errorf("already-balanced graph got %d buffer stages", plan.Total)
	}
	if err := CheckBalanced(g); err != nil {
		t.Errorf("CheckBalanced: %v", err)
	}
}

func TestPlanGraphFeedbackExempt(t *testing.T) {
	// A 3-cell loop (feedback arc marked) plus an acyclic tail: planning
	// must succeed and must not buffer the loop arcs.
	g := graph.New()
	gate := g.Add(graph.OpTGate, "gate")
	ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}})
	g.Connect(ctl, gate, 0)
	a := g.Add(graph.OpID, "a")
	b := g.Add(graph.OpID, "b")
	g.Connect(gate, a, 0)
	g.Connect(a, b, 0)
	back := g.Connect(b, gate, 1)
	back.Feedback = true
	g.SetInit(back, value.R(0))
	sink := g.AddSink("out")
	g.Connect(gate, sink, 0)

	plan, err := PlanGraph(g, true)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Total != 0 {
		t.Errorf("loop got %d buffer stages, want 0", plan.Total)
	}
}

func TestPlanGraphRejectsUnmarkedCycle(t *testing.T) {
	g := graph.New()
	a := g.Add(graph.OpID, "a")
	b := g.Add(graph.OpID, "b")
	g.Connect(a, b, 0)
	g.Connect(b, a, 0)
	if _, err := PlanGraph(g, true); err == nil {
		t.Error("unmarked cycle accepted")
	}
	if _, err := PlanGraph(g, false); err == nil {
		t.Error("unmarked cycle accepted by naive plan")
	}
}

// Property: on random layered DAG instruction graphs, Balance yields a
// graph that passes CheckBalanced and simulates at II = 2, with optimal
// buffer count ≤ naive buffer count.
func TestQuickBalanceRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		g, sinkLabel := randomLayeredGraph(rng, 16)
		naivePlan, err := PlanGraph(g, false)
		if err != nil {
			t.Fatalf("trial %d: naive: %v", trial, err)
		}
		optPlan, err := PlanGraph(g, true)
		if err != nil {
			t.Fatalf("trial %d: optimal: %v", trial, err)
		}
		if optPlan.Total > naivePlan.Total {
			t.Errorf("trial %d: optimal %d > naive %d", trial, optPlan.Total, naivePlan.Total)
		}
		Apply(g, optPlan)
		if err := CheckBalanced(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		res, err := exec.Run(g, exec.Options{})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ii := res.II(sinkLabel); ii != 2 {
			t.Errorf("trial %d: II = %v, want 2", trial, ii)
		}
	}
}

// randomLayeredGraph builds a random acyclic arithmetic graph: a few
// sources, interior ADD/MUL/ID cells each fed from earlier cells, and a
// final MAX-reduction into one sink.
func randomLayeredGraph(rng *rand.Rand, interior int) (*graph.Graph, string) {
	g := graph.New()
	n := 48
	var pool []*graph.Node
	for i := 0; i < 2+rng.Intn(3); i++ {
		vals := make([]float64, n)
		for j := range vals {
			vals[j] = rng.Float64()
		}
		pool = append(pool, g.AddSource("src", value.Reals(vals)))
	}
	for i := 0; i < interior; i++ {
		var nd *graph.Node
		switch rng.Intn(3) {
		case 0:
			nd = g.Add(graph.OpAdd, "")
			g.Connect(pool[rng.Intn(len(pool))], nd, 0)
			g.Connect(pool[rng.Intn(len(pool))], nd, 1)
		case 1:
			nd = g.Add(graph.OpMul, "")
			g.Connect(pool[rng.Intn(len(pool))], nd, 0)
			g.SetLiteral(nd, 1, value.R(0.5))
		default:
			nd = g.Add(graph.OpID, "")
			g.Connect(pool[rng.Intn(len(pool))], nd, 0)
		}
		pool = append(pool, nd)
	}
	// Reduce every cell with no consumer yet into a MAX tree.
	var open []*graph.Node
	for _, nd := range g.Nodes() {
		if nd.Op.HasOut() && len(nd.Out) == 0 {
			open = append(open, nd)
		}
	}
	for len(open) > 1 {
		m := g.Add(graph.OpMax, "")
		g.Connect(open[0], m, 0)
		g.Connect(open[1], m, 1)
		open = append(open[2:], m)
	}
	sink := g.AddSink("out")
	g.Connect(open[0], sink, 0)
	return g, "out"
}

// TestQuickSolveIsOptimal cross-checks the min-cost-flow balancer against
// brute force on small random systems: no feasible integer assignment has
// less total slack than Solve's.
func TestQuickSolveIsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(3) // up to 5 nodes
		var cons []Constraint
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Intn(3) == 0 {
					cons = append(cons, Constraint{U: u, V: v, W: 1})
				}
			}
		}
		opt, err := Solve(n, cons)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got := TotalSlack(cons, opt)

		// Brute force: some optimum has every level in [0, n−1] (unit
		// weights: the longest chain has at most n cells).
		hi := n - 1
		best := int64(1 << 40)
		pi := make([]int64, n)
		var enum func(k int)
		enum = func(k int) {
			if k == n {
				if Check(n, cons, pi) == nil {
					if s := TotalSlack(cons, pi); s < best {
						best = s
					}
				}
				return
			}
			for v := 0; v <= hi; v++ {
				pi[k] = int64(v)
				enum(k + 1)
			}
		}
		enum(0)
		if got != best {
			t.Errorf("trial %d (n=%d, %d cons): Solve slack %d, brute force %d",
				trial, n, len(cons), got, best)
		}
	}
}
