package recurrence

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func closeF(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9 || diff <= 1e-9*scale
}

func genParams(rng *rand.Rand, n int) []Param {
	ps := make([]Param, n)
	for i := range ps {
		ps[i] = Param{A: rng.Float64()*2 - 1, B: rng.Float64()*4 - 2}
	}
	return ps
}

// TestCompanionIdentity is the defining property of §7:
// F(a, F(b, x)) = F(G(a,b), x).
func TestCompanionIdentity(t *testing.T) {
	f := func(aA, aB, bA, bB, x float64) bool {
		if anyBad(aA, aB, bA, bB, x) {
			return true
		}
		a, b := Param{aA, aB}, Param{bA, bB}
		return closeF(F(a, F(b, x)), F(G(a, b), x))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCompanionAssociative verifies the associativity claim that licenses
// the log-depth companion tree.
func TestCompanionAssociative(t *testing.T) {
	f := func(aA, aB, bA, bB, cA, cB float64) bool {
		if anyBad(aA, aB, bA, bB, cA, cB) {
			return true
		}
		a, b, c := Param{aA, aB}, Param{bA, bB}, Param{cA, cB}
		l := G(G(a, b), c)
		r := G(a, G(b, c))
		return closeF(l.A, r.A) && closeF(l.B, r.B)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e6 {
			return true
		}
	}
	return false
}

func TestIdentityElement(t *testing.T) {
	if F(Identity, 7.5) != 7.5 {
		t.Error("F(Identity, x) != x")
	}
	a := Param{0.5, 2}
	l, r := G(a, Identity), G(Identity, a)
	if l != a || r != a {
		t.Errorf("identity laws broken: %v %v", l, r)
	}
}

func TestSequential(t *testing.T) {
	// x_i = 2x_{i-1} + 1 from 0: 0, 1, 3, 7, 15
	ps := []Param{{2, 1}, {2, 1}, {2, 1}, {2, 1}}
	got := Sequential(0, ps)
	want := []float64{0, 1, 3, 7, 15}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("x_%d = %v, want %v", i, got[i], want[i])
		}
	}
}

// TestTransform checks x_i = F(c_i, x_{i−2}) against the sequential
// reference — the §7 distance-2 rewrite.
func TestTransform(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := genParams(rng, 20)
	x := Sequential(0.75, ps)
	cs := Transform(ps)
	if len(cs) != len(ps)-1 {
		t.Fatalf("transform produced %d params", len(cs))
	}
	for i := 2; i <= len(ps); i++ {
		got := F(cs[i-2], x[i-2])
		if !closeF(got, x[i]) {
			t.Errorf("x_%d via companion = %v, want %v", i, got, x[i])
		}
	}
	if Transform(ps[:1]) != nil {
		t.Error("Transform of a single parameter should be nil")
	}
}

func TestTransformK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := genParams(rng, 24)
	x := Sequential(-1.25, ps)
	for k := 1; k <= 5; k++ {
		cs, err := TransformK(ps, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(cs) != len(ps)-k+1 {
			t.Fatalf("k=%d: %d params", k, len(cs))
		}
		for i := k; i <= len(ps); i++ {
			got := F(cs[i-k], x[i-k])
			if !closeF(got, x[i]) {
				t.Errorf("k=%d: x_%d = %v, want %v", k, i, got, x[i])
			}
		}
	}
	if _, err := TransformK(ps, 0); err == nil {
		t.Error("distance 0 accepted")
	}
	if _, err := TransformK(ps[:2], 5); err == nil {
		t.Error("too-short parameter list accepted")
	}
}

func TestComposeTree(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{1, 2, 3, 7, 16, 33} {
		ps := genParams(rng, n)
		tree := ComposeTree(ps)
		// fold right-to-left: a(n,0)
		fold := ps[0]
		for i := 1; i < n; i++ {
			fold = G(ps[i], fold)
		}
		if !closeF(tree.A, fold.A) || !closeF(tree.B, fold.B) {
			t.Errorf("n=%d: tree %v, fold %v", n, tree, fold)
		}
		// applying the composite jumps the whole chain
		x := Sequential(0.3, ps)
		if !closeF(F(tree, 0.3), x[n]) {
			t.Errorf("n=%d: composite application %v, want %v", n, F(tree, 0.3), x[n])
		}
	}
	if ComposeTree(nil) != Identity {
		t.Error("empty compose should be Identity")
	}
}

func TestTreeDepth(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4, 16: 4}
	for p, want := range cases {
		if got := TreeDepth(p); got != want {
			t.Errorf("TreeDepth(%d) = %d, want %d", p, got, want)
		}
	}
}

// TestKoggeStone validates the parallel-prefix baseline against the
// sequential reference.
func TestKoggeStone(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{1, 2, 3, 8, 31, 64} {
		ps := genParams(rng, n)
		x0 := rng.Float64()
		seq := Sequential(x0, ps)
		par := KoggeStone(x0, ps)
		if len(par) != len(seq) {
			t.Fatalf("n=%d: lengths differ", n)
		}
		for i := range seq {
			if !closeF(seq[i], par[i]) {
				t.Errorf("n=%d: x_%d = %v (Kogge), want %v", n, i, par[i], seq[i])
			}
		}
	}
}

func TestScans(t *testing.T) {
	minOp := func(a, b float64) float64 { return math.Min(a, b) }
	bs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	x := ScanSequential(minOp, 10, bs)
	want := []float64{10, 3, 1, 1, 1, 1, 1, 1, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Errorf("min scan x_%d = %v, want %v", i, x[i], want[i])
		}
	}
	// distance-2 rewrite
	cs := ScanTransform(minOp, bs)
	for i := 2; i <= len(bs); i++ {
		if got := minOp(cs[i-2], x[i-2]); got != x[i] {
			t.Errorf("min scan companion x_%d = %v, want %v", i, got, x[i])
		}
	}
	if ScanTransform(minOp, bs[:1]) != nil {
		t.Error("short scan transform should be nil")
	}
	maxOp := func(a, b float64) float64 { return math.Max(a, b) }
	xm := ScanSequential(maxOp, -1, bs)
	if xm[len(xm)-1] != 9 {
		t.Errorf("max scan final = %v", xm[len(xm)-1])
	}
}
