// Package recurrence implements the first-order recurrence algebra of §7:
// recurrence functions F, their companion functions G with
// F(a, F(b, x)) = F(G(a,b), x), the distance-k transformation that the
// companion pipeline computes, and the Kogge parallel-prefix baseline
// ([11][12]) the paper builds on.
//
// The linear recurrence x_i = a_i(1)·x_{i−1} + a_i(2) is the paper's
// running example (Example 2): its parameter vector is the ordered pair
// (A, B) and its companion is G(a, b) = (a(1)·b(1), a(1)·b(2) + a(2)).
// G is associative, which licenses the log₂(p)-level companion tree for
// loops of deeper pipelines.
package recurrence

import "fmt"

// Param is the parameter vector a_i = (A, B) of the linear recurrence
// x_i = A·x_{i−1} + B.
type Param struct {
	A, B float64
}

// F applies the linear recurrence function: F(a, x) = a.A·x + a.B.
func F(a Param, x float64) float64 { return a.A*x + a.B }

// G is the companion function of F: F(a, F(b, x)) = F(G(a,b), x) for all
// parameter vectors and x. Note the composition order: G(a, b) is "b then
// a".
func G(a, b Param) Param {
	return Param{A: a.A * b.A, B: a.A*b.B + a.B}
}

// Identity is the neutral element of G: F(Identity, x) = x.
var Identity = Param{A: 1, B: 0}

// Sequential solves the recurrence directly: given x_0 and parameters
// a_1..a_n it returns [x_0, x_1, ..., x_n]. This is the semantic reference
// for all pipelined and parallel schemes.
func Sequential(x0 float64, ps []Param) []float64 {
	out := make([]float64, len(ps)+1)
	out[0] = x0
	for i, p := range ps {
		out[i+1] = F(p, out[i])
	}
	return out
}

// Transform computes the distance-2 parameter vectors of §7:
// c_i = G(a_i, a_{i−1}), so that x_i = F(c_i, x_{i−2}). Given a_1..a_n it
// returns c_2..c_n (the transformed recurrence needs both seeds x_0, x_1).
func Transform(ps []Param) []Param {
	if len(ps) < 2 {
		return nil
	}
	out := make([]Param, len(ps)-1)
	for i := 1; i < len(ps); i++ {
		out[i-1] = G(ps[i], ps[i-1])
	}
	return out
}

// TransformK computes distance-k parameter vectors c_i = a(i, i−k), the
// composition of the k consecutive parameters a_{i−k+1}..a_i, so that
// x_i = F(c_i, x_{i−k}). Given a_1..a_n it returns c_k..c_n. The paper
// notes this generalization follows from associativity ("any x_i can be
// expressed in terms of x_j").
func TransformK(ps []Param, k int) ([]Param, error) {
	if k < 1 {
		return nil, fmt.Errorf("recurrence: distance %d < 1", k)
	}
	if len(ps) < k {
		return nil, fmt.Errorf("recurrence: %d parameters for distance %d", len(ps), k)
	}
	out := make([]Param, len(ps)-k+1)
	for i := k - 1; i < len(ps); i++ {
		c := ps[i]
		for j := 1; j < k; j++ {
			c = G(c, ps[i-j])
		}
		out[i-k+1] = c
	}
	return out, nil
}

// ComposeTree folds parameters a_1..a_n into the single composite
// a(n, 0) = G(a_n, G(a_{n−1}, ...)) using a balanced tree of depth
// ⌈log₂ n⌉ — the companion-tree arrangement of §7 ("if the number of
// stages in F is p, we can construct a companion pipeline consisting of
// log₂ p levels of G"). Associativity of G makes the tree equal the fold.
func ComposeTree(ps []Param) Param {
	switch len(ps) {
	case 0:
		return Identity
	case 1:
		return ps[0]
	}
	mid := len(ps) / 2
	// ps is in application order a_1..a_n: the right half applies after
	// the left half, so it composes on the left of G.
	return G(ComposeTree(ps[mid:]), ComposeTree(ps[:mid]))
}

// TreeDepth returns the companion-tree depth for a pipeline of p stages.
func TreeDepth(p int) int {
	d := 0
	for (1 << d) < p {
		d++
	}
	return d
}

// KoggeStone solves the recurrence by parallel prefix over G — the scheme
// of Kogge [11][12] that the paper adapts to dataflow. It performs
// ⌈log₂ n⌉ rounds; round r composes each prefix with the prefix 2^r
// positions earlier. The returned values equal Sequential's up to
// floating-point reassociation. The round structure is what a parallel
// machine would execute; this sequential simulation preserves it for
// testing and benchmarking.
func KoggeStone(x0 float64, ps []Param) []float64 {
	n := len(ps)
	prefix := make([]Param, n)
	copy(prefix, ps)
	for stride := 1; stride < n; stride *= 2 {
		next := make([]Param, n)
		copy(next, prefix)
		for i := stride; i < n; i++ {
			next[i] = G(prefix[i], prefix[i-stride])
		}
		prefix = next
	}
	out := make([]float64, n+1)
	out[0] = x0
	for i := 0; i < n; i++ {
		out[i+1] = F(prefix[i], x0)
	}
	return out
}

// ScanOp is an associative binary operation with x_i = op(b_i, x_{i−1})
// form — the other companion-bearing family the compiler recognizes
// (running min/max and, as special cases of Param, sums and products).
// For such F(b, x) = op(b, x), the companion is G = op itself.
type ScanOp func(a, b float64) float64

// ScanSequential computes the running scan x_i = op(b_i, x_{i−1}).
func ScanSequential(op ScanOp, x0 float64, bs []float64) []float64 {
	out := make([]float64, len(bs)+1)
	out[0] = x0
	for i, b := range bs {
		out[i+1] = op(b, out[i])
	}
	return out
}

// ScanTransform computes the distance-2 scan parameters c_i = op(b_i,
// b_{i−1}) so that x_i = op(c_i, x_{i−2}).
func ScanTransform(op ScanOp, bs []float64) []float64 {
	if len(bs) < 2 {
		return nil
	}
	out := make([]float64, len(bs)-1)
	for i := 1; i < len(bs); i++ {
		out[i-1] = op(bs[i], bs[i-1])
	}
	return out
}
