package partition

import "sync/atomic"

// Ring is a bounded single-producer single-consumer queue of cell IDs,
// the cross-shard token/acknowledge notification channel of the sharded
// engines. Exactly one worker pushes and exactly one worker pops; the
// atomic head/tail loads and stores give the pair release/acquire
// ordering, so the buffered element is visible before the index that
// publishes it.
//
// Capacity is sized by the caller to the number of arcs crossing the
// (producer, consumer) shard pair: each cross arc contributes at most one
// notification per instruction time, and the consumer drains its rings
// every instruction time, so a correctly sized ring can never fill. Push
// reports false instead of overwriting when that invariant is broken,
// letting the engine fail loudly with a shard/ring diagnostic.
type Ring struct {
	buf  []int32
	mask int64
	head atomic.Int64 // next index to pop (consumer-owned)
	tail atomic.Int64 // next index to push (producer-owned)

	// pushes and peak are producer-side statistics, read only after the
	// workers join.
	pushes int64
	peak   int64
}

// NewRing returns a ring holding at least capacity elements (rounded up
// to a power of two, minimum 2).
func NewRing(capacity int) *Ring {
	size := 2
	for size < capacity {
		size <<= 1
	}
	return &Ring{buf: make([]int32, size), mask: int64(size - 1)}
}

// Cap returns the ring's true capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Push appends v; it reports false when the ring is full.
func (r *Ring) Push(v int32) bool {
	tail := r.tail.Load()
	occ := tail - r.head.Load()
	if occ >= int64(len(r.buf)) {
		return false
	}
	r.buf[tail&r.mask] = v
	r.tail.Store(tail + 1)
	r.pushes++
	if occ+1 > r.peak {
		r.peak = occ + 1
	}
	return true
}

// Pop removes and returns the oldest element, reporting false when empty.
func (r *Ring) Pop() (int32, bool) {
	head := r.head.Load()
	if head == r.tail.Load() {
		return 0, false
	}
	v := r.buf[head&r.mask]
	r.head.Store(head + 1)
	return v, true
}

// Len returns the current occupancy as seen by the consumer.
func (r *Ring) Len() int { return int(r.tail.Load() - r.head.Load()) }

// Pushes returns the total elements ever pushed. Producer-side; call
// after the producing worker has joined.
func (r *Ring) Pushes() int64 { return r.pushes }

// Peak returns the highest occupancy observed at push time. Producer-
// side; call after the producing worker has joined.
func (r *Ring) Peak() int64 { return r.peak }
