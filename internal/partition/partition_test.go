package partition

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// chainGraph builds w independent source→(d×ID)→sink pipelines.
func chainGraph(w, d int) *graph.Graph {
	g := graph.New()
	for i := 0; i < w; i++ {
		src := g.AddSource("in", []value.Value{value.I(1)})
		prev := src
		for j := 0; j < d; j++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		sink := g.AddSink("out")
		g.Connect(prev, sink, 0)
	}
	return g
}

func TestPartitionCoversAndBalances(t *testing.T) {
	g := chainGraph(8, 14) // 128 cells
	for _, p := range []int{1, 2, 3, 4, 8} {
		a := Partition(g, p)
		if a.P != p {
			t.Fatalf("P=%d: got effective P %d", p, a.P)
		}
		counted := make([]int, p)
		for id, s := range a.Shard {
			if s < 0 || s >= p {
				t.Fatalf("P=%d: cell %d assigned to shard %d", p, id, s)
			}
			counted[s]++
		}
		if !reflect.DeepEqual(counted, a.Size) {
			t.Fatalf("P=%d: Size %v does not match assignment %v", p, a.Size, counted)
		}
		ideal := g.NumNodes() / p
		for s, sz := range a.Size {
			if sz < ideal-ideal/2 || sz > ideal+ideal/2+1 {
				t.Fatalf("P=%d: shard %d badly unbalanced: %d cells (ideal %d)", p, s, sz, ideal)
			}
		}
	}
}

func TestPartitionKeepsChainsTogether(t *testing.T) {
	// 4 chains, 4 shards: the topological chunking should assign each
	// chain almost entirely to one shard, so the cut stays near zero.
	g := chainGraph(4, 30)
	a := Partition(g, 4)
	if a.CrossArcs > 8 {
		t.Fatalf("cut too large for independent chains: %d cross arcs", a.CrossArcs)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := chainGraph(5, 9)
	a := Partition(g, 4)
	for i := 0; i < 5; i++ {
		b := Partition(g, 4)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("partition not deterministic: %v vs %v", a, b)
		}
	}
}

func TestPartitionClampsWorkers(t *testing.T) {
	g := graph.New()
	src := g.AddSource("in", []value.Value{value.I(1)})
	sink := g.AddSink("out")
	g.Connect(src, sink, 0)
	a := Partition(g, 8)
	if a.P != 2 {
		t.Fatalf("expected P clamped to 2 cells, got %d", a.P)
	}
	empty := Partition(graph.New(), 4)
	if empty.P != 1 || len(empty.Shard) != 0 {
		t.Fatalf("empty graph: got P=%d shards=%v", empty.P, empty.Shard)
	}
}

func TestRingPushPopWraps(t *testing.T) {
	r := NewRing(3)
	if r.Cap() != 4 {
		t.Fatalf("capacity not rounded to power of two: %d", r.Cap())
	}
	for round := 0; round < 10; round++ { // exercise index wrap-around
		for i := int32(0); i < 4; i++ {
			if !r.Push(i) {
				t.Fatalf("push %d failed at occupancy %d", i, r.Len())
			}
		}
		if r.Push(99) {
			t.Fatal("push succeeded on a full ring")
		}
		for i := int32(0); i < 4; i++ {
			v, ok := r.Pop()
			if !ok || v != i {
				t.Fatalf("pop got (%d,%v), want (%d,true)", v, ok, i)
			}
		}
		if _, ok := r.Pop(); ok {
			t.Fatal("pop succeeded on an empty ring")
		}
	}
	if r.Pushes() != 40 || r.Peak() != 4 {
		t.Fatalf("stats: pushes=%d peak=%d", r.Pushes(), r.Peak())
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	const n = 10000
	r := NewRing(64)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int32(0); i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched() // full: let the consumer drain
			}
		}
	}()
	for want := int32(0); want < n; {
		if v, ok := r.Pop(); ok {
			if v != want {
				t.Errorf("out of order: got %d want %d", v, want)
				break
			}
			want++
		} else {
			runtime.Gosched() // empty: let the producer fill
		}
	}
	wg.Wait()
}

func TestBarrierReleasesAllWorkers(t *testing.T) {
	const workers, rounds = 4, 200
	b := NewBarrier(workers)
	var mu sync.Mutex
	seen := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				mu.Lock()
				seen[w]++
				mine := seen[w]
				for _, s := range seen {
					// No worker may be a full round ahead before the
					// barrier releases the slowest.
					if s < mine-1 || s > mine+1 {
						t.Errorf("round skew: %v", seen)
					}
				}
				mu.Unlock()
				b.Wait()
			}
		}(w)
	}
	wg.Wait()
}
