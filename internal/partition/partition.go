// Package partition splits one instruction graph across P simulation
// shards. The sharded engines in internal/exec and internal/machine give
// each worker goroutine ownership of one shard's cells and exchange
// cross-shard token/acknowledge notifications over bounded SPSC rings,
// synchronizing once per instruction time — so a good partition is one
// whose shards carry equal firing load and whose cut (the number of arcs
// crossing shards) is small.
//
// The partitioner works in two deterministic steps:
//
//  1. Order the cells by a depth-first traversal of the forward
//     (non-feedback) arcs, rooted at the graph's entry cells in ID
//     order. Contiguous chunks of that order become the initial shards:
//     a DFS follows each pipeline downstream before starting the next,
//     so stages that feed each other land in the same shard — exactly
//     the spatial partitioning a streaming task graph wants.
//  2. Refine shard boundaries with a few Kernighan–Lin-style passes:
//     a cell moves to the shard holding the majority of its neighbours
//     when that strictly reduces the cut and keeps every shard within
//     the balance tolerance.
//
// Both steps are pure functions of the graph and P — no randomness, no
// map iteration — so every run of every worker count sees the same
// assignment, which the deterministic-replay contract of the sharded
// engines depends on.
package partition

import (
	"fmt"
	"strings"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
)

// Assignment maps every cell of a graph to one of P shards.
type Assignment struct {
	// P is the effective shard count (≤ the requested count when the
	// graph has fewer cells than workers).
	P int
	// Shard[id] is the shard owning cell id.
	Shard []int
	// Size[s] is the number of cells in shard s.
	Size []int
	// CrossArcs is the number of arcs whose producer and consumer live
	// in different shards — the cut the refinement minimizes.
	CrossArcs int
}

// refinePasses bounds the boundary-refinement sweeps. The initial
// topological chunking is already close; two sweeps recover almost all of
// the remaining gain and keep partitioning O(passes · (N + A)).
const refinePasses = 2

// balanceSlack is the fraction by which a shard may exceed the ideal
// ⌈N/P⌉ size during refinement. Load balance dominates barrier wait time,
// so the tolerance is tight.
const balanceSlack = 0.05

// Partition assigns the cells of g to min(p, NumNodes) shards.
func Partition(g *graph.Graph, p int) *Assignment {
	n := g.NumNodes()
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	a := &Assignment{P: p, Shard: make([]int, n), Size: make([]int, p)}
	if n == 0 {
		return a
	}

	order := dfsOrder(g)
	for i, id := range order {
		s := i * p / n
		a.Shard[id] = s
		a.Size[s]++
	}
	if p > 1 {
		a.refine(g)
	}
	a.CrossArcs = 0
	for _, arc := range g.Arcs() {
		if a.Shard[arc.From] != a.Shard[arc.To] {
			a.CrossArcs++
		}
	}
	return a
}

// dfsOrder returns the cell IDs in iterative depth-first preorder over
// the non-feedback arcs, rooted at the zero-in-degree cells in ascending
// ID order (then any cells a declared-feedback-free traversal missed, in
// ID order). The order need not be topological — chunking only needs
// downstream locality — but it is a pure function of the graph.
func dfsOrder(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	indeg := make([]int, n)
	for _, arc := range g.Arcs() {
		if !arc.Feedback {
			indeg[arc.To]++
		}
	}
	order := make([]graph.NodeID, 0, n)
	seen := make([]bool, n)
	var stack []graph.NodeID
	visit := func(root graph.NodeID) {
		if seen[root] {
			return
		}
		stack = append(stack[:0], root)
		seen[root] = true
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, id)
			out := g.Node(id).Out
			// Push in reverse so the first destination is explored first.
			for i := len(out) - 1; i >= 0; i-- {
				arc := out[i]
				if !arc.Feedback && !seen[arc.To] {
					seen[arc.To] = true
					stack = append(stack, arc.To)
				}
			}
		}
	}
	for id := 0; id < n; id++ {
		if indeg[id] == 0 {
			visit(graph.NodeID(id))
		}
	}
	for id := 0; id < n; id++ {
		visit(graph.NodeID(id))
	}
	return order
}

// refine runs KL-style boundary sweeps: move a cell to the neighbouring
// shard with the largest connectivity gain when the move strictly reduces
// the cut and both shards stay within the balance tolerance.
func (a *Assignment) refine(g *graph.Graph) {
	n := len(a.Shard)
	maxSize := (n + a.P - 1) / a.P
	if slack := int(float64(maxSize) * balanceSlack); slack > 0 {
		maxSize += slack
	}
	deg := make([]int, a.P) // scratch: neighbour count per shard
	for pass := 0; pass < refinePasses; pass++ {
		moved := false
		for id := 0; id < n; id++ {
			cur := a.Shard[id]
			if a.Size[cur] <= 1 {
				continue
			}
			node := g.Node(graph.NodeID(id))
			for i := range deg {
				deg[i] = 0
			}
			for _, arc := range node.Out {
				deg[a.Shard[arc.To]]++
			}
			for _, in := range node.In {
				if in.Arc != nil {
					deg[a.Shard[in.Arc.From]]++
				}
			}
			best, bestGain := cur, 0
			for s := 0; s < a.P; s++ {
				if s == cur || a.Size[s] >= maxSize {
					continue
				}
				if gain := deg[s] - deg[cur]; gain > bestGain {
					best, bestGain = s, gain
				}
			}
			if best != cur {
				a.Shard[id] = best
				a.Size[cur]--
				a.Size[best]++
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// ShardStat is the per-shard accounting one sharded run returns: how much
// work the shard did and how much time it spent waiting on its peers. The
// barrier-wait histogram is in nanoseconds.
type ShardStat struct {
	// Cells is the number of instruction cells (exec) or machine
	// endpoints (machine) the shard owns.
	Cells int
	// Firings counts cell firings retired by this shard.
	Firings int64
	// RingSends / RingRecvs count cross-shard token/acknowledge
	// notifications this shard pushed to peers / drained from its
	// inbound rings.
	RingSends int64
	RingRecvs int64
	// RingPeak is the highest occupancy observed on any of the shard's
	// inbound rings.
	RingPeak int64
	// BarrierWait is the distribution of nanoseconds this shard's worker
	// spent spinning at the per-instruction-time barriers.
	BarrierWait trace.Histogram
	// WallNs is the worker goroutine's total wall-clock lifetime — two
	// clock reads per run, so it costs nothing per cycle. Span exports use
	// it to place the shard on a timeline.
	WallNs int64
}

// Summary renders one line per shard, for dfsim -metrics and dfbench.
func Summary(stats []ShardStat) string {
	var b strings.Builder
	for i := range stats {
		s := &stats[i]
		fmt.Fprintf(&b, "shard %d: cells=%d firings=%d ring sends=%d recvs=%d peak=%d barrier p50=%.0fns p99=%.0fns\n",
			i, s.Cells, s.Firings, s.RingSends, s.RingRecvs, s.RingPeak,
			s.BarrierWait.Quantile(0.50), s.BarrierWait.Quantile(0.99))
	}
	return b.String()
}
