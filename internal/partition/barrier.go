package partition

import (
	"runtime"
	"sync/atomic"
	"time"
)

// Barrier is the reusable per-instruction-time rendezvous of the sharded
// engines: every worker calls Wait at the end of a phase and no worker
// proceeds until all have arrived. It is a sense-reversing spin barrier —
// the last arriver flips the phase word, releasing the spinners — because
// the engines cross it twice per simulated cycle and a channel or
// sync.Cond round trip would dominate small cycles. Spinners yield the
// processor on every probe so the barrier also works (slowly but
// correctly) when GOMAXPROCS is below the worker count.
type Barrier struct {
	n     int32
	count atomic.Int32
	phase atomic.Uint32
}

// NewBarrier returns a barrier for n workers.
func NewBarrier(n int) *Barrier { return &Barrier{n: int32(n)} }

// Wait blocks until all n workers have called it, and returns the
// nanoseconds this caller spent spinning (0 for the last arriver, which
// measures nothing).
func (b *Barrier) Wait() int64 {
	p := b.phase.Load()
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.phase.Add(1)
		return 0
	}
	start := time.Now()
	for b.phase.Load() == p {
		runtime.Gosched()
	}
	return time.Since(start).Nanoseconds()
}
