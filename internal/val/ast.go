package val

import (
	"fmt"
	"strings"
)

// Type is a Val type: a scalar kind, an array of a scalar kind, or — the
// §9 extension this reproduction implements — a two-dimensional array,
// written array2[T] and represented as a row-major element stream.
type Type struct {
	// Array reports whether this is an array type.
	Array bool
	// TwoD reports a two-dimensional array (array2[T]).
	TwoD bool
	// Elem is the scalar kind (of the elements, for arrays).
	Elem ScalarKind
}

// ScalarKind enumerates Val's scalar types.
type ScalarKind uint8

const (
	KindInvalid ScalarKind = iota
	KindInt
	KindReal
	KindBool
)

func (k ScalarKind) String() string {
	switch k {
	case KindInt:
		return "integer"
	case KindReal:
		return "real"
	case KindBool:
		return "boolean"
	default:
		return "invalid"
	}
}

func (t Type) String() string {
	switch {
	case t.TwoD:
		return "array2[" + t.Elem.String() + "]"
	case t.Array:
		return "array[" + t.Elem.String() + "]"
	default:
		return t.Elem.String()
	}
}

// Scalar constructs a scalar type.
func Scalar(k ScalarKind) Type { return Type{Elem: k} }

// ArrayOf constructs an array type.
func ArrayOf(k ScalarKind) Type { return Type{Array: true, Elem: k} }

// Array2Of constructs a two-dimensional array type.
func Array2Of(k ScalarKind) Type { return Type{Array: true, TwoD: true, Elem: k} }

// Op enumerates Val's operators.
type Op uint8

const (
	OpInvalid Op = iota
	OpAdd        // +
	OpSub        // -
	OpMul        // *
	OpDiv        // /
	OpLT         // <
	OpLE         // <=
	OpGT         // >
	OpGE         // >=
	OpEQ         // =
	OpNE         // ~=
	OpAnd        // &
	OpOr         // |
	OpNot        // ~ (unary)
	OpNeg        // - (unary)
	OpMin        // min(a, b)
	OpMax        // max(a, b)
	OpAbs        // abs(a) (unary)
)

var opText = map[Op]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpLT: "<", OpLE: "<=", OpGT: ">", OpGE: ">=", OpEQ: "=", OpNE: "~=",
	OpAnd: "&", OpOr: "|", OpNot: "~", OpNeg: "-",
	OpMin: "min", OpMax: "max", OpAbs: "abs",
}

func (op Op) String() string {
	if s, ok := opText[op]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Relational reports whether the operator yields a boolean from numerics.
func (op Op) Relational() bool {
	switch op {
	case OpLT, OpLE, OpGT, OpGE, OpEQ, OpNE:
		return true
	}
	return false
}

// Expr is a Val expression node. Type() returns the checked type (valid
// only after Check).
type Expr interface {
	Pos() Pos
	Type() Type
	setType(Type)
	String() string
}

// base carries position and checked type for all expression nodes.
type base struct {
	P  Pos
	Ty Type
}

func (b *base) Pos() Pos       { return b.P }
func (b *base) Type() Type     { return b.Ty }
func (b *base) setType(t Type) { b.Ty = t }

// IntLit is an integer literal.
type IntLit struct {
	base
	Val int64
}

func (e *IntLit) String() string { return fmt.Sprintf("%d", e.Val) }

// RealLit is a real literal.
type RealLit struct {
	base
	F    float64
	Text string
}

func (e *RealLit) String() string { return e.Text }

// BoolLit is true or false.
type BoolLit struct {
	base
	Val bool
}

func (e *BoolLit) String() string {
	if e.Val {
		return "true"
	}
	return "false"
}

// Name is an identifier use.
type Name struct {
	base
	Ident string
}

func (e *Name) String() string { return e.Ident }

// Binary is a binary operator application.
type Binary struct {
	base
	Op   Op
	L, R Expr
}

func (e *Binary) String() string {
	if e.Op == OpMin || e.Op == OpMax {
		return fmt.Sprintf("%s(%s, %s)", e.Op, e.L, e.R)
	}
	return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
}

// Unary is a unary operator application.
type Unary struct {
	base
	Op Op
	E  Expr
}

func (e *Unary) String() string {
	if e.Op == OpAbs {
		return fmt.Sprintf("abs(%s)", e.E)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.E)
}

// If is a conditional expression.
type If struct {
	base
	Cond, Then, Else Expr
}

func (e *If) String() string {
	return fmt.Sprintf("if %s then %s else %s endif", e.Cond, e.Then, e.Else)
}

// Def is one definition `name : type := expr`.
type Def struct {
	P     Pos
	Name  string
	Ty    Type
	TySet bool // whether a type annotation was written
	Init  Expr
}

func (d Def) String() string {
	if d.TySet {
		return fmt.Sprintf("%s : %s := %s", d.Name, d.Ty, d.Init)
	}
	return fmt.Sprintf("%s := %s", d.Name, d.Init)
}

// Let is `let defs in body endlet`.
type Let struct {
	base
	Defs []Def
	Body Expr
}

func (e *Let) String() string {
	var b strings.Builder
	b.WriteString("let ")
	for i, d := range e.Defs {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(d.String())
	}
	fmt.Fprintf(&b, " in %s endlet", e.Body)
	return b.String()
}

// Index is array element selection: `A[expr]` for vectors, `A[e1, e2]`
// for two-dimensional arrays (Sub2 non-nil).
type Index struct {
	base
	Array string
	Sub   Expr
	Sub2  Expr
}

func (e *Index) String() string {
	if e.Sub2 != nil {
		return fmt.Sprintf("%s[%s, %s]", e.Array, e.Sub, e.Sub2)
	}
	return fmt.Sprintf("%s[%s]", e.Array, e.Sub)
}

// Forall is the paper's forall construct (§4, Example 1). The §9
// two-dimensional extension adds an optional second index variable:
// `forall i in [a, b], j in [c, d] ...` constructs an array2 row-major.
type Forall struct {
	base
	IndexVar string
	Lo, Hi   Expr // constant expressions
	// Second dimension (nil/empty when one-dimensional).
	IndexVar2 string
	Lo2, Hi2  Expr
	Defs      []Def
	Accum     Expr
}

// TwoD reports whether the forall ranges over two index variables.
func (e *Forall) TwoD() bool { return e.IndexVar2 != "" }

func (e *Forall) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "forall %s in [%s, %s]", e.IndexVar, e.Lo, e.Hi)
	if e.TwoD() {
		fmt.Fprintf(&b, ", %s in [%s, %s]", e.IndexVar2, e.Lo2, e.Hi2)
	}
	b.WriteByte(' ')
	for _, d := range e.Defs {
		fmt.Fprintf(&b, "%s; ", d)
	}
	fmt.Fprintf(&b, "construct %s endall", e.Accum)
	return b.String()
}

// ArrayInit is the array initializer `[r: E]` binding one initial element.
type ArrayInit struct {
	base
	At  Expr // constant index expression
	Val Expr
}

func (e *ArrayInit) String() string { return fmt.Sprintf("[%s: %s]", e.At, e.Val) }

// Append is the array update `X[i: P]` used in iter clauses to append
// element i to the accumulating array.
type Append struct {
	base
	Array string
	At    Expr
	Val   Expr
}

func (e *Append) String() string { return fmt.Sprintf("%s[%s: %s]", e.Array, e.At, e.Val) }

// Assign is one `name := expr` inside an iter clause.
type Assign struct {
	P    Pos
	Name string
	Val  Expr
}

func (a Assign) String() string { return fmt.Sprintf("%s := %s", a.Name, a.Val) }

// Iter is the `iter ... enditer` rebinding clause of a for-iter body.
type Iter struct {
	base
	Assigns []Assign
}

func (e *Iter) String() string {
	var b strings.Builder
	b.WriteString("iter ")
	for i, a := range e.Assigns {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(a.String())
	}
	b.WriteString(" enditer")
	return b.String()
}

// ForIter is the paper's for-iter construct (§4, Example 2).
type ForIter struct {
	base
	Inits []Def
	Body  Expr
}

func (e *ForIter) String() string {
	var b strings.Builder
	b.WriteString("for ")
	for i, d := range e.Inits {
		if i > 0 {
			b.WriteString("; ")
		}
		b.WriteString(d.String())
	}
	fmt.Fprintf(&b, " do %s endfor", e.Body)
	return b.String()
}

// DeclKind discriminates top-level declarations.
type DeclKind uint8

const (
	DeclParam DeclKind = iota
	DeclInput
	DeclBlock
	DeclOutput
)

// Decl is one top-level declaration of a pipe-structured program.
type Decl struct {
	P    Pos
	Kind DeclKind
	Name string
	Ty   Type
	// Param: the constant expression. Block: the defining expression.
	Init Expr
	// Input: declared index range(s); Lo2/Hi2 for array2 inputs.
	Lo, Hi   Expr
	Lo2, Hi2 Expr
}

// Program is a parsed pipe-structured Val program.
type Program struct {
	Decls []Decl
	// Src is the source text the program was parsed from ("" when the AST
	// was built programmatically); checker diagnostics use it for excerpts.
	Src string
}

// String renders the program in Val syntax.
func (p *Program) String() string {
	var b strings.Builder
	for _, d := range p.Decls {
		switch d.Kind {
		case DeclParam:
			fmt.Fprintf(&b, "param %s = %s;\n", d.Name, d.Init)
		case DeclInput:
			if d.Ty.TwoD {
				fmt.Fprintf(&b, "input %s : %s [%s, %s][%s, %s];\n", d.Name, d.Ty, d.Lo, d.Hi, d.Lo2, d.Hi2)
			} else {
				fmt.Fprintf(&b, "input %s : %s [%s, %s];\n", d.Name, d.Ty, d.Lo, d.Hi)
			}
		case DeclBlock:
			fmt.Fprintf(&b, "%s : %s :=\n  %s;\n", d.Name, d.Ty, d.Init)
		case DeclOutput:
			fmt.Fprintf(&b, "output %s;\n", d.Name)
		}
	}
	return b.String()
}
