package val

import (
	"fmt"
)

// InputInfo describes a declared input array after checking: its element
// type and its constant index range(s). Two-dimensional inputs arrive as
// row-major element streams over [Lo,Hi]×[Lo2,Hi2].
type InputInfo struct {
	Name     string
	Ty       Type
	Lo, Hi   int64
	Lo2, Hi2 int64
}

// Len returns the number of elements in the input's index range.
func (in InputInfo) Len() int {
	n := int(in.Hi - in.Lo + 1)
	if in.Ty.TwoD {
		n *= int(in.Hi2 - in.Lo2 + 1)
	}
	return n
}

// BlockInfo describes one array-defining block of a pipe-structured
// program.
type BlockInfo struct {
	Name string
	Ty   Type
	Expr Expr
	// Consumes lists the array names the block's expression references, in
	// first-use order — the incoming edges of the flow dependency graph.
	Consumes []string
}

// Checked is a type-checked pipe-structured program.
type Checked struct {
	Prog    *Program
	Params  map[string]int64
	Inputs  []InputInfo
	Blocks  []BlockInfo
	Outputs []string

	inputIdx map[string]int
	blockIdx map[string]int
}

// Input returns the input with the given name.
func (c *Checked) Input(name string) (InputInfo, bool) {
	i, ok := c.inputIdx[name]
	if !ok {
		return InputInfo{}, false
	}
	return c.Inputs[i], true
}

// Block returns the block with the given name.
func (c *Checked) Block(name string) (BlockInfo, bool) {
	i, ok := c.blockIdx[name]
	if !ok {
		return BlockInfo{}, false
	}
	return c.Blocks[i], true
}

// errf formats a positioned type error; Check attaches the source text for
// the excerpt on the way out.
func errf(p Pos, format string, args ...any) error {
	return &Error{P: p, Msg: fmt.Sprintf(format, args...)}
}

// EvalConst evaluates a compile-time constant integer expression over the
// given parameter bindings — the index ranges of a pipe-structured program
// must be "fixed" (§4 definition), i.e. manifest at compile time.
func EvalConst(e Expr, params map[string]int64) (int64, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Val, nil
	case *Name:
		if v, ok := params[x.Ident]; ok {
			return v, nil
		}
		return 0, errf(x.Pos(), "%s is not a compile-time constant", x.Ident)
	case *Unary:
		if x.Op != OpNeg {
			return 0, errf(x.Pos(), "operator %s not allowed in constant expressions", x.Op)
		}
		v, err := EvalConst(x.E, params)
		return -v, err
	case *Binary:
		l, err := EvalConst(x.L, params)
		if err != nil {
			return 0, err
		}
		r, err := EvalConst(x.R, params)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case OpAdd:
			return l + r, nil
		case OpSub:
			return l - r, nil
		case OpMul:
			return l * r, nil
		case OpDiv:
			if r == 0 {
				return 0, errf(x.Pos(), "division by zero in constant expression")
			}
			return l / r, nil
		default:
			return 0, errf(x.Pos(), "operator %s not allowed in constant expressions", x.Op)
		}
	default:
		return 0, errf(e.Pos(), "not a compile-time constant expression")
	}
}

// checker carries scoping state during Check.
type checker struct {
	c      *Checked
	scopes []map[string]Type
	// loopVars, when inside a for-iter body, maps loop variable names to
	// their types (the targets Iter clauses may rebind).
	loopVars map[string]Type
	consumes *[]string // block-level array-use recorder
}

func (ck *checker) push() { ck.scopes = append(ck.scopes, map[string]Type{}) }
func (ck *checker) pop()  { ck.scopes = ck.scopes[:len(ck.scopes)-1] }

func (ck *checker) bind(p Pos, name string, t Type) error {
	top := ck.scopes[len(ck.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(p, "%s redefined in the same scope", name)
	}
	top[name] = t
	return nil
}

func (ck *checker) lookup(name string) (Type, bool) {
	for i := len(ck.scopes) - 1; i >= 0; i-- {
		if t, ok := ck.scopes[i][name]; ok {
			return t, true
		}
	}
	return Type{}, false
}

// Check type-checks a parsed program and returns its checked form.
func Check(prog *Program) (*Checked, error) {
	c, err := check(prog)
	if err != nil {
		return nil, attachSrc(err, prog.Src)
	}
	return c, nil
}

func check(prog *Program) (*Checked, error) {
	c := &Checked{
		Prog:     prog,
		Params:   map[string]int64{},
		inputIdx: map[string]int{},
		blockIdx: map[string]int{},
	}
	ck := &checker{c: c}
	ck.push() // global scope

	seen := map[string]Pos{}
	declare := func(p Pos, name string) error {
		if prev, dup := seen[name]; dup {
			return errf(p, "%s already declared at %s", name, prev)
		}
		seen[name] = p
		return nil
	}

	for _, d := range prog.Decls {
		switch d.Kind {
		case DeclParam:
			if err := declare(d.P, d.Name); err != nil {
				return nil, err
			}
			v, err := EvalConst(d.Init, c.Params)
			if err != nil {
				return nil, err
			}
			c.Params[d.Name] = v

		case DeclInput:
			if err := declare(d.P, d.Name); err != nil {
				return nil, err
			}
			if !d.Ty.Array {
				return nil, errf(d.P, "input %s must be an array", d.Name)
			}
			lo, err := EvalConst(d.Lo, c.Params)
			if err != nil {
				return nil, err
			}
			hi, err := EvalConst(d.Hi, c.Params)
			if err != nil {
				return nil, err
			}
			if hi < lo {
				return nil, errf(d.P, "input %s has empty range [%d, %d]", d.Name, lo, hi)
			}
			info := InputInfo{Name: d.Name, Ty: d.Ty, Lo: lo, Hi: hi}
			if d.Ty.TwoD {
				lo2, err := EvalConst(d.Lo2, c.Params)
				if err != nil {
					return nil, err
				}
				hi2, err := EvalConst(d.Hi2, c.Params)
				if err != nil {
					return nil, err
				}
				if hi2 < lo2 {
					return nil, errf(d.P, "input %s has empty second range [%d, %d]", d.Name, lo2, hi2)
				}
				info.Lo2, info.Hi2 = lo2, hi2
			}
			c.inputIdx[d.Name] = len(c.Inputs)
			c.Inputs = append(c.Inputs, info)
			if err := ck.bind(d.P, d.Name, d.Ty); err != nil {
				return nil, err
			}

		case DeclBlock:
			if err := declare(d.P, d.Name); err != nil {
				return nil, err
			}
			var uses []string
			ck.consumes = &uses
			t, err := ck.expr(d.Init)
			ck.consumes = nil
			if err != nil {
				return nil, err
			}
			if t != d.Ty {
				return nil, errf(d.P, "block %s declared %s but defined as %s", d.Name, d.Ty, t)
			}
			c.blockIdx[d.Name] = len(c.Blocks)
			c.Blocks = append(c.Blocks, BlockInfo{Name: d.Name, Ty: d.Ty, Expr: d.Init, Consumes: uses})
			if err := ck.bind(d.P, d.Name, d.Ty); err != nil {
				return nil, err
			}

		case DeclOutput:
			t, ok := ck.lookup(d.Name)
			if !ok {
				return nil, errf(d.P, "output %s is not defined", d.Name)
			}
			if !t.Array {
				return nil, errf(d.P, "output %s must be an array, got %s", d.Name, t)
			}
			c.Outputs = append(c.Outputs, d.Name)
		}
	}
	if len(c.Outputs) == 0 {
		p := Pos{Line: 1, Col: 1}
		if n := len(prog.Decls); n > 0 {
			p = prog.Decls[n-1].P
		}
		return nil, errf(p, "program declares no outputs")
	}
	return c, nil
}

// recordUse notes an array consumption for flow-dependency tracking. Only
// globally-declared arrays (inputs and earlier blocks) count: locally bound
// arrays such as a for-iter's accumulating loop variable are internal to
// the block.
func (ck *checker) recordUse(name string) {
	if ck.consumes == nil {
		return
	}
	if _, global := ck.scopes[0][name]; !global {
		return
	}
	for _, u := range *ck.consumes {
		if u == name {
			return
		}
	}
	*ck.consumes = append(*ck.consumes, name)
}

// numeric reports whether t is integer or real.
func numeric(t Type) bool {
	return !t.Array && (t.Elem == KindInt || t.Elem == KindReal)
}

// promote returns the common type of two numerics (real wins).
func promote(a, b Type) Type {
	if a.Elem == KindReal || b.Elem == KindReal {
		return Scalar(KindReal)
	}
	return Scalar(KindInt)
}

// expr checks an expression and returns (and annotates) its type.
func (ck *checker) expr(e Expr) (Type, error) {
	t, err := ck.exprInner(e)
	if err != nil {
		return Type{}, err
	}
	e.setType(t)
	return t, nil
}

func (ck *checker) exprInner(e Expr) (Type, error) {
	switch x := e.(type) {
	case *IntLit:
		return Scalar(KindInt), nil
	case *RealLit:
		return Scalar(KindReal), nil
	case *BoolLit:
		return Scalar(KindBool), nil

	case *Name:
		if t, ok := ck.lookup(x.Ident); ok {
			if t.Array {
				ck.recordUse(x.Ident)
			}
			return t, nil
		}
		if _, ok := ck.c.Params[x.Ident]; ok {
			return Scalar(KindInt), nil
		}
		return Type{}, errf(x.Pos(), "undefined name %s", x.Ident)

	case *Unary:
		t, err := ck.expr(x.E)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case OpNeg, OpAbs:
			if !numeric(t) {
				return Type{}, errf(x.Pos(), "operator %s needs a numeric operand, got %s", x.Op, t)
			}
			return t, nil
		case OpNot:
			if t != Scalar(KindBool) {
				return Type{}, errf(x.Pos(), "operator ~ needs a boolean operand, got %s", t)
			}
			return t, nil
		default:
			return Type{}, errf(x.Pos(), "bad unary operator %s", x.Op)
		}

	case *Binary:
		lt, err := ck.expr(x.L)
		if err != nil {
			return Type{}, err
		}
		rt, err := ck.expr(x.R)
		if err != nil {
			return Type{}, err
		}
		switch x.Op {
		case OpAdd, OpSub, OpMul, OpDiv, OpMin, OpMax:
			if !numeric(lt) || !numeric(rt) {
				return Type{}, errf(x.Pos(), "operator %s needs numeric operands, got %s and %s", x.Op, lt, rt)
			}
			return promote(lt, rt), nil
		case OpLT, OpLE, OpGT, OpGE:
			if !numeric(lt) || !numeric(rt) {
				return Type{}, errf(x.Pos(), "operator %s needs numeric operands, got %s and %s", x.Op, lt, rt)
			}
			return Scalar(KindBool), nil
		case OpEQ, OpNE:
			if numeric(lt) && numeric(rt) || lt == Scalar(KindBool) && rt == Scalar(KindBool) {
				return Scalar(KindBool), nil
			}
			return Type{}, errf(x.Pos(), "operator %s cannot compare %s and %s", x.Op, lt, rt)
		case OpAnd, OpOr:
			if lt != Scalar(KindBool) || rt != Scalar(KindBool) {
				return Type{}, errf(x.Pos(), "operator %s needs boolean operands, got %s and %s", x.Op, lt, rt)
			}
			return Scalar(KindBool), nil
		default:
			return Type{}, errf(x.Pos(), "bad binary operator %s", x.Op)
		}

	case *If:
		ct, err := ck.expr(x.Cond)
		if err != nil {
			return Type{}, err
		}
		if ct != Scalar(KindBool) {
			return Type{}, errf(x.Cond.Pos(), "if condition must be boolean, got %s", ct)
		}
		tt, err := ck.expr(x.Then)
		if err != nil {
			return Type{}, err
		}
		et, err := ck.expr(x.Else)
		if err != nil {
			return Type{}, err
		}
		// An iter arm takes the type of the other arm (the loop result).
		_, iterThen := x.Then.(*Iter)
		_, iterElse := x.Else.(*Iter)
		switch {
		case iterThen && iterElse:
			return Type{}, errf(x.Pos(), "both arms of the loop conditional are iter clauses")
		case iterThen:
			return et, nil
		case iterElse:
			return tt, nil
		case tt == et:
			return tt, nil
		case numeric(tt) && numeric(et):
			return promote(tt, et), nil
		default:
			return Type{}, errf(x.Pos(), "if arms have incompatible types %s and %s", tt, et)
		}

	case *Let:
		ck.push()
		defer ck.pop()
		for _, d := range x.Defs {
			t, err := ck.expr(d.Init)
			if err != nil {
				return Type{}, err
			}
			if d.TySet && t != d.Ty {
				if !(d.Ty == Scalar(KindReal) && t == Scalar(KindInt)) {
					return Type{}, errf(d.P, "%s declared %s but defined as %s", d.Name, d.Ty, t)
				}
				t = d.Ty // implicit widening of an integer definition
			}
			if err := ck.bind(d.P, d.Name, t); err != nil {
				return Type{}, err
			}
		}
		return ck.expr(x.Body)

	case *Index:
		t, ok := ck.lookup(x.Array)
		if !ok {
			if _, isParam := ck.c.Params[x.Array]; isParam {
				return Type{}, errf(x.Pos(), "%s is not an array", x.Array)
			}
			return Type{}, errf(x.Pos(), "undefined array %s", x.Array)
		}
		if !t.Array {
			return Type{}, errf(x.Pos(), "%s is not an array", x.Array)
		}
		ck.recordUse(x.Array)
		st, err := ck.expr(x.Sub)
		if err != nil {
			return Type{}, err
		}
		if st != Scalar(KindInt) {
			return Type{}, errf(x.Sub.Pos(), "array subscript must be integer, got %s", st)
		}
		if t.TwoD != (x.Sub2 != nil) {
			want, got := 1, 1
			if t.TwoD {
				want = 2
			}
			if x.Sub2 != nil {
				got = 2
			}
			return Type{}, errf(x.Pos(), "%s is %s: needs %d subscripts, got %d", x.Array, t, want, got)
		}
		if x.Sub2 != nil {
			st2, err := ck.expr(x.Sub2)
			if err != nil {
				return Type{}, err
			}
			if st2 != Scalar(KindInt) {
				return Type{}, errf(x.Sub2.Pos(), "array subscript must be integer, got %s", st2)
			}
		}
		return Scalar(t.Elem), nil

	case *ArrayInit:
		if _, err := EvalConst(x.At, ck.c.Params); err != nil {
			return Type{}, err
		}
		vt, err := ck.expr(x.Val)
		if err != nil {
			return Type{}, err
		}
		if vt.Array {
			return Type{}, errf(x.Pos(), "array initializer element must be scalar")
		}
		return ArrayOf(vt.Elem), nil

	case *Append:
		t, ok := ck.lookup(x.Array)
		if !ok {
			return Type{}, errf(x.Pos(), "undefined array %s", x.Array)
		}
		if !t.Array {
			return Type{}, errf(x.Pos(), "%s is not an array", x.Array)
		}
		if t.TwoD {
			return Type{}, errf(x.Pos(), "for-iter accumulation applies to one-dimensional arrays only")
		}
		st, err := ck.expr(x.At)
		if err != nil {
			return Type{}, err
		}
		if st != Scalar(KindInt) {
			return Type{}, errf(x.At.Pos(), "append index must be integer, got %s", st)
		}
		vt, err := ck.expr(x.Val)
		if err != nil {
			return Type{}, err
		}
		if vt.Array || vt.Elem != t.Elem && !(t.Elem == KindReal && vt.Elem == KindInt) {
			return Type{}, errf(x.Val.Pos(), "appending %s to %s", vt, t)
		}
		return t, nil

	case *Forall:
		lo, err := EvalConst(x.Lo, ck.c.Params)
		if err != nil {
			return Type{}, err
		}
		hi, err := EvalConst(x.Hi, ck.c.Params)
		if err != nil {
			return Type{}, err
		}
		if hi < lo {
			return Type{}, errf(x.Pos(), "forall %s has empty index range [%d, %d]", x.IndexVar, lo, hi)
		}
		ck.push()
		defer ck.pop()
		if err := ck.bind(x.Pos(), x.IndexVar, Scalar(KindInt)); err != nil {
			return Type{}, err
		}
		if x.TwoD() {
			lo2, err := EvalConst(x.Lo2, ck.c.Params)
			if err != nil {
				return Type{}, err
			}
			hi2, err := EvalConst(x.Hi2, ck.c.Params)
			if err != nil {
				return Type{}, err
			}
			if hi2 < lo2 {
				return Type{}, errf(x.Pos(), "forall %s has empty index range [%d, %d]", x.IndexVar2, lo2, hi2)
			}
			if err := ck.bind(x.Pos(), x.IndexVar2, Scalar(KindInt)); err != nil {
				return Type{}, err
			}
		}
		for _, d := range x.Defs {
			t, err := ck.expr(d.Init)
			if err != nil {
				return Type{}, err
			}
			if d.TySet && t != d.Ty {
				if !(d.Ty == Scalar(KindReal) && t == Scalar(KindInt)) {
					return Type{}, errf(d.P, "%s declared %s but defined as %s", d.Name, d.Ty, t)
				}
				t = d.Ty
			}
			if err := ck.bind(d.P, d.Name, t); err != nil {
				return Type{}, err
			}
		}
		at, err := ck.expr(x.Accum)
		if err != nil {
			return Type{}, err
		}
		if at.Array {
			return Type{}, errf(x.Accum.Pos(), "forall accumulation must be scalar (nested arrays are outside the subset)")
		}
		if x.TwoD() {
			return Array2Of(at.Elem), nil
		}
		return ArrayOf(at.Elem), nil

	case *ForIter:
		ck.push()
		defer ck.pop()
		outerLoop := ck.loopVars
		lv := map[string]Type{}
		for _, d := range x.Inits {
			t, err := ck.expr(d.Init)
			if err != nil {
				return Type{}, err
			}
			if d.TySet && t != d.Ty {
				if !(d.Ty == Scalar(KindReal) && t == Scalar(KindInt)) &&
					!(d.Ty.Array && t.Array && d.Ty.Elem == KindReal && t.Elem == KindInt) {
					return Type{}, errf(d.P, "%s declared %s but initialized as %s", d.Name, d.Ty, t)
				}
				t = d.Ty
			}
			if err := ck.bind(d.P, d.Name, t); err != nil {
				return Type{}, err
			}
			lv[d.Name] = t
		}
		ck.loopVars = lv
		defer func() { ck.loopVars = outerLoop }()
		bt, err := ck.expr(x.Body)
		if err != nil {
			return Type{}, err
		}
		if _, isIter := x.Body.(*Iter); isIter {
			return Type{}, errf(x.Body.Pos(), "for-iter body cannot be a bare iter clause (the loop would never terminate)")
		}
		return bt, nil

	case *Iter:
		if ck.loopVars == nil {
			return Type{}, errf(x.Pos(), "iter clause outside a for-iter body")
		}
		seen := map[string]bool{}
		for _, a := range x.Assigns {
			want, ok := ck.loopVars[a.Name]
			if !ok {
				return Type{}, errf(a.P, "iter rebinds %s, which is not a loop variable", a.Name)
			}
			if seen[a.Name] {
				return Type{}, errf(a.P, "iter rebinds %s twice", a.Name)
			}
			seen[a.Name] = true
			t, err := ck.expr(a.Val)
			if err != nil {
				return Type{}, err
			}
			if t != want && !(want == Scalar(KindReal) && t == Scalar(KindInt)) {
				return Type{}, errf(a.P, "iter rebinds %s (%s) with %s", a.Name, want, t)
			}
		}
		// An iter clause has no value of its own; report the type of one
		// of its rebindings purely as a placeholder — If handles arms.
		return Scalar(KindBool), nil

	default:
		return Type{}, errf(e.Pos(), "unsupported expression form %T", e)
	}
}
