package val

import (
	"fmt"

	"staticpipe/internal/value"
)

// ArrayVal is an array value with an explicit lower index bound, as Val
// arrays carry their index range. Two-dimensional arrays (W > 0) store
// their elements row-major with second-dimension range [Lo2, Lo2+W−1].
type ArrayVal struct {
	Lo    int64
	Elems []value.Value
	// Lo2 and W describe the second dimension of an array2 value; W == 0
	// means one-dimensional.
	Lo2 int64
	W   int
}

// Hi returns the highest index of a one-dimensional array, or the highest
// first-dimension index of a two-dimensional one.
func (a *ArrayVal) Hi() int64 {
	if a.W > 0 {
		return a.Lo + int64(len(a.Elems)/a.W) - 1
	}
	return a.Lo + int64(len(a.Elems)) - 1
}

// At returns the element at index i of a one-dimensional array.
func (a *ArrayVal) At(i int64) (value.Value, error) {
	if a.W > 0 {
		return value.Value{}, fmt.Errorf("val: single subscript on a two-dimensional array")
	}
	if i < a.Lo || i > a.Hi() {
		return value.Value{}, fmt.Errorf("val: index %d outside [%d, %d]", i, a.Lo, a.Hi())
	}
	return a.Elems[i-a.Lo], nil
}

// At2 returns element (i, j) of a two-dimensional array.
func (a *ArrayVal) At2(i, j int64) (value.Value, error) {
	if a.W == 0 {
		return value.Value{}, fmt.Errorf("val: two subscripts on a one-dimensional array")
	}
	hi2 := a.Lo2 + int64(a.W) - 1
	if i < a.Lo || i > a.Hi() || j < a.Lo2 || j > hi2 {
		return value.Value{}, fmt.Errorf("val: index (%d, %d) outside [%d, %d]×[%d, %d]",
			i, j, a.Lo, a.Hi(), a.Lo2, hi2)
	}
	return a.Elems[(i-a.Lo)*int64(a.W)+(j-a.Lo2)], nil
}

// maxIterations bounds for-iter evaluation; the paper's loops have manifest
// trip counts, so hitting this indicates a non-terminating program. It is a
// variable so tests can exercise the guard cheaply.
var maxIterations = 50_000_000

// Interp evaluates a checked program directly over the AST — the reference
// semantics that compiled instruction graphs are validated against. The
// inputs map must provide one stream per declared input, with exactly the
// declared number of elements (element j corresponds to index Lo+j).
// It returns the output arrays by name.
func Interp(c *Checked, inputs map[string][]value.Value) (map[string]*ArrayVal, error) {
	env := map[string]any{}
	for _, in := range c.Inputs {
		vs, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("val: missing input %s", in.Name)
		}
		if len(vs) != in.Len() {
			return nil, fmt.Errorf("val: input %s has %d elements, declared range [%d, %d] needs %d",
				in.Name, len(vs), in.Lo, in.Hi, in.Len())
		}
		a := &ArrayVal{Lo: in.Lo, Elems: vs}
		if in.Ty.TwoD {
			a.Lo2 = in.Lo2
			a.W = int(in.Hi2 - in.Lo2 + 1)
		}
		env[in.Name] = a
	}
	for name, v := range c.Params {
		env[name] = value.I(v)
	}
	it := &interp{c: c}
	for _, b := range c.Blocks {
		v, err := it.eval(env, b.Expr)
		if err != nil {
			return nil, fmt.Errorf("val: block %s: %w", b.Name, err)
		}
		env[b.Name] = v
	}
	out := map[string]*ArrayVal{}
	for _, name := range c.Outputs {
		a, ok := env[name].(*ArrayVal)
		if !ok {
			return nil, fmt.Errorf("val: output %s is not an array value", name)
		}
		out[name] = a
	}
	return out, nil
}

type interp struct {
	c *Checked
}

// iterSignal is the pseudo-value produced by an iter clause: the new loop
// variable bindings.
type iterSignal struct {
	bindings map[string]any
}

func (it *interp) eval(env map[string]any, e Expr) (any, error) {
	switch x := e.(type) {
	case *IntLit:
		return value.I(x.Val), nil
	case *RealLit:
		return value.R(x.F), nil
	case *BoolLit:
		return value.B(x.Val), nil

	case *Name:
		v, ok := env[x.Ident]
		if !ok {
			return nil, fmt.Errorf("%s: unbound name %s", x.Pos(), x.Ident)
		}
		return v, nil

	case *Unary:
		v, err := it.scalar(env, x.E)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpNeg:
			return value.Neg(v), nil
		case OpAbs:
			return value.Abs(v), nil
		case OpNot:
			return value.Not(v), nil
		}
		return nil, fmt.Errorf("%s: bad unary op %s", x.Pos(), x.Op)

	case *Binary:
		l, err := it.scalar(env, x.L)
		if err != nil {
			return nil, err
		}
		r, err := it.scalar(env, x.R)
		if err != nil {
			return nil, err
		}
		return ApplyBinary(x.Op, l, r)

	case *If:
		cond, err := it.scalar(env, x.Cond)
		if err != nil {
			return nil, err
		}
		if cond.AsBool() {
			return it.eval(env, x.Then)
		}
		return it.eval(env, x.Else)

	case *Let:
		inner := cloneEnv(env)
		for _, d := range x.Defs {
			v, err := it.eval(inner, d.Init)
			if err != nil {
				return nil, err
			}
			inner[d.Name] = widen(v, d)
		}
		return it.eval(inner, x.Body)

	case *Index:
		arr, err := it.array(env, x.Array, x.Pos())
		if err != nil {
			return nil, err
		}
		sub, err := it.scalar(env, x.Sub)
		if err != nil {
			return nil, err
		}
		if x.Sub2 != nil {
			sub2, err := it.scalar(env, x.Sub2)
			if err != nil {
				return nil, err
			}
			return arr.At2(sub.AsInt(), sub2.AsInt())
		}
		return arr.At(sub.AsInt())

	case *ArrayInit:
		at, err := EvalConst(x.At, it.c.Params)
		if err != nil {
			return nil, err
		}
		v, err := it.scalar(env, x.Val)
		if err != nil {
			return nil, err
		}
		return &ArrayVal{Lo: at, Elems: []value.Value{v}}, nil

	case *Append:
		arr, err := it.array(env, x.Array, x.Pos())
		if err != nil {
			return nil, err
		}
		at, err := it.scalar(env, x.At)
		if err != nil {
			return nil, err
		}
		v, err := it.scalar(env, x.Val)
		if err != nil {
			return nil, err
		}
		i := at.AsInt()
		switch {
		case i == arr.Hi()+1:
			elems := make([]value.Value, len(arr.Elems)+1)
			copy(elems, arr.Elems)
			elems[len(arr.Elems)] = v
			return &ArrayVal{Lo: arr.Lo, Elems: elems}, nil
		case i >= arr.Lo && i <= arr.Hi():
			elems := append([]value.Value(nil), arr.Elems...)
			elems[i-arr.Lo] = v
			return &ArrayVal{Lo: arr.Lo, Elems: elems}, nil
		default:
			return nil, fmt.Errorf("%s: append at %d not adjacent to [%d, %d]", x.Pos(), i, arr.Lo, arr.Hi())
		}

	case *Forall:
		lo, err := EvalConst(x.Lo, it.c.Params)
		if err != nil {
			return nil, err
		}
		hi, err := EvalConst(x.Hi, it.c.Params)
		if err != nil {
			return nil, err
		}
		if hi < lo {
			return nil, fmt.Errorf("%s: empty forall range [%d, %d]", x.Pos(), lo, hi)
		}
		lo2, hi2 := int64(0), int64(0)
		if x.TwoD() {
			if lo2, err = EvalConst(x.Lo2, it.c.Params); err != nil {
				return nil, err
			}
			if hi2, err = EvalConst(x.Hi2, it.c.Params); err != nil {
				return nil, err
			}
			if hi2 < lo2 {
				return nil, fmt.Errorf("%s: empty forall range [%d, %d]", x.Pos(), lo2, hi2)
			}
		}
		out := &ArrayVal{Lo: lo}
		if x.TwoD() {
			out.Lo2 = lo2
			out.W = int(hi2 - lo2 + 1)
		}
		evalBody := func(i, j int64) error {
			inner := cloneEnv(env)
			inner[x.IndexVar] = value.I(i)
			if x.TwoD() {
				inner[x.IndexVar2] = value.I(j)
			}
			for _, d := range x.Defs {
				v, err := it.eval(inner, d.Init)
				if err != nil {
					return err
				}
				inner[d.Name] = widen(v, d)
			}
			v, err := it.scalar(inner, x.Accum)
			if err != nil {
				return err
			}
			out.Elems = append(out.Elems, v)
			return nil
		}
		for i := lo; i <= hi; i++ {
			if !x.TwoD() {
				if err := evalBody(i, 0); err != nil {
					return nil, err
				}
				continue
			}
			for j := lo2; j <= hi2; j++ {
				if err := evalBody(i, j); err != nil {
					return nil, err
				}
			}
		}
		return out, nil

	case *ForIter:
		inner := cloneEnv(env)
		var loopNames []string
		for _, d := range x.Inits {
			v, err := it.eval(inner, d.Init)
			if err != nil {
				return nil, err
			}
			inner[d.Name] = widen(v, d)
			loopNames = append(loopNames, d.Name)
		}
		for iter := 0; iter < maxIterations; iter++ {
			v, err := it.eval(inner, x.Body)
			if err != nil {
				return nil, err
			}
			sig, again := v.(iterSignal)
			if !again {
				return v, nil
			}
			for _, name := range loopNames {
				if nv, ok := sig.bindings[name]; ok {
					inner[name] = nv
				}
			}
		}
		return nil, fmt.Errorf("%s: for-iter exceeded %d iterations", x.Pos(), maxIterations)

	case *Iter:
		// Simultaneous rebinding: all right-hand sides see the old values.
		bind := map[string]any{}
		for _, a := range x.Assigns {
			v, err := it.eval(env, a.Val)
			if err != nil {
				return nil, err
			}
			bind[a.Name] = v
		}
		return iterSignal{bindings: bind}, nil

	default:
		return nil, fmt.Errorf("%s: cannot evaluate %T", e.Pos(), e)
	}
}

// scalar evaluates e and requires a scalar result.
func (it *interp) scalar(env map[string]any, e Expr) (value.Value, error) {
	v, err := it.eval(env, e)
	if err != nil {
		return value.Value{}, err
	}
	sv, ok := v.(value.Value)
	if !ok {
		return value.Value{}, fmt.Errorf("%s: expected a scalar value", e.Pos())
	}
	return sv, nil
}

// array resolves name to an array value.
func (it *interp) array(env map[string]any, name string, p Pos) (*ArrayVal, error) {
	v, ok := env[name]
	if !ok {
		return nil, fmt.Errorf("%s: unbound array %s", p, name)
	}
	arr, ok := v.(*ArrayVal)
	if !ok {
		return nil, fmt.Errorf("%s: %s is not an array", p, name)
	}
	return arr, nil
}

// widen applies the declared-real-from-integer widening the checker allows.
func widen(v any, d Def) any {
	sv, ok := v.(value.Value)
	if ok && d.TySet && !d.Ty.Array && d.Ty.Elem == KindReal && sv.Kind() == value.Int {
		return value.R(float64(sv.AsInt()))
	}
	return v
}

func cloneEnv(env map[string]any) map[string]any {
	out := make(map[string]any, len(env)+4)
	for k, v := range env {
		out[k] = v
	}
	return out
}

// ApplyBinary evaluates one Val binary operator on scalar values; it is
// shared by the reference interpreter and the compiler's constant folder.
func ApplyBinary(op Op, l, r value.Value) (value.Value, error) {
	switch op {
	case OpAdd:
		return value.Add(l, r), nil
	case OpSub:
		return value.Sub(l, r), nil
	case OpMul:
		return value.Mul(l, r), nil
	case OpDiv:
		return value.Div(l, r), nil
	case OpMin:
		return value.Min(l, r), nil
	case OpMax:
		return value.Max(l, r), nil
	case OpLT:
		return value.LT(l, r), nil
	case OpLE:
		return value.LE(l, r), nil
	case OpGT:
		return value.GT(l, r), nil
	case OpGE:
		return value.GE(l, r), nil
	case OpEQ:
		return value.EQ(l, r), nil
	case OpNE:
		return value.NE(l, r), nil
	case OpAnd:
		return value.And(l, r), nil
	case OpOr:
		return value.Or(l, r), nil
	default:
		return value.Value{}, fmt.Errorf("bad binary operator %s", op)
	}
}
