package val

import (
	"fmt"
	"strings"
)

// Lexer turns Val source text into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over the given source.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex tokenizes the whole source, returning the token stream (terminated by
// a TokEOF token) or a positioned error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func isSpace(c byte) bool  { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }
func isDigit(c byte) bool  { return c >= '0' && c <= '9' }
func isLetter(c byte) bool { return c == '_' || (c|0x20) >= 'a' && (c|0x20) <= 'z' }

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	// skip whitespace and % comments
	for lx.off < len(lx.src) {
		c := lx.peek()
		if isSpace(c) {
			lx.advance()
			continue
		}
		if c == '%' {
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
			continue
		}
		break
	}
	start := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.peek()
	switch {
	case isLetter(c):
		var b strings.Builder
		for lx.off < len(lx.src) && (isLetter(lx.peek()) || isDigit(lx.peek())) {
			b.WriteByte(lx.advance())
		}
		text := b.String()
		kind := TokIdent
		if keywords[strings.ToLower(text)] {
			kind = TokKeyword
			text = strings.ToLower(text)
		}
		return Token{Kind: kind, Text: text, Pos: start}, nil

	case isDigit(c):
		var b strings.Builder
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			b.WriteByte(lx.advance())
		}
		kind := TokInt
		// fraction: '.' followed by anything but a second '.'; Val reals
		// may end in a bare point as in the paper's "2." and "3." literals.
		if lx.peek() == '.' {
			kind = TokReal
			b.WriteByte(lx.advance())
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				b.WriteByte(lx.advance())
			}
		}
		if lx.peek() == 'e' || lx.peek() == 'E' {
			kind = TokReal
			b.WriteByte(lx.advance())
			if lx.peek() == '+' || lx.peek() == '-' {
				b.WriteByte(lx.advance())
			}
			if !isDigit(lx.peek()) {
				return Token{}, &Error{P: lx.pos(), Msg: "malformed exponent in numeric literal", Src: lx.src}
			}
			for lx.off < len(lx.src) && isDigit(lx.peek()) {
				b.WriteByte(lx.advance())
			}
		}
		return Token{Kind: kind, Text: b.String(), Pos: start}, nil

	default:
		rest := lx.src[lx.off:]
		for _, p := range punct2 {
			if strings.HasPrefix(rest, p) {
				lx.advance()
				lx.advance()
				return Token{Kind: TokPunct, Text: p, Pos: start}, nil
			}
		}
		if strings.IndexByte(punct1, c) >= 0 {
			lx.advance()
			return Token{Kind: TokPunct, Text: string(c), Pos: start}, nil
		}
		return Token{}, &Error{P: start, Msg: fmt.Sprintf("unexpected character %q", string(c)), Src: lx.src}
	}
}
