package val

import (
	"errors"
	"strings"
	"testing"
)

// posOf unwraps a *Error and returns its position, failing the test when
// the error is not positioned.
func posOf(t *testing.T, err error) Pos {
	t.Helper()
	var e *Error
	if !errors.As(err, &e) {
		t.Fatalf("error is %T, want *val.Error: %v", err, err)
	}
	return e.P
}

func TestParseErrorPosition(t *testing.T) {
	src := "input C : array[real] [1, 8];\nA : array[real] := forall i in\noutput A;\n"
	_, err := Parse(src)
	if err == nil {
		t.Fatal("parse succeeded on malformed forall")
	}
	p := posOf(t, err)
	if p.Line != 3 {
		t.Errorf("error at %s, want line 3 (the token that broke the forall header): %v", p, err)
	}
	if !strings.Contains(err.Error(), "val: 3:") {
		t.Errorf("rendered error lacks position prefix: %v", err)
	}
}

func TestLexErrorPosition(t *testing.T) {
	_, err := Parse("input C : array[real] [1, 8];\n  @\n")
	if err == nil {
		t.Fatal("lex succeeded on bad character")
	}
	if p := posOf(t, err); p.Line != 2 || p.Col != 3 {
		t.Errorf("error at %s, want 2:3: %v", p, err)
	}
}

func TestErrorExcerptCaret(t *testing.T) {
	src := "input C : array[real] [1, 8];\nA : array[real] := forall i in [1, 8] construct D[i] endall;\noutput A;\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("check succeeded with undefined array")
	}
	msg := err.Error()
	if !strings.Contains(msg, "undefined") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
	lines := strings.Split(msg, "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + excerpt + caret lines, got %q", msg)
	}
	if !strings.Contains(lines[1], "construct D[i]") {
		t.Errorf("excerpt line does not show the source: %q", lines[1])
	}
	caret := strings.IndexByte(lines[2], '^')
	if caret < 0 {
		t.Fatalf("no caret line: %q", lines[2])
	}
	// Both rendered lines carry a two-space margin, so the caret's index in
	// its line equals the column it points at in the excerpt line.
	if col := posOf(t, err).Col; caret != col+1 {
		t.Errorf("caret at index %d, want under column %d", caret, col)
	}
	if lines[1][caret] != 'D' {
		t.Errorf("caret points at %q, want 'D'", lines[1][caret])
	}
}

func TestEmptyProgramPositioned(t *testing.T) {
	_, err := Parse("   % just a comment\n")
	if err == nil {
		t.Fatal("empty program accepted")
	}
	if p := posOf(t, err); p.Line != 1 || p.Col != 1 {
		t.Errorf("error at %s, want 1:1: %v", p, err)
	}
}

func TestNoOutputsPositioned(t *testing.T) {
	src := "input C : array[real] [1, 8];\nA : array[real] := forall i in [1, 8] construct C[i] endall;\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("output-less program accepted")
	}
	if !strings.Contains(err.Error(), "declares no outputs") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
	if p := posOf(t, err); p.Line != 2 {
		t.Errorf("error at %s, want line 2 (last declaration): %v", p, err)
	}
}

func TestForallEmptyRangePositioned(t *testing.T) {
	src := "param m = 0;\ninput C : array[real] [1, 8];\nA : array[real] := forall i in [1, m] construct C[i] endall;\noutput A;\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("empty forall range accepted")
	}
	if !strings.Contains(err.Error(), "empty index range [1, 0]") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
	if p := posOf(t, err); p.Line != 3 {
		t.Errorf("error at %s, want line 3: %v", p, err)
	}
}

func TestInputEmptyRangePositioned(t *testing.T) {
	src := "input B : array[real] [1, 0];\nA : array[real] := forall i in [1, 8] construct 1. endall;\noutput A;\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("empty input range accepted")
	}
	if !strings.Contains(err.Error(), "empty range [1, 0]") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
	if p := posOf(t, err); p.Line != 1 {
		t.Errorf("error at %s, want line 1: %v", p, err)
	}
}

func TestExcerptTabAlignment(t *testing.T) {
	src := "input C : array[real] [1, 8];\n\tA : array[real] := forall i in [1, 8] construct D[i] endall;\noutput A;\n"
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Check(prog)
	if err == nil {
		t.Fatal("check succeeded with undefined array")
	}
	lines := strings.Split(err.Error(), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 lines, got %q", err.Error())
	}
	// The pad must reuse the tab so the caret stays aligned in terminals.
	if !strings.Contains(lines[2], "\t") {
		t.Errorf("caret pad lost the tab: %q", lines[2])
	}
}
