package val

import (
	"math"
	"testing"

	"staticpipe/internal/value"
)

func mustCheck(t *testing.T, src string) *Checked {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestInterpExample1(t *testing.T) {
	c := mustCheck(t, example1)
	m := 10
	n := m + 2
	B := make([]float64, n)
	C := make([]float64, n)
	for i := range B {
		B[i] = float64(i) + 1
		C[i] = math.Sin(float64(i))
	}
	out, err := Interp(c, map[string][]value.Value{
		"B": value.Reals(B),
		"C": value.Reals(C),
	})
	if err != nil {
		t.Fatal(err)
	}
	A := out["A"]
	if A == nil || A.Lo != 0 || len(A.Elems) != n {
		t.Fatalf("A = %+v", A)
	}
	for i := 0; i < n; i++ {
		var p float64
		if i == 0 || i == m+1 {
			p = C[i]
		} else {
			p = 0.25 * (C[i-1] + 2*C[i] + C[i+1])
		}
		want := B[i] * (p * p)
		if got := A.Elems[i].AsReal(); got != want {
			t.Errorf("A[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestInterpExample2(t *testing.T) {
	c := mustCheck(t, example2)
	m := 10
	A := make([]float64, m)
	B := make([]float64, m)
	for i := range A {
		A[i] = 0.5 + float64(i)/20
		B[i] = float64(i) - 3
	}
	out, err := Interp(c, map[string][]value.Value{
		"A": value.Reals(A),
		"B": value.Reals(B),
	})
	if err != nil {
		t.Fatal(err)
	}
	X := out["X"]
	if X.Lo != 0 || len(X.Elems) != m+1 {
		t.Fatalf("X range [%d..], %d elems", X.Lo, len(X.Elems))
	}
	// x_0 = 0; x_i = A_i x_{i-1} + B_i  (A,B indexed 1..m)
	want := make([]float64, m+1)
	for i := 1; i <= m; i++ {
		want[i] = A[i-1]*want[i-1] + B[i-1]
	}
	for i := range want {
		if got := X.Elems[i].AsReal(); got != want[i] {
			t.Errorf("X[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestInterpPipeline(t *testing.T) {
	// Example 1 feeding a summation for-iter: checks block chaining.
	src := `
param m = 4;
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    construct 2. * C[i]
  endall;
S : array[real] :=
  for i : integer := 0; T : array[real] := [0: 0.]
  do
    if i <= m then iter T := T[i+1: T[i] + A[i]]; i := i + 1 enditer
    else T endif
  endfor;
output S;
`
	c := mustCheck(t, src)
	C := []float64{1, 2, 3, 4, 5, 6}
	out, err := Interp(c, map[string][]value.Value{"C": value.Reals(C)})
	if err != nil {
		t.Fatal(err)
	}
	S := out["S"]
	// S[0]=0, S[k+1] = S[k] + 2*C[k] for k=0..m
	want := []float64{0, 2, 6, 12, 20, 30}
	if len(S.Elems) != len(want) {
		t.Fatalf("S has %d elems, want %d", len(S.Elems), len(want))
	}
	for i := range want {
		if got := S.Elems[i].AsReal(); got != want[i] {
			t.Errorf("S[%d] = %v, want %v", i, got, want[i])
		}
	}
}

func TestInterpErrors(t *testing.T) {
	c := mustCheck(t, example1)
	// missing input
	if _, err := Interp(c, map[string][]value.Value{"B": value.Reals(make([]float64, 12))}); err == nil {
		t.Error("missing input accepted")
	}
	// wrong length
	if _, err := Interp(c, map[string][]value.Value{
		"B": value.Reals(make([]float64, 12)),
		"C": value.Reals(make([]float64, 3)),
	}); err == nil {
		t.Error("short input accepted")
	}
}

func TestInterpIndexOutOfRange(t *testing.T) {
	src := `
input C : array[real] [0, 3];
A : array[real] := forall i in [0, 3] construct C[i+2] endall;
output A;
`
	c := mustCheck(t, src)
	_, err := Interp(c, map[string][]value.Value{"C": value.Reals([]float64{1, 2, 3, 4})})
	if err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestInterpNonTermination(t *testing.T) {
	src := `
A : array[real] :=
  for i : integer := 0; T : array[real] := [0: 0.]
  do
    if i < 0 then T else iter T := T enditer endif
  endfor;
output A;
`
	// loop never takes the terminating arm — cap the guard for the test.
	c := mustCheck(t, src)
	old := maxIterations
	maxIterations = 500
	defer func() { maxIterations = old }()
	_, err := Interp(c, nil)
	if err == nil {
		t.Error("non-terminating loop accepted")
	}
}

func TestInterpMinMaxAbsIf(t *testing.T) {
	src := `
input C : array[real] [1, 4];
A : array[real] :=
  forall i in [1, 4]
    construct if C[i] > 2. then min(C[i], 3.5) else max(abs(C[i]), 1.) endif
  endall;
output A;
`
	c := mustCheck(t, src)
	out, err := Interp(c, map[string][]value.Value{"C": value.Reals([]float64{-5, 2, 3, 4})})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, 3, 3.5}
	for i, w := range want {
		if got := out["A"].Elems[i].AsReal(); got != w {
			t.Errorf("A[%d] = %v, want %v", i+1, got, w)
		}
	}
}

func TestArrayVal(t *testing.T) {
	a := &ArrayVal{Lo: 2, Elems: value.Reals([]float64{10, 20})}
	if a.Hi() != 3 {
		t.Errorf("Hi = %d", a.Hi())
	}
	v, err := a.At(3)
	if err != nil || v.AsReal() != 20 {
		t.Errorf("At(3) = %v, %v", v, err)
	}
	if _, err := a.At(4); err == nil {
		t.Error("out of range accepted")
	}
}
