package val

import (
	"fmt"
	"strings"
)

// Error is a positioned Val source error: every parse and check diagnostic
// carries the 1-based line:column it refers to and, when the source text is
// known, renders a source-line excerpt with a caret under the offending
// column.
type Error struct {
	// P is the error's source position (1-based line and column).
	P Pos
	// Msg is the diagnostic text, without position or "val:" prefix.
	Msg string
	// Src is the program source the position refers to; when non-empty the
	// rendered error includes the source line and a caret.
	Src string
}

// Error renders "val: line:col: msg", followed by the source excerpt when
// the source text is available.
func (e *Error) Error() string {
	s := fmt.Sprintf("val: %s: %s", e.P, e.Msg)
	if ex := excerpt(e.Src, e.P); ex != "" {
		s += "\n" + ex
	}
	return s
}

// Position returns the diagnostic's source position.
func (e *Error) Position() Pos { return e.P }

// excerpt renders the source line at p with a caret marking the column, or
// "" when the position falls outside the source.
func excerpt(src string, p Pos) string {
	if src == "" || p.Line < 1 || p.Col < 1 {
		return ""
	}
	lines := strings.Split(src, "\n")
	if p.Line > len(lines) {
		return ""
	}
	line := strings.TrimRight(lines[p.Line-1], "\r")
	col := p.Col
	if col > len(line)+1 {
		col = len(line) + 1
	}
	// Tabs stay tabs in the pad so the caret lines up under any tab width.
	var pad strings.Builder
	for _, c := range line[:col-1] {
		if c == '\t' {
			pad.WriteRune('\t')
		} else {
			pad.WriteByte(' ')
		}
	}
	return "  " + line + "\n  " + pad.String() + "^"
}

// attachSrc fills in the source text of positioned errors produced below a
// boundary that knows it (Parse, Check).
func attachSrc(err error, src string) error {
	if e, ok := err.(*Error); ok && e.Src == "" {
		e.Src = src
	}
	return err
}
