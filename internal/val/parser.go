package val

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// Parser is a recursive-descent parser for the Val subset.
type Parser struct {
	toks []Token
	pos  int
	src  string
}

// parseCalls counts Parse invocations process-wide. It exists for tests
// that pin compiler-invocation behavior — e.g. that a throttled service
// submission never reaches the compiler, or that a cache hit skips it.
var parseCalls atomic.Int64

// ParseCalls returns the number of Parse invocations so far in this
// process (a monotonic counter; diff two readings around the operation
// under test).
func ParseCalls() int64 { return parseCalls.Load() }

// Parse parses a complete pipe-structured program.
func Parse(src string) (*Program, error) {
	parseCalls.Add(1)
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	prog := &Program{Src: src}
	for !p.at(TokEOF, "") {
		d, err := p.decl()
		if err != nil {
			return nil, err
		}
		prog.Decls = append(prog.Decls, d)
	}
	if len(prog.Decls) == 0 {
		return nil, &Error{P: Pos{Line: 1, Col: 1}, Msg: "empty program", Src: src}
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and the REPL-style
// tools).
func ParseExpr(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks, src: src}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.at(TokEOF, "") {
		return nil, p.errf("trailing input after expression: %s", p.cur())
	}
	return e, nil
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) at(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && (text == "" || t.Text == text)
}

func (p *Parser) accept(kind TokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(kind TokKind, text string) (Token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = kind.String()
	}
	return Token{}, p.errf("expected %q, found %s", want, p.cur())
}

func (p *Parser) errf(format string, args ...any) error {
	return &Error{P: p.cur().Pos, Msg: fmt.Sprintf(format, args...), Src: p.src}
}

// decl parses one top-level declaration.
func (p *Parser) decl() (Decl, error) {
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "param"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, "="); err != nil {
			return Decl{}, err
		}
		e, err := p.expr()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return Decl{}, err
		}
		return Decl{P: t.Pos, Kind: DeclParam, Name: name.Text, Init: e}, nil

	case p.accept(TokKeyword, "input"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return Decl{}, err
		}
		ty, err := p.parseType()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, "["); err != nil {
			return Decl{}, err
		}
		lo, err := p.expr()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return Decl{}, err
		}
		hi, err := p.expr()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return Decl{}, err
		}
		d := Decl{P: t.Pos, Kind: DeclInput, Name: name.Text, Ty: ty, Lo: lo, Hi: hi}
		if ty.TwoD {
			if _, err := p.expect(TokPunct, "["); err != nil {
				return Decl{}, err
			}
			if d.Lo2, err = p.expr(); err != nil {
				return Decl{}, err
			}
			if _, err := p.expect(TokPunct, ","); err != nil {
				return Decl{}, err
			}
			if d.Hi2, err = p.expr(); err != nil {
				return Decl{}, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return Decl{}, err
			}
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return Decl{}, err
		}
		return d, nil

	case p.accept(TokKeyword, "output"):
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return Decl{}, err
		}
		return Decl{P: t.Pos, Kind: DeclOutput, Name: name.Text}, nil

	case p.at(TokIdent, ""):
		name := p.next()
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return Decl{}, err
		}
		ty, err := p.parseType()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ":="); err != nil {
			return Decl{}, err
		}
		e, err := p.expr()
		if err != nil {
			return Decl{}, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return Decl{}, err
		}
		return Decl{P: t.Pos, Kind: DeclBlock, Name: name.Text, Ty: ty, Init: e}, nil

	default:
		return Decl{}, p.errf("expected declaration, found %s", p.cur())
	}
}

// parseType parses a type.
func (p *Parser) parseType() (Type, error) {
	t := p.cur()
	switch {
	case p.accept(TokKeyword, "real"):
		return Scalar(KindReal), nil
	case p.accept(TokKeyword, "integer"):
		return Scalar(KindInt), nil
	case p.accept(TokKeyword, "boolean"):
		return Scalar(KindBool), nil
	case p.at(TokKeyword, "array"), p.at(TokKeyword, "array2"):
		twoD := p.cur().Text == "array2"
		p.next()
		if _, err := p.expect(TokPunct, "["); err != nil {
			return Type{}, err
		}
		elem, err := p.parseType()
		if err != nil {
			return Type{}, err
		}
		if elem.Array {
			return Type{}, fmt.Errorf("val: %s: nested array types are outside the paper's subset", t.Pos)
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return Type{}, err
		}
		if twoD {
			return Array2Of(elem.Elem), nil
		}
		return ArrayOf(elem.Elem), nil
	default:
		return Type{}, p.errf("expected type, found %s", p.cur())
	}
}

// defs parses a (possibly empty) sequence of `name : type := expr ;`
// definitions, stopping at the given keyword.
func (p *Parser) defs(stop ...string) ([]Def, error) {
	var out []Def
	for {
		for _, s := range stop {
			if p.at(TokKeyword, s) {
				return out, nil
			}
		}
		t := p.cur()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		d := Def{P: t.Pos, Name: name.Text}
		if p.accept(TokPunct, ":") {
			d.Ty, err = p.parseType()
			if err != nil {
				return nil, err
			}
			d.TySet = true
		}
		if _, err := p.expect(TokPunct, ":="); err != nil {
			return nil, err
		}
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
		out = append(out, d)
		if !p.accept(TokPunct, ";") {
			for _, s := range stop {
				if p.at(TokKeyword, s) {
					return out, nil
				}
			}
			return nil, p.errf("expected ';' or one of %v after definition", stop)
		}
	}
}

// expr parses a full expression. forall, for-iter, and iter clauses are
// whole-expression forms; if and let parse as primaries inside the binary
// operator chain (they are valid operands under the §5 composition rules).
func (p *Parser) expr() (Expr, error) {
	switch {
	case p.at(TokKeyword, "forall"):
		return p.forall()
	case p.at(TokKeyword, "for"):
		return p.forIter()
	case p.at(TokKeyword, "iter"):
		return p.iterExpr()
	default:
		return p.orExpr()
	}
}

func (p *Parser) forall() (Expr, error) {
	t, _ := p.expect(TokKeyword, "forall")
	iv, err := p.expect(TokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "["); err != nil {
		return nil, err
	}
	lo, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, ","); err != nil {
		return nil, err
	}
	hi, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "]"); err != nil {
		return nil, err
	}
	fa := &Forall{base: base{P: t.Pos}, IndexVar: iv.Text, Lo: lo, Hi: hi}
	if p.accept(TokPunct, ",") {
		iv2, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokKeyword, "in"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "["); err != nil {
			return nil, err
		}
		if fa.Lo2, err = p.expr(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		if fa.Hi2, err = p.expr(); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		fa.IndexVar2 = iv2.Text
	}
	defs, err := p.defs("construct")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "construct"); err != nil {
		return nil, err
	}
	acc, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "endall"); err != nil {
		return nil, err
	}
	fa.Defs = defs
	fa.Accum = acc
	return fa, nil
}

func (p *Parser) forIter() (Expr, error) {
	t, _ := p.expect(TokKeyword, "for")
	inits, err := p.defs("do")
	if err != nil {
		return nil, err
	}
	if len(inits) == 0 {
		return nil, p.errf("for-iter needs at least one loop variable")
	}
	if _, err := p.expect(TokKeyword, "do"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "endfor"); err != nil {
		return nil, err
	}
	return &ForIter{base: base{P: t.Pos}, Inits: inits, Body: body}, nil
}

func (p *Parser) ifExpr() (Expr, error) {
	t, _ := p.expect(TokKeyword, "if")
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "then"); err != nil {
		return nil, err
	}
	then, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "else"); err != nil {
		return nil, err
	}
	els, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "endif"); err != nil {
		return nil, err
	}
	return &If{base: base{P: t.Pos}, Cond: cond, Then: then, Else: els}, nil
}

func (p *Parser) letExpr() (Expr, error) {
	t, _ := p.expect(TokKeyword, "let")
	defs, err := p.defs("in")
	if err != nil {
		return nil, err
	}
	if len(defs) == 0 {
		return nil, p.errf("let needs at least one definition")
	}
	if _, err := p.expect(TokKeyword, "in"); err != nil {
		return nil, err
	}
	body, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokKeyword, "endlet"); err != nil {
		return nil, err
	}
	return &Let{base: base{P: t.Pos}, Defs: defs, Body: body}, nil
}

func (p *Parser) iterExpr() (Expr, error) {
	t, _ := p.expect(TokKeyword, "iter")
	var assigns []Assign
	for !p.at(TokKeyword, "enditer") {
		at := p.cur()
		name, err := p.expect(TokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		assigns = append(assigns, Assign{P: at.Pos, Name: name.Text, Val: e})
		p.accept(TokPunct, ";") // separators optional before enditer
	}
	if _, err := p.expect(TokKeyword, "enditer"); err != nil {
		return nil, err
	}
	if len(assigns) == 0 {
		return nil, fmt.Errorf("val: %s: iter clause rebinds no loop variables", t.Pos)
	}
	return &Iter{base: base{P: t.Pos}, Assigns: assigns}, nil
}

// Binary operator precedence, loosest first: | & rel +- */ unary.
func (p *Parser) orExpr() (Expr, error) { return p.binaryLevel(0) }

var levels = [][]struct {
	text string
	op   Op
}{
	{{"|", OpOr}},
	{{"&", OpAnd}},
	{{"<=", OpLE}, {">=", OpGE}, {"<", OpLT}, {">", OpGT}, {"=", OpEQ}, {"~=", OpNE}},
	{{"+", OpAdd}, {"-", OpSub}},
	{{"*", OpMul}, {"/", OpDiv}},
}

func (p *Parser) binaryLevel(lvl int) (Expr, error) {
	if lvl >= len(levels) {
		return p.unary()
	}
	left, err := p.binaryLevel(lvl + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, cand := range levels[lvl] {
			if p.at(TokPunct, cand.text) {
				t := p.next()
				right, err := p.binaryLevel(lvl + 1)
				if err != nil {
					return nil, err
				}
				left = &Binary{base: base{P: t.Pos}, Op: cand.op, L: left, R: right}
				matched = true
				break
			}
		}
		if !matched {
			return left, nil
		}
		if lvl == 2 {
			// relational operators do not chain in Val
			return left, nil
		}
	}
}

func (p *Parser) unary() (Expr, error) {
	t := p.cur()
	switch {
	case p.accept(TokPunct, "-"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{base: base{P: t.Pos}, Op: OpNeg, E: e}, nil
	case p.accept(TokPunct, "~"):
		e, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{base: base{P: t.Pos}, Op: OpNot, E: e}, nil
	default:
		return p.postfix()
	}
}

// postfix parses primaries with optional array selection/append brackets.
// if-then-else and let-in are valid operands of binary operators (rules 5
// and 6 of the §5 primitive-expression definition compose under rule 3).
func (p *Parser) postfix() (Expr, error) {
	t := p.cur()
	switch {
	case p.at(TokKeyword, "if"):
		return p.ifExpr()
	case p.at(TokKeyword, "let"):
		return p.letExpr()

	case p.at(TokInt, ""):
		tok := p.next()
		v, err := strconv.ParseInt(tok.Text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("val: %s: bad integer literal %q", tok.Pos, tok.Text)
		}
		return &IntLit{base: base{P: tok.Pos}, Val: v}, nil

	case p.at(TokReal, ""):
		tok := p.next()
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("val: %s: bad real literal %q", tok.Pos, tok.Text)
		}
		return &RealLit{base: base{P: tok.Pos}, F: f, Text: tok.Text}, nil

	case p.accept(TokKeyword, "true"):
		return &BoolLit{base: base{P: t.Pos}, Val: true}, nil
	case p.accept(TokKeyword, "false"):
		return &BoolLit{base: base{P: t.Pos}, Val: false}, nil

	case p.at(TokKeyword, "min"), p.at(TokKeyword, "max"):
		tok := p.next()
		op := OpMin
		if tok.Text == "max" {
			op = OpMax
		}
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		b, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &Binary{base: base{P: tok.Pos}, Op: op, L: a, R: b}, nil

	case p.accept(TokKeyword, "abs"):
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &Unary{base: base{P: t.Pos}, Op: OpAbs, E: a}, nil

	case p.accept(TokPunct, "("):
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil

	case p.accept(TokPunct, "["):
		// array initializer [r: E]
		at, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ":"); err != nil {
			return nil, err
		}
		v, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		return &ArrayInit{base: base{P: t.Pos}, At: at, Val: v}, nil

	case p.at(TokIdent, ""):
		tok := p.next()
		if p.accept(TokPunct, "[") {
			sub, err := p.expr()
			if err != nil {
				return nil, err
			}
			if p.accept(TokPunct, ":") {
				v, err := p.expr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expect(TokPunct, "]"); err != nil {
					return nil, err
				}
				return &Append{base: base{P: tok.Pos}, Array: tok.Text, At: sub, Val: v}, nil
			}
			var sub2 Expr
			if p.accept(TokPunct, ",") {
				if sub2, err = p.expr(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			return &Index{base: base{P: tok.Pos}, Array: tok.Text, Sub: sub, Sub2: sub2}, nil
		}
		return &Name{base: base{P: tok.Pos}, Ident: tok.Text}, nil

	default:
		return nil, p.errf("expected expression, found %s", p.cur())
	}
}
