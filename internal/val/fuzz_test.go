package val

import "testing"

// FuzzParse asserts the front end never panics: any byte string either
// parses (and then checks without panicking) or returns an error.
func FuzzParse(f *testing.F) {
	f.Add(example1)
	f.Add(example2)
	f.Add("param m = 3; input C : array[real] [0, m]; output C;")
	f.Add("A : array2[real] := forall i in [0,1], j in [0,1] construct i+j endall; output A;")
	f.Add("x : real := if a then 1 else 2 endif;")
	f.Add("for i : integer := 0 do iter enditer endfor")
	f.Add("%comment\n1e9 2. ~= <= [:]")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return
		}
		// A parsed program must also survive checking without panics.
		_, _ = Check(prog)
	})
}

// FuzzParseExpr covers the expression entry point.
func FuzzParseExpr(f *testing.F) {
	f.Add("a + b * (c - 1)")
	f.Add("if x > 0. then let y := 1 in y endlet else abs(x) endif")
	f.Add("T[i: P]")
	f.Add("[0: 0.]")
	f.Add("min(max(a, b), ~c)")
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseExpr(src)
	})
}
