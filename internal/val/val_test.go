package val

import (
	"strings"
	"testing"
)

// example1 is the paper's Example 1 (§4) in this front end's program
// syntax, with the manifest m bound by a param declaration.
const example1 = `
param m = 10;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]           % range specification
    P : real :=                  % definition part
      if (i = 0) | (i = m+1) then C[i]
      else 0.25 * (C[i-1] + 2.*C[i] + C[i+1])
      endif;
  construct
    B[i]*(P*P)                   % accumulation
  endall;
output A;
`

// example2 is the paper's Example 2 (§4).
const example2 = `
param m = 10;
input A : array[real] [1, m];
input B : array[real] [1, m];
X : array[real] :=
  for
    i : integer := 1;            % loop initialization
    T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]   % definition part
    in
      if i < m then              % loop body
        iter
          T := T[i: P];
          i := i + 1
        enditer
      else T[i: P]
      endif
    endlet
  endfor;
output X;
`

func TestLexBasics(t *testing.T) {
	toks, err := Lex("forall i in [0, m+1] 2.5 2. := ~= <= % comment\nx")
	if err != nil {
		t.Fatal(err)
	}
	var texts []string
	for _, tk := range toks {
		if tk.Kind != TokEOF {
			texts = append(texts, tk.Text)
		}
	}
	want := []string{"forall", "i", "in", "[", "0", ",", "m", "+", "1", "]", "2.5", "2.", ":=", "~=", "<=", "x"}
	if len(texts) != len(want) {
		t.Fatalf("got %v", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestLexKinds(t *testing.T) {
	toks, _ := Lex("x 42 4.2 forall")
	kinds := []TokKind{TokIdent, TokInt, TokReal, TokKeyword, TokEOF}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d kind = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, _ := Lex("a\n  b")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("a # b"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := Lex("1e+"); err == nil {
		t.Error("malformed exponent accepted")
	}
}

func TestLexExponent(t *testing.T) {
	toks, err := Lex("1e3 2.5E-2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokReal || toks[0].Text != "1e3" {
		t.Errorf("token 0: %v", toks[0])
	}
	if toks[1].Kind != TokReal || toks[1].Text != "2.5E-2" {
		t.Errorf("token 1: %v", toks[1])
	}
}

func TestParseExample1(t *testing.T) {
	prog, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Decls) != 5 {
		t.Fatalf("%d decls, want 5", len(prog.Decls))
	}
	blk := prog.Decls[3]
	if blk.Kind != DeclBlock || blk.Name != "A" {
		t.Fatalf("decl 3 = %v %q", blk.Kind, blk.Name)
	}
	fa, ok := blk.Init.(*Forall)
	if !ok {
		t.Fatalf("block body is %T, want *Forall", blk.Init)
	}
	if fa.IndexVar != "i" || len(fa.Defs) != 1 || fa.Defs[0].Name != "P" {
		t.Errorf("forall structure wrong: %v", fa)
	}
	if _, ok := fa.Defs[0].Init.(*If); !ok {
		t.Errorf("P definition is %T, want *If", fa.Defs[0].Init)
	}
}

func TestParseExample2(t *testing.T) {
	prog, err := Parse(example2)
	if err != nil {
		t.Fatal(err)
	}
	blk := prog.Decls[3]
	fi, ok := blk.Init.(*ForIter)
	if !ok {
		t.Fatalf("block body is %T, want *ForIter", blk.Init)
	}
	if len(fi.Inits) != 2 || fi.Inits[0].Name != "i" || fi.Inits[1].Name != "T" {
		t.Errorf("inits wrong: %v", fi.Inits)
	}
	if _, ok := fi.Inits[1].Init.(*ArrayInit); !ok {
		t.Errorf("T init is %T, want *ArrayInit", fi.Inits[1].Init)
	}
	let, ok := fi.Body.(*Let)
	if !ok {
		t.Fatalf("body is %T, want *Let", fi.Body)
	}
	iff, ok := let.Body.(*If)
	if !ok {
		t.Fatalf("let body is %T, want *If", let.Body)
	}
	it, ok := iff.Then.(*Iter)
	if !ok {
		t.Fatalf("then arm is %T, want *Iter", iff.Then)
	}
	if len(it.Assigns) != 2 {
		t.Errorf("%d iter assigns, want 2", len(it.Assigns))
	}
	if _, ok := it.Assigns[0].Val.(*Append); !ok {
		t.Errorf("T rebinding is %T, want *Append", it.Assigns[0].Val)
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("a + b * c < d & e | f")
	if err != nil {
		t.Fatal(err)
	}
	// ((((a + (b*c)) < d) & e) | f)
	want := "((((a + (b * c)) < d) & e) | f)"
	if e.String() != want {
		t.Errorf("got %s, want %s", e, want)
	}
}

func TestParseUnary(t *testing.T) {
	e, err := ParseExpr("-a * ~b")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "((-a) * (~b))" {
		t.Errorf("got %s", e)
	}
}

func TestParseMinMaxAbs(t *testing.T) {
	e, err := ParseExpr("min(a, max(b, 1)) + abs(c)")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "(min(a, max(b, 1)) + abs(c))" {
		t.Errorf("got %s", e)
	}
}

func TestParseIndexForms(t *testing.T) {
	e, err := ParseExpr("A[i-1]")
	if err != nil {
		t.Fatal(err)
	}
	ix, ok := e.(*Index)
	if !ok || ix.Array != "A" {
		t.Fatalf("got %T %s", e, e)
	}
	e2, err := ParseExpr("T[i: P]")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.(*Append); !ok {
		t.Fatalf("got %T", e2)
	}
	e3, err := ParseExpr("[0: 0.]")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e3.(*ArrayInit); !ok {
		t.Fatalf("got %T", e3)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                     // empty program
		"A : real := ;",                        // missing expr
		"if a then b endif",                    // missing else
		"forall i in [0 1] construct i endall", // missing comma
		"let in x endlet",                      // no defs
		"for do x endfor",                      // no loop vars
		"A : array[array[real]] := B;",         // nested arrays
		"x : real := iter enditer;",            // empty iter
		"(a + b",                               // unclosed paren
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
	if _, err := ParseExpr("a b"); err == nil {
		t.Error("trailing input accepted")
	}
}

func TestCheckExample1(t *testing.T) {
	prog, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	if c.Params["m"] != 10 {
		t.Errorf("m = %d", c.Params["m"])
	}
	in, ok := c.Input("C")
	if !ok || in.Lo != 0 || in.Hi != 11 || in.Len() != 12 {
		t.Errorf("input C: %+v", in)
	}
	blk, ok := c.Block("A")
	if !ok {
		t.Fatal("block A missing")
	}
	if blk.Ty != ArrayOf(KindReal) {
		t.Errorf("A type = %s", blk.Ty)
	}
	if len(blk.Consumes) != 2 || blk.Consumes[0] != "C" || blk.Consumes[1] != "B" {
		t.Errorf("A consumes %v", blk.Consumes)
	}
	if len(c.Outputs) != 1 || c.Outputs[0] != "A" {
		t.Errorf("outputs %v", c.Outputs)
	}
	// annotation: the forall expression's type
	if blk.Expr.Type() != ArrayOf(KindReal) {
		t.Errorf("forall annotated %s", blk.Expr.Type())
	}
}

func TestCheckExample2(t *testing.T) {
	prog, err := Parse(example2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := c.Block("X")
	if blk.Ty != ArrayOf(KindReal) {
		t.Errorf("X type = %s", blk.Ty)
	}
	if len(blk.Consumes) != 2 {
		t.Errorf("X consumes %v", blk.Consumes)
	}
}

func TestCheckPipeline(t *testing.T) {
	// Example 1 feeding Example 2, the composition of Fig 3.
	src := `
param m = 8;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := c.Block("X")
	found := false
	for _, u := range x.Consumes {
		if u == "A" {
			found = true
		}
	}
	if !found {
		t.Errorf("X should consume A: %v", x.Consumes)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined", `A : array[real] := forall i in [0,3] construct B[i] endall; output A;`, "undefined"},
		{"nonconst range", `input B : array[real] [0, 3]; A : array[real] := forall i in [0, B[0]] construct B[i] endall; output A;`, "constant"},
		{"bool arith", `A : array[real] := forall i in [0,3] construct true + 1 endall; output A;`, "numeric"},
		{"cond not bool", `A : array[real] := forall i in [0,3] construct if i then 1. else 2. endif endall; output A;`, "boolean"},
		{"subscript", `input B : array[real] [0,3]; A : array[real] := forall i in [0,3] construct B[1.5] endall; output A;`, "subscript"},
		{"no output", `param m = 3;`, "no outputs"},
		{"output scalar", `param m = 3; output m;`, "not defined"},
		{"dup decl", `param m = 3; param m = 4; output m;`, "already declared"},
		{"block type", `A : array[integer] := forall i in [0,3] construct 1. endall; output A;`, "declared"},
		{"iter outside loop", `A : array[real] := forall i in [0,3] construct if true then iter i := 1 enditer else 1. endif endall; output A;`, "for-iter"},
		{"iter bad target", `A : array[real] := for i : integer := 0 do if i < 3 then iter j := 1 enditer else [0: 1.] endif endfor; output A;`, "not a loop variable"},
		{"bare iter body", `A : array[real] := for i : integer := 0 do iter i := i + 1 enditer endfor; output A;`, "bare iter"},
		{"input scalar", `input B : real [0, 3]; output B;`, "must be an array"},
		{"empty range", `input B : array[real] [3, 0]; output B;`, "empty range"},
		{"and needs bool", `A : array[real] := forall i in [0,3] construct if 1 & true then 1. else 2. endif endall; output A;`, "boolean"},
		{"index nonarray", `param k = 2; A : array[real] := forall i in [0,3] construct k[i] endall; output A;`, "not an array"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err == nil {
			_, err = Check(prog)
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestCheckPromotion(t *testing.T) {
	src := `
A : array[real] :=
  forall i in [0, 3]
    P : real := i;   % integer widened to declared real
  construct P * 2
  endall;
output A;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	blk, _ := c.Block("A")
	if blk.Ty != ArrayOf(KindReal) {
		t.Errorf("type %s", blk.Ty)
	}
}

func TestEvalConst(t *testing.T) {
	params := map[string]int64{"m": 10}
	cases := []struct {
		src  string
		want int64
	}{
		{"3", 3}, {"m+1", 11}, {"2*m-5", 15}, {"-m", -10}, {"m/3", 3},
	}
	for _, c := range cases {
		e, err := ParseExpr(c.src)
		if err != nil {
			t.Fatal(err)
		}
		v, err := EvalConst(e, params)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
		}
		if v != c.want {
			t.Errorf("%s = %d, want %d", c.src, v, c.want)
		}
	}
	for _, bad := range []string{"x", "m/0", "1.5", "m < 2", "A[1]"} {
		e, err := ParseExpr(bad)
		if err != nil {
			continue
		}
		if _, err := EvalConst(e, params); err == nil {
			t.Errorf("EvalConst accepted %q", bad)
		}
	}
}

func TestProgramString(t *testing.T) {
	prog, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.String()
	for _, want := range []string{"param m", "input B", "forall i in", "output A"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q", want)
		}
	}
	// round-trip: the printed program re-parses and re-checks
	prog2, err := Parse(s)
	if err != nil {
		t.Fatalf("round-trip parse: %v\n%s", err, s)
	}
	if _, err := Check(prog2); err != nil {
		t.Fatalf("round-trip check: %v", err)
	}
}

func TestTypeString(t *testing.T) {
	if Scalar(KindReal).String() != "real" {
		t.Error("scalar string")
	}
	if ArrayOf(KindInt).String() != "array[integer]" {
		t.Error("array string")
	}
	if KindInvalid.String() != "invalid" {
		t.Error("invalid kind string")
	}
}

func TestExprStrings(t *testing.T) {
	for _, src := range []string{
		"if a then 1 else 2 endif",
		"let x : real := 1. in x endlet",
	} {
		e, err := ParseExpr(src)
		if err != nil {
			t.Fatal(err)
		}
		if e.String() == "" {
			t.Errorf("%q: empty String()", src)
		}
	}
}
