package val

import (
	"strings"
	"testing"

	"staticpipe/internal/value"
)

const twoDSrc = `
param m = 3;
param n = 4;
input U : array2[real] [0, m][1, n];
V : array2[real] :=
  forall i in [0, m], j in [1, n]
  construct U[i, j] * 2. + i - j
  endall;
output V;
`

func TestParseTwoD(t *testing.T) {
	prog, err := Parse(twoDSrc)
	if err != nil {
		t.Fatal(err)
	}
	in := prog.Decls[2]
	if !in.Ty.TwoD || in.Lo2 == nil || in.Hi2 == nil {
		t.Fatalf("input decl: %+v", in)
	}
	blk := prog.Decls[3]
	fa := blk.Init.(*Forall)
	if !fa.TwoD() || fa.IndexVar2 != "j" {
		t.Fatalf("forall: %+v", fa)
	}
	ix := fa.Accum.(*Binary).L.(*Binary).L.(*Binary).L.(*Index)
	if ix.Sub2 == nil {
		t.Fatalf("index: %v", ix)
	}
	// round-trip
	prog2, err := Parse(prog.String())
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, prog.String())
	}
	if _, err := Check(prog2); err != nil {
		t.Fatalf("round-trip check: %v", err)
	}
}

func TestCheckTwoD(t *testing.T) {
	c := mustCheck(t, twoDSrc)
	in, ok := c.Input("U")
	if !ok || in.Lo != 0 || in.Hi != 3 || in.Lo2 != 1 || in.Hi2 != 4 {
		t.Fatalf("input info: %+v", in)
	}
	if in.Len() != 4*4 {
		t.Errorf("Len = %d, want 16", in.Len())
	}
	blk, _ := c.Block("V")
	if blk.Ty != Array2Of(KindReal) {
		t.Errorf("V type %s", blk.Ty)
	}
	if blk.Ty.String() != "array2[real]" {
		t.Errorf("type string %q", blk.Ty)
	}
}

func TestInterpTwoD(t *testing.T) {
	c := mustCheck(t, twoDSrc)
	u := make([]value.Value, 16)
	for i := range u {
		u[i] = value.R(float64(i))
	}
	out, err := Interp(c, map[string][]value.Value{"U": u})
	if err != nil {
		t.Fatal(err)
	}
	v := out["V"]
	if v.W != 4 || v.Lo != 0 || v.Lo2 != 1 || v.Hi() != 3 {
		t.Fatalf("V shape: %+v", v)
	}
	// V[i,j] = U[i,j]*2 + i - j; U[i,j] = 4(i) + (j-1)
	got, err := v.At2(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(4*2+2)*2 + 2 - 3
	if got.AsReal() != want {
		t.Errorf("V[2,3] = %v, want %v", got, want)
	}
	if _, err := v.At2(4, 1); err == nil {
		t.Error("out-of-range At2 accepted")
	}
	if _, err := v.At2(0, 0); err == nil {
		t.Error("below second range accepted")
	}
	if _, err := v.At(0); err == nil {
		t.Error("single subscript on 2-D accepted")
	}
	one := &ArrayVal{Lo: 0, Elems: u[:4]}
	if _, err := one.At2(0, 0); err == nil {
		t.Error("At2 on 1-D accepted")
	}
}

func TestCheckTwoDErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"one subscript", `
input U : array2[real] [0, 3][0, 3];
A : array[real] := forall i in [0, 3] construct U[i] endall;
output A;`, "subscripts"},
		{"two subscripts on vector", `
input U : array[real] [0, 3];
A : array[real] := forall i in [0, 3] construct U[i, i] endall;
output A;`, "subscripts"},
		{"bad second subscript type", `
input U : array2[real] [0, 3][0, 3];
A : array2[real] := forall i in [0, 3], j in [0, 3] construct U[i, 1.5] endall;
output A;`, "integer"},
		{"append 2d", `
A : array2[real] :=
  for i : integer := 1; T : array2[real] := [0: 0.]
  do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor;
output A;`, "initialized as"},
		{"nonmanifest second range", `
input U : array2[real] [0, 3][0, k];
output U;`, "constant"},
		{"dup index var", `
input U : array2[real] [0, 3][0, 3];
A : array2[real] := forall i in [0, 3], i in [0, 3] construct U[i, i] endall;
output A;`, "redefined"},
	}
	for _, c := range cases {
		prog, err := Parse(c.src)
		if err == nil {
			_, err = Check(prog)
		}
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestParseErrorsTwoD(t *testing.T) {
	bad := []string{
		`input U : array2[real] [0, 3];`,                              // missing second range
		`input U : array2[real] [0, 3][0 3];`,                         // missing comma
		`A : array2[real] := forall i in [0,3], construct 1. endall;`, // dangling comma
		`A : array2[real] := forall i in [0,3], j in [0 3] construct 1. endall;`,
		`A : array[real] := forall i in [0,3] construct U[1, endall;`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestMiscStrings(t *testing.T) {
	// Exercise the remaining String methods for diagnostics quality.
	e, err := ParseExpr("U[i, j+1]")
	if err != nil {
		t.Fatal(err)
	}
	if e.String() != "U[i, (j + 1)]" {
		t.Errorf("index string %q", e.String())
	}
	fa, _ := ParseExpr("forall i in [0,1], j in [2,3] construct i+j endall")
	if !strings.Contains(fa.String(), "j in [2, 3]") {
		t.Errorf("forall string %q", fa.String())
	}
	it, _ := ParseExpr("iter x := 1; y := 2 enditer")
	if !strings.Contains(it.String(), "x := 1") {
		t.Errorf("iter string %q", it.String())
	}
	fi, _ := ParseExpr("for i : integer := 0 do 1. endfor")
	if !strings.Contains(fi.String(), "for i") {
		t.Errorf("foriter string %q", fi.String())
	}
	ap, _ := ParseExpr("T[i: 1.]")
	if ap.String() != "T[i: 1.]" {
		t.Errorf("append string %q", ap.String())
	}
	ai, _ := ParseExpr("[0: 2.5]")
	if ai.String() != "[0: 2.5]" {
		t.Errorf("arrayinit string %q", ai.String())
	}
	if OpNE.String() != "~=" || !OpLE.Relational() || OpAdd.Relational() {
		t.Error("op helpers")
	}
	if TokPunct.String() != "punctuation" || TokKind(99).String() != "invalid token" {
		t.Error("token kind strings")
	}
}
