// Package val implements a front end for the subset of the Val programming
// language (Ackerman & Dennis [1]) used by the paper: scalar expressions,
// let-in, if-then-else, array element selection A[i±k], forall blocks,
// for-iter blocks, and the pipe-structured program form of §4 — a sequence
// of array-defining blocks over declared input arrays.
//
// The concrete grammar:
//
//	program  = { decl } .
//	decl     = "param" IDENT "=" const ";"
//	         | "input" IDENT ":" type "[" const "," const "]" ";"
//	         | "output" IDENT ";"
//	         | IDENT ":" type ":=" expr ";" .
//	type     = "real" | "integer" | "boolean" | "array" "[" type "]" .
//	expr     = forall | foriter | "if" expr "then" expr "else" expr "endif"
//	         | "let" defs "in" expr "endlet" | binary .
//	forall   = "forall" IDENT "in" "[" const "," const "]" defs
//	           "construct" expr "endall" .
//	foriter  = "for" defs "do" expr "endfor" .
//	defs     = { IDENT ":" type ":=" expr ";" } .
//	iter     = "iter" { IDENT ":=" expr [";"] } "enditer" .
//	binary   = the usual Val operators: | & ~ = ~= < <= > >= + - * / .
//	postfix  = IDENT "[" expr "]"          (array element selection)
//	         | IDENT "[" expr ":" expr "]" (array append X[i: P])
//	         | "[" const ":" expr "]"      (array initializer [r: E]) .
//
// Comments run from '%' to end of line, as in the paper's listings.
package val

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokReal
	TokKeyword
	TokPunct
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokInt:
		return "integer literal"
	case TokReal:
		return "real literal"
	case TokKeyword:
		return "keyword"
	case TokPunct:
		return "punctuation"
	default:
		return "invalid token"
	}
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords of the Val subset.
var keywords = map[string]bool{
	"param": true, "input": true, "output": true,
	"forall": true, "in": true, "construct": true, "endall": true,
	"for": true, "do": true, "iter": true, "enditer": true, "endfor": true,
	"if": true, "then": true, "else": true, "endif": true,
	"let": true, "endlet": true,
	"real": true, "integer": true, "boolean": true, "array": true, "array2": true,
	"true": true, "false": true,
	"min": true, "max": true, "abs": true,
}

// punct lists multi-character punctuation longest-first.
var punct2 = []string{":=", "~=", "<=", ">="}
var punct1 = ":;,[]()=<>+-*/&|~"
