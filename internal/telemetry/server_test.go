package telemetry

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// get drives the mux directly (no socket) and returns status + body.
func get(t *testing.T, mux *http.ServeMux, path string) (int, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.String()
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun("handler-test", "exec")
	run.Progress().Cycle.Store(42)
	run.Progress().Arrivals.Add(7)

	mux := NewMux(reg)
	code, body := get(t, mux, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE staticpipe_build_info gauge",
		`staticpipe_run_info{run="handler-test",model="exec",state="running"} 1`,
		`staticpipe_run_cycle{run="handler-test"} 42`,
		`staticpipe_run_arrivals_total{run="handler-test"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestMetricsHandlerExtraAppenders(t *testing.T) {
	reg := NewRegistry()
	mux := NewMux(reg, func(w io.Writer) {
		io.WriteString(w, "# TYPE extra_family_total counter\nextra_family_total 3\n")
	})
	_, body := get(t, mux, "/metrics")
	if !strings.Contains(body, "extra_family_total 3") {
		t.Fatal("/metrics did not include the extra appender's families")
	}
	if !strings.Contains(body, "staticpipe_build_info") {
		t.Fatal("extra appender displaced the registry families")
	}
}

func TestRunsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.NewRun("a", "exec").Finish(nil)
	b := reg.NewRun("b", "machine")
	b.AddWarnings("w1")

	code, body := get(t, NewMux(reg), "/runs")
	if code != http.StatusOK {
		t.Fatalf("/runs status %d", code)
	}
	var infos []RunInfo
	if err := json.Unmarshal([]byte(body), &infos); err != nil {
		t.Fatalf("/runs not JSON: %v", err)
	}
	if len(infos) != 2 {
		t.Fatalf("/runs returned %d runs, want 2", len(infos))
	}
	if infos[0].Label != "a" || infos[0].State != StateDone {
		t.Fatalf("run a: %+v", infos[0])
	}
	if infos[1].Label != "b" || infos[1].State != StateRunning || len(infos[1].Warnings) != 1 {
		t.Fatalf("run b: %+v", infos[1])
	}
}

func TestHealthzHandler(t *testing.T) {
	code, body := get(t, NewMux(NewRegistry()), "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz status %d", code)
	}
	var health struct {
		Status string            `json:"status"`
		Build  map[string]string `json:"build"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/healthz not JSON: %v", err)
	}
	if health.Status != "ok" {
		t.Fatalf("/healthz status field %q", health.Status)
	}
	if len(health.Build) == 0 {
		t.Fatal("/healthz carries no build info")
	}
}

// TestHealthzRunCounts pins the liveness payload's run-registry counts,
// both from the registry fallback and from an injected health source.
func TestHealthzRunCounts(t *testing.T) {
	reg := NewRegistry()
	reg.NewRun("live", "exec")
	reg.NewRun("done", "exec").Finish(nil)

	decode := func(body string) map[string]int64 {
		t.Helper()
		var health struct {
			Runs map[string]int64 `json:"runs"`
		}
		if err := json.Unmarshal([]byte(body), &health); err != nil {
			t.Fatalf("/healthz not JSON: %v", err)
		}
		return health.Runs
	}

	_, body := get(t, NewMux(reg), "/healthz")
	runs := decode(body)
	if runs["active"] != 1 || runs["finished"] != 1 {
		t.Fatalf("registry counts = %v, want active=1 finished=1", runs)
	}

	// An injected health source replaces the registry counts wholesale.
	health := func() map[string]int64 {
		return map[string]int64{"jobs_tracked": 7, "jobs_running": 2}
	}
	_, body = get(t, NewMuxHealth(reg, health), "/healthz")
	runs = decode(body)
	if runs["jobs_tracked"] != 7 || runs["jobs_running"] != 2 {
		t.Fatalf("injected counts = %v", runs)
	}
}

// TestShutdownDrainsInflight pins the graceful path: Shutdown refuses new
// connections but lets an in-flight request finish.
func TestShutdownDrainsInflight(t *testing.T) {
	inHandler := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(inHandler)
		<-release
		io.WriteString(w, "drained")
	})
	srv, err := ServeHandler("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	got := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + srv.Addr() + "/slow")
		if err != nil {
			got <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		got <- result{body: string(b), err: err}
	}()
	<-inHandler

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()

	// The in-flight request must still complete after Shutdown started.
	time.Sleep(10 * time.Millisecond)
	close(release)
	r := <-got
	if r.err != nil || r.body != "drained" {
		t.Fatalf("in-flight request not drained: body=%q err=%v", r.body, r.err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// New connections are refused after shutdown.
	if _, err := http.Get("http://" + srv.Addr() + "/slow"); err == nil {
		t.Fatal("server still accepting connections after Shutdown")
	}
}

func TestServeBackwardCompatibleSignature(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/healthz over socket: status %d", resp.StatusCode)
	}
}
