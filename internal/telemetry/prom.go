package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"staticpipe/internal/buildinfo"
	"staticpipe/internal/trace"
)

// WriteMetrics renders every registered run's current snapshot in the
// Prometheus text exposition format (version 0.0.4). Each run contributes
// one consistent trace.Live snapshot, so counters within a run never tear
// even while the simulator goroutine is mid-cycle.
func WriteMetrics(w io.Writer, reg *Registry) {
	runs := reg.Runs()
	infos := make([]RunInfo, len(runs))
	snaps := make([]*trace.Metrics, len(runs))
	for i, r := range runs {
		infos[i] = r.Info()
		snaps[i] = r.live.Snapshot()
	}

	bi := buildinfo.Fields()
	var blabels []string
	for _, k := range buildinfo.Keys(bi) {
		blabels = append(blabels, lbl(k, bi[k]))
	}
	family(w, "staticpipe_build_info", "gauge", "Build metadata of the serving binary (value is always 1).")
	fmt.Fprintf(w, "staticpipe_build_info{%s} 1\n", strings.Join(blabels, ","))

	family(w, "staticpipe_run_info", "gauge", "One series per registered run; labels carry model and state (value is always 1).")
	for _, in := range infos {
		fmt.Fprintf(w, "staticpipe_run_info{%s,%s,%s} 1\n",
			lbl("run", in.Label), lbl("model", in.Model), lbl("state", string(in.State)))
	}

	family(w, "staticpipe_run_cycle", "gauge", "Most recently simulated cycle of the run.")
	for _, in := range infos {
		fmt.Fprintf(w, "staticpipe_run_cycle{%s} %d\n", lbl("run", in.Label), in.Cycle)
	}

	family(w, "staticpipe_run_arrivals_total", "counter", "Values received by the run's sinks so far.")
	for _, in := range infos {
		fmt.Fprintf(w, "staticpipe_run_arrivals_total{%s} %d\n", lbl("run", in.Label), in.Arrivals)
	}

	family(w, "staticpipe_run_cycles_per_sec", "gauge", "Simulation rate: cycles simulated per wall-clock second.")
	for _, in := range infos {
		fmt.Fprintf(w, "staticpipe_run_cycles_per_sec{%s} %s\n", lbl("run", in.Label), ftoa(in.CyclesPerSec))
	}

	family(w, "staticpipe_run_events_total", "counter", "Trace events aggregated by the run's metrics sink.")
	for i, in := range infos {
		fmt.Fprintf(w, "staticpipe_run_events_total{%s} %d\n", lbl("run", in.Label), snaps[i].Events)
	}

	family(w, "staticpipe_packets_total", "counter", "Packets routed, by traffic class (machine model).")
	for i, in := range infos {
		for k := trace.PacketKind(0); k < trace.NumPacketKinds; k++ {
			if n := snaps[i].Packets[k]; n > 0 {
				fmt.Fprintf(w, "staticpipe_packets_total{%s,%s} %d\n",
					lbl("run", in.Label), lbl("kind", k.String()), n)
			}
		}
	}

	family(w, "staticpipe_cell_firings_total", "counter", "Firings per instruction cell.")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for id := range snaps[i].Cells {
			if f := snaps[i].Cells[id].Firings; f > 0 {
				fmt.Fprintf(w, "staticpipe_cell_firings_total{%s,%s} %d\n",
					lbl("run", in.Label), lbl("cell", meta.CellName(id)), f)
			}
		}
	}

	family(w, "staticpipe_cell_stall_cycles_total", "counter", "Observed stall cycles per cell, by reason.")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for id := range snaps[i].Cells {
			c := &snaps[i].Cells[id]
			for _, s := range []struct {
				reason trace.Reason
				n      int64
			}{
				{trace.ReasonOperandWait, c.OperandWait},
				{trace.ReasonAckWait, c.AckWait},
				{trace.ReasonUnitBusy, c.UnitBusy},
			} {
				if s.n > 0 {
					fmt.Fprintf(w, "staticpipe_cell_stall_cycles_total{%s,%s,%s} %d\n",
						lbl("run", in.Label), lbl("cell", meta.CellName(id)), lbl("reason", s.reason.String()), s.n)
				}
			}
		}
	}

	family(w, "staticpipe_unit_firings_total", "counter", "Instructions retired per machine endpoint.")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for u := range snaps[i].Units {
			if n := snaps[i].Units[u].Firings; n > 0 {
				fmt.Fprintf(w, "staticpipe_unit_firings_total{%s,%s} %d\n",
					lbl("run", in.Label), lbl("unit", meta.UnitName(u)), n)
			}
		}
	}

	family(w, "staticpipe_fu_ops_total", "counter", "Operations initiated per function unit.")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for u := range snaps[i].Units {
			if n := snaps[i].Units[u].FUOps; n > 0 {
				fmt.Fprintf(w, "staticpipe_fu_ops_total{%s,%s} %d\n",
					lbl("run", in.Label), lbl("unit", meta.UnitName(u)), n)
			}
		}
	}

	family(w, "staticpipe_unit_occupancy", "gauge", "Fraction of cycles the endpoint retired an instruction (1.0 = saturated).")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for u := range snaps[i].Units {
			um := &snaps[i].Units[u]
			if um.Firings == 0 && um.FUOps == 0 && um.Delivered == 0 {
				continue
			}
			fmt.Fprintf(w, "staticpipe_unit_occupancy{%s,%s} %s\n",
				lbl("run", in.Label), lbl("unit", meta.UnitName(u)), ftoa(snaps[i].Occupancy(u)))
		}
	}

	// Per-shard families exist only for runs driven by the sharded
	// parallel engine (-workers > 1); sequential runs publish no series.
	type shardRow struct {
		run    string
		shards []*trace.ShardCounters
	}
	var sharded []shardRow
	for i, r := range runs {
		if s := r.prog.Shards(); len(s) > 0 {
			sharded = append(sharded, shardRow{run: infos[i].Label, shards: s})
		}
	}
	family(w, "staticpipe_shard_cycles_total", "counter", "Instruction times completed per shard of the sharded engine.")
	for _, row := range sharded {
		for si, sc := range row.shards {
			fmt.Fprintf(w, "staticpipe_shard_cycles_total{%s,%s} %d\n",
				lbl("run", row.run), lbl("shard", strconv.Itoa(si)), sc.Cycles.Load())
		}
	}
	family(w, "staticpipe_shard_firings_total", "counter", "Cell firings retired per shard.")
	for _, row := range sharded {
		for si, sc := range row.shards {
			fmt.Fprintf(w, "staticpipe_shard_firings_total{%s,%s} %d\n",
				lbl("run", row.run), lbl("shard", strconv.Itoa(si)), sc.Firings.Load())
		}
	}
	family(w, "staticpipe_shard_ring_msgs_total", "counter", "Cross-shard notifications (exec) or packets handled (machine) per shard.")
	for _, row := range sharded {
		for si, sc := range row.shards {
			fmt.Fprintf(w, "staticpipe_shard_ring_msgs_total{%s,%s} %d\n",
				lbl("run", row.run), lbl("shard", strconv.Itoa(si)), sc.RingMsgs.Load())
		}
	}
	family(w, "staticpipe_shard_ring_peak", "gauge", "Highest inbound ring occupancy (exec) or per-cycle delivery burst (machine) observed by the shard.")
	for _, row := range sharded {
		for si, sc := range row.shards {
			fmt.Fprintf(w, "staticpipe_shard_ring_peak{%s,%s} %d\n",
				lbl("run", row.run), lbl("shard", strconv.Itoa(si)), sc.RingPeak.Load())
		}
	}
	family(w, "staticpipe_shard_barrier_wait_ns_total", "counter", "Nanoseconds the shard's worker spent spinning at cycle barriers.")
	for _, row := range sharded {
		for si, sc := range row.shards {
			fmt.Fprintf(w, "staticpipe_shard_barrier_wait_ns_total{%s,%s} %d\n",
				lbl("run", row.run), lbl("shard", strconv.Itoa(si)), sc.BarrierWaitNs.Load())
		}
	}

	// Per-lane families exist only for batched runs (-batch > 1);
	// scalar runs publish no series, mirroring the shard families.
	type laneRow struct {
		run   string
		lanes []*trace.LaneCounters
	}
	var batched []laneRow
	for i, r := range runs {
		if l := r.prog.BatchLanes(); len(l) > 0 {
			batched = append(batched, laneRow{run: infos[i].Label, lanes: l})
		}
	}
	family(w, "staticpipe_batch_lanes", "gauge", "Configured lane count of the batched run.")
	for _, row := range batched {
		fmt.Fprintf(w, "staticpipe_batch_lanes{%s} %d\n", lbl("run", row.run), len(row.lanes))
	}
	family(w, "staticpipe_batch_lanes_active", "gauge", "Lanes still advancing (sources unexhausted or tokens in flight).")
	for _, row := range batched {
		active := 0
		for _, lc := range row.lanes {
			if lc.Done.Load() == 0 {
				active++
			}
		}
		fmt.Fprintf(w, "staticpipe_batch_lanes_active{%s} %d\n", lbl("run", row.run), active)
	}
	family(w, "staticpipe_batch_lane_cycles", "gauge", "Most recently simulated cycle of each lane.")
	for _, row := range batched {
		for li, lc := range row.lanes {
			fmt.Fprintf(w, "staticpipe_batch_lane_cycles{%s,%s} %d\n",
				lbl("run", row.run), lbl("lane", strconv.Itoa(li)), lc.Cycles.Load())
		}
	}
	family(w, "staticpipe_batch_lane_arrivals_total", "counter", "Values received by each lane's sinks so far.")
	for _, row := range batched {
		for li, lc := range row.lanes {
			fmt.Fprintf(w, "staticpipe_batch_lane_arrivals_total{%s,%s} %d\n",
				lbl("run", row.run), lbl("lane", strconv.Itoa(li)), lc.Arrivals.Load())
		}
	}
	family(w, "staticpipe_batch_progress_skew", "gauge", "Cycle spread between the fastest and slowest lane (0 = lockstep).")
	for _, row := range batched {
		min, max := int64(-1), int64(0)
		for _, lc := range row.lanes {
			c := lc.Cycles.Load()
			if min < 0 || c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		fmt.Fprintf(w, "staticpipe_batch_progress_skew{%s} %d\n", lbl("run", row.run), max-min)
	}

	family(w, "staticpipe_cell_interfiring_cycles", "histogram", "Inter-firing interval per cell, in cycles (log2 buckets).")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for id := range snaps[i].Cells {
			h := &snaps[i].Cells[id].Interval
			if h.Count == 0 {
				continue
			}
			writeHistogram(w, "staticpipe_cell_interfiring_cycles",
				lbl("run", in.Label)+","+lbl("cell", meta.CellName(id)), h)
		}
	}

	family(w, "staticpipe_unit_transit_cycles", "histogram", "Delivered-packet transit time per endpoint, queueing included (log2 buckets).")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for u := range snaps[i].Units {
			h := &snaps[i].Units[u].Transit
			if h.Count == 0 {
				continue
			}
			writeHistogram(w, "staticpipe_unit_transit_cycles",
				lbl("run", in.Label)+","+lbl("unit", meta.UnitName(u)), h)
		}
	}

	family(w, "staticpipe_fu_service_cycles", "histogram", "Function-unit service time (queue wait + pipeline latency) per FU (log2 buckets).")
	for i, in := range infos {
		meta := snaps[i].Meta()
		for u := range snaps[i].Units {
			h := &snaps[i].Units[u].Service
			if h.Count == 0 {
				continue
			}
			writeHistogram(w, "staticpipe_fu_service_cycles",
				lbl("run", in.Label)+","+lbl("unit", meta.UnitName(u)), h)
		}
	}
}

// family writes the HELP/TYPE header of one metric family.
func family(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// writeHistogram renders one trace.Histogram as a Prometheus histogram:
// cumulative le-labeled buckets (leading empties and the all-full tail
// elided), then the mandatory +Inf bucket, _sum, and _count.
func writeHistogram(w io.Writer, name, labels string, h *trace.Histogram) {
	var cum int64
	for i := 0; i < trace.HistBuckets-1; i++ {
		cum += h.Buckets[i]
		if cum == 0 {
			continue
		}
		fmt.Fprintf(w, "%s_bucket{%s,le=\"%d\"} %d\n", name, labels, trace.BucketBound(i), cum)
		if cum == h.Count {
			break
		}
	}
	fmt.Fprintf(w, "%s_bucket{%s,le=\"+Inf\"} %d\n", name, labels, h.Count)
	fmt.Fprintf(w, "%s_sum{%s} %d\n", name, labels, h.Sum)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, h.Count)
}

// lbl renders one key="value" pair with the value escaped per the text
// exposition format.
func lbl(key, value string) string { return key + `="` + escapeLabel(value) + `"` }

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ftoa renders a float sample value.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
