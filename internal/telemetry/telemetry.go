// Package telemetry turns the passive trace layer into live, scrape-able
// observability for running simulations: a registry of runs (each holding a
// concurrency-safe trace.Live sink and a lock-free trace.Progress counter)
// and an HTTP server exposing Prometheus metrics (/metrics), a JSON run
// listing (/runs), build info (/healthz), and net/http/pprof.
//
// The paper's central claim is a sustained *rate* — every cell fires once
// per two instruction times (§3) — and post-mortem metrics cannot show
// whether a long run is still converging toward that rate or has jammed.
// With a run registered here, a scrape during the run reads a consistent
// snapshot of every cell's firing counters, stall-reason counters, and
// inter-firing-interval histogram while the simulator goroutine keeps
// emitting; two scrapes a few seconds apart show exactly which cells are
// still advancing.
package telemetry

import (
	"sync"
	"time"

	"staticpipe/internal/trace"
)

// RunState describes a registered run's lifecycle.
type RunState string

const (
	StateRunning RunState = "running"
	StateDone    RunState = "done"
	StateFailed  RunState = "failed"
)

// Run is one registered simulation: attach Tracer() to the simulator's
// Tracer option and Progress() to its Progress option, then call Finish
// when the run returns. All methods are safe for concurrent use.
type Run struct {
	id    int
	label string
	// model names the executable model, "exec" or "machine".
	model string
	live  *trace.Live
	prog  *trace.Progress
	start time.Time

	mu       sync.Mutex
	state    RunState
	warnings []string
	errMsg   string
	endCycle int64
	wall     time.Duration
}

// Tracer returns the run's concurrency-safe metrics sink, to be attached
// as (or fanned into) the simulator's Tracer.
func (r *Run) Tracer() *trace.Live { return r.live }

// Progress returns the run's live progress counter, to be attached to the
// simulator's Progress option.
func (r *Run) Progress() *trace.Progress { return r.prog }

// Label returns the run's registered label.
func (r *Run) Label() string { return r.label }

// AddWarnings records compile- or run-level warnings for /runs.
func (r *Run) AddWarnings(ws ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.warnings = append(r.warnings, ws...)
}

// Finish marks the run complete (or failed, when err is non-nil), freezing
// its wall time and final cycle for rate reporting.
func (r *Run) Finish(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.state != StateRunning {
		return
	}
	r.wall = time.Since(r.start)
	r.endCycle = r.prog.Cycle.Load()
	if err != nil {
		r.state = StateFailed
		r.errMsg = err.Error()
	} else {
		r.state = StateDone
	}
}

// RunInfo is the /runs JSON shape: a consistent public snapshot of one
// run's progress.
type RunInfo struct {
	ID       int      `json:"id"`
	Label    string   `json:"label"`
	Model    string   `json:"model"`
	State    RunState `json:"state"`
	Cycle    int64    `json:"cycle"`
	Arrivals int64    `json:"arrivals"`
	// ElapsedSec is wall time since registration (frozen at Finish).
	ElapsedSec float64 `json:"elapsed_sec"`
	// CyclesPerSec is the run's simulation rate: live cycle over elapsed
	// wall time while running, final cycle over total wall time after.
	CyclesPerSec float64  `json:"cycles_per_sec"`
	Warnings     []string `json:"warnings,omitempty"`
	Error        string   `json:"error,omitempty"`
}

// Info snapshots the run's public state.
func (r *Run) Info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	info := RunInfo{
		ID:       r.id,
		Label:    r.label,
		Model:    r.model,
		State:    r.state,
		Cycle:    r.prog.Cycle.Load(),
		Arrivals: r.prog.Arrivals.Load(),
		Warnings: append([]string(nil), r.warnings...),
		Error:    r.errMsg,
	}
	elapsed := r.wall
	if r.state == StateRunning {
		elapsed = time.Since(r.start)
	} else {
		info.Cycle = r.endCycle
	}
	info.ElapsedSec = elapsed.Seconds()
	if s := elapsed.Seconds(); s > 0 {
		info.CyclesPerSec = float64(info.Cycle) / s
	}
	return info
}

// finished reports whether the run has left the running state.
func (r *Run) finished() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state != StateRunning
}

// DefaultKeepFinished is how many finished runs a registry retains by
// default. Long-lived processes register a run per simulation; without a
// bound the registry (and every /metrics scrape, which walks it) would
// grow without limit.
const DefaultKeepFinished = 64

// Registry tracks active and completed runs for one process. Finished runs
// are kept in a bounded ring — the most recent KeepFinished stay visible
// to /runs and /metrics, older ones are evicted as new runs register.
// Running runs are never evicted. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu     sync.Mutex
	runs   []*Run
	nextID int
	keep   int
}

// NewRegistry returns an empty run registry retaining DefaultKeepFinished
// finished runs.
func NewRegistry() *Registry { return &Registry{nextID: 1, keep: DefaultKeepFinished} }

// KeepFinished reconfigures the finished-run retention bound and applies
// it immediately; n < 0 retains everything. Returns g for chaining.
func (g *Registry) KeepFinished(n int) *Registry {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.keep = n
	g.prune()
	return g
}

// prune evicts the oldest finished runs beyond the retention bound. The
// caller holds g.mu.
func (g *Registry) prune() {
	if g.keep < 0 {
		return
	}
	finished := 0
	for _, r := range g.runs {
		if r.finished() {
			finished++
		}
	}
	evict := finished - g.keep
	if evict <= 0 {
		return
	}
	kept := g.runs[:0]
	for _, r := range g.runs {
		if evict > 0 && r.finished() {
			evict--
			continue
		}
		kept = append(kept, r)
	}
	for i := len(kept); i < len(g.runs); i++ {
		g.runs[i] = nil // release evicted runs to the collector
	}
	g.runs = kept
}

// NewRun registers a run under the given label and model ("exec" or
// "machine") and returns it in the running state.
func (g *Registry) NewRun(label, model string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	r := &Run{
		id:    g.nextID,
		label: label,
		model: model,
		live:  trace.NewLive(),
		prog:  &trace.Progress{},
		start: time.Now(),
		state: StateRunning,
	}
	g.nextID++
	g.runs = append(g.runs, r)
	g.prune()
	return r
}

// Runs returns the registered runs in registration order, applying the
// retention bound first so a scrape never walks more than the running runs
// plus the KeepFinished most recent finished ones.
func (g *Registry) Runs() []*Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prune()
	return append([]*Run(nil), g.runs...)
}

// Counts reports how many registered runs are live versus finished (after
// retention pruning) — the /healthz liveness payload.
func (g *Registry) Counts() (active, finished int64) {
	if g == nil {
		return 0, 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	g.prune()
	for _, r := range g.runs {
		if r.finished() {
			finished++
		} else {
			active++
		}
	}
	return active, finished
}
