package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-exposition (format 0.0.4)
// payload and returns every problem found, one message per line at fault.
// It is the CI gate behind `scripts/ci.sh`'s /metrics scrape: a metric
// family that renders without HELP/TYPE, emits duplicate series, or writes
// an unparsable sample would silently break scrapes in production, so the
// smoke run fails instead.
//
// Checks applied:
//   - every sample's metric name has a preceding # TYPE (and HELP) line
//   - TYPE values are legal (counter, gauge, histogram, summary, untyped)
//   - no series (name + label set) appears twice
//   - sample lines parse: name{labels} value, with quoted label values
//   - label sets are well-formed (balanced quotes, key="value" pairs)
//   - sample values parse as floats (including +Inf/-Inf/NaN)
func LintExposition(r io.Reader) []string {
	var problems []string
	typed := map[string]string{} // family name → declared type
	helped := map[string]bool{}
	seen := map[string]int{} // series key → first line number
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		switch {
		case strings.TrimSpace(line) == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, _, _ := strings.Cut(rest, " ")
			if name == "" {
				problems = append(problems, fmt.Sprintf("line %d: HELP without a metric name", lineNo))
				continue
			}
			helped[name] = true
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				problems = append(problems, fmt.Sprintf("line %d: malformed TYPE line %q", lineNo, line))
				continue
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				problems = append(problems, fmt.Sprintf("line %d: illegal type %q for %s", lineNo, typ, name))
			}
			if _, dup := typed[name]; dup {
				problems = append(problems, fmt.Sprintf("line %d: duplicate TYPE for %s", lineNo, name))
			}
			typed[name] = typ
		case strings.HasPrefix(line, "#"):
			continue // other comments are legal and ignored
		default:
			name, series, err := parseSample(line)
			if err != nil {
				problems = append(problems, fmt.Sprintf("line %d: %v", lineNo, err))
				continue
			}
			family := familyOf(name, typed)
			if _, ok := typed[family]; !ok {
				problems = append(problems, fmt.Sprintf("line %d: sample %s has no preceding TYPE", lineNo, name))
			} else if !helped[family] {
				problems = append(problems, fmt.Sprintf("line %d: family %s has TYPE but no HELP", lineNo, family))
			}
			if first, dup := seen[series]; dup {
				problems = append(problems,
					fmt.Sprintf("line %d: duplicate series %s (first at line %d)", lineNo, series, first))
			} else {
				seen[series] = lineNo
			}
		}
	}
	if err := sc.Err(); err != nil {
		problems = append(problems, fmt.Sprintf("reading exposition: %v", err))
	}
	return problems
}

// familyOf maps a sample name to its declaring family: histogram and
// summary samples carry _bucket/_sum/_count suffixes on the family name.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suffix); ok {
			if t := typed[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSample validates one sample line and returns the metric name and a
// canonical series key (name plus the literal label block).
func parseSample(line string) (name, series string, err error) {
	rest := line
	i := strings.IndexAny(rest, "{ ")
	if i <= 0 {
		return "", "", fmt.Errorf("malformed sample %q", line)
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", "", fmt.Errorf("illegal metric name %q", name)
	}
	series = name
	rest = rest[i:]
	if rest[0] == '{' {
		end, err := scanLabels(rest)
		if err != nil {
			return "", "", fmt.Errorf("sample %s: %v", name, err)
		}
		series = name + rest[:end]
		rest = rest[end:]
	}
	rest = strings.TrimLeft(rest, " ")
	// Value, optionally followed by a timestamp.
	val, _, _ := strings.Cut(rest, " ")
	if _, err := strconv.ParseFloat(val, 64); err != nil {
		return "", "", fmt.Errorf("sample %s: unparsable value %q", name, val)
	}
	return name, series, nil
}

// scanLabels walks a {key="value",...} block and returns the index just
// past the closing brace.
func scanLabels(s string) (int, error) {
	i := 1 // past '{'
	for {
		if i >= len(s) {
			return 0, fmt.Errorf("unterminated label block")
		}
		if s[i] == '}' {
			return i + 1, nil
		}
		// key
		j := i
		for j < len(s) && s[j] != '=' && s[j] != '}' && s[j] != ',' {
			j++
		}
		if j >= len(s) || s[j] != '=' || j == i {
			return 0, fmt.Errorf("malformed label pair near %q", s[i:min(i+20, len(s))])
		}
		j++ // past '='
		if j >= len(s) || s[j] != '"' {
			return 0, fmt.Errorf("unquoted label value near %q", s[i:min(i+20, len(s))])
		}
		j++ // past opening quote
		for j < len(s) && s[j] != '"' {
			if s[j] == '\\' {
				j++
			}
			j++
		}
		if j >= len(s) {
			return 0, fmt.Errorf("unterminated label value")
		}
		j++ // past closing quote
		if j < len(s) && s[j] == ',' {
			j++
		}
		i = j
	}
}

func validMetricName(s string) bool {
	for i, r := range s {
		alpha := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return len(s) > 0
}
