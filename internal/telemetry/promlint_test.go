package telemetry

import (
	"strings"
	"testing"

	"staticpipe/internal/trace"
)

func lint(t *testing.T, text string) []string {
	t.Helper()
	return LintExposition(strings.NewReader(text))
}

func TestLintAcceptsWellFormedExposition(t *testing.T) {
	text := `# HELP x_total Things.
# TYPE x_total counter
x_total{a="1"} 3
x_total{a="2"} 4
# HELP h A histogram.
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 2
h_sum 3.5
h_count 2
# HELP g A gauge.
# TYPE g gauge
g 0
`
	if probs := lint(t, text); len(probs) != 0 {
		t.Fatalf("clean exposition flagged: %v", probs)
	}
}

func TestLintFlagsMissingTypeAndHelp(t *testing.T) {
	probs := lint(t, "orphan_metric 1\n")
	if len(probs) != 1 || !strings.Contains(probs[0], "no preceding TYPE") {
		t.Fatalf("problems = %v", probs)
	}
	probs = lint(t, "# TYPE quiet gauge\nquiet 1\n")
	if len(probs) != 1 || !strings.Contains(probs[0], "no HELP") {
		t.Fatalf("problems = %v", probs)
	}
}

func TestLintFlagsDuplicateSeries(t *testing.T) {
	text := `# HELP d D.
# TYPE d gauge
d{t="a"} 1
d{t="a"} 2
`
	probs := lint(t, text)
	if len(probs) != 1 || !strings.Contains(probs[0], "duplicate series") {
		t.Fatalf("problems = %v", probs)
	}
	// Same name, different labels, is fine.
	if probs := lint(t, "# HELP d D.\n# TYPE d gauge\nd{t=\"a\"} 1\nd{t=\"b\"} 2\n"); len(probs) != 0 {
		t.Fatalf("distinct series flagged: %v", probs)
	}
}

func TestLintFlagsMalformedSamples(t *testing.T) {
	for _, bad := range []string{
		"# HELP m M.\n# TYPE m gauge\nm{unterminated=\"x} 1\n",
		"# HELP m M.\n# TYPE m gauge\nm notanumber\n",
		"# HELP m M.\n# TYPE m gauge\nm{k=unquoted} 1\n",
		"# TYPE m spiral\n",
	} {
		if probs := lint(t, bad); len(probs) == 0 {
			t.Errorf("lint accepted %q", bad)
		}
	}
}

// TestLintRealExposition runs the linter over the process's own /metrics
// output — registry families plus a live run — so the formats can never
// drift apart from the gate that checks them.
func TestLintRealExposition(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun("lint-me", "exec")
	run.Tracer().Emit(trace.Event{})
	run.Finish(nil)
	reg.NewRun("live", "machine")
	var b strings.Builder
	WriteMetrics(&b, reg)
	if probs := LintExposition(strings.NewReader(b.String())); len(probs) != 0 {
		t.Fatalf("own exposition fails lint:\n%s", strings.Join(probs, "\n"))
	}
}

// TestBuildInfoGauge pins the build-info family: exactly one series, value
// 1, carrying at least the go_version label.
func TestBuildInfoGauge(t *testing.T) {
	var b strings.Builder
	WriteMetrics(&b, NewRegistry())
	var series []string
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasPrefix(line, "staticpipe_build_info{") {
			series = append(series, line)
		}
	}
	if len(series) != 1 {
		t.Fatalf("build_info series = %v, want exactly 1", series)
	}
	if !strings.HasSuffix(series[0], "} 1") {
		t.Fatalf("build_info value: %q, want 1", series[0])
	}
	if !strings.Contains(series[0], `go_version="go`) {
		t.Fatalf("build_info lacks go_version label: %q", series[0])
	}
}
