package telemetry

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"staticpipe/internal/buildinfo"
)

// Server is the telemetry HTTP endpoint of one process. It serves:
//
//	/metrics       Prometheus text format (all registered runs)
//	/runs          JSON registry of active and completed runs
//	/healthz       liveness + build info
//	/debug/pprof/  the standard net/http/pprof surface
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// NewMux builds the telemetry handler tree for reg — exposed separately
// from Serve so tests (and embedders such as dfserve) can drive it without
// a socket. Each extra appender is invoked after the registry families on
// every /metrics scrape, letting other subsystems publish their own
// Prometheus families (e.g. the staticpipe_serve_* admission counters) on
// the same endpoint.
func NewMux(reg *Registry, extra ...func(io.Writer)) *http.ServeMux {
	return NewMuxHealth(reg, nil, extra...)
}

// NewMuxHealth is NewMux with a live health-stats source: when health is
// non-nil, every /healthz response includes its counts (e.g. dfserve's
// active/queued/finished job registry) alongside the build info.
func NewMuxHealth(reg *Registry, health func() map[string]int64, extra ...func(io.Writer)) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, reg)
		for _, f := range extra {
			f(w)
		}
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		runs := reg.Runs()
		infos := make([]RunInfo, len(runs))
		for i, run := range runs {
			infos[i] = run.Info()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(infos)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		body := struct {
			Status string            `json:"status"`
			Build  map[string]string `json:"build"`
			Runs   map[string]int64  `json:"runs,omitempty"`
		}{Status: "ok", Build: buildinfo.Fields()}
		if health != nil {
			body.Runs = health()
		} else if reg != nil {
			active, finished := reg.Counts()
			body.Runs = map[string]int64{"active": active, "finished": finished}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(body)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":9090", "127.0.0.1:0") and serves the telemetry
// surface for reg in a background goroutine. It returns once the listener
// is bound, so a subsequent scrape of Addr() cannot race the bind.
func Serve(addr string, reg *Registry, extra ...func(io.Writer)) (*Server, error) {
	return ServeHandler(addr, NewMux(reg, extra...))
}

// ServeHandler binds addr and serves an arbitrary handler tree in a
// background goroutine — the mount point for embedders that combine the
// telemetry mux with their own routes (dfserve mounts /jobs alongside
// /metrics). It returns once the listener is bound.
func ServeHandler(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 10 * time.Second}
	s := &Server{ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes immediately
// (new connections are refused) while in-flight requests — a long scrape,
// a streaming /jobs/{id}/events response — run to completion, bounded by
// ctx. It returns ctx.Err() if the drain deadline passes first.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the listener and any in-flight handlers immediately; prefer
// Shutdown for a graceful drain.
func (s *Server) Close() error { return s.srv.Close() }
