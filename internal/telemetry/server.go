package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"staticpipe/internal/buildinfo"
)

// Server is the telemetry HTTP endpoint of one process. It serves:
//
//	/metrics       Prometheus text format (all registered runs)
//	/runs          JSON registry of active and completed runs
//	/healthz       liveness + build info
//	/debug/pprof/  the standard net/http/pprof surface
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// NewMux builds the telemetry handler tree for reg — exposed separately
// from Serve so tests (and embedders) can drive it without a socket.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WriteMetrics(w, reg)
	})
	mux.HandleFunc("/runs", func(w http.ResponseWriter, r *http.Request) {
		runs := reg.Runs()
		infos := make([]RunInfo, len(runs))
		for i, run := range runs {
			infos[i] = run.Info()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(infos)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Status string            `json:"status"`
			Build  map[string]string `json:"build"`
		}{Status: "ok", Build: buildinfo.Fields()})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr (e.g. ":9090", "127.0.0.1:0") and serves the telemetry
// surface for reg in a background goroutine. It returns once the listener
// is bound, so a subsequent scrape of Addr() cannot race the bind.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewMux(reg), ReadHeaderTimeout: 10 * time.Second}
	s := &Server{reg: reg, ln: ln, srv: srv}
	go srv.Serve(ln)
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
