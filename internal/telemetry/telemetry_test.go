package telemetry

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"staticpipe/internal/trace"
)

// startMeta builds a small two-cell, two-unit trace.Meta for feeding events
// into a run's sink by hand.
func startMeta() trace.Meta {
	return trace.Meta{
		Cells: []string{"c0", "c1"},
		Units: []string{"PE0", "FU0"},
	}
}

// emitCycles drives n firing cycles (cell 0 fires every cycle, an op packet
// is delivered to FU0 and started two cycles later) into the run's sink and
// progress counters, starting at cycle base.
func emitCycles(r *Run, base, n int64) {
	lv := r.Tracer()
	for c := base; c < base+n; c++ {
		r.Progress().Cycle.Store(c)
		lv.Emit(trace.Event{Cycle: c, Kind: trace.KindFiring, Cell: 0, Unit: 0})
		lv.Emit(trace.Event{Cycle: c, Kind: trace.KindDeliver, Unit: 1, Dst: 1,
			Packet: trace.PacketOp, Aux: 3})
		lv.Emit(trace.Event{Cycle: c + 2, Kind: trace.KindFUStart, Unit: 1, Aux: 4})
		r.Progress().Arrivals.Add(1)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	reg := NewRegistry()
	a := reg.NewRun("fig2/exec", "exec")
	b := reg.NewRun("fig2/machine", "machine")
	if a.Label() != "fig2/exec" || b.Label() != "fig2/machine" {
		t.Fatalf("labels: %q, %q", a.Label(), b.Label())
	}
	runs := reg.Runs()
	if len(runs) != 2 || runs[0] != a || runs[1] != b {
		t.Fatalf("Runs() = %v", runs)
	}

	a.Tracer().Start(startMeta())
	emitCycles(a, 1, 10)
	in := a.Info()
	if in.State != StateRunning || in.Cycle != 10 || in.Arrivals != 10 {
		t.Errorf("running info = %+v", in)
	}
	if in.ID != 1 || b.Info().ID != 2 {
		t.Errorf("ids: %d, %d", in.ID, b.Info().ID)
	}

	a.AddWarnings("w1", "w2")
	a.Finish(nil)
	a.Finish(errors.New("late")) // idempotent: first Finish wins
	in = a.Info()
	if in.State != StateDone || in.Error != "" {
		t.Errorf("done info = %+v", in)
	}
	if len(in.Warnings) != 2 {
		t.Errorf("warnings = %v", in.Warnings)
	}
	if in.Cycle != 10 {
		t.Errorf("final cycle = %d, want 10 (frozen at Finish)", in.Cycle)
	}

	b.Finish(errors.New("deadlock at cycle 7"))
	if in := b.Info(); in.State != StateFailed || in.Error == "" {
		t.Errorf("failed info = %+v", in)
	}
}

// A scrape during a live run must reflect progress: counters and histogram
// buckets change between two scrapes with emission in between, and within
// one scrape the snapshot is consistent.
func TestMetricsChangeBetweenScrapes(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun("live", "exec")
	run.Tracer().Start(startMeta())
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	scrape := func() string {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
			t.Fatalf("content type = %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	sample := func(body, metric string) int64 {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(metric) + `\{[^}]*\} (\d+)$`)
		m := re.FindStringSubmatch(body)
		if m == nil {
			t.Fatalf("metric %s not found in scrape:\n%s", metric, body)
		}
		v, _ := strconv.ParseInt(m[1], 10, 64)
		return v
	}

	emitCycles(run, 1, 50)
	s1 := scrape()
	emitCycles(run, 51, 200)
	s2 := scrape()

	for _, m := range []string{
		"staticpipe_run_cycle",
		"staticpipe_cell_firings_total",
		"staticpipe_cell_interfiring_cycles_count",
		"staticpipe_fu_service_cycles_count",
	} {
		v1, v2 := sample(s1, m), sample(s2, m)
		if v2 <= v1 {
			t.Errorf("%s did not advance between scrapes: %d -> %d", m, v1, v2)
		}
	}
	// The interval histogram is all-ones, so its first bucket is cumulative
	// and must itself grow — a live bucket change, not just the count.
	bucket := regexp.MustCompile(`staticpipe_cell_interfiring_cycles_bucket\{[^}]*le="1"\} (\d+)`)
	b1 := bucket.FindStringSubmatch(s1)
	b2 := bucket.FindStringSubmatch(s2)
	if b1 == nil || b2 == nil || b1[1] == b2[1] {
		t.Errorf("le=\"1\" bucket did not change between scrapes: %v -> %v", b1, b2)
	}
	// Required histogram structure: +Inf bucket, _sum, _count all present.
	for _, frag := range []string{
		`staticpipe_cell_interfiring_cycles_bucket{run="live",cell="c0",le="+Inf"}`,
		`staticpipe_cell_interfiring_cycles_sum{run="live",cell="c0"}`,
		`staticpipe_fu_service_cycles_bucket{run="live",unit="FU0",le="+Inf"}`,
	} {
		if !strings.Contains(s2, frag) {
			t.Errorf("scrape missing %s", frag)
		}
	}
	if !strings.Contains(s2, `staticpipe_run_info{run="live",model="exec",state="running"} 1`) {
		t.Errorf("scrape missing run_info series:\n%s", s2)
	}
}

// Scraping while a writer goroutine emits concurrently must never tear or
// race (this test is the telemetry half of the -race pin).
func TestConcurrentScrapeDuringEmission(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun("hot", "machine")
	run.Tracer().Start(startMeta())
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		emitCycles(run, 1, 2000)
		run.Finish(nil)
	}()
	for i := 0; i < 20; i++ {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "staticpipe_run_cycle") {
			t.Fatalf("scrape %d missing run_cycle", i)
		}
	}
	wg.Wait()
}

func TestRunsEndpoint(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun("fig2/exec", "exec")
	run.Tracer().Start(startMeta())
	emitCycles(run, 1, 25)
	done := reg.NewRun("short", "machine")
	done.Finish(errors.New("boom"))
	srv := httptest.NewServer(NewMux(reg))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var infos []RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("got %d runs", len(infos))
	}
	if infos[0].Label != "fig2/exec" || infos[0].State != StateRunning || infos[0].Cycle != 25 {
		t.Errorf("run 0 = %+v", infos[0])
	}
	if infos[1].State != StateFailed || infos[1].Error != "boom" {
		t.Errorf("run 1 = %+v", infos[1])
	}
}

func TestHealthzAndPprof(t *testing.T) {
	srv := httptest.NewServer(NewMux(NewRegistry()))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string            `json:"status"`
		Build  map[string]string `json:"build"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Errorf("status = %q", h.Status)
	}
	if h.Build["go_version"] == "" {
		t.Errorf("healthz build info missing go_version: %v", h.Build)
	}

	pp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Body.Close()
	if pp.StatusCode != http.StatusOK {
		t.Errorf("pprof index status = %d", pp.StatusCode)
	}
	body, _ := io.ReadAll(pp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof index does not list profiles")
	}
}

// Serve must bind synchronously so an immediate scrape cannot race the
// listener, and label values with quotes/backslashes must be escaped.
func TestServeAndLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	run := reg.NewRun(`odd"label\with$chars`, "exec")
	run.Tracer().Start(startMeta())
	emitCycles(run, 1, 3)

	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	want := `run="odd\"label\\with$chars"`
	if !strings.Contains(string(body), want) {
		t.Errorf("escaped label %s not found in scrape", want)
	}
}

// TestRegistryBoundsFinishedRuns pins the retention ring: finished runs
// beyond the KeepFinished bound are evicted oldest-first as new runs
// register, while running runs are never evicted regardless of age.
func TestRegistryBoundsFinishedRuns(t *testing.T) {
	reg := NewRegistry().KeepFinished(3)
	pinned := reg.NewRun("pinned", "exec") // stays running throughout
	for i := 0; i < 10; i++ {
		r := reg.NewRun("batch-"+strconv.Itoa(i), "exec")
		r.Finish(nil)
	}
	runs := reg.Runs()
	if len(runs) != 4 {
		t.Fatalf("registry holds %d runs, want 4 (1 running + 3 finished)", len(runs))
	}
	if runs[0] != pinned {
		t.Error("the running run was evicted")
	}
	labels := make([]string, 0, 3)
	for _, r := range runs[1:] {
		labels = append(labels, r.Label())
	}
	want := []string{"batch-7", "batch-8", "batch-9"}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("retained finished runs %v, want %v (newest kept)", labels, want)
		}
	}
	// Tightening the bound prunes immediately.
	reg.KeepFinished(1)
	if got := len(reg.Runs()); got != 2 {
		t.Errorf("after KeepFinished(1): %d runs, want 2", got)
	}
	// Negative disables eviction.
	reg.KeepFinished(-1)
	for i := 0; i < 5; i++ {
		reg.NewRun("keep-"+strconv.Itoa(i), "exec").Finish(nil)
	}
	if got := len(reg.Runs()); got != 7 {
		t.Errorf("with retention disabled: %d runs, want 7", got)
	}
}

// TestDefaultRetentionBound checks the default registry keeps
// DefaultKeepFinished finished runs.
func TestDefaultRetentionBound(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < DefaultKeepFinished+20; i++ {
		reg.NewRun("r"+strconv.Itoa(i), "exec").Finish(nil)
	}
	if got := len(reg.Runs()); got != DefaultKeepFinished {
		t.Errorf("default registry holds %d finished runs, want %d", got, DefaultKeepFinished)
	}
}

// TestShardMetricFamilies scrapes a run whose Progress carries per-shard
// counters and checks the staticpipe_shard_* families are published with
// one series per shard; a sequential run publishes none.
func TestShardMetricFamilies(t *testing.T) {
	reg := NewRegistry()
	seq := reg.NewRun("seq", "exec")
	seq.Tracer().Start(startMeta())
	par := reg.NewRun("par", "exec")
	par.Tracer().Start(startMeta())
	shards := par.Progress().InitShards(2)
	shards[0].Cycles.Store(100)
	shards[0].Firings.Store(40)
	shards[0].RingMsgs.Store(7)
	shards[0].RingPeak.Store(3)
	shards[0].BarrierWaitNs.Store(12345)
	shards[1].Cycles.Store(100)
	shards[1].Firings.Store(60)

	var b strings.Builder
	WriteMetrics(&b, reg)
	out := b.String()
	for _, want := range []string{
		`staticpipe_shard_cycles_total{run="par",shard="0"} 100`,
		`staticpipe_shard_firings_total{run="par",shard="1"} 60`,
		`staticpipe_shard_ring_msgs_total{run="par",shard="0"} 7`,
		`staticpipe_shard_ring_peak{run="par",shard="0"} 3`,
		`staticpipe_shard_barrier_wait_ns_total{run="par",shard="0"} 12345`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(out, `run="seq",shard=`) {
		t.Error("sequential run published shard series")
	}
}

func TestBatchMetricFamilies(t *testing.T) {
	reg := NewRegistry()
	scalar := reg.NewRun("scalar", "exec")
	scalar.Tracer().Start(startMeta())
	bat := reg.NewRun("bat", "exec")
	bat.Tracer().Start(startMeta())
	lanes := bat.Progress().InitLanes(3)
	lanes[0].Cycles.Store(120)
	lanes[0].Arrivals.Store(16)
	lanes[0].Done.Store(1)
	lanes[1].Cycles.Store(117)
	lanes[1].Arrivals.Store(14)
	lanes[2].Cycles.Store(119)
	lanes[2].Arrivals.Store(15)

	var b strings.Builder
	WriteMetrics(&b, reg)
	out := b.String()
	for _, want := range []string{
		`staticpipe_batch_lanes{run="bat"} 3`,
		`staticpipe_batch_lanes_active{run="bat"} 2`,
		`staticpipe_batch_lane_cycles{run="bat",lane="1"} 117`,
		`staticpipe_batch_lane_arrivals_total{run="bat",lane="2"} 15`,
		`staticpipe_batch_progress_skew{run="bat"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if strings.Contains(out, `run="scalar",lane=`) || strings.Contains(out, `staticpipe_batch_lanes{run="scalar"}`) {
		t.Error("scalar run published batch series")
	}
}
