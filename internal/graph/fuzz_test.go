package graph

import "testing"

// FuzzUnmarshal asserts the graph loader never panics on arbitrary input:
// it either reconstructs a valid graph or returns an error.
func FuzzUnmarshal(f *testing.F) {
	if data, err := buildLoopy().Marshal(); err == nil {
		f.Add(data)
	}
	f.Add([]byte(`{"format":"staticpipe-graph/1","nodes":[],"arcs":[]}`))
	f.Add([]byte(`{"format":"staticpipe-graph/1","nodes":[{"op":1,"ports":1}],"arcs":[{"from":0,"to":0,"port":0}]}`))
	f.Add([]byte("{}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := Unmarshal(data)
		if err != nil {
			return
		}
		// A successfully loaded graph must be valid and re-marshalable.
		if err := g.Validate(); err != nil {
			t.Fatalf("Unmarshal returned an invalid graph: %v", err)
		}
		if _, err := g.Marshal(); err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
	})
}
