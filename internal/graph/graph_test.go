package graph

import (
	"strings"
	"testing"

	"staticpipe/internal/value"
)

func TestOpArity(t *testing.T) {
	cases := []struct {
		op   Op
		want int
	}{
		{OpSource, 0}, {OpCtlGen, 0},
		{OpID, 1}, {OpNeg, 1}, {OpNot, 1}, {OpSink, 1}, {OpFIFO, 1}, {OpAbs, 1},
		{OpAdd, 2}, {OpMul, 2}, {OpLT, 2}, {OpAnd, 2}, {OpTGate, 2}, {OpFGate, 2},
		{OpMerge, 3},
		{OpInvalid, -1},
	}
	for _, c := range cases {
		if got := c.op.NumIn(); got != c.want {
			t.Errorf("%s.NumIn() = %d, want %d", c.op, got, c.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpMul.String() != "MULT" {
		t.Errorf("OpMul = %q, want MULT", OpMul.String())
	}
	if OpMerge.String() != "MERG" {
		t.Errorf("OpMerge = %q, want MERG", OpMerge.String())
	}
	if !strings.Contains(Op(200).String(), "200") {
		t.Errorf("unknown op should render its number, got %q", Op(200).String())
	}
}

// buildFig2 constructs the paper's Figure 2 pipeline:
// y = a*b in (y+2.)*(y-3.)
func buildFig2() (*Graph, *Node, *Node, *Node) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1, 2, 3}))
	b := g.AddSource("b", value.Reals([]float64{4, 5, 6}))
	mul := g.Add(OpMul, "cell1")
	add := g.Add(OpAdd, "cell2")
	sub := g.Add(OpSub, "cell3")
	mul2 := g.Add(OpMul, "cell4")
	sink := g.AddSink("out")
	g.Connect(a, mul, 0)
	g.Connect(b, mul, 1)
	g.Connect(mul, add, 0)
	g.SetLiteral(add, 1, value.R(2))
	g.Connect(mul, sub, 0)
	g.SetLiteral(sub, 1, value.R(3))
	g.Connect(add, mul2, 0)
	g.Connect(sub, mul2, 1)
	g.Connect(mul2, sink, 0)
	return g, mul, add, sink
}

func TestValidateOK(t *testing.T) {
	g, _, _, _ := buildFig2()
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.NumNodes() != 7 {
		t.Errorf("NumNodes = %d, want 7", g.NumNodes())
	}
	if g.NumArcs() != 7 {
		t.Errorf("NumArcs = %d, want 7", g.NumArcs())
	}
}

func TestValidateUnboundPort(t *testing.T) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1}))
	add := g.Add(OpAdd, "")
	sink := g.AddSink("out")
	g.Connect(a, add, 0)
	g.Connect(add, sink, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected unbound-port error")
	}
}

func TestValidateUnconsumedResult(t *testing.T) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1}))
	id := g.Add(OpID, "")
	g.Connect(a, id, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected unconsumed-result error")
	}
}

func TestValidateMissingStream(t *testing.T) {
	g := New()
	s := g.Add(OpSource, "a")
	sink := g.AddSink("out")
	g.Connect(s, sink, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected missing-stream error")
	}
}

func TestValidateBadFIFO(t *testing.T) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1}))
	f := g.Add(OpFIFO, "f") // Cap left 0
	sink := g.AddSink("out")
	g.Connect(a, f, 0)
	g.Connect(f, sink, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected bad-FIFO error")
	}
}

func TestDoubleFeedPanics(t *testing.T) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1}))
	b := g.AddSource("b", value.Reals([]float64{1}))
	id := g.Add(OpID, "")
	g.Connect(a, id, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double-feeding a port")
		}
	}()
	g.Connect(b, id, 0)
}

func TestLiteralThenArcPanics(t *testing.T) {
	g := New()
	a := g.AddSource("a", value.Reals([]float64{1}))
	add := g.Add(OpAdd, "")
	g.SetLiteral(add, 0, value.R(1))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic connecting over a literal")
		}
	}()
	g.Connect(a, add, 0)
}

func TestConnectFromSinkPanics(t *testing.T) {
	g := New()
	sink := g.AddSink("out")
	id := g.Add(OpID, "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic connecting from a sink")
		}
	}()
	g.Connect(sink, id, 0)
}

func TestTopoSort(t *testing.T) {
	g, _, _, _ := buildFig2()
	order, err := g.TopoSort()
	if err != nil {
		t.Fatalf("TopoSort: %v", err)
	}
	pos := map[NodeID]int{}
	for i, n := range order {
		pos[n.ID] = i
	}
	for _, a := range g.Arcs() {
		if pos[a.From] >= pos[a.To] {
			t.Errorf("arc %d -> %d violates topological order", a.From, a.To)
		}
	}
	if !g.IsAcyclic() {
		t.Error("Fig 2 graph should be acyclic")
	}
}

func TestTopoSortCycle(t *testing.T) {
	g := New()
	a := g.Add(OpID, "a")
	b := g.Add(OpID, "b")
	g.Connect(a, b, 0)
	g.Connect(b, a, 0)
	if _, err := g.TopoSort(); err != ErrCyclic {
		t.Fatalf("TopoSort on cycle: got %v, want ErrCyclic", err)
	}
	if g.IsAcyclic() {
		t.Error("cycle not detected")
	}
}

func TestInsertFIFO(t *testing.T) {
	g, mul, add, _ := buildFig2()
	arc := add.In[0].Arc
	f := g.InsertFIFO(arc, 3)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after InsertFIFO: %v", err)
	}
	if f.Cap != 3 || !f.Buffer {
		t.Errorf("FIFO cap=%d buffer=%v, want 3/true", f.Cap, f.Buffer)
	}
	if add.In[0].Arc.From != f.ID {
		t.Errorf("add port 0 now fed by %d, want FIFO %d", add.In[0].Arc.From, f.ID)
	}
	if arc.To != f.ID {
		t.Errorf("original arc redirected to %d, want FIFO %d", arc.To, f.ID)
	}
	_ = mul
}

func TestExpandFIFOs(t *testing.T) {
	g, _, add, _ := buildFig2()
	g.InsertFIFO(add.In[0].Arc, 3)
	before := g.NumNodes()
	ex := g.ExpandFIFOs()
	if ex == g {
		t.Fatal("expected a new graph after expansion")
	}
	if err := ex.Validate(); err != nil {
		t.Fatalf("expanded graph invalid: %v", err)
	}
	// FIFO(3) replaced by 3 ID cells: net +2 nodes.
	if ex.NumNodes() != before+2 {
		t.Errorf("expanded nodes = %d, want %d", ex.NumNodes(), before+2)
	}
	ids := 0
	for _, n := range ex.Nodes() {
		if n.Op == OpFIFO {
			t.Error("FIFO survived expansion")
		}
		if n.Op == OpID && n.Buffer {
			ids++
		}
	}
	if ids != 3 {
		t.Errorf("buffer ID cells = %d, want 3", ids)
	}
}

func TestExpandFIFOsNoop(t *testing.T) {
	g, _, _, _ := buildFig2()
	if g.ExpandFIFOs() != g {
		t.Error("graph without FIFOs should be returned unchanged")
	}
}

func TestExpandFIFOPreservesInit(t *testing.T) {
	g := New()
	a := g.Add(OpID, "a")
	f := g.AddFIFO("f", 2)
	sink := g.AddSink("out")
	src := g.AddSource("s", value.Reals([]float64{1}))
	g.Connect(src, a, 0)
	arc := g.Connect(a, f, 0)
	g.SetInit(arc, value.R(9))
	g.Connect(f, sink, 0)
	ex := g.ExpandFIFOs()
	found := 0
	for _, na := range ex.Arcs() {
		if na.Init != nil {
			found++
			if na.Init.AsReal() != 9 {
				t.Errorf("init token = %v, want 9", na.Init)
			}
		}
	}
	if found != 1 {
		t.Errorf("init tokens after expansion = %d, want 1", found)
	}
}

func TestPattern(t *testing.T) {
	// <F T^3 F> — the Fig 4 selection stream for m=3.
	p := Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 3, Suffix: []bool{false}}
	if p.Len() != 5 {
		t.Fatalf("Len = %d, want 5", p.Len())
	}
	want := []bool{false, true, true, true, false}
	got := p.Values()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("At(%d) = %v, want %v", i, got[i], want[i])
		}
	}
	if s := p.String(); s != "<F(T)^3F>" {
		t.Errorf("String = %q", s)
	}
}

func TestPatternInfinite(t *testing.T) {
	p := Pattern{Body: []bool{true, false}, Repeat: -1}
	if p.Len() != -1 {
		t.Fatalf("Len = %d, want -1", p.Len())
	}
	for i := 0; i < 10; i++ {
		if p.At(i) != (i%2 == 0) {
			t.Errorf("At(%d) = %v", i, p.At(i))
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Values on infinite pattern should panic")
		}
	}()
	p.Values()
}

func TestPatternOutOfRange(t *testing.T) {
	p := Pattern{Prefix: []bool{true}}
	defer func() {
		if recover() == nil {
			t.Error("At out of range should panic")
		}
	}()
	p.At(1)
}

func TestGatePorts(t *testing.T) {
	g := New()
	m := g.Add(OpMerge, "m")
	gp := g.AddGate(m)
	if gp != 3 {
		t.Fatalf("AddGate port = %d, want 3", gp)
	}
	id := g.Add(OpID, "x")
	g.ConnectGated(m, gp, id, 0)
	ports := m.GatePorts()
	if len(ports) != 1 || ports[0] != 3 {
		t.Errorf("GatePorts = %v, want [3]", ports)
	}
}

func TestValidateExtraPortsRejectedOnSource(t *testing.T) {
	g := New()
	s := g.AddSource("s", value.Reals([]float64{1}))
	g.AddGate(s)
	sink := g.AddSink("out")
	g.Connect(s, sink, 0)
	if err := g.Validate(); err == nil {
		t.Fatal("expected error for extra port on a source")
	}
}

func TestStats(t *testing.T) {
	g, _, add, _ := buildFig2()
	g.InsertFIFO(add.In[0].Arc, 4)
	s := g.ComputeStats()
	if s.Cells != 8 {
		t.Errorf("Cells = %d, want 8", s.Cells)
	}
	if s.BufferCells != 1 || s.BufferUnits != 4 {
		t.Errorf("BufferCells=%d BufferUnits=%d, want 1/4", s.BufferCells, s.BufferUnits)
	}
	if s.ByOp[OpMul] != 2 {
		t.Errorf("MULT count = %d, want 2", s.ByOp[OpMul])
	}
}

func TestStringAndDOT(t *testing.T) {
	g, _, _, _ := buildFig2()
	txt := g.String()
	for _, want := range []string{"MULT", "ADD", "SUB", "SRC", "SINK"} {
		if !strings.Contains(txt, want) {
			t.Errorf("String() missing %q", want)
		}
	}
	dot := g.DOT("fig2")
	if !strings.Contains(dot, "digraph") || !strings.Contains(dot, "->") {
		t.Error("DOT output malformed")
	}
}

func TestNodeName(t *testing.T) {
	g := New()
	n := g.Add(OpAdd, "p")
	if n.Name() != "ADD#0(p)" {
		t.Errorf("Name = %q", n.Name())
	}
	m := g.Add(OpMul, "")
	if m.Name() != "MULT#1" {
		t.Errorf("Name = %q", m.Name())
	}
}
