package graph

import (
	"encoding/json"
	"fmt"

	"staticpipe/internal/value"
)

// The serialized graph format: a stable JSON encoding of the machine-level
// program, the moral equivalent of the static architecture's loadable
// instruction-cell image. cmd/dfc can emit it (-emit) and cmd/dfsim can
// execute it (-graph), separating compilation from simulation.

// fileFormat identifies the encoding; bump on incompatible changes.
const fileFormat = "staticpipe-graph/1"

type jsonFile struct {
	Format string     `json:"format"`
	Nodes  []jsonNode `json:"nodes"`
	Arcs   []jsonArc  `json:"arcs"`
}

type jsonNode struct {
	Op      uint8                  `json:"op"`
	Label   string                 `json:"label,omitempty"`
	Ports   int                    `json:"ports"`
	Cap     int                    `json:"cap,omitempty"`
	Stream  []value.Value          `json:"stream,omitempty"`
	Pattern *jsonPattern           `json:"pattern,omitempty"`
	Buffer  bool                   `json:"buffer,omitempty"`
	Lits    map[string]value.Value `json:"lits,omitempty"` // port -> literal
}

type jsonPattern struct {
	Prefix []bool `json:"prefix,omitempty"`
	Body   []bool `json:"body,omitempty"`
	Repeat int    `json:"repeat,omitempty"`
	Suffix []bool `json:"suffix,omitempty"`
}

type jsonArc struct {
	From     int          `json:"from"`
	To       int          `json:"to"`
	ToPort   int          `json:"port"`
	Gate     int          `json:"gate,omitempty"`
	Init     *value.Value `json:"init,omitempty"`
	Feedback bool         `json:"feedback,omitempty"`
	Rigid    bool         `json:"rigid,omitempty"`
	Skew     int          `json:"skew,omitempty"`
	Marking  int          `json:"marking,omitempty"`
}

// Marshal serializes the graph. The encoding is deterministic (nodes and
// arcs in ID order) and self-contained: Unmarshal reconstructs an
// equivalent graph.
func (g *Graph) Marshal() ([]byte, error) {
	f := jsonFile{Format: fileFormat}
	for _, n := range g.nodes {
		jn := jsonNode{
			Op:     uint8(n.Op),
			Label:  n.Label,
			Ports:  len(n.In),
			Cap:    n.Cap,
			Stream: n.Stream,
			Buffer: n.Buffer,
		}
		if n.Op == OpCtlGen {
			jn.Pattern = &jsonPattern{
				Prefix: n.Pattern.Prefix, Body: n.Pattern.Body,
				Repeat: n.Pattern.Repeat, Suffix: n.Pattern.Suffix,
			}
		}
		for p, in := range n.In {
			if in.Literal != nil {
				if jn.Lits == nil {
					jn.Lits = map[string]value.Value{}
				}
				jn.Lits[fmt.Sprint(p)] = *in.Literal
			}
		}
		f.Nodes = append(f.Nodes, jn)
	}
	for _, a := range g.arcs {
		ja := jsonArc{
			From: int(a.From), To: int(a.To), ToPort: a.ToPort,
			// Gate is stored shifted by one so that 0 (omitted) means
			// "unconditional" even though port 0 is a valid gate port.
			Gate: a.Gate + 1, Init: a.Init,
			Feedback: a.Feedback, Rigid: a.Rigid, Skew: a.Skew, Marking: a.Marking,
		}
		f.Arcs = append(f.Arcs, ja)
	}
	return json.MarshalIndent(f, "", " ")
}

// Unmarshal reconstructs a graph written by Marshal and validates it.
func Unmarshal(data []byte) (*Graph, error) {
	var f jsonFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	if f.Format != fileFormat {
		return nil, fmt.Errorf("graph: unknown format %q (want %q)", f.Format, fileFormat)
	}
	g := New()
	for i, jn := range f.Nodes {
		op := Op(jn.Op)
		if op.NumIn() < 0 || !opKnown(op) {
			return nil, fmt.Errorf("graph: node %d has unknown op %d", i, jn.Op)
		}
		n := g.Add(op, jn.Label)
		if jn.Ports < op.NumIn() {
			return nil, fmt.Errorf("graph: node %d has %d ports, op %s needs %d", i, jn.Ports, op, op.NumIn())
		}
		for len(n.In) < jn.Ports {
			g.AddGate(n)
		}
		n.Cap = jn.Cap
		n.Stream = jn.Stream
		if op == OpSource && n.Stream == nil {
			n.Stream = []value.Value{}
		}
		n.Buffer = jn.Buffer
		if jn.Pattern != nil {
			n.Pattern = Pattern{
				Prefix: jn.Pattern.Prefix, Body: jn.Pattern.Body,
				Repeat: jn.Pattern.Repeat, Suffix: jn.Pattern.Suffix,
			}
		}
	}
	for i, ja := range f.Arcs {
		if ja.From < 0 || ja.From >= len(g.nodes) || ja.To < 0 || ja.To >= len(g.nodes) {
			return nil, fmt.Errorf("graph: arc %d endpoints out of range", i)
		}
		from, to := g.nodes[ja.From], g.nodes[ja.To]
		if ja.ToPort < 0 || ja.ToPort >= len(to.In) {
			return nil, fmt.Errorf("graph: arc %d targets missing port %d of node %d", i, ja.ToPort, ja.To)
		}
		if to.In[ja.ToPort].Arc != nil || to.In[ja.ToPort].Literal != nil {
			return nil, fmt.Errorf("graph: arc %d doubly feeds port %d of node %d", i, ja.ToPort, ja.To)
		}
		if !from.Op.HasOut() {
			return nil, fmt.Errorf("graph: arc %d leaves %s, which has no output", i, from.Op)
		}
		gate := ja.Gate - 1
		if gate != NoGate && (gate < 0 || gate >= len(from.In)) {
			return nil, fmt.Errorf("graph: arc %d gated by missing port %d of node %d", i, gate, ja.From)
		}
		a := g.ConnectGated(from, gate, to, ja.ToPort)
		if ja.Init != nil {
			g.SetInit(a, *ja.Init)
		}
		a.Feedback = ja.Feedback
		a.Rigid = ja.Rigid
		a.Skew = ja.Skew
		a.Marking = ja.Marking
	}
	for i, jn := range f.Nodes {
		for ps, lit := range jn.Lits {
			var p int
			if _, err := fmt.Sscanf(ps, "%d", &p); err != nil {
				return nil, fmt.Errorf("graph: node %d literal port %q", i, ps)
			}
			if p < 0 || p >= len(g.nodes[i].In) {
				return nil, fmt.Errorf("graph: node %d literal on missing port %d", i, p)
			}
			if g.nodes[i].In[p].Arc != nil {
				return nil, fmt.Errorf("graph: node %d port %d has both an arc and a literal", i, p)
			}
			g.SetLiteral(g.nodes[i], p, lit)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// opKnown reports whether the opcode is in the defined set.
func opKnown(op Op) bool {
	_, ok := opNames[op]
	return ok
}
