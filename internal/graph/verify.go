package graph

import "fmt"

// Verify performs the deep structural checks the pass manager runs between
// compilation passes. It subsumes Validate (port arity, bound operands,
// consumed results) and additionally checks the invariants that individual
// graph transformations are most likely to break:
//
//   - arc-table consistency: every arc registered in the graph is linked
//     from its producer's destination list and into its consumer's operand
//     port, and vice versa. A dangling arc would break the acknowledge
//     discipline — the reverse ack path of an arc is implicit in the
//     forward path, so an arc only half-registered at either endpoint has
//     no route for its acknowledge packet.
//   - acyclicity outside declared feedback: every directed cycle must
//     traverse at least one arc marked Feedback. Balancing and rate
//     analysis treat the non-feedback subgraph as a DAG; an undeclared
//     cycle silently breaks both.
//   - liveness of declared cycles: every strongly-connected component
//     must have a way to fire its first cell — either an initial token
//     (Arc.Init) on an internal arc (the marked cycles of the companion
//     scheme and the control-generator loops), or a MERGE cell whose
//     control and at least one data port are fed from outside the
//     component (Todd's scheme, where the first control value steers the
//     externally supplied initial value into the loop). A component with
//     neither can never fire any of its cells — the graph would deadlock
//     at start-up.
//
// Verify is O(cells + arcs) and allocates only bookkeeping slices; it is
// cheap enough to run after every pass in -verify-each mode.
func (g *Graph) Verify() error {
	if err := g.Validate(); err != nil {
		return err
	}
	if err := g.verifyArcTable(); err != nil {
		return err
	}
	if err := g.acyclicExcluding(func(a *Arc) bool { return a.Feedback },
		"directed cycle with no feedback arc (undeclared feedback)"); err != nil {
		return err
	}
	if err := g.verifyCycleTokens(); err != nil {
		return err
	}
	return nil
}

// verifyCycleTokens checks that every strongly-connected component has a
// start-up mechanism: an internal arc with an initial token, or a MERGE
// cell steered and seeded from outside the component.
func (g *Graph) verifyCycleTokens() error {
	comp := g.sccs()
	internalArcs := map[int]bool{} // component id -> has internal arc
	live := map[int]bool{}         // component id -> has a start-up mechanism
	for _, a := range g.arcs {
		if comp[a.From] != comp[a.To] {
			continue
		}
		c := comp[a.From]
		internalArcs[c] = true
		if a.Init != nil {
			live[c] = true
		}
	}
	fedExternally := func(n *Node, p int) bool {
		in := n.In[p]
		if in.Literal != nil {
			return true
		}
		return in.Arc != nil && comp[in.Arc.From] != comp[n.ID]
	}
	for _, n := range g.nodes {
		if n.Op != OpMerge || live[comp[n.ID]] {
			continue
		}
		if fedExternally(n, 0) && (fedExternally(n, 1) || fedExternally(n, 2)) {
			live[comp[n.ID]] = true
		}
	}
	for c := range internalArcs {
		if !live[c] {
			for _, n := range g.nodes {
				if comp[n.ID] == c {
					return fmt.Errorf("graph: cycle through %s carries no initial token and no externally seeded MERGE (would deadlock)", n.Name())
				}
			}
		}
	}
	return nil
}

// sccs returns a strongly-connected-component id per node (iterative
// Tarjan, safe for graphs deeper than the goroutine stack would like).
func (g *Graph) sccs() []int {
	n := len(g.nodes)
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	comp := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var stack []NodeID
	next := 0
	ncomp := 0

	type frame struct {
		id  NodeID
		arc int // next out-arc index to explore
	}
	for _, start := range g.nodes {
		if index[start.ID] != unvisited {
			continue
		}
		frames := []frame{{id: start.ID}}
		index[start.ID] = next
		low[start.ID] = next
		next++
		stack = append(stack, start.ID)
		onStack[start.ID] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			nd := g.nodes[f.id]
			if f.arc < len(nd.Out) {
				w := nd.Out[f.arc].To
				f.arc++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{id: w})
				} else if onStack[w] {
					if index[w] < low[f.id] {
						low[f.id] = index[w]
					}
				}
				continue
			}
			// Retreat: pop the frame, fold low into the parent, close SCCs.
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].id
				if low[f.id] < low[p] {
					low[p] = low[f.id]
				}
			}
			if low[f.id] == index[f.id] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == f.id {
						break
					}
				}
				ncomp++
			}
		}
	}
	return comp
}

// verifyArcTable cross-checks the three views of every arc: the graph's arc
// table, the producer's Out list, and the consumer's In port.
func (g *Graph) verifyArcTable() error {
	n := len(g.nodes)
	for i, a := range g.arcs {
		if a == nil {
			return fmt.Errorf("graph: arc table entry %d is nil", i)
		}
		if a.ID != i {
			return fmt.Errorf("graph: arc table entry %d has ID %d", i, a.ID)
		}
		if int(a.From) < 0 || int(a.From) >= n {
			return fmt.Errorf("graph: arc %d has dangling producer node %d", a.ID, a.From)
		}
		if int(a.To) < 0 || int(a.To) >= n {
			return fmt.Errorf("graph: arc %d from %s has dangling destination node %d",
				a.ID, g.nodes[a.From].Name(), a.To)
		}
		to := g.nodes[a.To]
		if a.ToPort < 0 || a.ToPort >= len(to.In) {
			return fmt.Errorf("graph: arc %d targets missing port %d of %s", a.ID, a.ToPort, to.Name())
		}
		if to.In[a.ToPort].Arc != a {
			return fmt.Errorf("graph: arc %d -> %s port %d is not the arc that port is fed by",
				a.ID, to.Name(), a.ToPort)
		}
		found := false
		for _, oa := range g.nodes[a.From].Out {
			if oa == a {
				if found {
					return fmt.Errorf("graph: arc %d listed twice by producer %s", a.ID, g.nodes[a.From].Name())
				}
				found = true
			}
		}
		if !found {
			return fmt.Errorf("graph: arc %d missing from producer %s destination list (dangling ack path)",
				a.ID, g.nodes[a.From].Name())
		}
	}
	for _, nd := range g.nodes {
		for _, a := range nd.Out {
			if a.From != nd.ID {
				return fmt.Errorf("graph: %s lists arc %d which names producer %d", nd.Name(), a.ID, a.From)
			}
			if a.ID < 0 || a.ID >= len(g.arcs) || g.arcs[a.ID] != a {
				return fmt.Errorf("graph: %s lists arc %d not in the arc table", nd.Name(), a.ID)
			}
		}
		for p, in := range nd.In {
			a := in.Arc
			if a == nil {
				continue
			}
			if a.ID < 0 || a.ID >= len(g.arcs) || g.arcs[a.ID] != a {
				return fmt.Errorf("graph: %s port %d fed by arc %d not in the arc table", nd.Name(), p, a.ID)
			}
			if a.To != nd.ID || a.ToPort != p {
				return fmt.Errorf("graph: %s port %d fed by arc %d which targets node %d port %d",
					nd.Name(), p, a.ID, a.To, a.ToPort)
			}
		}
	}
	return nil
}

// acyclicExcluding checks that the subgraph of arcs NOT matched by skip is
// acyclic (Kahn peeling); msg names the violated invariant.
func (g *Graph) acyclicExcluding(skip func(*Arc) bool, msg string) error {
	indeg := make([]int, len(g.nodes))
	for _, a := range g.arcs {
		if !skip(a) {
			indeg[a.To]++
		}
	}
	queue := make([]NodeID, 0, len(g.nodes))
	for _, n := range g.nodes {
		if indeg[n.ID] == 0 {
			queue = append(queue, n.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		seen++
		for _, a := range g.nodes[id].Out {
			if skip(a) {
				continue
			}
			indeg[a.To]--
			if indeg[a.To] == 0 {
				queue = append(queue, a.To)
			}
		}
	}
	if seen != len(g.nodes) {
		// Name one offending cell for the diagnostic: any cell left with
		// positive in-degree lies on (or downstream of) such a cycle.
		for _, n := range g.nodes {
			if indeg[n.ID] > 0 {
				return fmt.Errorf("graph: %s (at %s)", msg, n.Name())
			}
		}
		return fmt.Errorf("graph: %s", msg)
	}
	return nil
}

// OnCycle marks every node that lies on a directed cycle, indexed by
// NodeID. It peels nodes with zero in- or out-degree until a fixpoint; the
// residue is exactly the union of the graph's cycles. Shared by the
// verifier, common-cell elimination (cycle cells are never merged), and the
// arm-slack pass (feedback merges are never padded).
func (g *Graph) OnCycle() []bool {
	n := len(g.nodes)
	indeg := make([]int, n)
	outdeg := make([]int, n)
	for _, a := range g.arcs {
		indeg[a.To]++
		outdeg[a.From]++
	}
	removed := make([]bool, n)
	changed := true
	for changed {
		changed = false
		for _, nd := range g.nodes {
			if removed[nd.ID] {
				continue
			}
			if indeg[nd.ID] == 0 || outdeg[nd.ID] == 0 {
				removed[nd.ID] = true
				changed = true
				for _, a := range nd.Out {
					if !removed[a.To] {
						indeg[a.To]--
					}
				}
				for _, in := range nd.In {
					if in.Arc != nil && !removed[in.Arc.From] {
						outdeg[in.Arc.From]--
					}
				}
			}
		}
	}
	onCycle := make([]bool, n)
	for i := range onCycle {
		onCycle[i] = !removed[i]
	}
	return onCycle
}
