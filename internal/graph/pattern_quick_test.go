package graph

import (
	"testing"
	"testing/quick"
)

// Property: for any finite pattern, Len agrees with Values and At agrees
// element-wise — the invariants every control generator relies on.
func TestQuickPatternConsistency(t *testing.T) {
	f := func(prefix []bool, body []bool, repeat uint8, suffix []bool) bool {
		p := Pattern{Prefix: prefix, Body: body, Repeat: int(repeat % 40), Suffix: suffix}
		vals := p.Values()
		if len(vals) != p.Len() {
			return false
		}
		for i, v := range vals {
			if p.At(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: an infinite pattern repeats its body forever.
func TestQuickPatternInfinite(t *testing.T) {
	f := func(prefix []bool, body []bool) bool {
		if len(body) == 0 {
			return true
		}
		p := Pattern{Prefix: prefix, Body: body, Repeat: -1}
		if p.Len() != -1 {
			return false
		}
		for i := 0; i < 3*len(body); i++ {
			if p.At(len(prefix)+i) != body[i%len(body)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
