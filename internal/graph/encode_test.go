package graph

import (
	"strings"
	"testing"

	"staticpipe/internal/value"
)

// buildLoopy builds a graph exercising every serialized feature: sources,
// sinks, control generators, FIFOs, literals, gated destinations with an
// extra gate port, initial tokens, feedback/rigid/skew/marking flags.
func buildLoopy() *Graph {
	g := New()
	a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5}))
	add := g.Add(OpAdd, "acc")
	merge := g.Add(OpMerge, "m")
	g.Connect(g.AddCtl("mctl", Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5}), merge, 0)
	g.Connect(a, add, 0)
	arc := g.Connect(add, merge, 1)
	arc.Skew = 2
	arc.Rigid = true
	g.SetLiteral(merge, 2, value.I(0))
	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl", Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}}), merge, gp)
	fb := g.ConnectGated(merge, gp, add, 1)
	fb.Feedback = true
	fb.Marking = 1
	g.SetInit(fb, value.I(7))
	f := g.AddFIFO("buf", 3)
	f.Buffer = true
	sink := g.AddSink("x")
	g.Connect(merge, f, 0)
	g.Connect(f, sink, 0)
	return g
}

func TestMarshalRoundTrip(t *testing.T) {
	g := buildLoopy()
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	// Structural equality via the textual listing and a re-marshal.
	if g.String() != g2.String() {
		t.Errorf("listing differs:\n%s\nvs\n%s", g, g2)
	}
	data2, err := g2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Error("re-marshal differs")
	}
	// Flags survive.
	var fb *Arc
	for _, a := range g2.Arcs() {
		if a.Feedback {
			fb = a
		}
	}
	if fb == nil || fb.Marking != 1 || fb.Init == nil || fb.Init.AsInt() != 7 || fb.Gate != 3 {
		t.Fatalf("feedback arc lost state: %+v", fb)
	}
	rigid := false
	for _, a := range g2.Arcs() {
		if a.Rigid && a.Skew == 2 {
			rigid = true
		}
	}
	if !rigid {
		t.Error("rigid/skew flags lost")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	cases := []struct{ name, data string }{
		{"garbage", "not json"},
		{"format", `{"format":"other/9","nodes":[],"arcs":[]}`},
		{"bad op", `{"format":"staticpipe-graph/1","nodes":[{"op":200,"ports":0}],"arcs":[]}`},
		{"short ports", `{"format":"staticpipe-graph/1","nodes":[{"op":3,"ports":1}],"arcs":[]}`},
		{"arc range", `{"format":"staticpipe-graph/1","nodes":[],"arcs":[{"from":0,"to":1,"port":0}]}`},
		{"bad literal port", `{"format":"staticpipe-graph/1","nodes":[{"op":1,"ports":1,"lits":{"4":{"k":"int","i":1}}}],"arcs":[]}`},
	}
	for _, c := range cases {
		if _, err := Unmarshal([]byte(c.data)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMarshalContainsFormat(t *testing.T) {
	g := buildLoopy()
	data, err := g.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "staticpipe-graph/1") {
		t.Error("format marker missing")
	}
}
