// Package mcm computes the maximum cycle ratio of a marked graph — the
// analytical counterpart of the simulator in package exec.
//
// Under the static dataflow firing discipline, every data arc u→v carries a
// pair of timing constraints: the forward result path (v fires at least one
// cycle after u, enabled by the tokens initially on the arc) and the
// reverse acknowledge path (u may refill the arc only after v drains it;
// the free slot is an initial token on the reverse edge). The steady-state
// initiation interval of the whole graph is
//
//	II = max over directed cycles C of  latency(C) / tokens(C),
//
// a classical marked-graph result the paper uses implicitly throughout §3
// and §7: a producer/consumer arc pair forms a 2-cycle with one token
// (II = 2, "two instruction times"); Todd's 3-cell for-iter loop carries one
// token (II = 3, the paper's 1/3 rate); the companion-transformed loop has 4
// cells and two circulating values (II = 2, maximum). A cycle with zero
// tokens can never fire — a structural deadlock.
//
// The ratio is found by binary search on λ with Bellman-Ford positive-cycle
// detection, then snapped to the exact rational (denominators are bounded
// by the total token count) and verified with integer arithmetic.
package mcm

import (
	"errors"
	"fmt"

	"staticpipe/internal/graph"
)

// Edge is one timing constraint: traversing it takes Latency cycles and it
// initially holds Tokens tokens. Latency may be negative — PredictII uses
// negative reverse latencies to model stream-grid skew — but every cycle a
// well-formed graph contains must have positive total latency (the
// producer/consumer pair cycles guarantee this for instruction graphs).
type Edge struct {
	From, To int
	Latency  int64
	Tokens   int64
}

// Result is the outcome of a cycle-ratio analysis.
type Result struct {
	// HasCycle reports whether the constraint graph contains any directed
	// cycle. Acyclic graphs impose no steady-state rate bound.
	HasCycle bool
	// Num/Den is the maximum cycle ratio as a reduced fraction; the
	// minimum sustainable initiation interval is Num/Den cycles per
	// firing. Zero when HasCycle is false.
	Num, Den int64
}

// Float returns the ratio as a float64 (0 when acyclic).
func (r Result) Float() float64 {
	if !r.HasCycle {
		return 0
	}
	return float64(r.Num) / float64(r.Den)
}

// String renders the result for reports.
func (r Result) String() string {
	if !r.HasCycle {
		return "acyclic (no rate bound)"
	}
	return fmt.Sprintf("II = %d/%d = %.4g", r.Num, r.Den, r.Float())
}

// ErrDeadlock reports a directed cycle with zero tokens: no cell on it can
// ever fire.
var ErrDeadlock = errors.New("mcm: zero-token cycle (structural deadlock)")

// MaxRatio computes the maximum cycle ratio of the given constraint graph
// on nodes 0..n-1. It returns ErrDeadlock if a zero-token cycle exists.
func MaxRatio(n int, edges []Edge) (Result, error) {
	for _, e := range edges {
		if e.From < 0 || e.From >= n || e.To < 0 || e.To >= n {
			return Result{}, fmt.Errorf("mcm: edge %d->%d out of range (n=%d)", e.From, e.To, n)
		}
		if e.Tokens < 0 {
			return Result{}, fmt.Errorf("mcm: negative tokens on edge %d->%d", e.From, e.To)
		}
	}
	if !hasCycle(n, edges, func(Edge) bool { return true }) {
		return Result{}, nil
	}
	if hasCycle(n, edges, func(e Edge) bool { return e.Tokens == 0 }) {
		return Result{}, ErrDeadlock
	}

	var totalLat, totalTok int64 = 0, 0
	for _, e := range edges {
		if e.Latency > 0 {
			totalLat += e.Latency
		}
		totalTok += e.Tokens
	}
	if totalTok == 0 {
		totalTok = 1
	}
	// positiveCycle(p, q) reports whether some cycle C has
	// latency(C)/tokens(C) > p/q, i.e. Σ(q·lat − p·tok) > 0 over C.
	positiveCycle := func(p, q int64) bool {
		w := make([]int64, len(edges))
		for i, e := range edges {
			w[i] = q*e.Latency - p*e.Tokens
		}
		return hasPositiveCycle(n, edges, w)
	}

	// Binary search λ = lo..hi on reals until the interval is narrower than
	// 1/(2·totalTok²); then exactly one rational with denominator ≤
	// totalTok lies in it — the answer.
	lo, hi := 0.0, float64(totalLat)
	for i := 0; i < 80 && hi-lo > 0.5/float64(totalTok*totalTok+1); i++ {
		mid := (lo + hi) / 2
		if positiveCycleFloat(n, edges, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	num, den := bestRational(lo, hi, totalTok)
	// Verify: no cycle exceeds num/den, and tightening by 1/den² finds one.
	if positiveCycle(num, den) {
		return Result{}, fmt.Errorf("mcm: ratio verification failed (snapped too low: %d/%d)", num, den)
	}
	if num > 0 && !positiveCycle(num*den-1, den*den) {
		return Result{}, fmt.Errorf("mcm: ratio verification failed (snapped too high: %d/%d)", num, den)
	}
	g := gcd(num, den)
	return Result{HasCycle: true, Num: num / g, Den: den / g}, nil
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// hasCycle detects a directed cycle over the subgraph of edges accepted by
// keep, using iterative three-color DFS.
func hasCycle(n int, edges []Edge, keep func(Edge) bool) bool {
	adj := make([][]int, n)
	for i, e := range edges {
		if keep(e) {
			adj[e.From] = append(adj[e.From], i)
		}
	}
	color := make([]uint8, n) // 0 white, 1 gray, 2 black
	type frame struct{ node, next int }
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		stack := []frame{{s, 0}}
		color[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				e := edges[adj[f.node][f.next]]
				f.next++
				switch color[e.To] {
				case 0:
					color[e.To] = 1
					stack = append(stack, frame{e.To, 0})
				case 1:
					return true
				}
			} else {
				color[f.node] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return false
}

// hasPositiveCycle runs Bellman-Ford longest-path relaxation from a virtual
// source connected to every node; a relaxation surviving n rounds implies a
// positive-weight cycle.
func hasPositiveCycle(n int, edges []Edge, w []int64) bool {
	dist := make([]int64, n) // virtual source: dist 0 to every node
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, e := range edges {
			if nd := dist[e.From] + w[i]; nd > dist[e.To] {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// positiveCycleFloat is the float-weight variant used during the search.
func positiveCycleFloat(n int, edges []Edge, lambda float64) bool {
	dist := make([]float64, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for _, e := range edges {
			w := float64(e.Latency) - lambda*float64(e.Tokens)
			if nd := dist[e.From] + w; nd > dist[e.To]+1e-12 {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			return false
		}
	}
	return true
}

// bestRational returns the rational p/q with the smallest q ≤ maxDen lying
// in [lo, hi], found by walking the Stern–Brocot tree.
func bestRational(lo, hi float64, maxDen int64) (int64, int64) {
	// Handle integer-valued intervals directly.
	for k := int64(lo); float64(k) <= hi+1e-15; k++ {
		if float64(k) >= lo-1e-15 {
			return k, 1
		}
	}
	var pl, ql, pr, qr int64 = 0, 1, 1, 0 // 0/1 .. 1/0
	for i := 0; i < 1024; i++ {
		pm, qm := pl+pr, ql+qr
		if qm > maxDen {
			break
		}
		m := float64(pm) / float64(qm)
		switch {
		case m < lo:
			pl, ql = pm, qm
		case m > hi:
			pr, qr = pm, qm
		default:
			return pm, qm
		}
	}
	// Fall back to the closest bound with denominator maxDen.
	p := int64((lo+hi)/2*float64(maxDen) + 0.5)
	return p, maxDen
}

// PredictII builds the marked timing graph of a machine-level instruction
// graph (after FIFO expansion) and returns its maximum cycle ratio — the
// analytically predicted initiation interval.
//
// Feedback arcs carry their scheme's steady-state marking (Arc.Marking: 1
// for Todd loops, 2 for companion loops) and contribute no acknowledge
// edge — their producer is a gated merge that skips the send when the loop
// winds down, so the one-slot backpressure pair does not apply. Graphs
// containing other data-dependent routing (gates, merges) are predicted
// under the conservative assumption that every arc is exercised every
// firing; for the unconditional graphs of §3 and the loop kernels of §7
// the prediction is exact, and the test suite cross-checks it against
// simulation.
func PredictII(g *graph.Graph) (Result, error) {
	g = g.ExpandFIFOs()
	return MaxRatio(g.NumNodes(), TimingEdges(g))
}

// TimingEdges builds the marked timing-constraint graph PredictII analyzes:
// a forward edge per data arc and, for non-feedback arcs, the reverse
// acknowledge edge carrying the arc's free slot.
func TimingEdges(g *graph.Graph) []Edge {
	var edges []Edge
	for _, a := range g.Arcs() {
		tok := int64(a.Marking)
		if a.Init != nil {
			tok++
		}
		// A window gate's output for wave j derives from input wave
		// j+Skew, shifting its timing by 2·Skew cycles at full rate: the
		// forward constraint lengthens and the acknowledge constraint
		// shortens by that amount (their pair cycle stays at ratio 2).
		skew := int64(a.Skew)
		edges = append(edges, Edge{From: int(a.From), To: int(a.To), Latency: 1 + 2*skew, Tokens: tok})
		if !a.Feedback || tok == 0 {
			rev := int64(1) - tok
			if rev < 0 {
				rev = 0
			}
			edges = append(edges, Edge{From: int(a.To), To: int(a.From), Latency: 1 - 2*skew, Tokens: rev})
		}
	}
	return edges
}

// Critical computes PredictII's maximum cycle ratio together with the
// instruction cells of one critical cycle — the cycle whose
// latency/tokens ratio attains the bound, and therefore the path a
// bottleneck report should name. Node IDs refer to the FIFO-expanded graph
// (the graph the simulators actually run). The cycle is nil for acyclic
// constraint graphs.
func Critical(g *graph.Graph) (Result, []graph.NodeID, error) {
	g = g.ExpandFIFOs()
	edges := TimingEdges(g)
	r, err := MaxRatio(g.NumNodes(), edges)
	if err != nil || !r.HasCycle {
		return r, nil, err
	}
	cyc := CriticalNodes(g.NumNodes(), edges, r)
	ids := make([]graph.NodeID, len(cyc))
	for i, v := range cyc {
		ids[i] = graph.NodeID(v)
	}
	return r, ids, nil
}

// CriticalNodes returns the nodes of one cycle achieving the maximum ratio
// r previously computed by MaxRatio over the same constraint graph, in
// traversal order. It returns nil if r reports no cycle.
//
// With weights w = Den·latency − Num·tokens no positive cycle exists and a
// critical cycle has total weight exactly zero. Longest-path potentials
// from a virtual source make every edge of such a cycle tight
// (dist[from] + w = dist[to]): around a cycle the potential differences sum
// to zero and each slack is nonnegative, so all slacks vanish. Conversely
// any cycle inside the tight subgraph telescopes to total weight zero, i.e.
// is critical — so one DFS over tight edges finds the answer.
func CriticalNodes(n int, edges []Edge, r Result) []int {
	if !r.HasCycle {
		return nil
	}
	w := make([]int64, len(edges))
	for i, e := range edges {
		w[i] = r.Den*e.Latency - r.Num*e.Tokens
	}
	// Longest-path potentials: no positive cycle exists, so simple paths
	// attain the optimum and n rounds of relaxation converge.
	dist := make([]int64, n)
	for iter := 0; iter <= n; iter++ {
		changed := false
		for i, e := range edges {
			if nd := dist[e.From] + w[i]; nd > dist[e.To] {
				dist[e.To] = nd
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	adj := make([][]int, n) // tight-edge adjacency: node -> successor nodes
	for i, e := range edges {
		if dist[e.From]+w[i] == dist[e.To] {
			adj[e.From] = append(adj[e.From], e.To)
		}
	}
	// Iterative DFS for a cycle in the tight subgraph; the gray stack is
	// the current path, so hitting a gray node yields the cycle directly.
	color := make([]uint8, n)
	type frame struct{ node, next int }
	for s := 0; s < n; s++ {
		if color[s] != 0 {
			continue
		}
		stack := []frame{{s, 0}}
		color[s] = 1
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(adj[f.node]) {
				to := adj[f.node][f.next]
				f.next++
				switch color[to] {
				case 0:
					color[to] = 1
					stack = append(stack, frame{to, 0})
				case 1:
					var cyc []int
					for i := range stack {
						if stack[i].node == to {
							for _, fr := range stack[i:] {
								cyc = append(cyc, fr.node)
							}
							return cyc
						}
					}
				}
			} else {
				color[f.node] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}
