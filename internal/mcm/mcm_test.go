package mcm

import (
	"math/rand"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

func ring(lat []int64, tok []int64) (int, []Edge) {
	n := len(lat)
	edges := make([]Edge, n)
	for i := range lat {
		edges[i] = Edge{From: i, To: (i + 1) % n, Latency: lat[i], Tokens: tok[i]}
	}
	return n, edges
}

func TestAcyclic(t *testing.T) {
	edges := []Edge{{0, 1, 1, 0}, {1, 2, 1, 0}, {0, 2, 5, 1}}
	r, err := MaxRatio(3, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasCycle {
		t.Error("acyclic graph reported a cycle")
	}
	if r.Float() != 0 {
		t.Error("acyclic ratio should be 0")
	}
	if r.String() != "acyclic (no rate bound)" {
		t.Errorf("String = %q", r.String())
	}
}

func TestProducerConsumerPair(t *testing.T) {
	// forward arc (0 tokens) + ack arc (1 token): II = 2/1.
	n, edges := ring([]int64{1, 1}, []int64{0, 1})
	r, err := MaxRatio(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCycle || r.Num != 2 || r.Den != 1 {
		t.Errorf("got %v, want 2/1", r)
	}
}

func TestToddLoopRatio(t *testing.T) {
	// The paper's Fig 7 analysis: 3 cells, one circulating value -> 1/3 rate.
	n, edges := ring([]int64{1, 1, 1}, []int64{1, 0, 0})
	r, err := MaxRatio(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 3 || r.Den != 1 {
		t.Errorf("Todd loop II = %v, want 3", r)
	}
}

func TestCompanionLoopRatio(t *testing.T) {
	// Fig 8: 4 cells, two circulating values -> maximum rate 1/2.
	n, edges := ring([]int64{1, 1, 1, 1}, []int64{1, 0, 1, 0})
	r, err := MaxRatio(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 2 || r.Den != 1 {
		t.Errorf("companion loop II = %v, want 2", r)
	}
}

func TestFractionalRatio(t *testing.T) {
	n, edges := ring([]int64{2, 1, 2}, []int64{1, 1, 0})
	// single cycle: latency 5, tokens 2 -> 5/2.
	r, err := MaxRatio(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 5 || r.Den != 2 {
		t.Errorf("got %v, want 5/2", r)
	}
	if r.Float() != 2.5 {
		t.Errorf("Float = %v", r.Float())
	}
}

func TestTwoCyclesMaxWins(t *testing.T) {
	// cycle A: 0->1->0 latency 4, 1 token (ratio 4); cycle B: 2->3->2
	// latency 2, 1 token (ratio 2).
	edges := []Edge{
		{0, 1, 2, 1}, {1, 0, 2, 0},
		{2, 3, 1, 1}, {3, 2, 1, 0},
	}
	r, err := MaxRatio(4, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 4 || r.Den != 1 {
		t.Errorf("got %v, want 4/1", r)
	}
}

func TestDeadlock(t *testing.T) {
	n, edges := ring([]int64{1, 1}, []int64{0, 0})
	_, err := MaxRatio(n, edges)
	if err != ErrDeadlock {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestSelfLoop(t *testing.T) {
	edges := []Edge{{0, 0, 3, 1}}
	r, err := MaxRatio(1, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 3 || r.Den != 1 {
		t.Errorf("got %v, want 3/1", r)
	}
}

func TestBadInputs(t *testing.T) {
	if _, err := MaxRatio(1, []Edge{{0, 5, 1, 1}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := MaxRatio(2, []Edge{{0, 1, 1, -1}}); err == nil {
		t.Error("negative tokens accepted")
	}
}

// TestPredictIIMatchesSimulation cross-validates the analytical bound
// against the exec simulator on rings of varying length and token count —
// the central quantitative claims of §3 and §7.
func TestPredictIIMatchesSimulation(t *testing.T) {
	cases := []struct {
		ringLen int
		tokens  int
		wantII  float64
	}{
		{3, 1, 3}, // Todd's scheme
		{4, 1, 4},
		{4, 2, 2}, // companion scheme
		{5, 1, 5},
		{6, 2, 3},
		{6, 3, 2},
	}
	for _, c := range cases {
		g := graph.New()
		n := 60
		gate := g.Add(graph.OpTGate, "gate")
		suffix := make([]bool, c.tokens)
		ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: n, Suffix: suffix})
		g.Connect(ctl, gate, 0)
		prev := gate
		var ringArcs []*graph.Arc
		for i := 0; i < c.ringLen-1; i++ {
			id := g.Add(graph.OpID, "")
			ringArcs = append(ringArcs, g.Connect(prev, id, 0))
			prev = id
		}
		ringArcs = append(ringArcs, g.Connect(prev, gate, 1))
		// Spread the initial tokens as evenly as possible.
		for i := 0; i < c.tokens; i++ {
			g.SetInit(ringArcs[(i*c.ringLen)/c.tokens], value.R(float64(i)))
		}
		sink := g.AddSink("out")
		g.Connect(gate, sink, 0)

		pred, err := PredictII(g)
		if err != nil {
			t.Fatalf("ring %d/%d: PredictII: %v", c.ringLen, c.tokens, err)
		}
		if pred.Float() != c.wantII {
			t.Errorf("ring %d/%d: predicted II = %v, want %v", c.ringLen, c.tokens, pred.Float(), c.wantII)
		}
		res, err := exec.Run(g, exec.Options{})
		if err != nil {
			t.Fatalf("ring %d/%d: exec: %v", c.ringLen, c.tokens, err)
		}
		if got := res.II("out"); got != c.wantII {
			t.Errorf("ring %d/%d: simulated II = %v, want %v", c.ringLen, c.tokens, got, c.wantII)
		}
	}
}

func TestPredictIIChain(t *testing.T) {
	g := graph.New()
	src := g.AddSource("in", value.Reals([]float64{1, 2, 3}))
	id := g.Add(graph.OpID, "")
	sink := g.AddSink("out")
	g.Connect(src, id, 0)
	g.Connect(id, sink, 0)
	r, err := PredictII(g)
	if err != nil {
		t.Fatal(err)
	}
	// every arc pair forms a 2-cycle with one token: II = 2, the maximum
	// rate of the machine.
	if r.Num != 2 || r.Den != 1 {
		t.Errorf("chain II = %v, want 2", r)
	}
}

// Property test: for random rings the ratio equals total latency over total
// tokens (a ring has exactly one cycle).
func TestQuickRandomRings(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		lat := make([]int64, n)
		tok := make([]int64, n)
		var sumL, sumT int64
		anyTok := false
		for i := range lat {
			lat[i] = 1 + int64(rng.Intn(4))
			tok[i] = int64(rng.Intn(2))
			sumL += lat[i]
			sumT += tok[i]
			anyTok = anyTok || tok[i] > 0
		}
		if !anyTok {
			tok[0] = 1
			sumT = 1
		}
		nn, edges := ring(lat, tok)
		r, err := MaxRatio(nn, edges)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := gcd(sumL, sumT)
		if r.Num != sumL/g || r.Den != sumT/g {
			t.Errorf("trial %d: got %d/%d, want %d/%d", trial, r.Num, r.Den, sumL/g, sumT/g)
		}
	}
}

func TestCriticalNodesRing(t *testing.T) {
	// A 3-cycle with one token and unit latencies: ratio 3/1, and the
	// critical cycle is the whole ring.
	n, edges := ring([]int64{1, 1, 1}, []int64{0, 0, 1})
	r, err := MaxRatio(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 3 || r.Den != 1 {
		t.Fatalf("ratio = %d/%d, want 3/1", r.Num, r.Den)
	}
	nodes := CriticalNodes(n, edges, r)
	if len(nodes) != 3 {
		t.Fatalf("critical cycle = %v, want all 3 ring nodes", nodes)
	}
	seen := map[int]bool{}
	for _, v := range nodes {
		seen[v] = true
	}
	for v := 0; v < 3; v++ {
		if !seen[v] {
			t.Fatalf("critical cycle %v misses node %d", nodes, v)
		}
	}
}

func TestCriticalNodesPicksDominantCycle(t *testing.T) {
	// Two disjoint rings: nodes 0–2 with ratio 3, nodes 3–4 with ratio 2.
	// Only the slow ring is critical.
	edges := []Edge{
		{From: 0, To: 1, Latency: 1}, {From: 1, To: 2, Latency: 1},
		{From: 2, To: 0, Latency: 1, Tokens: 1},
		{From: 3, To: 4, Latency: 1}, {From: 4, To: 3, Latency: 1, Tokens: 1},
	}
	r, err := MaxRatio(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	if r.Num != 3 || r.Den != 1 {
		t.Fatalf("ratio = %d/%d, want 3/1", r.Num, r.Den)
	}
	nodes := CriticalNodes(5, edges, r)
	if len(nodes) == 0 {
		t.Fatal("no critical cycle found")
	}
	for _, v := range nodes {
		if v > 2 {
			t.Fatalf("critical cycle %v includes node %d from the faster ring", nodes, v)
		}
	}
}
