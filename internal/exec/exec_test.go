package exec

import (
	"math"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// fig2 builds the paper's Figure 2 pipeline over n input pairs:
// let y = a*b in (y+2.)*(y-3.)
func fig2(n int) (*graph.Graph, []float64) {
	g := graph.New()
	as := make([]float64, n)
	bs := make([]float64, n)
	want := make([]float64, n)
	for i := range as {
		as[i] = float64(i) + 0.5
		bs[i] = float64(2*i) - 3.25
		y := as[i] * bs[i]
		want[i] = (y + 2) * (y - 3)
	}
	a := g.AddSource("a", value.Reals(as))
	b := g.AddSource("b", value.Reals(bs))
	mul := g.Add(graph.OpMul, "cell1")
	add := g.Add(graph.OpAdd, "cell2")
	sub := g.Add(graph.OpSub, "cell3")
	mul2 := g.Add(graph.OpMul, "cell4")
	sink := g.AddSink("out")
	g.Connect(a, mul, 0)
	g.Connect(b, mul, 1)
	g.Connect(mul, add, 0)
	g.SetLiteral(add, 1, value.R(2))
	g.Connect(mul, sub, 0)
	g.SetLiteral(sub, 1, value.R(3))
	g.Connect(add, mul2, 0)
	g.Connect(sub, mul2, 1)
	g.Connect(mul2, sink, 0)
	return g, want
}

func TestFig2Pipeline(t *testing.T) {
	g, want := fig2(64)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AsReal() != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !res.Clean {
		t.Errorf("pipeline did not drain: %v", res.Stalled)
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2 (fully pipelined)", ii)
	}
	if !res.FullyPipelined("out") {
		t.Error("FullyPipelined = false")
	}
}

// TestMaximumRateIsTwoCycles verifies the paper's §3 claim directly: the
// repetition rate of any cell is one firing per two instruction times, so a
// simple chain sustains II=2 regardless of length.
func TestMaximumRateIsTwoCycles(t *testing.T) {
	for _, stages := range []int{1, 2, 3, 8, 64} {
		g := graph.New()
		src := g.AddSource("in", value.Reals(ramp(100)))
		prev := src
		for i := 0; i < stages; i++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		sink := g.AddSink("out")
		g.Connect(prev, sink, 0)
		res, err := Run(g, Options{})
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if ii := res.II("out"); ii != 2 {
			t.Errorf("stages=%d: II = %v, want 2", stages, ii)
		}
		// latency grows with stages but rate does not (paper §3: "the
		// computation rate of a pipeline is not dependent on the number of
		// stages").
		first := res.Arrivals["out"][0].Cycle
		if first < stages {
			t.Errorf("stages=%d: first arrival at %d, expected ≥ stage count", stages, first)
		}
	}
}

func ramp(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
	}
	return xs
}

// TestUnbalancedDiamondThrottles shows why balancing matters: reconvergent
// paths of lengths 1 and 2 force II=3; inserting a one-stage buffer on the
// short path restores II=2.
func TestUnbalancedDiamondThrottles(t *testing.T) {
	build := func(buffer bool) *graph.Graph {
		g := graph.New()
		src := g.AddSource("in", value.Reals(ramp(64)))
		id := g.Add(graph.OpID, "long")
		add := g.Add(graph.OpAdd, "join")
		sink := g.AddSink("out")
		g.Connect(src, id, 0)
		g.Connect(id, add, 0)
		short := g.Connect(src, add, 1)
		g.Connect(add, sink, 0)
		if buffer {
			g.InsertFIFO(short, 1)
		}
		return g
	}
	unbal, err := Run(build(false), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ii := unbal.II("out"); ii != 3 {
		t.Errorf("unbalanced II = %v, want 3", ii)
	}
	bal, err := Run(build(true), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ii := bal.II("out"); ii != 2 {
		t.Errorf("balanced II = %v, want 2", ii)
	}
	// Same results either way.
	for i := range unbal.Output("out") {
		if !value.Equal(unbal.Output("out")[i], bal.Output("out")[i]) {
			t.Fatalf("output %d differs between balanced and unbalanced runs", i)
		}
	}
}

// TestRingRate verifies the cycle theorem: a loop of L cells carrying one
// token produces one output every L cycles — the mechanism behind the
// paper's 1/3 rate for Todd's for-iter scheme.
func TestRingRate(t *testing.T) {
	for _, ringLen := range []int{3, 4, 5} {
		n := 30
		g := graph.New()
		// gate closes the ring: while control is true it forwards both to
		// the ring and to the sink; the final false discards the token.
		gate := g.Add(graph.OpTGate, "gate")
		ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: n, Suffix: []bool{false}})
		g.Connect(ctl, gate, 0)
		prev := gate
		for i := 0; i < ringLen-1; i++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		back := g.Connect(prev, gate, 1)
		g.SetInit(back, value.R(7))
		sink := g.AddSink("out")
		g.Connect(gate, sink, 0)

		res, err := Run(g, Options{})
		if err != nil {
			t.Fatalf("ring %d: %v", ringLen, err)
		}
		if got := len(res.Output("out")); got != n {
			t.Fatalf("ring %d: %d outputs, want %d", ringLen, got, n)
		}
		wantII := float64(ringLen)
		if ringLen < 3 {
			wantII = 2 // a cell cannot beat one firing per two cycles
		}
		if ii := res.II("out"); ii != wantII {
			t.Errorf("ring %d: II = %v, want %v", ringLen, ii, wantII)
		}
	}
}

// TestRingTwoTokens verifies that two circulating tokens double a 4-cell
// ring's rate to the maximum — the companion-pipeline effect of Fig 8.
func TestRingTwoTokens(t *testing.T) {
	n := 40
	g := graph.New()
	gate := g.Add(graph.OpTGate, "gate")
	ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: n, Suffix: []bool{false, false}})
	g.Connect(ctl, gate, 0)
	a := g.Add(graph.OpID, "a")
	b := g.Add(graph.OpID, "b")
	cc := g.Add(graph.OpID, "c")
	g.Connect(gate, a, 0)
	mid := g.Connect(a, b, 0)
	g.Connect(b, cc, 0)
	back := g.Connect(cc, gate, 1)
	g.SetInit(back, value.R(1))
	g.SetInit(mid, value.R(2))
	sink := g.AddSink("out")
	g.Connect(gate, sink, 0)

	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Output("out")); got != n {
		t.Fatalf("%d outputs, want %d", got, n)
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2 (4-cell ring, 2 tokens)", ii)
	}
}

// TestTGateSelection reproduces the selection step of Fig 4: an m+2 element
// stream is filtered to the m interior elements by an <F T^m F> control.
func TestTGateSelection(t *testing.T) {
	m := 10
	vals := ramp(m + 2)
	g := graph.New()
	src := g.AddSource("C", value.Reals(vals))
	ctl := g.AddCtl("sel", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: m, Suffix: []bool{false}})
	gate := g.Add(graph.OpTGate, "select")
	sink := g.AddSink("out")
	g.Connect(ctl, gate, 0)
	g.Connect(src, gate, 1)
	g.Connect(gate, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	if len(got) != m {
		t.Fatalf("selected %d values, want %d", len(got), m)
	}
	for i := 0; i < m; i++ {
		if got[i].AsReal() != vals[i+1] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], vals[i+1])
		}
	}
	if !res.Clean {
		t.Errorf("discards should leave nothing stranded: %v", res.Stalled)
	}
}

func TestFGateSelection(t *testing.T) {
	g := graph.New()
	src := g.AddSource("x", value.Ints([]int64{1, 2, 3, 4}))
	ctl := g.AddCtl("sel", graph.Pattern{Prefix: []bool{true, false, true, false}})
	gate := g.Add(graph.OpFGate, "fsel")
	sink := g.AddSink("out")
	g.Connect(ctl, gate, 0)
	g.Connect(src, gate, 1)
	g.Connect(gate, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	if len(got) != 2 || got[0].AsInt() != 2 || got[1].AsInt() != 4 {
		t.Fatalf("FGate selected %v, want [2 4]", got)
	}
}

// TestMerge verifies the MERGE cell semantics of §5: the control operand
// directs which data operand is forwarded, leaving the other untouched.
func TestMerge(t *testing.T) {
	g := graph.New()
	tvals := g.AddSource("t", value.Ints([]int64{10, 11, 12}))
	fvals := g.AddSource("f", value.Ints([]int64{20, 21}))
	ctl := g.AddCtl("m", graph.Pattern{Prefix: []bool{true, false, true, false, true}})
	merge := g.Add(graph.OpMerge, "merge")
	sink := g.AddSink("out")
	g.Connect(ctl, merge, 0)
	g.Connect(tvals, merge, 1)
	g.Connect(fvals, merge, 2)
	g.Connect(merge, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	want := []int64{10, 20, 11, 21, 12}
	if len(got) != len(want) {
		t.Fatalf("got %d values, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("out[%d] = %v, want %d", i, got[i], want[i])
		}
	}
	if !res.Clean {
		t.Errorf("merge run not clean: %v", res.Stalled)
	}
}

// TestGatedDestination exercises the conditional-destination mechanism used
// by the for-iter feedback of Fig 7: extra control ports gate the merge's
// two destinations independently ("fed back under the output switch control
// values").
func TestGatedDestination(t *testing.T) {
	// Compute the running sum x_i = x_{i-1} + a_i for a = 1..5, x_0 = 0.
	// The MERGE fires 6 times emitting x_0..x_5; x_0 is injected via the
	// false arm (a constant operand) and suppressed at the sink by one
	// gate, while the feedback is suppressed after x_4 by the other.
	g := graph.New()
	a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5}))
	add := g.Add(graph.OpAdd, "acc")
	merge := g.Add(graph.OpMerge, "m")
	mctl := g.AddCtl("mctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5})
	sink := g.AddSink("x")

	g.Connect(mctl, merge, 0)
	g.Connect(add, merge, 1)
	g.SetLiteral(merge, 2, value.I(0)) // initial x_0 as constant operand
	outGate := g.AddGate(merge)
	g.Connect(g.AddCtl("outctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5}), merge, outGate)
	fbGate := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl", graph.Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}}), merge, fbGate)

	g.Connect(a, add, 0)
	g.ConnectGated(merge, fbGate, add, 1)
	g.ConnectGated(merge, outGate, sink, 0)

	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("x")
	want := []int64{1, 3, 6, 10, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("x[%d] = %v, want %d", i, got[i], want[i])
		}
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

func TestInitialToken(t *testing.T) {
	g := graph.New()
	src := g.AddSource("a", value.Ints([]int64{1, 2}))
	add := g.Add(graph.OpAdd, "")
	sink := g.AddSink("out")
	g.Connect(src, add, 0)
	id := g.Add(graph.OpID, "loopback")
	arc := g.Connect(id, add, 1)
	g.SetInit(arc, value.I(100))
	g.Connect(add, id, 0)
	g.Connect(add, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	// x0 = 1+100 = 101, x1 = 2+101 = 103
	if len(got) != 2 || got[0].AsInt() != 101 || got[1].AsInt() != 103 {
		t.Fatalf("got %v, want [101 103]", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	// An ADD whose second operand never arrives: quiesces dirty.
	g := graph.New()
	a := g.AddSource("a", value.Ints([]int64{1, 2, 3}))
	b := g.AddSource("b", value.Ints([]int64{5})) // too short
	add := g.Add(graph.OpAdd, "")
	sink := g.AddSink("out")
	g.Connect(a, add, 0)
	g.Connect(b, add, 1)
	g.Connect(add, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clean {
		t.Fatal("expected a dirty quiescence")
	}
	if len(res.Output("out")) != 1 {
		t.Errorf("got %d outputs, want 1", len(res.Output("out")))
	}
	if len(res.Stalled) == 0 {
		t.Error("expected stall diagnostics")
	}
}

func TestMaxCyclesExceeded(t *testing.T) {
	// A free-running ring never quiesces: the bound must trip.
	g := graph.New()
	a := g.Add(graph.OpID, "a")
	b := g.Add(graph.OpID, "b")
	arc := g.Connect(a, b, 0)
	g.Connect(b, a, 0)
	g.SetInit(arc, value.I(1))
	_, err := Run(g, Options{MaxCycles: 100})
	if err == nil {
		t.Fatal("expected MaxCycles error")
	}
}

func TestValidationFailurePropagates(t *testing.T) {
	g := graph.New()
	g.Add(graph.OpAdd, "unbound")
	if _, err := Run(g, Options{}); err == nil {
		t.Fatal("expected validation error")
	}
}

func TestDuplicateSinkLabel(t *testing.T) {
	g := graph.New()
	a := g.AddSource("a", value.Ints([]int64{1}))
	s1 := g.AddSink("out")
	s2 := g.AddSink("out")
	id := g.Add(graph.OpID, "")
	g.Connect(a, id, 0)
	g.Connect(id, s1, 0)
	g.Connect(id, s2, 0)
	if _, err := Run(g, Options{}); err == nil {
		t.Fatal("expected duplicate-sink error")
	}
}

func TestFIFOExpandedExecution(t *testing.T) {
	// A FIFO(4) behaves as four identity stages: results unchanged, clean
	// drain, II still 2.
	g := graph.New()
	src := g.AddSource("in", value.Reals(ramp(32)))
	f := g.AddFIFO("buf", 4)
	sink := g.AddSink("out")
	g.Connect(src, f, 0)
	g.Connect(f, sink, 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output("out")) != 32 {
		t.Fatalf("got %d outputs", len(res.Output("out")))
	}
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
	if res.Graph.NumNodes() != 6 { // src + 4 IDs + sink
		t.Errorf("expanded nodes = %d, want 6", res.Graph.NumNodes())
	}
}

func TestDeterminism(t *testing.T) {
	g1, _ := fig2(32)
	g2, _ := fig2(32)
	r1, err1 := Run(g1, Options{})
	r2, err2 := Run(g2, Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycle counts differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
	for i := range r1.Firings {
		if r1.Firings[i] != r2.Firings[i] {
			t.Errorf("firing count of node %d differs", i)
		}
	}
}

func TestIIEdgeCases(t *testing.T) {
	r := &Result{Arrivals: map[string][]Arrival{"out": nil}}
	if r.II("out") != 0 {
		t.Error("II of empty stream should be 0")
	}
	if r.FullyPipelined("out") {
		t.Error("empty stream is not fully pipelined")
	}
	r.Arrivals["out"] = []Arrival{{Cycle: 3}, {Cycle: 5}}
	if r.II("out") != 2 {
		t.Errorf("II = %v, want 2", r.II("out"))
	}
}

func TestDescribe(t *testing.T) {
	g, _ := fig2(16)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Describe(res)
	if s == "" {
		t.Error("Describe returned empty string")
	}
}

func TestTrace(t *testing.T) {
	g, _ := fig2(4)
	fired := 0
	_, err := Run(g, Options{Trace: func(cycle int, n *graph.Node, v value.Value) {
		fired++
		if math.IsNaN(v.AsReal()) {
			t.Error("NaN in trace")
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if fired == 0 {
		t.Error("trace never called")
	}
}

func TestWaterfall(t *testing.T) {
	g, _ := fig2(8)
	chart, err := Waterfall(g, Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MULT", "SINK", "#", "cells,"} {
		if !strings.Contains(chart, want) {
			t.Errorf("waterfall missing %q:\n%s", want, chart)
		}
	}
	// The sink row must show arrivals.
	for _, line := range strings.Split(chart, "\n") {
		if strings.HasPrefix(line, "SINK") && !strings.Contains(line, "#") {
			t.Errorf("sink row empty: %s", line)
		}
	}
	// Truncation path.
	g2, _ := fig2(64)
	chart2, err := Waterfall(g2, Options{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(chart2, "showing first 20") {
		t.Error("truncation note missing")
	}
	// Error path.
	bad := graph.New()
	bad.Add(graph.OpAdd, "unbound")
	if _, err := Waterfall(bad, Options{}, 0); err == nil {
		t.Error("invalid graph accepted")
	}
}
