package exec

import (
	"fmt"
	"strings"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// Waterfall simulates the graph and renders a firing chart: one row per
// cell, one column per cycle, '#' where the cell fired. It makes the
// paper's pipelining story visible at a glance — a fully pipelined graph
// shows every row firing on alternate columns, Todd's loop shows the
// 1-in-3 stutter, and an unbalanced graph shows ragged stalls.
//
// The chart is truncated to maxCols columns (0 = 120); rows appear in cell
// order. Use small stream lengths: this is a study tool, not a profiler.
func Waterfall(g *graph.Graph, opt Options, maxCols int) (string, error) {
	if maxCols <= 0 {
		maxCols = 120
	}
	fired := map[graph.NodeID][]int{}
	inner := opt
	prevTrace := opt.Trace
	inner.Trace = func(cycle int, n *graph.Node, v value.Value) {
		fired[n.ID] = append(fired[n.ID], cycle)
		if prevTrace != nil {
			prevTrace(cycle, n, v)
		}
	}
	res, err := Run(g, inner)
	if err != nil {
		return "", err
	}
	// The trace hook reports producing cells; sinks record arrivals.
	for _, n := range res.Graph.Nodes() {
		if n.Op == graph.OpSink {
			for _, a := range res.Arrivals[n.Label] {
				fired[n.ID] = append(fired[n.ID], a.Cycle)
			}
		}
	}

	cols := res.Cycles
	truncated := false
	if cols > maxCols {
		cols = maxCols
		truncated = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cycle     ")
	for c := 0; c < cols; c += 10 {
		fmt.Fprintf(&b, "%-10d", c)
	}
	b.WriteByte('\n')
	for _, n := range res.Graph.Nodes() {
		name := n.Name()
		if len(name) > 24 {
			name = name[:24]
		}
		fmt.Fprintf(&b, "%-24s |", name)
		row := make([]byte, cols)
		for i := range row {
			row[i] = '.'
		}
		for _, c := range fired[n.ID] {
			if c < cols {
				row[c] = '#'
			}
		}
		b.Write(row)
		b.WriteByte('|')
		if truncated {
			b.WriteString(" ...")
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%d cells, %d cycles", res.Graph.NumNodes(), res.Cycles)
	if truncated {
		fmt.Fprintf(&b, " (showing first %d)", cols)
	}
	b.WriteByte('\n')
	return b.String(), nil
}
