package exec

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// cancelChain builds a pipeline long enough (in stream length) that a run
// crosses many CancelCadence windows: n stream values through d identity
// stages quiesce after roughly 2n+d cycles.
func cancelChain(n, d int) *graph.Graph {
	g := graph.New()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	prev := g.AddSource("in", value.Reals(vals))
	for s := 0; s < d; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)
	return g
}

func TestCancelPreFiredContext(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := Run(cancelChain(4*CancelCadence, 8), Options{Ctx: ctx, Workers: workers})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil {
				t.Fatal("expected partial result alongside the error")
			}
			if !res.Canceled {
				t.Fatal("partial result not marked Canceled")
			}
			if res.Clean {
				t.Fatal("canceled run reported Clean")
			}
			if len(res.Stalled) == 0 || !strings.HasPrefix(res.Stalled[0], "canceled:") {
				t.Fatalf("Stalled should lead with the canceled diagnostic, got %v", res.Stalled)
			}
			// A pre-fired context is seen at the very first cadence check.
			if res.Cycles > CancelCadence {
				t.Fatalf("pre-canceled run simulated %d cycles, want <= %d", res.Cycles, CancelCadence)
			}
		})
	}
}

// TestCancelMidRunReturnsPartial cancels while the pipeline is in flight
// and checks the partial result is a prefix of the full run, observed
// within one cancellation cadence of the firing point.
func TestCancelMidRunReturnsPartial(t *testing.T) {
	n := 4 * CancelCadence
	full, err := Run(cancelChain(n, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			fired := 0
			g := cancelChain(n, 8)
			opt := Options{Ctx: ctx, Workers: workers}
			if workers == 0 {
				// The sequential engine supports the per-firing debug hook;
				// use it to cancel deterministically mid-run.
				opt.Trace = func(cycle int, node *graph.Node, out value.Value) {
					fired++
					if fired == n { // roughly the middle of the run
						cancel()
					}
				}
			} else {
				cancel() // sharded path: covered as pre-fired + the exec sweep tests
			}
			res, err := Run(g, opt)
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil || !res.Canceled {
				t.Fatal("expected canceled partial result")
			}
			got := res.Outputs["out"]
			want := full.Outputs["out"]
			if len(got) > len(want) {
				t.Fatalf("partial output longer than full run: %d > %d", len(got), len(want))
			}
			for i := range got {
				if !value.Equal(got[i], want[i]) {
					t.Fatalf("partial output[%d] = %v, full run has %v", i, got[i], want[i])
				}
			}
			if workers == 0 {
				if res.Cycles >= full.Cycles {
					t.Fatalf("mid-run cancel did not stop early: %d >= %d cycles", res.Cycles, full.Cycles)
				}
				// The cancel fires mid-run; the loop must notice within one
				// cadence window.
				if got := len(res.Outputs["out"]); got == 0 {
					t.Fatal("mid-run cancel produced no partial output")
				}
			}
		})
	}
}

// TestCancelMidBatchPartialAllLanes cancels a B>1 run mid-flight (via the
// lane-0 debug hook, which fires deterministically) and checks every lane
// comes back with a deterministic partial Result: Canceled set, the
// canceled diagnostic leading Stalled, outputs a prefix of the full run,
// and all lanes stopped at the same cancellation cycle (lanes advance in
// lockstep within a worker).
func TestCancelMidBatchPartialAllLanes(t *testing.T) {
	n := 4 * CancelCadence
	const b = 4
	full, err := Run(cancelChain(n, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			fired := 0
			opt := Options{Ctx: ctx, Batch: b, Workers: workers}
			opt.Trace = func(cycle int, node *graph.Node, out value.Value) {
				fired++
				if fired == n { // roughly the middle of the run
					cancel()
				}
			}
			res, err := Run(cancelChain(n, 8), opt)
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil || !res.Canceled {
				t.Fatal("expected canceled partial result")
			}
			if len(res.Lanes) != b {
				t.Fatalf("canceled result carries %d lanes, want %d", len(res.Lanes), b)
			}
			if !res.Lanes[0].Canceled {
				t.Fatal("lane 0 (whose debug hook fired the cancel mid-run) not marked Canceled")
			}
			for l := 0; l < b; l++ {
				lr := res.Lanes[l]
				got, want := lr.Outputs["out"], full.Outputs["out"]
				if lr.Canceled {
					// A canceled lane is a deterministic prefix of the full
					// run, cut at the poll cycle that observed the cancel.
					if lr.Clean {
						t.Errorf("lane %d: canceled lane reported Clean", l)
					}
					if len(lr.Stalled) == 0 || !strings.HasPrefix(lr.Stalled[0], "canceled:") {
						t.Errorf("lane %d: Stalled should lead with the canceled diagnostic, got %v", l, lr.Stalled)
					}
					if len(got) >= len(want) {
						t.Errorf("lane %d: canceled lane produced the full %d-value output", l, len(got))
					}
				} else if len(got) != len(want) {
					// A lane whose worker finished before the cancel landed
					// (possible only at Workers>1) must be complete.
					t.Errorf("lane %d: uncanceled lane produced %d of %d values", l, len(got), len(want))
				}
				for i := range got {
					if !value.Equal(got[i], want[i]) {
						t.Fatalf("lane %d: partial output[%d] = %v, full run has %v", l, i, got[i], want[i])
					}
				}
			}
			if workers == 1 {
				// One worker advances all lanes in lockstep, so every lane
				// observes the cancel at the same poll cycle and the partial
				// result is fully deterministic across lanes.
				for l := 1; l < b; l++ {
					if res.Lanes[l].Cycles != res.Lanes[0].Cycles {
						t.Errorf("lane %d stopped at cycle %d, lane 0 at %d",
							l, res.Lanes[l].Cycles, res.Lanes[0].Cycles)
					}
					if len(res.Lanes[l].Outputs["out"]) != len(res.Lanes[0].Outputs["out"]) {
						t.Errorf("lane %d partial output length diverges from lane 0", l)
					}
				}
			}
		})
	}
}

// TestCancelPreFiredBatch: a pre-fired context at B>1 is seen at the first
// cadence poll on every worker; all lanes report canceled at cycle 0.
func TestCancelPreFiredBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(cancelChain(4*CancelCadence, 8), Options{Ctx: ctx, Batch: 4, Workers: 2})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if res == nil || !res.Canceled {
		t.Fatal("expected canceled partial result")
	}
	for l, lr := range res.Lanes {
		if !lr.Canceled {
			t.Errorf("lane %d not marked Canceled", l)
		}
		if lr.Cycles > CancelCadence {
			t.Errorf("lane %d simulated %d cycles pre-canceled, want <= %d", l, lr.Cycles, CancelCadence)
		}
	}
}

// TestNilContextUnperturbed pins the zero-perturbation guarantee: attaching
// no context leaves the run byte-identical to one with a never-firing one.
func TestNilContextUnperturbed(t *testing.T) {
	base, err := Run(cancelChain(2048, 4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Run(cancelChain(2048, 4), Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != withCtx.Cycles {
		t.Fatalf("cycle count perturbed by un-fired context: %d vs %d", base.Cycles, withCtx.Cycles)
	}
	if !value.CloseSlices(base.Outputs["out"], withCtx.Outputs["out"], 0) {
		t.Fatal("outputs perturbed by un-fired context")
	}
}
