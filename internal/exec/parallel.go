// Sharded parallel engine for the firing-rule simulator.
//
// The graph is partitioned into P load-balanced shards (internal/
// partition); one goroutine owns each shard's cells — their candidate
// bitset and firing-plan arena — while token state (arcHas/arcVal),
// stream positions, and firing counters stay in the shared flat slices,
// written at disjoint indices only. Each simulated instruction time runs
// in three phases:
//
//	A  every worker plans its own candidate cells against the frozen
//	   start-of-cycle token state and publishes its plan count;
//	   — barrier —
//	B  every worker applies its own plans: clears consumed arcs, fills
//	   produced arcs, appends sink arrivals. Enabledness wake-ups for
//	   cells in other shards are pushed onto bounded SPSC rings;
//	   — barrier —
//	C  every worker drains its inbound rings into its next candidate
//	   set. No barrier is needed before the next phase A: C touches only
//	   worker-local state and rings already quiesced by the B barrier.
//
// Determinism rests on a property of the firing discipline: an arc
// carrying a token at the start of a cycle can only be cleared this cycle
// (its producer is ack-blocked), and an empty arc can only be filled (its
// consumer lacks the operand) — so each arc slot is written by at most
// one worker per cycle, and the cycle's outcome is a pure function of the
// start-of-cycle state regardless of worker interleaving. Outputs,
// arrivals, firings, and stall diagnostics are byte-identical to the
// sequential engine for any P; when tracing is attached, worker 0 replays
// the cycle's events between phases A and B in exactly the sequential
// emission order.
package exec

import (
	"fmt"
	"math/bits"
	"sync"
	"time"

	"staticpipe/internal/graph"
	"staticpipe/internal/partition"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// padCount is a per-shard counter padded to a cache line so the workers'
// once-per-cycle plan-count stores do not false-share.
type padCount struct {
	v int64
	_ [56]byte
}

// shardSim is the state shared by all workers of one sharded run.
type shardSim struct {
	g         *graph.Graph
	opt       Options
	maxCycles int
	asn       *partition.Assignment
	workers   []*shardWorker
	barrier   *partition.Barrier
	planCount []padCount

	// Shared machine state; see the determinism notes above for why the
	// concurrent disjoint-index writes are safe.
	arcHas  []bool
	arcVal  []value.Value
	srcPos  []int
	firings []int
	outCap  int
	// Sink streams are collected per cell ID (each sink cell is owned by
	// exactly one worker) and keyed by label only after the join — two
	// workers must never append into one map.
	sinkVals [][]value.Value
	sinkArrs [][]Arrival

	// Trace-mode replay state: each entry is written only by the cell's
	// owner in phase A and read by worker 0 between the A and B barriers.
	traced      bool
	planned     []int32 // cell ID -> plan index in its owner's arena, -1 when stalled
	stallReason []trace.Reason

	// Filled in by worker 0 at exit; all workers leave at the same cycle.
	endCycle int
	quiesced bool

	// Cancellation: worker 0 polls opt.Ctx at the CancelCadence and sets
	// cancelReq before the phase-A barrier; every worker reads it after
	// that barrier (the barrier provides the happens-before edge), so all
	// workers leave together at the same cycle.
	done      <-chan struct{}
	cancelReq bool
	canceled  bool
}

// shardWorker is one goroutine's view of the run.
type shardWorker struct {
	id       int
	ps       *shardSim
	sm       *sim // aliases the shared slices; owns cand/nextCand and the plan arena
	nodes    []graph.NodeID
	outRings []*partition.Ring // by destination shard; nil when no arc crosses
	inRings  []*partition.Ring // by source shard
	stat     partition.ShardStat
	live     *trace.ShardCounters
}

// runSharded mirrors the sequential Run loop across asn.P workers. The
// graph is already FIFO-expanded and validated; streams is the per-node
// resolved source binding (see resolveStreams), shared read-only by every
// worker.
func runSharded(g *graph.Graph, opt Options, streams [][]value.Value, maxCycles, nw int) (*Result, error) {
	asn := partition.Partition(g, nw)
	nw = asn.P
	ps := &shardSim{
		g:         g,
		opt:       opt,
		maxCycles: maxCycles,
		asn:       asn,
		barrier:   partition.NewBarrier(nw),
		planCount: make([]padCount, nw),
		arcHas:    make([]bool, g.NumArcs()),
		arcVal:    make([]value.Value, g.NumArcs()),
		srcPos:    make([]int, g.NumNodes()),
		firings:   make([]int, g.NumNodes()),
		sinkVals:  make([][]value.Value, g.NumNodes()),
		sinkArrs:  make([][]Arrival, g.NumNodes()),
		traced:    opt.Tracer != nil || opt.Trace != nil,
	}
	if opt.Ctx != nil {
		ps.done = opt.Ctx.Done()
	}
	if opt.Tracer != nil {
		names := make([]string, g.NumNodes())
		for _, n := range g.Nodes() {
			names[n.ID] = n.Name()
		}
		opt.Tracer.Start(trace.Meta{Cells: names})
	}
	for _, a := range g.Arcs() {
		if a.Init != nil {
			ps.arcHas[a.ID] = true
			ps.arcVal[a.ID] = *a.Init
		}
	}
	sinkSeen := map[string]bool{}
	for _, n := range g.Nodes() {
		switch n.Op {
		case graph.OpSink:
			if sinkSeen[n.Label] {
				return nil, fmt.Errorf("exec: duplicate sink label %q", n.Label)
			}
			sinkSeen[n.Label] = true
		case graph.OpSource:
			if len(streams[n.ID]) > ps.outCap {
				ps.outCap = len(streams[n.ID])
			}
		}
	}
	if ps.traced {
		ps.planned = make([]int32, g.NumNodes())
		ps.stallReason = make([]trace.Reason, g.NumNodes())
	}

	// Ring capacity for the (src, dst) pair is the number of arcs joining
	// the two shards in either direction: a cross arc contributes at most
	// one notification per cycle (a fill wake-up to the consumer's shard
	// XOR a drain wake-up to the producer's), and the consumer drains its
	// rings every cycle, so a ring sized this way can never fill.
	pairArcs := make([][]int, nw)
	for i := range pairArcs {
		pairArcs[i] = make([]int, nw)
	}
	for _, a := range g.Arcs() {
		sf, st := asn.Shard[a.From], asn.Shard[a.To]
		if sf != st {
			pairArcs[sf][st]++
			pairArcs[st][sf]++
		}
	}

	var shardCounters []*trace.ShardCounters
	if opt.Progress != nil {
		shardCounters = opt.Progress.InitShards(nw)
	}
	ps.workers = make([]*shardWorker, nw)
	for i := 0; i < nw; i++ {
		w := &shardWorker{
			id: i,
			ps: ps,
			sm: &sim{
				g:        g,
				streams:  streams,
				arcHas:   ps.arcHas,
				arcVal:   ps.arcVal,
				srcPos:   ps.srcPos,
				firings:  ps.firings,
				cand:     newBitset(g.NumNodes()),
				nextCand: newBitset(g.NumNodes()),
			},
			inRings:  make([]*partition.Ring, nw),
			outRings: make([]*partition.Ring, nw),
		}
		if shardCounters != nil {
			w.live = shardCounters[i]
		}
		ps.workers[i] = w
	}
	for _, n := range g.Nodes() {
		w := ps.workers[asn.Shard[n.ID]]
		w.nodes = append(w.nodes, n.ID)
		w.sm.cand.set(int(n.ID))
	}
	for src := 0; src < nw; src++ {
		for dst := 0; dst < nw; dst++ {
			if src == dst || pairArcs[src][dst] == 0 {
				continue
			}
			r := partition.NewRing(pairArcs[src][dst])
			ps.workers[src].outRings[dst] = r
			ps.workers[dst].inRings[src] = r
		}
	}
	for _, w := range ps.workers {
		w.stat.Cells = len(w.nodes)
	}

	var wg sync.WaitGroup
	for _, w := range ps.workers {
		wg.Add(1)
		go func(w *shardWorker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()

	res := &Result{
		Cycles:   ps.endCycle,
		Firings:  ps.firings,
		Outputs:  map[string][]value.Value{},
		Arrivals: map[string][]Arrival{},
		Graph:    g,
		Shards:   make([]partition.ShardStat, nw),
	}
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSink {
			res.Outputs[n.Label] = ps.sinkVals[n.ID]
			res.Arrivals[n.Label] = ps.sinkArrs[n.ID]
		}
	}
	for i, w := range ps.workers {
		res.Shards[i] = w.stat
	}
	drain := &sim{g: g, streams: streams, arcHas: ps.arcHas, arcVal: ps.arcVal, srcPos: ps.srcPos}
	res.Clean, res.Stalled = drain.drainState()
	if ps.canceled {
		return markCanceled(res, ps.endCycle, opt.Ctx)
	}
	if !ps.quiesced {
		res.ShardDiag = ps.diagnose()
		return res, fmt.Errorf("exec: no quiescence after %d cycles (livelock or MaxCycles too small)", maxCycles)
	}
	return res, nil
}

// run is one worker's cycle loop. All workers observe the same plan-count
// total each cycle, so they exit together at the same cycle number.
func (w *shardWorker) run() {
	ps := w.ps
	wallStart := time.Now()
	defer func() { w.stat.WallNs = time.Since(wallStart).Nanoseconds() }()
	for cycle := 0; ; cycle++ {
		if cycle >= ps.maxCycles {
			if w.id == 0 {
				ps.endCycle = cycle
			}
			return
		}
		if w.id == 0 {
			if ps.opt.Progress != nil {
				ps.opt.Progress.Cycle.Store(int64(cycle))
			}
			if ps.done != nil && cycle&(CancelCadence-1) == 0 {
				select {
				case <-ps.done:
					ps.cancelReq = true
				default:
				}
			}
		}
		// Phase A: plan against the frozen start-of-cycle state.
		w.sm.collect()
		if ps.traced {
			w.classify()
		}
		ps.planCount[w.id].v = int64(len(w.sm.plans))
		w.wait()
		if ps.cancelReq {
			if w.id == 0 {
				ps.endCycle = cycle
				ps.canceled = true
			}
			return
		}
		total := int64(0)
		for i := range ps.planCount {
			total += ps.planCount[i].v
		}
		if total == 0 {
			if w.id == 0 {
				ps.endCycle = cycle
				ps.quiesced = true
			}
			return
		}
		if ps.traced {
			if w.id == 0 {
				ps.emitCycle(cycle)
			}
			w.wait()
		}
		// Phase B: apply own plans.
		w.apply(cycle)
		w.wait()
		// Phase C: collect cross-shard wake-ups.
		w.drainRings()
		w.sm.cand, w.sm.nextCand = w.sm.nextCand, w.sm.cand
		if w.live != nil {
			w.live.Cycles.Add(1)
			w.live.Firings.Store(w.stat.Firings)
			w.live.RingMsgs.Store(w.stat.RingSends)
			w.live.RingPeak.Store(w.stat.RingPeak)
		}
	}
}

func (w *shardWorker) wait() {
	ns := w.ps.barrier.Wait()
	w.stat.BarrierWait.Observe(ns)
	if w.live != nil && ns > 0 {
		w.live.BarrierWaitNs.Add(ns)
	}
}

// classify records, for every owned cell, either its plan index or its
// stall reason — the inputs worker 0 needs to replay the cycle's trace
// events in sequential order.
func (w *shardWorker) classify() {
	ps := w.ps
	for _, id := range w.nodes {
		ps.planned[id] = -1
	}
	for i := range w.sm.plans {
		ps.planned[w.sm.plans[i].node.ID] = int32(i)
	}
	for _, id := range w.nodes {
		if ps.planned[id] >= 0 {
			continue
		}
		// Like the sequential emitStalls this replans the cell; the extra
		// arena entries are discarded with the cycle.
		_, why := w.sm.plan(ps.g.Node(id))
		ps.stallReason[id] = why
	}
}

// emitCycle replays the cycle's trace events in the exact order the
// sequential engine emits them: stalls in cell-ID order, then per firing
// (ascending cell ID) the firing event, its acknowledge events, and the
// debug callback, then all token arrivals in the same plan order.
func (ps *shardSim) emitCycle(cycle int) {
	tr := ps.opt.Tracer
	arcs := ps.g.Arcs()
	if tr != nil {
		for _, n := range ps.g.Nodes() {
			if ps.planned[n.ID] >= 0 {
				continue
			}
			if why := ps.stallReason[n.ID]; why == trace.ReasonOperandWait || why == trace.ReasonAckWait {
				tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindStall,
					Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1, Reason: why,
				})
			}
		}
	}
	for _, n := range ps.g.Nodes() {
		pi := ps.planned[n.ID]
		if pi < 0 {
			continue
		}
		sm := ps.workers[ps.asn.Shard[n.ID]].sm
		f := &sm.plans[pi]
		if tr != nil {
			tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindFiring,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1,
			})
			for _, aid := range sm.arcIDs[f.c0:f.c1] {
				tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindAck,
					Cell: int32(arcs[aid].From), Port: -1, Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
		if ps.opt.Trace != nil && f.produced {
			ps.opt.Trace(cycle, n, f.out)
		}
	}
	if tr != nil {
		for _, n := range ps.g.Nodes() {
			pi := ps.planned[n.ID]
			if pi < 0 {
				continue
			}
			sm := ps.workers[ps.asn.Shard[n.ID]].sm
			f := &sm.plans[pi]
			for _, aid := range sm.arcIDs[f.p0:f.p1] {
				a := arcs[aid]
				tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindToken,
					Cell: int32(a.To), Port: int32(a.ToPort), Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
	}
}

// apply commits this worker's plans — the parallel half of the sequential
// apply, with wake-ups for foreign cells routed through the rings.
func (w *shardWorker) apply(cycle int) {
	ps := w.ps
	sm := w.sm
	sm.nextCand.reset()
	arcs := ps.g.Arcs()
	shard := ps.asn.Shard
	for i := range sm.plans {
		f := &sm.plans[i]
		n := f.node
		sm.firings[n.ID]++
		w.stat.Firings++
		sm.nextCand.set(int(n.ID))
		for _, aid := range sm.arcIDs[f.c0:f.c1] {
			sm.arcHas[aid] = false
			w.wake(int(arcs[aid].From), shard)
		}
		if f.advance {
			sm.srcPos[n.ID]++
		}
		if f.sink {
			ps.sinkVals[n.ID] = appendPrealloc(ps.sinkVals[n.ID], f.out, ps.outCap)
			ps.sinkArrs[n.ID] = appendArrPrealloc(ps.sinkArrs[n.ID], Arrival{Cycle: cycle, Val: f.out}, ps.outCap)
			if ps.opt.Progress != nil {
				ps.opt.Progress.Arrivals.Add(1)
			}
		}
		for _, aid := range sm.arcIDs[f.p0:f.p1] {
			sm.arcHas[aid] = true
			sm.arcVal[aid] = f.out
			w.wake(int(arcs[aid].To), shard)
		}
	}
}

// wake marks a cell as a next-cycle candidate: directly when this worker
// owns it, via the SPSC ring to its owner otherwise.
func (w *shardWorker) wake(node int, shard []int) {
	t := shard[node]
	if t == w.id {
		w.sm.nextCand.set(node)
		return
	}
	if !w.outRings[t].Push(int32(node)) {
		// Sized to the cross-arc count this cannot happen; fail loudly
		// naming the ring rather than drop a wake-up and livelock.
		panic(fmt.Sprintf("exec: notification ring shard %d -> %d overflowed (cap %d)",
			w.id, t, w.outRings[t].Cap()))
	}
	w.stat.RingSends++
}

// drainRings moves inbound wake-ups into the next candidate set.
func (w *shardWorker) drainRings() {
	for _, r := range w.inRings {
		if r == nil {
			continue
		}
		if occ := int64(r.Len()); occ > w.stat.RingPeak {
			w.stat.RingPeak = occ
		}
		for {
			v, ok := r.Pop()
			if !ok {
				break
			}
			w.sm.nextCand.set(int(v))
			w.stat.RingRecvs++
		}
	}
}

// diagnose names, per shard and per ring, where work was still pending
// when a sharded run exhausted MaxCycles — the parallel counterpart of
// the Stalled cell diagnostics, which stay engine-independent.
func (ps *shardSim) diagnose() []string {
	var d []string
	for _, w := range ps.workers {
		d = append(d, fmt.Sprintf(
			"shard %d: %d cells, %d candidate cells pending at halt, %d firings, %d cross-shard notifications sent, inbound ring peak %d",
			w.id, len(w.nodes), w.sm.cand.count(), w.stat.Firings, w.stat.RingSends, w.stat.RingPeak))
	}
	for _, w := range ps.workers {
		for src, r := range w.inRings {
			if r != nil && r.Len() > 0 {
				d = append(d, fmt.Sprintf("ring shard %d -> %d: %d undrained notifications at halt",
					src, w.id, r.Len()))
			}
		}
	}
	return d
}

// count returns the number of set bits (used by halt diagnostics only).
func (b bitset) count() int {
	n := 0
	for _, word := range b {
		n += bits.OnesCount64(word)
	}
	return n
}
