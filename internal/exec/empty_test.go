package exec

import (
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// TestEmptyInputStream checks the degenerate zero-length run: a pipeline
// fed an empty stream must terminate cleanly with empty outputs, not stall
// or error.
func TestEmptyInputStream(t *testing.T) {
	g := graph.New()
	src := g.AddSource("A", []value.Value{})
	add := g.Add(graph.OpAdd, "add")
	g.Connect(src, add, 0)
	g.SetLiteral(add, 1, value.R(1))
	g.Connect(add, g.AddSink("out"), 0)
	res, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Error("empty-stream run did not drain cleanly")
	}
	if out := res.Output("out"); len(out) != 0 {
		t.Errorf("empty input produced %d outputs: %v", len(out), out)
	}
}

// TestEmptyGraph checks that the simulator accepts a graph with no cells.
func TestEmptyGraph(t *testing.T) {
	res, err := Run(graph.New(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || res.Cycles != 0 {
		t.Errorf("empty graph: clean=%v cycles=%d", res.Clean, res.Cycles)
	}
}
