package exec

import (
	"fmt"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// wideBenchGraph builds w independent 16-stage identity pipelines fed by
// n-value streams — wide enough that the per-cycle work dominates setup.
func wideBenchGraph(w, n int) *graph.Graph {
	g := graph.New()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	for k := 0; k < w; k++ {
		prev := g.AddSource("in", value.Reals(vals))
		for s := 0; s < 16; s++ {
			id := g.Add(graph.OpID, "")
			g.Connect(prev, id, 0)
			prev = id
		}
		g.Connect(prev, g.AddSink("out"), 0)
	}
	// distinct sink labels
	i := 0
	for _, nd := range g.Nodes() {
		if nd.Op == graph.OpSink {
			nd.Label = "out" + string(rune('a'+i))
			i++
		}
		if nd.Op == graph.OpSource {
			nd.Label = "in" + string(rune('a'+i))
		}
	}
	return g
}

// BenchmarkKernelCyclesPerSec measures the event-driven firing-rule
// kernel's cycle throughput on a wide pipelined workload; the cycles/sec
// metric is the number CI's bench guard tracks.
func BenchmarkKernelCyclesPerSec(b *testing.B) {
	totalCycles := 0
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := wideBenchGraph(8, 256)
		b.StartTimer()
		res, err := Run(g, Options{})
		if err != nil {
			b.Fatal(err)
		}
		totalCycles += res.Cycles
	}
	b.ReportMetric(float64(totalCycles)/b.Elapsed().Seconds(), "cycles/sec")
}

// BenchmarkBatchedCyclesPerSec measures aggregate lane-cycle throughput of
// the batched engine: B lanes advancing through one compiled graph count B
// lane-cycles per simulated cycle, so the metric divided by the B=1 rate
// is the amortization factor the E20 experiment gates on.
func BenchmarkBatchedCyclesPerSec(b *testing.B) {
	for _, bb := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("B%d", bb), func(b *testing.B) {
			totalLaneCycles := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := wideBenchGraph(8, 256)
				b.StartTimer()
				res, err := Run(g, Options{Batch: bb})
				if err != nil {
					b.Fatal(err)
				}
				if bb > 1 {
					for _, lr := range res.Lanes {
						totalLaneCycles += lr.Cycles
					}
				} else {
					totalLaneCycles += res.Cycles
				}
			}
			b.ReportMetric(float64(totalLaneCycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkShardedCyclesPerSec measures the sharded parallel engine at the
// contract's worker counts on the same wide workload. P=1 is the sequential
// kernel; the per-P wall rates expose the barrier and merge overhead, and on
// a multi-core host the wall rate itself scales.
func BenchmarkShardedCyclesPerSec(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			totalCycles := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := wideBenchGraph(8, 256)
				b.StartTimer()
				res, err := Run(g, Options{Workers: p})
				if err != nil {
					b.Fatal(err)
				}
				totalCycles += res.Cycles
			}
			b.ReportMetric(float64(totalCycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}
