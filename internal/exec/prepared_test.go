package exec

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"staticpipe/internal/value"
)

// TestPreparedInputsOverride pins the input-immutability contract:
// Options.Inputs rebinds a source cell's stream for one run without
// touching the graph, so the same Prepared serves different inputs from
// different runs — the binding half of the artifact-cache contract.
func TestPreparedInputsOverride(t *testing.T) {
	g, want := fig2(16)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}

	base, err := p.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range base.Output("out") {
		if v.AsReal() != want[i] {
			t.Fatalf("baseline out[%d] = %v, want %v", i, v, want[i])
		}
	}

	// Override stream a with all-ones; b keeps its compiled stream.
	ones := make([]float64, 16)
	bs := make([]float64, 16)
	for i := range ones {
		ones[i] = 1
		bs[i] = float64(2*i) - 3.25
	}
	over, err := p.Run(Options{Inputs: map[string][]value.Value{"a": value.Reals(ones)}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range over.Output("out") {
		y := 1 * bs[i]
		if exp := (y + 2) * (y - 3); v.AsReal() != exp {
			t.Fatalf("override out[%d] = %v, want %v", i, v, exp)
		}
	}

	// The graph was not written: a plain run still sees the compiled
	// streams, byte for byte.
	again, err := p.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Outputs, base.Outputs) || again.Cycles != base.Cycles {
		t.Fatal("override leaked into the shared graph: baseline run changed")
	}
}

// TestPreparedUnknownInputLabel pins the validation error: an override
// naming no source cell is a caller bug, refused before the run starts.
func TestPreparedUnknownInputLabel(t *testing.T) {
	g, _ := fig2(4)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(Options{Inputs: map[string][]value.Value{"nope": value.Reals([]float64{1})}})
	if err == nil || !strings.Contains(err.Error(), `input "nope" names no source cell`) {
		t.Fatalf("err = %v, want unknown-label refusal", err)
	}
}

// TestPreparedPooledRunsIdentical pins the free-list pool: repeated and
// concurrent runs over one Prepared draw recycled scratch and must stay
// byte-identical to the first (cold-pool) run.
func TestPreparedPooledRunsIdentical(t *testing.T) {
	g, _ := fig2(32)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := p.Run(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		res, err := p.Run(Options{})
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !reflect.DeepEqual(res.Outputs, ref.Outputs) || res.Cycles != ref.Cycles ||
			!reflect.DeepEqual(res.Firings, ref.Firings) {
			t.Fatalf("rep %d: pooled run diverged from cold run", rep)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Run(Options{})
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Outputs, ref.Outputs) || res.Cycles != ref.Cycles {
				errs <- fmt.Errorf("concurrent pooled run diverged from cold run")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
