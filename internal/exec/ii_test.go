package exec

import (
	"math"
	"testing"
)

func arrivalsAt(cycles ...int) []Arrival {
	out := make([]Arrival, len(cycles))
	for i, c := range cycles {
		out[i].Cycle = c
	}
	return out
}

// TestSteadyIIWindow pins the II measurement window: middle half with ≥8
// samples, fill-prefix skip with 4–7, full span below that. The short
// streams use a ramping arrival pattern (the fill transient of a deep
// pipeline: a large first gap, then steady spacing) that the old full-span
// measurement misreported.
func TestSteadyIIWindow(t *testing.T) {
	cases := []struct {
		name string
		arr  []Arrival
		want float64
	}{
		{"empty", nil, 0},
		{"single", arrivalsAt(5), 0},
		// 2–3 samples: nothing to trim, full span.
		{"two", arrivalsAt(10, 14), 4},
		{"three", arrivalsAt(10, 14, 18), 4},
		// 4–7 samples: skip the fill prefix (first quarter), keep the tail.
		// Fill gap of 10 cycles, steady II of 2 afterwards.
		{"four-with-fill", arrivalsAt(0, 10, 12, 14), 2},
		{"seven-with-fill", arrivalsAt(0, 10, 12, 14, 16, 18, 20), 2},
		// ≥8 samples: middle half, excluding fill and drain transients.
		{"eight-with-fill-and-drain", arrivalsAt(0, 10, 12, 14, 16, 18, 20, 30), 2},
		{"steady-16", func() []Arrival {
			cycles := make([]int, 16)
			for i := range cycles {
				cycles[i] = 100 + 2*i
			}
			return arrivalsAt(cycles...)
		}(), 2},
	}
	for _, tc := range cases {
		if got := SteadyII(tc.arr); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: SteadyII = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestFullyPipelinedShortStream checks the consequence of the window fix:
// a fully pipelined sink with a short stream and a deep fill is recognized
// as fully pipelined instead of being penalized for the fill gap.
func TestFullyPipelinedShortStream(t *testing.T) {
	r := &Result{Arrivals: map[string][]Arrival{
		"out": arrivalsAt(0, 20, 22, 24, 26),
	}}
	if ii := r.II("out"); math.Abs(ii-2) > 1e-12 {
		t.Fatalf("II = %v, want 2", ii)
	}
	if !r.FullyPipelined("out") {
		t.Error("short fully pipelined stream not recognized")
	}
}
