package exec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// shardSweep is the worker-count sweep the determinism contract promises.
var shardSweep = []int{1, 2, 4, 8}

// parallelCases are graph builders covering every structural feature the
// engine handles: straight pipelines, reconvergence, rings with initial
// tokens, merges, gated destinations, and wide independent lanes.
func parallelCases() map[string]func() *graph.Graph {
	return map[string]func() *graph.Graph{
		"fig2": func() *graph.Graph {
			g, _ := fig2(48)
			return g
		},
		"wide": func() *graph.Graph { return wideBenchGraph(6, 24) },
		"reconvergent": func() *graph.Graph {
			g := graph.New()
			src := g.AddSource("in", value.Reals(ramp(40)))
			id1 := g.Add(graph.OpID, "")
			id2 := g.Add(graph.OpID, "")
			add := g.Add(graph.OpAdd, "")
			g.Connect(src, id1, 0)
			g.Connect(id1, id2, 0)
			g.Connect(id2, add, 0)
			g.Connect(src, add, 1)
			g.Connect(add, g.AddSink("out"), 0)
			return g
		},
		"ring": func() *graph.Graph {
			n := 20
			g := graph.New()
			gate := g.Add(graph.OpTGate, "gate")
			ctl := g.AddCtl("ctl", graph.Pattern{Body: []bool{true}, Repeat: n, Suffix: []bool{false}})
			g.Connect(ctl, gate, 0)
			prev := gate
			for i := 0; i < 3; i++ {
				id := g.Add(graph.OpID, "")
				g.Connect(prev, id, 0)
				prev = id
			}
			back := g.Connect(prev, gate, 1)
			g.SetInit(back, value.R(7))
			g.Connect(gate, g.AddSink("out"), 0)
			return g
		},
		"merge-gated": func() *graph.Graph {
			g := graph.New()
			a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5}))
			add := g.Add(graph.OpAdd, "acc")
			merge := g.Add(graph.OpMerge, "m")
			mctl := g.AddCtl("mctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5})
			sink := g.AddSink("x")
			g.Connect(mctl, merge, 0)
			g.Connect(add, merge, 1)
			g.SetLiteral(merge, 2, value.I(0))
			outGate := g.AddGate(merge)
			g.Connect(g.AddCtl("outctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5}), merge, outGate)
			fbGate := g.AddGate(merge)
			g.Connect(g.AddCtl("fbctl", graph.Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}}), merge, fbGate)
			g.Connect(a, add, 0)
			g.ConnectGated(merge, fbGate, add, 1)
			g.ConnectGated(merge, outGate, sink, 0)
			return g
		},
		"fifo": func() *graph.Graph {
			g := graph.New()
			src := g.AddSource("in", value.Reals(ramp(32)))
			f := g.AddFIFO("buf", 5)
			g.Connect(src, f, 0)
			g.Connect(f, g.AddSink("out"), 0)
			return g
		},
	}
}

func requireSameResult(t *testing.T, name string, p int, seq, par *Result) {
	t.Helper()
	if seq.Cycles != par.Cycles {
		t.Errorf("%s P=%d: cycles %d, sequential %d", name, p, par.Cycles, seq.Cycles)
	}
	if !reflect.DeepEqual(seq.Firings, par.Firings) {
		t.Errorf("%s P=%d: firing counts diverge", name, p)
	}
	if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
		t.Errorf("%s P=%d: outputs diverge\nseq: %v\npar: %v", name, p, seq.Outputs, par.Outputs)
	}
	if !reflect.DeepEqual(seq.Arrivals, par.Arrivals) {
		t.Errorf("%s P=%d: arrival streams diverge", name, p)
	}
	if seq.Clean != par.Clean {
		t.Errorf("%s P=%d: clean %v, sequential %v", name, p, par.Clean, seq.Clean)
	}
	if !reflect.DeepEqual(seq.Stalled, par.Stalled) {
		t.Errorf("%s P=%d: stall diagnostics diverge\nseq: %v\npar: %v", name, p, seq.Stalled, par.Stalled)
	}
}

// TestShardedMatchesSequential is the package-level half of the
// determinism contract: every observable Result field is byte-identical
// to the sequential engine for any worker count.
func TestShardedMatchesSequential(t *testing.T) {
	for name, build := range parallelCases() {
		seq, err := Run(build(), Options{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, p := range shardSweep {
			par, err := Run(build(), Options{Workers: p})
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			requireSameResult(t, name, p, seq, par)
			if p > 1 && len(par.Shards) == 0 {
				t.Errorf("%s P=%d: no shard stats on a sharded run", name, p)
			}
			if p > 1 {
				cells, firings := 0, 0
				for _, s := range par.Shards {
					cells += s.Cells
					firings += int(s.Firings)
				}
				wantF := 0
				for _, f := range par.Firings {
					wantF += f
				}
				if cells != par.Graph.NumNodes() || firings != wantF {
					t.Errorf("%s P=%d: shard stats don't cover the run: cells=%d/%d firings=%d/%d",
						name, p, cells, par.Graph.NumNodes(), firings, wantF)
				}
			}
		}
	}
}

// recorder keeps the verbatim event stream for byte-level comparison.
type recorder struct {
	meta   trace.Meta
	events []trace.Event
}

func (r *recorder) Start(m trace.Meta) { r.meta = m }
func (r *recorder) Emit(e trace.Event) { r.events = append(r.events, e) }

// TestShardedTraceByteIdentical pins the replay path: the structured
// event stream and the debug-callback sequence of a sharded run must
// equal the sequential ones event for event.
func TestShardedTraceByteIdentical(t *testing.T) {
	for name, build := range parallelCases() {
		var seqRec recorder
		var seqLines []string
		seqTrace := func(cycle int, n *graph.Node, out value.Value) {
			seqLines = append(seqLines, fmt.Sprintf("%d %s %v", cycle, n.Name(), out))
		}
		if _, err := Run(build(), Options{Tracer: &seqRec, Trace: seqTrace}); err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, p := range []int{2, 4} {
			var parRec recorder
			var parLines []string
			parTrace := func(cycle int, n *graph.Node, out value.Value) {
				parLines = append(parLines, fmt.Sprintf("%d %s %v", cycle, n.Name(), out))
			}
			if _, err := Run(build(), Options{Workers: p, Tracer: &parRec, Trace: parTrace}); err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			if !reflect.DeepEqual(seqRec.meta, parRec.meta) {
				t.Errorf("%s P=%d: trace metadata diverges", name, p)
			}
			if !reflect.DeepEqual(seqRec.events, parRec.events) {
				t.Errorf("%s P=%d: event streams diverge (%d vs %d events)",
					name, p, len(seqRec.events), len(parRec.events))
				for i := range seqRec.events {
					if i >= len(parRec.events) || seqRec.events[i] != parRec.events[i] {
						t.Errorf("  first divergence at event %d: seq=%+v", i, seqRec.events[i])
						if i < len(parRec.events) {
							t.Errorf("  par=%+v", parRec.events[i])
						}
						break
					}
				}
			}
			if !reflect.DeepEqual(seqLines, parLines) {
				t.Errorf("%s P=%d: debug-callback lines diverge", name, p)
			}
		}
	}
}

// TestShardedPartialResult pins the MaxCycles path: the partial result's
// observable fields stay byte-identical, the error matches, and the
// sharded run adds shard/ring diagnostics naming where work was pending.
func TestShardedPartialResult(t *testing.T) {
	build := parallelCases()["wide"]
	seq, seqErr := Run(build(), Options{MaxCycles: 9})
	if seqErr == nil {
		t.Fatal("sequential run unexpectedly quiesced in 9 cycles")
	}
	for _, p := range []int{2, 4} {
		par, parErr := Run(build(), Options{MaxCycles: 9, Workers: p})
		if parErr == nil {
			t.Fatalf("P=%d: run unexpectedly quiesced", p)
		}
		if seqErr.Error() != parErr.Error() {
			t.Errorf("P=%d: error %q, sequential %q", p, parErr, seqErr)
		}
		requireSameResult(t, "partial", p, seq, par)
		if len(par.ShardDiag) == 0 {
			t.Fatalf("P=%d: partial sharded result carries no shard diagnostics", p)
		}
		joined := strings.Join(par.ShardDiag, "\n")
		if !strings.Contains(joined, "shard 0:") || !strings.Contains(joined, "pending at halt") {
			t.Errorf("P=%d: shard diagnostics don't name shards: %q", p, joined)
		}
		if !strings.Contains(Describe(par), "shard-diag:") {
			t.Errorf("P=%d: Describe omits the shard diagnostics", p)
		}
	}
}

// TestShardedWithLiveTelemetry attaches the concurrent telemetry stack to
// a sharded run (the configuration the race detector must bless) and
// checks the per-shard progress counters are live and consistent.
func TestShardedWithLiveTelemetry(t *testing.T) {
	build := parallelCases()["wide"]
	seq, err := Run(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := &trace.Progress{}
	par, err := Run(build(), Options{Workers: 4, Tracer: trace.NewLive(), Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "telemetry", 4, seq, par)
	shards := prog.Shards()
	if len(shards) != 4 {
		t.Fatalf("progress exposes %d shard counter blocks, want 4", len(shards))
	}
	var fired int64
	for _, sc := range shards {
		fired += sc.Firings.Load()
		if sc.Cycles.Load() == 0 {
			t.Error("a shard reported zero completed cycles")
		}
	}
	var want int64
	for _, f := range par.Firings {
		want += int64(f)
	}
	if fired != want {
		t.Errorf("live firing counters sum to %d, want %d", fired, want)
	}
}

// TestShardedWorkerClamp: more workers than cells must degrade to fewer
// shards (or the sequential engine) without changing results.
func TestShardedWorkerClamp(t *testing.T) {
	g := graph.New()
	src := g.AddSource("in", value.Reals(ramp(8)))
	g.Connect(src, g.AddSink("out"), 0)
	seq, err := Run(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(g, Options{Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "clamp", 16, seq, par)
}
