package exec

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// batchSweep is the lane-count sweep the identity contract promises.
var batchSweep = []int{1, 4, 16}

// laneView adapts one lane of a batched result to the scalar Result shape
// so requireSameResult can compare it field for field.
func laneView(r *Result, l int) *Result {
	lr := r.Lanes[l]
	return &Result{
		Cycles:   lr.Cycles,
		Firings:  lr.Firings,
		Outputs:  lr.Outputs,
		Arrivals: lr.Arrivals,
		Clean:    lr.Clean,
		Canceled: lr.Canceled,
		Stalled:  lr.Stalled,
	}
}

// TestBatchedLaneIdentity is the package-level half of the batched
// identity contract: with every lane fed the graph's bound streams, every
// lane's view — and the top-level fields, which must be lane 0's — is
// byte-identical to the sequential engine, for any lane count and any
// lane-sharding worker count.
func TestBatchedLaneIdentity(t *testing.T) {
	for name, build := range parallelCases() {
		seq, err := Run(build(), Options{})
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, b := range batchSweep {
			for _, w := range []int{1, 2, 4} {
				bat, err := Run(build(), Options{Batch: b, Workers: w})
				if err != nil {
					t.Fatalf("%s B=%d W=%d: %v", name, b, w, err)
				}
				requireSameResult(t, fmt.Sprintf("%s B=%d W=%d top", name, b, w), w, seq, bat)
				if b <= 1 {
					if bat.Batch != 0 || bat.Lanes != nil {
						t.Errorf("%s B=%d: scalar run reports batch fields", name, b)
					}
					continue
				}
				if bat.Batch != b || len(bat.Lanes) != b {
					t.Fatalf("%s B=%d W=%d: Batch=%d len(Lanes)=%d", name, b, w, bat.Batch, len(bat.Lanes))
				}
				for l := 0; l < b; l++ {
					requireSameResult(t, fmt.Sprintf("%s B=%d W=%d lane %d", name, b, w, l), w, seq, laneView(bat, l))
				}
			}
		}
	}
}

// TestBatchedTraceByteIdentical pins the lane-0 trace contract: the
// structured event stream and the debug-callback sequence of a batched run
// must equal the sequential ones event for event, at any worker count.
func TestBatchedTraceByteIdentical(t *testing.T) {
	for name, build := range parallelCases() {
		var seqRec recorder
		var seqLines []string
		seqTrace := func(cycle int, n *graph.Node, out value.Value) {
			seqLines = append(seqLines, fmt.Sprintf("%d %s %v", cycle, n.Name(), out))
		}
		if _, err := Run(build(), Options{Tracer: &seqRec, Trace: seqTrace}); err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, b := range []int{4, 16} {
			for _, w := range []int{1, 4} {
				var batRec recorder
				var batLines []string
				batTrace := func(cycle int, n *graph.Node, out value.Value) {
					batLines = append(batLines, fmt.Sprintf("%d %s %v", cycle, n.Name(), out))
				}
				if _, err := Run(build(), Options{Batch: b, Workers: w, Tracer: &batRec, Trace: batTrace}); err != nil {
					t.Fatalf("%s B=%d W=%d: %v", name, b, w, err)
				}
				if !reflect.DeepEqual(seqRec.meta, batRec.meta) {
					t.Errorf("%s B=%d W=%d: trace metadata diverges", name, b, w)
				}
				if !reflect.DeepEqual(seqRec.events, batRec.events) {
					t.Errorf("%s B=%d W=%d: event streams diverge (%d vs %d events)",
						name, b, w, len(seqRec.events), len(batRec.events))
					for i := range seqRec.events {
						if i >= len(batRec.events) || seqRec.events[i] != batRec.events[i] {
							t.Errorf("  first divergence at event %d: seq=%+v", i, seqRec.events[i])
							if i < len(batRec.events) {
								t.Errorf("  bat=%+v", batRec.events[i])
							}
							break
						}
					}
				}
				if !reflect.DeepEqual(seqLines, batLines) {
					t.Errorf("%s B=%d W=%d: debug-callback lines diverge", name, b, w)
				}
			}
		}
	}
}

// scaleGraph is a small labeled-input pipeline for per-lane stream tests:
// out[i] = in[i] * 3.
func scaleGraph(stream []value.Value) *graph.Graph {
	g := graph.New()
	src := g.AddSource("in", stream)
	mul := g.Add(graph.OpMul, "")
	g.SetLiteral(mul, 1, value.R(3))
	g.Connect(src, mul, 0)
	g.Connect(mul, g.AddSink("out"), 0)
	return g
}

// rot rotates a stream by l positions — cheap distinct per-lane inputs.
func rot(vs []value.Value, l int) []value.Value {
	l = l % len(vs)
	return append(append([]value.Value(nil), vs[l:]...), vs[:l]...)
}

// TestBatchedLaneInputs feeds every lane a distinct stream (including one
// of a different length) and checks each lane's view equals a sequential
// run of that lane's stream.
func TestBatchedLaneInputs(t *testing.T) {
	base := value.Reals(ramp(24))
	const b = 4
	laneIn := make([]map[string][]value.Value, b)
	for l := 1; l < b; l++ {
		s := rot(base, l*3)
		if l == 2 {
			s = s[:10] // shorter stream: this lane quiesces earlier
		}
		laneIn[l] = map[string][]value.Value{"in": s}
	}
	bat, err := Run(scaleGraph(base), Options{Batch: b, LaneInputs: laneIn})
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < b; l++ {
		stream := base
		if l > 0 {
			stream = laneIn[l]["in"]
		}
		seq, err := Run(scaleGraph(stream), Options{})
		if err != nil {
			t.Fatalf("lane %d sequential: %v", l, err)
		}
		requireSameResult(t, fmt.Sprintf("lane %d", l), 1, seq, laneView(bat, l))
	}
	if bat.Lanes[2].Cycles >= bat.Lanes[1].Cycles {
		t.Errorf("short lane 2 quiesced at cycle %d, not before lane 1's %d",
			bat.Lanes[2].Cycles, bat.Lanes[1].Cycles)
	}
}

// TestBatchedLaneZeroIgnoresLaneInputs: lane 0 always consumes the
// graph-bound streams, even when LaneInputs[0] names the source.
func TestBatchedLaneZeroIgnoresLaneInputs(t *testing.T) {
	base := value.Reals(ramp(8))
	laneIn := []map[string][]value.Value{{"in": value.Reals(ramp(2))}, nil}
	bat, err := Run(scaleGraph(base), Options{Batch: 2, LaneInputs: laneIn})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(bat.Outputs["out"]); got != 8 {
		t.Errorf("lane 0 produced %d values; LaneInputs[0] must be ignored (want 8)", got)
	}
}

// TestBatchedPartialResult pins the MaxCycles path at B>1: the error and
// lane 0's partial view stay byte-identical to the sequential engine, and
// every lane carries its own partial view.
func TestBatchedPartialResult(t *testing.T) {
	build := parallelCases()["wide"]
	seq, seqErr := Run(build(), Options{MaxCycles: 9})
	if seqErr == nil {
		t.Fatal("sequential run unexpectedly quiesced in 9 cycles")
	}
	for _, w := range []int{1, 4} {
		bat, batErr := Run(build(), Options{MaxCycles: 9, Batch: 4, Workers: w})
		if batErr == nil {
			t.Fatalf("W=%d: batched run unexpectedly quiesced", w)
		}
		if seqErr.Error() != batErr.Error() {
			t.Errorf("W=%d: error %q, sequential %q", w, batErr, seqErr)
		}
		requireSameResult(t, "partial top", w, seq, bat)
		for l := 0; l < 4; l++ {
			requireSameResult(t, fmt.Sprintf("partial lane %d", l), w, seq, laneView(bat, l))
		}
	}
}

// TestBatchedValidation pins the option-validation errors.
func TestBatchedValidation(t *testing.T) {
	base := value.Reals(ramp(4))
	if _, err := Run(scaleGraph(base), Options{Batch: MaxBatch + 1}); err == nil ||
		!strings.Contains(err.Error(), "lane limit") {
		t.Errorf("oversized batch: err=%v", err)
	}
	tooMany := make([]map[string][]value.Value, 3)
	if _, err := Run(scaleGraph(base), Options{Batch: 2, LaneInputs: tooMany}); err == nil ||
		!strings.Contains(err.Error(), "lane input sets") {
		t.Errorf("excess lane inputs: err=%v", err)
	}
	bad := []map[string][]value.Value{nil, {"nope": base}}
	if _, err := Run(scaleGraph(base), Options{Batch: 2, LaneInputs: bad}); err == nil ||
		!strings.Contains(err.Error(), "names no source cell") {
		t.Errorf("unknown lane input label: err=%v", err)
	}
}

// TestBatchedLaneTelemetry attaches the live progress counters to a
// batched lane-sharded run (the configuration the race detector must
// bless) and checks the per-lane blocks are populated and consistent.
func TestBatchedLaneTelemetry(t *testing.T) {
	build := parallelCases()["wide"]
	seq, err := Run(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog := &trace.Progress{}
	bat, err := Run(build(), Options{Batch: 8, Workers: 4, Tracer: trace.NewLive(), Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "telemetry", 4, seq, bat)
	lanes := prog.BatchLanes()
	if len(lanes) != 8 {
		t.Fatalf("progress exposes %d lane counter blocks, want 8", len(lanes))
	}
	var arrivals int64
	for l, lc := range lanes {
		arrivals += lc.Arrivals.Load()
		if lc.Done.Load() != 1 {
			t.Errorf("lane %d not marked done", l)
		}
		if got, want := lc.Cycles.Load(), int64(bat.Lanes[l].Cycles); got != want {
			t.Errorf("lane %d live cycle counter %d, want %d", l, got, want)
		}
	}
	var want int64
	for _, arrs := range bat.Arrivals {
		want += int64(len(arrs))
	}
	if arrivals != want*8 {
		t.Errorf("live arrival counters sum to %d, want %d", arrivals, want*8)
	}
	if got := prog.Arrivals.Load(); got != want*8 {
		t.Errorf("aggregate arrival counter %d, want %d", got, want*8)
	}
}
