// Batched multi-stream engine: one compiled graph, B independent input
// streams, arc state widened to B token lanes (the ROADMAP's throughput
// analogue of §9's delay-for-rate interleaving — independent iterations
// share one mapped graph so interpretation cost is amortized).
//
// Layout is structure-of-arrays, lane-minor: arc slot state lives at index
// arcID*B+lane, source positions and firing counters at nodeID*B+lane, so
// one cell's B lanes are contiguous. The candidate set is a dense cell
// bitset paired with a per-cell 64-bit lane mask (hence the MaxBatch = 64
// lane limit): a (cell, lane) pair is re-planned only when one of that
// lane's input arcs fills or output arcs drains — the scalar engine's
// event-driven rule applied per lane.
//
// Amortization is what makes batching pay: cells whose plan shape is
// lane-invariant (sources, sinks, and ordinary operators with ungated
// destinations — the bulk of any array kernel) are planned once per cycle
// for all pending lanes and commit ONE firing record carrying a lane
// mask, so instruction decode, candidate-walk, arena, and wakeup
// bookkeeping are paid per cell instead of per stream; only the
// lane-varying residue (operand presence bits, token moves, ApplyOp)
// costs per lane. Cells whose consume/produce arc sets depend on token
// values (merge selection, gates, gated destinations, control generators)
// fall back to exact per-lane records.
//
// Lanes are mutually independent — a lane's firing decisions read only
// that lane's slots — so each lane's execution is provably the scalar
// engine's execution of that lane's streams, advanced on a shared cycle
// counter. Lane 0 is byte-identical to a scalar run (outputs, arrival
// cycles, firings, stall diagnostics, trace event stream); differential
// tests and the CI sweep pin this. Lane independence is also why Workers
// shards a batched run by contiguous lane ranges: the workers share no
// mutable state (their lane slots interleave but never alias) and need no
// barriers, so determinism for any worker count holds by construction
// rather than by phase protocol.
package exec

import (
	"fmt"
	"math/bits"
	"sync"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// MaxBatch is the largest lane count a batched Run supports: the candidate
// set keeps one 64-bit lane mask per cell.
const MaxBatch = 64

// LaneResult is one lane's view of a batched run. Its fields mean exactly
// what the same-named Result fields mean for a scalar run of that lane's
// input streams.
type LaneResult struct {
	Cycles   int
	Firings  []int
	Outputs  map[string][]value.Value
	Arrivals map[string][]Arrival
	Clean    bool
	Canceled bool
	Stalled  []string
}

// Lane returns lane l's view of a batched result in the scalar Result
// shape, so lane consumers (II measurement, Describe, the service layer)
// reuse every scalar helper unchanged. On a scalar result Lane(0) is the
// result itself; out-of-range lanes return nil.
func (r *Result) Lane(l int) *Result {
	if r.Batch <= 1 {
		if l == 0 {
			return r
		}
		return nil
	}
	if l < 0 || l >= len(r.Lanes) {
		return nil
	}
	lr := r.Lanes[l]
	return &Result{
		Cycles:   lr.Cycles,
		Firings:  lr.Firings,
		Outputs:  lr.Outputs,
		Arrivals: lr.Arrivals,
		Clean:    lr.Clean,
		Canceled: lr.Canceled,
		Stalled:  lr.Stalled,
		Graph:    r.Graph,
	}
}

// bShape classifies how a cell is planned in the batched engine.
type bShape uint8

const (
	bShapeSlow   bShape = iota // per-lane exact planning (merge, gates, ctlgen, gated outs)
	bShapeDead                 // an unbound operand: never fires
	bShapeSource               // stream source, ungated destinations
	bShapeSink                 // arc-fed sink
	bShapeApply                // ordinary operator, ungated destinations
)

// bOut is one decoded destination arc: the arc ID and the gating operand
// port (-1 when unconditional).
type bOut struct {
	aid  int32
	gate int32
}

// bInst is the flat decoded form of one instruction cell, derived once so
// the per-cycle plan never chases graph.Node pointers.
type bInst struct {
	op    graph.Op
	shape bShape
	node  *graph.Node
	ins   []int32       // arc ID per operand port; -1 = literal or unbound
	lits  []value.Value // literal per port where ins[p] < 0 (Invalid = unbound)
	cins  []int32       // the non-literal entries of ins, in port order
	outs  []bOut
	sink  int32 // dense sink index (sinks only; -1 otherwise)
	// streams holds the per-lane source stream (sources only; lane 0 is
	// the graph's bound stream).
	streams [][]value.Value
}

// bsim is the lane-widened machine state shared by all lane-range workers.
// Workers touch only their own lanes' interleaved slots, so no field here
// needs synchronization.
type bsim struct {
	g *graph.Graph
	B int

	insts   []bInst
	arcFrom []int32
	arcTo   []int32
	arcPort []int32

	has    []bool        // token presence, arcID*B+lane
	val    []value.Value // token value, arcID*B+lane
	srcPos []int32       // next stream index, nodeID*B+lane
	frns   []int         // firing counts, nodeID*B+lane

	sinkLabels []string        // label per dense sink index
	sinkOuts   [][]value.Value // received stream, sinkIdx*B+lane
	// sinkCycs holds arrival cycles parallel to sinkOuts; the hot sink
	// loop appends 8 bytes per token and assemble zips the two into the
	// result's []Arrival once, instead of copying every value twice.
	sinkCycs [][]int64
	outCap   []int // per-lane preallocation hint

	laneCycles   []int
	laneDone     []bool
	laneCanceled []bool
	laneMaxed    []bool

	tr       trace.Tracer
	trc      func(int, *graph.Node, value.Value)
	prog     *trace.Progress
	laneCtrs []*trace.LaneCounters

	maxCycles int
}

// runBatched is the Batch > 1 entry point; g is already validated and
// FIFO-expanded by Run, and streams carries the per-node resolved base
// source binding every lane defaults to (see resolveStreams).
func runBatched(g *graph.Graph, opt Options, streams [][]value.Value, maxCycles, B int) (*Result, error) {
	if B > MaxBatch {
		return nil, fmt.Errorf("exec: Batch %d exceeds the %d-lane limit", B, MaxBatch)
	}
	s, err := newBsim(g, opt, streams, maxCycles, B)
	if err != nil {
		return nil, err
	}
	w := opt.Workers
	if w > B {
		w = B
	}
	if w < 1 {
		w = 1
	}
	workers := make([]*bworker, w)
	per, extra := B/w, B%w
	lo := 0
	for i := range workers {
		n := per
		if i < extra {
			n++
		}
		workers[i] = newBworker(s, opt, lo, lo+n, i == 0)
		lo += n
	}
	if w == 1 {
		workers[0].run()
	} else {
		var wg sync.WaitGroup
		for _, bw := range workers {
			wg.Add(1)
			go func(bw *bworker) {
				defer wg.Done()
				bw.run()
			}(bw)
		}
		wg.Wait()
	}
	return s.assemble(opt)
}

func newBsim(g *graph.Graph, opt Options, streams [][]value.Value, maxCycles, B int) (*bsim, error) {
	if len(opt.LaneInputs) > B {
		return nil, fmt.Errorf("exec: %d lane input sets for %d lanes", len(opt.LaneInputs), B)
	}
	nn, na := g.NumNodes(), g.NumArcs()
	s := &bsim{
		g: g, B: B,
		insts:   make([]bInst, nn),
		arcFrom: make([]int32, na),
		arcTo:   make([]int32, na),
		arcPort: make([]int32, na),
		has:     make([]bool, na*B),
		val:     make([]value.Value, na*B),
		srcPos:  make([]int32, nn*B),
		frns:    make([]int, nn*B),
		outCap:  make([]int, B),

		laneCycles:   make([]int, B),
		laneDone:     make([]bool, B),
		laneCanceled: make([]bool, B),
		laneMaxed:    make([]bool, B),

		tr: opt.Tracer, trc: opt.Trace, prog: opt.Progress,
		maxCycles: maxCycles,
	}
	srcLabels := map[string]bool{}
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource {
			srcLabels[n.Label] = true
		}
	}
	for l, li := range opt.LaneInputs {
		for name := range li {
			if !srcLabels[name] {
				return nil, fmt.Errorf("exec: lane %d input %q names no source cell", l, name)
			}
		}
	}
	seenSinks := map[string]bool{}
	for _, n := range g.Nodes() {
		inst := &s.insts[n.ID]
		inst.op = n.Op
		inst.node = n
		inst.sink = -1
		if len(n.In) > 0 {
			inst.ins = make([]int32, len(n.In))
			inst.lits = make([]value.Value, len(n.In))
			for p, in := range n.In {
				switch {
				case in.Literal != nil:
					inst.ins[p] = -1
					inst.lits[p] = *in.Literal
				case in.Arc != nil:
					inst.ins[p] = int32(in.Arc.ID)
					inst.cins = append(inst.cins, int32(in.Arc.ID))
				default:
					inst.ins[p] = -1 // unbound: lits[p] stays Invalid, never ready
				}
			}
		}
		gated := false
		for _, a := range n.Out {
			inst.outs = append(inst.outs, bOut{aid: int32(a.ID), gate: int32(a.Gate)})
			gated = gated || a.Gate != graph.NoGate
		}
		switch n.Op {
		case graph.OpSink:
			if seenSinks[n.Label] {
				return nil, fmt.Errorf("exec: duplicate sink label %q", n.Label)
			}
			seenSinks[n.Label] = true
			inst.sink = int32(len(s.sinkLabels))
			s.sinkLabels = append(s.sinkLabels, n.Label)
			if len(inst.ins) > 0 && inst.ins[0] >= 0 && !gated {
				inst.shape = bShapeSink
			}
		case graph.OpSource:
			inst.streams = make([][]value.Value, B)
			for l := 0; l < B; l++ {
				inst.streams[l] = streams[n.ID]
				if l > 0 && l < len(opt.LaneInputs) && opt.LaneInputs[l] != nil {
					if sv, ok := opt.LaneInputs[l][n.Label]; ok {
						inst.streams[l] = sv
					}
				}
				if len(inst.streams[l]) > s.outCap[l] {
					s.outCap[l] = len(inst.streams[l])
				}
			}
			if !gated {
				inst.shape = bShapeSource
			}
		case graph.OpCtlGen, graph.OpMerge, graph.OpTGate, graph.OpFGate:
			// plan shape varies with token values: exact per-lane path
		default:
			unbound := false
			for p, aid := range inst.ins {
				unbound = unbound || (aid < 0 && !inst.lits[p].Valid())
			}
			switch {
			case unbound:
				inst.shape = bShapeDead
			case !gated:
				inst.shape = bShapeApply
			}
		}
	}
	s.sinkOuts = make([][]value.Value, len(s.sinkLabels)*B)
	s.sinkCycs = make([][]int64, len(s.sinkLabels)*B)
	for _, a := range g.Arcs() {
		s.arcFrom[a.ID] = int32(a.From)
		s.arcTo[a.ID] = int32(a.To)
		s.arcPort[a.ID] = int32(a.ToPort)
		if a.Init != nil {
			for l := 0; l < B; l++ {
				s.has[a.ID*B+l] = true
				s.val[a.ID*B+l] = *a.Init
			}
		}
	}
	if s.tr != nil {
		names := make([]string, nn)
		for _, n := range g.Nodes() {
			names[n.ID] = n.Name()
		}
		s.tr.Start(trace.Meta{Cells: names})
	}
	if s.prog != nil {
		s.laneCtrs = s.prog.InitLanes(B)
	}
	return s, nil
}

// bfiring is one firing record: a cell plus the mask of lanes firing it
// this cycle. The consume and produce arc-ID runs live in the owning
// worker's arena as [c0:c1) and [p0:p1); they are shared by every lane in
// fire (fast shapes) or belong to a single lane (slow shapes, where fire
// has one bit). Output values live lane-indexed at outVals[v0+lane].
type bfiring struct {
	inst           int32
	fire           uint64 // lanes firing
	prod           uint64 // lanes producing a result (gates may discard)
	c0, c1, p0, p1 int32
	v0             int32
	srcArc         int32 // >= 0: lane values come from this arc's slots, not outVals
	advance        bool
	sink           bool
	// inPlace: the fill phase computed results directly into the single
	// output arc's value slots; apply only raises the has bits.
	inPlace bool
}

// bworker advances the contiguous lane range [l0, l1). The worker owning
// lane 0 (traced) additionally drives tracing and the progress cycle
// counter. Workers share the bsim's flat state but write only their own
// lanes' slots.
type bworker struct {
	s      *bsim
	l0, l1 int
	all    uint64 // laneBits(), cached for the dense-loop check
	traced bool

	cand, next bitset   // cells with a nonzero lane mask
	mask       []uint64 // per-cell lane mask (absolute lane bits)

	plans   []bfiring
	arcIDs  []int32
	outVals []value.Value
	vals    []value.Value

	done     <-chan struct{}
	canceled bool
}

func newBworker(s *bsim, opt Options, l0, l1 int, traced bool) *bworker {
	w := &bworker{
		s: s, l0: l0, l1: l1, traced: traced,
		cand: newBitset(s.g.NumNodes()),
		next: newBitset(s.g.NumNodes()),
		mask: make([]uint64, s.g.NumNodes()),
	}
	if opt.Ctx != nil {
		w.done = opt.Ctx.Done()
	}
	w.all = w.laneBits()
	for i := range s.insts {
		w.cand.set(i)
		w.mask[i] = w.all
	}
	return w
}

// laneBits returns the mask with one bit per lane in [l0, l1).
func (w *bworker) laneBits() uint64 {
	n := w.l1 - w.l0
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1)<<uint(n) - 1) << uint(w.l0)
}

// run is the worker's cycle loop — the batched analogue of Run's scalar
// loop. A lane quiesces at the first cycle it contributes no firing (no
// firing means no state change, so none ever follow — the same fixed
// point the scalar loop's empty-collect break detects).
func (w *bworker) run() {
	s := w.s
	alive := w.laneBits()
	cycle := 0
	for ; cycle < s.maxCycles; cycle++ {
		if w.done != nil && cycle&(CancelCadence-1) == 0 {
			select {
			case <-w.done:
				w.canceled = true
			default:
			}
			if w.canceled {
				break
			}
		}
		if w.traced && s.prog != nil {
			s.prog.Cycle.Store(int64(cycle))
		}
		plans := w.collect()
		if len(plans) == 0 {
			break
		}
		var fired uint64
		for i := range plans {
			fired |= plans[i].fire
		}
		if quiet := alive &^ fired; quiet != 0 {
			for q := quiet; q != 0; q &= q - 1 {
				l := bits.TrailingZeros64(q)
				s.laneDone[l] = true
				s.laneCycles[l] = cycle
				if s.laneCtrs != nil {
					s.laneCtrs[l].Cycles.Store(int64(cycle))
					s.laneCtrs[l].Done.Store(1)
				}
			}
			alive &= fired
		}
		if s.laneCtrs != nil {
			for a := alive; a != 0; a &= a - 1 {
				s.laneCtrs[bits.TrailingZeros64(a)].Cycles.Store(int64(cycle))
			}
		}
		// Lane-0 stall classification mirrors the scalar engine's: emitted
		// only on cycles where lane 0 fires at least once (the scalar loop
		// breaks before classifying on its empty cycle).
		if w.traced && s.tr != nil && fired&1 != 0 {
			w.emitStalls(cycle, plans)
		}
		w.apply(cycle, plans)
	}
	for l := w.l0; l < w.l1; l++ {
		if s.laneDone[l] {
			continue
		}
		s.laneDone[l] = true
		s.laneCycles[l] = cycle
		if s.laneCtrs != nil {
			s.laneCtrs[l].Cycles.Store(int64(cycle))
			s.laneCtrs[l].Done.Store(1)
		}
		switch {
		case w.canceled:
			s.laneCanceled[l] = true
		case cycle >= s.maxCycles:
			s.laneMaxed[l] = true
		}
	}
}

// collect walks the candidate cells in ascending order and plans every
// marked (cell, lane) pair; lane masks are consumed on read, so a cell
// leaves the set unless apply re-marks it.
func (w *bworker) collect() []bfiring {
	w.plans = w.plans[:0]
	w.arcIDs = w.arcIDs[:0]
	w.outVals = w.outVals[:0]
	for wi, word := range w.cand {
		for word != 0 {
			ci := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			lanes := w.mask[ci]
			w.mask[ci] = 0
			w.planCell(int32(ci), lanes)
		}
	}
	return w.plans
}

// reserveVals extends the output-value arena by one B-slot lane-indexed
// segment and returns its offset. Stale slots are never read: apply only
// touches lanes in a record's fire/prod masks.
func (w *bworker) reserveVals() int32 {
	v0 := len(w.outVals)
	need := v0 + w.s.B
	if cap(w.outVals) < need {
		grown := make([]value.Value, v0, 2*need)
		copy(grown, w.outVals)
		w.outVals = grown
	}
	w.outVals = w.outVals[:need]
	return int32(v0)
}

// planCell plans one cell for all its pending lanes: fast shapes commit a
// single mask record, slow shapes fall back to exact per-lane planning.
func (w *bworker) planCell(ci int32, lanes uint64) {
	s := w.s
	B := s.B
	inst := &s.insts[ci]
	switch inst.shape {
	case bShapeDead:
		return

	case bShapeSlow:
		for ; lanes != 0; lanes &= lanes - 1 {
			w.planLane(ci, bits.TrailingZeros64(lanes))
		}
		return

	case bShapeSource:
		fire := uint64(0)
		base := int(ci) * B
		for m := lanes; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if int(s.srcPos[base+l]) < len(inst.streams[l]) {
				fire |= 1 << uint(l)
			}
		}
		fire = w.destFree(inst, fire)
		if fire == 0 {
			return
		}
		f := bfiring{inst: ci, fire: fire, prod: fire, advance: true, srcArc: -1, v0: w.reserveVals()}
		f.c0 = int32(len(w.arcIDs))
		f.c1 = f.c0
		f.p0 = f.c0
		for _, o := range inst.outs {
			w.arcIDs = append(w.arcIDs, o.aid)
		}
		f.p1 = int32(len(w.arcIDs))
		for m := fire; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			w.outVals[int(f.v0)+l] = inst.streams[l][s.srcPos[base+l]]
		}
		w.plans = append(w.plans, f)

	case bShapeSink:
		aid := inst.ins[0]
		ab := int(aid) * B
		fire := lanes
		for m := fire; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if !s.has[ab+l] {
				fire &^= 1 << uint(l)
			}
		}
		if fire == 0 {
			return
		}
		f := bfiring{inst: ci, fire: fire, sink: true, srcArc: aid}
		f.c0 = int32(len(w.arcIDs))
		w.arcIDs = append(w.arcIDs, aid)
		f.c1 = f.c0 + 1
		f.p0, f.p1 = f.c1, f.c1
		w.plans = append(w.plans, f)

	case bShapeApply:
		fire := lanes
		if len(inst.cins) == 1 && len(inst.outs) == 1 {
			// fused presence + destination check: one pass over the lanes
			inb := int(inst.cins[0]) * B
			outb := int(inst.outs[0].aid) * B
			fire = 0
			if lanes == w.all {
				// dense steady state: straight-line over the contiguous
				// range, no TrailingZeros per lane
				in := s.has[inb+w.l0 : inb+w.l1 : inb+w.l1]
				out := s.has[outb+w.l0 : outb+w.l1 : outb+w.l1]
				for l := range in {
					if in[l] && !out[l] {
						fire |= 1 << uint(w.l0+l)
					}
				}
			} else {
				for m := lanes; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if s.has[inb+l] && !s.has[outb+l] {
						fire |= 1 << uint(l)
					}
				}
			}
		} else {
			for _, aid := range inst.cins {
				ab := int(aid) * B
				for m := fire; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					if !s.has[ab+l] {
						fire &^= 1 << uint(l)
					}
				}
				if fire == 0 {
					return
				}
			}
			fire = w.destFree(inst, fire)
		}
		if fire == 0 {
			return
		}
		f := bfiring{inst: ci, fire: fire, prod: fire, srcArc: -1}
		f.c0 = int32(len(w.arcIDs))
		w.arcIDs = append(w.arcIDs, inst.cins...)
		f.c1 = int32(len(w.arcIDs))
		f.p0 = f.c1
		for _, o := range inst.outs {
			w.arcIDs = append(w.arcIDs, o.aid)
		}
		f.p1 = int32(len(w.arcIDs))
		// Results land directly in the output arc's value slots when the
		// cell has exactly one: the destination was just checked free, its
		// consumer cannot fire this cycle (no token), and only this worker
		// touches these lanes — so the staging buffer and apply-phase copy
		// are pure overhead. Fan-out cells keep the staging arena.
		var out []value.Value
		if len(inst.outs) == 1 && inst.op != graph.OpID {
			f.inPlace = true
			ob := int(inst.outs[0].aid) * B
			out = s.val[ob : ob+B : ob+B]
		}
		switch {
		case inst.op == graph.OpID && len(inst.ins) == 1 && inst.ins[0] >= 0:
			// identity cells move one token: the fill phase copies straight
			// from the (consumed but still intact) input-arc slots
			f.srcArc = inst.ins[0]
		case len(inst.ins) == 2 && inst.ins[0] >= 0 && inst.ins[1] < 0:
			// binary op, literal right operand — the dominant shape in
			// compiled array kernels; operands stay in registers instead of
			// round-tripping through the scratch operand slice
			if out == nil {
				f.v0 = w.reserveVals()
				out = w.outVals[int(f.v0) : int(f.v0)+B : int(f.v0)+B]
			}
			w.applyLitRight(inst.op, out, int(inst.ins[0])*B, inst.lits[1], fire)
		case len(inst.ins) == 2 && inst.ins[0] < 0 && inst.ins[1] >= 0:
			if out == nil {
				f.v0 = w.reserveVals()
				out = w.outVals[int(f.v0) : int(f.v0)+B : int(f.v0)+B]
			}
			a1 := int(inst.ins[1]) * B
			lit := inst.lits[0]
			for m := fire; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				out[l] = applyBinary(inst.op, lit, s.val[a1+l])
			}
		case len(inst.ins) == 2 && inst.ins[0] >= 0 && inst.ins[1] >= 0:
			if out == nil {
				f.v0 = w.reserveVals()
				out = w.outVals[int(f.v0) : int(f.v0)+B : int(f.v0)+B]
			}
			w.applyArcArc(inst.op, out, int(inst.ins[0])*B, int(inst.ins[1])*B, fire)
		default:
			if out == nil {
				f.v0 = w.reserveVals()
				out = w.outVals[int(f.v0) : int(f.v0)+B : int(f.v0)+B]
			}
			if cap(w.vals) < len(inst.ins) {
				w.vals = make([]value.Value, len(inst.ins))
			}
			vals := w.vals[:len(inst.ins)]
			for m := fire; m != 0; m &= m - 1 {
				l := bits.TrailingZeros64(m)
				for p, aid := range inst.ins {
					if aid >= 0 {
						vals[p] = s.val[int(aid)*B+l]
					} else {
						vals[p] = inst.lits[p]
					}
				}
				out[l] = ApplyOp(inst.op, vals)
			}
		}
		w.plans = append(w.plans, f)
	}
}

// applyLitRight fills the output slots of a binary cell whose right
// operand is a literal. The op dispatch hoists out of the lane loop, and
// when every lane of the worker fires (the steady state of a saturated
// pipeline) the loop runs dense over the contiguous lane range so the
// inlined all-Real value fast paths compile to straight-line code.
func (w *bworker) applyLitRight(op graph.Op, dst []value.Value, a0 int, lit value.Value, fire uint64) {
	s := w.s
	if fire == w.all {
		out := dst[w.l0:w.l1]
		in := s.val[a0+w.l0 : a0+w.l1 : a0+w.l1]
		switch op {
		case graph.OpAdd:
			for l := range out {
				out[l] = value.Add(in[l], lit)
			}
		case graph.OpSub:
			for l := range out {
				out[l] = value.Sub(in[l], lit)
			}
		case graph.OpMul:
			for l := range out {
				out[l] = value.Mul(in[l], lit)
			}
		default:
			for l := range out {
				out[l] = applyBinary(op, in[l], lit)
			}
		}
		return
	}
	for m := fire; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		dst[l] = applyBinary(op, s.val[a0+l], lit)
	}
}

// applyArcArc is applyLitRight for a binary cell with both operands on
// arcs.
func (w *bworker) applyArcArc(op graph.Op, dst []value.Value, a0, a1 int, fire uint64) {
	s := w.s
	if fire == w.all {
		out := dst[w.l0:w.l1]
		in0 := s.val[a0+w.l0 : a0+w.l1 : a0+w.l1]
		in1 := s.val[a1+w.l0 : a1+w.l1 : a1+w.l1]
		switch op {
		case graph.OpAdd:
			for l := range out {
				out[l] = value.Add(in0[l], in1[l])
			}
		case graph.OpSub:
			for l := range out {
				out[l] = value.Sub(in0[l], in1[l])
			}
		case graph.OpMul:
			for l := range out {
				out[l] = value.Mul(in0[l], in1[l])
			}
		default:
			for l := range out {
				out[l] = applyBinary(op, in0[l], in1[l])
			}
		}
		return
	}
	for m := fire; m != 0; m &= m - 1 {
		l := bits.TrailingZeros64(m)
		dst[l] = applyBinary(op, s.val[a0+l], s.val[a1+l])
	}
}

// destFree clears every lane whose destination arcs are not all empty
// (only valid for ungated-destination shapes).
func (w *bworker) destFree(inst *bInst, fire uint64) uint64 {
	B := w.s.B
	for _, o := range inst.outs {
		ab := int(o.aid) * B
		for m := fire; m != 0; m &= m - 1 {
			l := bits.TrailingZeros64(m)
			if w.s.has[ab+l] {
				fire &^= 1 << uint(l)
			}
		}
		if fire == 0 {
			return 0
		}
	}
	return fire
}

// operand returns the value at port p of inst in the given lane and
// whether it is present (literals are always present; an unbound port
// never is).
func (w *bworker) operand(inst *bInst, p, lane int) (value.Value, bool) {
	aid := inst.ins[p]
	if aid < 0 {
		lit := inst.lits[p]
		return lit, lit.Valid()
	}
	slot := int(aid)*w.s.B + lane
	if !w.s.has[slot] {
		return value.Value{}, false
	}
	return w.s.val[slot], true
}

// consumeArc appends port p's arc (if any) to the arena's consume run.
func (w *bworker) consumeArc(inst *bInst, p int) {
	if aid := inst.ins[p]; aid >= 0 {
		w.arcIDs = append(w.arcIDs, aid)
	}
}

// planLane is the scalar engine's plan, transcribed against lane-strided
// state: it decides whether (cell ci, lane) can fire now and, if enabled,
// appends a single-lane firing record. The returned reason classifies a
// stall exactly as the scalar plan does (the stall pass probes through
// it).
func (w *bworker) planLane(ci int32, lane int) trace.Reason {
	s := w.s
	B := s.B
	inst := &s.insts[ci]
	var out value.Value
	var advance, produced, sink bool
	f := bfiring{inst: ci, fire: 1 << uint(lane), srcArc: -1}
	f.c0 = int32(len(w.arcIDs))

	switch inst.op {
	case graph.OpSource:
		stream := inst.streams[lane]
		pos := int(s.srcPos[int(ci)*B+lane])
		if pos >= len(stream) {
			return trace.ReasonDone
		}
		out = stream[pos]
		advance = true
		produced = true

	case graph.OpCtlGen:
		pos := int(s.srcPos[int(ci)*B+lane])
		total := inst.node.Pattern.Len()
		if total >= 0 && pos >= total {
			return trace.ReasonDone
		}
		out = value.B(inst.node.Pattern.At(pos))
		advance = true
		produced = true

	case graph.OpSink:
		v, ok := w.operand(inst, 0, lane)
		if !ok {
			return trace.ReasonOperandWait
		}
		out = v
		sink = true
		w.consumeArc(inst, 0)

	case graph.OpMerge:
		ctl, ok := w.operand(inst, 0, lane)
		if !ok {
			return trace.ReasonOperandWait
		}
		sel := 2
		if ctl.AsBool() {
			sel = 1
		}
		v, ok := w.operand(inst, sel, lane)
		if !ok {
			return trace.ReasonOperandWait
		}
		for p := 3; p < len(inst.ins); p++ {
			if _, ok := w.operand(inst, p, lane); !ok {
				return trace.ReasonOperandWait
			}
		}
		out = v
		produced = true
		w.consumeArc(inst, 0)
		w.consumeArc(inst, sel)
		for p := 3; p < len(inst.ins); p++ {
			w.consumeArc(inst, p)
		}

	case graph.OpTGate, graph.OpFGate:
		ctl, okc := w.operand(inst, 0, lane)
		data, okd := w.operand(inst, 1, lane)
		if !okc || !okd {
			return trace.ReasonOperandWait
		}
		for p := 2; p < len(inst.ins); p++ {
			if _, ok := w.operand(inst, p, lane); !ok {
				return trace.ReasonOperandWait
			}
		}
		pass := ctl.AsBool()
		if inst.op == graph.OpFGate {
			pass = !pass
		}
		out = data
		produced = pass
		for p := range inst.ins {
			w.consumeArc(inst, p)
		}

	default: // ordinary operator and identity cells
		if cap(w.vals) < len(inst.ins) {
			w.vals = make([]value.Value, len(inst.ins))
		}
		vals := w.vals[:len(inst.ins)]
		for p := range inst.ins {
			v, ok := w.operand(inst, p, lane)
			if !ok {
				return trace.ReasonOperandWait
			}
			vals[p] = v
		}
		out = ApplyOp(inst.op, vals)
		produced = true
		for p := range inst.ins {
			w.consumeArc(inst, p)
		}
	}
	f.c1 = int32(len(w.arcIDs))
	f.p0 = f.c1

	if produced {
		for _, o := range inst.outs {
			write := true
			if o.gate >= 0 {
				gv, ok := w.operand(inst, int(o.gate), lane)
				if !ok {
					return trace.ReasonOperandWait
				}
				write = gv.AsBool()
			}
			if write {
				if s.has[int(o.aid)*B+lane] {
					return trace.ReasonAckWait
				}
				w.arcIDs = append(w.arcIDs, o.aid)
			}
		}
	}
	f.p1 = int32(len(w.arcIDs))
	if produced {
		f.prod = f.fire
	}
	f.advance = advance
	if sink {
		// slow-path sinks still reference the consumed arc for values; a
		// literal-fed sink has no arc and keeps the outVals copy.
		if aid := inst.ins[0]; aid >= 0 {
			f.sink = true
			f.srcArc = aid
			w.plans = append(w.plans, f)
			return trace.ReasonNone
		}
	}
	f.sink = sink
	f.v0 = w.reserveVals()
	w.outVals[int(f.v0)+lane] = out
	w.plans = append(w.plans, f)
	return trace.ReasonNone
}

// probe classifies (cell ci, lane 0) without committing anything to the
// plan arenas (the stall pass runs between collect and apply).
func (w *bworker) probe(ci int32) trace.Reason {
	nPlans, nArcs, nVals := len(w.plans), len(w.arcIDs), len(w.outVals)
	why := w.planLane(ci, 0)
	w.plans = w.plans[:nPlans]
	w.arcIDs = w.arcIDs[:nArcs]
	w.outVals = w.outVals[:nVals]
	return why
}

// emitStalls classifies every cell that will not fire in lane 0 this
// cycle, mirroring the scalar engine's stall pass event for event.
func (w *bworker) emitStalls(cycle int, plans []bfiring) {
	s := w.s
	firing := make(map[int32]bool, len(plans))
	for i := range plans {
		if plans[i].fire&1 != 0 {
			firing[plans[i].inst] = true
		}
	}
	for _, n := range s.g.Nodes() {
		if firing[int32(n.ID)] {
			continue
		}
		if why := w.probe(int32(n.ID)); why == trace.ReasonOperandWait || why == trace.ReasonAckWait {
			s.tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindStall,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1, Reason: why,
			})
		}
	}
}

// apply commits the cycle's firing records and re-marks the (cell, lane)
// pairs whose enabledness may have changed. Lane-0 events replay in the
// scalar engine's exact order: records are collected cell-ascending (with
// slow-shape lanes inner), so the lane-0 subsequence is cell-ascending —
// the scalar collect order.
func (w *bworker) apply(cycle int, plans []bfiring) {
	s := w.s
	B := s.B
	w.next.reset()
	var tr trace.Tracer
	if w.traced {
		tr = s.tr
	}
	for i := range plans {
		f := &plans[i]
		ci := int(f.inst)
		base := ci * B
		fire := f.fire
		w.next.set(ci)
		w.mask[ci] |= fire
		if fire == w.all {
			frns := s.frns[base+w.l0 : base+w.l1 : base+w.l1]
			for l := range frns {
				frns[l]++
			}
		} else {
			for m := fire; m != 0; m &= m - 1 {
				s.frns[base+bits.TrailingZeros64(m)]++
			}
		}
		if tr != nil && fire&1 != 0 {
			tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindFiring,
				Cell: f.inst, Port: -1, Unit: -1, Src: -1, Dst: -1,
			})
		}
		dense := fire == w.all
		for _, aid := range w.arcIDs[f.c0:f.c1] {
			ab := int(aid) * B
			if dense {
				h := s.has[ab+w.l0 : ab+w.l1]
				for l := range h {
					h[l] = false
				}
			} else {
				for m := fire; m != 0; m &= m - 1 {
					s.has[ab+bits.TrailingZeros64(m)] = false
				}
			}
			producer := int(s.arcFrom[aid])
			w.next.set(producer)
			w.mask[producer] |= fire
			if tr != nil && fire&1 != 0 {
				tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindAck,
					Cell: s.arcFrom[aid], Port: -1, Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
		if f.advance {
			for m := fire; m != 0; m &= m - 1 {
				s.srcPos[base+bits.TrailingZeros64(m)]++
			}
		}
		if f.sink {
			sb := int(s.insts[ci].sink) * B
			vb := int(f.srcArc) * B // sink records always carry srcArc
			if fire == w.all && s.laneCtrs == nil {
				vals := s.val[vb+w.l0 : vb+w.l1 : vb+w.l1]
				for l, v := range vals {
					i := sb + w.l0 + l
					s.sinkOuts[i] = appendPrealloc(s.sinkOuts[i], v, s.outCap[w.l0+l])
					s.sinkCycs[i] = appendCycPrealloc(s.sinkCycs[i], int64(cycle), s.outCap[w.l0+l])
				}
			} else {
				for m := fire; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					v := s.val[vb+l]
					s.sinkOuts[sb+l] = appendPrealloc(s.sinkOuts[sb+l], v, s.outCap[l])
					s.sinkCycs[sb+l] = appendCycPrealloc(s.sinkCycs[sb+l], int64(cycle), s.outCap[l])
					if s.laneCtrs != nil {
						s.laneCtrs[l].Arrivals.Add(1)
					}
				}
			}
			if s.prog != nil {
				s.prog.Arrivals.Add(int64(bits.OnesCount64(fire)))
			}
		}
		if w.traced && s.trc != nil && f.prod&1 != 0 {
			switch {
			case f.srcArc >= 0:
				s.trc(cycle, s.insts[ci].node, s.val[int(f.srcArc)*B])
			case f.inPlace:
				s.trc(cycle, s.insts[ci].node, s.val[int(w.arcIDs[f.p0])*B])
			default:
				s.trc(cycle, s.insts[ci].node, w.outVals[f.v0])
			}
		}
	}
	for i := range plans {
		f := &plans[i]
		prod := f.prod
		if prod == 0 {
			continue
		}
		dense := prod == w.all
		for _, aid := range w.arcIDs[f.p0:f.p1] {
			ab := int(aid) * B
			switch {
			case f.inPlace:
				// values are already in the arc slots; just raise has
				if dense {
					h := s.has[ab+w.l0 : ab+w.l1]
					for l := range h {
						h[l] = true
					}
				} else {
					for m := prod; m != 0; m &= m - 1 {
						s.has[ab+bits.TrailingZeros64(m)] = true
					}
				}
			case dense && f.srcArc >= 0:
				vb := int(f.srcArc) * B
				copy(s.val[ab+w.l0:ab+w.l1], s.val[vb+w.l0:vb+w.l1])
				h := s.has[ab+w.l0 : ab+w.l1]
				for l := range h {
					h[l] = true
				}
			case dense:
				copy(s.val[ab+w.l0:ab+w.l1], w.outVals[int(f.v0)+w.l0:int(f.v0)+w.l1])
				h := s.has[ab+w.l0 : ab+w.l1]
				for l := range h {
					h[l] = true
				}
			case f.srcArc >= 0:
				vb := int(f.srcArc) * B
				for m := prod; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					s.has[ab+l] = true
					s.val[ab+l] = s.val[vb+l]
				}
			default:
				for m := prod; m != 0; m &= m - 1 {
					l := bits.TrailingZeros64(m)
					s.has[ab+l] = true
					s.val[ab+l] = w.outVals[int(f.v0)+l]
				}
			}
			to := int(s.arcTo[aid])
			w.next.set(to)
			w.mask[to] |= prod
			if tr != nil && prod&1 != 0 {
				tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindToken,
					Cell: s.arcTo[aid], Port: s.arcPort[aid], Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
	}
	w.cand, w.next = w.next, w.cand
}

// drainLane mirrors the scalar drainState for one lane.
func (s *bsim) drainLane(l int) (bool, []string) {
	var stalled []string
	B := s.B
	for _, n := range s.g.Nodes() {
		switch n.Op {
		case graph.OpSource:
			stream := s.insts[n.ID].streams[l]
			if pos := int(s.srcPos[int(n.ID)*B+l]); pos < len(stream) {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d stream values unsent",
					n.Name(), len(stream)-pos, len(stream)))
			}
		case graph.OpCtlGen:
			if t := n.Pattern.Len(); t >= 0 && int(s.srcPos[int(n.ID)*B+l]) < t {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d control values unsent",
					n.Name(), t-int(s.srcPos[int(n.ID)*B+l]), t))
			}
		}
	}
	for _, a := range s.g.Arcs() {
		if slot := a.ID*B + l; s.has[slot] {
			stalled = append(stalled, fmt.Sprintf("token %s stranded on arc %s -> %s port %d",
				s.val[slot], s.g.Node(a.From).Name(), s.g.Node(a.To).Name(), a.ToPort))
		}
	}
	return len(stalled) == 0, stalled
}

// assemble builds the batched Result: top-level fields are lane 0's view,
// Lanes carries every lane's.
func (s *bsim) assemble(opt Options) (*Result, error) {
	nn := s.g.NumNodes()
	res := &Result{
		Graph: s.g,
		Batch: s.B,
		Lanes: make([]LaneResult, s.B),
	}
	anyCanceled, anyMaxed := false, false
	for l := 0; l < s.B; l++ {
		lr := &res.Lanes[l]
		lr.Cycles = s.laneCycles[l]
		lr.Firings = make([]int, nn)
		for i := 0; i < nn; i++ {
			lr.Firings[i] = s.frns[i*s.B+l]
		}
		lr.Outputs = make(map[string][]value.Value, len(s.sinkLabels))
		lr.Arrivals = make(map[string][]Arrival, len(s.sinkLabels))
		for k, label := range s.sinkLabels {
			outs := s.sinkOuts[k*s.B+l]
			cycs := s.sinkCycs[k*s.B+l]
			var arrs []Arrival
			if outs != nil { // nil stays nil: a silent sink has no arrivals
				arrs = make([]Arrival, len(outs))
				for i := range outs {
					arrs[i] = Arrival{Cycle: int(cycs[i]), Val: outs[i]}
				}
			}
			lr.Outputs[label] = outs
			lr.Arrivals[label] = arrs
		}
		lr.Canceled = s.laneCanceled[l]
		lr.Clean, lr.Stalled = s.drainLane(l)
		anyCanceled = anyCanceled || s.laneCanceled[l]
		anyMaxed = anyMaxed || s.laneMaxed[l]
	}
	l0 := &res.Lanes[0]
	res.Cycles = l0.Cycles
	res.Firings = l0.Firings
	res.Outputs = l0.Outputs
	res.Arrivals = l0.Arrivals
	res.Clean = l0.Clean
	res.Stalled = l0.Stalled
	// Decorate canceled lane views after the top-level copy so the
	// top-level diagnostic is prepended exactly once (by markCanceled).
	for l := 0; l < s.B; l++ {
		if s.laneCanceled[l] {
			lr := &res.Lanes[l]
			lr.Clean = false
			lr.Stalled = append([]string{fmt.Sprintf(
				"canceled: run stopped by context at cycle %d before quiescence", lr.Cycles)},
				lr.Stalled...)
		}
	}
	if anyCanceled {
		cancelCycle := 0
		for l := 0; l < s.B; l++ {
			if s.laneCanceled[l] && s.laneCycles[l] > cancelCycle {
				cancelCycle = s.laneCycles[l]
			}
		}
		if s.laneCanceled[0] {
			cancelCycle = s.laneCycles[0]
		}
		return markCanceled(res, cancelCycle, opt.Ctx)
	}
	if anyMaxed {
		return res, fmt.Errorf("exec: no quiescence after %d cycles (livelock or MaxCycles too small)", s.maxCycles)
	}
	return res, nil
}
