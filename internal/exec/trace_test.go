package exec

import (
	"reflect"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Tracing must be strictly passive: the same graph run with and without a
// tracer attached produces identical cycle counts, firing counts, outputs,
// and arrival times.
func TestTracingZeroPerturbation(t *testing.T) {
	build := func() *graph.Graph {
		// An unbalanced reconvergent graph, so stall classification paths
		// (operand-wait and ack-wait) are both exercised.
		g := graph.New()
		vals := make([]float64, 96)
		for i := range vals {
			vals[i] = float64(i) * 0.25
		}
		src := g.AddSource("in", value.Reals(vals))
		id1 := g.Add(graph.OpID, "")
		id2 := g.Add(graph.OpID, "")
		add := g.Add(graph.OpAdd, "")
		g.Connect(src, id1, 0)
		g.Connect(id1, id2, 0)
		g.Connect(id2, add, 0)
		g.Connect(src, add, 1)
		g.Connect(add, g.AddSink("out"), 0)
		return g
	}

	plain, err := Run(build(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Attach the full live-telemetry stack: a concurrent-snapshot sink, the
	// plain aggregator, a ring, and a progress counter. None of it may
	// perturb the simulation.
	tr := trace.Multi{trace.NewLive(), trace.NewMetrics(), trace.NewRing(64)}
	prog := &trace.Progress{}
	traced, err := Run(build(), Options{Tracer: tr, Progress: prog})
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Cycle.Load(); got != int64(traced.Cycles) {
		t.Errorf("progress cycle = %d, want final cycle %d", got, traced.Cycles)
	}

	if plain.Cycles != traced.Cycles {
		t.Errorf("cycles: %d with nil tracer, %d traced", plain.Cycles, traced.Cycles)
	}
	if !reflect.DeepEqual(plain.Firings, traced.Firings) {
		t.Errorf("firing counts diverge:\nnil:    %v\ntraced: %v", plain.Firings, traced.Firings)
	}
	if !reflect.DeepEqual(plain.Outputs, traced.Outputs) {
		t.Errorf("outputs diverge")
	}
	if !reflect.DeepEqual(plain.Arrivals, traced.Arrivals) {
		t.Errorf("arrival times diverge")
	}
	if plain.Clean != traced.Clean {
		t.Errorf("clean: %v vs %v", plain.Clean, traced.Clean)
	}
}

// The metrics recorded by the tracer must agree with the simulator's own
// firing counts.
func TestTracingMatchesFirings(t *testing.T) {
	g, _ := fig2(32)
	m := trace.NewMetrics()
	res, err := Run(g, Options{Tracer: m})
	if err != nil {
		t.Fatal(err)
	}
	for id, want := range res.Firings {
		if id >= len(m.Cells) {
			if want != 0 {
				t.Fatalf("cell %d fired %d times but has no metrics", id, want)
			}
			continue
		}
		if got := m.Cells[id].Firings; got != int64(want) {
			t.Errorf("cell %s: tracer saw %d firings, simulator counted %d",
				res.Graph.Node(graph.NodeID(id)).Name(), got, want)
		}
	}
}

func benchGraph(n int) *graph.Graph {
	g := graph.New()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	prev := g.AddSource("in", value.Reals(vals))
	for s := 0; s < 16; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)
	return g
}

// BenchmarkRunNilTracer is the disabled-tracing fast path: the only cost of
// the instrumentation is a nil check per potential event. Compare against
// BenchmarkRunMetricsTracer to see the enabled cost.
func BenchmarkRunNilTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGraph(256)
		b.StartTimer()
		if _, err := Run(g, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunMetricsTracer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := benchGraph(256)
		b.StartTimer()
		if _, err := Run(g, Options{Tracer: trace.NewMetrics()}); err != nil {
			b.Fatal(err)
		}
	}
}
