package exec

import (
	"fmt"
	"sync"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// Prepared is a graph readied for repeated execution: validated and
// FIFO-expanded exactly once, with a free-list pool of sequential-engine
// run state (arc slots, candidate bitsets, plan arenas) so a run over a
// warm Prepared allocates near nothing before its first cycle.
//
// A Prepared is immutable after construction and safe for concurrent Run
// calls — this is the execution half of the artifact-cache contract: one
// compiled artifact, shared across goroutines, bound to per-run inputs via
// Options.Inputs instead of graph mutation.
type Prepared struct {
	g    *graph.Graph
	pool sync.Pool // *sim, scratch sized for g
}

// Prepare validates g and expands its FIFO cells, returning the reusable
// execution artifact. The expansion work (and its allocation) is paid here
// once instead of on every Run.
func Prepare(g *graph.Graph) (*Prepared, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	eg := g.ExpandFIFOs()
	if err := eg.Validate(); err != nil {
		return nil, fmt.Errorf("exec: expanded graph invalid: %w", err)
	}
	return &Prepared{g: eg}, nil
}

// Graph returns the validated, FIFO-expanded graph the Prepared runs.
// Callers must treat it as read-only.
func (p *Prepared) Graph() *graph.Graph { return p.g }

// getSim draws sequential-engine run state from the pool (or builds it on
// a cold pool) and resets it for one run. State that escapes into the
// Result — firings, output and arrival maps — is always allocated fresh;
// only the non-escaping scratch is pooled.
func (p *Prepared) getSim(opt Options) *sim {
	g := p.g
	s, _ := p.pool.Get().(*sim)
	if s == nil {
		s = &sim{
			g:        g,
			streams:  make([][]value.Value, g.NumNodes()),
			arcHas:   make([]bool, g.NumArcs()),
			arcVal:   make([]value.Value, g.NumArcs()),
			srcPos:   make([]int, g.NumNodes()),
			cand:     newBitset(g.NumNodes()),
			nextCand: newBitset(g.NumNodes()),
		}
	} else {
		// arcVal and the plan arenas may hold stale data; both are
		// write-before-read (value.Value carries no pointers, so stale
		// entries pin nothing). The candidate set is fully re-seeded by the
		// run prologue, which marks every cell.
		clear(s.arcHas)
		clear(s.srcPos)
	}
	s.firings = make([]int, g.NumNodes())
	s.outs = map[string][]value.Value{}
	s.arrs = map[string][]Arrival{}
	s.outCap = 0
	s.trace, s.tr, s.prog = opt.Trace, opt.Tracer, opt.Progress
	return s
}

// putSim returns run state to the pool, dropping every reference that
// would otherwise pin caller inputs, per-run results, or tracer sinks in
// the free list. The scratch arenas keep their capacity — that reuse is
// the point of the pool.
func (p *Prepared) putSim(s *sim) {
	clear(s.streams)
	s.firings, s.outs, s.arrs = nil, nil, nil
	s.trace, s.tr, s.prog = nil, nil, nil
	p.pool.Put(s)
}

// resolveStreams binds each source cell's stream for one run: the stream
// compiled into the graph unless inputs overrides it by label. Resolution
// writes only buf (reused when its capacity allows), never the graph, so
// concurrent runs of one graph cannot race on input binding.
func resolveStreams(g *graph.Graph, inputs map[string][]value.Value, buf [][]value.Value) ([][]value.Value, error) {
	nn := g.NumNodes()
	if cap(buf) < nn {
		buf = make([][]value.Value, nn)
	}
	buf = buf[:nn]
	matched := 0
	for _, n := range g.Nodes() {
		if n.Op != graph.OpSource {
			buf[n.ID] = nil
			continue
		}
		buf[n.ID] = n.Stream
		if inputs != nil {
			if sv, ok := inputs[n.Label]; ok {
				buf[n.ID] = sv
				matched++
			}
		}
	}
	if matched < len(inputs) {
		srcLabels := make(map[string]bool)
		for _, n := range g.Nodes() {
			if n.Op == graph.OpSource {
				srcLabels[n.Label] = true
			}
		}
		for label := range inputs {
			if !srcLabels[label] {
				return nil, fmt.Errorf("exec: input %q names no source cell", label)
			}
		}
	}
	return buf, nil
}
