// Package exec simulates machine-level instruction graphs at the level of
// the static dataflow firing discipline (Dennis & Gao, CSG Memo 233, §3).
//
// Time is discrete. At each cycle every enabled cell fires simultaneously:
// it consumes the tokens on its operand arcs and the results appear on its
// destination arcs one cycle later. A cell is enabled when all required
// operands are present AND every destination arc it is about to write is
// empty — the emptiness condition is the acknowledge discipline (an arc is
// emptied exactly when its consumer fires, which is when the acknowledge
// packet would arrive).
//
// This model makes the paper's timing facts theorems of the simulator:
//
//   - a producer/consumer pair alternates, so each cell fires at most once
//     per two cycles ("about two instruction times");
//   - a fully pipelined graph sustains an initiation interval (II) of 2;
//   - a directed cycle of L cells carrying k tokens runs at II = L/k
//     (Todd's 3-cell for-iter loop: II = 3; the companion-function 4-cell
//     loop with two circulating values: II = 2).
package exec

import (
	"fmt"
	"sort"
	"strings"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Options configures a simulation run.
type Options struct {
	// MaxCycles bounds the run; 0 means DefaultMaxCycles. Exceeding the
	// bound returns an error (a live graph fed finite streams always
	// quiesces, so hitting the bound indicates a livelock or a bound that
	// is simply too small for the stream length).
	MaxCycles int
	// Trace, if non-nil, receives one line per firing (debugging aid).
	Trace func(cycle int, node *graph.Node, out value.Value)
	// Tracer, if non-nil, receives the structured observability event
	// stream (firings, token/ack arrivals, stall classifications). Tracing
	// is passive: it never alters scheduling, results, or cycle counts.
	Tracer trace.Tracer
}

// DefaultMaxCycles bounds runs when Options.MaxCycles is zero.
const DefaultMaxCycles = 10_000_000

// Arrival records one value reaching a sink and the cycle it arrived.
type Arrival struct {
	Cycle int
	Val   value.Value
}

// Result holds the outcome of a simulation run.
type Result struct {
	// Cycles is the cycle count until quiescence (no cell enabled).
	Cycles int
	// Firings counts how many times each cell fired, indexed by NodeID of
	// the simulated (FIFO-expanded) graph.
	Firings []int
	// Outputs holds each sink's received stream, keyed by sink label.
	Outputs map[string][]value.Value
	// Arrivals holds each sink's arrival times, keyed by sink label.
	Arrivals map[string][]Arrival
	// Clean reports whether the graph drained completely: all sources
	// exhausted, no token left on any arc. A false value with non-empty
	// Stalled means the pipeline jammed or starved.
	Clean bool
	// Stalled lists diagnostics for cells left with partial state.
	Stalled []string
	// Graph is the graph actually simulated (FIFO cells expanded into
	// identity chains).
	Graph *graph.Graph
}

// Output returns the stream received by the sink with the given label.
func (r *Result) Output(label string) []value.Value { return r.Outputs[label] }

// II returns the steady-state initiation interval observed at the given
// sink: the average cycle gap between consecutive arrivals over the middle
// half of the stream, which excludes pipeline fill and drain transients.
// It returns 0 if fewer than two values arrived.
func (r *Result) II(label string) float64 {
	arr := r.Arrivals[label]
	if len(arr) < 2 {
		return 0
	}
	lo, hi := 0, len(arr)-1
	if len(arr) >= 8 {
		lo, hi = len(arr)/4, 3*len(arr)/4
	}
	return float64(arr[hi].Cycle-arr[lo].Cycle) / float64(hi-lo)
}

// FullyPipelined reports whether the sink sustained the maximum rate of one
// result per two instruction times (§3).
func (r *Result) FullyPipelined(label string) bool {
	ii := r.II(label)
	return ii > 0 && ii <= 2.0+1e-9
}

// sim is the mutable machine state.
type sim struct {
	g       *graph.Graph
	arcTok  []*value.Value // token (or nil) per arc ID
	srcPos  []int          // next stream index per node ID (sources/ctlgens)
	ctlPos  []int
	firings []int
	outs    map[string][]value.Value
	arrs    map[string][]Arrival
	trace   func(int, *graph.Node, value.Value)
	tr      trace.Tracer

	// candidate tracking: a cell's enabledness only changes when one of
	// its input arcs fills or one of its output arcs drains.
	cand     map[graph.NodeID]bool
	nextCand map[graph.NodeID]bool
}

// firing is a cell's planned effect, computed against the start-of-cycle
// snapshot and applied after all cells have been examined.
type firing struct {
	node     *graph.Node
	consume  []int // arc IDs to clear
	produce  []int // arc IDs to fill
	out      value.Value
	sink     bool
	advance  bool // sources and control generators advance their position
	produced bool // whether out is meaningful (gates may discard)
}

// Run simulates the graph until no cell is enabled and returns the result.
func Run(g *graph.Graph, opt Options) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.ExpandFIFOs()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("exec: expanded graph invalid: %w", err)
	}
	maxCycles := opt.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	s := &sim{
		g:        g,
		arcTok:   make([]*value.Value, g.NumArcs()),
		srcPos:   make([]int, g.NumNodes()),
		firings:  make([]int, g.NumNodes()),
		outs:     map[string][]value.Value{},
		arrs:     map[string][]Arrival{},
		trace:    opt.Trace,
		tr:       opt.Tracer,
		cand:     map[graph.NodeID]bool{},
		nextCand: map[graph.NodeID]bool{},
	}
	if s.tr != nil {
		names := make([]string, g.NumNodes())
		for _, n := range g.Nodes() {
			names[n.ID] = n.Name()
		}
		s.tr.Start(trace.Meta{Cells: names})
	}
	for _, a := range g.Arcs() {
		if a.Init != nil {
			tok := *a.Init
			s.arcTok[a.ID] = &tok
		}
	}
	for _, n := range g.Nodes() {
		s.cand[n.ID] = true
		if n.Op == graph.OpSink {
			if _, dup := s.outs[n.Label]; dup {
				return nil, fmt.Errorf("exec: duplicate sink label %q", n.Label)
			}
			s.outs[n.Label] = nil
			s.arrs[n.Label] = nil
		}
	}

	cycle := 0
	for ; cycle < maxCycles; cycle++ {
		plans := s.collect()
		if len(plans) == 0 {
			break
		}
		if s.tr != nil {
			s.emitStalls(cycle, plans)
		}
		s.apply(cycle, plans)
	}
	if cycle >= maxCycles {
		return nil, fmt.Errorf("exec: no quiescence after %d cycles (livelock or MaxCycles too small)", maxCycles)
	}

	res := &Result{
		Cycles:   cycle,
		Firings:  s.firings,
		Outputs:  s.outs,
		Arrivals: s.arrs,
		Graph:    g,
	}
	res.Clean, res.Stalled = s.drainState()
	return res, nil
}

// collect examines candidate cells against the current snapshot and returns
// the firing plans of all enabled cells in deterministic (NodeID) order.
func (s *sim) collect() []firing {
	ids := make([]int, 0, len(s.cand))
	for id := range s.cand {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	var plans []firing
	for _, id := range ids {
		n := s.g.Node(graph.NodeID(id))
		if f, why := s.plan(n); why == trace.ReasonNone {
			plans = append(plans, f)
		}
	}
	return plans
}

// emitStalls classifies every cell that will not fire this cycle and emits
// one stall event per waiting cell (tracing only; plan is side-effect
// free, so this pass cannot perturb the run).
func (s *sim) emitStalls(cycle int, plans []firing) {
	firing := make(map[graph.NodeID]bool, len(plans))
	for _, f := range plans {
		firing[f.node.ID] = true
	}
	for _, n := range s.g.Nodes() {
		if firing[n.ID] {
			continue
		}
		if _, why := s.plan(n); why == trace.ReasonOperandWait || why == trace.ReasonAckWait {
			s.tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindStall,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1, Reason: why,
			})
		}
	}
}

// operand returns the value on port p of n, or nil if absent.
func (s *sim) operand(n *graph.Node, p int) *value.Value {
	in := n.In[p]
	if in.Literal != nil {
		return in.Literal
	}
	if in.Arc == nil {
		return nil
	}
	return s.arcTok[in.Arc.ID]
}

// consumeArc appends port p's arc (if any) to the consume list.
func consumeArc(n *graph.Node, p int, consume []int) []int {
	if a := n.In[p].Arc; a != nil {
		return append(consume, a.ID)
	}
	return consume
}

// plan decides whether cell n can fire now and, if so, what its effects
// are. The returned reason is trace.ReasonNone when the cell is enabled and
// otherwise classifies the stall (used by the observability layer; plan is
// side-effect free either way).
func (s *sim) plan(n *graph.Node) (firing, trace.Reason) {
	f := firing{node: n}

	// Phase 1: operand availability and result computation.
	switch n.Op {
	case graph.OpSource:
		if s.srcPos[n.ID] >= len(n.Stream) {
			return f, trace.ReasonDone
		}
		f.out = n.Stream[s.srcPos[n.ID]]
		f.advance = true
		f.produced = true

	case graph.OpCtlGen:
		total := n.Pattern.Len()
		if total >= 0 && s.srcPos[n.ID] >= total {
			return f, trace.ReasonDone
		}
		f.out = value.B(n.Pattern.At(s.srcPos[n.ID]))
		f.advance = true
		f.produced = true

	case graph.OpSink:
		v := s.operand(n, 0)
		if v == nil {
			return f, trace.ReasonOperandWait
		}
		f.out = *v
		f.sink = true
		f.consume = consumeArc(n, 0, f.consume)

	case graph.OpMerge:
		ctl := s.operand(n, 0)
		if ctl == nil {
			return f, trace.ReasonOperandWait
		}
		sel := 2
		if ctl.AsBool() {
			sel = 1
		}
		v := s.operand(n, sel)
		if v == nil {
			return f, trace.ReasonOperandWait
		}
		// extra control ports (gates) must also be present
		for p := 3; p < len(n.In); p++ {
			if s.operand(n, p) == nil {
				return f, trace.ReasonOperandWait
			}
		}
		f.out = *v
		f.produced = true
		f.consume = consumeArc(n, 0, f.consume)
		f.consume = consumeArc(n, sel, f.consume)
		for p := 3; p < len(n.In); p++ {
			f.consume = consumeArc(n, p, f.consume)
		}

	case graph.OpTGate, graph.OpFGate:
		ctl := s.operand(n, 0)
		data := s.operand(n, 1)
		if ctl == nil || data == nil {
			return f, trace.ReasonOperandWait
		}
		for p := 2; p < len(n.In); p++ {
			if s.operand(n, p) == nil {
				return f, trace.ReasonOperandWait
			}
		}
		pass := ctl.AsBool()
		if n.Op == graph.OpFGate {
			pass = !pass
		}
		f.out = *data
		f.produced = pass // false: discard, consuming both operands
		for p := 0; p < len(n.In); p++ {
			f.consume = consumeArc(n, p, f.consume)
		}

	default: // ordinary operator and identity cells
		vals := make([]value.Value, len(n.In))
		for p := range n.In {
			v := s.operand(n, p)
			if v == nil {
				return f, trace.ReasonOperandWait
			}
			vals[p] = *v
		}
		f.out = ApplyOp(n.Op, vals)
		f.produced = true
		for p := range n.In {
			f.consume = consumeArc(n, p, f.consume)
		}
	}

	// Phase 2: destination availability. Every arc this firing will write
	// must be empty (its previous token acknowledged). Gated arcs are
	// written only when their gate operand is true.
	if f.produced {
		for _, a := range n.Out {
			write := true
			if a.Gate != graph.NoGate {
				gv := s.operand(n, a.Gate)
				if gv == nil {
					return f, trace.ReasonOperandWait // gate operand itself not ready
				}
				write = gv.AsBool()
			}
			if write {
				if s.arcTok[a.ID] != nil {
					return f, trace.ReasonAckWait
				}
				f.produce = append(f.produce, a.ID)
			}
		}
	}
	return f, trace.ReasonNone
}

// ApplyOp evaluates an ordinary (non-gate, non-merge) operator cell; it is
// shared with the packet-level machine simulator.
func ApplyOp(op graph.Op, v []value.Value) value.Value {
	switch op {
	case graph.OpID:
		return v[0]
	case graph.OpAdd:
		return value.Add(v[0], v[1])
	case graph.OpSub:
		return value.Sub(v[0], v[1])
	case graph.OpMul:
		return value.Mul(v[0], v[1])
	case graph.OpDiv:
		return value.Div(v[0], v[1])
	case graph.OpMin:
		return value.Min(v[0], v[1])
	case graph.OpMax:
		return value.Max(v[0], v[1])
	case graph.OpNeg:
		return value.Neg(v[0])
	case graph.OpAbs:
		return value.Abs(v[0])
	case graph.OpLT:
		return value.LT(v[0], v[1])
	case graph.OpLE:
		return value.LE(v[0], v[1])
	case graph.OpGT:
		return value.GT(v[0], v[1])
	case graph.OpGE:
		return value.GE(v[0], v[1])
	case graph.OpEQ:
		return value.EQ(v[0], v[1])
	case graph.OpNE:
		return value.NE(v[0], v[1])
	case graph.OpAnd:
		return value.And(v[0], v[1])
	case graph.OpOr:
		return value.Or(v[0], v[1])
	case graph.OpNot:
		return value.Not(v[0])
	default:
		panic(fmt.Sprintf("exec: ApplyOp on %s", op))
	}
}

// apply commits the cycle's firings and updates the candidate set.
func (s *sim) apply(cycle int, plans []firing) {
	clear(s.nextCand)
	for _, f := range plans {
		n := f.node
		s.firings[n.ID]++
		s.nextCand[n.ID] = true
		if s.tr != nil {
			s.tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindFiring,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1,
			})
		}
		for _, aid := range f.consume {
			s.arcTok[aid] = nil
			// the producer of a drained arc may now be enabled
			producer := s.g.Arcs()[aid].From
			s.nextCand[producer] = true
			if s.tr != nil {
				// draining the arc is the moment the acknowledge packet
				// would reach the producer
				s.tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindAck,
					Cell: int32(producer), Port: -1, Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
		if f.advance {
			s.srcPos[n.ID]++
		}
		if f.sink {
			s.outs[n.Label] = append(s.outs[n.Label], f.out)
			s.arrs[n.Label] = append(s.arrs[n.Label], Arrival{Cycle: cycle, Val: f.out})
		}
		if s.trace != nil && f.produced {
			s.trace(cycle, n, f.out)
		}
	}
	for _, f := range plans {
		tok := f.out
		for _, aid := range f.produce {
			s.arcTok[aid] = &tok
			a := s.g.Arcs()[aid]
			s.nextCand[a.To] = true
			if s.tr != nil {
				s.tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindToken,
					Cell: int32(a.To), Port: int32(a.ToPort), Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
	}
	s.cand, s.nextCand = s.nextCand, s.cand
}

// drainState reports whether the quiescent machine is fully drained and
// lists diagnostics for any leftover state.
func (s *sim) drainState() (bool, []string) {
	var stalled []string
	for _, n := range s.g.Nodes() {
		switch n.Op {
		case graph.OpSource:
			if s.srcPos[n.ID] < len(n.Stream) {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d stream values unsent",
					n.Name(), len(n.Stream)-s.srcPos[n.ID], len(n.Stream)))
			}
		case graph.OpCtlGen:
			if t := n.Pattern.Len(); t >= 0 && s.srcPos[n.ID] < t {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d control values unsent",
					n.Name(), t-s.srcPos[n.ID], t))
			}
		}
	}
	for _, a := range s.g.Arcs() {
		if s.arcTok[a.ID] != nil {
			stalled = append(stalled, fmt.Sprintf("token %s stranded on arc %s -> %s port %d",
				s.arcTok[a.ID], s.g.Node(a.From).Name(), s.g.Node(a.To).Name(), a.ToPort))
		}
	}
	return len(stalled) == 0, stalled
}

// Describe summarizes a result for reports and error messages.
func Describe(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d clean=%v\n", r.Cycles, r.Clean)
	labels := make([]string, 0, len(r.Outputs))
	for l := range r.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "sink %q: %d values, II=%.3f\n", l, len(r.Outputs[l]), r.II(l))
	}
	for _, d := range r.Stalled {
		fmt.Fprintf(&b, "stall: %s\n", d)
	}
	return b.String()
}
