// Package exec simulates machine-level instruction graphs at the level of
// the static dataflow firing discipline (Dennis & Gao, CSG Memo 233, §3).
//
// Time is discrete. At each cycle every enabled cell fires simultaneously:
// it consumes the tokens on its operand arcs and the results appear on its
// destination arcs one cycle later. A cell is enabled when all required
// operands are present AND every destination arc it is about to write is
// empty — the emptiness condition is the acknowledge discipline (an arc is
// emptied exactly when its consumer fires, which is when the acknowledge
// packet would arrive).
//
// This model makes the paper's timing facts theorems of the simulator:
//
//   - a producer/consumer pair alternates, so each cell fires at most once
//     per two cycles ("about two instruction times");
//   - a fully pipelined graph sustains an initiation interval (II) of 2;
//   - a directed cycle of L cells carrying k tokens runs at II = L/k
//     (Todd's 3-cell for-iter loop: II = 3; the companion-function 4-cell
//     loop with two circulating values: II = 2).
//
// The inner loop is event-driven: a cell is re-examined only when one of
// its input arcs fills or one of its output arcs drains (a dense ready
// bitset, not a per-cycle scan of all cells), token state lives in flat
// slices indexed by arc ID, and per-cycle firing plans are carved out of
// reusable arenas, so steady-state simulation performs no allocation.
package exec

import (
	"context"
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"staticpipe/internal/graph"
	"staticpipe/internal/partition"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Options configures a simulation run.
type Options struct {
	// MaxCycles bounds the run; 0 means DefaultMaxCycles. Exceeding the
	// bound returns an error (a live graph fed finite streams always
	// quiesces, so hitting the bound indicates a livelock or a bound that
	// is simply too small for the stream length). The partial Result —
	// firings, outputs produced so far, and the Stalled diagnostics — is
	// returned alongside the error.
	MaxCycles int
	// Trace, if non-nil, receives one line per firing (debugging aid).
	Trace func(cycle int, node *graph.Node, out value.Value)
	// Tracer, if non-nil, receives the structured observability event
	// stream (firings, token/ack arrivals, stall classifications). Tracing
	// is passive: it never alters scheduling, results, or cycle counts.
	Tracer trace.Tracer
	// Progress, if non-nil, is updated live as the run advances (one
	// atomic store per cycle, one add per sink arrival) so another
	// goroutine — the telemetry server — can observe cycle progress
	// mid-run. Like Tracer it is passive and costs one nil check when
	// unset.
	Progress *trace.Progress
	// Workers selects the sharded parallel engine: the graph is
	// partitioned into min(Workers, cells) load-balanced shards, each
	// owned by one goroutine, synchronized once per instruction time.
	// 0 or 1 runs the sequential engine. Every observable outcome —
	// outputs, arrival cycles, firings, stall diagnostics, and the trace
	// event stream — is byte-identical for any worker count.
	Workers int
	// Ctx, if non-nil, cancels the run early: the loop polls Ctx.Done()
	// every CancelCadence cycles (the Progress-counter cadence bounds how
	// stale the poll can be) and, when fired, returns the partial Result —
	// outputs and firings so far, Canceled set, a "canceled" stall
	// diagnostic — together with a wrapping error. A nil Ctx costs one nil
	// check per cadence window, preserving the zero-perturbation
	// guarantee; an un-canceled Ctx never alters results or cycle counts.
	Ctx context.Context
	// Batch widens the run to B independent token lanes advancing through
	// one compiled graph in a single Run: every arc slot, source position,
	// and firing counter is replicated per lane (structure-of-arrays,
	// lane-minor), so the per-cycle candidate walk and instruction decode
	// are paid once per batch instead of once per stream. 0 or 1 runs the
	// scalar engine; at most MaxBatch lanes (the candidate set keeps one
	// 64-bit lane mask per cell). Lane 0 always consumes the streams bound
	// on the graph and is byte-identical to a scalar run — outputs,
	// arrival cycles, firings, stall diagnostics, and the lane-0 trace
	// event stream all match. When Batch > 1, Workers shards the run by
	// contiguous lane ranges instead of by graph partition: lanes never
	// interact, so the workers need no barriers and determinism holds by
	// construction.
	Batch int
	// LaneInputs supplies per-lane source streams for a batched run,
	// keyed by source-cell label (the declared input name): LaneInputs[l]
	// feeds lane l. A nil entry, a missing key, and always lane 0 fall
	// back to the base streams (Inputs, or the streams bound on the
	// graph). len(LaneInputs) must not exceed Batch.
	LaneInputs []map[string][]value.Value
	// Inputs, when non-nil, overrides source streams by source-cell label
	// (the declared input name) for this run only: the compiled graph is
	// never written, so one graph — in particular one cached Prepared
	// artifact — can run concurrently with different inputs. A missing
	// key falls back to the stream bound on the graph; a key naming no
	// source cell is an error. In a batched run Inputs is the base every
	// lane defaults to and LaneInputs overrides per lane.
	Inputs map[string][]value.Value
}

// CancelCadence is how many simulated cycles pass between polls of
// Options.Ctx (a power of two so the check is a mask). Cancellation of an
// in-flight run is observed within at most this many cycles.
const CancelCadence = 1024

// DefaultMaxCycles bounds runs when Options.MaxCycles is zero.
const DefaultMaxCycles = 10_000_000

// Arrival records one value reaching a sink and the cycle it arrived.
type Arrival struct {
	Cycle int
	Val   value.Value
}

// Result holds the outcome of a simulation run.
type Result struct {
	// Cycles is the cycle count until quiescence (no cell enabled).
	Cycles int
	// Firings counts how many times each cell fired, indexed by NodeID of
	// the simulated (FIFO-expanded) graph.
	Firings []int
	// Outputs holds each sink's received stream, keyed by sink label.
	Outputs map[string][]value.Value
	// Arrivals holds each sink's arrival times, keyed by sink label.
	Arrivals map[string][]Arrival
	// Clean reports whether the graph drained completely: all sources
	// exhausted, no token left on any arc. A false value with non-empty
	// Stalled means the pipeline jammed or starved.
	Clean bool
	// Canceled reports that Options.Ctx fired before quiescence; the
	// Result carries whatever the run produced up to the cancellation
	// cycle, and Stalled leads with a "canceled" diagnostic.
	Canceled bool
	// Stalled lists diagnostics for cells left with partial state.
	Stalled []string
	// Graph is the graph actually simulated (FIFO cells expanded into
	// identity chains).
	Graph *graph.Graph
	// Shards holds per-shard accounting when the run used the sharded
	// engine (Options.Workers > 1); nil for sequential runs.
	Shards []partition.ShardStat
	// ShardDiag lists shard/ring diagnostics captured when a sharded run
	// halted without quiescing, naming where work was still pending. It
	// is separate from Stalled so stall diagnostics stay byte-identical
	// across worker counts.
	ShardDiag []string
	// Batch is the lane count of a batched run (0 for scalar runs).
	Batch int
	// Lanes holds per-lane views of a batched run (nil for scalar runs).
	// Lanes[0] describes the same lane as the top-level fields, which
	// always report lane 0 so existing consumers observe exactly what a
	// scalar run would have produced.
	Lanes []LaneResult
}

// Output returns the stream received by the sink with the given label.
func (r *Result) Output(label string) []value.Value { return r.Outputs[label] }

// SteadyII returns the steady-state initiation interval of an arrival
// stream: the average cycle gap between consecutive arrivals over a window
// chosen to exclude transients. With at least 8 samples the window is the
// middle half of the stream, excluding both the pipeline fill and drain
// transients; with 4–7 samples only the fill prefix (the first quarter) is
// skipped — there are too few samples to also trim the tail; with 2–3
// samples the whole stream is the window. It returns 0 for fewer than two
// arrivals.
func SteadyII(arr []Arrival) float64 {
	if len(arr) < 2 {
		return 0
	}
	lo, hi := 0, len(arr)-1
	switch {
	case len(arr) >= 8:
		lo, hi = len(arr)/4, 3*len(arr)/4
	case len(arr) >= 4:
		lo = len(arr) / 4
	}
	return float64(arr[hi].Cycle-arr[lo].Cycle) / float64(hi-lo)
}

// II returns the steady-state initiation interval observed at the given
// sink (see SteadyII for the measurement window).
func (r *Result) II(label string) float64 { return SteadyII(r.Arrivals[label]) }

// FullyPipelined reports whether the sink sustained the maximum rate of one
// result per two instruction times (§3).
func (r *Result) FullyPipelined(label string) bool {
	ii := r.II(label)
	return ii > 0 && ii <= 2.0+1e-9
}

// bitset is a dense set of node IDs — the event-driven ready set.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) reset() {
	for i := range b {
		b[i] = 0
	}
}

// sim is the mutable machine state.
type sim struct {
	g       *graph.Graph
	streams [][]value.Value // resolved source stream per node ID (see resolveStreams)
	arcHas  []bool          // token presence per arc ID
	arcVal  []value.Value   // token value per arc ID (meaningful when arcHas)
	srcPos  []int           // next stream index per node ID (sources/ctlgens)
	firings []int
	outs    map[string][]value.Value
	arrs    map[string][]Arrival
	outCap  int // preallocation hint for sink streams (max source length)
	trace   func(int, *graph.Node, value.Value)
	tr      trace.Tracer
	prog    *trace.Progress

	// candidate tracking: a cell's enabledness only changes when one of
	// its input arcs fills or one of its output arcs drains, so only those
	// cells are re-planned each cycle.
	cand     bitset
	nextCand bitset

	// per-cycle scratch, reused across cycles: the firing plans and the
	// arena their consume/produce arc-ID runs are carved from.
	plans  []firing
	arcIDs []int
	vals   []value.Value
}

// firing is a cell's planned effect, computed against the start-of-cycle
// snapshot and applied after all cells have been examined. The consume and
// produce arc-ID runs live in the sim's arcIDs arena as [c0:c1) and
// [p0:p1) index ranges (ranges stay valid across arena growth).
type firing struct {
	node     *graph.Node
	c0, c1   int32 // arcIDs[c0:c1]: arcs to clear
	p0, p1   int32 // arcIDs[p0:p1]: arcs to fill
	out      value.Value
	sink     bool
	advance  bool // sources and control generators advance their position
	produced bool // whether out is meaningful (gates may discard)
}

// Run simulates the graph until no cell is enabled and returns the result.
// When MaxCycles is exhausted before quiescence the partial Result (with
// Stalled diagnostics populated) is returned together with the error.
//
// If Options.Ctx carries an active obs.Span, Run annotates it with the
// run's outcome and per-shard/per-lane children after the simulation loop
// has ended — never from inside it — so an attached span cannot perturb
// outputs, firing order, or cycle counts (see span.go).
func Run(g *graph.Graph, opt Options) (*Result, error) {
	p, err := Prepare(g)
	if err != nil {
		return nil, err
	}
	return p.Run(opt)
}

// Run executes the prepared graph. Safe for concurrent use: every call
// draws its mutable run state from the free-list pool (sequential engine)
// or builds it fresh (sharded/batched engines); the graph itself is only
// read. See Options.Inputs for running with per-call input streams.
func (p *Prepared) Run(opt Options) (*Result, error) {
	res, err := p.runPrepared(opt)
	annotateSpan(opt.Ctx, res, err, opt.Workers, opt.Batch)
	return res, err
}

func (p *Prepared) runPrepared(opt Options) (*Result, error) {
	g := p.g
	maxCycles := opt.MaxCycles
	if maxCycles <= 0 {
		maxCycles = DefaultMaxCycles
	}
	if b := opt.Batch; b > 1 {
		streams, err := resolveStreams(g, opt.Inputs, nil)
		if err != nil {
			return nil, err
		}
		return runBatched(g, opt, streams, maxCycles, b)
	}
	if w := opt.Workers; w > 1 {
		if w > g.NumNodes() {
			w = g.NumNodes()
		}
		if w > 1 {
			streams, err := resolveStreams(g, opt.Inputs, nil)
			if err != nil {
				return nil, err
			}
			return runSharded(g, opt, streams, maxCycles, w)
		}
	}
	s := p.getSim(opt)
	defer p.putSim(s)
	var err error
	if s.streams, err = resolveStreams(g, opt.Inputs, s.streams); err != nil {
		return nil, err
	}
	if s.tr != nil {
		names := make([]string, g.NumNodes())
		for _, n := range g.Nodes() {
			names[n.ID] = n.Name()
		}
		s.tr.Start(trace.Meta{Cells: names})
	}
	for _, a := range g.Arcs() {
		if a.Init != nil {
			s.arcHas[a.ID] = true
			s.arcVal[a.ID] = *a.Init
		}
	}
	for _, n := range g.Nodes() {
		s.cand.set(int(n.ID))
		switch n.Op {
		case graph.OpSink:
			if _, dup := s.outs[n.Label]; dup {
				return nil, fmt.Errorf("exec: duplicate sink label %q", n.Label)
			}
			s.outs[n.Label] = nil
			s.arrs[n.Label] = nil
		case graph.OpSource:
			if len(s.streams[n.ID]) > s.outCap {
				s.outCap = len(s.streams[n.ID])
			}
		}
	}

	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	canceled := false
	cycle := 0
	for ; cycle < maxCycles; cycle++ {
		if done != nil && cycle&(CancelCadence-1) == 0 {
			select {
			case <-done:
				canceled = true
			default:
			}
			if canceled {
				break
			}
		}
		if s.prog != nil {
			s.prog.Cycle.Store(int64(cycle))
		}
		plans := s.collect()
		if len(plans) == 0 {
			break
		}
		if s.tr != nil {
			s.emitStalls(cycle, plans)
		}
		s.apply(cycle, plans)
	}

	res := &Result{
		Cycles:   cycle,
		Firings:  s.firings,
		Outputs:  s.outs,
		Arrivals: s.arrs,
		Graph:    g,
	}
	res.Clean, res.Stalled = s.drainState()
	if canceled {
		return markCanceled(res, cycle, opt.Ctx)
	}
	if cycle >= maxCycles {
		return res, fmt.Errorf("exec: no quiescence after %d cycles (livelock or MaxCycles too small)", maxCycles)
	}
	return res, nil
}

// markCanceled stamps a partial result with the cancellation diagnostics
// shared by the sequential and sharded engines.
func markCanceled(res *Result, cycle int, ctx context.Context) (*Result, error) {
	res.Canceled = true
	res.Clean = false
	res.Stalled = append([]string{fmt.Sprintf("canceled: run stopped by context at cycle %d before quiescence", cycle)},
		res.Stalled...)
	return res, fmt.Errorf("exec: run canceled at cycle %d: %w", cycle, context.Cause(ctx))
}

// collect examines candidate cells against the current snapshot and returns
// the firing plans of all enabled cells in deterministic (NodeID) order.
func (s *sim) collect() []firing {
	s.plans = s.plans[:0]
	s.arcIDs = s.arcIDs[:0]
	for w, word := range s.cand {
		for word != 0 {
			id := w<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			n := s.g.Node(graph.NodeID(id))
			if f, why := s.plan(n); why == trace.ReasonNone {
				s.plans = append(s.plans, f)
			}
		}
	}
	return s.plans
}

// emitStalls classifies every cell that will not fire this cycle and emits
// one stall event per waiting cell (tracing only; plan is semantically
// side-effect free, so this pass cannot perturb the run).
func (s *sim) emitStalls(cycle int, plans []firing) {
	firing := make(map[graph.NodeID]bool, len(plans))
	for _, f := range plans {
		firing[f.node.ID] = true
	}
	for _, n := range s.g.Nodes() {
		if firing[n.ID] {
			continue
		}
		if _, why := s.plan(n); why == trace.ReasonOperandWait || why == trace.ReasonAckWait {
			s.tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindStall,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1, Reason: why,
			})
		}
	}
}

// operand returns the value on port p of n and whether it is present.
func (s *sim) operand(n *graph.Node, p int) (value.Value, bool) {
	in := n.In[p]
	if in.Literal != nil {
		return *in.Literal, true
	}
	if in.Arc == nil {
		return value.Value{}, false
	}
	if !s.arcHas[in.Arc.ID] {
		return value.Value{}, false
	}
	return s.arcVal[in.Arc.ID], true
}

// consumeArc appends port p's arc (if any) to the arena's consume run.
func (s *sim) consumeArc(n *graph.Node, p int) {
	if a := n.In[p].Arc; a != nil {
		s.arcIDs = append(s.arcIDs, a.ID)
	}
}

// plan decides whether cell n can fire now and, if so, what its effects
// are. The returned reason is trace.ReasonNone when the cell is enabled and
// otherwise classifies the stall (used by the observability layer; plan
// touches only scratch arenas either way, never machine state).
func (s *sim) plan(n *graph.Node) (firing, trace.Reason) {
	f := firing{node: n}
	f.c0 = int32(len(s.arcIDs))

	// Phase 1: operand availability and result computation.
	switch n.Op {
	case graph.OpSource:
		stream := s.streams[n.ID]
		if s.srcPos[n.ID] >= len(stream) {
			return f, trace.ReasonDone
		}
		f.out = stream[s.srcPos[n.ID]]
		f.advance = true
		f.produced = true

	case graph.OpCtlGen:
		total := n.Pattern.Len()
		if total >= 0 && s.srcPos[n.ID] >= total {
			return f, trace.ReasonDone
		}
		f.out = value.B(n.Pattern.At(s.srcPos[n.ID]))
		f.advance = true
		f.produced = true

	case graph.OpSink:
		v, ok := s.operand(n, 0)
		if !ok {
			return f, trace.ReasonOperandWait
		}
		f.out = v
		f.sink = true
		s.consumeArc(n, 0)

	case graph.OpMerge:
		ctl, ok := s.operand(n, 0)
		if !ok {
			return f, trace.ReasonOperandWait
		}
		sel := 2
		if ctl.AsBool() {
			sel = 1
		}
		v, ok := s.operand(n, sel)
		if !ok {
			return f, trace.ReasonOperandWait
		}
		// extra control ports (gates) must also be present
		for p := 3; p < len(n.In); p++ {
			if _, ok := s.operand(n, p); !ok {
				return f, trace.ReasonOperandWait
			}
		}
		f.out = v
		f.produced = true
		s.consumeArc(n, 0)
		s.consumeArc(n, sel)
		for p := 3; p < len(n.In); p++ {
			s.consumeArc(n, p)
		}

	case graph.OpTGate, graph.OpFGate:
		ctl, okc := s.operand(n, 0)
		data, okd := s.operand(n, 1)
		if !okc || !okd {
			return f, trace.ReasonOperandWait
		}
		for p := 2; p < len(n.In); p++ {
			if _, ok := s.operand(n, p); !ok {
				return f, trace.ReasonOperandWait
			}
		}
		pass := ctl.AsBool()
		if n.Op == graph.OpFGate {
			pass = !pass
		}
		f.out = data
		f.produced = pass // false: discard, consuming both operands
		for p := 0; p < len(n.In); p++ {
			s.consumeArc(n, p)
		}

	default: // ordinary operator and identity cells
		if cap(s.vals) < len(n.In) {
			s.vals = make([]value.Value, len(n.In))
		}
		vals := s.vals[:len(n.In)]
		for p := range n.In {
			v, ok := s.operand(n, p)
			if !ok {
				return f, trace.ReasonOperandWait
			}
			vals[p] = v
		}
		f.out = ApplyOp(n.Op, vals)
		f.produced = true
		for p := range n.In {
			s.consumeArc(n, p)
		}
	}
	f.c1 = int32(len(s.arcIDs))
	f.p0 = f.c1

	// Phase 2: destination availability. Every arc this firing will write
	// must be empty (its previous token acknowledged). Gated arcs are
	// written only when their gate operand is true.
	if f.produced {
		for _, a := range n.Out {
			write := true
			if a.Gate != graph.NoGate {
				gv, ok := s.operand(n, a.Gate)
				if !ok {
					return f, trace.ReasonOperandWait // gate operand itself not ready
				}
				write = gv.AsBool()
			}
			if write {
				if s.arcHas[a.ID] {
					return f, trace.ReasonAckWait
				}
				s.arcIDs = append(s.arcIDs, a.ID)
			}
		}
	}
	f.p1 = int32(len(s.arcIDs))
	return f, trace.ReasonNone
}

// ApplyOp evaluates an ordinary (non-gate, non-merge) operator cell; it is
// shared with the packet-level machine simulator.
func ApplyOp(op graph.Op, v []value.Value) value.Value {
	switch op {
	case graph.OpID:
		return v[0]
	case graph.OpAdd:
		return value.Add(v[0], v[1])
	case graph.OpSub:
		return value.Sub(v[0], v[1])
	case graph.OpMul:
		return value.Mul(v[0], v[1])
	case graph.OpDiv:
		return value.Div(v[0], v[1])
	case graph.OpMin:
		return value.Min(v[0], v[1])
	case graph.OpMax:
		return value.Max(v[0], v[1])
	case graph.OpNeg:
		return value.Neg(v[0])
	case graph.OpAbs:
		return value.Abs(v[0])
	case graph.OpLT:
		return value.LT(v[0], v[1])
	case graph.OpLE:
		return value.LE(v[0], v[1])
	case graph.OpGT:
		return value.GT(v[0], v[1])
	case graph.OpGE:
		return value.GE(v[0], v[1])
	case graph.OpEQ:
		return value.EQ(v[0], v[1])
	case graph.OpNE:
		return value.NE(v[0], v[1])
	case graph.OpAnd:
		return value.And(v[0], v[1])
	case graph.OpOr:
		return value.Or(v[0], v[1])
	case graph.OpNot:
		return value.Not(v[0])
	default:
		panic(fmt.Sprintf("exec: ApplyOp on %s", op))
	}
}

// applyBinary is ApplyOp for two-operand cells with the operands passed in
// registers — the batched planner's hot path, where a scratch-slice
// round-trip per lane would dominate the amortized firing cost.
func applyBinary(op graph.Op, a, b value.Value) value.Value {
	switch op {
	case graph.OpAdd:
		return value.Add(a, b)
	case graph.OpSub:
		return value.Sub(a, b)
	case graph.OpMul:
		return value.Mul(a, b)
	case graph.OpDiv:
		return value.Div(a, b)
	case graph.OpMin:
		return value.Min(a, b)
	case graph.OpMax:
		return value.Max(a, b)
	case graph.OpLT:
		return value.LT(a, b)
	case graph.OpLE:
		return value.LE(a, b)
	case graph.OpGT:
		return value.GT(a, b)
	case graph.OpGE:
		return value.GE(a, b)
	case graph.OpEQ:
		return value.EQ(a, b)
	case graph.OpNE:
		return value.NE(a, b)
	case graph.OpAnd:
		return value.And(a, b)
	case graph.OpOr:
		return value.Or(a, b)
	default:
		panic(fmt.Sprintf("exec: applyBinary on %s", op))
	}
}

// apply commits the cycle's firings and updates the candidate set.
func (s *sim) apply(cycle int, plans []firing) {
	s.nextCand.reset()
	arcs := s.g.Arcs()
	for i := range plans {
		f := &plans[i]
		n := f.node
		s.firings[n.ID]++
		s.nextCand.set(int(n.ID))
		if s.tr != nil {
			s.tr.Emit(trace.Event{
				Cycle: int64(cycle), Kind: trace.KindFiring,
				Cell: int32(n.ID), Port: -1, Unit: -1, Src: -1, Dst: -1,
			})
		}
		for _, aid := range s.arcIDs[f.c0:f.c1] {
			s.arcHas[aid] = false
			// the producer of a drained arc may now be enabled
			producer := arcs[aid].From
			s.nextCand.set(int(producer))
			if s.tr != nil {
				// draining the arc is the moment the acknowledge packet
				// would reach the producer
				s.tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindAck,
					Cell: int32(producer), Port: -1, Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
		if f.advance {
			s.srcPos[n.ID]++
		}
		if f.sink {
			s.outs[n.Label] = appendPrealloc(s.outs[n.Label], f.out, s.outCap)
			s.arrs[n.Label] = appendArrPrealloc(s.arrs[n.Label], Arrival{Cycle: cycle, Val: f.out}, s.outCap)
			if s.prog != nil {
				s.prog.Arrivals.Add(1)
			}
		}
		if s.trace != nil && f.produced {
			s.trace(cycle, n, f.out)
		}
	}
	for i := range plans {
		f := &plans[i]
		for _, aid := range s.arcIDs[f.p0:f.p1] {
			s.arcHas[aid] = true
			s.arcVal[aid] = f.out
			a := arcs[aid]
			s.nextCand.set(int(a.To))
			if s.tr != nil {
				s.tr.Emit(trace.Event{
					Cycle: int64(cycle), Kind: trace.KindToken,
					Cell: int32(a.To), Port: int32(a.ToPort), Unit: -1, Src: -1, Dst: -1,
				})
			}
		}
	}
	s.cand, s.nextCand = s.nextCand, s.cand
}

// appendPrealloc appends to a sink stream, sizing the buffer for the whole
// expected stream on first use so steady-state appends never reallocate.
func appendPrealloc(s []value.Value, v value.Value, hint int) []value.Value {
	if s == nil && hint > 0 {
		s = make([]value.Value, 0, hint)
	}
	return append(s, v)
}

func appendArrPrealloc(s []Arrival, a Arrival, hint int) []Arrival {
	if s == nil && hint > 0 {
		s = make([]Arrival, 0, hint)
	}
	return append(s, a)
}

func appendCycPrealloc(s []int64, c int64, hint int) []int64 {
	if s == nil && hint > 0 {
		s = make([]int64, 0, hint)
	}
	return append(s, c)
}

// drainState reports whether the quiescent machine is fully drained and
// lists diagnostics for any leftover state.
func (s *sim) drainState() (bool, []string) {
	var stalled []string
	for _, n := range s.g.Nodes() {
		switch n.Op {
		case graph.OpSource:
			if stream := s.streams[n.ID]; s.srcPos[n.ID] < len(stream) {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d stream values unsent",
					n.Name(), len(stream)-s.srcPos[n.ID], len(stream)))
			}
		case graph.OpCtlGen:
			if t := n.Pattern.Len(); t >= 0 && s.srcPos[n.ID] < t {
				stalled = append(stalled, fmt.Sprintf("%s: %d of %d control values unsent",
					n.Name(), t-s.srcPos[n.ID], t))
			}
		}
	}
	for _, a := range s.g.Arcs() {
		if s.arcHas[a.ID] {
			stalled = append(stalled, fmt.Sprintf("token %s stranded on arc %s -> %s port %d",
				s.arcVal[a.ID], s.g.Node(a.From).Name(), s.g.Node(a.To).Name(), a.ToPort))
		}
	}
	return len(stalled) == 0, stalled
}

// Describe summarizes a result for reports and error messages.
func Describe(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d clean=%v\n", r.Cycles, r.Clean)
	labels := make([]string, 0, len(r.Outputs))
	for l := range r.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "sink %q: %d values, II=%.3f\n", l, len(r.Outputs[l]), r.II(l))
	}
	for _, d := range r.Stalled {
		fmt.Fprintf(&b, "stall: %s\n", d)
	}
	for _, d := range r.ShardDiag {
		fmt.Fprintf(&b, "shard-diag: %s\n", d)
	}
	return b.String()
}
