package exec

import (
	"context"
	"time"

	"staticpipe/internal/obs"
	"staticpipe/internal/partition"
)

// annotateSpan records a finished run onto the span carried by ctx, if
// any. It runs strictly after the simulation loop has returned, reading
// only the immutable Result, so span recording is invisible to the
// engines: a run with a span attached is byte-identical to a detached
// one. Detached runs pay exactly one nil check.
func annotateSpan(ctx context.Context, res *Result, err error, workers, batch int) {
	sp := obs.SpanFrom(ctx)
	if sp == nil || res == nil {
		return
	}
	sp.Set("model", "exec")
	sp.Set("cycles", int64(res.Cycles))
	sp.Set("firings", sumFirings(res.Firings))
	sp.Set("clean", res.Clean)
	if workers > 1 {
		sp.Set("workers", int64(workers))
	}
	if batch > 1 {
		sp.Set("batch", int64(batch))
	}
	if res.Canceled {
		sp.Set("canceled", true)
	}
	if err != nil {
		sp.Set("error", err.Error())
	}
	if len(res.Stalled) > 0 {
		sp.Set("stalls", int64(len(res.Stalled)))
	}
	now := time.Now()
	annotateShards(sp, res.Shards, now)
	for i := range res.Lanes {
		l := &res.Lanes[i]
		ch := sp.ChildAt(obs.KindLane, laneName(i), sp.StartTime(), now)
		ch.Set("cycles", int64(l.Cycles))
		ch.Set("firings", sumFirings(l.Firings))
		ch.Set("clean", l.Clean)
		if l.Canceled {
			ch.Set("canceled", true)
		}
		if len(l.Stalled) > 0 {
			ch.Set("stalls", int64(len(l.Stalled)))
		}
	}
}

// annotateShards attaches one child span per shard, placed on the
// timeline by the worker's recorded wall-clock lifetime. Shared with the
// machine core via its own annotate path.
func annotateShards(sp *obs.Span, shards []partition.ShardStat, now time.Time) {
	for i := range shards {
		st := &shards[i]
		start := now.Add(-time.Duration(st.WallNs))
		ch := sp.ChildAt(obs.KindShard, shardName(i), start, now)
		ch.Set("cells", int64(st.Cells))
		ch.Set("firings", st.Firings)
		ch.Set("ring_sends", st.RingSends)
		ch.Set("ring_recvs", st.RingRecvs)
		ch.Set("ring_peak", st.RingPeak)
		ch.Set("barrier_wait_ns", int64(st.BarrierWait.Sum))
	}
}

func sumFirings(firings []int) int64 {
	var n int64
	for _, f := range firings {
		n += int64(f)
	}
	return n
}

func shardName(i int) string { return "shard[" + itoa(i) + "]" }
func laneName(i int) string  { return "lane[" + itoa(i) + "]" }

// itoa avoids pulling strconv into the hot package for two span labels.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
