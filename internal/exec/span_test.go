package exec

import (
	"context"
	"encoding/json"
	"testing"

	"staticpipe/internal/obs"
)

// TestSpanAnnotatedAcrossEngines checks that each engine variant hangs the
// expected children and attributes off the span carried by Options.Ctx.
func TestSpanAnnotatedAcrossEngines(t *testing.T) {
	cases := []struct {
		name   string
		opt    Options
		shards int
		lanes  int
	}{
		{name: "sequential", opt: Options{}},
		{name: "sharded", opt: Options{Workers: 3}, shards: 3},
		{name: "batched", opt: Options{Batch: 3}, lanes: 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g, _ := fig2(32)
			tr := obs.NewTree(obs.KindJob, "t")
			run := tr.Root().Child(obs.KindRun, tc.name)
			res, err := Run(g, withCtx(tc.opt, obs.WithSpan(context.Background(), run)))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			run.End()
			tr.Root().End()
			j := tr.Snapshot().Find(obs.KindRun)
			if j == nil {
				t.Fatal("run span missing from snapshot")
			}
			if j.Attrs["model"] != "exec" || j.Attrs["clean"] != true {
				t.Fatalf("run attrs = %v", j.Attrs)
			}
			if got := j.Attrs["cycles"]; got != int64(res.Cycles) {
				t.Fatalf("cycles attr = %v, result %d", got, res.Cycles)
			}
			var shards, lanes int
			for _, c := range j.Children {
				switch c.Kind {
				case obs.KindShard:
					shards++
					if c.Attrs["cells"] == nil || c.Attrs["firings"] == nil {
						t.Fatalf("shard span missing attrs: %v", c.Attrs)
					}
				case obs.KindLane:
					lanes++
					if c.Attrs["clean"] != true {
						t.Fatalf("lane span attrs = %v", c.Attrs)
					}
				}
			}
			if shards != tc.shards || lanes != tc.lanes {
				t.Fatalf("shard/lane children = %d/%d, want %d/%d",
					shards, lanes, tc.shards, tc.lanes)
			}
		})
	}
}

// TestSpanAttachedIsByteIdentical pins the zero-perturbation contract: a
// run with a span attached produces byte-identical outputs, cycle counts,
// and firing vectors to a detached run of the same graph.
func TestSpanAttachedIsByteIdentical(t *testing.T) {
	for _, opt := range []Options{{}, {Workers: 4}, {Batch: 4}} {
		gDet, _ := fig2(48)
		det, err := Run(gDet, opt)
		if err != nil {
			t.Fatalf("detached Run: %v", err)
		}
		gAtt, _ := fig2(48)
		tr := obs.NewTree(obs.KindJob, "t")
		att, err := Run(gAtt, withCtx(opt, obs.WithSpan(context.Background(), tr.Root())))
		if err != nil {
			t.Fatalf("attached Run: %v", err)
		}
		for _, res := range []*Result{det, att} {
			res.Graph = nil // pointer identity differs; everything else must not
			for i := range res.Shards {
				res.Shards[i].BarrierWait = det.Shards[i].BarrierWait
				res.Shards[i].WallNs = 0 // wall time is not part of the contract
			}
		}
		db, _ := json.Marshal(det)
		ab, _ := json.Marshal(att)
		if string(db) != string(ab) {
			t.Fatalf("span attachment perturbed the run (opt %+v):\ndetached: %s\nattached: %s",
				opt, db, ab)
		}
	}
}

func withCtx(opt Options, ctx context.Context) Options {
	opt.Ctx = ctx
	return opt
}
