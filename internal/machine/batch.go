package machine

// Batched execution: B independent input streams ("lanes") advance through
// one compiled-and-placed machine configuration in a single Run. Where the
// exec core widens its arc state into lane-minor structure-of-arrays rows,
// the packet-level simulator widens by instance: one placed machine per
// lane, all sharing the same expanded graph, placement strategy, and
// network model, advanced in lockstep by a shared cycle counter. Time
// wheels and the FU pipeline therefore stay scalar inside each lane, so
// per-lane cycle accounting — packet counts, busy counters, II — is exactly
// what a scalar run of that lane's streams would report, and lane 0 (which
// always consumes the graph-bound streams and carries the Tracer) is
// byte-identical to a sequential run by construction.
//
// Workers > 1 shards the run by contiguous lane ranges: each worker owns
// its lanes' machines outright and advances them without any cross-worker
// barrier, so the lane-sharded path is deterministic per lane at any
// worker count. Cancellation is polled per worker every
// exec.CancelCadence cycles; lanes within one worker observe the cancel at
// the same poll cycle, while a lane on another worker either completes
// before the cancel lands or stops at its own poll cycle.

import (
	"context"
	"fmt"
	"sync"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// runBatched drives cfg.Batch lockstep machine instances over the expanded
// graph g and assembles the per-lane views.
func runBatched(g *graph.Graph, cfg Config) (*Result, error) {
	b := cfg.Batch
	if b > exec.MaxBatch {
		return nil, fmt.Errorf("machine: Batch %d exceeds the %d-lane limit", b, exec.MaxBatch)
	}
	if len(cfg.LaneInputs) > b {
		return nil, fmt.Errorf("machine: %d lane input sets for %d lanes", len(cfg.LaneInputs), b)
	}
	srcLabels := map[string]bool{}
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource {
			srcLabels[n.Label] = true
		}
	}
	for l, li := range cfg.LaneInputs {
		for name := range li {
			if !srcLabels[name] {
				return nil, fmt.Errorf("machine: lane %d input %q names no source cell", l, name)
			}
		}
	}

	var laneCtrs []*trace.LaneCounters
	if cfg.Progress != nil {
		laneCtrs = cfg.Progress.InitLanes(b)
	}
	ms := make([]*machine, b)
	for l := 0; l < b; l++ {
		lcfg := cfg
		streams := cfg.Inputs // the base binding every lane defaults to
		if l > 0 {
			lcfg.Tracer = nil // lane 0 owns the event stream
			if l < len(cfg.LaneInputs) {
				streams = mergeStreams(cfg.Inputs, cfg.LaneInputs[l])
			}
		}
		m, err := newMachine(g, lcfg, streams, nil)
		if err != nil {
			return nil, err
		}
		if laneCtrs != nil {
			m.laneCtr = laneCtrs[l]
		}
		ms[l] = m
	}

	laneCycles := make([]int, b)
	runLanes := func(l0, l1 int) {
		var done <-chan struct{}
		if cfg.Ctx != nil {
			done = cfg.Ctx.Done()
		}
		live := make([]bool, l1-l0)
		for i := range live {
			live[i] = true
		}
		remaining := l1 - l0
		canceled := false
		cycle := 0
		for ; remaining > 0 && cycle < cfg.MaxCycles; cycle++ {
			if done != nil && cycle&(exec.CancelCadence-1) == 0 {
				select {
				case <-done:
					canceled = true
				default:
				}
				if canceled {
					break
				}
			}
			if l0 == 0 && cfg.Progress != nil {
				cfg.Progress.Cycle.Store(int64(cycle))
			}
			for l := l0; l < l1; l++ {
				if !live[l-l0] {
					continue
				}
				m := ms[l]
				if !m.step(cycle) {
					live[l-l0] = false
					remaining--
					laneCycles[l] = cycle
					if m.laneCtr != nil {
						m.laneCtr.Cycles.Store(int64(cycle))
						m.laneCtr.Done.Store(1)
					}
					continue
				}
				if m.laneCtr != nil {
					m.laneCtr.Cycles.Store(int64(cycle))
				}
			}
		}
		// Lanes still live stopped for an external reason: the cancel poll
		// fired, or the shared cycle counter hit MaxCycles.
		for l := l0; l < l1; l++ {
			if !live[l-l0] {
				continue
			}
			m := ms[l]
			m.canceled = canceled
			laneCycles[l] = cycle
			if m.laneCtr != nil {
				m.laneCtr.Cycles.Store(int64(cycle))
				m.laneCtr.Done.Store(1)
			}
		}
	}

	w := cfg.Workers
	if w > b {
		w = b
	}
	if w <= 1 {
		runLanes(0, b)
	} else {
		per := (b + w - 1) / w
		var wg sync.WaitGroup
		for l0 := 0; l0 < b; l0 += per {
			l1 := min(l0+per, b)
			wg.Add(1)
			go func(a, z int) {
				defer wg.Done()
				runLanes(a, z)
			}(l0, l1)
		}
		wg.Wait()
	}

	// Assemble: finish each lane (diagnostics, canceled decoration), lane 0
	// becoming the top-level view.
	lanes := make([]LaneResult, b)
	var top *Result
	anyMaxed := false
	cancelCycle := -1
	for l := 0; l < b; l++ {
		res, _ := ms[l].finish(laneCycles[l])
		if res.Canceled {
			if l == 0 || res.Cycles > cancelCycle {
				cancelCycle = res.Cycles
			}
		} else if laneCycles[l] >= cfg.MaxCycles {
			anyMaxed = true
		}
		lanes[l] = LaneResult{
			Cycles:       res.Cycles,
			Outputs:      res.Outputs,
			Arrivals:     res.Arrivals,
			Packets:      res.Packets,
			AMPackets:    res.AMPackets,
			TotalPackets: res.TotalPackets,
			PEBusy:       res.PEBusy,
			FUBusy:       res.FUBusy,
			Clean:        res.Clean,
			Canceled:     res.Canceled,
			Stalled:      res.Stalled,
		}
		if l == 0 {
			top = res
		}
	}
	top.Batch = b
	top.Lanes = lanes
	if cancelCycle >= 0 {
		if top.Canceled {
			cancelCycle = top.Cycles // lane 0's cycle names the run's stop point
		} else {
			top.Canceled = true
			top.Clean = false
			top.Stalled = append([]string{fmt.Sprintf(
				"canceled: run stopped by context at cycle %d before quiescence", cancelCycle)},
				top.Stalled...)
		}
		return top, fmt.Errorf("machine: run canceled at cycle %d: %w", cancelCycle, context.Cause(cfg.Ctx))
	}
	if anyMaxed {
		return top, fmt.Errorf("machine: no quiescence after %d cycles (livelock or MaxCycles too small)", cfg.MaxCycles)
	}
	return top, nil
}

// mergeStreams layers a lane's input overrides on top of the run's base
// binding; the lane wins per label. Either side may be nil, in which case
// the other passes through unchanged (no copy).
func mergeStreams(base, lane map[string][]value.Value) map[string][]value.Value {
	if len(base) == 0 {
		return lane
	}
	if len(lane) == 0 {
		return base
	}
	merged := make(map[string][]value.Value, len(base)+len(lane))
	for k, v := range base {
		merged[k] = v
	}
	for k, v := range lane {
		merged[k] = v
	}
	return merged
}
