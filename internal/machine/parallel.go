// Sharded parallel engine for the machine simulator.
//
// The machine's cycle splits into phases whose mutations touch disjoint
// state, which is what makes sharding deterministic:
//
//   - Prologue (serial, worker 0 at the end of the previous cycle's merge):
//     step the routing network(s) and swap the local-delivery buffer,
//     producing the due list — every packet delivering this cycle, in the
//     sequential engine's delivery order. In trace mode the KindDeliver
//     events are emitted here, serially, before any worker frees a packet.
//   - Delivery + function units (parallel): each worker applies the due
//     packets addressed to its own endpoints (operand slots, ack counters,
//     FU queues) and runs its own FUs (completions collected into a
//     buffer, one initiation with ApplyOp). Every mutation is keyed by the
//     destination endpoint, which has exactly one owner.
//   - Retirement (parallel, after a barrier): each worker retires at most
//     one enabled cell per owned endpoint, exactly the sequential
//     round-robin. A firing's local effects (operand clears, srcPos,
//     pendingAcks, sink append) touch only the firing cell; its packet
//     emissions are buffered, not sent. planCell reads only the planned
//     cell's state plus immutable placement, so concurrent planning is
//     safe.
//   - Merge (serial, worker 0, after a barrier): replay the buffered FU
//     and retirement emissions through the real m.emit in the sequential
//     engine's exact order — FUs ascending (completions then initiation),
//     then endpoints ascending (firing event, acks, operation/result
//     sends), then stall classifications by cell id. Network sequence
//     stamps, FU round-robin assignment, packet counters, and the trace
//     stream therefore come out byte-identical to the sequential engine
//     for any worker count.
//
// Cross-phase visibility is provided by the barrier's atomics; within a
// phase no two workers write the same location, which `go test -race`
// checks end to end.
package machine

import (
	"fmt"
	"sync"
	"time"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/partition"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// parMachine is the shared state of one sharded run.
type parMachine struct {
	m       *machine
	owner   []int // endpoint -> owning worker
	workers []*machWorker
	barrier *partition.Barrier
	traced  bool

	due      []*packet // packets delivering this cycle, sequential order
	cycle    int
	endCycle int
	stop     bool
	maxed    bool

	stallWhy []trace.Reason  // per-cell stall classification (trace mode)
	sinkVals [][]value.Value // per-sink-cell output stream
	sinkArrs [][]exec.Arrival
}

// fuDone is one completed FU job awaiting its result sends at merge.
type fuDone struct {
	srcCell int
	result  value.Value
	targets []target
}

// fuAct records one owned FU's activity this cycle: which completions it
// retired (a range in the worker's dones arena) and the initiation, if any.
type fuAct struct {
	fi        int
	d0, d1    int
	initiated bool
	initCell  int
	initLat   int
}

// firePend is one buffered cell retirement: the local effects were applied
// in the parallel phase, the emissions are replayed at merge.
type firePend struct {
	endpoint int
	cellID   int
	opcode   uint8
	arith    bool
	out      value.Value
	a0, a1   int // ackArena range: producer cell ids owed an acknowledge
	v0, v1   int // valArena range: arithmetic operand values
	t0, t1   int // targetArena range: destinations
}

type machWorker struct {
	id        int
	pm        *parMachine
	m         *machine
	endpoints []int // owned endpoints, ascending
	fuIdx     []int // owned FU indices, ascending
	sc        planScratch
	active    bool

	// per-cycle emission buffers, replayed then reset at merge
	fires       []firePend
	ackArena    []int
	valArena    []value.Value
	targetArena []target
	dones       []fuDone
	fuActs      []fuAct
	freed       []*packet

	stat partition.ShardStat
	live *trace.ShardCounters
}

// runSharded drives the machine with nw worker goroutines; the machine is
// already placed and initialized by Run.
func (m *machine) runSharded(nw int) (*Result, error) {
	pm := &parMachine{
		m:        m,
		owner:    make([]int, m.numEndpoints()),
		barrier:  partition.NewBarrier(nw),
		traced:   m.tr != nil,
		sinkVals: make([][]value.Value, m.g.NumNodes()),
		sinkArrs: make([][]exec.Arrival, m.g.NumNodes()),
	}
	if pm.traced {
		pm.stallWhy = make([]trace.Reason, m.g.NumNodes())
	}
	var lives []*trace.ShardCounters
	if m.prog != nil {
		lives = m.prog.InitShards(nw)
	}
	ne := m.numEndpoints()
	pm.workers = make([]*machWorker, nw)
	for w := 0; w < nw; w++ {
		lo, hi := w*ne/nw, (w+1)*ne/nw
		mw := &machWorker{id: w, pm: pm, m: m}
		for e := lo; e < hi; e++ {
			pm.owner[e] = w
			mw.endpoints = append(mw.endpoints, e)
			if e >= m.cfg.PEs && e < m.cfg.PEs+m.cfg.FUs {
				mw.fuIdx = append(mw.fuIdx, e-m.cfg.PEs)
			}
			mw.stat.Cells += len(m.residents[e])
		}
		if lives != nil {
			mw.live = lives[w]
		}
		pm.workers[w] = mw
	}

	pm.prologue(0)
	var wg sync.WaitGroup
	wg.Add(nw)
	for _, w := range pm.workers {
		go func(w *machWorker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	wg.Wait()

	for _, n := range m.g.Nodes() {
		if n.Op == graph.OpSink && pm.sinkVals[n.ID] != nil {
			m.res.Outputs[n.Label] = pm.sinkVals[n.ID]
			m.res.Arrivals[n.Label] = pm.sinkArrs[n.ID]
		}
	}
	m.res.Shards = make([]partition.ShardStat, nw)
	for i, w := range pm.workers {
		m.res.Shards[i] = w.stat
	}
	if pm.maxed {
		m.res.ShardDiag = pm.diagnose()
	}
	return m.finish(pm.endCycle)
}

// prologue advances the network(s) to cycle now and collects the due list
// in sequential delivery order: distribution network, operation network,
// then local same-endpoint deliveries scheduled last cycle.
func (pm *parMachine) prologue(now int) {
	m := pm.m
	pm.due = pm.due[:0]
	pm.due = append(pm.due, m.net.step()...)
	if m.opNet != nil {
		pm.due = append(pm.due, m.opNet.step()...)
	}
	locals := m.localNext
	m.localNext = m.localBuf[:0]
	for _, p := range locals {
		pm.due = append(pm.due, p)
		m.inflight--
	}
	m.localBuf = locals[:0]
	if pm.traced {
		for _, p := range pm.due {
			m.tr.Emit(trace.Event{
				Cycle: int64(now), Kind: trace.KindDeliver,
				Cell: int32(p.trCell()), Port: int32(p.port), Unit: -1,
				Src: int32(p.src), Dst: int32(p.dst), Packet: p.kind.traceKind(),
				Aux: int64(now - p.sentAt),
			})
		}
	}
}

func (w *machWorker) wait() {
	ns := w.pm.barrier.Wait()
	w.stat.BarrierWait.Observe(ns)
	if w.live != nil && ns > 0 {
		w.live.BarrierWaitNs.Add(ns)
	}
}

func (w *machWorker) run() {
	pm := w.pm
	m := w.m
	wallStart := time.Now()
	defer func() { w.stat.WallNs = time.Since(wallStart).Nanoseconds() }()
	for {
		if pm.stop {
			return
		}
		if w.id == 0 && m.prog != nil {
			m.prog.Cycle.Store(int64(pm.cycle))
		}
		w.active = false
		w.fires = w.fires[:0]
		w.ackArena = w.ackArena[:0]
		w.valArena = w.valArena[:0]
		w.targetArena = w.targetArena[:0]
		w.dones = w.dones[:0]
		w.fuActs = w.fuActs[:0]

		w.deliverOwned()
		w.runFUs(pm.cycle)
		w.wait()
		w.retire(pm.cycle)
		w.wait()
		if w.id == 0 {
			pm.serial()
		}
		w.wait()

		if w.live != nil {
			w.live.Cycles.Add(1)
			w.live.Firings.Store(w.stat.Firings)
			w.live.RingMsgs.Store(w.stat.RingSends)
			w.live.RingPeak.Store(w.stat.RingPeak)
		}
	}
}

// deliverOwned applies the due packets addressed to this worker's
// endpoints, exactly the sequential deliver minus tracing (the events were
// already emitted by the prologue).
func (w *machWorker) deliverOwned() {
	m := w.m
	var got int64
	for _, p := range w.pm.due {
		if w.pm.owner[p.dst] != w.id {
			continue
		}
		got++
		switch p.kind {
		case pktAck:
			m.cells[p.cell].pendingAcks--
			w.freed = append(w.freed, p)
		case pktResult:
			c := &m.cells[p.cell]
			if c.inHas[p.port] {
				panic(fmt.Sprintf("machine: operand slot collision at %s port %d", c.node.Name(), p.port))
			}
			c.inTok[p.port] = p.val
			c.inHas[p.port] = true
			w.freed = append(w.freed, p)
		case pktOp:
			fi := p.dst - m.cfg.PEs
			m.fus[fi].queue = append(m.fus[fi].queue, p)
		}
	}
	if got > 0 {
		w.active = true
	}
	w.stat.RingRecvs += got
	if got > w.stat.RingPeak {
		w.stat.RingPeak = got
	}
}

// runFUs completes and initiates this worker's function units. Result
// sends are deferred to the merge; state mutations (wheel, queue, inflight,
// busy counters) are all owned by this worker.
func (w *machWorker) runFUs(now int) {
	m := w.m
	slot := now % m.fuSlots
	for _, fi := range w.fuIdx {
		f := &m.fus[fi]
		done := f.wheel[slot]
		act := fuAct{fi: fi, d0: len(w.dones)}
		for ji := range done {
			job := &done[ji]
			w.dones = append(w.dones, fuDone{srcCell: job.srcCell, result: job.result, targets: job.targets})
			w.stat.RingSends += int64(len(job.targets))
		}
		act.d1 = len(w.dones)
		f.inflight -= len(done)
		f.wheel[slot] = done[:0]
		if f.inflight > 0 {
			w.active = true
		}
		if f.qhead < len(f.queue) {
			p := f.queue[f.qhead]
			f.qhead++
			if f.qhead == len(f.queue) {
				f.queue = f.queue[:0]
				f.qhead = 0
			}
			lat := m.latencyOf(graph.Op(p.op.opcode))
			dslot := (now + lat) % m.fuSlots
			f.wheel[dslot] = append(f.wheel[dslot], fuJob{
				result:  exec.ApplyOp(graph.Op(p.op.opcode), p.op.vals),
				targets: p.op.targets,
				srcCell: p.op.srcCell,
			})
			f.inflight++
			m.res.FUBusy[fi]++
			act.initiated = true
			act.initCell = p.op.srcCell
			act.initLat = lat
			w.freed = append(w.freed, p)
			w.active = true
		}
		if act.d1 > act.d0 || act.initiated {
			w.fuActs = append(w.fuActs, act)
		}
	}
}

// retire runs the sequential phase-3 round-robin over this worker's
// endpoints, buffering emissions for the merge.
func (w *machWorker) retire(now int) {
	m := w.m
	if m.fired != nil {
		for _, e := range w.endpoints {
			for _, id := range m.residents[e] {
				m.fired[id] = false
			}
		}
	}
	for _, e := range w.endpoints {
		ids := m.residents[e]
		if len(ids) == 0 {
			continue
		}
		start := m.rrNext[e]
		for k := 0; k < len(ids); k++ {
			id := ids[(start+k)%len(ids)]
			if w.fireBuffered(&m.cells[id], now) {
				m.rrNext[e] = (start + k + 1) % len(ids)
				if e < m.cfg.PEs {
					m.res.PEBusy[e]++
				}
				w.active = true
				w.stat.Firings++
				break
			}
		}
	}
	if w.pm.traced {
		w.classifyStalls()
	}
}

// fireBuffered is the sequential fire with emissions captured instead of
// sent: local cell effects happen here, packets and trace events at merge.
func (w *machWorker) fireBuffered(c *cell, now int) bool {
	m := w.m
	pl, why := m.planCell(c, &w.sc)
	if why != trace.ReasonNone {
		return false
	}
	n := c.node
	if m.fired != nil {
		m.fired[n.ID] = true
	}
	fp := firePend{
		endpoint: c.endpoint, cellID: int(n.ID), opcode: uint8(n.Op),
		arith: pl.arith, out: pl.out,
	}
	fp.a0 = len(w.ackArena)
	for _, p := range pl.consume {
		in := n.In[p]
		if in.Arc == nil || !c.inHas[p] {
			continue
		}
		c.inHas[p] = false
		w.ackArena = append(w.ackArena, int(in.Arc.From))
	}
	fp.a1 = len(w.ackArena)
	if pl.advance {
		c.srcPos++
	}
	if pl.sink {
		w.pm.sinkVals[n.ID] = appendPrealloc(w.pm.sinkVals[n.ID], pl.out, m.outCap)
		w.pm.sinkArrs[n.ID] = appendArrPrealloc(w.pm.sinkArrs[n.ID],
			exec.Arrival{Cycle: now, Val: pl.out}, m.outCap)
		if m.prog != nil {
			m.prog.Arrivals.Add(1)
		}
	}
	c.pendingAcks = len(pl.targets)
	fp.t0 = len(w.targetArena)
	w.targetArena = append(w.targetArena, pl.targets...)
	fp.t1 = len(w.targetArena)
	if pl.arith {
		fp.v0 = len(w.valArena)
		w.valArena = append(w.valArena, pl.vals...)
		fp.v1 = len(w.valArena)
		w.stat.RingSends++
	} else {
		w.stat.RingSends += int64(fp.t1 - fp.t0)
	}
	w.stat.RingSends += int64(fp.a1 - fp.a0)
	w.fires = append(w.fires, fp)
	return true
}

// classifyStalls records why each owned, non-fired cell is waiting; the
// merge emits the events in global cell-id order.
func (w *machWorker) classifyStalls() {
	m := w.m
	for _, e := range w.endpoints {
		for _, id := range m.residents[e] {
			if m.fired[id] {
				continue
			}
			_, why := m.planCell(&m.cells[id], &w.sc)
			if why == trace.ReasonNone {
				why = trace.ReasonUnitBusy
			}
			w.pm.stallWhy[id] = why
		}
	}
}

// serial is worker 0's merge: replay buffered emissions in the sequential
// engine's order, decide termination, and run the next cycle's prologue.
func (pm *parMachine) serial() {
	m := pm.m
	now := pm.cycle

	// Function units, ascending (workers own contiguous endpoint ranges,
	// so walking workers in order walks FUs in order): completions' result
	// sends, then the initiation.
	for _, w := range pm.workers {
		for _, act := range w.fuActs {
			for di := act.d0; di < act.d1; di++ {
				d := &w.dones[di]
				if pm.traced {
					m.tr.Emit(trace.Event{
						Cycle: int64(now), Kind: trace.KindFUDone,
						Cell: int32(d.srcCell), Port: -1, Unit: int32(m.fuEndpoint(act.fi)), Src: -1, Dst: -1,
					})
				}
				for _, tgt := range d.targets {
					p := m.newPacket()
					p.kind, p.src, p.dst = pktResult, m.fuEndpoint(act.fi), tgt.endpoint
					p.cell, p.port, p.val = tgt.cell, tgt.port, d.result
					m.emit(p, now)
				}
			}
			if act.initiated && pm.traced {
				m.tr.Emit(trace.Event{
					Cycle: int64(now), Kind: trace.KindFUStart,
					Cell: int32(act.initCell), Port: -1, Unit: int32(m.fuEndpoint(act.fi)), Src: -1, Dst: -1,
					Aux: int64(act.initLat),
				})
			}
		}
	}

	// Retirements, endpoints ascending: firing event, acknowledge packets,
	// then the operation or result sends.
	for _, w := range pm.workers {
		for fi := range w.fires {
			fp := &w.fires[fi]
			if pm.traced {
				m.tr.Emit(trace.Event{
					Cycle: int64(now), Kind: trace.KindFiring,
					Cell: int32(fp.cellID), Port: -1, Unit: int32(fp.endpoint), Src: -1, Dst: -1,
				})
			}
			for _, prod := range w.ackArena[fp.a0:fp.a1] {
				ack := m.newPacket()
				ack.kind, ack.src, ack.dst = pktAck, fp.endpoint, m.cells[prod].endpoint
				ack.cell = prod
				m.emit(ack, now)
			}
			if fp.arith {
				fu := m.fuSeq % m.cfg.FUs
				m.fuSeq++
				p := m.newPacket()
				p.kind, p.src, p.dst = pktOp, fp.endpoint, m.fuEndpoint(fu)
				p.op = opPayload{
					opcode:  fp.opcode,
					vals:    append([]value.Value(nil), w.valArena[fp.v0:fp.v1]...),
					targets: append([]target(nil), w.targetArena[fp.t0:fp.t1]...),
					srcCell: fp.cellID,
				}
				m.emit(p, now)
			} else {
				for _, tgt := range w.targetArena[fp.t0:fp.t1] {
					p := m.newPacket()
					p.kind, p.src, p.dst = pktResult, fp.endpoint, tgt.endpoint
					p.cell, p.port, p.val = tgt.cell, tgt.port, fp.out
					m.emit(p, now)
				}
			}
		}
	}
	if pm.traced {
		for id := range m.cells {
			if m.fired[id] {
				continue
			}
			why := pm.stallWhy[id]
			if why == trace.ReasonDone {
				continue
			}
			m.tr.Emit(trace.Event{
				Cycle: int64(now), Kind: trace.KindStall,
				Cell: int32(id), Port: -1, Unit: int32(m.cells[id].endpoint), Src: -1, Dst: -1, Reason: why,
			})
		}
	}

	active := len(pm.due) > 0
	for _, w := range pm.workers {
		m.pktFree = append(m.pktFree, w.freed...)
		w.freed = w.freed[:0]
		if w.active {
			active = true
		}
	}
	if m.net.pending() > 0 || m.inflight > 0 {
		active = true
	}
	if m.opNet != nil && m.opNet.pending() > 0 {
		active = true
	}

	if !active {
		pm.endCycle = now
		pm.stop = true
		return
	}
	pm.cycle++
	if pm.cycle >= m.cfg.MaxCycles {
		pm.endCycle = pm.cycle
		pm.stop = true
		pm.maxed = true
		return
	}
	// Cancellation poll at the same cadence as the sequential loop; only
	// worker 0 runs serial(), and the post-serial barrier publishes stop
	// to the other workers before the next cycle begins.
	if m.cfg.Ctx != nil && pm.cycle&(exec.CancelCadence-1) == 0 {
		select {
		case <-m.cfg.Ctx.Done():
			pm.endCycle = pm.cycle
			pm.stop = true
			m.canceled = true
			return
		default:
		}
	}
	pm.prologue(pm.cycle)
}

// diagnose names, per shard, the work left pending when a sharded run hit
// MaxCycles, so stall reports stay actionable under -workers.
func (pm *parMachine) diagnose() []string {
	m := pm.m
	var out []string
	for _, w := range pm.workers {
		inflight, awaitingAcks, held := 0, 0, 0
		for _, fi := range w.fuIdx {
			inflight += m.fus[fi].inflight + (len(m.fus[fi].queue) - m.fus[fi].qhead)
		}
		for _, e := range w.endpoints {
			for _, id := range m.residents[e] {
				c := &m.cells[id]
				if c.pendingAcks > 0 {
					awaitingAcks++
				}
				for _, has := range c.inHas {
					if has {
						held++
					}
				}
			}
		}
		out = append(out, fmt.Sprintf(
			"shard %d: %d endpoints, %d resident cells, %d firings, %d FU operations pending at halt, %d cells awaiting acks, %d held operand tokens",
			w.id, len(w.endpoints), w.stat.Cells, w.stat.Firings, inflight, awaitingAcks, held))
	}
	return out
}
