package machine

import (
	"context"
	"fmt"
	"time"

	"staticpipe/internal/obs"
)

// annotateSpan records a finished machine run onto the span carried by
// ctx, if any. Mirrors exec's annotate path: it reads only the immutable
// Result after the cycle loop has returned, so span-attached and detached
// runs are byte-identical.
func annotateSpan(ctx context.Context, res *Result, err error, workers, batch int) {
	sp := obs.SpanFrom(ctx)
	if sp == nil || res == nil {
		return
	}
	sp.Set("model", "machine")
	sp.Set("cycles", int64(res.Cycles))
	sp.Set("packets", int64(res.TotalPackets))
	sp.Set("clean", res.Clean)
	if workers > 1 {
		sp.Set("workers", int64(workers))
	}
	if batch > 1 {
		sp.Set("batch", int64(batch))
	}
	if res.Canceled {
		sp.Set("canceled", true)
	}
	if err != nil {
		sp.Set("error", err.Error())
	}
	if len(res.Stalled) > 0 {
		sp.Set("stalls", int64(len(res.Stalled)))
	}
	now := time.Now()
	for i := range res.Shards {
		st := &res.Shards[i]
		start := now.Add(-time.Duration(st.WallNs))
		ch := sp.ChildAt(obs.KindShard, fmt.Sprintf("shard[%d]", i), start, now)
		ch.Set("endpoints", int64(st.Cells))
		ch.Set("firings", st.Firings)
		ch.Set("ring_sends", st.RingSends)
		ch.Set("ring_recvs", st.RingRecvs)
		ch.Set("ring_peak", st.RingPeak)
		ch.Set("barrier_wait_ns", st.BarrierWait.Sum)
	}
	for i := range res.Lanes {
		l := &res.Lanes[i]
		ch := sp.ChildAt(obs.KindLane, fmt.Sprintf("lane[%d]", i), sp.StartTime(), now)
		ch.Set("cycles", int64(l.Cycles))
		ch.Set("packets", int64(l.TotalPackets))
		ch.Set("clean", l.Clean)
		if l.Canceled {
			ch.Set("canceled", true)
		}
		if len(l.Stalled) > 0 {
			ch.Set("stalls", int64(len(l.Stalled)))
		}
	}
}
