package machine

import (
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// packetKind classifies traffic per the paper's §2: operation packets
// (instruction shipped to a function unit), result packets (values to
// operand slots), and acknowledge packets (the reverse paths of §3).
type packetKind uint8

const (
	pktResult packetKind = iota
	pktAck
	pktOp
)

func (k packetKind) String() string {
	switch k {
	case pktResult:
		return "result"
	case pktAck:
		return "ack"
	default:
		return "operation"
	}
}

// traceKind maps the machine's packet classes onto the observability
// layer's.
func (k packetKind) traceKind() trace.PacketKind {
	switch k {
	case pktAck:
		return trace.PacketAck
	case pktOp:
		return trace.PacketOp
	default:
		return trace.PacketResult
	}
}

// packet is one unit of routing-network traffic.
type packet struct {
	kind     packetKind
	src, dst int // endpoint ids
	// result packets: destination cell/port and the value.
	cell int
	port int
	val  value.Value
	// operation packets: opcode, operand values, and the destinations the
	// function unit must send result packets to.
	op opPayload
	// sentAt is the cycle the packet entered the network; delivery minus
	// sentAt is the observed transit time, queueing included.
	sentAt int
}

// trCell is the cell a trace event about this packet should reference: the
// destination cell for result/ack packets, the shipping cell for operation
// packets.
func (p *packet) trCell() int {
	if p.kind == pktOp {
		return p.op.srcCell
	}
	return p.cell
}

// opPayload is the body of an operation packet.
type opPayload struct {
	opcode  uint8
	vals    []value.Value
	targets []target
	srcCell int // for accounting
}

// target is one destination field carried by an operation packet.
type target struct {
	endpoint int
	cell     int
	port     int
}

// network models a routing network between endpoints. step advances one
// cycle and returns the packets delivered this cycle; pending reports
// undelivered traffic (for quiescence detection).
type network interface {
	send(p *packet)
	step() []*packet
	pending() int
}

// crossbar is the simple RN model: fixed transit delay plus one-packet-
// per-cycle serialization at each destination endpoint.
type crossbar struct {
	delay    int
	now      int
	inflight []*timedPacket
	nextFree []int // per destination endpoint
}

type timedPacket struct {
	p       *packet
	readyAt int
}

func newCrossbar(endpoints, delay int) *crossbar {
	return &crossbar{delay: delay, nextFree: make([]int, endpoints)}
}

func (c *crossbar) send(p *packet) {
	c.inflight = append(c.inflight, &timedPacket{p: p, readyAt: c.now + c.delay})
}

func (c *crossbar) step() []*packet {
	c.now++
	var out []*packet
	rest := c.inflight[:0]
	for _, tp := range c.inflight {
		if tp.readyAt <= c.now && c.nextFree[tp.p.dst] <= c.now {
			c.nextFree[tp.p.dst] = c.now + 1
			out = append(out, tp.p)
		} else {
			rest = append(rest, tp)
		}
	}
	c.inflight = rest
	return out
}

func (c *crossbar) pending() int { return len(c.inflight) }

// butterfly is a log₂(N)-stage packet-switched delta network of 2×2
// switches — the "packet switched networks" proposed for the routing
// networks in Dennis, Boughton & Leung [2]. Each stage row forwards at
// most one packet per cycle; contention queues grow as needed (the
// physical network applies backpressure, which for the traffic levels of
// these simulations is equivalent to short queues).
type butterfly struct {
	n      int // endpoints padded to a power of two
	stages int
	queues [][][]*packet // [stage][row] FIFO
	count  int
}

func newButterfly(endpoints int) *butterfly {
	n := 1
	stages := 0
	for n < endpoints {
		n *= 2
		stages++
	}
	if stages == 0 {
		stages = 1
	}
	b := &butterfly{n: n, stages: stages}
	b.queues = make([][][]*packet, stages+1)
	for s := range b.queues {
		b.queues[s] = make([][]*packet, n)
	}
	return b
}

func (b *butterfly) send(p *packet) {
	b.queues[0][p.src%b.n] = append(b.queues[0][p.src%b.n], p)
	b.count++
}

// step advances every switch stage one cycle. queues[s][row] holds packets
// that have traversed s stages and sit at the given row; stage s+1 routes
// by replacing bit (stages−1−s) of the row with the destination's bit, so
// after all stages the row equals the destination. Later stages move first
// so a packet traverses exactly one stage per cycle.
func (b *butterfly) step() []*packet {
	var delivered []*packet
	for s := b.stages - 1; s >= 0; s-- {
		bit := b.stages - 1 - s
		mask := 1 << bit
		for row := 0; row < b.n; row++ {
			q := b.queues[s][row]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			b.queues[s][row] = q[1:]
			next := (row &^ mask) | (p.dst % b.n & mask)
			if s+1 == b.stages {
				delivered = append(delivered, p)
				b.count--
			} else {
				b.queues[s+1][next] = append(b.queues[s+1][next], p)
			}
		}
	}
	return delivered
}

func (b *butterfly) pending() int { return b.count }
