package machine

import (
	"sort"

	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// packetKind classifies traffic per the paper's §2: operation packets
// (instruction shipped to a function unit), result packets (values to
// operand slots), and acknowledge packets (the reverse paths of §3).
type packetKind uint8

const (
	pktResult packetKind = iota
	pktAck
	pktOp
)

func (k packetKind) String() string {
	switch k {
	case pktResult:
		return "result"
	case pktAck:
		return "ack"
	default:
		return "operation"
	}
}

// traceKind maps the machine's packet classes onto the observability
// layer's.
func (k packetKind) traceKind() trace.PacketKind {
	switch k {
	case pktAck:
		return trace.PacketAck
	case pktOp:
		return trace.PacketOp
	default:
		return trace.PacketResult
	}
}

// packet is one unit of routing-network traffic.
type packet struct {
	kind     packetKind
	src, dst int // endpoint ids
	// result packets: destination cell/port and the value.
	cell int
	port int
	val  value.Value
	// operation packets: opcode, operand values, and the destinations the
	// function unit must send result packets to.
	op opPayload
	// sentAt is the cycle the packet entered the network; delivery minus
	// sentAt is the observed transit time, queueing included.
	sentAt int
	// seq is the network's send order, stamped by crossbar.send so
	// same-cycle deliveries can be reported in send order.
	seq int
}

// trCell is the cell a trace event about this packet should reference: the
// destination cell for result/ack packets, the shipping cell for operation
// packets.
func (p *packet) trCell() int {
	if p.kind == pktOp {
		return p.op.srcCell
	}
	return p.cell
}

// opPayload is the body of an operation packet.
type opPayload struct {
	opcode  uint8
	vals    []value.Value
	targets []target
	srcCell int // for accounting
}

// target is one destination field carried by an operation packet.
type target struct {
	endpoint int
	cell     int
	port     int
}

// network models a routing network between endpoints. step advances one
// cycle and returns the packets delivered this cycle; pending reports
// undelivered traffic (for quiescence detection).
type network interface {
	send(p *packet)
	step() []*packet
	pending() int
}

// crossbar is the simple RN model: fixed transit delay plus one-packet-
// per-cycle serialization at each destination endpoint. It is organized as
// a time wheel: a packet sent at cycle t lands in the wheel slot for cycle
// t+delay, and step drains exactly one slot into the per-destination FIFO
// queues, delivering at most one packet per destination per cycle. With a
// constant delay, wheel order is send order, so the per-destination queues
// are FIFO in send order and the delivered list (sorted by send sequence)
// matches a linear scan of an insertion-ordered in-flight list.
type crossbar struct {
	delay  int
	now    int
	seq    int         // send counter, stamped onto packets
	wheel  [][]*packet // wheel[readyAt % (delay+1)], send order within a slot
	queues [][]*packet // per-destination arrived-but-blocked FIFOs
	heads  []int       // queue head indexes (popped prefix, compacted lazily)
	npend  int
	out    []*packet // delivered-this-cycle buffer, reused across cycles
}

func newCrossbar(endpoints, delay int) *crossbar {
	if delay < 1 {
		delay = 1 // delay 0 and 1 behave identically (delivery is next cycle at best)
	}
	c := &crossbar{
		delay:  delay,
		wheel:  make([][]*packet, delay+1),
		queues: make([][]*packet, endpoints),
		heads:  make([]int, endpoints),
	}
	return c
}

func (c *crossbar) send(p *packet) {
	p.seq = c.seq
	c.seq++
	slot := (c.now + c.delay) % (c.delay + 1)
	c.wheel[slot] = append(c.wheel[slot], p)
	c.npend++
}

func (c *crossbar) step() []*packet {
	c.now++
	if c.npend == 0 {
		return nil
	}
	// Packets whose transit completes this cycle join their destination's
	// delivery queue; all earlier slots have already been drained, so the
	// queue stays ordered by send sequence.
	slot := c.now % (c.delay + 1)
	arrived := c.wheel[slot]
	c.wheel[slot] = arrived[:0]
	for _, p := range arrived {
		c.queues[p.dst] = append(c.queues[p.dst], p)
	}
	out := c.out[:0]
	for dst := range c.queues {
		h := c.heads[dst]
		if h >= len(c.queues[dst]) {
			continue
		}
		out = append(out, c.queues[dst][h])
		h++
		if h == len(c.queues[dst]) {
			c.queues[dst] = c.queues[dst][:0]
			h = 0
		} else if h > 64 {
			// bound the popped prefix under sustained contention
			n := copy(c.queues[dst], c.queues[dst][h:])
			c.queues[dst] = c.queues[dst][:n]
			h = 0
		}
		c.heads[dst] = h
		c.npend--
	}
	// Restore global send order across destinations (at most one packet per
	// destination, so this list is tiny).
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	c.out = out
	return out
}

func (c *crossbar) pending() int { return c.npend }

// butterfly is a log₂(N)-stage packet-switched delta network of 2×2
// switches — the "packet switched networks" proposed for the routing
// networks in Dennis, Boughton & Leung [2]. Each stage row forwards at
// most one packet per cycle; contention queues grow as needed (the
// physical network applies backpressure, which for the traffic levels of
// these simulations is equivalent to short queues).
type butterfly struct {
	n      int // endpoints padded to a power of two
	stages int
	queues [][][]*packet // [stage][row] FIFO
	count  int
}

func newButterfly(endpoints int) *butterfly {
	n := 1
	stages := 0
	for n < endpoints {
		n *= 2
		stages++
	}
	if stages == 0 {
		stages = 1
	}
	b := &butterfly{n: n, stages: stages}
	b.queues = make([][][]*packet, stages+1)
	for s := range b.queues {
		b.queues[s] = make([][]*packet, n)
	}
	return b
}

func (b *butterfly) send(p *packet) {
	b.queues[0][p.src%b.n] = append(b.queues[0][p.src%b.n], p)
	b.count++
}

// step advances every switch stage one cycle. queues[s][row] holds packets
// that have traversed s stages and sit at the given row; stage s+1 routes
// by replacing bit (stages−1−s) of the row with the destination's bit, so
// after all stages the row equals the destination. Later stages move first
// so a packet traverses exactly one stage per cycle.
func (b *butterfly) step() []*packet {
	var delivered []*packet
	for s := b.stages - 1; s >= 0; s-- {
		bit := b.stages - 1 - s
		mask := 1 << bit
		for row := 0; row < b.n; row++ {
			q := b.queues[s][row]
			if len(q) == 0 {
				continue
			}
			p := q[0]
			b.queues[s][row] = q[1:]
			next := (row &^ mask) | (p.dst % b.n & mask)
			if s+1 == b.stages {
				delivered = append(delivered, p)
				b.count--
			} else {
				b.queues[s+1][next] = append(b.queues[s+1][next], p)
			}
		}
	}
	return delivered
}

func (b *butterfly) pending() int { return b.count }
