package machine

import (
	"reflect"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// machineSweep is the worker-count sweep the determinism contract promises.
var machineSweep = []int{1, 2, 4, 8}

type machineCase struct {
	build func() *graph.Graph
	cfg   Config
}

// parallelMachineCases cover every machine feature the sharded engine must
// replay faithfully: FU traffic, both network models, split fabrics, gated
// arcs, merge loops, and FIFO expansion.
func parallelMachineCases() map[string]machineCase {
	return map[string]machineCase{
		"fig2-crossbar": {
			build: func() *graph.Graph { g, _ := fig2(48); return g },
			cfg:   Config{PEs: 4, AMs: 2},
		},
		"wide-butterfly": {
			build: func() *graph.Graph { return wideGraph(6, 24) },
			cfg:   Config{PEs: 8, FUs: 4, AMs: 3, Network: Butterfly},
		},
		"fig2-split-nets": {
			build: func() *graph.Graph { g, _ := fig2(32); return g },
			cfg:   Config{PEs: 4, FUs: 2, AMs: 2, SplitNetworks: true},
		},
		"loop": {
			build: func() *graph.Graph {
				g := graph.New()
				a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5}))
				add := g.Add(graph.OpAdd, "acc")
				merge := g.Add(graph.OpMerge, "m")
				g.Connect(g.AddCtl("mctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5}), merge, 0)
				g.Connect(a, add, 0)
				g.Connect(add, merge, 1)
				g.SetLiteral(merge, 2, value.I(0))
				gp := g.AddGate(merge)
				g.Connect(g.AddCtl("fbctl", graph.Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}}), merge, gp)
				fb := g.ConnectGated(merge, gp, add, 1)
				fb.Feedback = true
				g.Connect(merge, g.AddSink("x"), 0)
				return g
			},
			cfg: Config{PEs: 2},
		},
		"gated-fifo": {
			build: func() *graph.Graph {
				g := graph.New()
				n := 12
				vals := make([]float64, n)
				for i := range vals {
					vals[i] = float64(i)
				}
				src := g.AddSource("C", value.Reals(vals))
				ctl := g.AddCtl("sel", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: n - 2, Suffix: []bool{false}})
				gate := g.Add(graph.OpTGate, "sel")
				f := g.AddFIFO("buf", 3)
				g.Connect(ctl, gate, 0)
				g.Connect(src, gate, 1)
				g.Connect(gate, f, 0)
				g.Connect(f, g.AddSink("out"), 0)
				return g
			},
			cfg: Config{PEs: 3, AMs: 2},
		},
	}
}

func requireSameMachineResult(t *testing.T, name string, p int, seq, par *Result) {
	t.Helper()
	if seq.Cycles != par.Cycles {
		t.Errorf("%s P=%d: cycles %d, sequential %d", name, p, par.Cycles, seq.Cycles)
	}
	if !reflect.DeepEqual(seq.Outputs, par.Outputs) {
		t.Errorf("%s P=%d: outputs diverge", name, p)
	}
	if !reflect.DeepEqual(seq.Arrivals, par.Arrivals) {
		t.Errorf("%s P=%d: arrival streams diverge", name, p)
	}
	if !reflect.DeepEqual(seq.Packets, par.Packets) || seq.TotalPackets != par.TotalPackets || seq.AMPackets != par.AMPackets {
		t.Errorf("%s P=%d: packet statistics diverge: %v/%d/%d vs %v/%d/%d", name, p,
			par.Packets, par.TotalPackets, par.AMPackets, seq.Packets, seq.TotalPackets, seq.AMPackets)
	}
	if !reflect.DeepEqual(seq.PEBusy, par.PEBusy) || !reflect.DeepEqual(seq.FUBusy, par.FUBusy) {
		t.Errorf("%s P=%d: busy counters diverge: PE %v vs %v, FU %v vs %v", name, p,
			par.PEBusy, seq.PEBusy, par.FUBusy, seq.FUBusy)
	}
	if seq.Clean != par.Clean {
		t.Errorf("%s P=%d: clean %v, sequential %v", name, p, par.Clean, seq.Clean)
	}
	if !reflect.DeepEqual(seq.Stalled, par.Stalled) {
		t.Errorf("%s P=%d: stall diagnostics diverge\nseq: %v\npar: %v", name, p, seq.Stalled, par.Stalled)
	}
}

// TestMachineShardedMatchesSequential pins the machine half of the
// determinism contract: every observable Result field — including packet
// counts and per-unit busy counters — is byte-identical for any worker
// count.
func TestMachineShardedMatchesSequential(t *testing.T) {
	for name, tc := range parallelMachineCases() {
		seq, err := Run(tc.build(), tc.cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, p := range machineSweep {
			cfg := tc.cfg
			cfg.Workers = p
			par, err := Run(tc.build(), cfg)
			if err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			requireSameMachineResult(t, name, p, seq, par)
			if p > 1 {
				if len(par.Shards) == 0 {
					t.Fatalf("%s P=%d: no shard stats on a sharded run", name, p)
				}
				cells, firings := 0, int64(0)
				for _, s := range par.Shards {
					cells += s.Cells
					firings += s.Firings
				}
				if cells != par.Graph.NumNodes() {
					t.Errorf("%s P=%d: shard stats cover %d cells, graph has %d",
						name, p, cells, par.Graph.NumNodes())
				}
				if firings == 0 {
					t.Errorf("%s P=%d: shards report zero retirements", name, p)
				}
			}
		}
	}
}

// machRecorder keeps the verbatim event stream for byte-level comparison.
type machRecorder struct {
	meta   trace.Meta
	events []trace.Event
}

func (r *machRecorder) Start(m trace.Meta) { r.meta = m }
func (r *machRecorder) Emit(e trace.Event) { r.events = append(r.events, e) }

// TestMachineShardedTraceByteIdentical pins the merge replay: the machine
// trace stream (deliveries, FU activity, firings, sends, stalls) of a
// sharded run must equal the sequential one event for event.
func TestMachineShardedTraceByteIdentical(t *testing.T) {
	for name, tc := range parallelMachineCases() {
		var seqRec machRecorder
		cfg := tc.cfg
		cfg.Tracer = &seqRec
		if _, err := Run(tc.build(), cfg); err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, p := range []int{2, 4} {
			var parRec machRecorder
			pcfg := tc.cfg
			pcfg.Tracer = &parRec
			pcfg.Workers = p
			if _, err := Run(tc.build(), pcfg); err != nil {
				t.Fatalf("%s P=%d: %v", name, p, err)
			}
			if !reflect.DeepEqual(seqRec.meta, parRec.meta) {
				t.Errorf("%s P=%d: trace metadata diverges", name, p)
			}
			if !reflect.DeepEqual(seqRec.events, parRec.events) {
				t.Errorf("%s P=%d: event streams diverge (%d vs %d events)",
					name, p, len(seqRec.events), len(parRec.events))
				for i := range seqRec.events {
					if i >= len(parRec.events) || seqRec.events[i] != parRec.events[i] {
						t.Errorf("  first divergence at event %d: seq=%+v", i, seqRec.events[i])
						if i < len(parRec.events) {
							t.Errorf("  par=%+v", parRec.events[i])
						}
						break
					}
				}
			}
		}
	}
}

// TestMachineShardedPartialResult pins the MaxCycles path: partial results
// stay byte-identical, the error matches, and the sharded run names the
// shards with work pending.
func TestMachineShardedPartialResult(t *testing.T) {
	tc := parallelMachineCases()["fig2-crossbar"]
	cfg := tc.cfg
	cfg.MaxCycles = 40
	seq, seqErr := Run(tc.build(), cfg)
	if seqErr == nil {
		t.Fatal("sequential run unexpectedly quiesced in 40 cycles")
	}
	for _, p := range []int{2, 4} {
		pcfg := cfg
		pcfg.Workers = p
		par, parErr := Run(tc.build(), pcfg)
		if parErr == nil {
			t.Fatalf("P=%d: run unexpectedly quiesced", p)
		}
		if seqErr.Error() != parErr.Error() {
			t.Errorf("P=%d: error %q, sequential %q", p, parErr, seqErr)
		}
		requireSameMachineResult(t, "partial", p, seq, par)
		if len(par.ShardDiag) == 0 {
			t.Fatalf("P=%d: partial sharded result carries no shard diagnostics", p)
		}
		joined := strings.Join(par.ShardDiag, "\n")
		if !strings.Contains(joined, "shard 0:") || !strings.Contains(joined, "pending at halt") {
			t.Errorf("P=%d: shard diagnostics don't name shards: %q", p, joined)
		}
		if !strings.Contains(Describe(par), "shard-diag:") {
			t.Errorf("P=%d: Describe omits the shard diagnostics", p)
		}
	}
}

// TestMachineShardedWithLiveTelemetry attaches the concurrent telemetry
// stack to a sharded machine run and checks per-shard counters are live.
func TestMachineShardedWithLiveTelemetry(t *testing.T) {
	tc := parallelMachineCases()["wide-butterfly"]
	seq, err := Run(tc.build(), tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := &trace.Progress{}
	cfg := tc.cfg
	cfg.Workers = 4
	cfg.Tracer = trace.NewLive()
	cfg.Progress = prog
	par, err := Run(tc.build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMachineResult(t, "telemetry", 4, seq, par)
	shards := prog.Shards()
	if len(shards) != 4 {
		t.Fatalf("progress exposes %d shard counter blocks, want 4", len(shards))
	}
	var fired, wantFired int64
	for _, sc := range shards {
		fired += sc.Firings.Load()
		if sc.Cycles.Load() == 0 {
			t.Error("a shard reported zero completed cycles")
		}
	}
	for _, s := range par.Shards {
		wantFired += s.Firings
	}
	if fired != wantFired {
		t.Errorf("live firing counters sum to %d, want %d", fired, wantFired)
	}
	if got := prog.Cycle.Load(); int(got) != par.Cycles && int(got) != par.Cycles-1 {
		t.Errorf("progress cycle %d out of range for a %d-cycle run", got, par.Cycles)
	}
}

// TestMachineShardedWorkerClamp: more workers than endpoints must degrade
// gracefully without changing results.
func TestMachineShardedWorkerClamp(t *testing.T) {
	g1, _ := fig2(16)
	seq, err := Run(g1, Config{PEs: 1, FUs: 1, AMs: 1})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := fig2(16)
	par, err := Run(g2, Config{PEs: 1, FUs: 1, AMs: 1, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMachineResult(t, "clamp", 16, seq, par)
}
