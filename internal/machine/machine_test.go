package machine

import (
	"fmt"
	"math"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// compileVal compiles a Val program straight through the pipestruct layer
// (this package cannot import core: core's artifacts wrap machine.Prepared).
func compileVal(t *testing.T, src string) *pipestruct.Result {
	t.Helper()
	prog, err := val.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	checked, err := val.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	compiled, err := pipestruct.Compile(checked, pipestruct.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return compiled
}

// fig2 builds the §3 scalar pipeline over n input pairs.
func fig2(n int) (*graph.Graph, []float64) {
	g := graph.New()
	as := make([]float64, n)
	bs := make([]float64, n)
	want := make([]float64, n)
	for i := range as {
		as[i] = float64(i) * 0.25
		bs[i] = 3 - float64(i)*0.5
		y := as[i] * bs[i]
		want[i] = (y + 2) * (y - 3)
	}
	a := g.AddSource("a", value.Reals(as))
	b := g.AddSource("b", value.Reals(bs))
	mul := g.Add(graph.OpMul, "cell1")
	add := g.Add(graph.OpAdd, "cell2")
	sub := g.Add(graph.OpSub, "cell3")
	mul2 := g.Add(graph.OpMul, "cell4")
	sink := g.AddSink("out")
	g.Connect(a, mul, 0)
	g.Connect(b, mul, 1)
	g.Connect(mul, add, 0)
	g.SetLiteral(add, 1, value.R(2))
	g.Connect(mul, sub, 0)
	g.SetLiteral(sub, 1, value.R(3))
	g.Connect(add, mul2, 0)
	g.Connect(sub, mul2, 1)
	g.Connect(mul2, sink, 0)
	return g, want
}

func TestFig2OnMachine(t *testing.T) {
	g, want := fig2(48)
	res, err := Run(g, Config{PEs: 4, AMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	if len(got) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].AsReal() != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !res.Clean {
		t.Errorf("machine left residue: %v", res.Stalled)
	}
	if res.TotalPackets == 0 || res.Packets["ack"] == 0 || res.Packets["operation"] == 0 {
		t.Errorf("packet accounting empty: %v", res.Packets)
	}
}

// TestMachineMatchesExec cross-validates the packet-level machine against
// the firing-rule simulator on the same graph.
func TestMachineMatchesExec(t *testing.T) {
	for _, cfg := range []Config{
		{PEs: 1, AMs: 1},
		{PEs: 4, AMs: 2},
		{PEs: 8, FUs: 4, AMs: 3, Network: Butterfly},
		{PEs: 3, Assign: Random, Seed: 11},
		{PEs: 3, Assign: ByStage},
	} {
		g, _ := fig2(32)
		mres, err := Run(g, cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		g2, _ := fig2(32)
		eres, err := exec.Run(g2, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		em, gm := eres.Output("out"), mres.Output("out")
		if len(em) != len(gm) {
			t.Fatalf("%+v: %d vs %d outputs", cfg, len(gm), len(em))
		}
		for i := range em {
			if !value.Equal(em[i], gm[i]) {
				t.Errorf("%+v: out[%d] = %v, exec %v", cfg, i, gm[i], em[i])
			}
		}
	}
}

// wideGraph builds w independent copies of the Fig 2 pipeline — the kind
// of wide workload whose aggregate throughput is PE-bound rather than
// latency-bound.
func wideGraph(w, n int) *graph.Graph {
	g := graph.New()
	for k := 0; k < w; k++ {
		as := make([]float64, n)
		bs := make([]float64, n)
		for i := range as {
			as[i] = float64(i + k)
			bs[i] = float64(i - k)
		}
		a := g.AddSource("a", value.Reals(as))
		b := g.AddSource("b", value.Reals(bs))
		mul := g.Add(graph.OpMul, "")
		add := g.Add(graph.OpAdd, "")
		sub := g.Add(graph.OpSub, "")
		mul2 := g.Add(graph.OpMul, "")
		sink := g.AddSink(fmt.Sprintf("out%d", k))
		g.Connect(a, mul, 0)
		g.Connect(b, mul, 1)
		g.Connect(mul, add, 0)
		g.SetLiteral(add, 1, value.R(2))
		g.Connect(mul, sub, 0)
		g.SetLiteral(sub, 1, value.R(3))
		g.Connect(add, mul2, 0)
		g.Connect(sub, mul2, 1)
		g.Connect(mul2, sink, 0)
	}
	return g
}

// TestPEScalingImprovesThroughput verifies that adding PEs speeds up a
// wide workload: a single Fig 2 pipe is latency-bound (the ack round trip
// sets its rate), but eight independent pipes sharing the machine are
// PE-bandwidth-bound, and their makespan drops as PEs are added (E13).
func TestPEScalingImprovesThroughput(t *testing.T) {
	cycles := map[int]int{}
	for _, pes := range []int{1, 4, 16} {
		res, err := Run(wideGraph(8, 48), Config{PEs: pes, AMs: 8})
		if err != nil {
			t.Fatal(err)
		}
		cycles[pes] = res.Cycles
	}
	if cycles[4] >= cycles[1] {
		t.Errorf("4 PEs (%d cycles) not faster than 1 (%d)", cycles[4], cycles[1])
	}
	if cycles[16] > cycles[4] {
		t.Errorf("16 PEs (%d cycles) slower than 4 (%d)", cycles[16], cycles[4])
	}
}

// TestAMFraction measures the §2 claim on a compute-heavy block (E12):
// for application-shaped kernels — several defined values per element, as
// in the codes the authors analyzed — an eighth or less of the packet
// traffic touches the array memories. A shallow kernel, by contrast,
// spends a larger share on AM traffic.
func TestAMFraction(t *testing.T) {
	run := func(src string) float64 {
		t.Helper()
		compiled := compileVal(t, src)
		m := 40
		B := make([]float64, m+2)
		C := make([]float64, m+2)
		for i := range B {
			B[i] = 1 + float64(i%3)
			C[i] = math.Sin(float64(i))
		}
		if err := compiled.SetInputs(map[string][]value.Value{
			"B": value.Reals(B), "C": value.Reals(C),
		}); err != nil {
			t.Fatal(err)
		}
		res, err := Run(compiled.Graph, Config{PEs: 8, AMs: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Output("A")) != m+2 {
			t.Fatalf("A has %d elements", len(res.Output("A")))
		}
		return res.AMFraction()
	}
	const header = `
param m = 40;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;`
	deep := header + `
    Q : real := P*P + 0.5*P + 1.;
    S : real := Q*Q - P*Q + 2.*P;
  construct B[i]*(S*S) + Q
  endall;
output A;
`
	shallow := header + `
  construct B[i]*(P*P)
  endall;
output A;
`
	deepFrac, shallowFrac := run(deep), run(shallow)
	if deepFrac > 1.0/8 {
		t.Errorf("compute-heavy kernel AM fraction = %.3f, paper claims ≤ 1/8", deepFrac)
	}
	if shallowFrac <= deepFrac {
		t.Errorf("shallow kernel (%.3f) should spend a larger AM share than deep (%.3f)",
			shallowFrac, deepFrac)
	}
}

func TestButterflyDeliversEverything(t *testing.T) {
	b := newButterfly(6)
	seen := map[int]int{}
	for src := 0; src < 6; src++ {
		for dst := 0; dst < 6; dst++ {
			b.send(&packet{kind: pktAck, src: src, dst: dst, cell: src*10 + dst})
		}
	}
	for i := 0; i < 200 && b.pending() > 0; i++ {
		for _, p := range b.step() {
			seen[p.cell]++
			if p.cell%10 != p.dst {
				t.Errorf("packet %d delivered to wrong endpoint", p.cell)
			}
		}
	}
	if b.pending() != 0 {
		t.Fatal("butterfly failed to drain")
	}
	if len(seen) != 36 {
		t.Errorf("delivered %d distinct packets, want 36", len(seen))
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("packet %d delivered %d times", id, n)
		}
	}
}

func TestCrossbarSerializesPerDestination(t *testing.T) {
	c := newCrossbar(4, 3)
	for i := 0; i < 5; i++ {
		c.send(&packet{kind: pktAck, src: 0, dst: 1, cell: i})
	}
	var times []int
	for cyc := 1; cyc <= 20; cyc++ {
		for range c.step() {
			times = append(times, cyc)
		}
	}
	if len(times) != 5 {
		t.Fatalf("delivered %d, want 5", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] == times[i-1] {
			t.Errorf("two packets delivered to one endpoint in cycle %d", times[i])
		}
	}
	if times[0] < 3 {
		t.Errorf("first delivery at %d, expected ≥ delay 3", times[0])
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() *Result {
		g, _ := fig2(24)
		res, err := Run(g, Config{PEs: 3, AMs: 2, Network: Butterfly})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if r1.Cycles != r2.Cycles || r1.TotalPackets != r2.TotalPackets {
		t.Errorf("runs differ: %d/%d cycles, %d/%d packets",
			r1.Cycles, r2.Cycles, r1.TotalPackets, r2.TotalPackets)
	}
}

func TestMachineGatedGraph(t *testing.T) {
	// Selection gates and merges work at packet level: select interior
	// elements and merge with a constant boundary.
	g := graph.New()
	n := 12
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	src := g.AddSource("C", value.Reals(vals))
	ctl := g.AddCtl("sel", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: n - 2, Suffix: []bool{false}})
	gate := g.Add(graph.OpTGate, "sel")
	sink := g.AddSink("out")
	g.Connect(ctl, gate, 0)
	g.Connect(src, gate, 1)
	g.Connect(gate, sink, 0)
	res, err := Run(g, Config{PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("out")
	if len(got) != n-2 {
		t.Fatalf("selected %d, want %d", len(got), n-2)
	}
	for i := range got {
		if got[i].AsReal() != float64(i+1) {
			t.Errorf("out[%d] = %v", i, got[i])
		}
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

func TestMachineLoopGraph(t *testing.T) {
	// A Todd-style accumulator runs correctly under packet semantics.
	g := graph.New()
	a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5}))
	add := g.Add(graph.OpAdd, "acc")
	merge := g.Add(graph.OpMerge, "m")
	g.Connect(g.AddCtl("mctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 5}), merge, 0)
	g.Connect(a, add, 0)
	g.Connect(add, merge, 1)
	g.SetLiteral(merge, 2, value.I(0))
	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl", graph.Pattern{Body: []bool{true}, Repeat: 5, Suffix: []bool{false}}), merge, gp)
	fb := g.ConnectGated(merge, gp, add, 1)
	fb.Feedback = true
	sink := g.AddSink("x")
	g.Connect(merge, sink, 0)

	res, err := Run(g, Config{PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("x")
	want := []int64{0, 1, 3, 6, 10, 15}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("x[%d] = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestUtilizationAndDescribe(t *testing.T) {
	g, _ := fig2(32)
	res, err := Run(g, Config{PEs: 2, AMs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization = %v", u)
	}
	if s := Describe(res); s == "" {
		t.Error("Describe empty")
	}
}

func TestConfigStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || Random.String() != "random" || ByStage.String() != "by-stage" {
		t.Error("assignment strings")
	}
	if Crossbar.String() != "crossbar" || Butterfly.String() != "butterfly" {
		t.Error("network strings")
	}
}

func TestPacketConservation(t *testing.T) {
	g, _ := fig2(16)
	res, err := Run(g, Config{PEs: 4, AMs: 2, Network: Butterfly})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, n := range res.Packets {
		sum += n
	}
	if sum != res.TotalPackets {
		t.Errorf("packet kinds sum %d != total %d", sum, res.TotalPackets)
	}
}

// TestFULatencyMatters: deeper function-unit pipelines stretch the ack
// round trip, slowing a latency-bound pipeline — the machine-level cost
// the paper's idealized two-instruction-time model abstracts away.
func TestFULatencyMatters(t *testing.T) {
	cyclesAt := func(mulLat int) int {
		g, _ := fig2(32)
		res, err := Run(g, Config{PEs: 4, AMs: 2, MulLatency: mulLat})
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	fast, slow := cyclesAt(1), cyclesAt(12)
	if slow <= fast {
		t.Errorf("12-cycle multipliers (%d cycles) not slower than 1-cycle (%d)", slow, fast)
	}
}

// TestMachineLoopGraphCompanion runs a companion-style 4-cell loop with two
// circulating values at packet level and checks the interleaved results.
func TestMachineLoopGraphCompanion(t *testing.T) {
	// x_i = x_{i-2} + a_i with seeds 100, 200: two independent running
	// sums interleaved through one loop.
	n := 10
	g := graph.New()
	a := g.AddSource("a", value.Ints([]int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}))
	add := g.Add(graph.OpAdd, "acc")
	pad := g.Add(graph.OpID, "pad")
	merge := g.Add(graph.OpMerge, "m")
	g.Connect(g.AddCtl("mctl", graph.Pattern{Prefix: []bool{false, false}, Body: []bool{true}, Repeat: n}), merge, 0)
	seeds := g.AddSource("seeds", value.Ints([]int64{100, 200}))
	g.Connect(seeds, merge, 2)
	g.Connect(a, add, 0)
	g.Connect(add, pad, 0)
	g.Connect(pad, merge, 1)
	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl", graph.Pattern{Body: []bool{true}, Repeat: n, Suffix: []bool{false, false}}), merge, gp)
	fb := g.ConnectGated(merge, gp, add, 1)
	fb.Feedback = true
	fb.Marking = 2
	g.Connect(merge, g.AddSink("x"), 0)

	res, err := Run(g, Config{PEs: 3})
	if err != nil {
		t.Fatal(err)
	}
	got := res.Output("x")
	want := []int64{100, 200, 101, 202, 104, 206, 109, 212, 116, 220, 125, 230}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i].AsInt() != want[i] {
			t.Errorf("x[%d] = %v, want %d", i, got[i], want[i])
		}
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
}

// TestSplitNetworks checks Fig 1's dual-fabric structure: separating
// operation packets from result/ack distribution never slows the machine,
// and results are unchanged.
func TestSplitNetworks(t *testing.T) {
	g1, want := fig2(48)
	single, err := Run(g1, Config{PEs: 2, AMs: 2, NetDelay: 3})
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := fig2(48)
	split, err := Run(g2, Config{PEs: 2, AMs: 2, NetDelay: 3, SplitNetworks: true})
	if err != nil {
		t.Fatal(err)
	}
	if split.Cycles > single.Cycles {
		t.Errorf("split networks slower: %d vs %d cycles", split.Cycles, single.Cycles)
	}
	got := split.Output("out")
	for i := range want {
		if got[i].AsReal() != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if !split.Clean {
		t.Errorf("split run not clean: %v", split.Stalled)
	}
}
