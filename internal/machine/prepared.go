package machine

import (
	"fmt"
	"sync"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// Prepared is a graph readied for repeated packet-level simulation:
// validated and FIFO-expanded exactly once, with a free-list pool of run
// arenas (instruction-cell array plus flat operand-token storage) so a run
// over a warm Prepared rebuilds machine state without re-allocating it.
//
// A Prepared is immutable after construction and safe for concurrent Run
// calls — the machine half of the artifact-cache contract: one compiled
// artifact shared across goroutines, bound to per-run inputs via
// Config.Inputs instead of graph mutation.
type Prepared struct {
	g     *graph.Graph
	ports int       // total operand slots across all cells (Σ len(n.In))
	pool  sync.Pool // *runArena sized for g
}

// runArena is the pooled per-run machine state: the cell array and the flat
// backing arrays its operand slices are carved from. Everything else a run
// builds (Result maps, networks, FU wheels) escapes into the Result or is
// cheap relative to the per-cell slices, so only these are pooled.
type runArena struct {
	cells []cell
	toks  []value.Value
	has   []bool
}

// Prepare validates g and expands its FIFO cells, returning the reusable
// simulation artifact. The expansion work (and its allocation) is paid here
// once instead of on every Run.
func Prepare(g *graph.Graph) (*Prepared, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	eg := g.ExpandFIFOs()
	if err := eg.Validate(); err != nil {
		return nil, fmt.Errorf("machine: expanded graph invalid: %w", err)
	}
	ports := 0
	for _, n := range eg.Nodes() {
		ports += len(n.In)
	}
	return &Prepared{g: eg, ports: ports}, nil
}

// Graph returns the validated, FIFO-expanded graph the Prepared simulates.
// Callers must treat it as read-only.
func (p *Prepared) Graph() *graph.Graph { return p.g }

// Run simulates the prepared graph on the configured machine, drawing run
// state from the arena pool. Results, cycle counts, packet accounting, and
// diagnostics are byte-identical to Run(g, cfg) on the unexpanded graph.
func (p *Prepared) Run(cfg Config) (*Result, error) {
	res, err := p.run(cfg)
	annotateSpan(cfg.Ctx, res, err, cfg.Workers, cfg.Batch)
	return res, err
}

func (p *Prepared) run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := validateInputs(p.g, cfg.Inputs); err != nil {
		return nil, err
	}
	if cfg.Batch > 1 {
		// Batched runs build one machine instance per lane; those are
		// inherently per-run, so the lane path allocates as before (still
		// skipping the re-validate/re-expand this Prepared already paid).
		return runBatched(p.g, cfg)
	}
	ar := p.getArena()
	defer p.putArena(ar)
	m, err := newMachine(p.g, cfg, cfg.Inputs, ar)
	if err != nil {
		return nil, err
	}
	// Returning the arena in the deferred put is safe: drive joins any
	// shard workers before returning, and nothing carved from the arena
	// escapes into the Result.
	return m.drive()
}

func (p *Prepared) getArena() *runArena {
	ar, _ := p.pool.Get().(*runArena)
	if ar == nil {
		ar = &runArena{
			cells: make([]cell, p.g.NumNodes()),
			toks:  make([]value.Value, p.ports),
			has:   make([]bool, p.ports),
		}
	}
	return ar
}

// putArena returns run state to the pool. Source-stream references are
// dropped so a pooled arena never pins one run's input slices; the token
// arrays are cleared on the next get (see place).
func (p *Prepared) putArena(ar *runArena) {
	for i := range ar.cells {
		ar.cells[i].stream = nil
	}
	p.pool.Put(ar)
}
