package machine

import (
	"reflect"
	"testing"

	"staticpipe/internal/trace"
)

// Tracing must be strictly passive: a machine run with a tracer attached
// produces identical cycle counts, outputs, arrival times, and packet
// statistics to an untraced run.
func TestMachineTracingZeroPerturbation(t *testing.T) {
	for _, net := range []NetworkKind{Crossbar, Butterfly} {
		g1, _ := fig2(64)
		plain, err := Run(g1, Config{PEs: 4, AMs: 2, Network: net})
		if err != nil {
			t.Fatal(err)
		}
		g2, _ := fig2(64)
		// Attach the full live-telemetry stack: a concurrent-snapshot sink,
		// the plain aggregator, a ring, and a progress counter. None of it
		// may perturb the simulation.
		tr := trace.Multi{trace.NewLive(), trace.NewMetrics(), trace.NewRing(128)}
		prog := &trace.Progress{}
		traced, err := Run(g2, Config{PEs: 4, AMs: 2, Network: net, Tracer: tr, Progress: prog})
		if err != nil {
			t.Fatal(err)
		}
		if prog.Cycle.Load() == 0 || prog.Arrivals.Load() != 64 {
			t.Errorf("%s: progress counters cycle=%d arrivals=%d, want nonzero cycle and 64 arrivals",
				net, prog.Cycle.Load(), prog.Arrivals.Load())
		}
		if plain.Cycles != traced.Cycles {
			t.Errorf("%s: cycles %d with nil tracer, %d traced", net, plain.Cycles, traced.Cycles)
		}
		if !reflect.DeepEqual(plain.Outputs, traced.Outputs) {
			t.Errorf("%s: outputs diverge", net)
		}
		if !reflect.DeepEqual(plain.Arrivals, traced.Arrivals) {
			t.Errorf("%s: arrival times diverge", net)
		}
		if !reflect.DeepEqual(plain.Packets, traced.Packets) || plain.TotalPackets != traced.TotalPackets {
			t.Errorf("%s: packet statistics diverge: %v vs %v", net, plain.Packets, traced.Packets)
		}
		if !reflect.DeepEqual(plain.PEBusy, traced.PEBusy) {
			t.Errorf("%s: PE busy counts diverge", net)
		}
	}
}

// The tracer's per-unit retirement counts must agree with the machine's own
// PEBusy statistics.
func TestMachineTracingMatchesPEBusy(t *testing.T) {
	g, _ := fig2(64)
	m := trace.NewMetrics()
	res, err := Run(g, Config{PEs: 4, AMs: 2, Tracer: m})
	if err != nil {
		t.Fatal(err)
	}
	for pe, want := range res.PEBusy {
		if got := m.Units[pe].Firings; got != int64(want) {
			t.Errorf("PE%d: tracer saw %d retirements, machine counted %d", pe, got, want)
		}
	}
}

// A deliberately hot-spotted assignment (every compute cell on PE 0) must
// drive PE 0's network port to saturation — the crossbar delivers at most
// one packet per endpoint per cycle, and all result/ack traffic now funnels
// into one endpoint — while RoundRobin spreads the load evenly.
func TestHotSpotNetworkContention(t *testing.T) {
	const pes = 4

	g1, _ := fig2(128)
	hot := trace.NewMetrics()
	if _, err := Run(g1, Config{PEs: pes, AMs: 1, Assign: HotSpot, Tracer: hot}); err != nil {
		t.Fatal(err)
	}
	g2, _ := fig2(128)
	rr := trace.NewMetrics()
	if _, err := Run(g2, Config{PEs: pes, AMs: 1, Assign: RoundRobin, Tracer: rr}); err != nil {
		t.Fatal(err)
	}

	// Hot-spotted: PE0's delivery port is (near) saturated, the other PEs
	// retire nothing.
	if occ := hot.DeliveryOccupancy(0); occ < 0.9 {
		t.Errorf("hot-spot PE0 delivery occupancy = %.3f, want >= 0.9 (saturation)", occ)
	}
	for pe := 1; pe < pes; pe++ {
		if occ := hot.Occupancy(pe); occ != 0 {
			t.Errorf("hot-spot PE%d occupancy = %.3f, want 0 (all cells on PE0)", pe, occ)
		}
	}

	// RoundRobin: no PE port anywhere near saturation, and retirements are
	// spread across all PEs.
	for pe := 0; pe < pes; pe++ {
		if occ := rr.DeliveryOccupancy(pe); occ > 0.5 {
			t.Errorf("round-robin PE%d delivery occupancy = %.3f, want < 0.5", pe, occ)
		}
		if rr.Units[pe].Firings == 0 {
			t.Errorf("round-robin PE%d retired nothing", pe)
		}
	}

	// The hot endpoint must also be the contention-wise worst: strictly
	// higher delivery occupancy than any round-robin port.
	var rrMax float64
	for pe := 0; pe < pes; pe++ {
		if occ := rr.DeliveryOccupancy(pe); occ > rrMax {
			rrMax = occ
		}
	}
	if hot.DeliveryOccupancy(0) <= rrMax {
		t.Errorf("hot-spot PE0 (%.3f) not above round-robin max (%.3f)",
			hot.DeliveryOccupancy(0), rrMax)
	}
}
