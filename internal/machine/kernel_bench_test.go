package machine

import (
	"fmt"
	"testing"
)

// BenchmarkKernelCyclesPerSec measures the packet-level kernel's machine-
// cycle throughput on the wide Fig 2 workload, for both routing-network
// models; the cycles/sec metric is the number CI's bench guard tracks.
func BenchmarkKernelCyclesPerSec(b *testing.B) {
	for _, net := range []NetworkKind{Crossbar, Butterfly} {
		b.Run(fmt.Sprint(net), func(b *testing.B) {
			totalCycles := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := wideGraph(8, 128)
				b.StartTimer()
				res, err := Run(g, Config{PEs: 8, FUs: 4, AMs: 4, Network: net})
				if err != nil {
					b.Fatal(err)
				}
				totalCycles += res.Cycles
			}
			b.ReportMetric(float64(totalCycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}

// BenchmarkShardedCyclesPerSec measures the sharded parallel machine engine
// at the contract's worker counts: P=1 is the sequential kernel, higher P
// exposes the per-cycle barrier and merge-phase overhead.
func BenchmarkShardedCyclesPerSec(b *testing.B) {
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("P%d", p), func(b *testing.B) {
			totalCycles := 0
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				g := wideGraph(8, 128)
				b.StartTimer()
				res, err := Run(g, Config{PEs: 8, FUs: 4, AMs: 4, Workers: p})
				if err != nil {
					b.Fatal(err)
				}
				totalCycles += res.Cycles
			}
			b.ReportMetric(float64(totalCycles)/b.Elapsed().Seconds(), "cycles/sec")
		})
	}
}
