// Package machine is a cycle-accurate packet-level simulator of the static
// dataflow architecture of §2 (Fig 1): processing elements (PE) holding
// instruction cells, pipelined function units (FU) executing shipped
// arithmetic, array memory units (AM) sourcing and sinking array streams,
// and a packet-switched routing network carrying operation, result, and
// acknowledge packets.
//
// Where package exec abstracts time to the firing discipline (one firing
// per two cycles is the maximum), this simulator exposes the machine
// effects the paper's §2 discusses: PE instruction bandwidth, function-unit
// latency, network transit and contention, and the split of packet traffic
// between processing elements and array memories ("one eighth or less of
// the operation packets would be sent to the array memories").
package machine

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Assignment selects the instruction-cell → PE mapping strategy.
type Assignment int

const (
	// RoundRobin deals cells across PEs by cell id.
	RoundRobin Assignment = iota
	// Random shuffles cells across PEs (Config.Seed).
	Random
	// ByStage assigns contiguous runs of cell ids to each PE, which for
	// compiler-emitted graphs approximates grouping pipeline stages.
	ByStage
	// HotSpot piles every compute cell onto PE 0 — a deliberately bad
	// placement that saturates one PE's instruction bandwidth and network
	// port, used to exercise the contention observability.
	HotSpot
)

func (a Assignment) String() string {
	switch a {
	case Random:
		return "random"
	case ByStage:
		return "by-stage"
	case HotSpot:
		return "hot-spot"
	default:
		return "round-robin"
	}
}

// NetworkKind selects the routing-network model.
type NetworkKind int

const (
	// Crossbar has a fixed transit delay and per-endpoint delivery
	// serialization.
	Crossbar NetworkKind = iota
	// Butterfly is a log-stage packet-switched delta network of 2×2
	// switches [2].
	Butterfly
)

func (n NetworkKind) String() string {
	if n == Butterfly {
		return "butterfly"
	}
	return "crossbar"
}

// Config describes the machine.
type Config struct {
	// PEs is the processing-element count (default 4). Each PE retires at
	// most one enabled instruction per cycle.
	PEs int
	// FUs is the function-unit count (default 2). FUs are pipelined:
	// initiation one operation per cycle, completion after the op's
	// latency.
	FUs int
	// AMs is the array-memory unit count (default 1). Sources and sinks —
	// the long-lived arrays — reside in AMs; each AM performs one access
	// per cycle.
	AMs int
	// MulLatency and AddLatency configure FU pipeline depths (defaults 4
	// and 2). Mul covers MULT/DIV, Add covers ADD/SUB/MIN/MAX/NEG/ABS.
	MulLatency int
	AddLatency int
	// Network selects the RN model; NetDelay is the crossbar transit
	// delay (default 2).
	Network  NetworkKind
	NetDelay int
	// SplitNetworks uses two separate fabrics as Fig 1 draws them: one
	// routing network carrying operation packets to the function units and
	// array memories, and one distribution network carrying result and
	// acknowledge packets back to instruction cells.
	SplitNetworks bool
	// Assign selects cell placement; Seed drives Random.
	Assign Assignment
	Seed   int64
	// MaxCycles bounds the run (default 10M).
	MaxCycles int
	// Tracer, if non-nil, receives the structured observability event
	// stream (firings, packet sends/deliveries, FU activity, stall
	// classifications). Tracing is passive: it never alters scheduling,
	// results, or cycle counts.
	Tracer trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.PEs <= 0 {
		c.PEs = 4
	}
	if c.FUs <= 0 {
		c.FUs = 2
	}
	if c.AMs <= 0 {
		c.AMs = 1
	}
	if c.MulLatency <= 0 {
		c.MulLatency = 4
	}
	if c.AddLatency <= 0 {
		c.AddLatency = 2
	}
	if c.NetDelay <= 0 {
		c.NetDelay = 2
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 10_000_000
	}
	return c
}

// Result holds a machine run's outcome and statistics.
type Result struct {
	Cycles   int
	Outputs  map[string][]value.Value
	Arrivals map[string][]exec.Arrival
	// Packets counts routed traffic by kind.
	Packets map[string]int
	// AMPackets counts packets delivered to or sent from array memory
	// units; TotalPackets is all routed traffic.
	AMPackets    int
	TotalPackets int
	// PEBusy counts instruction retirements per PE; FUBusy counts
	// operations initiated per FU.
	PEBusy []int
	FUBusy []int
	Clean  bool
	// Stalled carries diagnostics if the machine quiesced with work left.
	Stalled []string
	// Graph is the graph actually simulated (FIFO cells expanded), the
	// one trace event cell IDs refer to.
	Graph *graph.Graph
}

// Output returns the stream received by the sink with the given label.
func (r *Result) Output(label string) []value.Value { return r.Outputs[label] }

// II returns the steady-state initiation interval at the named sink
// (middle-half measurement, as exec.Result.II).
func (r *Result) II(label string) float64 {
	arr := r.Arrivals[label]
	if len(arr) < 2 {
		return 0
	}
	lo, hi := 0, len(arr)-1
	if len(arr) >= 8 {
		lo, hi = len(arr)/4, 3*len(arr)/4
	}
	return float64(arr[hi].Cycle-arr[lo].Cycle) / float64(hi-lo)
}

// AMFraction returns the share of routed packets touching array memory.
func (r *Result) AMFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.AMPackets) / float64(r.TotalPackets)
}

// Utilization returns mean PE busy fraction.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 || len(r.PEBusy) == 0 {
		return 0
	}
	total := 0
	for _, b := range r.PEBusy {
		total += b
	}
	return float64(total) / float64(r.Cycles*len(r.PEBusy))
}

// cell is the machine-resident state of one instruction cell.
type cell struct {
	node        *graph.Node
	endpoint    int
	inTok       []*value.Value
	pendingAcks int
	srcPos      int
}

// fu is one pipelined function unit.
type fu struct {
	queue    []*packet // operation packets awaiting initiation
	inflight []fuJob
}

type fuJob struct {
	doneAt  int
	result  value.Value
	targets []target
	srcCell int
}

// machine is the full simulator state.
type machine struct {
	cfg   Config
	g     *graph.Graph
	cells []*cell
	// residents[e] lists cell ids hosted by endpoint e (PEs and AMs).
	residents map[int][]int
	rrNext    map[int]int
	net       network   // distribution network (results, acks); all traffic when not split
	opNet     network   // routing network for operation packets (nil unless SplitNetworks)
	localNext []*packet // same-endpoint packets delivered next cycle
	fus       []*fu
	res       *Result
	inflight  int // local packets in flight
	fuSeq     int
	tr        trace.Tracer
	fired     []bool // per-cell fired-this-cycle scratch (tracing only)
}

// endpoint layout: [0, PEs) compute PEs, [PEs, PEs+FUs) function units,
// [PEs+FUs, PEs+FUs+AMs) array memories.
func (m *machine) fuEndpoint(i int) int { return m.cfg.PEs + i }
func (m *machine) amEndpoint(i int) int { return m.cfg.PEs + m.cfg.FUs + i }
func (m *machine) numEndpoints() int    { return m.cfg.PEs + m.cfg.FUs + m.cfg.AMs }
func (m *machine) isAM(e int) bool      { return e >= m.cfg.PEs+m.cfg.FUs }

// Run simulates the graph on the configured machine.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.ExpandFIFOs()
	m := &machine{
		cfg:       cfg,
		g:         g,
		tr:        cfg.Tracer,
		residents: map[int][]int{},
		rrNext:    map[int]int{},
		res: &Result{
			Graph:    g,
			Outputs:  map[string][]value.Value{},
			Arrivals: map[string][]exec.Arrival{},
			Packets:  map[string]int{},
			PEBusy:   make([]int, cfg.PEs),
			FUBusy:   make([]int, cfg.FUs),
		},
	}
	mkNet := func() network {
		if cfg.Network == Butterfly {
			return newButterfly(m.numEndpoints())
		}
		return newCrossbar(m.numEndpoints(), cfg.NetDelay)
	}
	m.net = mkNet()
	if cfg.SplitNetworks {
		m.opNet = mkNet()
	}
	for i := 0; i < cfg.FUs; i++ {
		m.fus = append(m.fus, &fu{})
	}
	m.place()
	if m.tr != nil {
		m.fired = make([]bool, g.NumNodes())
		m.tr.Start(m.meta())
	}
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSink {
			if _, dup := m.res.Outputs[n.Label]; dup {
				return nil, fmt.Errorf("machine: duplicate sink label %q", n.Label)
			}
			m.res.Outputs[n.Label] = nil
			m.res.Arrivals[n.Label] = nil
		}
	}
	// initial tokens
	for _, a := range g.Arcs() {
		if a.Init != nil {
			tok := *a.Init
			m.cells[a.To].inTok[a.ToPort] = &tok
		}
	}

	cycle := 0
	for ; cycle < cfg.MaxCycles; cycle++ {
		if !m.step(cycle) {
			break
		}
	}
	if cycle >= cfg.MaxCycles {
		return nil, fmt.Errorf("machine: no quiescence after %d cycles", cfg.MaxCycles)
	}
	m.res.Cycles = cycle
	m.res.Clean, m.res.Stalled = m.drainState()
	return m.res, nil
}

// meta describes the placed machine for the observability layer.
func (m *machine) meta() trace.Meta {
	meta := trace.Meta{
		Cells:    make([]string, m.g.NumNodes()),
		Units:    make([]string, m.numEndpoints()),
		CellUnit: make([]int, m.g.NumNodes()),
	}
	for _, n := range m.g.Nodes() {
		meta.Cells[n.ID] = n.Name()
		meta.CellUnit[n.ID] = m.cells[n.ID].endpoint
	}
	for e := 0; e < m.numEndpoints(); e++ {
		switch {
		case e < m.cfg.PEs:
			meta.Units[e] = fmt.Sprintf("PE%d", e)
		case e < m.cfg.PEs+m.cfg.FUs:
			meta.Units[e] = fmt.Sprintf("FU%d", e-m.cfg.PEs)
		default:
			meta.Units[e] = fmt.Sprintf("AM%d", e-m.cfg.PEs-m.cfg.FUs)
		}
	}
	return meta
}

// place assigns cells to endpoints: sources and sinks to AMs, everything
// else per the configured strategy.
func (m *machine) place() {
	m.cells = make([]*cell, m.g.NumNodes())
	var computeIDs []int
	amNext := 0
	for _, n := range m.g.Nodes() {
		c := &cell{node: n, inTok: make([]*value.Value, len(n.In))}
		m.cells[n.ID] = c
		if n.Op == graph.OpSource || n.Op == graph.OpSink {
			c.endpoint = m.amEndpoint(amNext % m.cfg.AMs)
			amNext++
			m.residents[c.endpoint] = append(m.residents[c.endpoint], int(n.ID))
			continue
		}
		computeIDs = append(computeIDs, int(n.ID))
	}
	var peOf func(i, id int) int
	switch m.cfg.Assign {
	case Random:
		rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
		peOf = func(i, id int) int { return rng.Intn(m.cfg.PEs) }
	case ByStage:
		per := (len(computeIDs) + m.cfg.PEs - 1) / m.cfg.PEs
		if per == 0 {
			per = 1
		}
		peOf = func(i, id int) int { return min(i/per, m.cfg.PEs-1) }
	case HotSpot:
		peOf = func(i, id int) int { return 0 }
	default:
		peOf = func(i, id int) int { return i % m.cfg.PEs }
	}
	for i, id := range computeIDs {
		pe := peOf(i, id)
		m.cells[id].endpoint = pe
		m.residents[pe] = append(m.residents[pe], id)
	}
}

// step advances one machine cycle; it reports whether any activity
// remains.
func (m *machine) step(now int) bool {
	active := false

	// 1. Network delivery.
	delivered := m.net.step()
	for _, p := range delivered {
		m.deliver(p, now)
		active = true
	}
	if m.opNet != nil {
		for _, p := range m.opNet.step() {
			m.deliver(p, now)
			active = true
		}
	}
	// local same-endpoint deliveries scheduled last cycle
	locals := m.localNext
	m.localNext = nil
	for _, p := range locals {
		m.deliver(p, now)
		m.inflight--
		active = true
	}

	// 2. Function units: complete and initiate.
	for fi, f := range m.fus {
		rest := f.inflight[:0]
		for _, job := range f.inflight {
			if job.doneAt <= now {
				if m.tr != nil {
					m.tr.Emit(trace.Event{
						Cycle: int64(now), Kind: trace.KindFUDone,
						Cell: int32(job.srcCell), Port: -1, Unit: int32(m.fuEndpoint(fi)), Src: -1, Dst: -1,
					})
				}
				for _, tgt := range job.targets {
					m.emit(&packet{
						kind: pktResult, src: m.fuEndpoint(fi), dst: tgt.endpoint,
						cell: tgt.cell, port: tgt.port, val: job.result,
					}, now)
				}
			} else {
				rest = append(rest, job)
				active = true
			}
		}
		f.inflight = rest
		if len(f.queue) > 0 {
			p := f.queue[0]
			f.queue = f.queue[1:]
			lat := m.latencyOf(graph.Op(p.op.opcode))
			f.inflight = append(f.inflight, fuJob{
				doneAt:  now + lat,
				result:  exec.ApplyOp(graph.Op(p.op.opcode), p.op.vals),
				targets: p.op.targets,
				srcCell: p.op.srcCell,
			})
			m.res.FUBusy[fi]++
			if m.tr != nil {
				m.tr.Emit(trace.Event{
					Cycle: int64(now), Kind: trace.KindFUStart,
					Cell: int32(p.op.srcCell), Port: -1, Unit: int32(m.fuEndpoint(fi)), Src: -1, Dst: -1,
					Aux: int64(lat),
				})
			}
			active = true
		}
	}

	// 3. PEs and AMs each retire one enabled instruction.
	if m.tr != nil {
		clear(m.fired)
	}
	for e := 0; e < m.numEndpoints(); e++ {
		ids := m.residents[e]
		if len(ids) == 0 {
			continue
		}
		start := m.rrNext[e]
		for k := 0; k < len(ids); k++ {
			id := ids[(start+k)%len(ids)]
			if m.fire(m.cells[id], now) {
				m.rrNext[e] = (start + k + 1) % len(ids)
				if e < m.cfg.PEs {
					m.res.PEBusy[e]++
				}
				active = true
				break
			}
		}
	}
	if m.tr != nil {
		m.emitStalls(now)
	}

	if m.net.pending() > 0 || m.inflight > 0 {
		active = true
	}
	if m.opNet != nil && m.opNet.pending() > 0 {
		active = true
	}
	return active
}

// emitStalls classifies every cell that did not retire this cycle and
// emits one stall event per waiting cell (tracing only; planCell is
// side-effect free, so this pass cannot perturb the run). A cell whose plan
// succeeds but did not fire lost its endpoint's one-instruction-per-cycle
// slot — PE instruction-bandwidth contention.
func (m *machine) emitStalls(now int) {
	for id, c := range m.cells {
		if m.fired[id] {
			continue
		}
		_, why := m.planCell(c)
		switch why {
		case trace.ReasonNone:
			why = trace.ReasonUnitBusy
		case trace.ReasonDone:
			continue
		}
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindStall,
			Cell: int32(id), Port: -1, Unit: int32(c.endpoint), Src: -1, Dst: -1, Reason: why,
		})
	}
}

func (m *machine) latencyOf(op graph.Op) int {
	switch op {
	case graph.OpMul, graph.OpDiv:
		return m.cfg.MulLatency
	default:
		return m.cfg.AddLatency
	}
}

// emit routes a packet, short-circuiting same-endpoint traffic with a
// one-cycle local delay. now is the emission cycle, stamped on the packet
// so delivery can report the transit (and queueing) time.
func (m *machine) emit(p *packet, now int) {
	p.sentAt = now
	m.res.Packets[p.kind.String()]++
	m.res.TotalPackets++
	if m.isAM(p.src) || m.isAM(p.dst) {
		m.res.AMPackets++
	}
	if m.tr != nil {
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindSend,
			Cell: int32(p.trCell()), Port: -1, Unit: -1,
			Src: int32(p.src), Dst: int32(p.dst), Packet: p.kind.traceKind(),
		})
	}
	if p.src == p.dst {
		m.localNext = append(m.localNext, p)
		m.inflight++
		return
	}
	if m.opNet != nil && p.kind == pktOp {
		m.opNet.send(p)
		return
	}
	m.net.send(p)
}

// deliver applies an arrived packet to its destination.
func (m *machine) deliver(p *packet, now int) {
	if m.tr != nil {
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindDeliver,
			Cell: int32(p.trCell()), Port: int32(p.port), Unit: -1,
			Src: int32(p.src), Dst: int32(p.dst), Packet: p.kind.traceKind(),
			Aux: int64(now - p.sentAt),
		})
	}
	switch p.kind {
	case pktAck:
		m.cells[p.cell].pendingAcks--
	case pktResult:
		c := m.cells[p.cell]
		if c.inTok[p.port] != nil {
			panic(fmt.Sprintf("machine: operand slot collision at %s port %d", c.node.Name(), p.port))
		}
		v := p.val
		c.inTok[p.port] = &v
	case pktOp:
		fi := p.dst - m.cfg.PEs
		m.fus[fi].queue = append(m.fus[fi].queue, p)
	}
}

// operand returns the value at port p (literal or held token).
func (c *cell) operand(p int) *value.Value {
	if c.node.In[p].Literal != nil {
		return c.node.In[p].Literal
	}
	return c.inTok[p]
}

// cellPlan is a cell's planned retirement effect, computed read-only by
// planCell and applied by fire. Arithmetic cells (arith) ship an operation
// packet carrying vals instead of producing out locally.
type cellPlan struct {
	consume  []int // ports whose tokens are consumed
	out      value.Value
	produced bool
	advance  bool
	sink     bool
	arith    bool
	vals     []value.Value
	targets  []target
}

// planCell decides whether cell c can retire now and, if so, what its
// effects are. The returned reason is trace.ReasonNone when the cell is
// enabled and otherwise classifies the stall; planCell has no side
// effects either way.
func (m *machine) planCell(c *cell) (cellPlan, trace.Reason) {
	var pl cellPlan
	if c.pendingAcks > 0 {
		return pl, trace.ReasonAckWait
	}
	n := c.node

	switch n.Op {
	case graph.OpSource:
		if c.srcPos >= len(n.Stream) {
			return pl, trace.ReasonDone
		}
		pl.out = n.Stream[c.srcPos]
		pl.produced = true
		pl.advance = true
	case graph.OpCtlGen:
		total := n.Pattern.Len()
		if total >= 0 && c.srcPos >= total {
			return pl, trace.ReasonDone
		}
		pl.out = value.B(n.Pattern.At(c.srcPos))
		pl.produced = true
		pl.advance = true
	case graph.OpSink:
		v := c.operand(0)
		if v == nil {
			return pl, trace.ReasonOperandWait
		}
		pl.out = *v
		pl.sink = true
		pl.consume = append(pl.consume, 0)
	case graph.OpMerge:
		ctl := c.operand(0)
		if ctl == nil {
			return pl, trace.ReasonOperandWait
		}
		sel := 2
		if ctl.AsBool() {
			sel = 1
		}
		v := c.operand(sel)
		if v == nil {
			return pl, trace.ReasonOperandWait
		}
		for p := 3; p < len(n.In); p++ {
			if c.operand(p) == nil {
				return pl, trace.ReasonOperandWait
			}
		}
		pl.out = *v
		pl.produced = true
		pl.consume = append(pl.consume, 0, sel)
		for p := 3; p < len(n.In); p++ {
			pl.consume = append(pl.consume, p)
		}
	case graph.OpTGate, graph.OpFGate:
		ctl := c.operand(0)
		data := c.operand(1)
		if ctl == nil || data == nil {
			return pl, trace.ReasonOperandWait
		}
		for p := 2; p < len(n.In); p++ {
			if c.operand(p) == nil {
				return pl, trace.ReasonOperandWait
			}
		}
		pass := ctl.AsBool()
		if n.Op == graph.OpFGate {
			pass = !pass
		}
		pl.out = *data
		pl.produced = pass
		for p := 0; p < len(n.In); p++ {
			pl.consume = append(pl.consume, p)
		}
	default:
		vals := make([]value.Value, len(n.In))
		for p := range n.In {
			v := c.operand(p)
			if v == nil {
				return pl, trace.ReasonOperandWait
			}
			vals[p] = *v
		}
		for p := range n.In {
			pl.consume = append(pl.consume, p)
		}
		if n.Op.IsArith() {
			pl.arith = true
			pl.vals = vals
		} else {
			pl.out = exec.ApplyOp(n.Op, vals)
			pl.produced = true
		}
	}

	// Destination list (gates evaluated against held operands). Arithmetic
	// cells always ship their destinations with the operation packet.
	if pl.produced || pl.arith {
		for _, a := range n.Out {
			write := true
			if a.Gate != graph.NoGate {
				gv := c.operand(a.Gate)
				if gv == nil {
					return pl, trace.ReasonOperandWait
				}
				write = gv.AsBool()
			}
			if write {
				pl.targets = append(pl.targets, target{
					endpoint: m.cells[a.To].endpoint, cell: int(a.To), port: a.ToPort,
				})
			}
		}
	}
	return pl, trace.ReasonNone
}

// fire attempts to retire cell c; it reports whether it fired. Arithmetic
// cells ship an operation packet to a function unit (which sends the result
// packets); either way the cell owes acknowledgments for every destination
// targeted.
func (m *machine) fire(c *cell, now int) bool {
	pl, why := m.planCell(c)
	if why != trace.ReasonNone {
		return false
	}
	n := c.node
	if m.tr != nil {
		m.fired[n.ID] = true
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindFiring,
			Cell: int32(n.ID), Port: -1, Unit: int32(c.endpoint), Src: -1, Dst: -1,
		})
	}
	m.commitConsume(c, pl.consume, now)
	if pl.advance {
		c.srcPos++
	}
	if pl.sink {
		m.res.Outputs[n.Label] = append(m.res.Outputs[n.Label], pl.out)
		m.res.Arrivals[n.Label] = append(m.res.Arrivals[n.Label], exec.Arrival{Cycle: now, Val: pl.out})
	}
	c.pendingAcks = len(pl.targets)
	if pl.arith {
		fi := m.fuSeq % m.cfg.FUs
		m.fuSeq++
		m.emit(&packet{
			kind: pktOp, src: c.endpoint, dst: m.fuEndpoint(fi),
			op: opPayload{opcode: uint8(n.Op), vals: pl.vals, targets: pl.targets, srcCell: int(n.ID)},
		}, now)
		return true
	}
	for _, tgt := range pl.targets {
		m.emit(&packet{kind: pktResult, src: c.endpoint, dst: tgt.endpoint,
			cell: tgt.cell, port: tgt.port, val: pl.out}, now)
	}
	return true
}

// commitConsume clears consumed operand slots and sends acknowledge
// packets to their producers.
func (m *machine) commitConsume(c *cell, ports []int, now int) {
	for _, p := range ports {
		in := c.node.In[p]
		if in.Arc == nil {
			continue // literal operand
		}
		if c.inTok[p] == nil {
			continue // preloaded-literal port with no token (not possible; guard)
		}
		c.inTok[p] = nil
		producer := m.cells[in.Arc.From]
		m.emit(&packet{kind: pktAck, src: c.endpoint, dst: producer.endpoint, cell: int(in.Arc.From)}, now)
	}
}

// drainState mirrors exec's cleanliness report.
func (m *machine) drainState() (bool, []string) {
	var stalled []string
	for _, c := range m.cells {
		n := c.node
		switch n.Op {
		case graph.OpSource:
			if c.srcPos < len(n.Stream) {
				stalled = append(stalled, fmt.Sprintf("%s: %d stream values unsent", n.Name(), len(n.Stream)-c.srcPos))
			}
		case graph.OpCtlGen:
			if t := n.Pattern.Len(); t >= 0 && c.srcPos < t {
				stalled = append(stalled, fmt.Sprintf("%s: %d control values unsent", n.Name(), t-c.srcPos))
			}
		}
		for p, tok := range c.inTok {
			if tok != nil {
				stalled = append(stalled, fmt.Sprintf("token %s stranded at %s port %d", tok, n.Name(), p))
			}
		}
	}
	return len(stalled) == 0, stalled
}

// Describe summarizes a machine result.
func Describe(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d clean=%v packets=%d am-fraction=%.3f pe-util=%.3f\n",
		r.Cycles, r.Clean, r.TotalPackets, r.AMFraction(), r.Utilization())
	kinds := make([]string, 0, len(r.Packets))
	for k := range r.Packets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %s packets: %d\n", k, r.Packets[k])
	}
	labels := make([]string, 0, len(r.Outputs))
	for l := range r.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "  sink %q: %d values, II=%.3f\n", l, len(r.Outputs[l]), r.II(l))
	}
	return b.String()
}
