// Package machine is a cycle-accurate packet-level simulator of the static
// dataflow architecture of §2 (Fig 1): processing elements (PE) holding
// instruction cells, pipelined function units (FU) executing shipped
// arithmetic, array memory units (AM) sourcing and sinking array streams,
// and a packet-switched routing network carrying operation, result, and
// acknowledge packets.
//
// Where package exec abstracts time to the firing discipline (one firing
// per two cycles is the maximum), this simulator exposes the machine
// effects the paper's §2 discusses: PE instruction bandwidth, function-unit
// latency, network transit and contention, and the split of packet traffic
// between processing elements and array memories ("one eighth or less of
// the operation packets would be sent to the array memories").
//
// The inner loop is event-driven: network transit and function-unit
// completion are tracked on time wheels indexed by due cycle (no per-cycle
// scans of in-flight lists), operand tokens live in flat per-cell slices,
// packets are recycled through a free list, and sink buffers are
// preallocated, so steady-state simulation allocates nothing.
package machine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/partition"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Assignment selects the instruction-cell → PE mapping strategy.
type Assignment int

const (
	// RoundRobin deals cells across PEs by cell id.
	RoundRobin Assignment = iota
	// Random shuffles cells across PEs (Config.Seed).
	Random
	// ByStage assigns contiguous runs of cell ids to each PE, which for
	// compiler-emitted graphs approximates grouping pipeline stages.
	ByStage
	// HotSpot piles every compute cell onto PE 0 — a deliberately bad
	// placement that saturates one PE's instruction bandwidth and network
	// port, used to exercise the contention observability.
	HotSpot
	// Placed uses the explicit cell → PE map in Config.Placement (package
	// place computes contention-aware ones).
	Placed
)

func (a Assignment) String() string {
	switch a {
	case Random:
		return "random"
	case ByStage:
		return "by-stage"
	case HotSpot:
		return "hot-spot"
	case Placed:
		return "placed"
	default:
		return "round-robin"
	}
}

// NetworkKind selects the routing-network model.
type NetworkKind int

const (
	// Crossbar has a fixed transit delay and per-endpoint delivery
	// serialization.
	Crossbar NetworkKind = iota
	// Butterfly is a log-stage packet-switched delta network of 2×2
	// switches [2].
	Butterfly
)

func (n NetworkKind) String() string {
	if n == Butterfly {
		return "butterfly"
	}
	return "crossbar"
}

// Config describes the machine.
type Config struct {
	// PEs is the processing-element count (default 4). Each PE retires at
	// most one enabled instruction per cycle.
	PEs int
	// FUs is the function-unit count (default 2). FUs are pipelined:
	// initiation one operation per cycle, completion after the op's
	// latency.
	FUs int
	// AMs is the array-memory unit count (default 1). Sources and sinks —
	// the long-lived arrays — reside in AMs; each AM performs one access
	// per cycle.
	AMs int
	// MulLatency and AddLatency configure FU pipeline depths (defaults 4
	// and 2). Mul covers MULT/DIV, Add covers ADD/SUB/MIN/MAX/NEG/ABS.
	MulLatency int
	AddLatency int
	// Network selects the RN model; NetDelay is the crossbar transit
	// delay (default 2).
	Network  NetworkKind
	NetDelay int
	// SplitNetworks uses two separate fabrics as Fig 1 draws them: one
	// routing network carrying operation packets to the function units and
	// array memories, and one distribution network carrying result and
	// acknowledge packets back to instruction cells.
	SplitNetworks bool
	// Assign selects cell placement; Seed drives Random.
	Assign Assignment
	Seed   int64
	// Placement is the explicit cell → PE map used when Assign == Placed:
	// indexed by FIFO-expanded node ID, each compute cell's entry must lie
	// in [0, PEs). Source and sink entries are ignored (those cells always
	// reside on array memories; package place emits -1 for them).
	// Placement never changes what a run computes — outputs are
	// byte-identical under any mapping — only where cells retire and which
	// packets cross the routing network.
	Placement []int
	// MaxCycles bounds the run (default 10M).
	MaxCycles int
	// Tracer, if non-nil, receives the structured observability event
	// stream (firings, packet sends/deliveries, FU activity, stall
	// classifications). Tracing is passive: it never alters scheduling,
	// results, or cycle counts.
	Tracer trace.Tracer
	// Progress, if non-nil, is updated live as the run advances (one
	// atomic store per cycle, one add per sink arrival) so another
	// goroutine — the telemetry server — can observe cycle progress
	// mid-run. Like Tracer it is passive and costs one nil check when
	// unset.
	Progress *trace.Progress
	// Workers selects the sharded parallel engine: machine endpoints are
	// dealt to min(Workers, endpoints) worker goroutines that deliver,
	// execute, and retire their own endpoints' work concurrently, with
	// packet emission serialized once per cycle in the sequential
	// engine's exact order. 0 or 1 runs the sequential engine. Every
	// observable outcome — outputs, arrivals, packet counts, busy
	// counters, stall diagnostics, and the trace event stream — is
	// byte-identical for any worker count.
	Workers int
	// Ctx, if non-nil, cancels the run early: the cycle loop polls
	// Ctx.Done() every exec.CancelCadence cycles and, when fired, returns
	// the partial Result (Canceled set, a "canceled" stall diagnostic
	// first) together with a wrapping error. A nil Ctx costs one nil check
	// per cadence window; an un-canceled Ctx never alters results.
	Ctx context.Context
	// Batch widens the run to B independent input streams ("lanes"): one
	// placed machine instance per lane advances through the same expanded
	// graph in lockstep, so the packet-level cycle accounting of every
	// lane is exactly what a scalar run of that lane's streams would
	// report. Lane 0 always consumes the graph-bound streams and its view
	// (the top-level Result fields, the Tracer event stream) is
	// byte-identical to a scalar run. At most exec.MaxBatch lanes. When
	// Batch > 1, Workers shards the run by lane ranges instead of machine
	// endpoints.
	Batch int
	// LaneInputs supplies per-lane source streams for a batched run,
	// keyed by source-cell label: LaneInputs[l] rebinds lane l's sources;
	// a nil map or a missing key falls back to the base streams (Inputs,
	// or the streams bound on the graph). Lane 0 ignores its entry.
	// len(LaneInputs) must not exceed Batch.
	LaneInputs []map[string][]value.Value
	// Inputs, when non-nil, overrides source streams by source-cell label
	// for this run only: the graph is never written, so one graph — in
	// particular one cached Prepared artifact — can run concurrently with
	// different inputs. A missing key falls back to the stream bound on
	// the graph; a key naming no source cell is an error. In a batched
	// run Inputs is the base every lane defaults to and LaneInputs
	// overrides per lane.
	Inputs map[string][]value.Value
}

func (c Config) withDefaults() Config {
	if c.PEs <= 0 {
		c.PEs = 4
	}
	if c.FUs <= 0 {
		c.FUs = 2
	}
	if c.AMs <= 0 {
		c.AMs = 1
	}
	if c.MulLatency <= 0 {
		c.MulLatency = 4
	}
	if c.AddLatency <= 0 {
		c.AddLatency = 2
	}
	if c.NetDelay <= 0 {
		c.NetDelay = 2
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = 10_000_000
	}
	return c
}

// Result holds a machine run's outcome and statistics.
type Result struct {
	Cycles   int
	Outputs  map[string][]value.Value
	Arrivals map[string][]exec.Arrival
	// Packets counts routed traffic by kind.
	Packets map[string]int
	// AMPackets counts packets delivered to or sent from array memory
	// units; TotalPackets is all routed traffic.
	AMPackets    int
	TotalPackets int
	// PEBusy counts instruction retirements per PE; FUBusy counts
	// operations initiated per FU.
	PEBusy []int
	FUBusy []int
	Clean  bool
	// Canceled reports that Config.Ctx fired before quiescence; the
	// Result carries the work done up to the cancellation cycle and
	// Stalled leads with a "canceled" diagnostic.
	Canceled bool
	// Stalled carries diagnostics if the machine quiesced with work left.
	Stalled []string
	// Graph is the graph actually simulated (FIFO cells expanded), the
	// one trace event cell IDs refer to.
	Graph *graph.Graph
	// Shards holds per-shard accounting when the run used the sharded
	// engine (Config.Workers > 1); nil for sequential runs.
	Shards []partition.ShardStat
	// ShardDiag lists shard diagnostics captured when a sharded run
	// halted without quiescing. Separate from Stalled so stall
	// diagnostics stay byte-identical across worker counts.
	ShardDiag []string
	// Batch is the lane count of a batched run (0 for scalar runs); the
	// top-level fields above are lane 0's view.
	Batch int
	// Lanes holds each lane's view of a batched run; nil for scalar runs.
	Lanes []LaneResult
}

// LaneResult is one lane's view of a batched machine run. Its fields mean
// exactly what the same-named Result fields mean for a scalar run of that
// lane's streams — the lockstep engine simulates one placed machine per
// lane, so per-lane packet counts and busy counters are preserved.
type LaneResult struct {
	Cycles       int
	Outputs      map[string][]value.Value
	Arrivals     map[string][]exec.Arrival
	Packets      map[string]int
	AMPackets    int
	TotalPackets int
	PEBusy       []int
	FUBusy       []int
	Clean        bool
	Canceled     bool
	Stalled      []string
}

// Output returns the stream received by the lane's sink with the given label.
func (r *LaneResult) Output(label string) []value.Value { return r.Outputs[label] }

// II returns the lane's steady-state initiation interval at the named sink.
func (r *LaneResult) II(label string) float64 { return exec.SteadyII(r.Arrivals[label]) }

// Output returns the stream received by the sink with the given label.
func (r *Result) Output(label string) []value.Value { return r.Outputs[label] }

// II returns the steady-state initiation interval at the named sink (same
// transient-excluding measurement window as exec.SteadyII).
func (r *Result) II(label string) float64 { return exec.SteadyII(r.Arrivals[label]) }

// AMFraction returns the share of routed packets touching array memory.
func (r *Result) AMFraction() float64 {
	if r.TotalPackets == 0 {
		return 0
	}
	return float64(r.AMPackets) / float64(r.TotalPackets)
}

// Utilization returns mean PE busy fraction.
func (r *Result) Utilization() float64 {
	if r.Cycles == 0 || len(r.PEBusy) == 0 {
		return 0
	}
	total := 0
	for _, b := range r.PEBusy {
		total += b
	}
	return float64(total) / float64(r.Cycles*len(r.PEBusy))
}

// cell is the machine-resident state of one instruction cell. Operand
// tokens are held flat (value + presence bit) rather than as pointers.
type cell struct {
	node        *graph.Node
	endpoint    int
	inTok       []value.Value
	inHas       []bool
	pendingAcks int
	srcPos      int
	// stream is the source cell's bound stream — the graph's, unless a
	// batched lane rebound it via Config.LaneInputs. Nil for non-sources.
	stream []value.Value
}

// fu is one pipelined function unit. In-flight operations sit on a time
// wheel bucketed by completion cycle; the initiation queue is a FIFO with a
// popped-prefix head index.
type fu struct {
	queue    []*packet // operation packets awaiting initiation
	qhead    int
	wheel    [][]fuJob // wheel[doneAt % wheelSlots], initiation order within a bucket
	inflight int
}

type fuJob struct {
	result  value.Value
	targets []target
	srcCell int
}

// machine is the full simulator state.
type machine struct {
	cfg   Config
	g     *graph.Graph
	cells []cell
	// residents[e] lists cell ids hosted by endpoint e (PEs and AMs).
	residents [][]int
	rrNext    []int
	net       network   // distribution network (results, acks); all traffic when not split
	opNet     network   // routing network for operation packets (nil unless SplitNetworks)
	localNext []*packet // same-endpoint packets delivered next cycle
	localBuf  []*packet // spare buffer swapped with localNext each cycle
	fus       []fu
	fuSlots   int // FU wheel size: max latency + 1
	res       *Result
	pktCount  [3]int // routed traffic by packetKind
	inflight  int    // local packets in flight
	fuSeq     int
	outCap    int // preallocation hint for sink streams
	tr        trace.Tracer
	prog      *trace.Progress
	laneCtr   *trace.LaneCounters // this lane's live counters in a batched run
	fired     []bool              // per-cell fired-this-cycle scratch (tracing only)
	canceled  bool                // Config.Ctx fired mid-run (set by the cycle loops)
	arena     *runArena           // pooled run state on the Prepared path; nil otherwise

	// plan scratch, reused across planCell calls (copied out when a plan's
	// slices must outlive the call — operation packets ship them to FUs).
	// The sharded engine gives each worker its own planScratch.
	sc planScratch

	pktFree []*packet // recycled packets
}

// planScratch holds the reusable buffers one planCell caller owns; the
// sequential engine has one, each shard worker has its own.
type planScratch struct {
	consumeBuf []int
	valsBuf    []value.Value
	targetBuf  []target
}

// endpoint layout: [0, PEs) compute PEs, [PEs, PEs+FUs) function units,
// [PEs+FUs, PEs+FUs+AMs) array memories.
func (m *machine) fuEndpoint(i int) int { return m.cfg.PEs + i }
func (m *machine) amEndpoint(i int) int { return m.cfg.PEs + m.cfg.FUs + i }
func (m *machine) numEndpoints() int    { return m.cfg.PEs + m.cfg.FUs + m.cfg.AMs }
func (m *machine) isAM(e int) bool      { return e >= m.cfg.PEs+m.cfg.FUs }

// newPacket returns a zeroed packet, recycled from the free list when
// possible.
func (m *machine) newPacket() *packet {
	if n := len(m.pktFree); n > 0 {
		p := m.pktFree[n-1]
		m.pktFree = m.pktFree[:n-1]
		*p = packet{}
		return p
	}
	return &packet{}
}

func (m *machine) freePacket(p *packet) { m.pktFree = append(m.pktFree, p) }

// Run simulates the graph on the configured machine. When MaxCycles is
// exhausted before quiescence the partial Result (with Stalled diagnostics
// populated) is returned together with the error.
func Run(g *graph.Graph, cfg Config) (*Result, error) {
	res, err := run(g, cfg)
	annotateSpan(cfg.Ctx, res, err, cfg.Workers, cfg.Batch)
	return res, err
}

// run is Run without span annotation; the wrapper records the outcome
// onto any obs.Span carried by cfg.Ctx strictly after the simulation has
// ended, so an attached span cannot perturb packet order or cycle counts.
func run(g *graph.Graph, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	g = g.ExpandFIFOs()
	if err := validateInputs(g, cfg.Inputs); err != nil {
		return nil, err
	}
	if cfg.Batch > 1 {
		return runBatched(g, cfg)
	}
	m, err := newMachine(g, cfg, cfg.Inputs, nil)
	if err != nil {
		return nil, err
	}
	return m.drive()
}

// drive is the cycle loop shared by the one-shot and Prepared entry
// points: it dispatches to the sharded engine or steps the sequential one
// until quiescence, cancellation, or the cycle bound.
func (m *machine) drive() (*Result, error) {
	cfg := m.cfg
	if w := cfg.Workers; w > 1 {
		if n := m.numEndpoints(); w > n {
			w = n
		}
		if w > 1 {
			return m.runSharded(w)
		}
	}

	var done <-chan struct{}
	if cfg.Ctx != nil {
		done = cfg.Ctx.Done()
	}
	cycle := 0
	for ; cycle < cfg.MaxCycles; cycle++ {
		if done != nil && cycle&(exec.CancelCadence-1) == 0 {
			select {
			case <-done:
				m.canceled = true
			default:
			}
			if m.canceled {
				break
			}
		}
		if m.prog != nil {
			m.prog.Cycle.Store(int64(cycle))
		}
		if !m.step(cycle) {
			break
		}
	}
	return m.finish(cycle)
}

// validateInputs rejects Config.Inputs keys that name no source cell —
// the same contract exec.Options.Inputs enforces, so a mistyped input
// name fails loudly on either core instead of silently running the
// graph-bound stream.
func validateInputs(g *graph.Graph, inputs map[string][]value.Value) error {
	if len(inputs) == 0 {
		return nil
	}
	srcLabels := make(map[string]bool)
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource {
			srcLabels[n.Label] = true
		}
	}
	for label := range inputs {
		if !srcLabels[label] {
			return fmt.Errorf("machine: input %q names no source cell", label)
		}
	}
	return nil
}

// newMachine builds and places one machine instance over the validated,
// FIFO-expanded graph. laneStreams, when non-nil, rebinds source streams by
// label (per-run Config.Inputs or a batched lane's inputs, already merged);
// missing labels keep the graph's stream. arena, when non-nil, supplies
// pooled run state (the Prepared path) instead of fresh allocations.
func newMachine(g *graph.Graph, cfg Config, laneStreams map[string][]value.Value, arena *runArena) (*machine, error) {
	m := &machine{
		cfg:       cfg,
		arena:     arena,
		g:         g,
		tr:        cfg.Tracer,
		prog:      cfg.Progress,
		residents: make([][]int, cfg.PEs+cfg.FUs+cfg.AMs),
		rrNext:    make([]int, cfg.PEs+cfg.FUs+cfg.AMs),
		res: &Result{
			Graph:    g,
			Outputs:  map[string][]value.Value{},
			Arrivals: map[string][]exec.Arrival{},
			Packets:  map[string]int{},
			PEBusy:   make([]int, cfg.PEs),
			FUBusy:   make([]int, cfg.FUs),
		},
	}
	mkNet := func() network {
		if cfg.Network == Butterfly {
			return newButterfly(m.numEndpoints())
		}
		return newCrossbar(m.numEndpoints(), cfg.NetDelay)
	}
	m.net = mkNet()
	if cfg.SplitNetworks {
		m.opNet = mkNet()
	}
	m.fuSlots = max(cfg.MulLatency, cfg.AddLatency) + 1
	m.fus = make([]fu, cfg.FUs)
	for i := range m.fus {
		m.fus[i].wheel = make([][]fuJob, m.fuSlots)
	}
	if err := m.place(); err != nil {
		return nil, err
	}
	if m.tr != nil {
		m.fired = make([]bool, g.NumNodes())
		m.tr.Start(m.meta())
	}
	for _, n := range g.Nodes() {
		switch n.Op {
		case graph.OpSink:
			if _, dup := m.res.Outputs[n.Label]; dup {
				return nil, fmt.Errorf("machine: duplicate sink label %q", n.Label)
			}
			m.res.Outputs[n.Label] = nil
			m.res.Arrivals[n.Label] = nil
		case graph.OpSource:
			c := &m.cells[n.ID]
			c.stream = n.Stream
			if laneStreams != nil {
				if s, ok := laneStreams[n.Label]; ok {
					c.stream = s
				}
			}
			if len(c.stream) > m.outCap {
				m.outCap = len(c.stream)
			}
		}
	}
	// initial tokens
	for _, a := range g.Arcs() {
		if a.Init != nil {
			c := &m.cells[a.To]
			c.inTok[a.ToPort] = *a.Init
			c.inHas[a.ToPort] = true
		}
	}
	return m, nil
}

// finish assembles the Result once the cycle loop (sequential or sharded)
// has halted at endCycle.
func (m *machine) finish(endCycle int) (*Result, error) {
	m.res.Cycles = endCycle
	m.res.Clean, m.res.Stalled = m.drainState()
	for k := pktResult; k <= pktOp; k++ {
		if m.pktCount[k] > 0 {
			m.res.Packets[k.String()] = m.pktCount[k]
		}
	}
	if m.canceled {
		m.res.Canceled = true
		m.res.Clean = false
		m.res.Stalled = append([]string{fmt.Sprintf("canceled: run stopped by context at cycle %d before quiescence", endCycle)},
			m.res.Stalled...)
		return m.res, fmt.Errorf("machine: run canceled at cycle %d: %w", endCycle, context.Cause(m.cfg.Ctx))
	}
	if endCycle >= m.cfg.MaxCycles {
		return m.res, fmt.Errorf("machine: no quiescence after %d cycles (livelock or MaxCycles too small)", m.cfg.MaxCycles)
	}
	return m.res, nil
}

// meta describes the placed machine for the observability layer.
func (m *machine) meta() trace.Meta {
	meta := trace.Meta{
		Cells:    make([]string, m.g.NumNodes()),
		Units:    make([]string, m.numEndpoints()),
		CellUnit: make([]int, m.g.NumNodes()),
	}
	for _, n := range m.g.Nodes() {
		meta.Cells[n.ID] = n.Name()
		meta.CellUnit[n.ID] = m.cells[n.ID].endpoint
	}
	for e := 0; e < m.numEndpoints(); e++ {
		switch {
		case e < m.cfg.PEs:
			meta.Units[e] = fmt.Sprintf("PE%d", e)
		case e < m.cfg.PEs+m.cfg.FUs:
			meta.Units[e] = fmt.Sprintf("FU%d", e-m.cfg.PEs)
		default:
			meta.Units[e] = fmt.Sprintf("AM%d", e-m.cfg.PEs-m.cfg.FUs)
		}
	}
	return meta
}

// place assigns cells to endpoints: sources and sinks to AMs, everything
// else per the configured strategy.
func (m *machine) place() error {
	if ar := m.arena; ar != nil {
		// Pooled path: cells and their operand slots are carved out of the
		// arena's flat arrays instead of allocated per run. The arena was
		// sized for this exact graph at Prepare time.
		m.cells = ar.cells[:m.g.NumNodes()]
		clear(ar.toks)
		clear(ar.has)
		off := 0
		for _, n := range m.g.Nodes() {
			np := len(n.In)
			m.cells[n.ID] = cell{
				node:  n,
				inTok: ar.toks[off : off+np : off+np],
				inHas: ar.has[off : off+np : off+np],
			}
			off += np
		}
	} else {
		m.cells = make([]cell, m.g.NumNodes())
		for _, n := range m.g.Nodes() {
			c := &m.cells[n.ID]
			c.node = n
			c.inTok = make([]value.Value, len(n.In))
			c.inHas = make([]bool, len(n.In))
		}
	}
	var computeIDs []int
	amNext := 0
	for _, n := range m.g.Nodes() {
		c := &m.cells[n.ID]
		if n.Op == graph.OpSource || n.Op == graph.OpSink {
			c.endpoint = m.amEndpoint(amNext % m.cfg.AMs)
			amNext++
			m.residents[c.endpoint] = append(m.residents[c.endpoint], int(n.ID))
			continue
		}
		computeIDs = append(computeIDs, int(n.ID))
	}
	var peOf func(i, id int) int
	switch m.cfg.Assign {
	case Random:
		rng := rand.New(rand.NewSource(m.cfg.Seed + 1))
		peOf = func(i, id int) int { return rng.Intn(m.cfg.PEs) }
	case ByStage:
		per := (len(computeIDs) + m.cfg.PEs - 1) / m.cfg.PEs
		if per == 0 {
			per = 1
		}
		peOf = func(i, id int) int { return min(i/per, m.cfg.PEs-1) }
	case HotSpot:
		peOf = func(i, id int) int { return 0 }
	case Placed:
		// The map indexes FIFO-expanded node IDs — the graph this machine
		// was handed — so a map planned against a pre-expansion graph is a
		// length mismatch, caught here.
		if got, want := len(m.cfg.Placement), m.g.NumNodes(); got != want {
			return fmt.Errorf("machine: placement maps %d cells, graph has %d (plan against the FIFO-expanded graph)", got, want)
		}
		for _, id := range computeIDs {
			if pe := m.cfg.Placement[id]; pe < 0 || pe >= m.cfg.PEs {
				return fmt.Errorf("machine: placement sends cell %d to PE %d, want [0,%d)", id, pe, m.cfg.PEs)
			}
		}
		peOf = func(i, id int) int { return m.cfg.Placement[id] }
	default:
		peOf = func(i, id int) int { return i % m.cfg.PEs }
	}
	for i, id := range computeIDs {
		pe := peOf(i, id)
		m.cells[id].endpoint = pe
		m.residents[pe] = append(m.residents[pe], id)
	}
	return nil
}

// step advances one machine cycle; it reports whether any activity
// remains.
func (m *machine) step(now int) bool {
	active := false

	// 1. Network delivery.
	for _, p := range m.net.step() {
		m.deliver(p, now)
		active = true
	}
	if m.opNet != nil {
		for _, p := range m.opNet.step() {
			m.deliver(p, now)
			active = true
		}
	}
	// local same-endpoint deliveries scheduled last cycle
	locals := m.localNext
	m.localNext = m.localBuf[:0]
	for _, p := range locals {
		m.deliver(p, now)
		m.inflight--
		active = true
	}
	m.localBuf = locals[:0]

	// 2. Function units: complete and initiate. Completions due this cycle
	// sit in the wheel bucket for now; within a bucket they are in
	// initiation order (an op's latency never exceeds the wheel span, so
	// buckets never mix completion cycles).
	slot := now % m.fuSlots
	for fi := range m.fus {
		f := &m.fus[fi]
		done := f.wheel[slot]
		for ji := range done {
			job := &done[ji]
			if m.tr != nil {
				m.tr.Emit(trace.Event{
					Cycle: int64(now), Kind: trace.KindFUDone,
					Cell: int32(job.srcCell), Port: -1, Unit: int32(m.fuEndpoint(fi)), Src: -1, Dst: -1,
				})
			}
			for _, tgt := range job.targets {
				p := m.newPacket()
				p.kind, p.src, p.dst = pktResult, m.fuEndpoint(fi), tgt.endpoint
				p.cell, p.port, p.val = tgt.cell, tgt.port, job.result
				m.emit(p, now)
			}
		}
		f.inflight -= len(done)
		f.wheel[slot] = done[:0]
		if f.inflight > 0 {
			active = true
		}
		if f.qhead < len(f.queue) {
			p := f.queue[f.qhead]
			f.qhead++
			if f.qhead == len(f.queue) {
				f.queue = f.queue[:0]
				f.qhead = 0
			}
			lat := m.latencyOf(graph.Op(p.op.opcode))
			dslot := (now + lat) % m.fuSlots
			f.wheel[dslot] = append(f.wheel[dslot], fuJob{
				result:  exec.ApplyOp(graph.Op(p.op.opcode), p.op.vals),
				targets: p.op.targets,
				srcCell: p.op.srcCell,
			})
			f.inflight++
			m.res.FUBusy[fi]++
			if m.tr != nil {
				m.tr.Emit(trace.Event{
					Cycle: int64(now), Kind: trace.KindFUStart,
					Cell: int32(p.op.srcCell), Port: -1, Unit: int32(m.fuEndpoint(fi)), Src: -1, Dst: -1,
					Aux: int64(lat),
				})
			}
			m.freePacket(p)
			active = true
		}
	}

	// 3. PEs and AMs each retire one enabled instruction.
	if m.tr != nil {
		clear(m.fired)
	}
	for e := 0; e < m.numEndpoints(); e++ {
		ids := m.residents[e]
		if len(ids) == 0 {
			continue
		}
		start := m.rrNext[e]
		for k := 0; k < len(ids); k++ {
			id := ids[(start+k)%len(ids)]
			if m.fire(&m.cells[id], now) {
				m.rrNext[e] = (start + k + 1) % len(ids)
				if e < m.cfg.PEs {
					m.res.PEBusy[e]++
				}
				active = true
				break
			}
		}
	}
	if m.tr != nil {
		m.emitStalls(now)
	}

	if m.net.pending() > 0 || m.inflight > 0 {
		active = true
	}
	if m.opNet != nil && m.opNet.pending() > 0 {
		active = true
	}
	return active
}

// emitStalls classifies every cell that did not retire this cycle and
// emits one stall event per waiting cell (tracing only; planCell is
// side-effect free, so this pass cannot perturb the run). A cell whose plan
// succeeds but did not fire lost its endpoint's one-instruction-per-cycle
// slot — PE instruction-bandwidth contention.
func (m *machine) emitStalls(now int) {
	for id := range m.cells {
		if m.fired[id] {
			continue
		}
		c := &m.cells[id]
		_, why := m.planCell(c, &m.sc)
		switch why {
		case trace.ReasonNone:
			why = trace.ReasonUnitBusy
		case trace.ReasonDone:
			continue
		}
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindStall,
			Cell: int32(id), Port: -1, Unit: int32(c.endpoint), Src: -1, Dst: -1, Reason: why,
		})
	}
}

func (m *machine) latencyOf(op graph.Op) int {
	switch op {
	case graph.OpMul, graph.OpDiv:
		return m.cfg.MulLatency
	default:
		return m.cfg.AddLatency
	}
}

// emit routes a packet, short-circuiting same-endpoint traffic with a
// one-cycle local delay. now is the emission cycle, stamped on the packet
// so delivery can report the transit (and queueing) time.
func (m *machine) emit(p *packet, now int) {
	p.sentAt = now
	m.pktCount[p.kind]++
	m.res.TotalPackets++
	if m.isAM(p.src) || m.isAM(p.dst) {
		m.res.AMPackets++
	}
	if m.tr != nil {
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindSend,
			Cell: int32(p.trCell()), Port: -1, Unit: -1,
			Src: int32(p.src), Dst: int32(p.dst), Packet: p.kind.traceKind(),
		})
	}
	if p.src == p.dst {
		m.localNext = append(m.localNext, p)
		m.inflight++
		return
	}
	if m.opNet != nil && p.kind == pktOp {
		m.opNet.send(p)
		return
	}
	m.net.send(p)
}

// deliver applies an arrived packet to its destination. Result and ack
// packets die here and are recycled; operation packets queue at their
// function unit and are recycled at initiation.
func (m *machine) deliver(p *packet, now int) {
	if m.tr != nil {
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindDeliver,
			Cell: int32(p.trCell()), Port: int32(p.port), Unit: -1,
			Src: int32(p.src), Dst: int32(p.dst), Packet: p.kind.traceKind(),
			Aux: int64(now - p.sentAt),
		})
	}
	switch p.kind {
	case pktAck:
		m.cells[p.cell].pendingAcks--
		m.freePacket(p)
	case pktResult:
		c := &m.cells[p.cell]
		if c.inHas[p.port] {
			panic(fmt.Sprintf("machine: operand slot collision at %s port %d", c.node.Name(), p.port))
		}
		c.inTok[p.port] = p.val
		c.inHas[p.port] = true
		m.freePacket(p)
	case pktOp:
		fi := p.dst - m.cfg.PEs
		m.fus[fi].queue = append(m.fus[fi].queue, p)
	}
}

// operand returns the value at port p (literal or held token) and whether
// it is present.
func (c *cell) operand(p int) (value.Value, bool) {
	if lit := c.node.In[p].Literal; lit != nil {
		return *lit, true
	}
	if !c.inHas[p] {
		return value.Value{}, false
	}
	return c.inTok[p], true
}

// cellPlan is a cell's planned retirement effect, computed read-only by
// planCell and applied by fire. Arithmetic cells (arith) ship an operation
// packet carrying vals instead of producing out locally. The consume,
// vals, and targets slices alias the machine's plan scratch buffers and
// are only valid until the next planCell call; fire copies the ones that
// must outlive the plan.
type cellPlan struct {
	consume  []int // ports whose tokens are consumed
	out      value.Value
	produced bool
	advance  bool
	sink     bool
	arith    bool
	vals     []value.Value
	targets  []target
}

// planCell decides whether cell c can retire now and, if so, what its
// effects are. The returned reason is trace.ReasonNone when the cell is
// enabled and otherwise classifies the stall; planCell has no side
// effects beyond the caller's scratch buffers either way, and reads only
// c's own state plus immutable placement, so shard workers may plan
// different cells concurrently as long as each passes its own scratch.
func (m *machine) planCell(c *cell, sc *planScratch) (cellPlan, trace.Reason) {
	var pl cellPlan
	if c.pendingAcks > 0 {
		return pl, trace.ReasonAckWait
	}
	n := c.node
	sc.consumeBuf = sc.consumeBuf[:0]

	switch n.Op {
	case graph.OpSource:
		if c.srcPos >= len(c.stream) {
			return pl, trace.ReasonDone
		}
		pl.out = c.stream[c.srcPos]
		pl.produced = true
		pl.advance = true
	case graph.OpCtlGen:
		total := n.Pattern.Len()
		if total >= 0 && c.srcPos >= total {
			return pl, trace.ReasonDone
		}
		pl.out = value.B(n.Pattern.At(c.srcPos))
		pl.produced = true
		pl.advance = true
	case graph.OpSink:
		v, ok := c.operand(0)
		if !ok {
			return pl, trace.ReasonOperandWait
		}
		pl.out = v
		pl.sink = true
		sc.consumeBuf = append(sc.consumeBuf, 0)
	case graph.OpMerge:
		ctl, ok := c.operand(0)
		if !ok {
			return pl, trace.ReasonOperandWait
		}
		sel := 2
		if ctl.AsBool() {
			sel = 1
		}
		v, ok := c.operand(sel)
		if !ok {
			return pl, trace.ReasonOperandWait
		}
		for p := 3; p < len(n.In); p++ {
			if _, ok := c.operand(p); !ok {
				return pl, trace.ReasonOperandWait
			}
		}
		pl.out = v
		pl.produced = true
		sc.consumeBuf = append(sc.consumeBuf, 0, sel)
		for p := 3; p < len(n.In); p++ {
			sc.consumeBuf = append(sc.consumeBuf, p)
		}
	case graph.OpTGate, graph.OpFGate:
		ctl, okc := c.operand(0)
		data, okd := c.operand(1)
		if !okc || !okd {
			return pl, trace.ReasonOperandWait
		}
		for p := 2; p < len(n.In); p++ {
			if _, ok := c.operand(p); !ok {
				return pl, trace.ReasonOperandWait
			}
		}
		pass := ctl.AsBool()
		if n.Op == graph.OpFGate {
			pass = !pass
		}
		pl.out = data
		pl.produced = pass
		for p := 0; p < len(n.In); p++ {
			sc.consumeBuf = append(sc.consumeBuf, p)
		}
	default:
		if cap(sc.valsBuf) < len(n.In) {
			sc.valsBuf = make([]value.Value, len(n.In))
		}
		vals := sc.valsBuf[:len(n.In)]
		for p := range n.In {
			v, ok := c.operand(p)
			if !ok {
				return pl, trace.ReasonOperandWait
			}
			vals[p] = v
		}
		for p := range n.In {
			sc.consumeBuf = append(sc.consumeBuf, p)
		}
		if n.Op.IsArith() {
			pl.arith = true
			pl.vals = vals
		} else {
			pl.out = exec.ApplyOp(n.Op, vals)
			pl.produced = true
		}
	}
	pl.consume = sc.consumeBuf

	// Destination list (gates evaluated against held operands). Arithmetic
	// cells always ship their destinations with the operation packet.
	if pl.produced || pl.arith {
		sc.targetBuf = sc.targetBuf[:0]
		for _, a := range n.Out {
			write := true
			if a.Gate != graph.NoGate {
				gv, ok := c.operand(a.Gate)
				if !ok {
					return pl, trace.ReasonOperandWait
				}
				write = gv.AsBool()
			}
			if write {
				sc.targetBuf = append(sc.targetBuf, target{
					endpoint: m.cells[a.To].endpoint, cell: int(a.To), port: a.ToPort,
				})
			}
		}
		pl.targets = sc.targetBuf
	}
	return pl, trace.ReasonNone
}

// fire attempts to retire cell c; it reports whether it fired. Arithmetic
// cells ship an operation packet to a function unit (which sends the result
// packets); either way the cell owes acknowledgments for every destination
// targeted.
func (m *machine) fire(c *cell, now int) bool {
	pl, why := m.planCell(c, &m.sc)
	if why != trace.ReasonNone {
		return false
	}
	n := c.node
	if m.tr != nil {
		m.fired[n.ID] = true
		m.tr.Emit(trace.Event{
			Cycle: int64(now), Kind: trace.KindFiring,
			Cell: int32(n.ID), Port: -1, Unit: int32(c.endpoint), Src: -1, Dst: -1,
		})
	}
	m.commitConsume(c, pl.consume, now)
	if pl.advance {
		c.srcPos++
	}
	if pl.sink {
		m.res.Outputs[n.Label] = appendPrealloc(m.res.Outputs[n.Label], pl.out, m.outCap)
		m.res.Arrivals[n.Label] = appendArrPrealloc(m.res.Arrivals[n.Label],
			exec.Arrival{Cycle: now, Val: pl.out}, m.outCap)
		if m.prog != nil {
			m.prog.Arrivals.Add(1)
		}
		if m.laneCtr != nil {
			m.laneCtr.Arrivals.Add(1)
		}
	}
	c.pendingAcks = len(pl.targets)
	if pl.arith {
		fi := m.fuSeq % m.cfg.FUs
		m.fuSeq++
		p := m.newPacket()
		p.kind, p.src, p.dst = pktOp, c.endpoint, m.fuEndpoint(fi)
		p.op = opPayload{
			opcode:  uint8(n.Op),
			vals:    append([]value.Value(nil), pl.vals...),
			targets: append([]target(nil), pl.targets...),
			srcCell: int(n.ID),
		}
		m.emit(p, now)
		return true
	}
	for _, tgt := range pl.targets {
		p := m.newPacket()
		p.kind, p.src, p.dst = pktResult, c.endpoint, tgt.endpoint
		p.cell, p.port, p.val = tgt.cell, tgt.port, pl.out
		m.emit(p, now)
	}
	return true
}

// commitConsume clears consumed operand slots and sends acknowledge
// packets to their producers.
func (m *machine) commitConsume(c *cell, ports []int, now int) {
	for _, p := range ports {
		in := c.node.In[p]
		if in.Arc == nil {
			continue // literal operand
		}
		if !c.inHas[p] {
			continue // preloaded-literal port with no token (not possible; guard)
		}
		c.inHas[p] = false
		producer := &m.cells[in.Arc.From]
		ack := m.newPacket()
		ack.kind, ack.src, ack.dst = pktAck, c.endpoint, producer.endpoint
		ack.cell = int(in.Arc.From)
		m.emit(ack, now)
	}
}

// appendPrealloc appends to a sink stream, sizing the buffer for the whole
// expected stream on first use so steady-state appends never reallocate.
func appendPrealloc(s []value.Value, v value.Value, hint int) []value.Value {
	if s == nil && hint > 0 {
		s = make([]value.Value, 0, hint)
	}
	return append(s, v)
}

func appendArrPrealloc(s []exec.Arrival, a exec.Arrival, hint int) []exec.Arrival {
	if s == nil && hint > 0 {
		s = make([]exec.Arrival, 0, hint)
	}
	return append(s, a)
}

// drainState mirrors exec's cleanliness report.
func (m *machine) drainState() (bool, []string) {
	var stalled []string
	for i := range m.cells {
		c := &m.cells[i]
		n := c.node
		switch n.Op {
		case graph.OpSource:
			if c.srcPos < len(c.stream) {
				stalled = append(stalled, fmt.Sprintf("%s: %d stream values unsent", n.Name(), len(c.stream)-c.srcPos))
			}
		case graph.OpCtlGen:
			if t := n.Pattern.Len(); t >= 0 && c.srcPos < t {
				stalled = append(stalled, fmt.Sprintf("%s: %d control values unsent", n.Name(), t-c.srcPos))
			}
		}
		for p, has := range c.inHas {
			if has {
				stalled = append(stalled, fmt.Sprintf("token %s stranded at %s port %d", c.inTok[p], n.Name(), p))
			}
		}
	}
	return len(stalled) == 0, stalled
}

// Describe summarizes a machine result.
func Describe(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d clean=%v packets=%d am-fraction=%.3f pe-util=%.3f\n",
		r.Cycles, r.Clean, r.TotalPackets, r.AMFraction(), r.Utilization())
	kinds := make([]string, 0, len(r.Packets))
	for k := range r.Packets {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(&b, "  %s packets: %d\n", k, r.Packets[k])
	}
	labels := make([]string, 0, len(r.Outputs))
	for l := range r.Outputs {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		fmt.Fprintf(&b, "  sink %q: %d values, II=%.3f\n", l, len(r.Outputs[l]), r.II(l))
	}
	for _, d := range r.ShardDiag {
		fmt.Fprintf(&b, "shard-diag: %s\n", d)
	}
	return b.String()
}
