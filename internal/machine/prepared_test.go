package machine

import (
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"staticpipe/internal/value"
)

// TestPreparedInputsOverride pins input immutability on the packet-level
// machine: Config.Inputs rebinds a source cell's stream per run without
// writing the graph, so one Prepared (one cached artifact) serves
// different submissions concurrently.
func TestPreparedInputsOverride(t *testing.T) {
	g, want := fig2(16)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}

	base, err := p.Run(Config{PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range base.Outputs["out"] {
		if v.AsReal() != want[i] {
			t.Fatalf("baseline out[%d] = %v, want %v", i, v, want[i])
		}
	}

	ones := make([]float64, 16)
	bs := make([]float64, 16)
	for i := range ones {
		ones[i] = 1
		bs[i] = 3 - float64(i)*0.5
	}
	over, err := p.Run(Config{PEs: 2, Inputs: map[string][]value.Value{"a": value.Reals(ones)}})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range over.Outputs["out"] {
		y := 1 * bs[i]
		if exp := (y + 2) * (y - 3); v.AsReal() != exp {
			t.Fatalf("override out[%d] = %v, want %v", i, v, exp)
		}
	}

	// The shared graph is untouched: the baseline rerun is byte-identical.
	again, err := p.Run(Config{PEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Outputs, base.Outputs) || again.Cycles != base.Cycles {
		t.Fatal("override leaked into the shared graph: baseline run changed")
	}
}

// TestPreparedUnknownInputLabel pins the validation error for an override
// that names no source cell.
func TestPreparedUnknownInputLabel(t *testing.T) {
	g, _ := fig2(4)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	_, err = p.Run(Config{Inputs: map[string][]value.Value{"nope": value.Reals([]float64{1})}})
	if err == nil || !strings.Contains(err.Error(), `input "nope" names no source cell`) {
		t.Fatalf("err = %v, want unknown-label refusal", err)
	}
}

// TestPreparedArenaRunsIdentical pins the pooled run arena: sequential
// runs recycle cell and token storage, concurrent runs each draw their
// own arena, and every run stays byte-identical to the cold-arena first
// run — the machine half of the cache-hit identity contract.
func TestPreparedArenaRunsIdentical(t *testing.T) {
	g, _ := fig2(32)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{PEs: 4, FUs: 2, AMs: 2}
	ref, err := p.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 4; rep++ {
		res, err := p.Run(cfg)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if !reflect.DeepEqual(res.Outputs, ref.Outputs) || res.Cycles != ref.Cycles ||
			!reflect.DeepEqual(res.Packets, ref.Packets) || !reflect.DeepEqual(res.PEBusy, ref.PEBusy) {
			t.Fatalf("rep %d: pooled run diverged from cold run", rep)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := p.Run(cfg)
			if err != nil {
				errs <- err
				return
			}
			if !reflect.DeepEqual(res.Outputs, ref.Outputs) || res.Cycles != ref.Cycles {
				errs <- fmt.Errorf("concurrent pooled run diverged from cold run")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPreparedBatchInputsMerge pins the batched path: Config.Inputs is
// the base binding every lane sees, and LaneInputs[l] overrides it per
// lane — lane 0 always consumes the base streams byte-identically.
func TestPreparedBatchInputsMerge(t *testing.T) {
	g, _ := fig2(8)
	p, err := Prepare(g)
	if err != nil {
		t.Fatal(err)
	}
	twos := make([]float64, 8)
	threes := make([]float64, 8)
	for i := range twos {
		twos[i] = 2
		threes[i] = 3
	}
	base := map[string][]value.Value{"a": value.Reals(twos)}
	lanes := make([]map[string][]value.Value, 3)
	lanes[2] = map[string][]value.Value{"a": value.Reals(threes)}

	res, err := p.Run(Config{PEs: 2, Batch: 3, Inputs: base, LaneInputs: lanes})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := p.Run(Config{PEs: 2, Inputs: base})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Lanes[0].Outputs, scalar.Outputs) {
		t.Fatal("lane 0 diverged from the scalar run over the base inputs")
	}
	if !reflect.DeepEqual(res.Lanes[1].Outputs, scalar.Outputs) {
		t.Fatal("lane 1 (no override) did not consume the base inputs")
	}
	if reflect.DeepEqual(res.Lanes[2].Outputs, scalar.Outputs) {
		t.Fatal("lane 2 override was ignored")
	}
}
