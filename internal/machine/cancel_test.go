package machine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

func cancelChain(n, d int) *graph.Graph {
	g := graph.New()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	prev := g.AddSource("in", value.Reals(vals))
	for s := 0; s < d; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)
	return g
}

func TestMachineCancelPreFiredContext(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := Run(cancelChain(2*exec.CancelCadence, 4), Config{Ctx: ctx, Workers: workers})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil || !res.Canceled {
				t.Fatal("expected canceled partial result")
			}
			if res.Clean {
				t.Fatal("canceled run reported Clean")
			}
			if len(res.Stalled) == 0 || !strings.HasPrefix(res.Stalled[0], "canceled:") {
				t.Fatalf("Stalled should lead with the canceled diagnostic, got %v", res.Stalled)
			}
			// The poll cadence bounds how far past the firing point the
			// machine can run.
			if res.Cycles > 2*exec.CancelCadence {
				t.Fatalf("pre-canceled run simulated %d cycles, want <= %d", res.Cycles, 2*exec.CancelCadence)
			}
			// Partial outputs must be a prefix of the input stream (the
			// chain is pure identity).
			for i, v := range res.Outputs["out"] {
				if v.AsReal() != float64(i) {
					t.Fatalf("partial output[%d] = %v, want %d", i, v, i)
				}
			}
		})
	}
}

func TestMachineNilContextUnperturbed(t *testing.T) {
	base, err := Run(cancelChain(512, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Run(cancelChain(512, 4), Config{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != withCtx.Cycles {
		t.Fatalf("cycle count perturbed by un-fired context: %d vs %d", base.Cycles, withCtx.Cycles)
	}
	if !value.CloseSlices(base.Outputs["out"], withCtx.Outputs["out"], 0) {
		t.Fatal("outputs perturbed by un-fired context")
	}
}
