package machine

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

func cancelChain(n, d int) *graph.Graph {
	g := graph.New()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i)
	}
	prev := g.AddSource("in", value.Reals(vals))
	for s := 0; s < d; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)
	return g
}

func TestMachineCancelPreFiredContext(t *testing.T) {
	for _, workers := range []int{0, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			res, err := Run(cancelChain(2*exec.CancelCadence, 4), Config{Ctx: ctx, Workers: workers})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil || !res.Canceled {
				t.Fatal("expected canceled partial result")
			}
			if res.Clean {
				t.Fatal("canceled run reported Clean")
			}
			if len(res.Stalled) == 0 || !strings.HasPrefix(res.Stalled[0], "canceled:") {
				t.Fatalf("Stalled should lead with the canceled diagnostic, got %v", res.Stalled)
			}
			// The poll cadence bounds how far past the firing point the
			// machine can run.
			if res.Cycles > 2*exec.CancelCadence {
				t.Fatalf("pre-canceled run simulated %d cycles, want <= %d", res.Cycles, 2*exec.CancelCadence)
			}
			// Partial outputs must be a prefix of the input stream (the
			// chain is pure identity).
			for i, v := range res.Outputs["out"] {
				if v.AsReal() != float64(i) {
					t.Fatalf("partial output[%d] = %v, want %d", i, v, i)
				}
			}
		})
	}
}

// cancelTracer cancels a context after the at-th firing event; attached to
// lane 0 it stops a batched run deterministically mid-flight.
type cancelTracer struct {
	fired  int
	at     int
	cancel context.CancelFunc
}

func (c *cancelTracer) Start(trace.Meta) {}
func (c *cancelTracer) Emit(e trace.Event) {
	if e.Kind == trace.KindFiring {
		c.fired++
		if c.fired == c.at {
			c.cancel()
		}
	}
}

// TestMachineCancelMidBatchPartialAllLanes cancels a B>1 machine run
// mid-flight (via lane 0's tracer, which fires deterministically) and
// checks every lane comes back with a deterministic partial Result:
// Canceled set, the canceled diagnostic leading Stalled, and outputs a
// prefix of the full run. A lane on another worker may instead complete
// before the cancel lands — then it must be complete.
func TestMachineCancelMidBatchPartialAllLanes(t *testing.T) {
	n := 2 * exec.CancelCadence
	const b = 4
	full, err := Run(cancelChain(n, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			res, err := Run(cancelChain(n, 4), Config{
				Ctx: ctx, Batch: b, Workers: workers,
				Tracer: &cancelTracer{at: n, cancel: cancel}, // roughly mid-run
			})
			if err == nil {
				t.Fatal("expected cancellation error")
			}
			if res == nil || !res.Canceled {
				t.Fatal("expected canceled partial result")
			}
			if len(res.Lanes) != b {
				t.Fatalf("canceled result carries %d lanes, want %d", len(res.Lanes), b)
			}
			if !res.Lanes[0].Canceled {
				t.Fatal("lane 0 (whose tracer fired the cancel mid-run) not marked Canceled")
			}
			for l := 0; l < b; l++ {
				lr := res.Lanes[l]
				got, want := lr.Outputs["out"], full.Outputs["out"]
				if lr.Canceled {
					if lr.Clean {
						t.Errorf("lane %d: canceled lane reported Clean", l)
					}
					if len(lr.Stalled) == 0 || !strings.HasPrefix(lr.Stalled[0], "canceled:") {
						t.Errorf("lane %d: Stalled should lead with the canceled diagnostic, got %v", l, lr.Stalled)
					}
					if len(got) >= len(want) {
						t.Errorf("lane %d: canceled lane produced the full %d-value output", l, len(got))
					}
				} else if len(got) != len(want) {
					// Only possible at Workers>1: the lane's worker finished
					// before the cancel landed.
					t.Errorf("lane %d: uncanceled lane produced %d of %d values", l, len(got), len(want))
				}
				for i := range got {
					if !value.Equal(got[i], want[i]) {
						t.Fatalf("lane %d: partial output[%d] = %v, full run has %v", l, i, got[i], want[i])
					}
				}
			}
			if workers == 1 {
				// One worker advances all lanes in lockstep: every lane
				// observes the cancel at the same poll cycle.
				for l := 1; l < b; l++ {
					if res.Lanes[l].Cycles != res.Lanes[0].Cycles {
						t.Errorf("lane %d stopped at cycle %d, lane 0 at %d",
							l, res.Lanes[l].Cycles, res.Lanes[0].Cycles)
					}
					if len(res.Lanes[l].Outputs["out"]) != len(res.Lanes[0].Outputs["out"]) {
						t.Errorf("lane %d partial output length diverges from lane 0", l)
					}
				}
			}
		})
	}
}

// TestMachineCancelPreFiredBatch: a pre-fired context at B>1 is seen at the
// first cadence poll on every worker; all lanes report canceled at once.
func TestMachineCancelPreFiredBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(cancelChain(2*exec.CancelCadence, 4), Config{Ctx: ctx, Batch: 4, Workers: 2})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if res == nil || !res.Canceled {
		t.Fatal("expected canceled partial result")
	}
	for l, lr := range res.Lanes {
		if !lr.Canceled {
			t.Errorf("lane %d not marked Canceled", l)
		}
		if lr.Cycles > exec.CancelCadence {
			t.Errorf("lane %d simulated %d cycles pre-canceled, want <= %d", l, lr.Cycles, exec.CancelCadence)
		}
	}
}

func TestMachineNilContextUnperturbed(t *testing.T) {
	base, err := Run(cancelChain(512, 4), Config{})
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Run(cancelChain(512, 4), Config{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != withCtx.Cycles {
		t.Fatalf("cycle count perturbed by un-fired context: %d vs %d", base.Cycles, withCtx.Cycles)
	}
	if !value.CloseSlices(base.Outputs["out"], withCtx.Outputs["out"], 0) {
		t.Fatal("outputs perturbed by un-fired context")
	}
}
