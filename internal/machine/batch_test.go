package machine

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// laneViewM adapts one lane of a batched result to the scalar Result shape
// so requireSameMachineResult can compare it field for field.
func laneViewM(r *Result, l int) *Result {
	lr := r.Lanes[l]
	return &Result{
		Cycles:       lr.Cycles,
		Outputs:      lr.Outputs,
		Arrivals:     lr.Arrivals,
		Packets:      lr.Packets,
		AMPackets:    lr.AMPackets,
		TotalPackets: lr.TotalPackets,
		PEBusy:       lr.PEBusy,
		FUBusy:       lr.FUBusy,
		Clean:        lr.Clean,
		Canceled:     lr.Canceled,
		Stalled:      lr.Stalled,
	}
}

// TestMachineBatchedLaneIdentity is the packet-level half of the batched
// identity contract: with every lane fed the graph's bound streams, every
// lane's view — including packet counts and busy counters — and the
// top-level fields (lane 0's) are byte-identical to a scalar run, for any
// lane count and any lane-sharding worker count.
func TestMachineBatchedLaneIdentity(t *testing.T) {
	for name, tc := range parallelMachineCases() {
		seq, err := Run(tc.build(), tc.cfg)
		if err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, b := range []int{1, 4, 16} {
			for _, w := range []int{1, 4} {
				cfg := tc.cfg
				cfg.Batch = b
				cfg.Workers = w
				bat, err := Run(tc.build(), cfg)
				if err != nil {
					t.Fatalf("%s B=%d W=%d: %v", name, b, w, err)
				}
				requireSameMachineResult(t, fmt.Sprintf("%s B=%d W=%d top", name, b, w), w, seq, bat)
				if b <= 1 {
					if bat.Batch != 0 || bat.Lanes != nil {
						t.Errorf("%s B=%d: scalar run reports batch fields", name, b)
					}
					continue
				}
				if bat.Batch != b || len(bat.Lanes) != b {
					t.Fatalf("%s B=%d W=%d: Batch=%d len(Lanes)=%d", name, b, w, bat.Batch, len(bat.Lanes))
				}
				for l := 0; l < b; l++ {
					requireSameMachineResult(t, fmt.Sprintf("%s B=%d W=%d lane %d", name, b, w, l), w,
						seq, laneViewM(bat, l))
				}
			}
		}
	}
}

// TestMachineBatchedTraceByteIdentical pins the lane-0 trace contract on
// the packet-level core: firings, sends, deliveries, FU activity, and
// stall events of a batched run equal the scalar stream event for event.
func TestMachineBatchedTraceByteIdentical(t *testing.T) {
	for name, tc := range parallelMachineCases() {
		var seqRec machRecorder
		cfg := tc.cfg
		cfg.Tracer = &seqRec
		if _, err := Run(tc.build(), cfg); err != nil {
			t.Fatalf("%s: sequential: %v", name, err)
		}
		for _, w := range []int{1, 4} {
			var batRec machRecorder
			bcfg := tc.cfg
			bcfg.Tracer = &batRec
			bcfg.Batch = 4
			bcfg.Workers = w
			if _, err := Run(tc.build(), bcfg); err != nil {
				t.Fatalf("%s B=4 W=%d: %v", name, w, err)
			}
			if !reflect.DeepEqual(seqRec.meta, batRec.meta) {
				t.Errorf("%s B=4 W=%d: trace metadata diverges", name, w)
			}
			if !reflect.DeepEqual(seqRec.events, batRec.events) {
				t.Errorf("%s B=4 W=%d: event streams diverge (%d vs %d events)",
					name, w, len(seqRec.events), len(batRec.events))
			}
		}
	}
}

// chainWith is cancelChain with a caller-supplied stream, for per-lane
// input tests that need a matching scalar reference graph.
func chainWith(stream []value.Value, d int) *graph.Graph {
	g := graph.New()
	prev := g.AddSource("in", stream)
	for s := 0; s < d; s++ {
		id := g.Add(graph.OpID, "")
		g.Connect(prev, id, 0)
		prev = id
	}
	g.Connect(prev, g.AddSink("out"), 0)
	return g
}

// TestMachineBatchedLaneInputs feeds every lane a distinct stream
// (including one of a different length) and checks each lane's view equals
// a scalar run of that lane's stream.
func TestMachineBatchedLaneInputs(t *testing.T) {
	mk := func(n, off int) []value.Value {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i + off)
		}
		return value.Reals(vals)
	}
	base := mk(24, 0)
	const b = 4
	laneIn := make([]map[string][]value.Value, b)
	for l := 1; l < b; l++ {
		s := mk(24, l*100)
		if l == 2 {
			s = s[:10] // shorter stream: this lane quiesces earlier
		}
		laneIn[l] = map[string][]value.Value{"in": s}
	}
	cfg := Config{PEs: 2, Batch: b, LaneInputs: laneIn}
	bat, err := Run(chainWith(base, 4), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < b; l++ {
		stream := base
		if l > 0 {
			stream = laneIn[l]["in"]
		}
		seq, err := Run(chainWith(stream, 4), Config{PEs: 2})
		if err != nil {
			t.Fatalf("lane %d sequential: %v", l, err)
		}
		requireSameMachineResult(t, fmt.Sprintf("lane %d", l), 1, seq, laneViewM(bat, l))
	}
	if bat.Lanes[2].Cycles >= bat.Lanes[1].Cycles {
		t.Errorf("short lane 2 quiesced at cycle %d, not before lane 1's %d",
			bat.Lanes[2].Cycles, bat.Lanes[1].Cycles)
	}
}

// TestMachineBatchedValidation pins the option-validation errors.
func TestMachineBatchedValidation(t *testing.T) {
	g := func() *graph.Graph { return cancelChain(4, 2) }
	if _, err := Run(g(), Config{Batch: exec.MaxBatch + 1}); err == nil ||
		!strings.Contains(err.Error(), "lane limit") {
		t.Errorf("oversized batch: err=%v", err)
	}
	if _, err := Run(g(), Config{Batch: 2, LaneInputs: make([]map[string][]value.Value, 3)}); err == nil ||
		!strings.Contains(err.Error(), "lane input sets") {
		t.Errorf("excess lane inputs: err=%v", err)
	}
	bad := []map[string][]value.Value{nil, {"nope": nil}}
	if _, err := Run(g(), Config{Batch: 2, LaneInputs: bad}); err == nil ||
		!strings.Contains(err.Error(), "names no source cell") {
		t.Errorf("unknown lane input label: err=%v", err)
	}
}

// TestMachineBatchedPartialResult pins the MaxCycles path at B>1: the
// error and lane 0's partial view stay byte-identical to the scalar
// engine, and every lane carries its own partial view.
func TestMachineBatchedPartialResult(t *testing.T) {
	tc := parallelMachineCases()["fig2-crossbar"]
	cfg := tc.cfg
	cfg.MaxCycles = 40
	seq, seqErr := Run(tc.build(), cfg)
	if seqErr == nil {
		t.Fatal("sequential run unexpectedly quiesced in 40 cycles")
	}
	for _, w := range []int{1, 4} {
		bcfg := cfg
		bcfg.Batch = 4
		bcfg.Workers = w
		bat, batErr := Run(tc.build(), bcfg)
		if batErr == nil {
			t.Fatalf("W=%d: batched run unexpectedly quiesced", w)
		}
		if seqErr.Error() != batErr.Error() {
			t.Errorf("W=%d: error %q, sequential %q", w, batErr, seqErr)
		}
		requireSameMachineResult(t, "partial top", w, seq, bat)
		for l := 0; l < 4; l++ {
			requireSameMachineResult(t, fmt.Sprintf("partial lane %d", l), w, seq, laneViewM(bat, l))
		}
	}
}

// TestMachineBatchedLaneTelemetry attaches the live progress counters to a
// batched lane-sharded machine run (the configuration the race detector
// must bless) and checks the per-lane blocks are populated and consistent.
func TestMachineBatchedLaneTelemetry(t *testing.T) {
	tc := parallelMachineCases()["wide-butterfly"]
	seq, err := Run(tc.build(), tc.cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog := &trace.Progress{}
	cfg := tc.cfg
	cfg.Batch = 8
	cfg.Workers = 4
	cfg.Tracer = trace.NewLive()
	cfg.Progress = prog
	bat, err := Run(tc.build(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	requireSameMachineResult(t, "telemetry", 4, seq, bat)
	lanes := prog.BatchLanes()
	if len(lanes) != 8 {
		t.Fatalf("progress exposes %d lane counter blocks, want 8", len(lanes))
	}
	var arrivals int64
	for l, lc := range lanes {
		arrivals += lc.Arrivals.Load()
		if lc.Done.Load() != 1 {
			t.Errorf("lane %d not marked done", l)
		}
		if got, want := lc.Cycles.Load(), int64(bat.Lanes[l].Cycles); got != want {
			t.Errorf("lane %d live cycle counter %d, want %d", l, got, want)
		}
	}
	var want int64
	for _, arrs := range bat.Arrivals {
		want += int64(len(arrs))
	}
	if arrivals != want*8 {
		t.Errorf("live arrival counters sum to %d, want %d", arrivals, want*8)
	}
	if got := prog.Arrivals.Load(); got != want*8 {
		t.Errorf("aggregate arrival counter %d, want %d", got, want*8)
	}
}
