// Package buildinfo reports what binary is running: module version, VCS
// revision, and toolchain, read from the build metadata the Go linker
// embeds (runtime/debug.ReadBuildInfo). Every command exposes it behind
// -version, and the telemetry server serves the same fields on /healthz, so
// a scraped simulation can always be matched to the exact build that
// produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
)

// Fields returns the build metadata as flat key/value pairs: always
// "go_version" and "module_version"; "vcs_revision", "vcs_time", and
// "vcs_modified" when the binary was built from a VCS checkout (test
// binaries and bare `go run` of a non-main checkout lack them).
func Fields() map[string]string {
	f := map[string]string{
		"go_version":     runtime.Version(),
		"module_version": "(devel)",
	}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return f
	}
	if bi.Main.Version != "" {
		f["module_version"] = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			f["vcs_revision"] = s.Value
		case "vcs.time":
			f["vcs_time"] = s.Value
		case "vcs.modified":
			f["vcs_modified"] = s.Value
		}
	}
	return f
}

// String renders the one-line -version output, e.g.
//
//	staticpipe (devel) rev 3ba3e90… (modified) go1.24.0
func String() string {
	f := Fields()
	var b strings.Builder
	fmt.Fprintf(&b, "staticpipe %s", f["module_version"])
	if rev, ok := f["vcs_revision"]; ok {
		short := rev
		if len(short) > 12 {
			short = short[:12]
		}
		fmt.Fprintf(&b, " rev %s", short)
		if f["vcs_modified"] == "true" {
			b.WriteString(" (modified)")
		}
	}
	fmt.Fprintf(&b, " %s", f["go_version"])
	return b.String()
}

// Keys returns the field names in sorted order (stable /healthz output).
func Keys(f map[string]string) []string {
	ks := make([]string, 0, len(f))
	for k := range f {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
