// Package mincost implements minimum-cost maximum-flow by successive
// shortest paths with Bellman-Ford path search.
//
// It is the substrate behind optimal pipeline balancing: the paper (§8,
// conclusion 3) observes that balancing an acyclic dataflow graph with the
// minimum number of buffer stages "is equivalent to the linear programming
// dual of the min-cost flow problem". Package balance builds that flow
// network and reads the optimal buffer levels off this solver's final node
// potentials.
//
// Costs may be negative (balance uses cost −w edges); the network must not
// contain a negative-cost directed cycle of positive capacity. Sizes here
// are modest (thousands of nodes), so Bellman-Ford per augmentation is
// entirely adequate and avoids the potential-initialization subtleties of
// Dijkstra-based variants.
package mincost

import (
	"errors"
	"fmt"
	"math"
)

// edge is half of an arc pair: edges[i] and edges[i^1] are a forward edge
// and its residual reverse.
type edge struct {
	to   int
	cap  int64
	cost int64
}

// Graph is a flow network under construction and solution.
type Graph struct {
	n     int
	edges []edge
	adj   [][]int // adjacency lists of edge indices
}

// New returns a network with n nodes numbered 0..n-1.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// AddNode appends a node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge u→v with the given capacity and per-unit
// cost, returning an identifier usable with Flow. It panics on out-of-range
// endpoints or negative capacity.
func (g *Graph) AddEdge(u, v int, capacity, cost int64) int {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		panic(fmt.Sprintf("mincost: edge %d->%d out of range (n=%d)", u, v, g.n))
	}
	if capacity < 0 {
		panic("mincost: negative capacity")
	}
	id := len(g.edges)
	g.edges = append(g.edges, edge{to: v, cap: capacity, cost: cost})
	g.edges = append(g.edges, edge{to: u, cap: 0, cost: -cost})
	g.adj[u] = append(g.adj[u], id)
	g.adj[v] = append(g.adj[v], id+1)
	return id
}

// Flow returns the flow currently carried by edge id (callable after
// MinCostMaxFlow).
func (g *Graph) Flow(id int) int64 { return g.edges[id^1].cap }

// ErrNegativeCycle reports a negative-cost cycle of positive capacity,
// which makes min-cost flow unbounded (and, for package balance, means the
// balancing constraint system is infeasible).
var ErrNegativeCycle = errors.New("mincost: negative-cost cycle in network")

const inf = math.MaxInt64 / 4

// bellmanFord computes shortest distances from s over residual edges,
// returning the distance array and, for path reconstruction, the incoming
// edge index per node. It returns ErrNegativeCycle if a negative cycle is
// reachable.
func (g *Graph) bellmanFord(s int) ([]int64, []int, error) {
	dist := make([]int64, g.n)
	prev := make([]int, g.n)
	for i := range dist {
		dist[i] = inf
		prev[i] = -1
	}
	dist[s] = 0
	for iter := 0; ; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			if dist[u] >= inf {
				continue
			}
			for _, id := range g.adj[u] {
				e := g.edges[id]
				if e.cap <= 0 {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					prev[e.to] = id
					changed = true
				}
			}
		}
		if !changed {
			return dist, prev, nil
		}
		if iter >= g.n {
			return nil, nil, ErrNegativeCycle
		}
	}
}

// MinCostMaxFlow pushes as much flow as possible from s to t at minimum
// total cost and returns (flow, cost).
func (g *Graph) MinCostMaxFlow(s, t int) (int64, int64, error) {
	var flow, cost int64
	for {
		dist, prev, err := g.bellmanFord(s)
		if err != nil {
			return 0, 0, err
		}
		if dist[t] >= inf {
			return flow, cost, nil
		}
		// bottleneck along the path
		push := int64(inf)
		for v := t; v != s; {
			id := prev[v]
			if g.edges[id].cap < push {
				push = g.edges[id].cap
			}
			v = g.edges[id^1].to
		}
		for v := t; v != s; {
			id := prev[v]
			g.edges[id].cap -= push
			g.edges[id^1].cap += push
			v = g.edges[id^1].to
		}
		flow += push
		cost += push * dist[t]
	}
}

// Potentials returns, for the current (post-solve) residual network, a
// price vector h such that every residual edge (u→v, cap>0) satisfies the
// reduced-cost condition cost + h[u] − h[v] ≥ 0. It is computed as
// Bellman-Ford distances from a virtual root with zero-cost edges to every
// node, so every node is assigned a finite price. These prices are the
// optimal duals of the flow LP — exactly the balancing levels package
// balance needs (negated).
func (g *Graph) Potentials() ([]int64, error) {
	dist := make([]int64, g.n)
	for iter := 0; ; iter++ {
		changed := false
		for u := 0; u < g.n; u++ {
			for _, id := range g.adj[u] {
				e := g.edges[id]
				if e.cap <= 0 {
					continue
				}
				if nd := dist[u] + e.cost; nd < dist[e.to] {
					dist[e.to] = nd
					changed = true
				}
			}
		}
		if !changed {
			return dist, nil
		}
		if iter >= g.n {
			return nil, ErrNegativeCycle
		}
	}
}
