package mincost

import (
	"testing"
	"testing/quick"
)

func TestMaxFlowSimple(t *testing.T) {
	// s=0, t=3; two disjoint paths of capacity 2 and 3.
	g := New(4)
	g.AddEdge(0, 1, 2, 0)
	g.AddEdge(1, 3, 2, 0)
	g.AddEdge(0, 2, 3, 0)
	g.AddEdge(2, 3, 3, 0)
	flow, cost, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 5 || cost != 0 {
		t.Errorf("flow=%d cost=%d, want 5/0", flow, cost)
	}
}

func TestMinCostPrefersCheapPath(t *testing.T) {
	// Two paths s->t: cost 1 (cap 1) and cost 5 (cap 1). Flow of 2 must use
	// both; flow of 1 must use the cheap one.
	g := New(4)
	e1 := g.AddEdge(0, 1, 1, 1)
	g.AddEdge(1, 3, 1, 0)
	e2 := g.AddEdge(0, 2, 1, 5)
	g.AddEdge(2, 3, 1, 0)
	flow, cost, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 || cost != 6 {
		t.Errorf("flow=%d cost=%d, want 2/6", flow, cost)
	}
	if g.Flow(e1) != 1 || g.Flow(e2) != 1 {
		t.Errorf("edge flows %d,%d, want 1,1", g.Flow(e1), g.Flow(e2))
	}
}

func TestReroutingThroughResidual(t *testing.T) {
	// Classic rerouting instance: the greedy first path must be partially
	// undone via the residual edge to reach max flow at min cost.
	g := New(4)
	g.AddEdge(0, 1, 1, 1)
	g.AddEdge(0, 2, 1, 4)
	g.AddEdge(1, 2, 1, 1)
	g.AddEdge(1, 3, 1, 5)
	g.AddEdge(2, 3, 1, 1)
	flow, cost, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 {
		t.Fatalf("flow=%d, want 2", flow)
	}
	// cheapest routing: 0-1-2-3 (3) + 0-2?-no cap... paths: 0-1-{2-3|3}, 0-2-3.
	// Options: {0-1-2-3, 0-2-3} infeasible (edge 2-3 cap 1). So 0-1-3 (6) +
	// 0-2-3 (5) = 11, or 0-1-2-3 (3) + 0-2-?: 2-3 saturated -> 11 is min.
	if cost != 11 {
		t.Errorf("cost=%d, want 11", cost)
	}
}

func TestNegativeCostEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 2, -3)
	g.AddEdge(1, 2, 2, -2)
	flow, cost, err := g.MinCostMaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 2 || cost != -10 {
		t.Errorf("flow=%d cost=%d, want 2/-10", flow, cost)
	}
}

func TestNegativeCycleDetected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1, 0)
	g.AddEdge(1, 2, 5, -2)
	g.AddEdge(2, 1, 5, 1) // 1->2->1 has cost -1, capacity > 0
	g.AddEdge(2, 3, 1, 0)
	_, _, err := g.MinCostMaxFlow(0, 3)
	if err != ErrNegativeCycle {
		t.Fatalf("err=%v, want ErrNegativeCycle", err)
	}
}

func TestDisconnected(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 5, 1)
	g.AddEdge(2, 3, 5, 1)
	flow, cost, err := g.MinCostMaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if flow != 0 || cost != 0 {
		t.Errorf("flow=%d cost=%d, want 0/0", flow, cost)
	}
}

func TestAddNode(t *testing.T) {
	g := New(2)
	id := g.AddNode()
	if id != 2 || g.NumNodes() != 3 {
		t.Errorf("AddNode = %d, NumNodes = %d", id, g.NumNodes())
	}
	g.AddEdge(0, 2, 1, 0)
	g.AddEdge(2, 1, 1, 0)
	flow, _, err := g.MinCostMaxFlow(0, 1)
	if err != nil || flow != 1 {
		t.Errorf("flow=%d err=%v", flow, err)
	}
}

func TestAddEdgePanics(t *testing.T) {
	g := New(2)
	for i, f := range []func(){
		func() { g.AddEdge(0, 5, 1, 0) },
		func() { g.AddEdge(-1, 1, 1, 0) },
		func() { g.AddEdge(0, 1, -1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

// TestPotentialsReducedCosts verifies the dual property package balance
// relies on: after solving, every residual edge satisfies
// cost + h[u] − h[v] ≥ 0.
func TestPotentialsReducedCosts(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 3, -1)
	g.AddEdge(1, 2, 2, -1)
	g.AddEdge(0, 2, 1, -1)
	g.AddEdge(2, 3, 4, -2)
	g.AddEdge(1, 3, 1, 0)
	g.AddEdge(3, 4, 3, 0)
	if _, _, err := g.MinCostMaxFlow(0, 4); err != nil {
		t.Fatal(err)
	}
	h, err := g.Potentials()
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < g.n; u++ {
		for _, id := range g.adj[u] {
			e := g.edges[id]
			if e.cap > 0 && e.cost+h[u]-h[e.to] < 0 {
				t.Errorf("residual edge %d->%d violates reduced cost: %d + %d - %d",
					u, e.to, e.cost, h[u], h[e.to])
			}
		}
	}
}

// Property: max flow from a single-source DAG equals min(total out-capacity
// of s, total in-capacity of t) when the middle is a complete bipartite
// layer with ample capacity.
func TestQuickBipartiteFlow(t *testing.T) {
	f := func(capsA, capsB []uint8) bool {
		if len(capsA) == 0 || len(capsB) == 0 || len(capsA) > 6 || len(capsB) > 6 {
			return true
		}
		n := 2 + len(capsA) + len(capsB)
		g := New(n)
		s, tt := 0, 1
		var sumA, sumB int64
		for i, c := range capsA {
			g.AddEdge(s, 2+i, int64(c), 0)
			sumA += int64(c)
		}
		for j, c := range capsB {
			g.AddEdge(2+len(capsA)+j, tt, int64(c), 1)
			sumB += int64(c)
		}
		for i := range capsA {
			for j := range capsB {
				g.AddEdge(2+i, 2+len(capsA)+j, 1<<20, 0)
			}
		}
		flow, cost, err := g.MinCostMaxFlow(s, tt)
		if err != nil {
			return false
		}
		want := sumA
		if sumB < want {
			want = sumB
		}
		return flow == want && cost == want // every unit pays exactly 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
