package core

import (
	"strings"
	"testing"

	"staticpipe/internal/value"
)

// TestEmptyForallRange checks that a forall over an empty index range is a
// positioned compile error rather than a silent deadlock at run time.
func TestEmptyForallRange(t *testing.T) {
	src := `
input B : array[real] [0, 4];
A : array[real] := forall i in [5, 4] construct B[i-5] endall;
output A;
`
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("empty forall range compiled")
	}
	if !strings.Contains(err.Error(), "3:") || !strings.Contains(err.Error(), "empty index range [5, 4]") {
		t.Errorf("want positioned empty-range diagnostic, got: %v", err)
	}
}

// TestEmptyInputRange checks that a zero-length input array declaration is
// a positioned compile error.
func TestEmptyInputRange(t *testing.T) {
	src := `
input B : array[real] [1, 0];
A : array[real] := forall i in [1, 8] construct 1. endall;
output A;
`
	_, err := Compile(src, Options{})
	if err == nil {
		t.Fatal("empty input range compiled")
	}
	if !strings.Contains(err.Error(), "2:") || !strings.Contains(err.Error(), "empty range [1, 0]") {
		t.Errorf("want positioned empty-range diagnostic, got: %v", err)
	}
}

// TestEmptyRunInputs checks that binding zero-length input streams to a
// program expecting data is a clean length error, not a hang.
func TestEmptyRunInputs(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = u.Run(map[string][]value.Value{"B": {}, "C": {}})
	if err == nil {
		t.Fatal("zero-length input streams accepted")
	}
	if !strings.Contains(err.Error(), "0 elements") {
		t.Errorf("want a length diagnostic, got: %v", err)
	}
}
