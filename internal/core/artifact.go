// Compiled-artifact half of the core API: an Artifact is the immutable
// product of one compilation — shareable across goroutines and cacheable by
// content hash — while a Binding carries the cheap per-run attachments
// (context, progress counters, worker count) that used to be smuggled in by
// mutating the Unit. Splitting the two is what makes a content-addressed
// compile cache sound: a cache hit hands out the same Artifact to N
// concurrent jobs, and nothing on the run path writes it.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
	"staticpipe/internal/obs"
	"staticpipe/internal/passes"
	"staticpipe/internal/pe"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/place"
	"staticpipe/internal/trace"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// Artifact is an immutable compiled pipe-structured program: parsed,
// checked, compiled through the pass pipeline, and prepared (validated +
// FIFO-expanded) for the firing-rule simulator. After CompileArtifact
// returns, nothing mutates an Artifact — concurrent Run/RunBatch calls with
// different Bindings and inputs are safe, which is the contract the
// artifact cache depends on.
type Artifact struct {
	Source   string
	Checked  *val.Checked
	Compiled *pipestruct.Result
	// Cells and Arcs are the compiled graph's static shape, captured once
	// so admission-time cost estimation on a cache hit touches no graph.
	Cells int
	Arcs  int
	// CompileWall is the wall-clock cost of producing this artifact
	// (parse + check + passes + exec.Prepare); the cache credits it to its
	// compile-seconds-saved counter on every hit.
	CompileWall time.Duration

	opts     Options
	prepared *exec.Prepared

	// The machine-model preparation is lazy: exec-only traffic never pays
	// the second FIFO expansion.
	machOnce sync.Once
	mach     *machine.Prepared
	machErr  error

	// Placement plans are deterministic per (graph, PE count), so they are
	// memoized here: a cache-hit job skips the min-cost-flow solve too.
	planMu sync.Mutex
	plans  map[int]*place.Placement
}

// Binding is the per-run attachment set for an Artifact run: everything
// that varies job to job while the compiled program stays fixed. Zero
// values fall back to the artifact's compile-time Options, so Binding{}
// reproduces the legacy Unit behavior exactly.
type Binding struct {
	// Ctx cancels the run early (see exec.Options.Ctx); it also carries the
	// obs.Span the run annotates.
	Ctx context.Context
	// Progress receives live cycle/arrival counters (see
	// exec.Options.Progress).
	Progress *trace.Progress
	// Tracer receives the run's observability event stream.
	Tracer trace.Tracer
	// Workers selects the sharded engine for this run.
	Workers int
	// MaxCycles bounds this run.
	MaxCycles int
	// Batch widens this run to B lanes (Run only; RunBatch requires the
	// artifact's or binding's Batch > 1).
	Batch int
}

// CompileArtifact parses, checks, and compiles a pipe-structured Val
// program into an immutable, concurrency-safe artifact. Compile remains as
// the legacy single-goroutine wrapper around this.
func CompileArtifact(src string, opts Options) (*Artifact, error) {
	start := time.Now()
	prog, err := val.Parse(src)
	if err != nil {
		return nil, err
	}
	checked, err := val.Check(prog)
	if err != nil {
		return nil, err
	}
	popts := pipestruct.Options{
		ForallScheme:  opts.ForallScheme,
		ForIterScheme: opts.ForIterScheme,
		PE:            pe.Options{LiteralControl: opts.LiteralControl, ArmSlack: opts.ArmSlack},
		NoBalance:     opts.NoBalance,
		NaiveBalance:  opts.NaiveBalance,
		Dedup:         opts.Dedup,
		VerifyEach:    opts.VerifyEach,
		Snapshot:      opts.Snapshot,
	}
	if opts.Passes != "" {
		pl, err := passes.Parse(opts.Passes)
		if err != nil {
			return nil, err
		}
		if pl == nil {
			pl = []passes.Pass{} // explicit empty pipeline, not legacy fallback
		}
		popts.Passes = pl
	}
	compiled, err := pipestruct.Compile(checked, popts)
	if err != nil {
		return nil, err
	}
	for _, s := range compiled.PassStats {
		recordPhase(opts.Tracer, trace.PhaseStat{
			Name: s.Name, Wall: s.Wall,
			CellsBefore: s.CellsBefore, CellsAfter: s.CellsAfter,
			ArcsBefore: s.ArcsBefore, ArcsAfter: s.ArcsAfter,
		})
	}
	prepared, err := exec.Prepare(compiled.Graph)
	if err != nil {
		return nil, fmt.Errorf("core: compiled graph rejected by simulator: %w", err)
	}
	stats := compiled.Graph.ComputeStats()
	return &Artifact{
		Source:      src,
		Checked:     checked,
		Compiled:    compiled,
		Cells:       stats.Cells,
		Arcs:        stats.Arcs,
		CompileWall: time.Since(start),
		opts:        opts,
		prepared:    prepared,
	}, nil
}

// Options returns the compile-time options the artifact was built with —
// the run-relevant fields act as defaults any Binding zero value falls
// back to.
func (a *Artifact) Options() Options { return a.opts }

// Unit wraps the artifact in the legacy Unit facade, giving cached
// artifacts access to the report/validate/reference helpers.
func (a *Artifact) Unit() *Unit {
	return &Unit{Source: a.Source, Checked: a.Checked, Compiled: a.Compiled, art: a}
}

// PassStats returns the per-pass compilation statistics in pipeline order.
func (a *Artifact) PassStats() []passes.Stat { return a.Compiled.PassStats }

// Machine returns the packet-level simulator's prepared form of the
// compiled graph, building it on first use (exec-only traffic never pays
// the machine model's FIFO expansion). The result is memoized and shared.
func (a *Artifact) Machine() (*machine.Prepared, error) {
	a.machOnce.Do(func() {
		a.mach, a.machErr = machine.Prepare(a.Compiled.Graph)
	})
	return a.mach, a.machErr
}

// PlacementPlan returns the contention-aware cell→PE mapping for the given
// PE count, memoized per count: placement is deterministic per (graph,
// PEs), so repeat jobs on a cached artifact skip the min-cost solve.
func (a *Artifact) PlacementPlan(pes int) (*place.Placement, error) {
	a.planMu.Lock()
	if pl, ok := a.plans[pes]; ok {
		a.planMu.Unlock()
		return pl, nil
	}
	a.planMu.Unlock()
	// Solve outside the lock — plans for distinct PE counts can race
	// harmlessly (both compute the same deterministic result; first store
	// wins below and the duplicate is dropped).
	pl, err := place.Plan(a.Compiled.Graph, place.Options{PEs: pes})
	if err != nil {
		return nil, err
	}
	a.planMu.Lock()
	defer a.planMu.Unlock()
	if prev, ok := a.plans[pes]; ok {
		return prev, nil
	}
	if a.plans == nil {
		a.plans = map[int]*place.Placement{}
	}
	a.plans[pes] = pl
	return pl, nil
}

// bindOpts resolves one run's effective options: the binding's fields where
// set, the artifact's compile-time options otherwise.
func (a *Artifact) bindOpts(b Binding) Options {
	o := a.opts
	if b.Ctx != nil {
		o.Ctx = b.Ctx
	}
	if b.Progress != nil {
		o.Progress = b.Progress
	}
	if b.Tracer != nil {
		o.Tracer = b.Tracer
	}
	if b.Workers > 0 {
		o.Workers = b.Workers
	}
	if b.MaxCycles > 0 {
		o.MaxCycles = b.MaxCycles
	}
	if b.Batch > 0 {
		o.Batch = b.Batch
	}
	return o
}

// checkInputs validates the binding against the program's declared inputs
// without touching the graph, then narrows it to exactly the declared
// names (extra keys are ignored, matching the legacy SetInputs contract).
func (a *Artifact) checkInputs(inputs map[string][]value.Value) (map[string][]value.Value, error) {
	if err := a.Compiled.CheckInputs(inputs); err != nil {
		return nil, err
	}
	binds := make(map[string][]value.Value, len(a.Compiled.Inputs))
	for name := range a.Compiled.Inputs {
		binds[name] = inputs[name]
	}
	return binds, nil
}

// setGraphAttrs stamps the compiled graph's static shape onto the span
// carried by ctx, if any.
func (a *Artifact) setGraphAttrs(ctx context.Context) {
	if sp := obs.SpanFrom(ctx); sp != nil {
		sp.Set("cells", int64(a.Cells))
		sp.Set("arcs", int64(a.Arcs))
	}
}

// Run simulates the compiled graph with the given per-run binding and input
// streams. Unlike the legacy Unit.Run it never writes the graph: inputs
// travel via exec.Options.Inputs, so any number of goroutines may Run one
// Artifact concurrently.
func (a *Artifact) Run(b Binding, inputs map[string][]value.Value) (*RunResult, error) {
	binds, err := a.checkInputs(inputs)
	if err != nil {
		return nil, err
	}
	o := a.bindOpts(b)
	a.setGraphAttrs(o.Ctx)
	res, err := a.prepared.Run(exec.Options{
		MaxCycles: o.MaxCycles, Tracer: o.Tracer, Progress: o.Progress,
		Workers: o.Workers, Ctx: o.Ctx, Batch: o.Batch, Inputs: binds,
	})
	if err != nil {
		if res != nil {
			// MaxCycles exhaustion or cancellation: return the partial
			// RunResult — each output's elements produced so far — so a
			// canceled run still hands its caller the work already done,
			// with the stall diagnostics in the wrapped error text.
			partial := &RunResult{Outputs: map[string]*val.ArrayVal{}, Exec: res}
			for name, rng := range a.Compiled.Outputs {
				partial.Outputs[name] = &val.ArrayVal{Lo: rng.Lo, Elems: res.Output(name), Lo2: rng.Lo2, W: rng.Width()}
			}
			return partial, fmt.Errorf("%w\n%s", err, exec.Describe(res))
		}
		return nil, err
	}
	out := &RunResult{Outputs: map[string]*val.ArrayVal{}, Exec: res}
	for name, rng := range a.Compiled.Outputs {
		elems := res.Output(name)
		if len(elems) != rng.Len() {
			return nil, fmt.Errorf("core: output %s produced %d of %d elements (pipeline stalled?)\n%s",
				name, len(elems), rng.Len(), exec.Describe(res))
		}
		out.Outputs[name] = &val.ArrayVal{Lo: rng.Lo, Elems: elems, Lo2: rng.Lo2, W: rng.Width()}
	}
	return out, nil
}

// RunBatch simulates Batch independent input sets through the compiled
// graph in a single batched run (see Unit.RunBatch). Like Run it is safe
// for concurrent use on one shared Artifact.
func (a *Artifact) RunBatch(bd Binding, inputs map[string][]value.Value, laneInputs []map[string][]value.Value) (*BatchRunResult, error) {
	o := a.bindOpts(bd)
	b := o.Batch
	if b < 2 {
		return nil, fmt.Errorf("core: RunBatch requires Options.Batch > 1, have %d", b)
	}
	for l, li := range laneInputs {
		for name, vals := range li {
			if _, ok := a.Compiled.Inputs[name]; !ok {
				return nil, fmt.Errorf("core: lane %d binds unknown input %s", l, name)
			}
			if want := a.Compiled.InputLen(name); len(vals) != want {
				return nil, fmt.Errorf("core: lane %d input %s has %d elements, want %d", l, name, len(vals), want)
			}
		}
	}
	binds, err := a.checkInputs(inputs)
	if err != nil {
		return nil, err
	}
	a.setGraphAttrs(o.Ctx)
	res, err := a.prepared.Run(exec.Options{
		MaxCycles: o.MaxCycles, Tracer: o.Tracer, Progress: o.Progress,
		Workers: o.Workers, Ctx: o.Ctx, Batch: b, LaneInputs: laneInputs, Inputs: binds,
	})
	if err != nil && res == nil {
		return nil, err
	}
	out := &BatchRunResult{Exec: res, Lanes: make([]*RunResult, b)}
	for l := 0; l < b; l++ {
		lexec := res.Lane(l)
		rr := &RunResult{Outputs: map[string]*val.ArrayVal{}, Exec: lexec}
		for name, rng := range a.Compiled.Outputs {
			elems := lexec.Output(name)
			if err == nil && len(elems) != rng.Len() {
				return nil, fmt.Errorf("core: lane %d output %s produced %d of %d elements (pipeline stalled?)\n%s",
					l, name, len(elems), rng.Len(), exec.Describe(lexec))
			}
			rr.Outputs[name] = &val.ArrayVal{Lo: rng.Lo, Elems: elems, Lo2: rng.Lo2, W: rng.Width()}
		}
		out.Lanes[l] = rr
	}
	if err != nil {
		// MaxCycles exhaustion or cancellation: hand back every lane's
		// partial view alongside the wrapped error.
		return out, fmt.Errorf("%w\n%s", err, exec.Describe(res))
	}
	return out, nil
}
