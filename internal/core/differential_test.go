package core

import (
	"fmt"
	"math/rand"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// diffPassLists are the pass pipelines the differential quick-check sweeps:
// every combination and ordering of the optional structural passes around
// the two balancers, plus the empty pipeline.
var diffPassLists = []string{
	"",
	"dedup",
	"balance",
	"balance-naive",
	"dedup,balance",
	"dedup,balance-naive",
	"balance,dedup",
}

// checkAfterEachPass recompiles src with the given pass list, and after
// every pass binds the inputs, executes the live graph on the firing-rule
// simulator, and compares each sink's stream against the reference outputs
// — the semantic-equivalence harness of the pass pipeline.
//
// The contract every pass must satisfy is PREFIX equivalence: a run of any
// intermediate graph produces a prefix of the reference output at every
// sink, never a wrong value. Intermediate graphs are not required to drain
// completely — an unbalanced graph whose cells were shared by dedup can
// stall on the acknowledge coupling. The FINAL graph of every pipeline must
// produce the complete reference output: the pass manager appends a
// balancing pass whenever dedup would otherwise run unbalanced, so no
// configuration is allowed to leave a stall-prone graph.
func checkAfterEachPass(t *testing.T, src, passList string, inputs map[string][]value.Value, want map[string][]value.Value) {
	t.Helper()
	var firstErr error
	snapshot := func(pass string, g *graph.Graph) {
		if firstErr != nil {
			return
		}
		// Bind input streams by source label: graph-rebuilding passes
		// invalidate node identity but labels are stable.
		for _, n := range g.Nodes() {
			if n.Op != graph.OpSource {
				continue
			}
			if vals, ok := inputs[n.Label]; ok {
				n.Stream = vals
			}
		}
		if err := runPrefix(g, want); err != nil {
			firstErr = fmt.Errorf("after %s: %w", pass, err)
			return
		}
		// Unbind so later passes see placeholder streams, as in a normal
		// compile.
		for _, n := range g.Nodes() {
			if n.Op == graph.OpSource {
				if _, ok := inputs[n.Label]; ok {
					n.Stream = []value.Value{}
				}
			}
		}
	}
	u, err := Compile(src, Options{Passes: passList, VerifyEach: true, Snapshot: snapshot})
	if err != nil {
		t.Fatalf("passes=%q: %v", passList, err)
	}
	if firstErr != nil {
		t.Fatalf("passes=%q: %v", passList, firstErr)
	}
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Fatalf("passes=%q final graph: %v", passList, err)
	}
}

// runPrefix executes the graph and checks every expected output stream got
// a prefix of its reference values (wrong values fail; incomplete drainage
// does not).
func runPrefix(g *graph.Graph, want map[string][]value.Value) error {
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		if res != nil {
			return fmt.Errorf("%w\n%s", err, exec.Describe(res))
		}
		return err
	}
	for name, w := range want {
		got := res.Output(name)
		if len(got) > len(w) {
			return fmt.Errorf("output %s has %d elements, reference has %d", name, len(got), len(w))
		}
		for i := range got {
			if !value.Close(got[i], w[i], 1e-9) {
				return fmt.Errorf("output %s[%d] = %v, want %v", name, i, got[i], w[i])
			}
		}
	}
	return nil
}

// TestDifferentialFig3 runs the after-every-pass equivalence harness over
// the paper's Fig 3 program for every pass-list permutation.
func TestDifferentialFig3(t *testing.T) {
	inputs := fig3Inputs(16)
	ref, err := referenceOutputs(fig3Src, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, pl := range diffPassLists {
		t.Run("passes="+pl, func(t *testing.T) {
			checkAfterEachPass(t, fig3Src, pl, inputs, ref)
		})
	}
}

// TestDifferentialRandom is the differential quick-check: random
// pipe-structured programs × pass-list permutations, with per-pass
// verification and per-pass semantic equivalence against the reference
// interpreter.
func TestDifferentialRandom(t *testing.T) {
	n := 6
	if testing.Short() {
		n = 2
	}
	rng := rand.New(rand.NewSource(233)) // the paper's memo number, for reproducibility
	for i := 0; i < n; i++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))
		ref, err := referenceOutputs(src, inputs)
		if err != nil {
			t.Fatalf("program %d reference: %v\n%s", i, err, src)
		}
		for _, pl := range diffPassLists {
			t.Run(fmt.Sprintf("prog%d/passes=%s", i, pl), func(t *testing.T) {
				checkAfterEachPass(t, src, pl, inputs, ref)
			})
		}
	}
}

// referenceOutputs evaluates the program with the AST interpreter and
// flattens each output array to its element stream.
func referenceOutputs(src string, inputs map[string][]value.Value) (map[string][]value.Value, error) {
	u, err := Compile(src, Options{})
	if err != nil {
		return nil, err
	}
	arrs, err := u.Reference(inputs)
	if err != nil {
		return nil, err
	}
	out := map[string][]value.Value{}
	for name, a := range arrs {
		out[name] = a.Elems
	}
	return out, nil
}

// TestVerifyTier1Options runs the deep verifier over the graphs every
// legacy option combination produces for the Fig 3 program, before and
// after FIFO expansion.
func TestVerifyTier1Options(t *testing.T) {
	for _, o := range []Options{
		{},
		{ForIterScheme: 1},
		{ForIterScheme: 2},
		{LiteralControl: true},
		{Dedup: true},
		{NaiveBalance: true},
		{NoBalance: true},
		{ArmSlack: 2},
	} {
		u, err := Compile(fig3Src, o)
		if err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
		if err := u.Compiled.Graph.Verify(); err != nil {
			t.Errorf("%+v: %v", o, err)
		}
		if err := u.Compiled.Graph.ExpandFIFOs().Verify(); err != nil {
			t.Errorf("%+v expanded: %v", o, err)
		}
	}
}

// TestLegacyOptionsMatchPassLists checks the compatibility contract: the
// legacy strategy booleans and the equivalent explicit pass lists produce
// graphs with identical predicted initiation intervals.
func TestLegacyOptionsMatchPassLists(t *testing.T) {
	cases := []struct {
		legacy Options
		passes string
	}{
		{Options{}, "balance"},
		{Options{Dedup: true}, "dedup,balance"},
		{Options{NaiveBalance: true}, "balance-naive"},
		{Options{NoBalance: true}, ""},
		{Options{Dedup: true, NoBalance: true}, "dedup"},
	}
	for _, tc := range cases {
		lu, err := Compile(fig3Src, tc.legacy)
		if err != nil {
			t.Fatalf("%+v: %v", tc.legacy, err)
		}
		po := tc.legacy
		po.Dedup, po.NoBalance, po.NaiveBalance = false, false, false
		po.Passes = tc.passes
		if po.Passes == "" {
			po.NoBalance = true // empty Passes string falls back to legacy; keep it empty
		}
		pu, err := Compile(fig3Src, po)
		if err != nil {
			t.Fatalf("passes=%q: %v", tc.passes, err)
		}
		if ln, pn := lu.Compiled.Graph.NumNodes(), pu.Compiled.Graph.NumNodes(); ln != pn {
			t.Errorf("%+v vs passes=%q: %d vs %d cells", tc.legacy, tc.passes, ln, pn)
		}
		lp, lerr := lu.PredictII()
		pp, perr := pu.PredictII()
		if (lerr == nil) != (perr == nil) {
			t.Fatalf("%+v vs passes=%q: PredictII errors %v vs %v", tc.legacy, tc.passes, lerr, perr)
		}
		if lerr == nil && lp.Float() != pp.Float() {
			t.Errorf("%+v vs passes=%q: PredictII %v vs %v", tc.legacy, tc.passes, lp, pp)
		}
	}
}
