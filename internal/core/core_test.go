package core

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/value"
)

// fig3Src is the composed program of the paper's Fig 3: Example 1's forall
// feeding Example 2's for-iter.
const fig3Src = `
param m = 16;
input B : array[real] [0, m+1];
input C : array[real] [0, m+1];
A : array[real] :=
  forall i in [0, m+1]
    P : real := if (i = 0) | (i = m+1) then C[i]
                else 0.25 * (C[i-1] + 2.*C[i] + C[i+1]) endif;
  construct B[i]*(P*P)
  endall;
X : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := A[i]*T[i-1] + B[i]
    in if i < m then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
output X;
`

func fig3Inputs(m int) map[string][]value.Value {
	B := make([]float64, m+2)
	C := make([]float64, m+2)
	for i := range B {
		B[i] = 0.2 + float64(i%7)/10
		C[i] = math.Sin(float64(i) / 3)
	}
	return map[string][]value.Value{"B": value.Reals(B), "C": value.Reals(C)}
}

// TestFig3EndToEnd is Theorem 4 on the paper's own composition: the whole
// pipe-structured program runs fully pipelined and matches the reference
// interpreter.
func TestFig3EndToEnd(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := fig3Inputs(16)
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("X"); ii != 2 {
		t.Errorf("end-to-end II = %v, want 2 (Theorem 4)", ii)
	}
	if !res.Exec.Clean {
		t.Errorf("pipeline did not drain: %v", res.Exec.Stalled)
	}
	x := res.Outputs["X"]
	if x.Lo != 0 || len(x.Elems) != 17 {
		t.Errorf("X range: lo=%d n=%d", x.Lo, len(x.Elems))
	}
	// The compiler must have chosen the companion scheme for X.
	var xMeta *pipestruct.BlockMeta
	for i := range u.Compiled.Blocks {
		if u.Compiled.Blocks[i].Name == "X" {
			xMeta = &u.Compiled.Blocks[i]
		}
	}
	if xMeta == nil || xMeta.Scheme != "companion" || xMeta.Kind != "linear" {
		t.Errorf("X block meta: %+v", xMeta)
	}
	pred, err := u.PredictII()
	if err != nil {
		t.Fatal(err)
	}
	if pred.Float() != 2 {
		t.Errorf("predicted II = %v, want 2", pred)
	}
}

// TestFig3ToddThrottles forces Todd's scheme: the whole program slows to
// the loop's 1/3 rate — the paper's motivation for the companion pipeline.
func TestFig3ToddThrottles(t *testing.T) {
	u, err := Compile(fig3Src, Options{ForIterScheme: foriter.Todd})
	if err != nil {
		t.Fatal(err)
	}
	inputs := fig3Inputs(16)
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("X"); ii != 3 {
		t.Errorf("Todd end-to-end II = %v, want 3", ii)
	}
}

// TestUnbalancedSlower verifies balancing matters for the composed program.
func TestUnbalancedSlower(t *testing.T) {
	bal, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	unbal, err := Compile(fig3Src, Options{NoBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	inputs := fig3Inputs(16)
	rb, err := bal.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	ru, err := unbal.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ru.II("X") <= rb.II("X") {
		t.Errorf("unbalanced II %v should exceed balanced %v", ru.II("X"), rb.II("X"))
	}
	// Same values regardless.
	for i := range rb.Outputs["X"].Elems {
		if !value.Equal(rb.Outputs["X"].Elems[i], ru.Outputs["X"].Elems[i]) {
			t.Fatalf("X[%d] differs between balanced and unbalanced runs", i)
		}
	}
}

// TestNaiveVsOptimalBalance: both are fully pipelined; optimal uses no
// more buffer stages (§8, conclusions 1–3).
func TestNaiveVsOptimalBalance(t *testing.T) {
	opt, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive, err := Compile(fig3Src, Options{NaiveBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Compiled.Plan.Total > naive.Compiled.Plan.Total {
		t.Errorf("optimal buffers %d > naive %d", opt.Compiled.Plan.Total, naive.Compiled.Plan.Total)
	}
	inputs := fig3Inputs(16)
	rn, err := naive.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := rn.II("X"); ii != 2 {
		t.Errorf("naive-balanced II = %v, want 2", ii)
	}
}

func TestMultipleOutputs(t *testing.T) {
	src := `
param m = 8;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i] + 1. endall;
D : array[real] := forall i in [0, m] construct A[i] * 2. endall;
output A;
output D;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	C := make([]float64, 9)
	for i := range C {
		C[i] = float64(i)
	}
	inputs := map[string][]value.Value{"C": value.Reals(C)}
	if err := u.Validate(inputs, 0); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range C {
		if res.Outputs["A"].Elems[i].AsReal() != C[i]+1 {
			t.Errorf("A[%d] wrong", i)
		}
		if res.Outputs["D"].Elems[i].AsReal() != (C[i]+1)*2 {
			t.Errorf("D[%d] wrong", i)
		}
	}
}

// TestDiamondDependency exercises a block-level diamond: one producer
// consumed by two blocks whose results are combined.
func TestDiamondDependency(t *testing.T) {
	src := `
param m = 10;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i] * 2. endall;
B : array[real] := forall i in [1, m-1] construct A[i-1] + A[i+1] endall;
D : array[real] := forall i in [1, m-1] construct B[i] + A[i] endall;
output D;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	C := make([]float64, 11)
	for i := range C {
		C[i] = math.Sqrt(float64(i) + 1)
	}
	inputs := map[string][]value.Value{"C": value.Reals(C)}
	if err := u.Validate(inputs, 1e-12); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("D"); ii != 2 {
		t.Errorf("diamond II = %v, want 2", ii)
	}
}

func TestNonPipeStructured(t *testing.T) {
	// A block defined by a plain expression is outside the class.
	src := `
input C : array[real] [0, 3];
A : array[real] := C;
output A;
`
	if _, err := Compile(src, Options{}); err == nil {
		t.Error("non-pipe-structured program accepted")
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := Compile("not val at all ;;", Options{}); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Compile("output Z;", Options{}); err == nil {
		t.Error("undefined output accepted")
	}
}

func TestRunErrors(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Run(map[string][]value.Value{}); err == nil {
		t.Error("missing inputs accepted")
	}
	if _, err := u.Run(map[string][]value.Value{
		"B": value.Reals(make([]float64, 3)),
		"C": value.Reals(make([]float64, 18)),
	}); err == nil {
		t.Error("short input accepted")
	}
}

func TestReport(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := u.Report()
	for _, want := range []string{"forall", "for-iter", "companion", "linear", "cells:", "predicted II = 2/1"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}

func TestFlowGraph(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	edges := pipestruct.FlowGraph(u.Checked)
	want := map[string]bool{"C->A": true, "B->A": true, "A->X": true, "B->X": true}
	if len(edges) != len(want) {
		t.Fatalf("edges: %v", edges)
	}
	for _, e := range edges {
		if !want[e.From+"->"+e.To] {
			t.Errorf("unexpected edge %v", e)
		}
	}
	dot := pipestruct.FlowDOT(u.Checked)
	if !strings.Contains(dot, "A -> X") || !strings.Contains(dot, "for-iter") {
		t.Errorf("FlowDOT malformed:\n%s", dot)
	}
}

func TestReusableRuns(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in1 := fig3Inputs(16)
	r1, err := u.Run(in1)
	if err != nil {
		t.Fatal(err)
	}
	// second run with different data
	in2 := map[string][]value.Value{}
	for k, v := range in1 {
		vs := make([]value.Value, len(v))
		for i := range v {
			vs[i] = value.R(v[i].AsReal() + 1)
		}
		in2[k] = vs
	}
	r2, err := u.Run(in2)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range r1.Outputs["X"].Elems {
		if !value.Equal(r1.Outputs["X"].Elems[i], r2.Outputs["X"].Elems[i]) {
			same = false
		}
	}
	if same {
		t.Error("different inputs produced identical outputs")
	}
	// and re-running in1 reproduces r1
	r3, err := u.Run(in1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Outputs["X"].Elems {
		if !value.Equal(r1.Outputs["X"].Elems[i], r3.Outputs["X"].Elems[i]) {
			t.Fatal("re-run with same inputs diverged")
		}
	}
}

// TestSerializedGraphRoundTrip compiles Fig 3, serializes the instruction
// graph (the dfc -emit / dfsim -graph pipeline), and checks the loaded
// graph reproduces the original run exactly.
func TestSerializedGraphRoundTrip(t *testing.T) {
	u, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := fig3Inputs(16)
	if err := u.Compiled.SetInputs(inputs); err != nil {
		t.Fatal(err)
	}
	direct, err := exec.Run(u.Compiled.Graph, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := u.Compiled.Graph.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	g2, err := graph.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := exec.Run(g2, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Cycles != loaded.Cycles {
		t.Errorf("cycles %d vs %d", direct.Cycles, loaded.Cycles)
	}
	dv, lv := direct.Output("X"), loaded.Output("X")
	if len(dv) != len(lv) {
		t.Fatalf("output lengths differ")
	}
	for i := range dv {
		if !value.Equal(dv[i], lv[i]) {
			t.Errorf("X[%d] differs after round trip", i)
		}
	}
}

// TestDedupOption checks common-cell elimination end to end: fewer cells,
// identical results, still fully pipelined.
func TestDedupOption(t *testing.T) {
	plain, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ded, err := Compile(fig3Src, Options{Dedup: true})
	if err != nil {
		t.Fatal(err)
	}
	if ded.Compiled.Deduped == 0 {
		t.Error("dedup removed nothing from Fig 3")
	}
	if ded.Compiled.Graph.NumNodes() >= plain.Compiled.Graph.NumNodes() {
		t.Errorf("dedup did not shrink the graph: %d vs %d",
			ded.Compiled.Graph.NumNodes(), plain.Compiled.Graph.NumNodes())
	}
	inputs := fig3Inputs(16)
	if err := ded.Validate(inputs, 1e-9); err != nil {
		t.Fatal(err)
	}
	res, err := ded.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("X"); ii != 2 {
		t.Errorf("deduped II = %v, want 2", ii)
	}
	if !strings.Contains(ded.Report(), "dedup:") {
		t.Error("report does not mention dedup")
	}
}

// TestQuickRandomProgramsDeduped reruns the random-program property with
// common-cell elimination enabled.
func TestQuickRandomProgramsDeduped(t *testing.T) {
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 20; trial++ {
		src, inputs := randomProgram(rng, 10+rng.Intn(8))
		u, err := Compile(src, Options{Dedup: true})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		if err := u.Validate(inputs, 1e-6); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
	}
}

// TestLargeScale runs the composed Fig 3 program at a large extent to show
// the rate holds at scale and the makespan stays ≈ 2·n + fill. Skipped in
// -short mode.
func TestLargeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale soak")
	}
	m := 32768
	u, err := Compile(strings.Replace(fig3Src, "param m = 16;", "param m = 32768;", 1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := fig3Inputs(m)
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("X"); ii != 2 {
		t.Errorf("II = %v at m=%d", ii, m)
	}
	if res.Exec.Cycles > 2*(m+2)+200 {
		t.Errorf("makespan %d cycles for %d elements", res.Exec.Cycles, m)
	}
}
