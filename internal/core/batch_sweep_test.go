package core

import (
	"fmt"
	"math/rand"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
	"staticpipe/internal/value"
)

// TestBatchSweepRandom extends the differential harness across the batched
// engine: random compiled programs run on both simulator cores at every
// lane count in the contract sweep (crossed with lane-sharding worker
// counts), and lane 0's view — and at B>1 every other lane's, since all
// lanes consume the same bound streams here — must be byte-identical to
// the sequential run of the same core.
func TestBatchSweepRandom(t *testing.T) {
	batches := []int{1, 4, 16}
	n := 3
	if testing.Short() {
		n = 2
	}
	rng := rand.New(rand.NewSource(2049))
	for i := 0; i < n; i++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))
		u, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		if err := u.Compiled.SetInputs(inputs); err != nil {
			t.Fatal(err)
		}
		eseq, err := exec.Run(u.Compiled.Graph, exec.Options{})
		if err != nil {
			t.Fatalf("program %d exec: %v\n%s", i, err, src)
		}
		mcfg := machine.Config{PEs: 4, FUs: 2, AMs: 2}
		mseq, err := machine.Run(u.Compiled.Graph, mcfg)
		if err != nil {
			t.Fatalf("program %d machine: %v\n%s", i, err, src)
		}
		for _, b := range batches {
			for _, w := range []int{1, 4} {
				t.Run(fmt.Sprintf("prog%d/B%d/W%d", i, b, w), func(t *testing.T) {
					ebat, err := exec.Run(u.Compiled.Graph, exec.Options{Batch: b, Workers: w})
					if err != nil {
						t.Fatalf("exec B=%d W=%d: %v", b, w, err)
					}
					lanes := 1
					if b > 1 {
						lanes = b
					}
					for l := 0; l < lanes; l++ {
						lv := ebat.Lane(l)
						checkFields(t, fmt.Sprintf("exec-lane%d", l), w, map[string][2]any{
							"cycles":   {eseq.Cycles, lv.Cycles},
							"firings":  {eseq.Firings, lv.Firings},
							"outputs":  {eseq.Outputs, lv.Outputs},
							"arrivals": {eseq.Arrivals, lv.Arrivals},
							"clean":    {eseq.Clean, lv.Clean},
							"stalled":  {eseq.Stalled, lv.Stalled},
						})
					}
					bcfg := mcfg
					bcfg.Batch = b
					bcfg.Workers = w
					mbat, err := machine.Run(u.Compiled.Graph, bcfg)
					if err != nil {
						t.Fatalf("machine B=%d W=%d: %v", b, w, err)
					}
					checkFields(t, "machine-top", w, map[string][2]any{
						"cycles":   {mseq.Cycles, mbat.Cycles},
						"outputs":  {mseq.Outputs, mbat.Outputs},
						"arrivals": {mseq.Arrivals, mbat.Arrivals},
						"packets":  {mseq.Packets, mbat.Packets},
						"pe-busy":  {mseq.PEBusy, mbat.PEBusy},
						"fu-busy":  {mseq.FUBusy, mbat.FUBusy},
						"clean":    {mseq.Clean, mbat.Clean},
						"stalled":  {mseq.Stalled, mbat.Stalled},
					})
					for l := 1; l < b; l++ {
						lr := mbat.Lanes[l]
						checkFields(t, fmt.Sprintf("machine-lane%d", l), w, map[string][2]any{
							"cycles":  {mseq.Cycles, lr.Cycles},
							"outputs": {mseq.Outputs, lr.Outputs},
							"packets": {mseq.Packets, lr.Packets},
							"clean":   {mseq.Clean, lr.Clean},
							"stalled": {mseq.Stalled, lr.Stalled},
						})
					}
				})
			}
		}
	}
}

// rotStream rotates a stream by k positions — cheap distinct per-lane
// inputs of the required declared length.
func rotStream(vs []value.Value, k int) []value.Value {
	k = k % len(vs)
	return append(append([]value.Value(nil), vs[k:]...), vs[:k]...)
}

// TestRunBatchFacade drives the core facade end to end: Fig 3 compiled
// once, four lanes fed distinct input arrays, every lane validated against
// the reference interpreter on its own inputs, and lane 0 against a scalar
// Run of the baseline inputs.
func TestRunBatchFacade(t *testing.T) {
	const b = 4
	u, err := Compile(fig3Src, Options{Batch: b, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	base := fig3Inputs(16)
	laneIn := make([]map[string][]value.Value, b)
	for l := 1; l < b; l++ {
		laneIn[l] = map[string][]value.Value{
			"B": rotStream(base["B"], l),
			"C": rotStream(base["C"], 2*l),
		}
	}
	res, err := u.RunBatch(base, laneIn)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lanes) != b {
		t.Fatalf("RunBatch returned %d lanes, want %d", len(res.Lanes), b)
	}

	useq, err := Compile(fig3Src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := useq.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < b; l++ {
		inputs := base
		if l > 0 {
			inputs = laneIn[l]
		}
		want, err := u.Reference(inputs)
		if err != nil {
			t.Fatalf("lane %d reference: %v", l, err)
		}
		got := res.Lanes[l]
		for name, w := range want {
			g, ok := got.Outputs[name]
			if !ok {
				t.Fatalf("lane %d: output %s missing", l, name)
			}
			for i := range w.Elems {
				if !value.Close(g.Elems[i], w.Elems[i], 1e-9) {
					t.Fatalf("lane %d: %s[%d] = %v, reference %v", l, name, i, g.Elems[i], w.Elems[i])
				}
			}
		}
	}
	if got, want := res.Lanes[0].Exec.Cycles, seq.Exec.Cycles; got != want {
		t.Errorf("lane 0 ran %d cycles, scalar run %d", got, want)
	}
	if got, want := res.Lanes[0].II("X"), seq.II("X"); got != want {
		t.Errorf("lane 0 II %.3f, scalar run %.3f", got, want)
	}

	// RunBatch without Batch configured is a usage error.
	if _, err := useq.RunBatch(base, nil); err == nil {
		t.Error("RunBatch on a scalar unit succeeded")
	}
	// A lane stream of the wrong declared length is rejected up front.
	short := []map[string][]value.Value{nil, {"B": base["B"][:3]}}
	if _, err := u.RunBatch(base, short); err == nil {
		t.Error("RunBatch accepted a wrong-length lane stream")
	}
}
