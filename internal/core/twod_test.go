package core

import (
	"math"
	"strings"
	"testing"

	"staticpipe/internal/forall"
	"staticpipe/internal/value"
)

// laplaceSrc is a two-dimensional five-point stencil — the §9 "extension …
// to array values of multiple dimension", compiled over row-major element
// streams.
const laplaceSrc = `
param m = 10;
param n = 14;
input U : array2[real] [0, m+1][0, n+1];
L : array2[real] :=
  forall i in [1, m], j in [1, n]
  construct U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1] - 4.*U[i, j]
  endall;
output L;
`

func grid(m, n int, f func(i, j int) float64) []value.Value {
	out := make([]value.Value, 0, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out = append(out, value.R(f(i, j)))
		}
	}
	return out
}

func TestTwoDStencil(t *testing.T) {
	u, err := Compile(laplaceSrc, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, n := 10, 14
	inputs := map[string][]value.Value{
		"U": grid(m+2, n+2, func(i, j int) float64 {
			return math.Sin(float64(i)/3) * math.Cos(float64(j)/2)
		}),
	}
	if err := u.Validate(inputs, 1e-12); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	L := res.Outputs["L"]
	if L.W != n || L.Lo != 1 || L.Lo2 != 1 || len(L.Elems) != m*n {
		t.Fatalf("L shape: lo=%d lo2=%d w=%d len=%d", L.Lo, L.Lo2, L.W, len(L.Elems))
	}
	// Spot-check one interior element against the stencil formula.
	at := func(i, j int) float64 {
		v, err := L.At2(int64(i), int64(j))
		if err != nil {
			t.Fatal(err)
		}
		return v.AsReal()
	}
	f := func(i, j int) float64 { return math.Sin(float64(i)/3) * math.Cos(float64(j)/2) }
	want := f(3, 5) + f(5, 5) + f(4, 4) + f(4, 6) - 4*f(4, 5)
	if got := at(4, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("L[4,5] = %v, want %v", got, want)
	}
	// Interior iteration over a padded grid is input-bound: the pipeline
	// consumes (m+2)(n+2) elements to emit m·n, so the per-output interval
	// is 2·(m+2)(n+2)/(m·n); it must not exceed that by more than the
	// row-boundary jitter.
	bound := 2 * float64((m+2)*(n+2)) / float64(m*n)
	if ii := res.II("L"); ii > bound+0.1 {
		t.Errorf("II = %v, want ≤ %v (input-bound stencil)", ii, bound)
	}
	if !res.Exec.Clean {
		t.Errorf("not clean: %v", res.Exec.Stalled)
	}
}

// TestTwoDFullRange iterates the whole grid (no boundary padding): the
// stream is consumed 1:1 and the pipeline reaches the maximum rate.
func TestTwoDFullRange(t *testing.T) {
	src := `
param m = 8;
param n = 9;
input U : array2[real] [1, m][1, n];
V : array2[real] :=
  forall i in [1, m], j in [1, n]
  construct 2.*U[i, j] + 1.
  endall;
output V;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]value.Value{
		"U": grid(8, 9, func(i, j int) float64 { return float64(i*10 + j) }),
	}
	if err := u.Validate(inputs, 0); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if ii := res.II("V"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

// TestTwoDStaticBoundary exercises compile-time conditions over both index
// variables — the 2-D analogue of Example 1's boundary handling.
func TestTwoDStaticBoundary(t *testing.T) {
	src := `
param m = 6;
param n = 7;
input U : array2[real] [0, m+1][0, n+1];
A : array2[real] :=
  forall i in [0, m+1], j in [0, n+1]
  construct if (i = 0) | (i = m+1) | (j = 0) | (j = n+1)
            then U[i, j]
            else 0.25 * (U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1])
            endif
  endall;
output A;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]value.Value{
		"U": grid(8, 9, func(i, j int) float64 { return float64(i) - float64(j)/2 }),
	}
	if err := u.Validate(inputs, 1e-12); err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	// Full-range iteration: maximum rate.
	if ii := res.II("A"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

// TestTwoDComposition chains two 2-D blocks (Theorem 4 in two dimensions).
func TestTwoDComposition(t *testing.T) {
	src := `
param m = 6;
param n = 6;
input U : array2[real] [0, m+1][0, n+1];
L : array2[real] :=
  forall i in [1, m], j in [1, n]
  construct U[i-1, j] + U[i+1, j] + U[i, j-1] + U[i, j+1] - 4.*U[i, j]
  endall;
V : array2[real] :=
  forall i in [1, m], j in [1, n]
  construct L[i, j] * 0.25
  endall;
output V;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]value.Value{
		"U": grid(8, 8, func(i, j int) float64 { return float64(i*i + j) }),
	}
	if err := u.Validate(inputs, 1e-12); err != nil {
		t.Fatal(err)
	}
}

// TestTwoDIndexVarsAsValues uses i and j as scalar streams.
func TestTwoDIndexVarsAsValues(t *testing.T) {
	src := `
param m = 4;
param n = 5;
input U : array2[real] [1, m][1, n];
A : array2[real] :=
  forall i in [1, m], j in [1, n]
  construct U[i, j] + i * 100 + j
  endall;
output A;
`
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]value.Value{
		"U": grid(4, 5, func(i, j int) float64 { return 0.5 }),
	}
	if err := u.Validate(inputs, 0); err != nil {
		t.Fatal(err)
	}
}

// TestTwoDParallelScheme checks the parallel scheme in two dimensions.
func TestTwoDParallelScheme(t *testing.T) {
	u, err := Compile(laplaceSrc, Options{ForallScheme: forall.Parallel})
	if err != nil {
		t.Fatal(err)
	}
	inputs := map[string][]value.Value{
		"U": grid(12, 16, func(i, j int) float64 { return float64(i + j) }),
	}
	if err := u.Validate(inputs, 1e-12); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"wrong subscripts", `
input U : array2[real] [0, 3][0, 3];
A : array[real] := forall i in [0, 3] construct U[i] endall;
output A;`, "subscripts"},
		{"vector as 2d", `
input U : array[real] [0, 3];
A : array2[real] := forall i in [0, 3], j in [0, 3] construct U[i, j] endall;
output A;`, "subscripts"},
		{"vector in 2d forall", `
input U : array[real] [0, 3];
A : array2[real] := forall i in [0, 3], j in [0, 3] construct U[i] endall;
output A;`, "one-dimensional array"},
		{"2d ref in 1d forall", `
input U : array2[real] [0, 3][0, 3];
A : array[real] := forall i in [0, 3] construct U[i, i] endall;
output A;`, ""},
		{"out of range", `
input U : array2[real] [0, 3][0, 3];
A : array2[real] := forall i in [0, 3], j in [0, 3] construct U[i+1, j] endall;
output A;`, "outside"},
		{"foriter 2d accum", `
input U : array2[real] [1, 3][1, 3];
A : array2[real] :=
  for i : integer := 1; T : array2[real] := [0: 0.]
  do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor;
output A;`, ""},
		{"empty second range", `
input U : array2[real] [0, 3][3, 0];
A : array2[real] := forall i in [0, 3], j in [0, 3] construct U[i, j] endall;
output A;`, "empty"},
	}
	for _, c := range cases {
		_, err := Compile(c.src, Options{})
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}
