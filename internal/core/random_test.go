package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"staticpipe/internal/value"
)

// TestQuickRandomPrograms generates random pipe-structured programs —
// chains of forall and for-iter blocks over random primitive expressions —
// compiles each, and validates the compiled instruction graph element by
// element against the reference interpreter. This is the broadest property
// the reproduction can check: Theorems 1–4 composed on programs nobody
// hand-picked.
func TestQuickRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260705))
	for trial := 0; trial < 30; trial++ {
		src, inputs := randomProgram(rng, 12+rng.Intn(8))
		u, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		if err := u.Validate(inputs, 1e-6); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
	}
}

// arrayRange tracks a generated array's index range.
type arrayRange struct {
	name   string
	lo, hi int64
}

// randomProgram builds a random pipe-structured program over two input
// arrays of range [0, m+1] plus 2–4 derived blocks, outputting the last.
func randomProgram(rng *rand.Rand, m int) (string, map[string][]value.Value) {
	var b strings.Builder
	fmt.Fprintf(&b, "param m = %d;\n", m)
	inputs := map[string][]value.Value{}
	avail := []arrayRange{}
	for _, name := range []string{"U", "W"} {
		fmt.Fprintf(&b, "input %s : array[real] [0, m+1];\n", name)
		vals := make([]float64, m+2)
		for i := range vals {
			// bounded values keep products tame across chained blocks
			vals[i] = (rng.Float64() - 0.5) * 1.8
		}
		inputs[name] = value.Reals(vals)
		avail = append(avail, arrayRange{name, 0, int64(m) + 1})
	}

	blocks := 2 + rng.Intn(3)
	var last string
	for bi := 0; bi < blocks; bi++ {
		name := fmt.Sprintf("B%d", bi)
		// Primary source with a wide-enough range for ±1 offsets.
		var candidates []arrayRange
		for _, a := range avail {
			if a.hi-a.lo >= 4 {
				candidates = append(candidates, a)
			}
		}
		src := candidates[rng.Intn(len(candidates))]
		lo, hi := src.lo+1, src.hi-1

		if rng.Intn(3) == 0 {
			// for-iter block: a linear recurrence over two streams valid
			// on [lo, hi].
			a1 := pickCovering(rng, avail, lo, hi)
			a2 := pickCovering(rng, avail, lo, hi)
			fmt.Fprintf(&b, `%s : array[real] :=
  for i : integer := %d; T : array[real] := [%d: 0.]
  do
    let P : real := 0.5*%s[i]*T[i-1] + %s[i]
    in if i < %d then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
`, name, lo, lo-1, a1, a2, hi)
			avail = append(avail, arrayRange{name, lo - 1, hi})
		} else {
			// forall block over [lo, hi] with a random primitive body.
			body := randomBody(rng, src, avail, lo, hi, 0)
			fmt.Fprintf(&b, "%s : array[real] :=\n  forall i in [%d, %d]\n  construct %s\n  endall;\n",
				name, lo, hi, body)
			avail = append(avail, arrayRange{name, lo, hi})
		}
		last = name
	}
	fmt.Fprintf(&b, "output %s;\n", last)
	return b.String(), inputs
}

// pickCovering returns the name of an available array whose range covers
// [lo, hi].
func pickCovering(rng *rand.Rand, avail []arrayRange, lo, hi int64) string {
	var ok []string
	for _, a := range avail {
		if a.lo <= lo && a.hi >= hi {
			ok = append(ok, a.name)
		}
	}
	return ok[rng.Intn(len(ok))]
}

// randomBody emits a random primitive expression over the primary source
// (offsets −1..1) and zero-offset references to covering arrays.
func randomBody(rng *rand.Rand, primary arrayRange, avail []arrayRange, lo, hi int64, depth int) string {
	leaf := func() string {
		switch rng.Intn(4) {
		case 0:
			off := rng.Intn(3) - 1
			switch {
			case off < 0:
				return fmt.Sprintf("%s[i-1]", primary.name)
			case off > 0:
				return fmt.Sprintf("%s[i+1]", primary.name)
			default:
				return fmt.Sprintf("%s[i]", primary.name)
			}
		case 1:
			return pickCovering(rng, avail, lo, hi) + "[i]"
		case 2:
			return fmt.Sprintf("%.2f", rng.Float64()-0.5)
		default:
			return "i * 0.01"
		}
	}
	if depth >= 3 {
		return leaf()
	}
	switch rng.Intn(8) {
	case 0, 1, 2:
		op := []string{"+", "-", "*"}[rng.Intn(3)]
		return "(" + randomBody(rng, primary, avail, lo, hi, depth+1) + " " + op + " " +
			randomBody(rng, primary, avail, lo, hi, depth+1) + ")"
	case 3:
		cond := []string{
			fmt.Sprintf("i < %d", lo+(hi-lo)/2),
			fmt.Sprintf("%s[i] > 0.", primary.name),
			fmt.Sprintf("(i = %d) | (i = %d)", lo, hi),
		}[rng.Intn(3)]
		return "if " + cond + " then " + randomBody(rng, primary, avail, lo, hi, depth+1) +
			" else " + randomBody(rng, primary, avail, lo, hi, depth+1) + " endif"
	case 4:
		return "let v : real := " + randomBody(rng, primary, avail, lo, hi, depth+1) +
			" in (v * 0.5 + " + randomBody(rng, primary, avail, lo, hi, depth+1) + ") endlet"
	case 5:
		return "min(" + leaf() + ", max(" + leaf() + ", 0.))"
	default:
		return leaf()
	}
}
