package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
)

// TestShardSweepRandom extends the differential harness across the sharded
// parallel engine: random compiled programs run on both simulator cores at
// every worker count in the contract sweep, and every observable field of
// the result — outputs, arrival streams, cycle counts, drainage, stall
// diagnostics — must be byte-identical to the sequential run of the same
// core. This is the enforcement test for the determinism contract; if a
// future change makes shard scheduling observable, it fails here before it
// fails anywhere subtle.
func TestShardSweepRandom(t *testing.T) {
	sweep := []int{1, 2, 4, 8}
	n := 4
	if testing.Short() {
		n = 2
	}
	rng := rand.New(rand.NewSource(1983))
	for i := 0; i < n; i++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))
		u, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		if err := u.Compiled.SetInputs(inputs); err != nil {
			t.Fatal(err)
		}
		eseq, err := exec.Run(u.Compiled.Graph, exec.Options{})
		if err != nil {
			t.Fatalf("program %d exec: %v\n%s", i, err, src)
		}
		mcfg := machine.Config{PEs: 4, FUs: 2, AMs: 2}
		mseq, err := machine.Run(u.Compiled.Graph, mcfg)
		if err != nil {
			t.Fatalf("program %d machine: %v\n%s", i, err, src)
		}
		for _, p := range sweep {
			t.Run(fmt.Sprintf("prog%d/P%d", i, p), func(t *testing.T) {
				epar, err := exec.Run(u.Compiled.Graph, exec.Options{Workers: p})
				if err != nil {
					t.Fatalf("exec P=%d: %v", p, err)
				}
				checkFields(t, "exec", p, map[string][2]any{
					"cycles":   {eseq.Cycles, epar.Cycles},
					"firings":  {eseq.Firings, epar.Firings},
					"outputs":  {eseq.Outputs, epar.Outputs},
					"arrivals": {eseq.Arrivals, epar.Arrivals},
					"clean":    {eseq.Clean, epar.Clean},
					"stalled":  {eseq.Stalled, epar.Stalled},
				})
				pcfg := mcfg
				pcfg.Workers = p
				mpar, err := machine.Run(u.Compiled.Graph, pcfg)
				if err != nil {
					t.Fatalf("machine P=%d: %v", p, err)
				}
				checkFields(t, "machine", p, map[string][2]any{
					"cycles":   {mseq.Cycles, mpar.Cycles},
					"outputs":  {mseq.Outputs, mpar.Outputs},
					"arrivals": {mseq.Arrivals, mpar.Arrivals},
					"packets":  {mseq.Packets, mpar.Packets},
					"pe-busy":  {mseq.PEBusy, mpar.PEBusy},
					"fu-busy":  {mseq.FUBusy, mpar.FUBusy},
					"clean":    {mseq.Clean, mpar.Clean},
					"stalled":  {mseq.Stalled, mpar.Stalled},
				})
			})
		}
	}
}

func checkFields(t *testing.T, engine string, p int, fields map[string][2]any) {
	t.Helper()
	for name, pair := range fields {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Errorf("%s P=%d: %s diverges from sequential\nseq: %v\npar: %v",
				engine, p, name, pair[0], pair[1])
		}
	}
}

// TestShardSweepPartialResult runs the sweep on a truncated budget: even a
// partial result interrupted by MaxCycles must be byte-identical across
// worker counts on both cores.
func TestShardSweepPartialResult(t *testing.T) {
	src, inputs := randomProgram(rand.New(rand.NewSource(7)), 8)
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Compiled.SetInputs(inputs); err != nil {
		t.Fatal(err)
	}
	eseq, eerr := exec.Run(u.Compiled.Graph, exec.Options{MaxCycles: 10})
	if eerr == nil {
		t.Fatal("exec: expected MaxCycles error")
	}
	mseq, merr := machine.Run(u.Compiled.Graph, machine.Config{MaxCycles: 25})
	if merr == nil {
		t.Fatal("machine: expected MaxCycles error")
	}
	for _, p := range []int{2, 4, 8} {
		epar, err := exec.Run(u.Compiled.Graph, exec.Options{MaxCycles: 10, Workers: p})
		if err == nil || err.Error() != eerr.Error() {
			t.Fatalf("exec P=%d: error %v, sequential %v", p, err, eerr)
		}
		checkFields(t, "exec-partial", p, map[string][2]any{
			"cycles":   {eseq.Cycles, epar.Cycles},
			"outputs":  {eseq.Outputs, epar.Outputs},
			"arrivals": {eseq.Arrivals, epar.Arrivals},
			"stalled":  {eseq.Stalled, epar.Stalled},
		})
		mpar, err := machine.Run(u.Compiled.Graph, machine.Config{MaxCycles: 25, Workers: p})
		if err == nil || err.Error() != merr.Error() {
			t.Fatalf("machine P=%d: error %v, sequential %v", p, err, merr)
		}
		checkFields(t, "machine-partial", p, map[string][2]any{
			"cycles":   {mseq.Cycles, mpar.Cycles},
			"outputs":  {mseq.Outputs, mpar.Outputs},
			"arrivals": {mseq.Arrivals, mpar.Arrivals},
			"stalled":  {mseq.Stalled, mpar.Stalled},
		})
	}
}

// TestCoreWorkersOption checks the Workers plumbing through the compile-
// and-run facade: a sharded Unit.Run returns the same outputs and timing
// as a sequential one.
func TestCoreWorkersOption(t *testing.T) {
	src, inputs := randomProgram(rand.New(rand.NewSource(42)), 8)
	useq, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rseq, err := useq.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	upar, err := Compile(src, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	rpar, err := upar.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rseq.Outputs, rpar.Outputs) {
		t.Error("Workers=4 run produced different outputs through core.Run")
	}
	if rseq.Exec.Cycles != rpar.Exec.Cycles {
		t.Errorf("Workers=4 run took %d cycles, sequential %d", rpar.Exec.Cycles, rseq.Exec.Cycles)
	}
	if len(rpar.Exec.Shards) == 0 {
		t.Error("sharded core run carries no shard stats")
	}
}
