package core

import (
	"context"
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/progs"
)

// TestRunCanceledReturnsPartialResult pins the service-layer contract: a
// canceled Run hands back the partial RunResult (outputs produced so far,
// Exec.Canceled set) alongside the error, within one cancel cadence.
func TestRunCanceledReturnsPartialResult(t *testing.T) {
	p := progs.Fig2(4 * exec.CancelCadence)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	u, err := Compile(p.Source, Options{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Run(p.Inputs)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("error should name the cancellation, got: %v", err)
	}
	if res == nil {
		t.Fatal("expected partial RunResult alongside the error")
	}
	if res.Exec == nil || !res.Exec.Canceled {
		t.Fatal("partial result not marked Canceled")
	}
	if res.Exec.Cycles > exec.CancelCadence {
		t.Fatalf("pre-canceled run simulated %d cycles, want <= %d", res.Exec.Cycles, exec.CancelCadence)
	}
	out, ok := res.Outputs[p.Output]
	if !ok {
		t.Fatalf("partial result missing output %s", p.Output)
	}
	if len(out.Elems) >= 4*exec.CancelCadence {
		t.Fatalf("pre-canceled run produced the full output (%d elems)", len(out.Elems))
	}
}

// TestRunUncanceledContextIdentical pins zero perturbation at the core
// layer: attaching a never-firing context changes nothing observable.
func TestRunUncanceledContextIdentical(t *testing.T) {
	p := progs.Fig2(512)
	plain, err := Compile(p.Source, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pres, err := plain.Run(p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := Compile(p.Source, Options{Ctx: context.Background()})
	if err != nil {
		t.Fatal(err)
	}
	cres, err := withCtx.Run(p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	if pres.Exec.Cycles != cres.Exec.Cycles {
		t.Fatalf("cycles perturbed: %d vs %d", pres.Exec.Cycles, cres.Exec.Cycles)
	}
}
