package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
	"staticpipe/internal/value"
)

// execView is the comparable slice of an exec result: everything a caller
// can observe about what a run computed, excluding per-shard accounting
// (which legitimately varies with the worker count) and the simulated
// graph pointer.
type execView struct {
	Cycles   int
	Firings  []int
	Outputs  map[string][]value.Value
	Arrivals map[string][]exec.Arrival
	Clean    bool
	Stalled  []string
}

func viewOf(res *exec.Result) execView {
	return execView{
		Cycles:   res.Cycles,
		Firings:  res.Firings,
		Outputs:  res.Outputs,
		Arrivals: res.Arrivals,
		Clean:    res.Clean,
		Stalled:  res.Stalled,
	}
}

// machView is the comparable slice of a machine result.
type machView struct {
	Cycles       int
	Outputs      map[string][]value.Value
	Arrivals     map[string][]exec.Arrival
	Packets      map[string]int
	AMPackets    int
	TotalPackets int
	PEBusy       []int
	FUBusy       []int
	Clean        bool
	Stalled      []string
}

func machViewOf(res *machine.Result) machView {
	return machView{
		Cycles:       res.Cycles,
		Outputs:      res.Outputs,
		Arrivals:     res.Arrivals,
		Packets:      res.Packets,
		AMPackets:    res.AMPackets,
		TotalPackets: res.TotalPackets,
		PEBusy:       res.PEBusy,
		FUBusy:       res.FUBusy,
		Clean:        res.Clean,
		Stalled:      res.Stalled,
	}
}

// TestUnitBindRemoved pins the removal of the shared-mutation hazard: a
// Unit no longer exposes Bind (which wrote run state into the shared
// compiled object). Per-run state travels in a core.Binding passed to
// Artifact.Run/RunBatch; the compiled artifact itself is never written.
func TestUnitBindRemoved(t *testing.T) {
	if _, ok := reflect.TypeOf(&Unit{}).MethodByName("Bind"); ok {
		t.Fatal("Unit.Bind is back: per-run state must travel in core.Binding, not mutate the shared unit")
	}
}

// TestSharedArtifactConcurrentRuns pins the artifact-cache sharing
// contract under the race detector: one compiled artifact, run from 8
// goroutines concurrently on both engines with mixed worker counts, must
// produce the same bytes every time and never race. This is exactly what a
// cache hit does — several admitted jobs execute one resident artifact at
// once.
func TestSharedArtifactConcurrentRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2026))
	src, inputs := randomProgram(rng, 8)
	art, err := CompileArtifact(src, Options{})
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, src)
	}
	ref, err := art.Run(Binding{}, inputs)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := art.Machine()
	if err != nil {
		t.Fatal(err)
	}
	mref, err := mp.Run(machine.Config{PEs: 4, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 8, 4
	errs := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				w := 1 + (g+it)%4
				if g%2 == 0 {
					res, err := art.Run(Binding{Workers: w}, inputs)
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: exec w=%d: %v", g, w, err)
						return
					}
					if !reflect.DeepEqual(viewOf(res.Exec), viewOf(ref.Exec)) {
						errs <- fmt.Errorf("goroutine %d: exec w=%d diverged from reference", g, w)
						return
					}
				} else {
					res, err := mp.Run(machine.Config{PEs: 4, Workers: w, Inputs: inputs})
					if err != nil {
						errs <- fmt.Errorf("goroutine %d: machine w=%d: %v", g, w, err)
						return
					}
					if !reflect.DeepEqual(machViewOf(res), machViewOf(mref)) {
						errs <- fmt.Errorf("goroutine %d: machine w=%d diverged from reference", g, w)
						return
					}
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestCachedVsFreshDifferential is the identity contract of the artifact
// cache: a run over a shared (cache-hit) artifact — including repeat runs
// that reuse pooled simulator state — must be byte-identical to a fresh
// compile-and-run of the same source, across random programs, both worker
// counts of the sweep, scalar and batched execution, and every placement
// strategy of the packet-level machine.
func TestCachedVsFreshDifferential(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(31415))
	for trial := 0; trial < trials; trial++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))

		// Scalar sweep: fresh artifact vs shared artifact run repeatedly
		// (second and later runs draw pooled state) vs the legacy Unit
		// facade, at Workers 1 and 4.
		fresh, err := CompileArtifact(src, Options{})
		if err != nil {
			t.Fatalf("trial %d: compile: %v\n%s", trial, err, src)
		}
		shared, err := CompileArtifact(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		legacy, err := Compile(src, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{1, 4} {
			bind := Binding{Workers: w}
			want, err := fresh.Run(bind, inputs)
			if err != nil {
				t.Fatalf("trial %d w=%d: fresh: %v", trial, w, err)
			}
			for rep := 0; rep < 3; rep++ {
				got, err := shared.Run(bind, inputs)
				if err != nil {
					t.Fatalf("trial %d w=%d rep %d: shared: %v", trial, w, rep, err)
				}
				if !reflect.DeepEqual(viewOf(got.Exec), viewOf(want.Exec)) {
					t.Fatalf("trial %d w=%d rep %d: shared artifact diverged from fresh compile\n%s",
						trial, w, rep, src)
				}
			}
			lres, err := legacy.art.Run(bind, inputs)
			if err != nil {
				t.Fatalf("trial %d w=%d: legacy: %v", trial, w, err)
			}
			if !reflect.DeepEqual(viewOf(lres.Exec), viewOf(want.Exec)) {
				t.Fatalf("trial %d w=%d: legacy unit diverged from fresh compile", trial, w)
			}
		}

		// Batched sweep: the batch width is part of the cache key, so a
		// batched hit reuses an artifact compiled with the same width.
		bfresh, err := CompileArtifact(src, Options{Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		bshared, err := CompileArtifact(src, Options{Batch: 16})
		if err != nil {
			t.Fatal(err)
		}
		bwant, err := bfresh.RunBatch(Binding{}, inputs, nil)
		if err != nil {
			t.Fatalf("trial %d: fresh batch: %v", trial, err)
		}
		for rep := 0; rep < 2; rep++ {
			bgot, err := bshared.RunBatch(Binding{}, inputs, nil)
			if err != nil {
				t.Fatalf("trial %d rep %d: shared batch: %v", trial, rep, err)
			}
			if len(bgot.Lanes) != len(bwant.Lanes) {
				t.Fatalf("trial %d: lane count %d vs %d", trial, len(bgot.Lanes), len(bwant.Lanes))
			}
			for l := range bgot.Lanes {
				if !reflect.DeepEqual(viewOf(bgot.Lanes[l].Exec), viewOf(bwant.Lanes[l].Exec)) {
					t.Fatalf("trial %d rep %d: batched lane %d diverged", trial, rep, l)
				}
			}
		}

		// Machine sweep: the lazily built machine preparation and the
		// memoized placement plan must not change what a run computes —
		// every placement strategy, fresh vs shared, byte-identical.
		const pes = 4
		pl, err := fresh.PlacementPlan(pes)
		if err != nil {
			t.Fatalf("trial %d: plan: %v", trial, err)
		}
		spl, err := shared.PlacementPlan(pes)
		if err != nil {
			t.Fatal(err)
		}
		base := machine.Config{PEs: pes, FUs: 2, AMs: 2, Inputs: inputs}
		variants := []struct {
			name   string
			assign machine.Assignment
			placed []int
		}{
			{"bystage", machine.ByStage, nil},
			{"hotspot", machine.HotSpot, nil},
			{"mincost", machine.Placed, pl.PE},
			{"mincost-shared", machine.Placed, spl.PE},
		}
		fmp, err := fresh.Machine()
		if err != nil {
			t.Fatal(err)
		}
		smp, err := shared.Machine()
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range variants {
			cfg := base
			cfg.Assign = v.assign
			cfg.Placement = v.placed
			want, err := fmp.Run(cfg)
			if err != nil {
				t.Fatalf("trial %d %s: fresh machine: %v", trial, v.name, err)
			}
			for _, w := range []int{1, 4} {
				wcfg := cfg
				wcfg.Workers = w
				got, err := smp.Run(wcfg)
				if err != nil {
					t.Fatalf("trial %d %s w=%d: shared machine: %v", trial, v.name, w, err)
				}
				if !reflect.DeepEqual(machViewOf(got), machViewOf(want)) {
					t.Fatalf("trial %d %s w=%d: shared machine diverged from fresh", trial, v.name, w)
				}
			}
		}
	}
}
