package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"staticpipe/internal/machine"
	"staticpipe/internal/place"
)

// TestPlacementSweepRandom pins the placement half of the identity
// contract, mirroring the P∈{1,2,4,8} worker sweeps: cell → PE mapping
// decides where cells retire and which packets cross the routing network,
// never what a run computes. Random compiled programs run under every
// placement strategy — including the min-cost mapping from package place —
// and must produce byte-identical output streams; within a fixed
// placement, every observable Result field must be byte-identical across
// worker counts and under batching.
func TestPlacementSweepRandom(t *testing.T) {
	n := 5
	if testing.Short() {
		n = 2
	}
	const pes = 4
	base := machine.Config{PEs: pes, FUs: 2, AMs: 2}
	rng := rand.New(rand.NewSource(1983))
	for i := 0; i < n; i++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))
		u, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		if err := u.Compiled.SetInputs(inputs); err != nil {
			t.Fatal(err)
		}
		pl, err := place.Plan(u.Compiled.Graph, place.Options{PEs: pes})
		if err != nil {
			t.Fatalf("program %d: plan: %v", i, err)
		}
		variants := []struct {
			name string
			cfg  machine.Config
		}{
			{"bystage", withAssign(base, machine.ByStage, nil)},
			{"random", withAssign(base, machine.Random, nil)},
			{"hotspot", withAssign(base, machine.HotSpot, nil)},
			{"mincost", withAssign(base, machine.Placed, pl.PE)},
		}
		var refOutputs any
		for _, v := range variants {
			t.Run(fmt.Sprintf("prog%d/%s", i, v.name), func(t *testing.T) {
				seq, err := machine.Run(u.Compiled.Graph, v.cfg)
				if err != nil {
					t.Fatalf("sequential: %v", err)
				}
				if !seq.Clean {
					t.Fatalf("did not drain: %v", seq.Stalled)
				}
				// Output value streams are dataflow-determined: identical
				// across every placement. (Cycle counts and arrival stamps
				// legitimately differ — co-located cells exchange packets
				// on the 1-cycle local path instead of the network.)
				if refOutputs == nil {
					refOutputs = seq.Outputs
				} else if !reflect.DeepEqual(refOutputs, seq.Outputs) {
					t.Fatalf("outputs diverge from the first placement's")
				}
				// Within this placement the full result — arrivals, cycles,
				// packet counts, busy counters — is worker-count invariant.
				for _, w := range []int{2, 4, 8} {
					cfg := v.cfg
					cfg.Workers = w
					par, err := machine.Run(u.Compiled.Graph, cfg)
					if err != nil {
						t.Fatalf("P=%d: %v", w, err)
					}
					requireSamePlacedResult(t, w, 0, seq, par)
				}
				// And batching must leave lane 0's view untouched,
				// placement included (each lane simulates one placed
				// machine instance).
				for _, w := range []int{1, 2} {
					cfg := v.cfg
					cfg.Batch = 4
					cfg.Workers = w
					bat, err := machine.Run(u.Compiled.Graph, cfg)
					if err != nil {
						t.Fatalf("B=4 W=%d: %v", w, err)
					}
					requireSamePlacedResult(t, w, 4, seq, bat)
				}
			})
		}
	}
}

func withAssign(cfg machine.Config, a machine.Assignment, placement []int) machine.Config {
	cfg.Assign = a
	cfg.Placement = placement
	cfg.Seed = 3 // drives Random
	return cfg
}

func requireSamePlacedResult(t *testing.T, workers, batch int, seq, got *machine.Result) {
	t.Helper()
	tag := fmt.Sprintf("P=%d B=%d", workers, batch)
	if seq.Cycles != got.Cycles {
		t.Errorf("%s: cycles %d, sequential %d", tag, got.Cycles, seq.Cycles)
	}
	if !reflect.DeepEqual(seq.Outputs, got.Outputs) {
		t.Errorf("%s: outputs diverge", tag)
	}
	if !reflect.DeepEqual(seq.Arrivals, got.Arrivals) {
		t.Errorf("%s: arrival streams diverge", tag)
	}
	if !reflect.DeepEqual(seq.Packets, got.Packets) || seq.TotalPackets != got.TotalPackets || seq.AMPackets != got.AMPackets {
		t.Errorf("%s: packet statistics diverge", tag)
	}
	if !reflect.DeepEqual(seq.PEBusy, got.PEBusy) || !reflect.DeepEqual(seq.FUBusy, got.FUBusy) {
		t.Errorf("%s: busy counters diverge", tag)
	}
	if seq.Clean != got.Clean || !reflect.DeepEqual(seq.Stalled, got.Stalled) {
		t.Errorf("%s: drain state diverges: clean %v/%v stalled %v/%v",
			tag, got.Clean, seq.Clean, got.Stalled, seq.Stalled)
	}
}
