// Package core assembles the paper's contribution end to end: it compiles
// a pipe-structured Val program into a fully pipelined static dataflow
// instruction graph (Theorems 1–4) and runs it on the firing-rule
// simulator, with the reference interpreter available for validation.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"staticpipe/internal/exec"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/mcm"
	"staticpipe/internal/passes"
	"staticpipe/internal/pipestruct"
	"staticpipe/internal/trace"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// Options selects compilation strategies. The zero value is the paper's
// recommended configuration: pipeline-scheme foralls, companion-scheme
// for-iters where a companion function exists, idealized control
// generators, optimal balancing.
type Options struct {
	// ForallScheme: forall.Pipeline (default) or forall.Parallel.
	ForallScheme forall.Scheme
	// ForIterScheme: foriter.Auto (default), foriter.Todd, or
	// foriter.Companion.
	ForIterScheme foriter.Scheme
	// LiteralControl realizes boolean control streams as literal
	// instruction subgraphs instead of idealized generator cells.
	LiteralControl bool
	// NoBalance skips balancing; NaiveBalance uses longest-path leveling
	// instead of the optimal min-cost-flow balancer.
	NoBalance    bool
	NaiveBalance bool
	// Dedup runs common-cell elimination before balancing.
	Dedup bool
	// ArmSlack pads data-dependent conditional arms with elasticity FIFOs
	// of this many stages (see pe.Options.ArmSlack).
	ArmSlack int
	// Passes, when non-empty, is an explicit comma-separated compilation
	// pass list (e.g. "dedup,balance"; see passes.Names for the registry)
	// run over the assembled instruction graph. It overrides the
	// NoBalance/NaiveBalance/Dedup strategy booleans above, which remain as
	// the legacy interface and translate to the equivalent pass list.
	Passes string
	// VerifyEach runs the IR verifier (graph.Verify and, once balanced, the
	// §3 equal-path-length check) after every compilation pass.
	VerifyEach bool
	// Snapshot, if non-nil, receives the instruction graph after every
	// compilation pass. The graph is live; hooks must render what they need
	// synchronously.
	Snapshot func(pass string, g *graph.Graph)
	// MaxCycles bounds simulation runs (0 = exec.DefaultMaxCycles).
	MaxCycles int
	// Tracer, if non-nil, receives the observability event stream of every
	// Run (see internal/trace). Tracing is passive and does not change
	// results or cycle counts.
	Tracer trace.Tracer
	// Progress, if non-nil, is updated live during every Run (see
	// exec.Options.Progress) so the telemetry server can report cycle
	// progress while the simulation is in flight.
	Progress *trace.Progress
	// Workers selects the simulator's sharded parallel engine (see
	// exec.Options.Workers); 0 or 1 runs sequentially. Results are
	// byte-identical for any worker count.
	Workers int
	// Batch widens every Run to this many independent token lanes advancing
	// through the one compiled graph (see exec.Options.Batch). Run feeds all
	// lanes the program's bound inputs; RunBatch rebinds per-lane inputs and
	// returns per-lane views. Lane 0 is always byte-identical to a scalar
	// run; 0 or 1 runs the scalar engine. With Batch > 1 Workers shards by
	// lane ranges.
	Batch int
	// Ctx, if non-nil, cancels in-flight Runs early (see exec.Options.Ctx:
	// polled every exec.CancelCadence cycles, zero perturbation when the
	// context never fires). A canceled Run returns the partial RunResult —
	// whatever each output produced so far, Exec.Canceled set — together
	// with the error.
	Ctx context.Context
}

// Unit is a compiled pipe-structured program — the legacy single-goroutine
// facade over an immutable Artifact. New code (and any code sharing one
// compilation across goroutines, e.g. through the artifact cache) should
// use Artifact and per-run Bindings directly; Unit remains for the
// command-line tools' compile-once-run-once shape.
type Unit struct {
	Source   string
	Checked  *val.Checked
	Compiled *pipestruct.Result
	art      *Artifact
}

// Compile parses, checks, and compiles a pipe-structured Val program.
func Compile(src string, opts Options) (*Unit, error) {
	art, err := CompileArtifact(src, opts)
	if err != nil {
		return nil, err
	}
	return &Unit{Source: src, Checked: art.Checked, Compiled: art.Compiled, art: art}, nil
}

// Artifact returns the immutable compiled artifact backing this unit.
func (u *Unit) Artifact() *Artifact { return u.art }

// phaseRecorder is the optional sink capability for compile-phase records:
// trace.Metrics and trace.Live both implement it.
type phaseRecorder interface{ RecordPhase(trace.PhaseStat) }

// recordPhase forwards one compile-phase record to every phase-capable sink
// reachable from t (unwrapping trace.Multi fan-outs).
func recordPhase(t trace.Tracer, p trace.PhaseStat) {
	switch s := t.(type) {
	case nil:
	case trace.Multi:
		for _, sub := range s {
			recordPhase(sub, p)
		}
	case phaseRecorder:
		s.RecordPhase(p)
	}
}

// PassStats returns the per-pass compilation statistics (name, wall time,
// graph sizes) in pipeline order.
func (u *Unit) PassStats() []passes.Stat { return u.Compiled.PassStats }

// RunResult holds a machine-level run's outcome.
type RunResult struct {
	// Outputs holds each output array (with its declared index range).
	Outputs map[string]*val.ArrayVal
	// Exec is the underlying simulation result (timing, firings,
	// initiation intervals).
	Exec *exec.Result
}

// II returns the steady-state initiation interval observed at the named
// output.
func (r *RunResult) II(name string) float64 { return r.Exec.II(name) }

// Run simulates the compiled graph on the given input streams with the
// compile-time options as the binding (the graph itself is never written —
// inputs travel with the run).
func (u *Unit) Run(inputs map[string][]value.Value) (*RunResult, error) {
	return u.art.Run(Binding{}, inputs)
}

// BatchRunResult holds every lane's view of a batched run.
type BatchRunResult struct {
	// Lanes holds one RunResult per lane. Lane 0 consumed the program's
	// baseline inputs and is byte-identical to a sequential Run.
	Lanes []*RunResult
	// Exec is the underlying batched simulation result (top-level fields
	// are lane 0's; Exec.Lanes carries the raw per-lane views).
	Exec *exec.Result
}

// RunBatch simulates Options.Batch independent input sets through the one
// compiled graph in a single batched run. inputs binds the baseline streams
// every lane defaults to (and lane 0 always consumes); laneInputs[l], when
// non-nil, rebinds lane l's named inputs (lane 0's entry is ignored). Every
// stream must match the program's declared input length.
func (u *Unit) RunBatch(inputs map[string][]value.Value, laneInputs []map[string][]value.Value) (*BatchRunResult, error) {
	return u.art.RunBatch(Binding{}, inputs, laneInputs)
}

// Reference evaluates the program with the direct AST interpreter — the
// semantic baseline compiled graphs are validated against.
func (u *Unit) Reference(inputs map[string][]value.Value) (map[string]*val.ArrayVal, error) {
	return val.Interp(u.Checked, inputs)
}

// PredictII returns the analytically predicted initiation interval of the
// compiled graph (maximum cycle ratio of its timing constraints).
func (u *Unit) PredictII() (mcm.Result, error) {
	return mcm.PredictII(u.Compiled.Graph)
}

// Report renders a compile report: block table, cell statistics, buffering
// cost, and the predicted initiation interval.
func (u *Unit) Report() string {
	var b strings.Builder
	stats := u.Compiled.Graph.ComputeStats()
	fmt.Fprintf(&b, "blocks:\n")
	for _, blk := range u.Compiled.Blocks {
		fmt.Fprintf(&b, "  %-12s %-8s scheme=%-9s", blk.Name, blk.Form, blk.Scheme)
		if blk.Kind != "" {
			fmt.Fprintf(&b, " recurrence=%s", blk.Kind)
		}
		fmt.Fprintf(&b, " range=[%d, %d]\n", blk.Lo, blk.Hi)
	}
	fmt.Fprintf(&b, "cells: %d (%d buffer cells, %d buffer stages)\n",
		stats.Cells, stats.BufferCells, stats.BufferUnits)
	fmt.Fprintf(&b, "arcs:  %d\n", stats.Arcs)
	ops := make([]string, 0, len(stats.ByOp))
	for op, n := range stats.ByOp {
		ops = append(ops, fmt.Sprintf("%s:%d", op, n))
	}
	sort.Strings(ops)
	fmt.Fprintf(&b, "by op: %s\n", strings.Join(ops, " "))
	if n := len(u.Compiled.PassStats); n > 0 {
		names := make([]string, 0, n)
		for _, s := range u.Compiled.PassStats {
			names = append(names, s.Name)
		}
		fmt.Fprintf(&b, "passes: %s\n", strings.Join(names, " -> "))
	}
	for _, w := range u.Compiled.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	if u.Compiled.Deduped > 0 {
		fmt.Fprintf(&b, "dedup: %d duplicate cells removed\n", u.Compiled.Deduped)
	}
	if u.Compiled.Plan != nil {
		fmt.Fprintf(&b, "balancing: %d buffer stages inserted\n", u.Compiled.Plan.Total)
	} else {
		fmt.Fprintf(&b, "balancing: skipped\n")
	}
	if pred, err := u.PredictII(); err == nil {
		fmt.Fprintf(&b, "predicted %s\n", pred)
	} else {
		fmt.Fprintf(&b, "prediction failed: %v\n", err)
	}
	return b.String()
}

// Validate runs the compiled graph against the reference interpreter on
// the given inputs and reports the first mismatch (nil if all outputs
// agree within tol).
func (u *Unit) Validate(inputs map[string][]value.Value, tol float64) error {
	got, err := u.Run(inputs)
	if err != nil {
		return err
	}
	want, err := u.Reference(inputs)
	if err != nil {
		return err
	}
	for name, w := range want {
		g, ok := got.Outputs[name]
		if !ok {
			return fmt.Errorf("core: output %s missing from run", name)
		}
		if g.Lo != w.Lo || len(g.Elems) != len(w.Elems) {
			return fmt.Errorf("core: output %s range [%d..+%d] vs reference [%d..+%d]",
				name, g.Lo, len(g.Elems), w.Lo, len(w.Elems))
		}
		for i := range w.Elems {
			if !value.Close(g.Elems[i], w.Elems[i], tol) {
				return fmt.Errorf("core: output %s[%d] = %v, reference %v",
					name, w.Lo+int64(i), g.Elems[i], w.Elems[i])
			}
		}
	}
	return nil
}
