package core

import (
	"fmt"
	"math/rand"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
	"staticpipe/internal/value"
)

// TestCrossSimulatorRandom is the cross-simulator differential check:
// random pipe-structured programs are compiled once and executed both on
// the firing-rule simulator (exec) and on the packet-level machine
// simulator, which must agree exactly — identical output streams at every
// sink (both kernels evaluate with the same ApplyOp, so equality is exact,
// not approximate) and complete drainage on both. It extends
// machine.TestMachineMatchesExec from hand-built graphs to the whole
// compiler output space the random program generator covers.
func TestCrossSimulatorRandom(t *testing.T) {
	n := 5
	if testing.Short() {
		n = 2
	}
	machineConfigs := []machine.Config{
		{PEs: 1, AMs: 1},
		{PEs: 4, FUs: 2, AMs: 2},
		{PEs: 8, FUs: 4, AMs: 3, Network: machine.Butterfly},
		{PEs: 3, Assign: machine.ByStage, SplitNetworks: true},
	}
	rng := rand.New(rand.NewSource(1983)) // the paper's publication year
	for i := 0; i < n; i++ {
		src, inputs := randomProgram(rng, 6+rng.Intn(6))
		u, err := Compile(src, Options{})
		if err != nil {
			t.Fatalf("program %d: %v\n%s", i, err, src)
		}
		eres, err := u.Run(inputs)
		if err != nil {
			t.Fatalf("program %d exec: %v\n%s", i, err, src)
		}
		if !eres.Exec.Clean {
			t.Fatalf("program %d exec did not drain: %v", i, eres.Exec.Stalled)
		}
		for ci, cfg := range machineConfigs {
			t.Run(fmt.Sprintf("prog%d/cfg%d", i, ci), func(t *testing.T) {
				if err := u.Compiled.SetInputs(inputs); err != nil {
					t.Fatal(err)
				}
				mres, err := machine.Run(u.Compiled.Graph, cfg)
				if err != nil {
					if mres != nil {
						t.Fatalf("machine: %v\n%s", err, machine.Describe(mres))
					}
					t.Fatal(err)
				}
				if !mres.Clean {
					t.Fatalf("machine did not drain: %v", mres.Stalled)
				}
				for name, arr := range eres.Outputs {
					want := arr.Elems
					got := mres.Output(name)
					if len(got) != len(want) {
						t.Fatalf("output %s: machine %d elements, exec %d", name, len(got), len(want))
					}
					for k := range want {
						if !value.Equal(got[k], want[k]) {
							t.Errorf("output %s[%d]: machine %v, exec %v", name, k, got[k], want[k])
						}
					}
				}
				// Both kernels must agree the pipeline was fully pipelined
				// or not — the IIs differ (machine cycles include network
				// transit) but output counts and arrival ordering must not.
				for name := range eres.Outputs {
					marr := mres.Arrivals[name]
					for k := 1; k < len(marr); k++ {
						if marr[k].Cycle < marr[k-1].Cycle {
							t.Errorf("output %s: machine arrivals out of order at %d", name, k)
						}
					}
				}
			})
		}
	}
}

// TestCrossSimulatorPartialResult checks both kernels surface partial
// results with stall diagnostics when MaxCycles is exhausted mid-stream.
func TestCrossSimulatorPartialResult(t *testing.T) {
	src, inputs := randomProgram(rand.New(rand.NewSource(7)), 8)
	u, err := Compile(src, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Compiled.SetInputs(inputs); err != nil {
		t.Fatal(err)
	}
	eres, err := exec.Run(u.Compiled.Graph, exec.Options{MaxCycles: 10})
	if err == nil {
		t.Fatal("exec: expected MaxCycles error")
	}
	if eres == nil {
		t.Fatal("exec: no partial result alongside the error")
	}
	if eres.Cycles != 10 {
		t.Errorf("exec partial result at %d cycles, want 10", eres.Cycles)
	}
	if eres.Clean || len(eres.Stalled) == 0 {
		t.Errorf("exec partial result has no stall diagnostics: clean=%v stalled=%v", eres.Clean, eres.Stalled)
	}
	mres, err := machine.Run(u.Compiled.Graph, machine.Config{MaxCycles: 10})
	if err == nil {
		t.Fatal("machine: expected MaxCycles error")
	}
	if mres == nil {
		t.Fatal("machine: no partial result alongside the error")
	}
	if mres.Cycles != 10 {
		t.Errorf("machine partial result at %d cycles, want 10", mres.Cycles)
	}
	if mres.Clean || len(mres.Stalled) == 0 {
		t.Errorf("machine partial result has no stall diagnostics: clean=%v stalled=%v", mres.Clean, mres.Stalled)
	}
}
