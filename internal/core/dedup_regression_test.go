package core

import (
	"strings"
	"testing"

	"staticpipe/internal/value"
)

// dedupStallSrc is the counterexample the differential pass harness found
// for dedup-without-balance (experiment E17's coupling, in program form):
// B0's for-iter loop and B1/B3's free-running forall regions share deduped
// generator and gate cells, and on the UNBALANCED graph that sharing
// couples the loop's fill transient into the foralls' acknowledge paths
// until the whole pipeline deadlocks — the run used to quiesce with zero
// outputs and dozens of stranded tokens.
const dedupStallSrc = `
param m = 7;
input U : array[real] [0, m+1];
input W : array[real] [0, m+1];
B0 : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := 0.5*W[i]*T[i-1] + U[i]
    in if i < 7 then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
    endlet
  endfor;
B1 : array[real] :=
  forall i in [1, 6]
  construct ((i * 0.01 + let v : real := i * 0.01 in (v * 0.5 + B0[i]) endlet) + B0[i])
  endall;
B2 : array[real] :=
  for i : integer := 1; T : array[real] := [0: 0.]
  do
    let P : real := 0.5*B0[i]*T[i-1] + W[i]
    in if i < 7 then iter T := T[i: P]; i := i + 1 enditer
       else T[i: P] endif
  endlet
  endfor;
B3 : array[real] :=
  forall i in [1, 7]
  construct let v : real := if U[i] > 0. then i * 0.01 else (B0[i] + U[i-1]) endif in (v * 0.5 + (min(i * 0.01, max(-0.50, 0.)) * (-0.41 - U[i+1]))) endlet
  endall;
output B3;
`

func dedupStallInputs() map[string][]value.Value {
	us := make([]value.Value, 9)
	ws := make([]value.Value, 9)
	for i := range us {
		us[i] = value.R(0.3*float64(i%4) - 0.5)
		ws[i] = value.R(0.2*float64(i%5) - 0.4)
	}
	return map[string][]value.Value{"U": us, "W": ws}
}

// TestDedupWithoutBalanceNoLongerStalls pins the fix: a pipeline that ends
// with dedup gets a balancing pass appended by the pass manager (with a
// recorded warning), and the counterexample program runs to completion with
// the full reference output instead of deadlocking.
func TestDedupWithoutBalanceNoLongerStalls(t *testing.T) {
	inputs := dedupStallInputs()
	for _, passList := range []string{"dedup", "balance,dedup"} {
		u, err := Compile(dedupStallSrc, Options{Passes: passList})
		if err != nil {
			t.Fatalf("passes=%q: %v", passList, err)
		}
		stats := u.PassStats()
		if len(stats) == 0 || stats[len(stats)-1].Name != "balance" {
			t.Errorf("passes=%q: pipeline did not end in an appended balance: %v", passList, stats)
		}
		found := false
		for _, w := range u.Compiled.Warnings {
			if strings.Contains(w, "appended balance") {
				found = true
			}
		}
		if !found {
			t.Errorf("passes=%q: no auto-append warning recorded: %v", passList, u.Compiled.Warnings)
		}
		if !strings.Contains(u.Report(), "warning:") {
			t.Errorf("passes=%q: report does not surface the warning", passList)
		}
		if err := u.Validate(inputs, 1e-9); err != nil {
			t.Errorf("passes=%q: %v", passList, err)
		}
		res, err := u.Run(inputs)
		if err != nil {
			t.Fatalf("passes=%q: %v", passList, err)
		}
		if !res.Exec.Clean {
			t.Errorf("passes=%q: run did not drain: %v", passList, res.Exec.Stalled)
		}
	}

	// The legacy boolean interface gets the same protection.
	u, err := Compile(dedupStallSrc, Options{Dedup: true, NoBalance: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Validate(inputs, 1e-9); err != nil {
		t.Errorf("legacy Dedup+NoBalance: %v", err)
	}
}

// TestDedupBalancedPipelineHasNoWarning checks the auto-append does not
// fire when the user's pipeline already balances after dedup.
func TestDedupBalancedPipelineHasNoWarning(t *testing.T) {
	u, err := Compile(dedupStallSrc, Options{Passes: "dedup,balance"})
	if err != nil {
		t.Fatal(err)
	}
	if len(u.Compiled.Warnings) != 0 {
		t.Errorf("unexpected warnings: %v", u.Compiled.Warnings)
	}
	stats := u.PassStats()
	if len(stats) != 2 {
		t.Errorf("pipeline grew unexpectedly: %v", stats)
	}
}
