// Package pipestruct compiles whole pipe-structured programs (§4, §8,
// Theorem 4): acyclic compositions of forall and for-iter blocks connected
// by producer/consumer array streams — the flow dependency graph of Fig 3.
//
// Each block compiles into one shared instruction graph; an arc of the flow
// dependency graph is simply the producer block's output cell fanned out to
// the consumer blocks' selection gates. Because the composition is acyclic
// and every block is fully pipelined, one global application of the
// balancing algorithm (package balance) yields a fully pipelined
// instruction graph for the complete program — exactly the construction of
// Theorem 4.
package pipestruct

import (
	"fmt"
	"sort"
	"strings"

	"staticpipe/internal/balance"
	"staticpipe/internal/forall"
	"staticpipe/internal/foriter"
	"staticpipe/internal/graph"
	"staticpipe/internal/passes"
	"staticpipe/internal/pe"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// Options configures whole-program compilation.
type Options struct {
	// ForallScheme selects the forall mapping (Pipeline by default).
	ForallScheme forall.Scheme
	// ForIterScheme selects the for-iter mapping (Auto by default).
	ForIterScheme foriter.Scheme
	// PE configures primitive-expression compilation (control stream
	// realization).
	PE pe.Options
	// Passes, when non-nil, is the explicit post-construction pass
	// pipeline run over the assembled instruction graph (package passes).
	// When nil, the pipeline is derived from the legacy strategy booleans
	// below via passes.FromLegacy.
	Passes []passes.Pass
	// VerifyEach runs graph.Verify (and, once balanced, the §3
	// equal-path-length check) after every pass.
	VerifyEach bool
	// Snapshot, if non-nil, receives the IR after every pass. The graph is
	// live; hooks must render what they need synchronously.
	Snapshot func(pass string, g *graph.Graph)

	// NoBalance skips the balancing pass (for ablation experiments).
	NoBalance bool
	// NaiveBalance uses longest-path leveling instead of the optimal
	// min-cost-flow balancer.
	NaiveBalance bool
	// Dedup runs common-cell elimination (package opt) before balancing.
	Dedup bool
}

// BlockMeta records how one block compiled.
type BlockMeta struct {
	Name string
	// Form is "forall" or "for-iter".
	Form string
	// Scheme is the mapping scheme actually used.
	Scheme string
	// Kind is the recurrence classification of a for-iter block.
	Kind string
	// Lo, Hi is the produced array's index range.
	Lo, Hi int64
}

// Result is a compiled pipe-structured program, ready to run.
type Result struct {
	Graph *graph.Graph
	// Inputs maps each declared input to its source cell; set its stream
	// with SetInput before running.
	Inputs map[string]*graph.Node
	// Outputs maps each output array name to its index range; the sink
	// with that label collects its elements.
	Outputs map[string]Range
	// Blocks records per-block compilation metadata in program order.
	Blocks []BlockMeta
	// Plan is the applied balancing plan (nil when no balancing pass ran).
	Plan *balance.Plan
	// Deduped counts cells removed by common-cell elimination.
	Deduped int
	// PassStats records each executed compilation pass (name, wall time,
	// graph sizes), in pipeline order.
	PassStats []passes.Stat
	// Warnings carries pipeline-level diagnostics from the pass manager
	// (e.g. an auto-appended balance after a trailing dedup).
	Warnings []string

	inputLen map[string]int
}

// Range is an inclusive array index range; two-dimensional arrays carry a
// second range and stream row-major.
type Range struct {
	Lo, Hi   int64
	TwoD     bool
	Lo2, Hi2 int64
}

// Len returns the element count of the range.
func (r Range) Len() int {
	n := int(r.Hi - r.Lo + 1)
	if r.TwoD {
		n *= int(r.Hi2 - r.Lo2 + 1)
	}
	return n
}

// Width returns the second-dimension extent (0 for vectors).
func (r Range) Width() int {
	if !r.TwoD {
		return 0
	}
	return int(r.Hi2 - r.Lo2 + 1)
}

// Compile translates a checked pipe-structured program into a single
// balanced machine-level instruction graph.
func Compile(c *val.Checked, opts Options) (*Result, error) {
	g := graph.New()
	res := &Result{
		Graph:    g,
		Inputs:   map[string]*graph.Node{},
		Outputs:  map[string]Range{},
		inputLen: map[string]int{},
	}

	// Producer streams visible to consumers: declared inputs first.
	streams := map[string]forall.Input{}
	for _, in := range c.Inputs {
		// The stream itself is bound at run time by SetInput; an empty
		// placeholder keeps the graph valid meanwhile.
		src := g.AddSource(in.Name, make([]value.Value, 0))
		res.Inputs[in.Name] = src
		res.inputLen[in.Name] = in.Len()
		streams[in.Name] = forall.Input{
			Node: src, Lo: in.Lo, Hi: in.Hi,
			TwoD: in.Ty.TwoD, Lo2: in.Lo2, Hi2: in.Hi2,
		}
	}

	// Blocks compile in program order; the applicative language guarantees
	// producers precede consumers.
	for _, blk := range c.Blocks {
		avail := map[string]forall.Input{}
		for _, name := range blk.Consumes {
			s, ok := streams[name]
			if !ok {
				return nil, fmt.Errorf("pipestruct: block %s consumes unknown array %s", blk.Name, name)
			}
			avail[name] = s
		}
		switch e := blk.Expr.(type) {
		case *val.Forall:
			out, err := forall.Compile(g, e, c.Params, avail, forall.Options{
				Scheme: opts.ForallScheme, PE: opts.PE,
			})
			if err != nil {
				return nil, fmt.Errorf("pipestruct: block %s: %w", blk.Name, err)
			}
			streams[blk.Name] = forall.Input{
				Node: out.Node, Lo: out.Lo, Hi: out.Hi,
				TwoD: out.TwoD, Lo2: out.Lo2, Hi2: out.Hi2,
			}
			res.Blocks = append(res.Blocks, BlockMeta{
				Name: blk.Name, Form: "forall",
				Scheme: schemeName(opts.ForallScheme),
				Lo:     out.Lo, Hi: out.Hi,
			})
		case *val.ForIter:
			out, err := foriter.Compile(g, e, c.Params, avail, foriter.Options{
				Scheme: opts.ForIterScheme, PE: opts.PE,
			})
			if err != nil {
				return nil, fmt.Errorf("pipestruct: block %s: %w", blk.Name, err)
			}
			streams[blk.Name] = forall.Input{Node: out.Node, Lo: out.Lo, Hi: out.Hi}
			res.Blocks = append(res.Blocks, BlockMeta{
				Name: blk.Name, Form: "for-iter",
				Scheme: out.Used.String(), Kind: out.Rec.Kind.String(),
				Lo: out.Lo, Hi: out.Hi,
			})
		default:
			return nil, fmt.Errorf("pipestruct: block %s is not a forall or for-iter block (%T); the program is not pipe-structured", blk.Name, blk.Expr)
		}
	}

	// Outputs become sinks; unconsumed non-output block results must still
	// drain (discard sinks) so they do not jam the pipeline.
	for _, name := range c.Outputs {
		s := streams[name]
		g.Connect(s.Node, g.AddSink(name), 0)
		res.Outputs[name] = Range{Lo: s.Lo, Hi: s.Hi, TwoD: s.TwoD, Lo2: s.Lo2, Hi2: s.Hi2}
	}
	for _, n := range g.Nodes() {
		if n.Op.HasOut() && len(n.Out) == 0 {
			g.Connect(n, g.AddSink("discard:"+n.Label+fmt.Sprint(n.ID)), 0)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("pipestruct: %w", err)
	}

	// Post-construction compilation runs as an explicit pass pipeline; the
	// legacy strategy booleans translate to the equivalent pass list.
	pl := opts.Passes
	if pl == nil {
		pl = passes.FromLegacy(opts.Dedup, opts.NoBalance, opts.NaiveBalance)
	}
	ctx := &passes.Context{VerifyEach: opts.VerifyEach, Snapshot: opts.Snapshot}
	g, err := passes.NewManager(pl...).Run(g, ctx)
	if err != nil {
		return nil, fmt.Errorf("pipestruct: %w", err)
	}
	res.Graph = g
	res.Plan = ctx.Plan
	res.Deduped = ctx.Deduped
	res.PassStats = ctx.Stats
	res.Warnings = ctx.Warnings

	// Graph-rebuilding passes invalidate node identity; re-resolve the
	// input source cells by their (unique) labels.
	byLabel := map[string]*graph.Node{}
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource {
			byLabel[n.Label] = n
		}
	}
	for name := range res.Inputs {
		src, ok := byLabel[name]
		if !ok {
			return nil, fmt.Errorf("pipestruct: internal error: input %s lost in pass pipeline", name)
		}
		res.Inputs[name] = src
	}
	return res, nil
}

func schemeName(s forall.Scheme) string {
	if s == forall.Parallel {
		return "parallel"
	}
	return "pipeline"
}

// SetInput binds an input array's element stream before a run.
func (r *Result) SetInput(name string, vals []value.Value) error {
	src, ok := r.Inputs[name]
	if !ok {
		return fmt.Errorf("pipestruct: unknown input %s", name)
	}
	if want := r.inputLen[name]; len(vals) != want {
		return fmt.Errorf("pipestruct: input %s has %d elements, want %d", name, len(vals), want)
	}
	src.Stream = vals
	return nil
}

// InputLen returns the declared element count of the named input (0 for an
// unknown name) — the length every stream bound to it, including a batched
// run's per-lane streams, must match.
func (r *Result) InputLen(name string) int { return r.inputLen[name] }

// CheckInputs validates a full input binding — every declared input present
// with its declared length — without writing the graph. This is the
// admission-time check for shared compiled artifacts: SetInput/SetInputs
// mutate source cells, so a cached Result must never see them; runs instead
// pass the checked map through exec.Options.Inputs or machine.Config.Inputs.
// Keys naming no declared input are ignored, matching SetInputs.
func (r *Result) CheckInputs(inputs map[string][]value.Value) error {
	for name := range r.Inputs {
		vals, ok := inputs[name]
		if !ok {
			return fmt.Errorf("pipestruct: missing input %s", name)
		}
		if want := r.inputLen[name]; len(vals) != want {
			return fmt.Errorf("pipestruct: input %s has %d elements, want %d", name, len(vals), want)
		}
	}
	return nil
}

// SetInputs binds all input streams.
func (r *Result) SetInputs(inputs map[string][]value.Value) error {
	for name := range r.Inputs {
		vals, ok := inputs[name]
		if !ok {
			return fmt.Errorf("pipestruct: missing input %s", name)
		}
		if err := r.SetInput(name, vals); err != nil {
			return err
		}
	}
	return nil
}

// FlowEdge is one producer→consumer edge of the flow dependency graph.
type FlowEdge struct {
	From, To string
}

// FlowGraph returns the block-level flow dependency graph of a checked
// program (§4: "the overall structure of a pipe-structured program can be
// described by an acyclic directed graph").
func FlowGraph(c *val.Checked) []FlowEdge {
	var edges []FlowEdge
	for _, blk := range c.Blocks {
		for _, from := range blk.Consumes {
			edges = append(edges, FlowEdge{From: from, To: blk.Name})
		}
	}
	return edges
}

// FlowDOT renders the flow dependency graph in Graphviz syntax for visual
// comparison with Fig 3.
func FlowDOT(c *val.Checked) string {
	var b strings.Builder
	b.WriteString("digraph flow {\n  rankdir=LR;\n")
	var inputs []string
	for _, in := range c.Inputs {
		inputs = append(inputs, in.Name)
	}
	sort.Strings(inputs)
	for _, in := range inputs {
		fmt.Fprintf(&b, "  %s [shape=ellipse];\n", in)
	}
	for _, blk := range c.Blocks {
		form := "forall"
		if _, ok := blk.Expr.(*val.ForIter); ok {
			form = "for-iter"
		}
		fmt.Fprintf(&b, "  %s [shape=box, label=\"%s\\n%s\"];\n", blk.Name, blk.Name, form)
	}
	for _, e := range FlowGraph(c) {
		fmt.Fprintf(&b, "  %s -> %s;\n", e.From, e.To)
	}
	b.WriteString("}\n")
	return b.String()
}
