package pipestruct

import (
	"strings"
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/forall"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

const chainSrc = `
param m = 8;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i] * 2. endall;
B : array[real] := forall i in [0, m] construct A[i] + 1. endall;
output B;
`

func compileSrc(t *testing.T, src string, opts Options) (*val.Checked, *Result) {
	t.Helper()
	prog, err := val.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := val.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Compile(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c, r
}

func TestCompileAndRunChain(t *testing.T) {
	_, r := compileSrc(t, chainSrc, Options{})
	C := make([]float64, 9)
	for i := range C {
		C[i] = float64(i)
	}
	if err := r.SetInputs(map[string][]value.Value{"C": value.Reals(C)}); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.Graph, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output("B")
	if len(out) != 9 {
		t.Fatalf("B has %d elements", len(out))
	}
	for i := range C {
		if out[i].AsReal() != C[i]*2+1 {
			t.Errorf("B[%d] = %v", i, out[i])
		}
	}
	if rng := r.Outputs["B"]; rng.Lo != 0 || rng.Hi != 8 || rng.Len() != 9 {
		t.Errorf("output range %+v", rng)
	}
	if len(r.Blocks) != 2 || r.Blocks[0].Name != "A" || r.Blocks[1].Form != "forall" {
		t.Errorf("block metadata %+v", r.Blocks)
	}
	if r.Plan == nil {
		t.Error("balancing plan missing")
	}
}

func TestSetInputErrors(t *testing.T) {
	_, r := compileSrc(t, chainSrc, Options{})
	if err := r.SetInput("nope", nil); err == nil {
		t.Error("unknown input accepted")
	}
	if err := r.SetInput("C", value.Reals(make([]float64, 3))); err == nil {
		t.Error("wrong length accepted")
	}
	if err := r.SetInputs(map[string][]value.Value{}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestNoBalanceOption(t *testing.T) {
	_, r := compileSrc(t, chainSrc, Options{NoBalance: true})
	if r.Plan != nil {
		t.Error("plan should be nil with NoBalance")
	}
}

func TestParallelForallOption(t *testing.T) {
	_, r := compileSrc(t, chainSrc, Options{ForallScheme: forall.Parallel})
	if r.Blocks[0].Scheme != "parallel" {
		t.Errorf("scheme %q", r.Blocks[0].Scheme)
	}
	C := make([]float64, 9)
	for i := range C {
		C[i] = float64(i) + 1
	}
	if err := r.SetInputs(map[string][]value.Value{"C": value.Reals(C)}); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.Graph, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out := res.Output("B")
	for i := range C {
		if out[i].AsReal() != C[i]*2+1 {
			t.Errorf("B[%d] = %v", i, out[i])
		}
	}
}

func TestUnconsumedBlockDrains(t *testing.T) {
	// D is neither consumed nor an output; its stream must drain through a
	// discard sink rather than jam the shared inputs.
	src := `
param m = 4;
input C : array[real] [0, m];
D : array[real] := forall i in [0, m] construct C[i] * 3. endall;
B : array[real] := forall i in [0, m] construct C[i] + 1. endall;
output B;
`
	_, r := compileSrc(t, src, Options{})
	C := []float64{1, 2, 3, 4, 5}
	if err := r.SetInputs(map[string][]value.Value{"C": value.Reals(C)}); err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(r.Graph, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Errorf("unconsumed block jammed: %v", res.Stalled)
	}
	if len(res.Output("B")) != 5 {
		t.Errorf("B incomplete")
	}
}

func TestFlowGraphAndDOT(t *testing.T) {
	c, _ := compileSrc(t, chainSrc, Options{})
	edges := FlowGraph(c)
	if len(edges) != 2 {
		t.Fatalf("edges %v", edges)
	}
	if edges[0].From != "C" || edges[0].To != "A" || edges[1].From != "A" || edges[1].To != "B" {
		t.Errorf("edges %v", edges)
	}
	dot := FlowDOT(c)
	for _, want := range []string{"C [shape=ellipse]", "A -> B", "forall"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q", want)
		}
	}
}

func TestDedupOptionAtPipestructLevel(t *testing.T) {
	// Duplicate references inside one block: dedup merges the gates.
	src := `
param m = 6;
input C : array[real] [0, m];
A : array[real] := forall i in [0, m] construct C[i] * C[i] + C[i] endall;
output A;
`
	c, plain := compileSrc(t, src, Options{})
	_, ded := compileSrc(t, src, Options{Dedup: true})
	if ded.Deduped == 0 {
		t.Fatal("nothing deduped")
	}
	if ded.Graph.NumNodes() >= plain.Graph.NumNodes() {
		t.Errorf("dedup did not shrink: %d vs %d", ded.Graph.NumNodes(), plain.Graph.NumNodes())
	}
	C := make([]float64, 7)
	for i := range C {
		C[i] = float64(i) - 2
	}
	for _, r := range []*Result{plain, ded} {
		if err := r.SetInputs(map[string][]value.Value{"C": value.Reals(C)}); err != nil {
			t.Fatal(err)
		}
		res, err := exec.Run(r.Graph, exec.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := range C {
			want := C[i]*C[i] + C[i]
			if got := res.Output("A")[i].AsReal(); got != want {
				t.Errorf("A[%d] = %v, want %v", i, got, want)
			}
		}
	}
	_ = c
}
