package passes

import (
	"fmt"
	"time"

	"staticpipe/internal/balance"
	"staticpipe/internal/graph"
)

// Pass is one graph-to-graph compilation stage. Run may mutate g in place
// and return it, or build and return a replacement graph (node IDs are
// then not stable across the pass — downstream consumers re-resolve cells
// by label). Returning an error aborts the pipeline.
type Pass interface {
	Name() string
	Run(g *graph.Graph, ctx *Context) (*graph.Graph, error)
}

// Context carries cross-pass state through one Manager.Run: configuration
// (verification, snapshot hook), accumulated statistics, and the artifacts
// individual passes record for compile reports.
type Context struct {
	// VerifyEach runs graph.Verify after every pass — and, once a
	// balancing pass has set Balanced, balance.CheckBalanced too — turning
	// a pass that corrupts the IR into an immediate positioned error
	// instead of a downstream miscompile.
	VerifyEach bool
	// Snapshot, if non-nil, is called with the IR after every pass. The
	// graph is live — later passes may mutate it — so hooks must render or
	// copy what they need synchronously.
	Snapshot func(pass string, g *graph.Graph)

	// Stats records one entry per executed pass, in order.
	Stats []Stat

	// Balanced reports that a balancing pass has run and no later pass has
	// invalidated its equal-path-length property.
	Balanced bool
	// Plan is the balancing plan applied by the most recent balance pass.
	Plan *balance.Plan
	// Deduped accumulates cells removed by common-cell elimination.
	Deduped int
	// Warnings collects pipeline-level diagnostics (e.g. the manager
	// appending a balancing pass after a trailing dedup) for compile
	// reports.
	Warnings []string
}

// Stat is one pass execution record.
type Stat struct {
	// Name is the pass name (registry name, e.g. "balance").
	Name string
	// Wall is the pass's wall-clock duration.
	Wall time.Duration
	// CellsBefore/After and ArcsBefore/After are graph sizes around the
	// pass.
	CellsBefore, CellsAfter int
	ArcsBefore, ArcsAfter   int
}

// String renders the stat as one report line.
func (s Stat) String() string {
	return fmt.Sprintf("%-15s %10v  cells %5d -> %-5d arcs %5d -> %-5d",
		s.Name, s.Wall.Round(time.Microsecond), s.CellsBefore, s.CellsAfter, s.ArcsBefore, s.ArcsAfter)
}

// Manager runs a pass list.
type Manager struct {
	Passes []Pass
}

// NewManager returns a manager over the given passes.
func NewManager(ps ...Pass) *Manager { return &Manager{Passes: ps} }

// Run executes the pass list over g, threading the context through every
// pass. A nil ctx runs with defaults (no verification, no snapshots). The
// input graph must already be structurally valid; with ctx.VerifyEach the
// manager checks that each pass keeps it that way.
//
// If common-cell elimination removed cells and no balancing pass ran
// afterwards, the manager appends a balance pass and records a warning in
// ctx.Warnings: dedup's sharing couples the acknowledge discipline of
// otherwise independent regions, and on an unbalanced graph that coupling
// can deadlock the pipeline (experiment E17), so an unbalanced deduped
// graph is never allowed to leave the pipeline.
func (m *Manager) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	if ctx == nil {
		ctx = &Context{}
	}
	for _, p := range m.Passes {
		ng, err := m.runPass(p, g, ctx)
		if err != nil {
			return nil, err
		}
		g = ng
	}
	if ctx.Deduped > 0 && !ctx.Balanced {
		ctx.Warnings = append(ctx.Warnings,
			"passes: dedup ran without a subsequent balancing pass; appended balance (shared cells on an unbalanced graph can stall the pipeline)")
		ng, err := m.runPass(Balance{}, g, ctx)
		if err != nil {
			return nil, err
		}
		g = ng
	}
	return g, nil
}

// runPass executes one pass with the manager's bookkeeping: timing and
// size statistics, the snapshot hook, and post-pass verification.
func (m *Manager) runPass(p Pass, g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	stat := Stat{Name: p.Name(), CellsBefore: g.NumNodes(), ArcsBefore: g.NumArcs()}
	start := time.Now()
	ng, err := p.Run(g, ctx)
	stat.Wall = time.Since(start)
	if err != nil {
		return nil, fmt.Errorf("passes: %s: %w", p.Name(), err)
	}
	if ng != nil {
		g = ng
	}
	stat.CellsAfter = g.NumNodes()
	stat.ArcsAfter = g.NumArcs()
	ctx.Stats = append(ctx.Stats, stat)
	if ctx.Snapshot != nil {
		ctx.Snapshot(p.Name(), g)
	}
	if ctx.VerifyEach {
		if err := g.Verify(); err != nil {
			return nil, fmt.Errorf("passes: after %s: %w", p.Name(), err)
		}
		if ctx.Balanced {
			if err := balance.CheckBalanced(g); err != nil {
				return nil, fmt.Errorf("passes: after %s: %w", p.Name(), err)
			}
		}
	}
	return g, nil
}
