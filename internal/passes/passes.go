// Package passes structures compilation as an explicit pipeline of graph
// transformation passes over the machine-level instruction graph.
//
// The paper's compilation story is staged — primitive-expression lowering
// (Thm 1), block schemes (Thms 2–3), then interconnection balancing
// (Thm 4, §8) — and this package gives each post-construction stage a
// uniform seam: a Pass maps one instruction graph to another, a Manager
// runs a configured pass list with per-pass wall-time and size statistics,
// optional IR snapshots after every pass, and an opt-in verifier
// (graph.Verify plus, once a balancing pass has run, the equal-path-length
// property of §3 via balance.CheckBalanced).
//
// The five transformations the compiler previously hard-wired behind
// boolean options are registered passes here:
//
//	literal-control  expand idealized control generators into literal cells
//	arm-slack[=k]    pad data-dependent conditional arms with FIFO slack
//	dedup            common-cell elimination (hash-consing, package opt)
//	balance          optimal min-cost-flow balancing (package balance)
//	balance-naive    longest-path leveling (Montz's baseline)
//	expand-fifos     lower FIFO(k) cells to identity-cell chains
//
// The canonical order is the order above: structural rewrites first, then
// balancing (which must see final path lengths), then FIFO lowering.
// Passes that change path lengths reset Context.Balanced, so the verifier
// only enforces §3 balance while it is actually claimed to hold.
package passes

import (
	"fmt"

	"staticpipe/internal/balance"
	"staticpipe/internal/graph"
	"staticpipe/internal/opt"
	"staticpipe/internal/pe"
)

// LiteralControl expands every idealized control-generator cell with a
// finite pattern into the literal instruction subgraph Todd [15] describes
// (an interleaved-counter index stream compared against the pattern's
// true-runs). Infinite (free-running) generators are left in place: their
// expansion would never quiesce. The pass rebuilds the graph, so node IDs
// are not stable across it.
type LiteralControl struct{}

// Name implements Pass.
func (LiteralControl) Name() string { return "literal-control" }

// Run implements Pass.
func (LiteralControl) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	expand := func(n *graph.Node) bool {
		return n.Op == graph.OpCtlGen && n.Pattern.Len() >= 0
	}
	any := false
	for _, n := range g.Nodes() {
		if expand(n) {
			any = true
			break
		}
	}
	if !any {
		return g, nil
	}
	ctx.Balanced = false

	out := graph.New()
	tail := make(map[graph.NodeID]*graph.Node, g.NumNodes())
	for _, n := range g.Nodes() {
		if expand(n) {
			tail[n.ID] = pe.LiteralPattern(out, n.Pattern.Values(), "lit:"+n.Label)
			continue
		}
		c := out.Add(n.Op, n.Label)
		c.Cap = n.Cap
		c.Stream = n.Stream
		c.Pattern = n.Pattern
		c.Buffer = n.Buffer
		for len(c.In) < len(n.In) {
			out.AddGate(c)
		}
		tail[n.ID] = c
	}
	for _, a := range g.Arcs() {
		na := out.ConnectGated(tail[a.From], a.Gate, tail[a.To], a.ToPort)
		if a.Init != nil {
			out.SetInit(na, *a.Init)
		}
		na.Feedback = a.Feedback
		na.Rigid = a.Rigid
		na.Skew = a.Skew
		na.Marking = a.Marking
	}
	for _, n := range g.Nodes() {
		if expand(n) {
			continue
		}
		for p, in := range n.In {
			if in.Literal != nil {
				out.SetLiteral(tail[n.ID], p, *in.Literal)
			}
		}
	}
	return out, nil
}

// ArmSlack pads both data arms of every data-dependent conditional MERGE
// with an elasticity FIFO of Stages stages. The one-token-per-arc
// discipline gives a conditional arm no room to queue a run of same-branch
// tokens; equal-length arm FIFOs add that room without disturbing balance
// (the balancer extends the control path to match — so this pass must run
// before a balancing pass). Statically-steered merges (control fed by a
// generator cell) and loop merges (on a directed cycle, or with feedback
// or rigid arms) are left alone.
type ArmSlack struct {
	// Stages is the FIFO depth added to each arm (≥ 1).
	Stages int
}

// Name implements Pass.
func (p ArmSlack) Name() string { return "arm-slack" }

// Run implements Pass.
func (p ArmSlack) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	if p.Stages < 1 {
		return nil, fmt.Errorf("arm-slack: %d stages", p.Stages)
	}
	onCycle := g.OnCycle()
	// Snapshot the merge set first: InsertFIFO appends nodes.
	var merges []*graph.Node
	for _, n := range g.Nodes() {
		if n.Op != graph.OpMerge || onCycle[n.ID] {
			continue
		}
		ctl := n.In[0].Arc
		if ctl == nil || g.Node(ctl.From).Op == graph.OpCtlGen {
			continue // statically steered: token placement is known exactly
		}
		merges = append(merges, n)
	}
	padded := false
	for _, n := range merges {
		arms := make([]*graph.Arc, 0, 2)
		ok := true
		for _, port := range []int{1, 2} {
			a := n.In[port].Arc
			if a == nil {
				continue // constant arm: literal operands need no elasticity
			}
			if a.Feedback || a.Rigid {
				ok = false
				break
			}
			arms = append(arms, a)
		}
		if !ok {
			continue
		}
		for _, a := range arms {
			f := g.InsertFIFO(a, p.Stages)
			f.Label = "armslack"
			padded = true
		}
	}
	if padded {
		ctx.Balanced = false
	}
	return g, nil
}

// Dedup is common-cell elimination (package opt): structurally identical
// cells fed by identical operands are merged into one cell with fanout.
// The pass rebuilds the graph, so node IDs are not stable across it.
type Dedup struct{}

// Name implements Pass.
func (Dedup) Name() string { return "dedup" }

// Run implements Pass.
func (Dedup) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	out, removed := opt.Dedup(g)
	ctx.Deduped += removed
	if removed > 0 {
		ctx.Balanced = false
	}
	return out, nil
}

// Balance equalizes path lengths so the graph sustains fully pipelined
// operation (§3, §8): optimal min-cost-flow balancing by default, naive
// longest-path leveling when Naive is set. The applied plan is recorded in
// Context.Plan and the §3 equal-path-length property is enforced by the
// verifier from this pass on.
type Balance struct {
	// Naive selects longest-path leveling instead of the optimal solver.
	Naive bool
}

// Name implements Pass.
func (p Balance) Name() string {
	if p.Naive {
		return "balance-naive"
	}
	return "balance"
}

// Run implements Pass.
func (p Balance) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	plan, err := balance.PlanGraph(g, !p.Naive)
	if err != nil {
		return nil, err
	}
	balance.Apply(g, plan)
	ctx.Plan = plan
	ctx.Balanced = true
	return g, nil
}

// ExpandFIFOs lowers every FIFO(k) buffer cell to a chain of k identity
// cells — the literal buffer-stage construction of the paper. Path lengths
// are unchanged, so balance is preserved. The pass rebuilds the graph when
// any FIFO is present; node IDs are not stable across it.
type ExpandFIFOs struct{}

// Name implements Pass.
func (ExpandFIFOs) Name() string { return "expand-fifos" }

// Run implements Pass.
func (ExpandFIFOs) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
	return g.ExpandFIFOs(), nil
}

// Func adapts a plain function to the Pass interface (used by tests and
// one-off experiments).
type Func struct {
	PassName string
	Fn       func(*graph.Graph, *Context) (*graph.Graph, error)
}

// Name implements Pass.
func (f Func) Name() string { return f.PassName }

// Run implements Pass.
func (f Func) Run(g *graph.Graph, ctx *Context) (*graph.Graph, error) { return f.Fn(g, ctx) }
