package passes

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// diamond builds a valid graph with two reconvergent paths of different
// length (src -> b directly and src -> a -> b) — balanced only after a
// balancing pass.
func diamond(t *testing.T) *graph.Graph {
	t.Helper()
	g := graph.New()
	src := g.AddSource("in", []value.Value{})
	a := g.Add(graph.OpID, "a")
	b := g.Add(graph.OpAdd, "b")
	g.Connect(src, a, 0)
	g.Connect(a, b, 0)
	g.Connect(src, b, 1)
	g.Connect(b, g.AddSink("out"), 0)
	if err := g.Verify(); err != nil {
		t.Fatalf("diamond graph invalid: %v", err)
	}
	return g
}

func TestEmptyPassList(t *testing.T) {
	g := diamond(t)
	ctx := &Context{VerifyEach: true}
	out, err := NewManager().Run(g, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out != g {
		t.Error("empty pipeline replaced the graph")
	}
	if len(ctx.Stats) != 0 {
		t.Errorf("empty pipeline recorded %d stats", len(ctx.Stats))
	}
}

func TestIdentityPass(t *testing.T) {
	g := diamond(t)
	cells := g.NumNodes()
	id := Func{PassName: "identity", Fn: func(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
		return nil, nil // nil graph means "unchanged"
	}}
	ctx := &Context{VerifyEach: true}
	out, err := NewManager(id).Run(g, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if out != g {
		t.Error("identity pass replaced the graph")
	}
	if len(ctx.Stats) != 1 || ctx.Stats[0].Name != "identity" {
		t.Fatalf("stats = %v", ctx.Stats)
	}
	if s := ctx.Stats[0]; s.CellsBefore != cells || s.CellsAfter != cells {
		t.Errorf("identity stat records %d -> %d cells, want %d", s.CellsBefore, s.CellsAfter, cells)
	}
}

func TestRunWithNilContext(t *testing.T) {
	if _, err := NewManager(Balance{}).Run(diamond(t), nil); err != nil {
		t.Fatal(err)
	}
}

func TestPassErrorWrapped(t *testing.T) {
	boom := errors.New("boom")
	bad := Func{PassName: "bad", Fn: func(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
		return nil, boom
	}}
	_, err := NewManager(bad).Run(diamond(t), &Context{})
	if !errors.Is(err, boom) {
		t.Fatalf("error not wrapped: %v", err)
	}
	if !strings.Contains(err.Error(), "passes: bad:") {
		t.Errorf("error does not name the pass: %v", err)
	}
}

// TestVerifierCatchesDanglingArc corrupts the arc table mid-pipeline (an
// arc removed from its producer's destination list loses its acknowledge
// path) and checks -verify-each turns it into an immediate error.
func TestVerifierCatchesDanglingArc(t *testing.T) {
	corrupt := Func{PassName: "corrupt", Fn: func(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
		for _, n := range g.Nodes() {
			if len(n.Out) > 0 {
				n.Out = n.Out[:len(n.Out)-1]
				return g, nil
			}
		}
		return g, nil
	}}
	_, err := NewManager(corrupt).Run(diamond(t), &Context{VerifyEach: true})
	if err == nil {
		t.Fatal("verifier missed the dangling arc")
	}
	if !strings.Contains(err.Error(), "passes: after corrupt:") {
		t.Errorf("error does not name the corrupting pass: %v", err)
	}
	// Without verification the corruption sails through — the whole point
	// of -verify-each.
	if _, err := NewManager(corrupt).Run(diamond(t), &Context{}); err != nil {
		t.Errorf("unverified pipeline should not detect it: %v", err)
	}
}

// TestVerifierCatchesUnbalanced checks the §3 equal-path-length property is
// enforced once a pass claims the graph balanced.
func TestVerifierCatchesUnbalanced(t *testing.T) {
	claim := Func{PassName: "claim-balanced", Fn: func(g *graph.Graph, ctx *Context) (*graph.Graph, error) {
		ctx.Balanced = true // lie: the diamond's reconvergent paths differ
		return g, nil
	}}
	_, err := NewManager(claim).Run(diamond(t), &Context{VerifyEach: true})
	if err == nil {
		t.Fatal("verifier accepted unbalanced reconvergent paths")
	}
	if !strings.Contains(err.Error(), "passes: after claim-balanced:") {
		t.Errorf("error does not name the pass: %v", err)
	}
	// A real balancing pass satisfies the same check.
	if _, err := NewManager(Balance{}).Run(diamond(t), &Context{VerifyEach: true}); err != nil {
		t.Errorf("balanced diamond rejected: %v", err)
	}
}

// TestVerifierCatchesUndeclaredCycle checks that a cycle with no arc marked
// Feedback is rejected.
func TestVerifierCatchesUndeclaredCycle(t *testing.T) {
	g := graph.New()
	x := g.Add(graph.OpID, "x")
	y := g.Add(graph.OpID, "y")
	g.Connect(x, y, 0)
	fb := g.Connect(y, x, 0)
	err := g.Verify()
	if err == nil || !strings.Contains(err.Error(), "no feedback arc") {
		t.Fatalf("undeclared cycle not caught: %v", err)
	}
	// Declaring the feedback arc is not enough: the cycle still carries no
	// initial token, so it can never fire.
	fb.Feedback = true
	err = g.Verify()
	if err == nil || !strings.Contains(err.Error(), "no initial token") {
		t.Fatalf("dead cycle not caught: %v", err)
	}
	// An initial token makes it live.
	g.SetInit(fb, value.R(0))
	if err := g.Verify(); err != nil {
		t.Fatalf("seeded cycle rejected: %v", err)
	}
}

func TestRegistryParse(t *testing.T) {
	ps, err := Parse(" dedup, balance-naive ,arm-slack=3 ")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]string, len(ps))
	for i, p := range ps {
		got[i] = p.Name()
	}
	want := []string{"dedup", "balance-naive", "arm-slack"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Parse = %v, want %v", got, want)
	}
	if ps[2].(ArmSlack).Stages != 3 {
		t.Errorf("arm-slack=3 parsed to %+v", ps[2])
	}
	if empty, err := Parse(""); err != nil || len(empty) != 0 {
		t.Errorf("Parse(\"\") = %v, %v", empty, err)
	}
	for _, bad := range []string{"no-such-pass", "arm-slack=zero", "arm-slack=0", "dedup=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
}

func TestRegistryNames(t *testing.T) {
	want := []string{"literal-control", "arm-slack", "dedup", "balance", "balance-naive", "expand-fifos"}
	if got := Names(); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Names() = %v, want %v", got, want)
	}
	for _, n := range Names() {
		p, err := Lookup(n)
		if err != nil {
			t.Errorf("Lookup(%q): %v", n, err)
		} else if p.Name() != n {
			t.Errorf("Lookup(%q).Name() = %q", n, p.Name())
		}
	}
}

func TestFromLegacy(t *testing.T) {
	cases := []struct {
		dedup, noBal, naive bool
		want                []string
	}{
		{false, false, false, []string{"balance"}},
		{true, false, false, []string{"dedup", "balance"}},
		{false, false, true, []string{"balance-naive"}},
		{false, true, false, nil},
		{true, true, true, []string{"dedup"}},
	}
	for _, tc := range cases {
		ps := FromLegacy(tc.dedup, tc.noBal, tc.naive)
		got := make([]string, len(ps))
		for i, p := range ps {
			got[i] = p.Name()
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("FromLegacy(%v, %v, %v) = %v, want %v", tc.dedup, tc.noBal, tc.naive, got, tc.want)
		}
	}
}

// TestAllPassesThroughManager runs every registered pass in canonical order
// over one graph, verifying after each: a finite control generator (for
// literal-control), a data-steered MERGE (for arm-slack), duplicate cells
// (for dedup), reconvergent paths (for balance), and the FIFOs the earlier
// passes insert (for expand-fifos).
func TestAllPassesThroughManager(t *testing.T) {
	g := graph.New()
	src := g.AddSource("in", []value.Value{})
	a1 := g.Add(graph.OpAdd, "a1")
	g.Connect(src, a1, 0)
	g.SetLiteral(a1, 1, value.R(1))
	a2 := g.Add(graph.OpAdd, "a2")
	g.Connect(src, a2, 0)
	g.SetLiteral(a2, 1, value.R(1))
	ctl := g.AddCtl("c", graph.Pattern{Body: []bool{true}, Repeat: 4})
	m := g.Add(graph.OpMerge, "m")
	g.Connect(ctl, m, 0)
	g.Connect(a1, m, 1)
	g.Connect(a2, m, 2)
	g.Connect(m, g.AddSink("out"), 0)
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}

	pl, err := Parse("literal-control,arm-slack,dedup,balance,expand-fifos")
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{VerifyEach: true}
	out, err := NewManager(pl...).Run(g, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Stats) != 5 {
		t.Fatalf("stats = %v", ctx.Stats)
	}
	for i, name := range []string{"literal-control", "arm-slack", "dedup", "balance", "expand-fifos"} {
		if ctx.Stats[i].Name != name {
			t.Errorf("stat %d = %s, want %s", i, ctx.Stats[i].Name, name)
		}
	}
	if ctx.Deduped == 0 {
		t.Error("duplicate adds not deduped")
	}
	if ctx.Plan == nil || !ctx.Balanced {
		t.Error("balance pass left no plan")
	}
	for _, n := range out.Nodes() {
		if n.Op == graph.OpCtlGen {
			t.Errorf("control generator %s survived literal-control", n.Name())
		}
		if n.Op == graph.OpFIFO {
			t.Errorf("FIFO %s survived expand-fifos", n.Name())
		}
	}
}
