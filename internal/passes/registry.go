package passes

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// factories maps registry names to pass constructors. The optional arg is
// the text after '=' in a pass spec ("arm-slack=3").
var factories = map[string]func(arg string) (Pass, error){
	"literal-control": func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("literal-control takes no argument")
		}
		return LiteralControl{}, nil
	},
	"arm-slack": func(arg string) (Pass, error) {
		stages := 1
		if arg != "" {
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("arm-slack wants a positive stage count, got %q", arg)
			}
			stages = n
		}
		return ArmSlack{Stages: stages}, nil
	},
	"dedup": func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("dedup takes no argument")
		}
		return Dedup{}, nil
	},
	"balance": func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("balance takes no argument")
		}
		return Balance{}, nil
	},
	"balance-naive": func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("balance-naive takes no argument")
		}
		return Balance{Naive: true}, nil
	},
	"expand-fifos": func(arg string) (Pass, error) {
		if arg != "" {
			return nil, fmt.Errorf("expand-fifos takes no argument")
		}
		return ExpandFIFOs{}, nil
	},
}

// Names returns the registered pass names in canonical pipeline order
// (structural rewrites, then balancing, then lowering); names not in the
// canonical sequence sort alphabetically after it.
func Names() []string {
	canonical := []string{"literal-control", "arm-slack", "dedup", "balance", "balance-naive", "expand-fifos"}
	rank := map[string]int{}
	for i, n := range canonical {
		rank[n] = i
	}
	names := make([]string, 0, len(factories))
	for n := range factories {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iOK := rank[names[i]]
		rj, jOK := rank[names[j]]
		switch {
		case iOK && jOK:
			return ri < rj
		case iOK:
			return true
		case jOK:
			return false
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// Lookup resolves one pass spec of the form "name" or "name=arg".
func Lookup(spec string) (Pass, error) {
	name, arg := spec, ""
	if i := strings.IndexByte(spec, '='); i >= 0 {
		name, arg = spec[:i], spec[i+1:]
	}
	f, ok := factories[strings.TrimSpace(name)]
	if !ok {
		return nil, fmt.Errorf("passes: unknown pass %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(strings.TrimSpace(arg))
}

// Parse resolves a comma-separated pass list ("dedup,balance"). The empty
// string (and lists of empty elements) parse to an empty pipeline.
func Parse(list string) ([]Pass, error) {
	var ps []Pass
	for _, spec := range strings.Split(list, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		p, err := Lookup(spec)
		if err != nil {
			return nil, err
		}
		ps = append(ps, p)
	}
	return ps, nil
}

// FromLegacy translates the historical strategy booleans of core.Options /
// pipestruct.Options into the equivalent pass list: optional common-cell
// elimination, then balancing (optimal unless naive, omitted when
// disabled). It exists so the legacy flags keep producing byte-identical
// graphs while running through the pass manager.
func FromLegacy(dedup, noBalance, naiveBalance bool) []Pass {
	var ps []Pass
	if dedup {
		ps = append(ps, Dedup{})
	}
	if !noBalance {
		ps = append(ps, Balance{Naive: naiveBalance})
	}
	return ps
}
