package foriter

import (
	"fmt"

	"staticpipe/internal/forall"
	"staticpipe/internal/graph"
	"staticpipe/internal/pe"
	"staticpipe/internal/val"
)

// Scheme selects the mapping strategy.
type Scheme int

const (
	// Auto uses the companion scheme when the recurrence has a recognized
	// companion function, and Todd's scheme otherwise.
	Auto Scheme = iota
	// Todd is the baseline feedback scheme of Fig 7 (rate ≤ 1/3).
	Todd
	// Companion is the fully pipelined scheme of Fig 8 (Theorem 3).
	Companion
)

func (s Scheme) String() string {
	switch s {
	case Todd:
		return "todd"
	case Companion:
		return "companion"
	default:
		return "auto"
	}
}

// Options configures compilation.
type Options struct {
	Scheme Scheme
	PE     pe.Options
}

// Out describes a compiled for-iter block: the output stream carries the
// constructed array's elements for indices Lo..Hi in order.
type Out struct {
	Node   *graph.Node
	Lo, Hi int64
	Rec    *Rec
	// Used records which scheme was actually applied.
	Used Scheme
}

// xprevName is the internal binding for the recurrence reference X[i−1].
const xprevName = "\x00xprev"

// Compile translates a primitive for-iter construct into the graph.
func Compile(g *graph.Graph, fi *val.ForIter, params map[string]int64,
	arrays map[string]forall.Input, opts Options) (*Out, error) {
	rec, err := Extract(fi, params)
	if err != nil {
		return nil, err
	}
	scheme := opts.Scheme
	if scheme == Auto {
		if rec.Kind != KindGeneral && rec.N() >= 2 {
			scheme = Companion
		} else {
			scheme = Todd
		}
	}
	if scheme == Companion {
		if rec.Kind == KindGeneral {
			return nil, fmt.Errorf("foriter: no companion function is known for this recurrence (%s); use Todd's scheme", rec.Val)
		}
		if rec.N() < 2 {
			scheme = Todd // a single computed element has no distance-2 form
		}
	}
	var node *graph.Node
	if scheme == Companion {
		node, err = compileCompanion(g, rec, params, arrays, opts.PE)
	} else {
		node, err = compileTodd(g, rec, params, arrays, opts.PE)
	}
	if err != nil {
		return nil, err
	}
	return &Out{Node: node, Lo: rec.R, Hi: rec.Q, Rec: rec, Used: scheme}, nil
}

// compileInit compiles the seed expression E0 as a single value, returning
// a constant or a one-element stream.
func compileInit(g *graph.Graph, rec *Rec, params map[string]int64,
	arrays map[string]forall.Input, peOpts pe.Options) (pe.Result, error) {
	b := pe.NewBuilder(g, rec.Counter, rec.R, rec.R, params, peOpts)
	for name, in := range arrays {
		if in.TwoD {
			b.BindArray2(name, in.Node, in.Lo, in.Hi, in.Lo2, in.Hi2)
		} else {
			b.BindArray(name, in.Node, in.Lo, in.Hi)
		}
	}
	r, err := b.Compile(rec.Init)
	if err != nil {
		return pe.Result{}, fmt.Errorf("foriter: seed expression: %w", err)
	}
	return r, nil
}

// connectResult wires a compile result into a port.
func connectResult(g *graph.Graph, r pe.Result, n *graph.Node, port int) {
	if r.IsConst() {
		g.SetLiteral(n, port, *r.Const)
		return
	}
	g.Connect(r.Node, n, port)
}

// compileTodd emits the Fig 7 scheme: the body pipeline F with a gated
// feedback arc from the result MERGE to the x_{i−1} uses. For Example 2 —
// MULT, ADD, MERGE — the feedback cycle has three cells and one circulating
// value, so the loop's initiation interval is 3 (the paper's 1/3 rate).
func compileTodd(g *graph.Graph, rec *Rec, params map[string]int64,
	arrays map[string]forall.Input, peOpts pe.Options) (*graph.Node, error) {
	n := rec.N()
	merge := g.Add(graph.OpMerge, "X:"+rec.X)
	g.Connect(g.AddCtl("mctl:"+rec.X, graph.Pattern{
		Prefix: []bool{false}, Body: []bool{true}, Repeat: n,
	}), merge, 0)

	initR, err := compileInit(g, rec, params, arrays, peOpts)
	if err != nil {
		return nil, err
	}
	connectResult(g, initR, merge, 2)

	// The body pipeline, with X[i−1] bound to the merge's output.
	body := replaceXRef(rec.Val, rec.X)
	b := pe.NewBuilder(g, rec.Counter, rec.P, rec.Q, params, peOpts)
	for name, in := range arrays {
		if in.TwoD {
			b.BindArray2(name, in.Node, in.Lo, in.Hi, in.Lo2, in.Hi2)
		} else {
			b.BindArray(name, in.Node, in.Lo, in.Hi)
		}
	}
	b.BindScalar(xprevName, merge)
	feedbackFrom := len(merge.Out)
	valR, err := b.Compile(body)
	if err != nil {
		return nil, fmt.Errorf("foriter: loop body: %w", err)
	}
	connectResult(g, valR, merge, 1)

	// Gate the feedback arcs with the output switch control <T..TF> and
	// mark them as loop feedback.
	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl:"+rec.X, graph.Pattern{
		Body: []bool{true}, Repeat: n, Suffix: []bool{false},
	}), merge, gp)
	for _, a := range merge.Out[feedbackFrom:] {
		a.Gate = gp
		a.Feedback = true
		a.Marking = 1 // one circulating value (Fig 7)
	}
	markLoopRigid(g, merge)
	return merge, nil
}

// replaceXRef rewrites references X[i−1] into uses of the internal
// feedback binding.
func replaceXRef(e val.Expr, x string) val.Expr {
	switch n := e.(type) {
	case *val.Index:
		if n.Array == x {
			return &val.Name{Ident: xprevName}
		}
		return e
	case *val.Unary:
		cp := *n
		cp.E = replaceXRef(n.E, x)
		return &cp
	case *val.Binary:
		cp := *n
		cp.L = replaceXRef(n.L, x)
		cp.R = replaceXRef(n.R, x)
		return &cp
	case *val.If:
		cp := *n
		cp.Cond = replaceXRef(n.Cond, x)
		cp.Then = replaceXRef(n.Then, x)
		cp.Else = replaceXRef(n.Else, x)
		return &cp
	case *val.Let:
		cp := *n
		cp.Defs = append([]val.Def(nil), n.Defs...)
		for i := range cp.Defs {
			cp.Defs[i].Init = replaceXRef(cp.Defs[i].Init, x)
		}
		cp.Body = replaceXRef(n.Body, x)
		return &cp
	default:
		return e
	}
}

// markLoopRigid marks every arc lying between two cells of the feedback
// strongly-connected component as rigid: buffering them would lengthen the
// loop cycle and change its rate.
func markLoopRigid(g *graph.Graph, loopNode *graph.Node) {
	fwd := reach(g, loopNode, false)
	bwd := reach(g, loopNode, true)
	for _, a := range g.Arcs() {
		if a.Feedback {
			continue
		}
		if fwd[a.From] && bwd[a.From] && fwd[a.To] && bwd[a.To] {
			a.Rigid = true
		}
	}
}

// reach computes forward or reverse reachability from n over all arcs.
func reach(g *graph.Graph, n *graph.Node, reverse bool) map[graph.NodeID]bool {
	adj := make([][]graph.NodeID, g.NumNodes())
	for _, a := range g.Arcs() {
		if reverse {
			adj[a.To] = append(adj[a.To], a.From)
		} else {
			adj[a.From] = append(adj[a.From], a.To)
		}
	}
	seen := map[graph.NodeID]bool{n.ID: true}
	stack := []graph.NodeID{n.ID}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				stack = append(stack, v)
			}
		}
	}
	return seen
}

// cellOp applies a two-operand cell (or constant-folds).
func cellOp(g *graph.Graph, op graph.Op, vop val.Op, l, r pe.Result, label string) pe.Result {
	if l.IsConst() && r.IsConst() {
		v, err := val.ApplyBinary(vop, *l.Const, *r.Const)
		if err == nil {
			return pe.Result{Const: &v}
		}
	}
	n := g.Add(op, label)
	connectResult(g, l, n, 0)
	connectResult(g, r, n, 1)
	return pe.Result{Node: n}
}

// window selects stream positions posLo..posHi of an n-position stream,
// recording the grid skew (posLo) on the data arc. Constants pass through
// unchanged.
func window(g *graph.Graph, r pe.Result, posLo, posHi, total int, label string) pe.Result {
	if r.IsConst() {
		return r
	}
	gate := g.Add(graph.OpTGate, label)
	g.Connect(g.AddCtl("ctl:"+label, graph.Pattern{
		Prefix: make([]bool, posLo),
		Body:   []bool{true}, Repeat: posHi - posLo + 1,
		Suffix: make([]bool, total-posHi-1),
	}), gate, 0)
	data := g.Connect(r.Node, gate, 1)
	data.Skew = posLo
	return pe.Result{Node: gate}
}

// compileCompanion emits the Fig 8 scheme for companion-bearing
// recurrences: an acyclic companion pipeline computes the distance-2
// parameters c_i = G(a_i, a_{i−1}); the main loop evaluates
// x_i = F(c_i, x_{i−2}) around a four-cell cycle (F's cells, a padding
// identity, and the MERGE) carrying two circulating values — the maximum
// rate. The two seeds x_{P−1} = E0 and x_P = F(a_P, x_{P−1}) are produced
// by a small acyclic "code for initial values" circuit.
func compileCompanion(g *graph.Graph, rec *Rec, params map[string]int64,
	arrays map[string]forall.Input, peOpts pe.Options) (*graph.Node, error) {
	n := rec.N() // elements P..Q; the loop computes n−1 of them

	b := pe.NewBuilder(g, rec.Counter, rec.P, rec.Q, params, peOpts)
	for name, in := range arrays {
		if in.TwoD {
			b.BindArray2(name, in.Node, in.Lo, in.Hi, in.Lo2, in.Hi2)
		} else {
			b.BindArray(name, in.Node, in.Lo, in.Hi)
		}
	}

	initR, err := compileInit(g, rec, params, arrays, peOpts)
	if err != nil {
		return nil, err
	}

	var c1, c2, xP pe.Result
	switch rec.Kind {
	case KindLinear:
		aR, err := b.Compile(rec.AExpr)
		if err != nil {
			return nil, fmt.Errorf("foriter: coefficient %s: %w", rec.AExpr, err)
		}
		bExpr := rec.BExpr
		if bExpr == nil {
			bExpr = &val.IntLit{Val: 0}
		}
		bR, err := b.Compile(bExpr)
		if err != nil {
			return nil, fmt.Errorf("foriter: coefficient %s: %w", bExpr, err)
		}
		aCur := window(g, aR, 1, n-1, n, "a[i]")
		aPrev := window(g, aR, 0, n-2, n, "a[i-1]")
		aFirst := window(g, aR, 0, 0, n, "a[P]")
		bCur := window(g, bR, 1, n-1, n, "b[i]")
		bPrev := window(g, bR, 0, n-2, n, "b[i-1]")
		bFirst := window(g, bR, 0, 0, n, "b[P]")
		// companion: c(1) = a_i·a_{i−1}, c(2) = a_i·b_{i−1} + b_i
		c1 = cellOp(g, graph.OpMul, val.OpMul, aCur, aPrev, "c1")
		c2 = cellOp(g, graph.OpAdd, val.OpAdd,
			cellOp(g, graph.OpMul, val.OpMul, aCur, bPrev, "c2.mul"), bCur, "c2")
		// seed x_P = a_P·x_{P−1} + b_P
		xP = cellOp(g, graph.OpAdd, val.OpAdd,
			cellOp(g, graph.OpMul, val.OpMul, aFirst, initR, "xP.mul"), bFirst, "xP")

	case KindScanMin, KindScanMax:
		op, vop := graph.OpMin, val.OpMin
		if rec.Kind == KindScanMax {
			op, vop = graph.OpMax, val.OpMax
		}
		bR, err := b.Compile(rec.ScanArg)
		if err != nil {
			return nil, fmt.Errorf("foriter: scan argument %s: %w", rec.ScanArg, err)
		}
		bCur := window(g, bR, 1, n-1, n, "b[i]")
		bPrev := window(g, bR, 0, n-2, n, "b[i-1]")
		bFirst := window(g, bR, 0, 0, n, "b[P]")
		c1 = cellOp(g, op, vop, bCur, bPrev, "c") // G = op itself
		xP = cellOp(g, op, vop, bFirst, initR, "xP")

	default:
		return nil, fmt.Errorf("foriter: internal error: companion scheme on %s recurrence", rec.Kind)
	}

	// Seed injector: x_{P−1} then x_P.
	seed := g.Add(graph.OpMerge, "seed:"+rec.X)
	g.Connect(g.AddCtl("sctl:"+rec.X, graph.Pattern{Prefix: []bool{true, false}}), seed, 0)
	connectResult(g, initR, seed, 1)
	connectResult(g, xP, seed, 2)

	// Main loop: F(c_i, x_{i−2}) → padding ID → MERGE, with a gated
	// feedback of distance two.
	merge := g.Add(graph.OpMerge, "X:"+rec.X)
	g.Connect(g.AddCtl("mctl:"+rec.X, graph.Pattern{
		Prefix: []bool{false, false}, Body: []bool{true}, Repeat: n - 1,
	}), merge, 0)
	g.Connect(seed, merge, 2)

	pad := g.Add(graph.OpID, "pad:"+rec.X)
	var loopHead *graph.Node // the cell receiving the feedback
	var rigid []*graph.Arc
	if rec.Kind == KindLinear {
		mul := g.Add(graph.OpMul, "F.mul")
		add := g.Add(graph.OpAdd, "F.add")
		connectResult(g, c1, mul, 0)
		connectResult(g, c2, add, 1)
		rigid = append(rigid, g.Connect(mul, add, 0))
		rigid = append(rigid, g.Connect(add, pad, 0))
		loopHead = mul
	} else {
		op := graph.OpMin
		if rec.Kind == KindScanMax {
			op = graph.OpMax
		}
		f := g.Add(op, "F.op")
		pad2 := g.Add(graph.OpID, "pad2:"+rec.X)
		connectResult(g, c1, f, 0)
		rigid = append(rigid, g.Connect(f, pad2, 0))
		rigid = append(rigid, g.Connect(pad2, pad, 0))
		loopHead = f
	}
	rigid = append(rigid, g.Connect(pad, merge, 1))
	for _, a := range rigid {
		a.Rigid = true
	}

	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl:"+rec.X, graph.Pattern{
		Body: []bool{true}, Repeat: n - 1, Suffix: []bool{false, false},
	}), merge, gp)
	fb := g.ConnectGated(merge, gp, loopHead, 1)
	fb.Feedback = true
	fb.Marking = 2 // two circulating values (Fig 8, distance-2 recurrence)
	return merge, nil
}
