// Package foriter compiles Val for-iter array constructions into static
// dataflow instruction graphs (§7).
//
// Two mapping schemes are implemented:
//
//   - Todd's scheme [15] (Fig 7): the loop body becomes an acyclic pipeline
//     F with a feedback arc from the result MERGE back to the x_{i−1}
//     input. The feedback cycle of Example 2 has three cells carrying one
//     circulating value, so the initiation rate cannot exceed 1/3;
//   - the companion scheme (Fig 8, Theorem 3): when the recurrence
//     x_i = F(a_i, x_{i−1}) has a companion function G, the loop is
//     rewritten x_i = F(c_i, x_{i−2}) with c_i = G(a_i, a_{i−1}) computed
//     by an acyclic companion pipeline; an identity cell pads the feedback
//     cycle to four cells carrying two values — the maximum 1/2 rate.
//
// The compiler recognizes two companion-bearing recurrence families
// automatically: linear recurrences x_i = A_i·x_{i−1} + B_i (Example 2's
// family, covering running sums and products) and associative scans
// x_i = min/max(B_i, x_{i−1}).
package foriter

import (
	"fmt"

	"staticpipe/internal/val"
)

// Kind classifies the recurrence for scheme selection.
type Kind int

const (
	// KindGeneral is a recurrence with no recognized companion function
	// (or none at all); only Todd's scheme applies. The paper: "there are
	// many recurrence functions for which no companion function is known".
	KindGeneral Kind = iota
	// KindLinear is x_i = A_i·x_{i−1} + B_i.
	KindLinear
	// KindScanMin is x_i = min(B_i, x_{i−1}).
	KindScanMin
	// KindScanMax is x_i = max(B_i, x_{i−1}).
	KindScanMax
)

func (k Kind) String() string {
	switch k {
	case KindLinear:
		return "linear"
	case KindScanMin:
		return "min-scan"
	case KindScanMax:
		return "max-scan"
	default:
		return "general"
	}
}

// Rec is the extracted normal form of a primitive for-iter construct (§7
// definition): counter i = P, P+1, ..., the accumulating array X seeded
// with X := [R: Init], iter appends X[i: Val] while the continuation
// condition holds, and the loop result is X.
type Rec struct {
	Counter string
	P       int64 // first counter value
	X       string
	R       int64    // index of the seed element; must be P−1
	Init    val.Expr // E0, a primitive scalar expression
	// Val is the appended expression with let definitions inlined; it may
	// reference X[i−1] (the recurrence) and input arrays.
	Val val.Expr
	// T is the last counter value for which the iter arm runs;
	// ElseAppends reports whether the terminating arm appends one more
	// element at T+1. Q is the resulting last index.
	T           int64
	ElseAppends bool
	Q           int64

	Kind Kind
	// Linear coefficients (Kind == KindLinear): synthesized primitive
	// expressions with x_i = AExpr·x_{i−1} + BExpr. Either may be nil,
	// meaning the constant 0.
	AExpr, BExpr val.Expr
	// ScanArg (Kind == KindScanMin/Max): x_i = op(ScanArg, x_{i−1}).
	ScanArg val.Expr
}

// N returns the number of loop-computed elements (indices P..Q).
func (r *Rec) N() int { return int(r.Q - r.P + 1) }

func extErr(p val.Pos, format string, args ...any) error {
	return fmt.Errorf("foriter: %s: not a primitive for-iter construct: %s", p, fmt.Sprintf(format, args...))
}

// Extract classifies a for-iter expression against the §7 definition and
// returns its recurrence normal form.
func Extract(fi *val.ForIter, params map[string]int64) (*Rec, error) {
	rec := &Rec{}
	if len(fi.Inits) != 2 {
		return nil, extErr(fi.Pos(), "need exactly two loop variables (counter and array), got %d", len(fi.Inits))
	}
	// Identify the counter and the accumulator.
	for _, d := range fi.Inits {
		if ai, ok := d.Init.(*val.ArrayInit); ok {
			if rec.X != "" {
				return nil, extErr(d.P, "two array loop variables")
			}
			rec.X = d.Name
			r, err := val.EvalConst(ai.At, params)
			if err != nil {
				return nil, extErr(d.P, "seed index is not manifest: %v", err)
			}
			rec.R = r
			rec.Init = ai.Val
			continue
		}
		p, err := val.EvalConst(d.Init, params)
		if err != nil {
			return nil, extErr(d.P, "counter initial value is not manifest: %v", err)
		}
		if rec.Counter != "" {
			return nil, extErr(d.P, "two counter loop variables")
		}
		rec.Counter = d.Name
		rec.P = p
	}
	if rec.Counter == "" || rec.X == "" {
		return nil, extErr(fi.Pos(), "need one integer counter and one array accumulator")
	}
	if rec.R != rec.P-1 {
		return nil, extErr(fi.Pos(), "seed index %d must be counter start − 1 = %d", rec.R, rec.P-1)
	}

	// Peel optional let definitions; they are inlined into the appended
	// expression below.
	body := fi.Body
	var defs []val.Def
	if let, ok := body.(*val.Let); ok {
		defs = let.Defs
		body = let.Body
	}
	cond, ok := body.(*val.If)
	if !ok {
		return nil, extErr(body.Pos(), "loop body must be a conditional, got %T", body)
	}
	iter, ok := cond.Then.(*val.Iter)
	if !ok {
		return nil, extErr(cond.Then.Pos(), "the then arm must be the iter clause")
	}

	// Continuation condition: counter REL constant.
	t, err := lastTrue(cond.Cond, rec.Counter, params)
	if err != nil {
		return nil, err
	}
	rec.T = t
	if rec.T < rec.P {
		return nil, extErr(cond.Pos(), "loop performs no iterations (condition false at %s = %d)", rec.Counter, rec.P)
	}

	// Iter clause: X := X[i: E]; i := i + 1.
	var appendVal val.Expr
	for _, a := range iter.Assigns {
		switch a.Name {
		case rec.Counter:
			if !isIncrement(a.Val, rec.Counter) {
				return nil, extErr(a.P, "counter must advance by %s := %s + 1", rec.Counter, rec.Counter)
			}
		case rec.X:
			ap, ok := a.Val.(*val.Append)
			if !ok || ap.Array != rec.X {
				return nil, extErr(a.P, "array must accumulate by %s := %s[%s: expr]", rec.X, rec.X, rec.Counter)
			}
			if n, ok := ap.At.(*val.Name); !ok || n.Ident != rec.Counter {
				return nil, extErr(ap.At.Pos(), "append index must be the counter %s", rec.Counter)
			}
			appendVal = ap.Val
		default:
			return nil, extErr(a.P, "iter rebinds unknown variable %s", a.Name)
		}
	}
	if appendVal == nil {
		return nil, extErr(iter.Pos(), "iter clause does not append to %s", rec.X)
	}

	// Terminating arm: X, or X[i: E] with the same E.
	switch e := cond.Else.(type) {
	case *val.Name:
		if e.Ident != rec.X {
			return nil, extErr(e.Pos(), "loop result must be %s, got %s", rec.X, e.Ident)
		}
		rec.ElseAppends = false
		rec.Q = rec.T
	case *val.Append:
		if e.Array != rec.X {
			return nil, extErr(e.Pos(), "loop result must extend %s", rec.X)
		}
		if n, ok := e.At.(*val.Name); !ok || n.Ident != rec.Counter {
			return nil, extErr(e.At.Pos(), "final append index must be the counter %s", rec.Counter)
		}
		if e.Val.String() != appendVal.String() {
			return nil, extErr(e.Pos(), "final append expression %s differs from the iter arm's %s", e.Val, appendVal)
		}
		rec.ElseAppends = true
		rec.Q = rec.T + 1
	default:
		return nil, extErr(cond.Else.Pos(), "terminating arm must be %s or %s[%s: expr], got %T", rec.X, rec.X, rec.Counter, e)
	}

	// Inline the let definitions into the appended expression and analyze
	// the recurrence structure.
	inlined, err := inline(appendVal, defs)
	if err != nil {
		return nil, err
	}
	rec.Val = inlined
	if err := checkXUses(inlined, rec.X, rec.Counter, params); err != nil {
		return nil, err
	}
	rec.analyze()
	return rec, nil
}

// lastTrue interprets a continuation condition `i < K` or `i <= K` and
// returns the last counter value for which it holds.
func lastTrue(cond val.Expr, counter string, params map[string]int64) (int64, error) {
	b, ok := cond.(*val.Binary)
	if !ok {
		return 0, extErr(cond.Pos(), "continuation condition must be %s < K or %s <= K", counter, counter)
	}
	n, ok := b.L.(*val.Name)
	if !ok || n.Ident != counter {
		return 0, extErr(cond.Pos(), "continuation condition must compare the counter %s", counter)
	}
	k, err := val.EvalConst(b.R, params)
	if err != nil {
		return 0, extErr(b.R.Pos(), "loop bound is not manifest: %v", err)
	}
	switch b.Op {
	case val.OpLT:
		return k - 1, nil
	case val.OpLE:
		return k, nil
	default:
		return 0, extErr(cond.Pos(), "continuation condition must use < or <=, got %s", b.Op)
	}
}

// isIncrement recognizes i+1 and 1+i.
func isIncrement(e val.Expr, counter string) bool {
	b, ok := e.(*val.Binary)
	if !ok || b.Op != val.OpAdd {
		return false
	}
	if n, ok := b.L.(*val.Name); ok && n.Ident == counter {
		if lit, ok := b.R.(*val.IntLit); ok && lit.Val == 1 {
			return true
		}
	}
	if n, ok := b.R.(*val.Name); ok && n.Ident == counter {
		if lit, ok := b.L.(*val.IntLit); ok && lit.Val == 1 {
			return true
		}
	}
	return false
}

// checkXUses verifies every reference to the accumulating array is X[i−1]
// (the first-order recurrence form).
func checkXUses(e val.Expr, x, counter string, params map[string]int64) error {
	var walk func(val.Expr) error
	walk = func(e val.Expr) error {
		switch n := e.(type) {
		case *val.Index:
			if n.Array != x {
				return walkChildren(n, walk)
			}
			off, ok := indexOffsetOf(n.Sub, counter, params)
			if !ok || off != -1 {
				return extErr(n.Pos(), "recurrence reference must be %s[%s-1]", x, counter)
			}
			return nil
		case *val.Name:
			if n.Ident == x {
				return extErr(n.Pos(), "array %s used without a subscript", x)
			}
			return nil
		default:
			return walkChildren(e, walk)
		}
	}
	return walk(e)
}

// walkChildren applies f to e's direct subexpressions.
func walkChildren(e val.Expr, f func(val.Expr) error) error {
	switch x := e.(type) {
	case *val.Unary:
		return f(x.E)
	case *val.Binary:
		if err := f(x.L); err != nil {
			return err
		}
		return f(x.R)
	case *val.If:
		for _, sub := range []val.Expr{x.Cond, x.Then, x.Else} {
			if err := f(sub); err != nil {
				return err
			}
		}
		return nil
	case *val.Let:
		for _, d := range x.Defs {
			if err := f(d.Init); err != nil {
				return err
			}
		}
		return f(x.Body)
	case *val.Index:
		return f(x.Sub)
	default:
		return nil
	}
}

// indexOffsetOf recognizes subscripts i+c / i-c / i, returning c.
func indexOffsetOf(e val.Expr, counter string, params map[string]int64) (int64, bool) {
	switch x := e.(type) {
	case *val.Name:
		if x.Ident == counter {
			return 0, true
		}
	case *val.Binary:
		if x.Op != val.OpAdd && x.Op != val.OpSub {
			return 0, false
		}
		if n, ok := x.L.(*val.Name); ok && n.Ident == counter {
			if c, err := val.EvalConst(x.R, params); err == nil {
				if x.Op == val.OpSub {
					return -c, true
				}
				return c, true
			}
		}
		if x.Op == val.OpAdd {
			if n, ok := x.R.(*val.Name); ok && n.Ident == counter {
				if c, err := val.EvalConst(x.L, params); err == nil {
					return c, true
				}
			}
		}
	}
	return 0, false
}

// inline substitutes let definitions (in order) into e, producing a single
// expression over the loop inputs — the form the linearity analysis needs.
func inline(e val.Expr, defs []val.Def) (val.Expr, error) {
	env := map[string]val.Expr{}
	for _, d := range defs {
		sub, err := subst(d.Init, env)
		if err != nil {
			return nil, err
		}
		env[d.Name] = sub
	}
	return subst(e, env)
}

// subst replaces free names bound in env, respecting shadowing by inner
// lets.
func subst(e val.Expr, env map[string]val.Expr) (val.Expr, error) {
	if len(env) == 0 {
		return e, nil
	}
	switch x := e.(type) {
	case *val.IntLit, *val.RealLit, *val.BoolLit:
		return e, nil
	case *val.Name:
		if r, ok := env[x.Ident]; ok {
			return r, nil
		}
		return e, nil
	case *val.Unary:
		sub, err := subst(x.E, env)
		if err != nil {
			return nil, err
		}
		cp := *x
		cp.E = sub
		return &cp, nil
	case *val.Binary:
		l, err := subst(x.L, env)
		if err != nil {
			return nil, err
		}
		r, err := subst(x.R, env)
		if err != nil {
			return nil, err
		}
		cp := *x
		cp.L, cp.R = l, r
		return &cp, nil
	case *val.If:
		c, err := subst(x.Cond, env)
		if err != nil {
			return nil, err
		}
		tn, err := subst(x.Then, env)
		if err != nil {
			return nil, err
		}
		el, err := subst(x.Else, env)
		if err != nil {
			return nil, err
		}
		cp := *x
		cp.Cond, cp.Then, cp.Else = c, tn, el
		return &cp, nil
	case *val.Index:
		sub, err := subst(x.Sub, env)
		if err != nil {
			return nil, err
		}
		cp := *x
		cp.Sub = sub
		return &cp, nil
	case *val.Let:
		inner := map[string]val.Expr{}
		for k, v := range env {
			inner[k] = v
		}
		cp := *x
		cp.Defs = append([]val.Def(nil), x.Defs...)
		for i := range cp.Defs {
			sub, err := subst(cp.Defs[i].Init, inner)
			if err != nil {
				return nil, err
			}
			cp.Defs[i].Init = sub
			delete(inner, cp.Defs[i].Name) // shadowed below this point
		}
		body, err := subst(x.Body, inner)
		if err != nil {
			return nil, err
		}
		cp.Body = body
		return &cp, nil
	default:
		return nil, extErr(e.Pos(), "unsupported form %T in loop body", e)
	}
}

// analyze determines the recurrence kind and, for companion-bearing
// families, synthesizes the coefficient expressions.
func (r *Rec) analyze() {
	if !usesArray(r.Val, r.X) {
		r.Kind = KindGeneral // no self-dependence; Todd's scheme handles it
		return
	}
	// min/max scan?
	if b, ok := r.Val.(*val.Binary); ok && (b.Op == val.OpMin || b.Op == val.OpMax) {
		xl := isXRef(b.L, r.X)
		xr := isXRef(b.R, r.X)
		if xl != xr { // exactly one side is x_{i-1}
			arg := b.L
			if xl {
				arg = b.R
			}
			if !usesArray(arg, r.X) {
				if b.Op == val.OpMin {
					r.Kind = KindScanMin
				} else {
					r.Kind = KindScanMax
				}
				r.ScanArg = arg
				return
			}
		}
	}
	if l, ok := linearize(r.Val, r.X); ok {
		r.Kind = KindLinear
		r.AExpr = l.a
		r.BExpr = l.b
		return
	}
	r.Kind = KindGeneral
}

// isXRef reports whether e is exactly a reference X[...] to the
// accumulator (the offset was already validated as −1).
func isXRef(e val.Expr, x string) bool {
	ix, ok := e.(*val.Index)
	return ok && ix.Array == x
}

// usesArray reports whether e references array x anywhere.
func usesArray(e val.Expr, x string) bool {
	found := false
	var walk func(val.Expr) error
	walk = func(e val.Expr) error {
		if ix, ok := e.(*val.Index); ok && ix.Array == x {
			found = true
			return nil
		}
		return walkChildren(e, walk)
	}
	_ = walk(e)
	return found
}

// lin is a symbolic linear form a·x + b; nil fields mean the constant 0.
type lin struct {
	a, b val.Expr
}

// linearize decomposes e as a linear form in x_{i−1}. It handles +, −,
// unary −, and * and / by an x-free factor; anything else containing x
// fails.
func linearize(e val.Expr, x string) (lin, bool) {
	if isXRef(e, x) {
		return lin{a: &val.IntLit{Val: 1}}, true
	}
	if !usesArray(e, x) {
		return lin{b: e}, true
	}
	switch n := e.(type) {
	case *val.Unary:
		if n.Op != val.OpNeg {
			return lin{}, false
		}
		inner, ok := linearize(n.E, x)
		if !ok {
			return lin{}, false
		}
		return lin{a: negExpr(inner.a), b: negExpr(inner.b)}, true
	case *val.Binary:
		switch n.Op {
		case val.OpAdd, val.OpSub:
			l, ok := linearize(n.L, x)
			if !ok {
				return lin{}, false
			}
			r, ok := linearize(n.R, x)
			if !ok {
				return lin{}, false
			}
			if n.Op == val.OpSub {
				r = lin{a: negExpr(r.a), b: negExpr(r.b)}
			}
			return lin{a: addExpr(l.a, r.a), b: addExpr(l.b, r.b)}, true
		case val.OpMul:
			// exactly one factor may contain x
			lHas, rHas := usesArray(n.L, x), usesArray(n.R, x)
			switch {
			case lHas && rHas:
				return lin{}, false
			case lHas:
				inner, ok := linearize(n.L, x)
				if !ok {
					return lin{}, false
				}
				return lin{a: mulExpr(inner.a, n.R), b: mulExpr(inner.b, n.R)}, true
			default:
				inner, ok := linearize(n.R, x)
				if !ok {
					return lin{}, false
				}
				return lin{a: mulExpr(n.L, inner.a), b: mulExpr(n.L, inner.b)}, true
			}
		case val.OpDiv:
			if usesArray(n.R, x) {
				return lin{}, false
			}
			inner, ok := linearize(n.L, x)
			if !ok {
				return lin{}, false
			}
			return lin{a: divExpr(inner.a, n.R), b: divExpr(inner.b, n.R)}, true
		}
	}
	return lin{}, false
}

func negExpr(e val.Expr) val.Expr {
	if e == nil {
		return nil
	}
	return &val.Unary{Op: val.OpNeg, E: e}
}

func addExpr(l, r val.Expr) val.Expr {
	if l == nil {
		return r
	}
	if r == nil {
		return l
	}
	return &val.Binary{Op: val.OpAdd, L: l, R: r}
}

func mulExpr(l, r val.Expr) val.Expr {
	if l == nil || r == nil {
		return nil
	}
	return &val.Binary{Op: val.OpMul, L: l, R: r}
}

func divExpr(l, r val.Expr) val.Expr {
	if l == nil {
		return nil
	}
	return &val.Binary{Op: val.OpDiv, L: l, R: r}
}
