package foriter

import (
	"math"
	"strings"
	"testing"

	"staticpipe/internal/balance"
	"staticpipe/internal/exec"
	"staticpipe/internal/forall"
	"staticpipe/internal/graph"
	"staticpipe/internal/mcm"
	"staticpipe/internal/val"
	"staticpipe/internal/value"
)

// example2Src is the paper's Example 2 (§4) with the final element also
// appended by the terminating arm.
const example2Src = `
for
  i : integer := 1;
  T : array[real] := [0: 0.]
do
  let P : real := A[i]*T[i-1] + B[i]
  in
    if i < m then
      iter T := T[i: P]; i := i + 1 enditer
    else T[i: P]
    endif
  endlet
endfor`

func parseForIter(t *testing.T, src string) *val.ForIter {
	t.Helper()
	e, err := val.ParseExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	fi, ok := e.(*val.ForIter)
	if !ok {
		t.Fatalf("parsed %T, want *val.ForIter", e)
	}
	return fi
}

// runLoop compiles and simulates a for-iter over the given real arrays.
func runLoop(t *testing.T, src string, params map[string]int64,
	ins map[string]struct {
		lo   int64
		vals []float64
	}, opts Options) (*exec.Result, *Out, *graph.Graph) {
	t.Helper()
	fi := parseForIter(t, src)
	g := graph.New()
	arrays := map[string]forall.Input{}
	for name, in := range ins {
		srcN := g.AddSource(name, value.Reals(in.vals))
		arrays[name] = forall.Input{Node: srcN, Lo: in.lo, Hi: in.lo + int64(len(in.vals)) - 1}
	}
	out, err := Compile(g, fi, params, arrays, opts)
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(out.Node, g.AddSink("out"), 0)
	// Drain any array the loop did not reference.
	for _, n := range g.Nodes() {
		if n.Op == graph.OpSource && len(n.Out) == 0 {
			g.Connect(n, g.AddSink("discard:"+n.Label), 0)
		}
	}
	if _, err := balance.Balance(g); err != nil {
		t.Fatalf("balance: %v", err)
	}
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res, out, g
}

func example2Inputs(m int) (map[string]struct {
	lo   int64
	vals []float64
}, []float64) {
	A := make([]float64, m)
	B := make([]float64, m)
	for i := range A {
		A[i] = 0.3 + 0.6*math.Sin(float64(i))
		B[i] = float64(i%5) - 2.2
	}
	// reference: x_0 = 0; x_i = A_i x_{i-1} + B_i for i = 1..m
	want := make([]float64, m+1)
	for i := 1; i <= m; i++ {
		want[i] = A[i-1]*want[i-1] + B[i-1]
	}
	return map[string]struct {
		lo   int64
		vals []float64
	}{
		"A": {1, A},
		"B": {1, B},
	}, want
}

func checkValues(t *testing.T, got []value.Value, want []float64, tol float64, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d values, want %d", label, len(got), len(want))
	}
	for i := range want {
		if !value.Close(got[i], value.R(want[i]), tol) {
			t.Errorf("%s: x[%d] = %v, want %v", label, i, got[i], want[i])
		}
	}
}

// TestExample2Todd reproduces Fig 7: correct results at an initiation
// interval of exactly 3 (the paper's "initialization rate ... no higher
// than 1/3").
func TestExample2Todd(t *testing.T) {
	m := 24
	ins, want := example2Inputs(m)
	res, out, g := runLoop(t, example2Src, map[string]int64{"m": int64(m)}, ins, Options{Scheme: Todd})
	if out.Used != Todd {
		t.Fatalf("scheme used: %v", out.Used)
	}
	if out.Lo != 0 || out.Hi != int64(m) {
		t.Errorf("output range [%d, %d], want [0, %d]", out.Lo, out.Hi, m)
	}
	checkValues(t, res.Output("out"), want, 0, "Todd")
	if ii := res.II("out"); ii != 3 {
		t.Errorf("Todd II = %v, want 3", ii)
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
	// The analytical bound agrees.
	pred, err := mcm.PredictII(g)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Float() != 3 {
		t.Errorf("predicted II = %v, want 3", pred)
	}
}

// TestExample2Companion reproduces Fig 8 / Theorem 3: the companion
// pipeline restores the maximum rate II = 2.
func TestExample2Companion(t *testing.T) {
	m := 24
	ins, want := example2Inputs(m)
	res, out, g := runLoop(t, example2Src, map[string]int64{"m": int64(m)}, ins, Options{Scheme: Companion})
	if out.Used != Companion {
		t.Fatalf("scheme used: %v", out.Used)
	}
	if out.Rec.Kind != KindLinear {
		t.Fatalf("kind = %v, want linear", out.Rec.Kind)
	}
	// Reassociated products: compare within tolerance.
	checkValues(t, res.Output("out"), want, 1e-9, "Companion")
	if ii := res.II("out"); ii != 2 {
		t.Errorf("Companion II = %v, want 2 (Theorem 3)", ii)
	}
	if !res.Clean {
		t.Errorf("not clean: %v", res.Stalled)
	}
	pred, err := mcm.PredictII(g)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Float() != 2 {
		t.Errorf("predicted II = %v, want 2", pred)
	}
}

// TestAutoSelectsCompanion checks Auto picks the fully pipelined scheme
// for Example 2 and that the speedup over Todd is the paper's 1.5×.
func TestAutoSelectsCompanion(t *testing.T) {
	m := 48
	ins, _ := example2Inputs(m)
	params := map[string]int64{"m": int64(m)}
	auto, out, _ := runLoop(t, example2Src, params, ins, Options{})
	if out.Used != Companion {
		t.Fatalf("auto chose %v", out.Used)
	}
	todd, _, _ := runLoop(t, example2Src, params, ins, Options{Scheme: Todd})
	speedup := todd.II("out") / auto.II("out")
	if speedup != 1.5 {
		t.Errorf("speedup = %v, want 1.5 (II 3 vs 2)", speedup)
	}
}

// TestElseWithoutAppend covers the paper's literal Example 2 shape where
// the terminating arm returns T unchanged.
func TestElseWithoutAppend(t *testing.T) {
	src := `
for i : integer := 1; T : array[real] := [0: 0.]
do
  if i < m then iter T := T[i: A[i]*T[i-1] + B[i]]; i := i + 1 enditer
  else T endif
endfor`
	m := 12
	ins, want := example2Inputs(m)
	for _, scheme := range []Scheme{Todd, Companion} {
		res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{Scheme: scheme})
		if out.Rec.ElseAppends {
			t.Error("ElseAppends should be false")
		}
		if out.Hi != int64(m-1) {
			t.Errorf("Hi = %d, want %d", out.Hi, m-1)
		}
		checkValues(t, res.Output("out"), want[:m], 1e-9, scheme.String())
	}
}

// TestSumScan exercises the linear family with A ≡ 1 (running sum).
func TestSumScan(t *testing.T) {
	src := `
for i : integer := 1; S : array[real] := [0: 0.]
do
  if i <= m then iter S := S[i: S[i-1] + B[i]]; i := i + 1 enditer
  else S endif
endfor`
	m := 16
	B := make([]float64, m)
	want := make([]float64, m+1)
	for i := range B {
		B[i] = float64(i) + 0.5
		want[i+1] = want[i] + B[i]
	}
	ins := map[string]struct {
		lo   int64
		vals []float64
	}{"B": {1, B}}
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Used != Companion || out.Rec.Kind != KindLinear {
		t.Fatalf("used %v on %v recurrence", out.Used, out.Rec.Kind)
	}
	checkValues(t, res.Output("out"), want, 1e-9, "sum scan")
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

// TestMinScan exercises the min companion (G = min).
func TestMinScan(t *testing.T) {
	src := `
for i : integer := 1; M : array[real] := [0: 100.]
do
  if i <= m then iter M := M[i: min(B[i], M[i-1])]; i := i + 1 enditer
  else M endif
endfor`
	m := 20
	B := []float64{5, 3, 8, 2, 9, 4, 7, 1, 6, 5, 5, 5, 0.5, 3, 2, 2, 2, 2, 9, -1}
	want := make([]float64, m+1)
	want[0] = 100
	for i := 1; i <= m; i++ {
		want[i] = math.Min(B[i-1], want[i-1])
	}
	ins := map[string]struct {
		lo   int64
		vals []float64
	}{"B": {1, B}}
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Used != Companion || out.Rec.Kind != KindScanMin {
		t.Fatalf("used %v on %v recurrence", out.Used, out.Rec.Kind)
	}
	checkValues(t, res.Output("out"), want, 0, "min scan")
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

// TestGeneralRecurrenceFallsBack covers recurrences without a known
// companion: Auto uses Todd; requesting Companion errors.
func TestGeneralRecurrenceFallsBack(t *testing.T) {
	src := `
for i : integer := 1; X : array[real] := [0: 1.]
do
  if i <= m then iter X := X[i: B[i] / (X[i-1] + A[i])]; i := i + 1 enditer
  else X endif
endfor`
	m := 10
	ins, _ := example2Inputs(m)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Used != Todd || out.Rec.Kind != KindGeneral {
		t.Fatalf("used %v on %v", out.Used, out.Rec.Kind)
	}
	A, B := ins["A"].vals, ins["B"].vals
	want := make([]float64, m+1)
	want[0] = 1
	for i := 1; i <= m; i++ {
		want[i] = B[i-1] / (want[i-1] + A[i-1])
	}
	checkValues(t, res.Output("out"), want, 1e-12, "general")
	// Division makes the Todd cycle longer: DIV + ADD + MERGE = 3 cells.
	if ii := res.II("out"); ii != 3 {
		t.Errorf("II = %v, want 3", ii)
	}

	fi := parseForIter(t, src)
	g := graph.New()
	arrays := map[string]forall.Input{}
	for name, in := range ins {
		arrays[name] = forall.Input{Node: g.AddSource(name, value.Reals(in.vals)), Lo: in.lo, Hi: in.lo + int64(len(in.vals)) - 1}
	}
	if _, err := Compile(g, fi, map[string]int64{"m": int64(m)}, arrays, Options{Scheme: Companion}); err == nil {
		t.Error("companion scheme accepted a recurrence without a companion function")
	}
}

// TestNoSelfDependence covers loops that build an array without consuming
// it — no cycle at all.
func TestNoSelfDependence(t *testing.T) {
	src := `
for i : integer := 1; X : array[real] := [0: 0.]
do
  if i <= m then iter X := X[i: A[i] * 2.]; i := i + 1 enditer
  else X endif
endfor`
	m := 8
	ins, _ := example2Inputs(m)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Rec.Kind != KindGeneral {
		t.Fatalf("kind %v", out.Rec.Kind)
	}
	want := make([]float64, m+1)
	for i := 1; i <= m; i++ {
		want[i] = ins["A"].vals[i-1] * 2
	}
	checkValues(t, res.Output("out"), want, 0, "independent")
	// With no feedback the merge just sequences; the paper's maximum rate
	// applies.
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

func TestExtract(t *testing.T) {
	fi := parseForIter(t, example2Src)
	rec, err := Extract(fi, map[string]int64{"m": 10})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counter != "i" || rec.X != "T" || rec.P != 1 || rec.R != 0 {
		t.Errorf("extracted %+v", rec)
	}
	if rec.T != 9 || !rec.ElseAppends || rec.Q != 10 {
		t.Errorf("bounds: T=%d ElseAppends=%v Q=%d", rec.T, rec.ElseAppends, rec.Q)
	}
	if rec.Kind != KindLinear {
		t.Fatalf("kind %v", rec.Kind)
	}
	if rec.AExpr == nil || !strings.Contains(rec.AExpr.String(), "A[i]") {
		t.Errorf("AExpr = %v", rec.AExpr)
	}
	if rec.BExpr == nil || !strings.Contains(rec.BExpr.String(), "B[i]") {
		t.Errorf("BExpr = %v", rec.BExpr)
	}
	if rec.N() != 10 {
		t.Errorf("N = %d", rec.N())
	}
}

func TestExtractErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"one var", `for i : integer := 0 do if i < 3 then iter i := i+1 enditer else [0: 1.] endif endfor`, "two loop variables"},
		{"bad seed index", `for i : integer := 1; T : array[real] := [5: 0.] do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor`, "seed index"},
		{"nonmanifest bound", `for i : integer := 1; T : array[real] := [0: 0.] do if i < k then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor`, "not manifest"},
		{"bad step", `for i : integer := 1; T : array[real] := [0: 0.] do if i < 3 then iter T := T[i: 1.]; i := i+2 enditer else T endif endfor`, "advance"},
		{"bad append index", `for i : integer := 1; T : array[real] := [0: 0.] do if i < 3 then iter T := T[i+1: 1.]; i := i+1 enditer else T endif endfor`, "append index"},
		{"iter in else", `for i : integer := 1; T : array[real] := [0: 0.] do if i < 3 then T else iter T := T[i: 1.]; i := i+1 enditer endif endfor`, "then arm"},
		{"wrong result", `for i : integer := 1; T : array[real] := [0: 0.]; do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else i endif endfor`, ""},
		{"x offset", `for i : integer := 1; T : array[real] := [0: 0.] do if i < 3 then iter T := T[i: T[i-2] + 1.]; i := i+1 enditer else T endif endfor`, "T[i-1]"},
		{"no iterations", `for i : integer := 5; T : array[real] := [4: 0.] do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor`, "no iterations"},
		{"mismatched final", `for i : integer := 1; T : array[real] := [0: 0.] do if i < 3 then iter T := T[i: 1.]; i := i+1 enditer else T[i: 2.] endif endfor`, "differs"},
		{"body not if", `for i : integer := 1; T : array[real] := [0: 0.] do 1. endfor`, "conditional"},
		{"ge cond", `for i : integer := 1; T : array[real] := [0: 0.] do if i > 3 then iter T := T[i: 1.]; i := i+1 enditer else T endif endfor`, "< or <="},
	}
	for _, c := range cases {
		fi := parseForIter(t, c.src)
		_, err := Extract(fi, nil)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if c.want != "" && !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestKindDetection(t *testing.T) {
	cases := []struct {
		body string
		want Kind
	}{
		{"T[i-1] + B[i]", KindLinear},
		{"A[i]*T[i-1] + B[i]", KindLinear},
		{"A[i]*T[i-1]", KindLinear},
		{"-T[i-1]", KindLinear},
		{"(T[i-1] + B[i]) / 2.", KindLinear},
		{"B[i] - T[i-1]*A[i]", KindLinear},
		{"min(B[i], T[i-1])", KindScanMin},
		{"max(T[i-1], B[i])", KindScanMax},
		{"T[i-1] * T[i-1]", KindGeneral},
		{"B[i] / T[i-1]", KindGeneral},
		{"min(T[i-1], T[i-1])", KindGeneral},
		{"abs(T[i-1])", KindGeneral},
		{"B[i]", KindGeneral},
	}
	for _, c := range cases {
		src := `for i : integer := 1; T : array[real] := [0: 1.]
		  do if i < 5 then iter T := T[i: ` + c.body + `]; i := i+1 enditer else T endif endfor`
		fi := parseForIter(t, src)
		rec, err := Extract(fi, nil)
		if err != nil {
			t.Fatalf("%s: %v", c.body, err)
		}
		if rec.Kind != c.want {
			t.Errorf("%s: kind %v, want %v", c.body, rec.Kind, c.want)
		}
	}
}

func TestLetDefsInlined(t *testing.T) {
	// Definitions referencing each other inline transitively.
	src := `
for i : integer := 1; T : array[real] := [0: 0.]
do
  let u : real := A[i] * 2.; P : real := u * T[i-1] + B[i]
  in if i <= m then iter T := T[i: P]; i := i+1 enditer else T endif
  endlet
endfor`
	m := 10
	ins, _ := example2Inputs(m)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Rec.Kind != KindLinear || out.Used != Companion {
		t.Fatalf("kind %v used %v", out.Rec.Kind, out.Used)
	}
	A, B := ins["A"].vals, ins["B"].vals
	want := make([]float64, m+1)
	for i := 1; i <= m; i++ {
		want[i] = A[i-1]*2*want[i-1] + B[i-1]
	}
	checkValues(t, res.Output("out"), want, 1e-9, "let defs")
}

func TestSchemeString(t *testing.T) {
	if Todd.String() != "todd" || Companion.String() != "companion" || Auto.String() != "auto" {
		t.Error("scheme strings")
	}
	if KindLinear.String() != "linear" || KindGeneral.String() != "general" ||
		KindScanMin.String() != "min-scan" || KindScanMax.String() != "max-scan" {
		t.Error("kind strings")
	}
}

// TestToddComplexBody exercises Todd's scheme on a loop body with
// conditionals, unary operators, and shadowed definitions — the general
// case where no companion is recognized.
func TestToddComplexBody(t *testing.T) {
	src := `
for i : integer := 1; X : array[real] := [0: 0.5]
do
  let u : real := A[i] - B[i];
      u : real := -u
  in if i <= m then
       iter X := X[i: if u > 0. then abs(X[i-1]) * u else X[i-1] - u endif]; i := i + 1 enditer
     else X endif
  endlet
endfor`
	m := 14
	ins, _ := example2Inputs(m)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Used != Todd || out.Rec.Kind != KindGeneral {
		t.Fatalf("used %v kind %v", out.Used, out.Rec.Kind)
	}
	A, B := ins["A"].vals, ins["B"].vals
	want := make([]float64, m+1)
	want[0] = 0.5
	for i := 1; i <= m; i++ {
		u := -(A[i-1] - B[i-1])
		if u > 0 {
			want[i] = math.Abs(want[i-1]) * u
		} else {
			want[i] = want[i-1] - u
		}
	}
	checkValues(t, res.Output("out"), want, 1e-12, "complex body")
}

// TestCompanionCoefficientsWithOffsets uses shifted array references in
// the coefficients (covers subscript normal forms c+i, i+c, i-c).
func TestCompanionCoefficientsWithOffsets(t *testing.T) {
	src := `
for i : integer := 2; X : array[real] := [1: 0.]
do
  if i < m then
    iter X := X[i: A[i-1]*X[i-1] + B[1+i]]; i := i + 1 enditer
  else X[i: A[i-1]*X[i-1] + B[1+i]] endif
endfor`
	m := 12
	ins, _ := example2Inputs(m + 2)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Used != Companion || out.Rec.Kind != KindLinear {
		t.Fatalf("used %v kind %v", out.Used, out.Rec.Kind)
	}
	A, B := ins["A"].vals, ins["B"].vals // declared over [1, m+2]
	// X has range [1, m]: x_1 = 0 (seed), x_i = A[i-1]·x_{i-1} + B[i+1]
	// for i = 2..m (the else arm appends the final element at i = m).
	want := make([]float64, m) // want[k] = x_{k+1}
	for i := 2; i <= m; i++ {
		want[i-1] = A[i-2]*want[i-2] + B[i] // A[i-1] -> vals[i-2], B[1+i] -> vals[i]
	}
	checkValues(t, res.Output("out"), want, 1e-9, "offset coefficients")
	if ii := res.II("out"); ii != 2 {
		t.Errorf("II = %v, want 2", ii)
	}
}

// TestMaxScanWithExpression covers the max-scan companion with a computed
// argument.
func TestMaxScanWithExpression(t *testing.T) {
	src := `
for i : integer := 1; M : array[real] := [0: -10.]
do
  if i <= m then iter M := M[i: max(M[i-1], A[i] * B[i])]; i := i + 1 enditer
  else M endif
endfor`
	m := 18
	ins, _ := example2Inputs(m)
	res, out, _ := runLoop(t, src, map[string]int64{"m": int64(m)}, ins, Options{})
	if out.Rec.Kind != KindScanMax || out.Used != Companion {
		t.Fatalf("kind %v used %v", out.Rec.Kind, out.Used)
	}
	A, B := ins["A"].vals, ins["B"].vals
	want := make([]float64, m+1)
	want[0] = -10
	for i := 1; i <= m; i++ {
		want[i] = math.Max(want[i-1], A[i-1]*B[i-1])
	}
	checkValues(t, res.Output("out"), want, 0, "max scan expr")
}
