package foriter

import (
	"fmt"

	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// InterleavedLinear builds the §9 delay-for-rate construction: R
// independent linear recurrences
//
//	x_i^r = a_i^r · x_{i−1}^r + b_i^r,   r = 0..R−1, i = 1..n
//
// evaluated by ONE set of loop cells, with the R rows' tokens interleaved
// round-robin through the feedback cycle. The cycle is Todd's three cells
// (MULT, ADD, MERGE) extended by a FIFO of 2R−3 stages, so it holds R
// circulating values over a length-2R cycle — the maximum rate of one
// result per two cycles. The paper's closing remark describes exactly this
// tradeoff: "a recurrence having a cyclic dependence ... may be implemented
// at the maximum rate by introducing a delay (via a FIFO buffer)", paying
// latency (each row advances once per 2R cycles) for full throughput.
//
// aNode and bNode must emit the parameters row-interleaved: stream position
// (i−1)·R + r carries (a_i^r, b_i^r). inits supplies x_0^r per row. The
// returned node emits all x values interleaved the same way, x_0 rows
// first: position i·R + r carries x_i^r, for i = 0..n.
func InterleavedLinear(g *graph.Graph, label string, rows, n int,
	aNode, bNode *graph.Node, inits []value.Value) (*graph.Node, error) {
	if rows < 2 {
		return nil, fmt.Errorf("foriter: interleaving needs at least 2 rows (one row is Todd's scheme)")
	}
	if len(inits) != rows {
		return nil, fmt.Errorf("foriter: %d initial values for %d rows", len(inits), rows)
	}
	if n < 1 {
		return nil, fmt.Errorf("foriter: need at least one step")
	}
	total := rows * n

	merge := g.Add(graph.OpMerge, "X:"+label)
	g.Connect(g.AddCtl("mctl:"+label, graph.Pattern{
		Prefix: falses(rows), Body: []bool{true}, Repeat: total,
	}), merge, 0)
	g.Connect(g.AddSource("seed:"+label, inits), merge, 2)

	mul := g.Add(graph.OpMul, "F.mul:"+label)
	add := g.Add(graph.OpAdd, "F.add:"+label)
	g.Connect(aNode, mul, 0)
	g.Connect(bNode, add, 1)
	g.Connect(mul, add, 0).Rigid = true
	g.Connect(add, merge, 1).Rigid = true

	// Feedback through the rate-restoring FIFO: with 2R−3 buffer stages
	// the cycle spans 2R cells and carries R values.
	gp := g.AddGate(merge)
	g.Connect(g.AddCtl("fbctl:"+label, graph.Pattern{
		Body: []bool{true}, Repeat: total, Suffix: falses(rows),
	}), merge, gp)
	fifo := g.AddFIFO("delay:"+label, 2*rows-3)
	fb := g.ConnectGated(merge, gp, fifo, 0)
	fb.Feedback = true
	fb.Marking = rows
	g.Connect(fifo, mul, 1)
	return merge, nil
}

func falses(n int) []bool { return make([]bool, n) }
