package foriter

import (
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/mcm"
	"staticpipe/internal/recurrence"
	"staticpipe/internal/value"
)

// runInterleaved builds and simulates R interleaved rows of n steps each.
func runInterleaved(t *testing.T, rows, n int) (*exec.Result, [][]float64) {
	t.Helper()
	params := make([][]recurrence.Param, rows)
	inits := make([]value.Value, rows)
	for r := range params {
		params[r] = make([]recurrence.Param, n)
		for i := range params[r] {
			params[r][i] = recurrence.Param{
				A: 0.5 + float64((i+r)%3)/4,
				B: float64(i%4) - 1.5 + float64(r)/8,
			}
		}
		inits[r] = value.R(float64(r))
	}
	// Interleave the parameter streams.
	a := make([]value.Value, 0, rows*n)
	b := make([]value.Value, 0, rows*n)
	for i := 0; i < n; i++ {
		for r := 0; r < rows; r++ {
			a = append(a, value.R(params[r][i].A))
			b = append(b, value.R(params[r][i].B))
		}
	}
	g := graph.New()
	aN := g.AddSource("a", a)
	bN := g.AddSource("b", b)
	out, err := InterleavedLinear(g, "x", rows, n, aN, bN, inits)
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(out, g.AddSink("x"), 0)
	res, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]float64, rows)
	for r := range want {
		want[r] = recurrence.Sequential(inits[r].AsReal(), params[r])
	}
	return res, want
}

// TestInterleavedCorrect validates the §9 construction row by row.
func TestInterleavedCorrect(t *testing.T) {
	for _, rows := range []int{2, 3, 4, 8} {
		n := 16
		res, want := runInterleaved(t, rows, n)
		got := res.Output("x")
		if len(got) != rows*(n+1) {
			t.Fatalf("rows=%d: %d outputs, want %d", rows, len(got), rows*(n+1))
		}
		for i := 0; i <= n; i++ {
			for r := 0; r < rows; r++ {
				g := got[i*rows+r].AsReal()
				if !value.Close(value.R(g), value.R(want[r][i]), 1e-9) {
					t.Errorf("rows=%d: x_%d^%d = %v, want %v", rows, i, r, g, want[r][i])
				}
			}
		}
		if !res.Clean {
			t.Errorf("rows=%d: not clean: %v", rows, res.Stalled)
		}
	}
}

// TestInterleavedMaxRate is the §9 claim: the FIFO-extended loop sustains
// the maximum rate (II = 2 per element) where the plain Todd loop runs at
// II = 3 — trading per-row latency for aggregate throughput.
func TestInterleavedMaxRate(t *testing.T) {
	for _, rows := range []int{2, 4, 8} {
		res, _ := runInterleaved(t, rows, 32)
		if ii := res.II("x"); ii != 2 {
			t.Errorf("rows=%d: II = %v, want 2", rows, ii)
		}
	}
}

func TestInterleavedPrediction(t *testing.T) {
	rows, n := 4, 8
	g := graph.New()
	a := make([]value.Value, rows*n)
	b := make([]value.Value, rows*n)
	for i := range a {
		a[i] = value.R(0.5)
		b[i] = value.R(1)
	}
	aN := g.AddSource("a", a)
	bN := g.AddSource("b", b)
	out, err := InterleavedLinear(g, "x", rows, n, aN, bN,
		value.Reals(make([]float64, rows)))
	if err != nil {
		t.Fatal(err)
	}
	g.Connect(out, g.AddSink("x"), 0)
	pred, err := mcm.PredictII(g)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Float() != 2 {
		t.Errorf("predicted II = %v, want 2", pred)
	}
}

func TestInterleavedErrors(t *testing.T) {
	g := graph.New()
	src := g.AddSource("a", value.Reals([]float64{1}))
	if _, err := InterleavedLinear(g, "x", 1, 4, src, src, value.Reals([]float64{0})); err == nil {
		t.Error("rows=1 accepted")
	}
	if _, err := InterleavedLinear(g, "x", 2, 4, src, src, value.Reals([]float64{0})); err == nil {
		t.Error("wrong init count accepted")
	}
	if _, err := InterleavedLinear(g, "x", 2, 0, src, src, value.Reals([]float64{0, 0})); err == nil {
		t.Error("zero steps accepted")
	}
}
