package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"staticpipe/internal/obs"
	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
)

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the stream to EOF and returns every event in arrival
// order. A canceled job's done event carries a multi-megabyte partial
// result in one data: line, so the scanner buffer must grow well past
// bufio's default.
func readSSE(t *testing.T, body io.Reader) []sseEvent {
	t.Helper()
	var events []sseEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 1<<20), 1<<28)
	cur := sseEvent{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.name != "":
			events = append(events, cur)
			cur = sseEvent{}
		}
	}
	if err := sc.Err(); err != nil {
		t.Errorf("reading stream: %v", err)
	}
	return events
}

// TestSSEOrderingAndTerminalOnce pins the stream contract end to end: every
// progress event precedes the terminal event, exactly one done event is
// sent, it is the final event, and the server closes the stream after it.
func TestSSEOrderingAndTerminalOnce(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: -1, StreamInterval: 2 * time.Millisecond})
	resp, view := postJob(t, ts, spec(progs.Fig2(1<<14)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/jobs/" + strconv.FormatInt(view.ID, 10) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	// Reading to EOF proves the server tears the stream down after done.
	events := readSSE(t, r.Body)
	if len(events) == 0 {
		t.Fatal("empty stream")
	}
	var dones int
	for i, e := range events {
		switch e.name {
		case "progress":
			if dones > 0 {
				t.Fatalf("progress event at %d after done", i)
			}
		case "done":
			dones++
		default:
			t.Fatalf("unknown event %q", e.name)
		}
	}
	if dones != 1 {
		t.Fatalf("done events = %d, want exactly 1", dones)
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("final event = %q, want done", last.name)
	}
	var final JobView
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatalf("done payload: %v", err)
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("done view: %+v", final)
	}
}

// TestSSECancelMidJobTearsDown cancels a running job under an open stream:
// the client still gets exactly one done event (state canceled) and EOF,
// not a hung connection.
func TestSSECancelMidJobTearsDown(t *testing.T) {
	svc, ts := newHTTPService(t, Config{OffloadThreshold: -1, StreamInterval: 2 * time.Millisecond})
	resp, view := postJob(t, ts, spec(progs.Fig2(1<<18)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/jobs/" + strconv.FormatInt(view.ID, 10) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()

	// Wait until it is actually running, then cancel through the API.
	j := svc.Get(view.ID)
	deadline := time.Now().Add(10 * time.Second)
	for j.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+strconv.FormatInt(view.ID, 10), nil)
	cr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cr.Body.Close()

	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, r.Body) }()
	var events []sseEvent
	select {
	case events = <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not tear down after cancellation")
	}
	var dones int
	var final JobView
	for _, e := range events {
		if e.name == "done" {
			dones++
			if err := json.Unmarshal([]byte(e.data), &final); err != nil {
				t.Fatalf("done payload: %v", err)
			}
		}
	}
	if dones != 1 {
		t.Fatalf("done events = %d, want exactly 1", dones)
	}
	if final.State != StateCanceled {
		t.Fatalf("final state = %s, want canceled", final.State)
	}
}

// TestHTTPSpanEndpoint reads GET /jobs/{id}/span in both formats.
func TestHTTPSpanEndpoint(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: 1 << 40})
	resp, view := postJob(t, ts, spec(progs.Fig2(64)))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	r, err := http.Get(ts.URL + "/jobs/" + strconv.FormatInt(view.ID, 10) + "/span")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := httpGetBody(r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("span status %d: %s", r.StatusCode, b)
	}
	var snap obs.SpanJSON
	if err := json.Unmarshal(b, &snap); err != nil {
		t.Fatalf("span payload: %v\n%s", err, b)
	}
	if snap.Kind != obs.KindJob || snap.Find(obs.KindRun) == nil {
		t.Fatalf("span tree = %+v", snap)
	}
	// Chrome export parses as a trace-event array.
	r, err = http.Get(ts.URL + "/jobs/" + strconv.FormatInt(view.ID, 10) + "/span?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = httpGetBody(r)
	var arr []map[string]any
	if err := json.Unmarshal(b, &arr); err != nil || len(arr) == 0 {
		t.Fatalf("chrome payload: %v\n%s", err, b)
	}
}

// TestMetricsExpositionLints scrapes the full combined /metrics endpoint —
// registry, serve, and SLO families — with a laden service and checks it
// passes the Prometheus text-format linter, mirroring the ci.sh gate.
func TestMetricsExpositionLints(t *testing.T) {
	_, ts := newHTTPService(t, Config{
		OffloadThreshold: 1 << 40,
		Flight:           obs.NewFlight(0, 0, 0),
		SLO:              DefaultSLOs(),
	})
	for i := 0; i < 3; i++ {
		postJob(t, ts, spec(progs.Fig2(64)))
	}
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if probs := telemetry.LintExposition(r.Body); len(probs) != 0 {
		t.Fatalf("/metrics fails exposition lint:\n%s", strings.Join(probs, "\n"))
	}
}

// TestHTTPFlightEndpoint reads /debug/flight on the combined mux.
func TestHTTPFlightEndpoint(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: 1 << 40, Flight: obs.NewFlight(0, 0, 0)})
	postJob(t, ts, spec(progs.Fig2(64)))
	r, err := http.Get(ts.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := httpGetBody(r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("flight status %d", r.StatusCode)
	}
	var d obs.Dump
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatalf("flight payload: %v\n%s", err, b)
	}
	if len(d.Spans) != 1 || len(d.Admissions) != 1 {
		t.Fatalf("flight dump = %d spans, %d admissions", len(d.Spans), len(d.Admissions))
	}
}
