package serve

import (
	"testing"
	"time"

	"staticpipe/internal/core"
	"staticpipe/internal/progs"
	"staticpipe/internal/value"
)

// TestEstimateCostCountsLaneInputs pins the admission cost model against
// batched jobs whose per-lane rebinds carry the real work: drain time is
// governed by the longest stream any lane pushes through the pipeline, so
// lane overrides must fold into maxLen. Before the fix only spec.Inputs
// were sized and a long-lane batch was billed as a short job — and routed
// to the inline fast path instead of the offload queue.
func TestEstimateCostCountsLaneInputs(t *testing.T) {
	p := progs.Fig2(8)
	u, err := core.Compile(p.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var name string
	for k := range p.Inputs {
		name = k
		break
	}

	base := spec(p)
	base.Batch = 2
	short, cells := estimateCost(u.Artifact(), base)

	const laneLen = 4096
	long := base
	long.LaneInputs = []map[string]Stream{nil, {name: value.Reals(make([]float64, laneLen))}}
	got, _ := estimateCost(u.Artifact(), long)

	want := cells * (2*laneLen + 2*cells + 16) * (2 + 3) / 4
	if got != want {
		t.Fatalf("long-lane cost = %d, want %d (maxLen must include lane inputs)", got, want)
	}
	if got <= short {
		t.Fatalf("long-lane cost %d not above base cost %d", got, short)
	}
	// The fast/offload split must see the difference: for any threshold
	// between the two estimates, the short batch runs inline while the
	// long-lane batch offloads. Under the old model both compared equal.
	thr := (short + got) / 2
	if short > thr {
		t.Fatalf("short batch (cost %d) would offload at threshold %d", short, thr)
	}
	if got <= thr {
		t.Fatalf("long-lane batch (cost %d) would run inline at threshold %d", got, thr)
	}
}

// TestBucketRetryAfterBounded pins take's failure hint: a zero, negative,
// or vanishingly small refill rate used to push (1-tokens)/rate to +Inf,
// whose int conversion produced a garbage Retry-After header.
func TestBucketRetryAfterBounded(t *testing.T) {
	now := time.Now()
	for _, rate := range []float64{0, -1, 1e-12} {
		b := &bucket{tokens: 0, last: now}
		ok, retry := b.take(now, rate, 4)
		if ok {
			t.Fatalf("rate %g: empty bucket granted a token", rate)
		}
		if retry <= 0 || retry > maxRetryAfter {
			t.Fatalf("rate %g: retryAfter = %d, want (0, %d]", rate, retry, maxRetryAfter)
		}
	}
	// A sane rate still reports the real wait.
	b := &bucket{tokens: 0, last: now}
	if ok, retry := b.take(now, 0.5, 4); ok || retry != 2 {
		t.Fatalf("rate 0.5: ok=%v retryAfter=%d, want refusal after 2s", ok, retry)
	}
}

// TestNegativeTenantRateDisablesThrottling pins the config clamp: a
// negative rate means "disabled", identical to zero, rather than a bucket
// that never refills.
func TestNegativeTenantRateDisablesThrottling(t *testing.T) {
	s := newService(t, Config{TenantRate: -3, OffloadThreshold: 1 << 40})
	if s.cfg.TenantRate != 0 {
		t.Fatalf("TenantRate = %g after defaults, want 0", s.cfg.TenantRate)
	}
	p := progs.Fig2(8)
	for i := 0; i < 3; i++ {
		j, rej := s.Submit(nil, spec(p))
		if rej != nil {
			t.Fatalf("submit %d rejected: %v", i, rej)
		}
		await(t, j, 5*time.Second)
	}
}
