// Package serve is the multi-tenant simulation-as-a-service layer: a job
// model, an admission controller with a fast-path/offload split, a bounded
// worker pool driving the sharded simulation engines, per-tenant quotas,
// and a bounded result store. cmd/dfserve mounts it over HTTP next to the
// telemetry surface.
package serve

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"staticpipe/internal/artifact"
	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/machine"
	"staticpipe/internal/obs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/value"
)

// Simulator models a job can request.
const (
	ModelExec    = "exec"    // firing-rule simulator (internal/exec)
	ModelMachine = "machine" // packet-level machine simulator (internal/machine)
)

// Admission paths.
const (
	PathFast    = "fast"    // ran inline on the submit call
	PathOffload = "offload" // queued to the worker pool
)

// Config sizes the service. The zero value of each field picks the listed
// default.
type Config struct {
	// PoolWorkers is the worker-pool size for offloaded jobs (default
	// GOMAXPROCS).
	PoolWorkers int
	// QueueDepth bounds the offload queue; a full queue rejects with 429
	// (default 256).
	QueueDepth int
	// OffloadThreshold splits admission: jobs whose estimated cost
	// (cells × estimated cycles) is at or below it run inline on the
	// submitting goroutine, larger ones queue (default 1<<20). Zero keeps
	// the default; negative offloads everything.
	OffloadThreshold int64
	// SimWorkers drives offloaded jobs with the sharded parallel engine
	// (core.Options.Workers); 0 runs them sequentially. Results are
	// byte-identical either way.
	SimWorkers int
	// TenantRate is the per-tenant admission rate in jobs/second; zero or
	// negative disables throttling. TenantBurst is the token-bucket burst
	// (default 16).
	TenantRate  float64
	TenantBurst int
	// KeepFinished bounds the per-tenant result store: beyond this many
	// terminal jobs, the oldest are evicted (default 64; negative keeps
	// none).
	KeepFinished int
	// MaxCycles caps every job's simulation bound (default
	// exec.DefaultMaxCycles). Specs asking for more are clamped.
	MaxCycles int
	// JobTimeout bounds each job's execution wall time; 0 means no bound.
	JobTimeout time.Duration
	// Registry, when non-nil, registers one telemetry run per executing
	// job (label "tenant/j<id>") so /metrics and /runs expose live
	// per-job cycle progress.
	Registry *telemetry.Registry
	// StreamInterval paces SSE progress events (default 100ms).
	StreamInterval time.Duration
	// Flight, when non-nil, is the always-on flight recorder: it retains
	// every job's span tree, every admission decision, and stall
	// snapshots, all in bounded rings (see obs.NewFlight). Recording
	// happens only at admission and terminal transitions.
	Flight *obs.Flight
	// SLO, when non-nil, receives one good/bad observation per objective
	// per terminal job (see DefaultSLOs for the objective set).
	SLO *obs.SLOEngine
	// SLOQueueWaitMax classifies queue-wait observations: a job that
	// waited longer is a bad event for the queue_wait objective (default
	// 500ms).
	SLOQueueWaitMax time.Duration
	// SLOCostRatioMax classifies cost-model observations: a job whose
	// actual/estimated work ratio exceeds it is a bad event for the
	// cost_model objective (default 1.5 — underestimates are what break
	// admission control).
	SLOCostRatioMax float64
	// Cache, when non-nil, is the content-addressed compile cache: repeat
	// submissions of one (source, options) content share its compiled
	// artifact, concurrent first submissions coalesce onto one compile, and
	// /metrics grows the staticpipe_cache_* families. Nil compiles every
	// submission from scratch.
	Cache *artifact.Cache
}

func (c Config) withDefaults() Config {
	if c.PoolWorkers <= 0 {
		c.PoolWorkers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.OffloadThreshold == 0 {
		c.OffloadThreshold = 1 << 20
	}
	if c.TenantRate < 0 {
		c.TenantRate = 0 // negative rate means "disabled", same as zero
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 16
	}
	if c.KeepFinished == 0 {
		c.KeepFinished = telemetry.DefaultKeepFinished
	}
	if c.MaxCycles <= 0 {
		c.MaxCycles = exec.DefaultMaxCycles
	}
	if c.StreamInterval <= 0 {
		c.StreamInterval = 100 * time.Millisecond
	}
	if c.SLOQueueWaitMax <= 0 {
		c.SLOQueueWaitMax = 500 * time.Millisecond
	}
	if c.SLOCostRatioMax <= 0 {
		c.SLOCostRatioMax = 1.5
	}
	return c
}

// SLO objective names the service observes.
const (
	SLOQueueWait = "queue_wait" // admitted job began within SLOQueueWaitMax
	SLOJobErrors = "job_errors" // terminal job did not fail (canceled counts good)
	SLOCostModel = "cost_model" // actual/estimated work ratio within SLOCostRatioMax
	SLOStallFree = "stall_free" // finished run drained cleanly
)

// DefaultSLOs builds the service's standard objective set. dfserve and
// the tests share it so the greppable verdict line means the same thing
// everywhere.
func DefaultSLOs() *obs.SLOEngine {
	return obs.NewSLOEngine(
		obs.SLODef{Name: SLOQueueWait, Target: 0.99,
			Help: "99% of admitted jobs start within the configured queue-wait bound."},
		obs.SLODef{Name: SLOJobErrors, Target: 0.99,
			Help: "99% of terminal jobs do not fail (cancellation is not a failure)."},
		obs.SLODef{Name: SLOCostModel, Target: 0.90,
			Help: "90% of runs land within the admission cost model's tolerated ratio."},
		obs.SLODef{Name: SLOStallFree, Target: 0.95,
			Help: "95% of finished runs drain cleanly with no stranded tokens."},
	)
}

// Service is one admission controller + worker pool + result store.
type Service struct {
	cfg Config

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *Job
	wg         sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   int64
	jobs     map[int64]*Job
	buckets  map[string]*bucket
	finished map[string][]int64 // per-tenant FIFO of terminal job IDs, oldest first

	// Counters for /metrics; label keys are [tenant] or [tenant, x].
	submitted map[string]int64
	admitted  map[[2]string]int64 // [tenant, path]
	rejected  map[[2]string]int64 // [tenant, reason]
	completed map[[2]string]int64 // [tenant, state]
	evicted   map[string]int64
	running   int
	poolBusy  int
	// costRatio scores the admission cost model: actual simulation work
	// (cells × simulated cycles, lane-aggregated for batched jobs) over
	// the admission-time estimate, one observation per job that ran.
	costRatio ratioHist
}

// ratioBounds are the staticpipe_serve_cost_ratio histogram's upper
// bucket bounds. 1.0 separates overestimates (the safe side for an
// admission bound) from underestimates.
var ratioBounds = [...]float64{0.1, 0.25, 0.5, 1, 2, 4}

// ratioHist is one fixed-bucket histogram; guarded by Service.mu.
type ratioHist struct {
	counts [len(ratioBounds) + 1]int64 // +1 for the +Inf bucket
	sum    float64
	count  int64
}

func (h *ratioHist) observe(v float64) {
	i := 0
	for ; i < len(ratioBounds) && v > ratioBounds[i]; i++ {
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// New starts a service: PoolWorkers goroutines consuming the offload
// queue. Call Close to drain and stop them.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:       cfg,
		queue:     make(chan *Job, cfg.QueueDepth),
		jobs:      map[int64]*Job{},
		buckets:   map[string]*bucket{},
		finished:  map[string][]int64{},
		submitted: map[string]int64{},
		admitted:  map[[2]string]int64{},
		rejected:  map[[2]string]int64{},
		completed: map[[2]string]int64{},
		evicted:   map[string]int64{},
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	s.wg.Add(cfg.PoolWorkers)
	for i := 0; i < cfg.PoolWorkers; i++ {
		go s.worker()
	}
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Service) Config() Config { return s.cfg }

// newJob allocates a job with its cancellation scope rooted in the
// service (Close's hard phase cancels every in-flight run).
func (s *Service) newJob(spec Spec, art *core.Artifact, cost, cells int64) *Job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	j := &Job{
		Tenant:   spec.Tenant,
		Cost:     cost,
		Model:    spec.Model,
		spec:     spec,
		art:      art,
		workers:  spec.Workers,
		maxCyc:   spec.MaxCycles,
		cells:    cells,
		ctx:      ctx,
		cancelFn: cancel,
		done:     make(chan struct{}),
		state:    StateQueued,
	}
	j.submitted = time.Now()
	return j
}

// admit registers an admitted job (ID assignment + tracking + counters).
func (s *Service) admit(j *Job) {
	s.mu.Lock()
	s.admitLocked(j)
	s.mu.Unlock()
}

func (s *Service) admitLocked(j *Job) {
	s.nextID++
	j.ID = s.nextID
	s.jobs[j.ID] = j
	s.admitted[[2]string{j.Tenant, j.Path}]++
	j.tree.Root().SetName(j.label())
	s.cfg.Flight.RecordAdmission(obs.AdmissionRecord{
		Time: time.Now(), Tenant: j.Tenant, JobID: j.ID, Decision: j.Path, Cost: j.Cost,
	})
}

// rejectLocked counts one rejection. Callers hold s.mu.
func (s *Service) rejectLocked(tenant, reason string) {
	s.rejected[[2]string{tenant, reason}]++
	s.cfg.Flight.RecordAdmission(obs.AdmissionRecord{
		Time: time.Now(), Tenant: tenant, Decision: "rejected:" + reason,
	})
}

// worker is one pool goroutine: it drains the offload queue until Close
// closes it, then exits. Jobs canceled while queued are skipped (their
// terminal state was recorded by Cancel).
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.mu.Lock()
		s.poolBusy++
		s.mu.Unlock()
		s.execute(j)
		s.mu.Lock()
		s.poolBusy--
		s.mu.Unlock()
	}
}

// execute runs one admitted job to a terminal state. It is called on a
// pool worker (offload path) or the submitting goroutine (fast path).
func (s *Service) execute(j *Job) {
	if !j.begin() {
		return // canceled while queued
	}
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	var run *telemetry.Run
	if s.cfg.Registry != nil {
		run = s.cfg.Registry.NewRun(j.label(), j.Model)
		j.mu.Lock()
		j.run = run
		j.prog = run.Progress()
		j.mu.Unlock()
	}

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}

	// The run span rides the same context that carries cancellation into
	// the simulator hot loops; the cores annotate it (cycles, shard and
	// lane children) strictly after their cycle loop ends.
	j.endQueueWait()
	if root := j.tree.Root(); root != nil {
		sp := root.Child(obs.KindRun, j.Model)
		j.setRunSpan(sp)
		ctx = obs.WithSpan(ctx, sp)
	}

	res, err := s.simulate(j, ctx)
	state := StateDone
	errMsg := ""
	switch {
	case res != nil && res.Canceled:
		state = StateCanceled
		errMsg = fmt.Sprintf("canceled: %v", context.Cause(ctx))
	case err != nil:
		state = StateFailed
		errMsg = err.Error()
	}
	s.complete(j, state, res, errMsg, err)
}

// simulate drives the job's chosen simulator model and normalizes the
// outcome to a JobResult. A non-nil result with err != nil is partial
// (cancellation or a cycle-bound halt).
func (s *Service) simulate(j *Job, ctx context.Context) (*JobResult, error) {
	inputs := streamInputs(j.spec.Inputs)
	laneIn := laneStreamInputs(j.spec.LaneInputs)
	var prog = j.prog
	switch j.Model {
	case ModelMachine:
		// The machine preparation is memoized on the shared artifact, so a
		// cache-hit machine job skips validation and FIFO expansion too.
		mp, err := j.art.Machine()
		if err != nil {
			return nil, err
		}
		mres, err := mp.Run(machine.Config{
			MaxCycles: j.maxCyc, Workers: j.workers, Progress: prog, Ctx: ctx,
			Batch: j.spec.Batch, LaneInputs: laneIn, Inputs: inputs,
		})
		if mres == nil {
			return nil, err
		}
		res := &JobResult{
			Cycles: mres.Cycles, Clean: mres.Clean, Canceled: mres.Canceled,
			Stalled: mres.Stalled, Outputs: map[string]Output{}, II: map[string]float64{},
		}
		for name, rng := range j.art.Compiled.Outputs {
			res.Outputs[name] = Output{Lo: rng.Lo, Lo2: rng.Lo2, W: rng.Width(), Values: mres.Output(name)}
			res.II[name] = mres.II(name)
		}
		if mres.Batch > 1 {
			res.Batch = mres.Batch
			for l := range mres.Lanes {
				lr := &mres.Lanes[l]
				lv := LaneView{Cycles: lr.Cycles, Clean: lr.Clean, Canceled: lr.Canceled,
					Outputs: map[string]Output{}}
				for name, rng := range j.art.Compiled.Outputs {
					lv.Outputs[name] = Output{Lo: rng.Lo, Lo2: rng.Lo2, W: rng.Width(), Values: lr.Output(name)}
				}
				res.Lanes = append(res.Lanes, lv)
			}
		}
		return res, err
	default: // ModelExec
		// The per-run attachments travel in a Binding; the shared artifact
		// is never written, so concurrent jobs on one cached artifact are
		// race-free by construction.
		bind := core.Binding{Ctx: ctx, Progress: prog, Workers: j.workers, MaxCycles: j.maxCyc}
		if j.spec.Batch > 1 {
			br, err := j.art.RunBatch(bind, inputs, laneIn)
			if br == nil {
				return nil, err
			}
			// Top-level fields are lane 0's view, matching the scalar
			// result a client would get from the same spec without Batch.
			l0 := br.Lanes[0]
			res := &JobResult{
				Batch:  br.Exec.Batch,
				Cycles: l0.Exec.Cycles, Clean: l0.Exec.Clean, Canceled: br.Exec.Canceled,
				Stalled: l0.Exec.Stalled, Outputs: map[string]Output{}, II: map[string]float64{},
			}
			for name, av := range l0.Outputs {
				res.Outputs[name] = Output{Lo: av.Lo, Lo2: av.Lo2, W: av.W, Values: av.Elems}
				res.II[name] = l0.Exec.II(name)
			}
			for _, rr := range br.Lanes {
				lv := LaneView{Cycles: rr.Exec.Cycles, Clean: rr.Exec.Clean,
					Canceled: rr.Exec.Canceled, Outputs: map[string]Output{}}
				for name, av := range rr.Outputs {
					lv.Outputs[name] = Output{Lo: av.Lo, Lo2: av.Lo2, W: av.W, Values: av.Elems}
				}
				res.Lanes = append(res.Lanes, lv)
			}
			return res, err
		}
		rr, err := j.art.Run(bind, inputs)
		if rr == nil {
			return nil, err
		}
		res := &JobResult{
			Cycles: rr.Exec.Cycles, Clean: rr.Exec.Clean, Canceled: rr.Exec.Canceled,
			Stalled: rr.Exec.Stalled, Outputs: map[string]Output{}, II: map[string]float64{},
		}
		for name, av := range rr.Outputs {
			res.Outputs[name] = Output{Lo: av.Lo, Lo2: av.Lo2, W: av.W, Values: av.Elems}
			res.II[name] = rr.Exec.II(name)
		}
		return res, err
	}
}

// laneStreamInputs converts the wire-format per-lane overrides to the
// simulator cores' value-slice form. Nil in, nil out.
func laneStreamInputs(in []map[string]Stream) []map[string][]value.Value {
	if len(in) == 0 {
		return nil
	}
	out := make([]map[string][]value.Value, len(in))
	for l, m := range in {
		if m == nil {
			continue
		}
		out[l] = streamInputs(m)
	}
	return out
}

// complete records a job's terminal transition exactly once: lifecycle
// state, counters, telemetry run closure, result-store eviction, span
// closure, flight recording, and SLO observations.
func (s *Service) complete(j *Job, state State, res *JobResult, errMsg string, err error) {
	if !j.finish(state, res, errMsg) {
		return
	}
	j.cancelFn() // release the job's context resources
	j.mu.Lock()
	run := j.run
	runSpan := j.runSpan
	began := !j.started.IsZero()
	wait := j.started.Sub(j.submitted)
	j.mu.Unlock()
	if run != nil {
		run.Finish(err)
	}
	// Score the admission estimate against the work the job actually did:
	// cells × simulated cycles, summed over lanes when batched (the
	// denominator already carries the amortized batch discount).
	ratio := -1.0
	var actual int64
	if began && res != nil && j.Cost > 0 {
		total := int64(res.Cycles)
		if len(res.Lanes) > 0 {
			total = 0
			for _, lv := range res.Lanes {
				total += int64(lv.Cycles)
			}
		}
		actual = j.cells * total
		ratio = float64(actual) / float64(j.Cost)
	}
	s.mu.Lock()
	if began {
		s.running--
	}
	if ratio >= 0 {
		s.costRatio.observe(ratio)
	}
	s.completed[[2]string{j.Tenant, string(state)}]++
	s.retireLocked(j)
	s.mu.Unlock()

	// Observability, strictly after the terminal transition is published.
	if ratio >= 0 {
		runSpan.Set("cost_est", j.Cost)
		runSpan.Set("cost_actual", actual)
		runSpan.Set("cost_ratio", ratio)
	}
	runSpan.End()
	if root := j.tree.Root(); root != nil {
		root.Set("state", string(state))
		if errMsg != "" {
			root.Set("error", errMsg)
		}
		root.End()
		s.cfg.Flight.RecordTree(j.tree)
	}
	if res != nil && !res.Clean && !res.Canceled && len(res.Stalled) > 0 {
		s.cfg.Flight.RecordStall(obs.StallSnapshot{
			Time: time.Now(), Job: j.label(), Cycle: int64(res.Cycles), Diags: res.Stalled,
		})
	}
	if slo := s.cfg.SLO; slo != nil {
		if began {
			slo.Observe(SLOQueueWait, wait <= s.cfg.SLOQueueWaitMax)
		}
		slo.Observe(SLOJobErrors, state != StateFailed)
		if ratio >= 0 {
			slo.Observe(SLOCostModel, ratio <= s.cfg.SLOCostRatioMax)
		}
		if state == StateDone && res != nil {
			slo.Observe(SLOStallFree, res.Clean)
		}
	}
}

// retireLocked appends j to its tenant's finished FIFO and evicts beyond
// the retention bound. Callers hold s.mu.
func (s *Service) retireLocked(j *Job) {
	keep := s.cfg.KeepFinished
	if keep < 0 {
		keep = 0
	}
	fin := append(s.finished[j.Tenant], j.ID)
	for len(fin) > keep {
		delete(s.jobs, fin[0])
		s.evicted[j.Tenant]++
		fin = fin[1:]
	}
	s.finished[j.Tenant] = fin
}

// HealthStats snapshots the service's live registry counts for the
// /healthz surface: tracked jobs by lifecycle phase plus pool occupancy.
func (s *Service) HealthStats() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	stats := map[string]int64{
		"jobs_tracked": int64(len(s.jobs)),
		"jobs_running": int64(s.running),
		"jobs_queued":  int64(len(s.queue)),
		"pool_busy":    int64(s.poolBusy),
	}
	var finished int64
	for _, ids := range s.finished {
		finished += int64(len(ids))
	}
	stats["jobs_finished"] = finished
	return stats
}

// Get returns a tracked job (nil if unknown or evicted).
func (s *Service) Get(id int64) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// List snapshots all tracked jobs (optionally one tenant's), ordered by ID.
func (s *Service) List(tenant string) []JobView {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant == "" || j.Tenant == tenant {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].ID < jobs[b].ID })
	views := make([]JobView, len(jobs))
	for i, j := range jobs {
		views[i] = j.View(false)
	}
	return views
}

// Cancel requests cancellation of a tracked job. A queued job transitions
// to canceled immediately; a running one is interrupted through its
// context (the simulator polls every exec.CancelCadence cycles and
// returns the partial result). Returns the job and whether it was found;
// canceling a terminal job is a found no-op.
func (s *Service) Cancel(id int64) (*Job, bool) {
	j := s.Get(id)
	if j == nil {
		return nil, false
	}
	j.cancelFn()
	if j.cancelQueued() {
		// Never started: record the terminal transition here (the worker
		// that eventually dequeues it will skip it).
		j.mu.Lock()
		run := j.run
		j.mu.Unlock()
		if run != nil {
			run.Finish(context.Canceled)
		}
		s.mu.Lock()
		s.completed[[2]string{j.Tenant, string(StateCanceled)}]++
		s.retireLocked(j)
		s.mu.Unlock()
		j.endQueueWait()
		if root := j.tree.Root(); root != nil {
			root.Set("state", string(StateCanceled))
			root.End()
			s.cfg.Flight.RecordTree(j.tree)
		}
		// Canceled-while-queued is not a failure; the job never ran, so
		// the other objectives have nothing to say about it.
		s.cfg.SLO.Observe(SLOJobErrors, true)
	}
	return j, true
}

// Close drains the service: no new submissions are admitted, queued jobs
// run to completion, and the call returns when the pool is idle. If ctx
// expires first, every in-flight job is canceled (partial results are
// recorded) and Close waits for the pool to unwind — bounded by the
// simulator's cancel cadence — before returning ctx's error.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.queue)
	s.mu.Unlock()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		s.baseCancel()
		return nil
	case <-ctx.Done():
		s.baseCancel() // hard phase: cancel everything still running
		<-done
		return ctx.Err()
	}
}
