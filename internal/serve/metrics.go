package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteMetrics renders the staticpipe_serve_* Prometheus families in text
// exposition format. It is shaped to plug into telemetry.NewMux as an
// extra appender so the service's counters share the /metrics endpoint
// with the per-run simulation families.
func (s *Service) WriteMetrics(w io.Writer) {
	s.mu.Lock()
	defer s.mu.Unlock()

	family(w, "staticpipe_serve_submitted_total", "counter",
		"Job submissions received, before any admission decision.")
	for _, t := range sortedKeys(s.submitted) {
		fmt.Fprintf(w, "staticpipe_serve_submitted_total{%s} %d\n", lbl("tenant", t), s.submitted[t])
	}

	family(w, "staticpipe_serve_admitted_total", "counter",
		"Jobs admitted, by admission path (fast=inline, offload=queued).")
	for _, k := range sortedPairKeys(s.admitted) {
		fmt.Fprintf(w, "staticpipe_serve_admitted_total{%s,%s} %d\n",
			lbl("tenant", k[0]), lbl("path", k[1]), s.admitted[k])
	}

	family(w, "staticpipe_serve_rejected_total", "counter",
		"Submissions rejected, by reason (invalid, throttled, queue_full, shutdown).")
	for _, k := range sortedPairKeys(s.rejected) {
		fmt.Fprintf(w, "staticpipe_serve_rejected_total{%s,%s} %d\n",
			lbl("tenant", k[0]), lbl("reason", k[1]), s.rejected[k])
	}

	family(w, "staticpipe_serve_jobs_completed_total", "counter",
		"Jobs reaching a terminal state, by state (done, failed, canceled).")
	for _, k := range sortedPairKeys(s.completed) {
		fmt.Fprintf(w, "staticpipe_serve_jobs_completed_total{%s,%s} %d\n",
			lbl("tenant", k[0]), lbl("state", k[1]), s.completed[k])
	}

	family(w, "staticpipe_serve_evicted_total", "counter",
		"Terminal jobs evicted from the bounded per-tenant result store.")
	for _, t := range sortedKeys(s.evicted) {
		fmt.Fprintf(w, "staticpipe_serve_evicted_total{%s} %d\n", lbl("tenant", t), s.evicted[t])
	}

	family(w, "staticpipe_serve_queue_depth", "gauge", "Jobs waiting in the offload queue.")
	fmt.Fprintf(w, "staticpipe_serve_queue_depth %d\n", len(s.queue))
	family(w, "staticpipe_serve_queue_capacity", "gauge", "Offload queue capacity.")
	fmt.Fprintf(w, "staticpipe_serve_queue_capacity %d\n", s.cfg.QueueDepth)
	family(w, "staticpipe_serve_workers", "gauge", "Worker-pool size.")
	fmt.Fprintf(w, "staticpipe_serve_workers %d\n", s.cfg.PoolWorkers)
	family(w, "staticpipe_serve_workers_busy", "gauge", "Pool workers executing a job.")
	fmt.Fprintf(w, "staticpipe_serve_workers_busy %d\n", s.poolBusy)
	family(w, "staticpipe_serve_jobs_running", "gauge",
		"Jobs executing now (pool workers plus inline fast-path runs).")
	fmt.Fprintf(w, "staticpipe_serve_jobs_running %d\n", s.running)
	family(w, "staticpipe_serve_jobs_tracked", "gauge",
		"Jobs in the result store (queued, running, and retained terminal).")
	fmt.Fprintf(w, "staticpipe_serve_jobs_tracked %d\n", len(s.jobs))
	family(w, "staticpipe_serve_offload_threshold", "gauge",
		"Admission cost threshold above which jobs are queued.")
	fmt.Fprintf(w, "staticpipe_serve_offload_threshold %d\n", s.cfg.OffloadThreshold)

	family(w, "staticpipe_serve_cost_ratio", "histogram",
		"Actual simulation work (cells x cycles, lane-aggregated) over the admission estimate, per finished job.")
	cum := int64(0)
	for i, bound := range ratioBounds {
		cum += s.costRatio.counts[i]
		fmt.Fprintf(w, "staticpipe_serve_cost_ratio_bucket{le=%q} %d\n",
			strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	fmt.Fprintf(w, "staticpipe_serve_cost_ratio_bucket{le=\"+Inf\"} %d\n", s.costRatio.count)
	fmt.Fprintf(w, "staticpipe_serve_cost_ratio_sum %g\n", s.costRatio.sum)
	fmt.Fprintf(w, "staticpipe_serve_cost_ratio_count %d\n", s.costRatio.count)

	// The artifact cache's counters are atomics; snapshotting them under
	// s.mu costs nothing and keeps the exposition point-in-time coherent.
	if c := s.cfg.Cache; c != nil {
		st := c.Stats()
		family(w, "staticpipe_cache_hits_total", "counter",
			"Artifact-cache lookups served from a resident compiled artifact.")
		fmt.Fprintf(w, "staticpipe_cache_hits_total %d\n", st.Hits)
		family(w, "staticpipe_cache_misses_total", "counter",
			"Artifact-cache lookups that compiled (one per singleflight group).")
		fmt.Fprintf(w, "staticpipe_cache_misses_total %d\n", st.Misses)
		family(w, "staticpipe_cache_coalesced_total", "counter",
			"Artifact-cache lookups that waited on another submission's in-flight compile.")
		fmt.Fprintf(w, "staticpipe_cache_coalesced_total %d\n", st.Coalesced)
		family(w, "staticpipe_cache_evictions_total", "counter",
			"Artifacts evicted under the entry or byte budget.")
		fmt.Fprintf(w, "staticpipe_cache_evictions_total %d\n", st.Evictions)
		family(w, "staticpipe_cache_entries", "gauge", "Resident compiled artifacts.")
		fmt.Fprintf(w, "staticpipe_cache_entries %d\n", st.Entries)
		family(w, "staticpipe_cache_bytes", "gauge",
			"Estimated resident footprint of cached artifacts.")
		fmt.Fprintf(w, "staticpipe_cache_bytes %d\n", st.Bytes)
		family(w, "staticpipe_cache_compile_seconds_saved_total", "counter",
			"Cumulative compile wall time hits and coalesced waiters did not pay.")
		fmt.Fprintf(w, "staticpipe_cache_compile_seconds_saved_total %g\n", st.CompileSaved.Seconds())
	}

	// SLO families ride the same exposition (nil-safe when no engine is
	// attached). The engine has its own lock; holding s.mu here is fine —
	// it never calls back into the service.
	s.cfg.SLO.WriteMetrics(w)
}

// Counters returns the per-tenant admission ledger (submitted, admitted,
// rejected totals) for reconciliation checks: for every tenant,
// submitted == admitted + rejected must hold at quiescence.
func (s *Service) Counters(tenant string) (submitted, admitted, rejected int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	submitted = s.submitted[tenant]
	for k, v := range s.admitted {
		if k[0] == tenant {
			admitted += v
		}
	}
	for k, v := range s.rejected {
		if k[0] == tenant {
			rejected += v
		}
	}
	return submitted, admitted, rejected
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedPairKeys(m map[[2]string]int64) [][2]string {
	keys := make([][2]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// family and lbl mirror the unexported telemetry/prom.go helpers: the text
// exposition format is small enough that sharing would couple the packages
// for two one-liners.
func family(w io.Writer, name, typ, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func lbl(key, value string) string { return key + `="` + escapeLabel(value) + `"` }

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}
