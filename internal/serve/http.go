package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"staticpipe/internal/obs"
)

// Register mounts the job API on mux:
//
//	POST   /jobs              submit (200 fast+result, 202 queued, 400/429/503 rejected)
//	GET    /jobs[?tenant=]    list tracked jobs (no result payloads)
//	GET    /jobs/{id}         one job; includes the result once terminal
//	POST   /jobs/{id}/cancel  request cancellation (DELETE /jobs/{id} is an alias)
//	GET    /jobs/{id}/events  SSE stream: progress events, then one final done event
//	GET    /jobs/{id}/span    the job's span tree (?format=chrome for trace-event JSON)
//	GET    /debug/flight      flight-recorder dump (only when Config.Flight is set)
//
// The mux is typically telemetry.NewMux(reg, svc.WriteMetrics), putting
// /jobs, /metrics, /runs, and /debug/pprof on one listener.
func (s *Service) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleGet)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /jobs/{id}/span", s.handleSpan)
	if s.cfg.Flight != nil {
		mux.Handle("GET /debug/flight", s.cfg.Flight.Handler())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errorBody is the JSON error envelope.
type errorBody struct {
	Error      string `json:"error"`
	Reason     string `json:"reason,omitempty"`
	RetryAfter int    `json:"retry_after_sec,omitempty"`
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: fmt.Sprintf("bad request body: %v", err), Reason: ReasonInvalid})
		return
	}
	j, rej := s.Submit(r.Context(), spec)
	if rej != nil {
		if rej.RetryAfter > 0 {
			w.Header().Set("Retry-After", strconv.Itoa(rej.RetryAfter))
		}
		writeJSON(w, rej.Status, errorBody{Error: rej.Err.Error(), Reason: rej.Reason, RetryAfter: rej.RetryAfter})
		return
	}
	if j.Path == PathFast {
		writeJSON(w, http.StatusOK, j.View(true))
		return
	}
	w.Header().Set("Location", fmt.Sprintf("/jobs/%d", j.ID))
	writeJSON(w, http.StatusAccepted, j.View(false))
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

// jobFromPath resolves {id}; a nil return means the 404 was written.
func (s *Service) jobFromPath(w http.ResponseWriter, r *http.Request) *Job {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("bad job id %q", r.PathValue("id"))})
		return nil
	}
	j := s.Get(id)
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("no job %d (unknown or evicted)", id)})
		return nil
	}
	return j
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	if j := s.jobFromPath(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.View(true))
	}
}

// handleSpan serves the job's span tree: where its wall-clock went, from
// admission through per-shard execution. Open spans (a still-running job)
// report their duration as of the request.
func (s *Service) handleSpan(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	snap := j.SpanTree().Snapshot()
	if snap == nil {
		writeJSON(w, http.StatusNotFound, errorBody{Error: fmt.Sprintf("job %d has no span tree", j.ID)})
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.WriteChrome(w, snap); err != nil {
			writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	s.Cancel(j.ID)
	writeJSON(w, http.StatusOK, j.View(true))
}

// handleEvents streams a job's lifecycle as server-sent events: a
// "progress" event (state + live cycle counters) every StreamInterval,
// then a single "done" event carrying the full terminal view, result
// included. The stream ends after done, or when the client disconnects.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobFromPath(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusNotImplemented, errorBody{Error: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	event := func(name string, v any) {
		b, _ := json.Marshal(v)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b)
		flusher.Flush()
	}

	ticker := time.NewTicker(s.cfg.StreamInterval)
	defer ticker.Stop()
	event("progress", j.View(false))
	for {
		select {
		case <-j.Done():
			event("done", j.View(true))
			return
		case <-ticker.C:
			event("progress", j.View(false))
		case <-r.Context().Done():
			return
		}
	}
}
