package serve

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"time"

	"staticpipe/internal/artifact"
	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/obs"
	"staticpipe/internal/value"
)

// Rejection reasons, used both as HTTP error codes and as the reason label
// of staticpipe_serve_rejected_total.
const (
	ReasonInvalid   = "invalid"    // bad spec: parse/check/compile or input binding failed
	ReasonThrottled = "throttled"  // tenant token bucket empty
	ReasonQueueFull = "queue_full" // offload queue at capacity
	ReasonShutdown  = "shutdown"   // service draining
)

// Rejection describes why a submission was not admitted.
type Rejection struct {
	Reason string
	// Status is the HTTP status the reason maps to (400, 429, 503).
	Status int
	// RetryAfter, when positive, is the client back-off hint in seconds
	// (only set for throttled/queue_full).
	RetryAfter int
	Err        error
}

func (r *Rejection) Error() string {
	return fmt.Sprintf("serve: rejected (%s): %v", r.Reason, r.Err)
}

// bucket is one tenant's token bucket. Submissions spend one token each;
// tokens refill at rate per second up to burst. Guarded by Service.mu.
type bucket struct {
	tokens float64
	last   time.Time
}

// maxRetryAfter caps the Retry-After hint at one hour: a zero, negative, or
// vanishingly small refill rate would otherwise push the division below to
// +Inf, and converting that to int yields a garbage header value.
const maxRetryAfter = 3600

// take refills the bucket to now and spends one token. On failure it
// returns the whole seconds to wait until a token is available, capped at
// maxRetryAfter.
func (b *bucket) take(now time.Time, rate float64, burst int) (ok bool, retryAfter int) {
	if rate > 0 {
		b.tokens = math.Min(float64(burst), b.tokens+now.Sub(b.last).Seconds()*rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if rate <= 0 {
		return false, maxRetryAfter
	}
	wait := math.Ceil((1 - b.tokens) / rate)
	if wait > maxRetryAfter {
		wait = maxRetryAfter
	}
	return false, int(wait)
}

// estimateCost scores a compiled job for the fast/offload split. The cost
// model is the admission-time upper bound on simulation work: every cell
// fires at most once per cycle, so cells × estimated cycles bounds the
// firing count. Estimated cycles follow from the fully-pipelined shape of
// compiled graphs — a stream of n values through a d-cell pipeline drains
// in O(n + d) — doubled for II > 1 slack, capped by the cycle bound.
//
// A batched job advances B lanes through one shared planning pass, so it
// does not cost B scalar runs: the measured amortization (dfbench E20 on
// both array kernels) puts a marginal lane at roughly a quarter of a
// scalar run, and admission bills 1 + (B-1)/4 scalar costs.
func estimateCost(art *core.Artifact, spec Spec) (cost, cells int64) {
	cells = int64(art.Cells)
	maxLen := 0
	for _, s := range spec.Inputs {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	// Per-lane rebinds count too: the drain time is governed by the longest
	// stream any lane pushes through the pipeline, so a batch whose base
	// inputs are short must not be billed as a short job when its lane
	// overrides are long.
	for _, li := range spec.LaneInputs {
		for _, s := range li {
			if len(s) > maxLen {
				maxLen = len(s)
			}
		}
	}
	estCycles := 2*int64(maxLen) + 2*cells + 16
	if spec.MaxCycles > 0 && estCycles > int64(spec.MaxCycles) {
		estCycles = int64(spec.MaxCycles)
	}
	cost = cells * estCycles
	if b := int64(spec.Batch); b > 1 {
		cost = cost * (b + 3) / 4
	}
	return cost, cells
}

// streamInputs converts wire-format streams to simulator input bindings.
func streamInputs(in map[string]Stream) map[string][]value.Value {
	out := make(map[string][]value.Value, len(in))
	for name, s := range in {
		out[name] = s
	}
	return out
}

// resolveSpec validates and normalizes a submission in place. It returns
// the compiled artifact (shared by the fast path, the offload queue, and —
// through the artifact cache — every other submission of the same content)
// or a client-error rejection. adm, when non-nil, is the open admission
// span; a cache-enabled resolve hangs its cache.lookup child off it.
func (s *Service) resolveSpec(spec *Spec, adm *obs.Span) (*core.Artifact, *Rejection) {
	switch spec.Model {
	case "":
		spec.Model = ModelExec
	case ModelExec, ModelMachine:
	default:
		return nil, &Rejection{
			Reason: ReasonInvalid, Status: http.StatusBadRequest,
			Err: fmt.Errorf("unknown model %q (want %q or %q)", spec.Model, ModelExec, ModelMachine),
		}
	}
	if spec.MaxCycles <= 0 || spec.MaxCycles > s.cfg.MaxCycles {
		spec.MaxCycles = s.cfg.MaxCycles
	}
	if spec.Workers < 0 {
		spec.Workers = 0
	}
	if spec.Batch < 0 {
		spec.Batch = 0
	}
	if spec.Batch > exec.MaxBatch {
		return nil, &Rejection{
			Reason: ReasonInvalid, Status: http.StatusBadRequest,
			Err: fmt.Errorf("batch %d exceeds the %d-lane limit", spec.Batch, exec.MaxBatch),
		}
	}
	if len(spec.LaneInputs) > 0 && spec.Batch <= 1 {
		return nil, &Rejection{
			Reason: ReasonInvalid, Status: http.StatusBadRequest,
			Err: fmt.Errorf("lane_inputs requires batch > 1"),
		}
	}
	if len(spec.LaneInputs) > spec.Batch {
		return nil, &Rejection{
			Reason: ReasonInvalid, Status: http.StatusBadRequest,
			Err: fmt.Errorf("%d lane input sets for %d lanes", len(spec.LaneInputs), spec.Batch),
		}
	}
	// MaxCycles is a run-time bound, not a compile input; it stays out of
	// both the compile options and the cache key so cycle-bound variants of
	// one program share an artifact.
	copts := core.Options{Batch: spec.Batch}
	art, rej := s.compileSpec(spec.Source, copts, adm)
	if rej != nil {
		return nil, rej
	}
	// Check inputs once at admission so name/arity mistakes come back as a
	// 400, not a failed job. The check never writes the shared graph;
	// execution passes the streams with the run.
	if err := art.Compiled.CheckInputs(streamInputs(spec.Inputs)); err != nil {
		return nil, &Rejection{Reason: ReasonInvalid, Status: http.StatusBadRequest, Err: err}
	}
	// Per-lane rebinds get the same admission-time checking: unknown names
	// and wrong lengths are a 400, not a failed job.
	for l, li := range spec.LaneInputs {
		for name, vals := range li {
			if _, ok := art.Compiled.Inputs[name]; !ok {
				return nil, &Rejection{Reason: ReasonInvalid, Status: http.StatusBadRequest,
					Err: fmt.Errorf("lane %d binds unknown input %s", l, name)}
			}
			if want := art.Compiled.InputLen(name); len(vals) != want {
				return nil, &Rejection{Reason: ReasonInvalid, Status: http.StatusBadRequest,
					Err: fmt.Errorf("lane %d input %s has %d elements, want %d", l, name, len(vals), want)}
			}
		}
	}
	return art, nil
}

// compileSpec resolves source + options to an artifact, through the
// content-addressed cache when one is configured. A hit (or a coalesced
// wait on another submission's in-flight compile) skips parse, check, the
// pass pipeline, and simulator preparation entirely.
func (s *Service) compileSpec(src string, copts core.Options, adm *obs.Span) (*core.Artifact, *Rejection) {
	compile := func() (*core.Artifact, error) { return core.CompileArtifact(src, copts) }
	var (
		art *core.Artifact
		err error
	)
	if s.cfg.Cache != nil {
		key := artifact.KeyFor(src, copts, "", 0)
		var sp *obs.Span
		if adm != nil {
			sp = adm.Child(obs.KindCache, "")
		}
		var outcome artifact.Outcome
		art, outcome, err = s.cfg.Cache.Get(key, compile)
		if sp != nil {
			sp.Set("outcome", outcome.String())
			sp.Set("key", key.Hash()[:12])
			if err == nil && outcome != artifact.Miss {
				sp.Set("saved_us", art.CompileWall.Microseconds())
			}
			sp.End()
		}
	} else {
		art, err = compile()
	}
	if err != nil {
		return nil, &Rejection{Reason: ReasonInvalid, Status: http.StatusBadRequest, Err: err}
	}
	return art, nil
}

// Submit admits one job. The decision sequence is:
//
//  1. service draining           → 503 shutdown
//  2. tenant token bucket empty  → 429 throttled (+ Retry-After)
//  3. spec invalid               → 400 invalid
//  4. cost ≤ OffloadThreshold    → fast path: run inline, return terminal job
//  5. offload queue full         → 429 queue_full (+ Retry-After)
//  6. enqueue                    → queued job (poll or stream for results)
//
// The cheap gates run before compilation so a throttled tenant cannot burn
// service CPU on compile work. Every submission lands in exactly one
// counter bucket: submitted == admitted + rejected per tenant.
//
// reqCtx, when non-nil, ties a fast-path run to the caller (a dropped HTTP
// request cancels the inline simulation); it does not affect offloaded
// jobs, which outlive their submit request by design.
func (s *Service) Submit(reqCtx context.Context, spec Spec) (*Job, *Rejection) {
	if spec.Tenant == "" {
		spec.Tenant = "default"
	}
	now := time.Now()

	s.mu.Lock()
	s.submitted[spec.Tenant]++
	if s.closed {
		rej := &Rejection{Reason: ReasonShutdown, Status: http.StatusServiceUnavailable,
			Err: fmt.Errorf("service is shutting down")}
		s.rejectLocked(spec.Tenant, rej.Reason)
		s.mu.Unlock()
		return nil, rej
	}
	if s.cfg.TenantRate > 0 {
		b := s.buckets[spec.Tenant]
		if b == nil {
			b = &bucket{tokens: float64(s.cfg.TenantBurst), last: now}
			s.buckets[spec.Tenant] = b
		}
		if ok, retry := b.take(now, s.cfg.TenantRate, s.cfg.TenantBurst); !ok {
			s.rejectLocked(spec.Tenant, ReasonThrottled)
			s.mu.Unlock()
			return nil, &Rejection{Reason: ReasonThrottled, Status: http.StatusTooManyRequests,
				RetryAfter: retry,
				Err:        fmt.Errorf("tenant %s over rate limit (%.3g jobs/sec)", spec.Tenant, s.cfg.TenantRate)}
		}
	}
	s.mu.Unlock()

	// The job's span tree opens before compilation so the admission span
	// covers compile + cost estimation; the root is renamed to the job
	// label once an ID is assigned.
	tree := obs.NewTree(obs.KindJob, spec.Tenant)
	adm := tree.Root().Child(obs.KindAdmission, "")

	// Compile outside the lock: admission stays responsive while a large
	// program is compiling (and a cache hit makes this near-free).
	art, rej := s.resolveSpec(&spec, adm)
	if rej != nil {
		s.mu.Lock()
		s.rejectLocked(spec.Tenant, rej.Reason)
		s.mu.Unlock()
		return nil, rej
	}

	cost, cells := estimateCost(art, spec)
	adm.Set("cost", cost)
	adm.Set("cells", cells)
	j := s.newJob(spec, art, cost, cells)
	j.tree = tree
	if j.Cost <= s.cfg.OffloadThreshold {
		// Fast path: the program is small enough that queue latency would
		// dominate — run synchronously on the caller's goroutine so the
		// submit response carries the finished result.
		j.Path = PathFast
		adm.Set("path", j.Path)
		adm.End()
		if reqCtx != nil {
			stop := context.AfterFunc(reqCtx, j.cancelFn)
			defer stop()
		}
		s.admit(j)
		s.execute(j)
		return j, nil
	}

	j.Path = PathOffload
	j.workers = s.cfg.SimWorkers
	adm.Set("path", j.Path)
	adm.End()
	j.queueSpan = tree.Root().Child(obs.KindQueueWait, "")
	s.mu.Lock()
	if s.closed {
		rej := &Rejection{Reason: ReasonShutdown, Status: http.StatusServiceUnavailable,
			Err: fmt.Errorf("service is shutting down")}
		s.rejectLocked(spec.Tenant, rej.Reason)
		s.mu.Unlock()
		return nil, rej
	}
	select {
	case s.queue <- j:
		s.admitLocked(j)
		s.mu.Unlock()
		return j, nil
	default:
		s.rejectLocked(spec.Tenant, ReasonQueueFull)
		s.mu.Unlock()
		return nil, &Rejection{Reason: ReasonQueueFull, Status: http.StatusTooManyRequests,
			RetryAfter: 1,
			Err:        fmt.Errorf("offload queue full (%d jobs)", s.cfg.QueueDepth)}
	}
}
