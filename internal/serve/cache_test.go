package serve

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"

	"staticpipe/internal/artifact"
	"staticpipe/internal/obs"
	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/val"
)

// TestThrottledNeverCompiles pins the admission order: a submission the
// token bucket rejects must be refused before the compiler ever sees it.
// The parser call counter is the witness — a 429 that parsed the program
// would mean a tenant over its rate limit can still burn compile CPU.
func TestThrottledNeverCompiles(t *testing.T) {
	s := newService(t, Config{TenantRate: 0.0001, TenantBurst: 1, OffloadThreshold: 1 << 40})
	before := val.ParseCalls()

	j, rej := s.Submit(nil, spec(progs.Fig2(16)))
	if rej != nil {
		t.Fatalf("first submission rejected: %v", rej)
	}
	await(t, j, 30*time.Second)
	if got := val.ParseCalls() - before; got != 1 {
		t.Fatalf("admitted submission parsed %d times, want 1", got)
	}

	// The bucket is empty; every further submission — each a distinct
	// program, so a cache could never mask a compile — must bounce without
	// a single parse.
	for i := 0; i < 3; i++ {
		_, rej := s.Submit(nil, spec(progs.Fig2(32+i)))
		if rej == nil || rej.Reason != ReasonThrottled {
			t.Fatalf("submission %d: rejection %v, want %s", i, rej, ReasonThrottled)
		}
	}
	if got := val.ParseCalls() - before; got != 1 {
		t.Fatalf("throttled submissions reached the compiler: %d parses, want 1", got)
	}
}

// TestDrainingNeverCompiles pins the other admission-order edge: once the
// service is draining, a submission is refused with 503 before compilation.
func TestDrainingNeverCompiles(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	before := val.ParseCalls()
	_, rej := s.Submit(nil, spec(progs.Fig2(64)))
	if rej == nil || rej.Reason != ReasonShutdown {
		t.Fatalf("rejection %v, want %s", rej, ReasonShutdown)
	}
	if got := val.ParseCalls() - before; got != 0 {
		t.Fatalf("draining submission reached the compiler: %d parses, want 0", got)
	}
}

// TestCacheHitSkipsCompileAndMatches pins the cache fast path end to end:
// the second submission of a program must not compile (parser counter
// unchanged) and must produce a byte-identical result.
func TestCacheHitSkipsCompileAndMatches(t *testing.T) {
	cache := artifact.New(artifact.Config{})
	s := newService(t, Config{Cache: cache, OffloadThreshold: 1 << 40})
	p := progs.Fig2(128)

	before := val.ParseCalls()
	j1, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j1, 30*time.Second)
	afterFirst := val.ParseCalls() - before

	j2, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j2, 30*time.Second)
	if got := val.ParseCalls() - before; got != afterFirst {
		t.Fatalf("cache hit recompiled: %d parses after second submit, want %d", got, afterFirst)
	}
	st := cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}

	r1, r2 := j1.Result(), j2.Result()
	if r1 == nil || r2 == nil {
		t.Fatalf("missing results: %v %v", r1, r2)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("cache-hit result diverged from fresh compile:\nfresh: %+v\nhit:   %+v", r1, r2)
	}
}

// TestCacheSpanChild pins the observability wiring: with a cache
// configured, every admission span carries a cache.lookup child whose
// outcome attr says how the lookup was served.
func TestCacheSpanChild(t *testing.T) {
	s := newService(t, Config{Cache: artifact.New(artifact.Config{}), OffloadThreshold: 1 << 40})
	p := progs.Fig2(64)

	j1, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j1, 30*time.Second)
	j2, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j2, 30*time.Second)

	for i, want := range map[*Job]string{j1: "miss", j2: "hit"} {
		root := treeOf(t, i)
		sp := root.Find(obs.KindCache)
		if sp == nil || sp.Open {
			t.Fatalf("job %d: cache.lookup span = %+v", i.ID, sp)
		}
		if sp.Attrs["outcome"] != want {
			t.Fatalf("job %d: outcome attr %v, want %q", i.ID, sp.Attrs["outcome"], want)
		}
		if sp.Attrs["key"] == nil {
			t.Fatalf("job %d: cache.lookup span has no key attr: %v", i.ID, sp.Attrs)
		}
		if want == "hit" && sp.Attrs["saved_us"] == nil {
			t.Fatalf("hit span missing saved_us attr: %v", sp.Attrs)
		}
	}
}

// TestCacheMetricsExposition pins the staticpipe_cache_* families: present
// when a cache is configured, consistent with the cache's own stats, and
// clean under the Prometheus text-format linter.
func TestCacheMetricsExposition(t *testing.T) {
	cache := artifact.New(artifact.Config{})
	s := newService(t, Config{Cache: cache, OffloadThreshold: 1 << 40})
	p := progs.Fig2(64)
	for i := 0; i < 3; i++ {
		j, rej := s.Submit(nil, spec(p))
		if rej != nil {
			t.Fatalf("rejected: %v", rej)
		}
		await(t, j, 30*time.Second)
	}

	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	text := buf.String()
	for _, want := range []string{
		"staticpipe_cache_hits_total 2",
		"staticpipe_cache_misses_total 1",
		"staticpipe_cache_coalesced_total 0",
		"staticpipe_cache_evictions_total 0",
		"staticpipe_cache_entries 1",
		"staticpipe_cache_bytes ",
		"staticpipe_cache_compile_seconds_saved_total ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	if probs := telemetry.LintExposition(strings.NewReader(text)); len(probs) != 0 {
		t.Fatalf("cache metrics fail exposition lint:\n%s", strings.Join(probs, "\n"))
	}
}
