package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"staticpipe/internal/core"
	"staticpipe/internal/obs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/trace"
	"staticpipe/internal/value"
)

// Spec is one compile+simulate job as submitted by a client.
type Spec struct {
	// Tenant names the quota account the job is billed to; empty maps to
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Source is the pipe-structured Val program to compile.
	Source string `json:"source"`
	// Inputs binds each declared input array to its stream. Elements may
	// be plain JSON numbers (reals), booleans, or the tagged exact form
	// {"k":"int","i":3} / {"k":"real","r":1.5} / {"k":"bool","b":true}.
	Inputs map[string]Stream `json:"inputs"`
	// MaxCycles bounds the simulation (0 = the service default; the
	// service cap always applies).
	MaxCycles int `json:"max_cycles,omitempty"`
	// Model selects the simulator: "exec" (default, firing-rule) or
	// "machine" (cycle-accurate packet level).
	Model string `json:"model,omitempty"`
	// Workers drives the job with the sharded parallel engine (results
	// are byte-identical for any count). 0 lets the service decide:
	// fast-path jobs run sequentially, offloaded jobs use the configured
	// shard width.
	Workers int `json:"workers,omitempty"`
	// Batch advances B independent copies of the input streams through
	// one compiled graph in a single batched run (0 or 1 = scalar). Lane
	// 0 consumes Inputs and its results are byte-identical to a scalar
	// run; admission bills batched jobs at the amortized cost, not B
	// scalar runs.
	Batch int `json:"batch,omitempty"`
	// LaneInputs rebinds input streams per lane of a batched job: entry
	// l overrides lane l (nil entries, omitted names, and lane 0 fall
	// back to Inputs). Requires Batch > 1 and len <= Batch.
	LaneInputs []map[string]Stream `json:"lane_inputs,omitempty"`
}

// Stream is one input or output value stream. It marshals reals as plain
// JSON numbers (exact: shortest round-tripping form) and other domains in
// the tagged value form, and accepts either on input.
type Stream []value.Value

// MarshalJSON renders reals as bare numbers and ints/bools tagged.
func (s Stream) MarshalJSON() ([]byte, error) {
	out := make([]any, len(s))
	for i, v := range s {
		if v.Kind() == value.Real {
			out[i] = v.AsReal()
		} else {
			out[i] = v
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON accepts plain numbers (→ real), plain booleans, or the
// tagged exact form per element.
func (s *Stream) UnmarshalJSON(data []byte) error {
	var raw []json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	out := make([]value.Value, len(raw))
	for i, r := range raw {
		var f float64
		if err := json.Unmarshal(r, &f); err == nil {
			out[i] = value.R(f)
			continue
		}
		var b bool
		if err := json.Unmarshal(r, &b); err == nil {
			out[i] = value.B(b)
			continue
		}
		if err := out[i].UnmarshalJSON(r); err != nil {
			return fmt.Errorf("stream element %d: %w", i, err)
		}
	}
	*s = out
	return nil
}

// State is a job's lifecycle phase.
type State string

const (
	// StateQueued: admitted to the offload queue, not yet picked up.
	StateQueued State = "queued"
	// StateRunning: executing on a pool worker or the fast path.
	StateRunning State = "running"
	// StateDone: finished cleanly; Result holds the full outputs.
	StateDone State = "done"
	// StateFailed: compile was fine but the run errored (livelock bound,
	// output shortfall); Result may hold partial outputs.
	StateFailed State = "failed"
	// StateCanceled: canceled while queued or in flight; Result holds the
	// partial outputs produced up to the cancellation cycle.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Output is one output array of a finished (or canceled) job.
type Output struct {
	Lo     int64  `json:"lo"`
	Lo2    int64  `json:"lo2,omitempty"`
	W      int    `json:"w,omitempty"`
	Values Stream `json:"values"`
}

// JobResult is the simulation outcome shipped back to clients. For a
// canceled or failed run it carries whatever the simulator produced up to
// the halt, with Canceled/Stalled saying why it is partial. For a batched
// job the top-level fields are lane 0's view (byte-identical to a scalar
// run) and Lanes carries every lane.
type JobResult struct {
	Cycles   int                `json:"cycles"`
	Clean    bool               `json:"clean"`
	Canceled bool               `json:"canceled,omitempty"`
	Stalled  []string           `json:"stalled,omitempty"`
	Outputs  map[string]Output  `json:"outputs"`
	II       map[string]float64 `json:"ii,omitempty"`
	// Batch echoes the lane count of a batched job (0 for scalar).
	Batch int `json:"batch,omitempty"`
	// Lanes holds one view per lane of a batched job; Lanes[0] repeats
	// the top-level fields.
	Lanes []LaneView `json:"lanes,omitempty"`
}

// LaneView is one lane of a batched job's result.
type LaneView struct {
	Cycles   int               `json:"cycles"`
	Clean    bool              `json:"clean"`
	Canceled bool              `json:"canceled,omitempty"`
	Outputs  map[string]Output `json:"outputs"`
}

// Job is one admitted submission.
type Job struct {
	// ID is the service-assigned identifier (stable across its lifetime).
	ID int64
	// Tenant is the resolved quota account.
	Tenant string
	// Path records the admission decision: "fast" or "offload".
	Path string
	// Cost is the admission-time cost estimate (cells × estimated
	// cycles) the fast/offload split was decided on.
	Cost int64
	// Model is the resolved simulator model.
	Model string

	spec Spec
	// art is the immutable compiled artifact the job runs. On a cache hit
	// several concurrent jobs share one art; nothing on the execution path
	// may mutate it (inputs travel with each run via core.Binding and the
	// cores' per-run input maps).
	art     *core.Artifact
	workers int
	maxCyc  int
	// cells is the compiled graph's cell count, kept from admission so
	// completion can score estimate-vs-actual cost without recomputing
	// graph statistics.
	cells int64

	ctx      context.Context
	cancelFn context.CancelFunc
	done     chan struct{} // closed at the terminal transition

	// tree is the job's span tree, rooted at submission; queueSpan is the
	// open queue.wait child of an offloaded job. Both are set before the
	// job becomes visible to other goroutines and never reassigned.
	tree      *obs.Tree
	queueSpan *obs.Span

	mu        sync.Mutex
	runSpan   *obs.Span       // open while the simulator runs; nil before
	run       *telemetry.Run  // registered at execution time; nil before
	prog      *trace.Progress // live while running; readable any time
	state     State
	submitted time.Time
	started   time.Time
	finished  time.Time
	result    *JobResult
	errMsg    string
}

// label names the job's telemetry run.
func (j *Job) label() string { return fmt.Sprintf("%s/j%d", j.Tenant, j.ID) }

// SpanTree returns the job's span tree (nil only for jobs constructed
// outside Submit, e.g. directly in tests).
func (j *Job) SpanTree() *obs.Tree { return j.tree }

// endQueueWait closes the queue.wait span, if the job has one. Idempotent
// (End keeps the first close).
func (j *Job) endQueueWait() { j.queueSpan.End() }

// setRunSpan publishes the run child span for completion to annotate.
func (j *Job) setRunSpan(sp *obs.Span) {
	j.mu.Lock()
	j.runSpan = sp
	j.mu.Unlock()
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current lifecycle phase.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result (nil until terminal; nil for jobs
// canceled before they started).
func (j *Job) Result() *JobResult {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// cancelQueued atomically transitions queued → canceled; false means the
// job already started (or finished) and cancellation must flow through
// its context instead.
func (j *Job) cancelQueued() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateCanceled
	j.errMsg = "canceled while queued"
	j.finished = time.Now()
	close(j.done)
	return true
}

// begin transitions queued → running; false means the job was canceled
// first and must not run.
func (j *Job) begin() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = time.Now()
	return true
}

// finish records the terminal state; idempotent (the first caller wins).
func (j *Job) finish(state State, res *JobResult, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = state
	j.result = res
	j.errMsg = errMsg
	j.finished = time.Now()
	close(j.done)
	return true
}

// JobView is the JSON shape of one job on the HTTP surface.
type JobView struct {
	ID       int64  `json:"id"`
	Tenant   string `json:"tenant"`
	State    State  `json:"state"`
	Path     string `json:"path"`
	Model    string `json:"model"`
	Cost     int64  `json:"cost"`
	Cycle    int64  `json:"cycle"`
	Arrivals int64  `json:"arrivals"`
	// ElapsedSec is wall time since submission, frozen at the terminal
	// transition.
	ElapsedSec float64    `json:"elapsed_sec"`
	Error      string     `json:"error,omitempty"`
	Result     *JobResult `json:"result,omitempty"`
}

// View snapshots the job; withResult includes the (possibly large) output
// payload.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:     j.ID,
		Tenant: j.Tenant,
		State:  j.state,
		Path:   j.Path,
		Model:  j.Model,
		Cost:   j.Cost,
		Error:  j.errMsg,
	}
	if j.prog != nil {
		v.Cycle = j.prog.Cycle.Load()
		v.Arrivals = j.prog.Arrivals.Load()
	}
	end := time.Now()
	if j.state.Terminal() {
		end = j.finished
	}
	v.ElapsedSec = end.Sub(j.submitted).Seconds()
	if withResult && j.state.Terminal() {
		v.Result = j.result
	}
	return v
}
