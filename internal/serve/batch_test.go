package serve

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/progs"
	"staticpipe/internal/value"
)

// rot rotates a stream by k — cheap distinct per-lane inputs that keep the
// declared length.
func rot(vs Stream, k int) Stream {
	k = k % len(vs)
	return append(append(Stream(nil), vs[k:]...), vs[:k]...)
}

// batchSpec builds a B-lane submission of p where lane l>0 consumes its
// input streams rotated by l.
func batchSpec(p progs.Program, b int) Spec {
	sp := spec(p)
	sp.Batch = b
	sp.LaneInputs = make([]map[string]Stream, b)
	for l := 1; l < b; l++ {
		m := map[string]Stream{}
		for name, vs := range sp.Inputs {
			m[name] = rot(vs, l)
		}
		sp.LaneInputs[l] = m
	}
	return sp
}

// laneReference computes the interpreter ground truth for lane l of sp.
func laneReference(t *testing.T, sp Spec, l int) map[string][]value.Value {
	t.Helper()
	u, err := core.Compile(sp.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := map[string][]value.Value{}
	for name, vs := range sp.Inputs {
		in[name] = vs
	}
	if l > 0 && l < len(sp.LaneInputs) && sp.LaneInputs[l] != nil {
		for name, vs := range sp.LaneInputs[l] {
			in[name] = vs
		}
	}
	want, err := u.Reference(in)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string][]value.Value{}
	for name, av := range want {
		out[name] = av.Elems
	}
	return out
}

// TestBatchJobBothModels runs a 4-lane job with per-lane inputs through
// both simulator models and checks every lane against the reference
// interpreter on its own streams — plus the lane-0 identity contract
// against a scalar run of the same spec.
func TestBatchJobBothModels(t *testing.T) {
	const b = 4
	p := progs.Fig2(64)
	for _, model := range []string{ModelExec, ModelMachine} {
		t.Run(model, func(t *testing.T) {
			s := newService(t, Config{OffloadThreshold: 1 << 40})
			scalar := spec(p)
			scalar.Model = model
			js, rej := s.Submit(nil, scalar)
			if rej != nil {
				t.Fatalf("scalar rejected: %v", rej)
			}
			sp := batchSpec(p, b)
			sp.Model = model
			jb, rej := s.Submit(nil, sp)
			if rej != nil {
				t.Fatalf("batch rejected: %v", rej)
			}
			await(t, jb, 30*time.Second)
			res := jb.Result()
			if res == nil || jb.State() != StateDone {
				t.Fatalf("batch job state %s, result %v", jb.State(), res)
			}
			if res.Batch != b || len(res.Lanes) != b {
				t.Fatalf("result batch %d with %d lanes, want %d", res.Batch, len(res.Lanes), b)
			}

			// Lane 0 is byte-identical to the scalar run of the same spec.
			sres := js.Result()
			if res.Cycles != sres.Cycles || res.Lanes[0].Cycles != sres.Cycles {
				t.Fatalf("lane 0 cycles %d/%d, scalar run %d", res.Cycles, res.Lanes[0].Cycles, sres.Cycles)
			}
			for name, w := range sres.Outputs {
				g := res.Lanes[0].Outputs[name]
				for i := range w.Values {
					if g.Values[i] != w.Values[i] {
						t.Fatalf("lane 0 %s[%d] = %v, scalar %v", name, i, g.Values[i], w.Values[i])
					}
				}
			}

			// Every lane matches the interpreter on its own inputs.
			for l := 0; l < b; l++ {
				want := laneReference(t, sp, l)
				lv := res.Lanes[l]
				if !lv.Clean || lv.Canceled {
					t.Fatalf("lane %d not clean: %+v", l, lv)
				}
				for name, w := range want {
					g, ok := lv.Outputs[name]
					if !ok || len(g.Values) != len(w) {
						t.Fatalf("lane %d output %s: got %d values, want %d", l, name, len(g.Values), len(w))
					}
					for i := range w {
						if !value.Close(g.Values[i], w[i], 1e-9) {
							t.Fatalf("lane %d %s[%d] = %v, reference %v", l, name, i, g.Values[i], w[i])
						}
					}
				}
			}

			// Admission bills the extra lanes at amortized (quarter) cost,
			// strictly between one scalar run and B independent ones.
			if jb.Cost <= js.Cost || jb.Cost >= int64(b)*js.Cost {
				t.Fatalf("batch cost %d not in (%d, %d)", jb.Cost, js.Cost, int64(b)*js.Cost)
			}
		})
	}
}

// TestBatchSpecValidation pins the 400-level rejections for malformed
// batched submissions.
func TestBatchSpecValidation(t *testing.T) {
	p := progs.Fig2(16)
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"over-limit", func(sp *Spec) { sp.Batch = exec.MaxBatch + 1 },
			fmt.Sprintf("exceeds the %d-lane limit", exec.MaxBatch)},
		{"lanes-without-batch", func(sp *Spec) {
			sp.LaneInputs = []map[string]Stream{nil, {"A": sp.Inputs["A"]}}
		}, "lane_inputs requires batch > 1"},
		{"too-many-lane-sets", func(sp *Spec) {
			sp.Batch = 2
			sp.LaneInputs = make([]map[string]Stream, 3)
		}, "3 lane input sets for 2 lanes"},
		{"unknown-lane-input", func(sp *Spec) {
			sp.Batch = 2
			sp.LaneInputs = []map[string]Stream{nil, {"NOPE": sp.Inputs["A"]}}
		}, "lane 1 binds unknown input NOPE"},
		{"wrong-lane-length", func(sp *Spec) {
			sp.Batch = 2
			sp.LaneInputs = []map[string]Stream{nil, {"A": sp.Inputs["A"][:3]}}
		}, "lane 1 input A has 3 elements, want 16"},
	}
	s := newService(t, Config{OffloadThreshold: 1 << 40})
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sp := spec(p)
			tc.mut(&sp)
			_, rej := s.Submit(nil, sp)
			if rej == nil {
				t.Fatal("malformed batch spec was admitted")
			}
			if rej.Status != http.StatusBadRequest || rej.Reason != ReasonInvalid {
				t.Fatalf("rejection %s/%d, want %s/400", rej.Reason, rej.Status, ReasonInvalid)
			}
			if !strings.Contains(rej.Err.Error(), tc.want) {
				t.Fatalf("rejection %q does not mention %q", rej.Err, tc.want)
			}
		})
	}
}

// TestCostRatioMetric checks that finished jobs feed the estimate-quality
// histogram and that it renders in exposition format.
func TestCostRatioMetric(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: 1 << 40})
	for _, b := range []int{0, 4} {
		sp := spec(progs.Fig2(64))
		sp.Batch = b
		j, rej := s.Submit(nil, sp)
		if rej != nil {
			t.Fatalf("batch=%d rejected: %v", b, rej)
		}
		await(t, j, 30*time.Second)
	}
	var sb strings.Builder
	s.WriteMetrics(&sb)
	out := sb.String()
	if !strings.Contains(out, "# TYPE staticpipe_serve_cost_ratio histogram") {
		t.Fatalf("cost_ratio family missing:\n%s", out)
	}
	if !strings.Contains(out, "staticpipe_serve_cost_ratio_count 2") {
		t.Fatalf("expected 2 cost_ratio observations:\n%s", out)
	}
	if !strings.Contains(out, `staticpipe_serve_cost_ratio_bucket{le="+Inf"} 2`) {
		t.Fatalf("+Inf bucket missing or wrong:\n%s", out)
	}
	s.mu.Lock()
	sum, count := s.costRatio.sum, s.costRatio.count
	s.mu.Unlock()
	if count != 2 || sum <= 0 {
		t.Fatalf("histogram sum %g count %d after two jobs", sum, count)
	}
}
