package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/value"
)

// newHTTPService stands up the full dfserve handler stack — telemetry mux
// with the serve metrics appender, job API registered on top — exactly as
// cmd/dfserve wires it.
func newHTTPService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg.Registry = reg
	s := newService(t, cfg)
	mux := telemetry.NewMux(reg, s.WriteMetrics)
	s.Register(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, sp Spec) (*http.Response, JobView) {
	t.Helper()
	body, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatalf("decoding job view: %v", err)
		}
	}
	return resp, view
}

// TestHTTPFastPathDifferential is the wire-level half of the differential
// pin: a fast-path submission's JSON response must decode to values
// byte-identical to a direct core.Unit.Run — Go's float64 JSON encoding
// is shortest-round-trip, so exact equality is required, not approximate.
func TestHTTPFastPathDifferential(t *testing.T) {
	p := progs.Fig2(128)
	want := directRun(t, p)
	_, ts := newHTTPService(t, Config{OffloadThreshold: 1 << 40})

	resp, view := postJob(t, ts, spec(p))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fast path status %d, want 200", resp.StatusCode)
	}
	if view.State != StateDone || view.Result == nil {
		t.Fatalf("fast-path response not terminal: %+v", view)
	}
	assertMatches(t, view.Result, want, p.Output)
}

// TestHTTPOffloadLifecycle walks the async path over the wire: 202 +
// Location on submit, polls GET /jobs/{id} to done, and checks the final
// result differentially.
func TestHTTPOffloadLifecycle(t *testing.T) {
	p := progs.Fig2(128)
	want := directRun(t, p)
	_, ts := newHTTPService(t, Config{OffloadThreshold: -1})

	resp, view := postJob(t, ts, spec(p))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("offload status %d, want 202", resp.StatusCode)
	}
	loc := resp.Header.Get("Location")
	if loc == "" {
		t.Fatal("202 without a Location header")
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(ts.URL + loc)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", loc, r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if view.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", view.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if view.State != StateDone {
		t.Fatalf("job ended %s: %s", view.State, view.Error)
	}
	assertMatches(t, view.Result, want, p.Output)
}

// TestHTTPRejectionSurfacing: a full queue surfaces as 429 with both the
// Retry-After header and the JSON reason.
func TestHTTPRejectionSurfacing(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: -1, PoolWorkers: 1, QueueDepth: 1})
	long := progs.Fig2(1 << 17)
	// Wedge worker + queue, then overflow.
	postJob(t, ts, spec(long))
	postJob(t, ts, spec(long))
	var overflowed bool
	for i := 0; i < 6 && !overflowed; i++ {
		body, _ := json.Marshal(spec(progs.Fig2(32)))
		resp, err := http.Post(ts.URL+"/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := httpGetBody(resp)
		if resp.StatusCode != http.StatusTooManyRequests {
			continue
		}
		overflowed = true
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After header")
		}
		var eb errorBody
		if err := json.Unmarshal(b, &eb); err != nil || eb.Reason != ReasonQueueFull {
			t.Fatalf("429 body %q (err %v)", b, err)
		}
	}
	if !overflowed {
		t.Fatal("queue depth 1 never overflowed")
	}
	// Unblock: cancel everything so Cleanup can drain.
	cancelAll(t, ts)
}

func httpGetBody(resp *http.Response) ([]byte, error) {
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	resp.Body.Close()
	return buf.Bytes(), err
}

func cancelAll(t *testing.T, ts *httptest.Server) {
	t.Helper()
	r, err := http.Get(ts.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []JobView
	b, _ := httpGetBody(r)
	if err := json.Unmarshal(b, &views); err != nil {
		t.Fatal(err)
	}
	for _, v := range views {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+strconv.FormatInt(v.ID, 10), nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

// TestHTTPCancelEndpoint: DELETE /jobs/{id} cancels a queued job and
// returns its terminal view.
func TestHTTPCancelEndpoint(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: -1, PoolWorkers: 1, QueueDepth: 4})
	postJob(t, ts, spec(progs.Fig2(1<<17))) // wedge the worker
	resp, view := postJob(t, ts, spec(progs.Fig2(32)))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+strconv.FormatInt(view.ID, 10), nil)
	r, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := httpGetBody(r)
	var got JobView
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("canceled job state %s", got.State)
	}
	cancelAll(t, ts)
}

// TestHTTPUnknownJob404s both on garbage and on unknown IDs.
func TestHTTPUnknownJob404s(t *testing.T) {
	_, ts := newHTTPService(t, Config{})
	for _, path := range []string{"/jobs/999999", "/jobs/xyz"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s status %d, want 404", path, r.StatusCode)
		}
	}
}

// TestHTTPEventsStream reads the SSE surface: at least one progress event,
// then a done event carrying the terminal result.
func TestHTTPEventsStream(t *testing.T) {
	p := progs.Fig2(128)
	want := directRun(t, p)
	_, ts := newHTTPService(t, Config{OffloadThreshold: -1, StreamInterval: 5 * time.Millisecond})
	resp, view := postJob(t, ts, spec(p))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}

	r, err := http.Get(ts.URL + "/jobs/" + strconv.FormatInt(view.ID, 10) + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	var progress int
	var final JobView
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := strings.TrimPrefix(line, "data: ")
			if event == "progress" {
				progress++
			}
			if event == "done" {
				if err := json.Unmarshal([]byte(data), &final); err != nil {
					t.Fatalf("done event: %v", err)
				}
			}
		}
		if final.ID != 0 {
			break
		}
	}
	if progress == 0 {
		t.Fatal("stream carried no progress events")
	}
	if final.State != StateDone || final.Result == nil {
		t.Fatalf("done event: %+v", final)
	}
	assertMatches(t, final.Result, want, p.Output)
}

// TestHTTPMetricsIncludesServeFamilies: the combined mux serves both the
// simulation families and the staticpipe_serve_* families on one scrape.
func TestHTTPMetricsIncludesServeFamilies(t *testing.T) {
	_, ts := newHTTPService(t, Config{OffloadThreshold: 1 << 40})
	postJob(t, ts, spec(progs.Fig2(16)))
	r, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := httpGetBody(r)
	body := string(b)
	for _, want := range []string{
		"staticpipe_build_info",
		`staticpipe_serve_submitted_total{tenant="default"} 1`,
		`staticpipe_serve_admitted_total{tenant="default",path="fast"} 1`,
		`staticpipe_serve_jobs_completed_total{tenant="default",state="done"} 1`,
		"staticpipe_serve_queue_capacity",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestStreamJSONRoundTrip pins the wire encoding: reals as plain numbers,
// bools plain, ints tagged — and all three decode back exactly.
func TestStreamJSONRoundTrip(t *testing.T) {
	in := Stream{value.R(1.5), value.R(0.1), value.B(true), value.I(-3)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(b); !strings.HasPrefix(got, "[1.5,0.1,") {
		t.Fatalf("reals not plain numbers: %s", got)
	}
	var out Stream
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		// Ints round-trip through the tagged form and stay ints; reals and
		// bools come back bit-identical.
		if in[i].Kind() == value.Int {
			if out[i] != in[i] {
				t.Fatalf("[%d] %v != %v", i, out[i], in[i])
			}
			continue
		}
		if out[i] != in[i] {
			t.Fatalf("[%d] %v != %v", i, out[i], in[i])
		}
	}
}
