package serve

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"staticpipe/internal/core"
	"staticpipe/internal/exec"
	"staticpipe/internal/progs"
	"staticpipe/internal/telemetry"
	"staticpipe/internal/value"
)

// newService builds a service and tears it down with the test.
func newService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return s
}

// await blocks until the job is terminal or the deadline passes.
func await(t *testing.T, j *Job, d time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %d still %s after %v", j.ID, j.State(), d)
	}
}

func spec(p progs.Program) Spec {
	in := make(map[string]Stream, len(p.Inputs))
	for k, v := range p.Inputs {
		in[k] = v
	}
	return Spec{Source: p.Source, Inputs: in}
}

// directRun is the ground truth the service paths are pinned against.
func directRun(t *testing.T, p progs.Program) *core.RunResult {
	t.Helper()
	u, err := core.Compile(p.Source, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := u.Run(p.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	return rr
}

// TestFastPathMatchesDirectRun pins the differential contract on the fast
// path: a service run is byte-identical to calling core.Unit.Run yourself
// — same values, same cycle count, same initiation interval.
func TestFastPathMatchesDirectRun(t *testing.T) {
	p := progs.Fig2(256)
	want := directRun(t, p)

	s := newService(t, Config{OffloadThreshold: 1 << 40})
	j, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	if j.Path != PathFast {
		t.Fatalf("path %s, want fast", j.Path)
	}
	if got := j.State(); got != StateDone {
		t.Fatalf("fast-path job returned non-terminal state %s", got)
	}
	assertMatches(t, j.Result(), want, p.Output)
}

// TestOffloadPathMatchesDirectRun pins the same contract through the queue
// and worker pool, with the sharded engine driving the simulation.
func TestOffloadPathMatchesDirectRun(t *testing.T) {
	p := progs.Fig2(256)
	want := directRun(t, p)

	s := newService(t, Config{OffloadThreshold: -1, SimWorkers: 4})
	j, rej := s.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	if j.Path != PathOffload {
		t.Fatalf("path %s, want offload", j.Path)
	}
	await(t, j, 30*time.Second)
	if got := j.State(); got != StateDone {
		t.Fatalf("job state %s: %+v", got, j.View(false))
	}
	assertMatches(t, j.Result(), want, p.Output)
}

func assertMatches(t *testing.T, got *JobResult, want *core.RunResult, output string) {
	t.Helper()
	if got == nil {
		t.Fatal("no result")
	}
	if !got.Clean || got.Canceled {
		t.Fatalf("result not clean: %+v", got)
	}
	if got.Cycles != want.Exec.Cycles {
		t.Fatalf("cycles %d, direct run %d", got.Cycles, want.Exec.Cycles)
	}
	g, w := got.Outputs[output], want.Outputs[output]
	if len(g.Values) != len(w.Elems) || g.Lo != w.Lo {
		t.Fatalf("output shape [%d..+%d] vs direct [%d..+%d]", g.Lo, len(g.Values), w.Lo, len(w.Elems))
	}
	for i := range w.Elems {
		if g.Values[i] != w.Elems[i] {
			t.Fatalf("output[%d] = %v, direct %v", i, g.Values[i], w.Elems[i])
		}
	}
	if got.II[output] != want.Exec.II(output) {
		t.Fatalf("II %v, direct %v", got.II[output], want.Exec.II(output))
	}
}

// TestMachineModelRuns covers the packet-level model end to end: the
// service result must match a value-level reference (machine timing
// differs from exec, so only values are compared).
func TestMachineModelRuns(t *testing.T) {
	p := progs.Fig2(64)
	want := directRun(t, p)

	s := newService(t, Config{OffloadThreshold: -1})
	sp := spec(p)
	sp.Model = ModelMachine
	j, rej := s.Submit(nil, sp)
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j, 30*time.Second)
	if got := j.State(); got != StateDone {
		t.Fatalf("job state %s, err %q", got, j.View(false).Error)
	}
	res := j.Result()
	g, w := res.Outputs[p.Output], want.Outputs[p.Output]
	if len(g.Values) != len(w.Elems) {
		t.Fatalf("machine output %d values, want %d", len(g.Values), len(w.Elems))
	}
	for i := range w.Elems {
		if g.Values[i] != w.Elems[i] {
			t.Fatalf("machine output[%d] = %v, want %v", i, g.Values[i], w.Elems[i])
		}
	}
}

// TestQueueOverflowRejects429 pins the bounded-queue contract: with the
// pool wedged, excess submissions reject with 429/queue_full and a
// Retry-After hint — and the admission ledger still reconciles.
func TestQueueOverflowRejects429(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: -1, PoolWorkers: 1, QueueDepth: 2})

	// Wedge the single worker on a long job, then fill the queue.
	long := progs.Fig2(1 << 17)
	blocker, rej := s.Submit(nil, spec(long))
	if rej != nil {
		t.Fatalf("blocker rejected: %v", rej)
	}
	small := progs.Fig2(64)
	var queued []*Job
	var overflowed int
	for i := 0; i < 8; i++ {
		j, rej := s.Submit(nil, spec(small))
		if rej == nil {
			queued = append(queued, j)
			continue
		}
		overflowed++
		if rej.Status != 429 || rej.Reason != ReasonQueueFull {
			t.Fatalf("overflow rejection: status %d reason %s", rej.Status, rej.Reason)
		}
		if rej.RetryAfter <= 0 {
			t.Fatal("queue_full rejection carries no Retry-After hint")
		}
	}
	if overflowed == 0 {
		t.Fatal("queue depth 2 absorbed 8 submissions without overflow")
	}

	sub, adm, rejN := s.Counters("default")
	if sub != 9 || sub != adm+rejN {
		t.Fatalf("ledger: submitted %d admitted %d rejected %d", sub, adm, rejN)
	}

	// Unwedge and drain so Cleanup's Close isn't stuck behind the blocker.
	s.Cancel(blocker.ID)
	await(t, blocker, 30*time.Second)
	for _, j := range queued {
		await(t, j, 30*time.Second)
	}
}

// TestTenantThrottle pins the token bucket: burst admits, the next
// submission rejects as throttled with a Retry-After derived from the
// refill rate, and tenants are isolated from each other.
func TestTenantThrottle(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: 1 << 40, TenantRate: 0.01, TenantBurst: 2})
	p := spec(progs.Fig2(16))
	p.Tenant = "alice"
	for i := 0; i < 2; i++ {
		if _, rej := s.Submit(nil, p); rej != nil {
			t.Fatalf("burst submission %d rejected: %v", i, rej)
		}
	}
	_, rej := s.Submit(nil, p)
	if rej == nil {
		t.Fatal("third submission admitted past burst 2")
	}
	if rej.Status != 429 || rej.Reason != ReasonThrottled {
		t.Fatalf("throttle rejection: status %d reason %s", rej.Status, rej.Reason)
	}
	if rej.RetryAfter < 1 {
		t.Fatalf("Retry-After %d, want >= 1s at 0.01 jobs/sec", rej.RetryAfter)
	}
	// Another tenant's bucket is untouched.
	p.Tenant = "bob"
	if _, rej := s.Submit(nil, p); rej != nil {
		t.Fatalf("other tenant throttled: %v", rej)
	}
}

// TestCancelQueuedJob: canceling a job the pool never picked up must
// transition it straight to canceled, with no result.
func TestCancelQueuedJob(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: -1, PoolWorkers: 1, QueueDepth: 8})
	blocker, rej := s.Submit(nil, spec(progs.Fig2(1<<17)))
	if rej != nil {
		t.Fatalf("blocker rejected: %v", rej)
	}
	victim, rej := s.Submit(nil, spec(progs.Fig2(64)))
	if rej != nil {
		t.Fatalf("victim rejected: %v", rej)
	}
	if _, ok := s.Cancel(victim.ID); !ok {
		t.Fatal("Cancel did not find the queued job")
	}
	await(t, victim, time.Second)
	if st := victim.State(); st != StateCanceled {
		t.Fatalf("canceled queued job in state %s", st)
	}
	if victim.Result() != nil {
		t.Fatal("never-started job has a result")
	}
	s.Cancel(blocker.ID)
	await(t, blocker, 30*time.Second)
}

// TestCancelRunningJobReturnsPartial pins the in-flight cancellation
// contract: the job goes terminal promptly (the simulator polls its
// context every CancelCadence cycles) and hands back the partial result.
func TestCancelRunningJobReturnsPartial(t *testing.T) {
	n := 1 << 19
	s := newService(t, Config{OffloadThreshold: -1, PoolWorkers: 1})
	j, rej := s.Submit(nil, spec(progs.Fig2(n)))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.State() == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Cancel(j.ID)
	await(t, j, 10*time.Second)
	if st := j.State(); st != StateCanceled {
		if st == StateDone {
			t.Skipf("job finished before the cancel landed (machine too fast for n=%d)", n)
		}
		t.Fatalf("canceled running job in state %s", st)
	}
	res := j.Result()
	if res == nil || !res.Canceled {
		t.Fatalf("canceled job result: %+v", res)
	}
	if len(res.Stalled) == 0 || !strings.HasPrefix(res.Stalled[0], "canceled:") {
		t.Fatalf("canceled result lacks the canceled diagnostic: %v", res.Stalled)
	}
	if got := len(res.Outputs["Y"].Values); got >= n {
		t.Fatalf("canceled run produced the full output (%d values)", got)
	}
	// Partial values must be a prefix of the true output.
	want := directRun(t, progs.Fig2(n))
	for i, v := range res.Outputs["Y"].Values {
		if v != want.Outputs["Y"].Elems[i] {
			t.Fatalf("partial output[%d] = %v, direct %v", i, v, want.Outputs["Y"].Elems[i])
		}
	}
}

// TestEviction pins the bounded result store: per tenant, only the newest
// KeepFinished terminal jobs stay retrievable; evictions are counted.
func TestEviction(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: 1 << 40, KeepFinished: 2})
	p := spec(progs.Fig2(16))
	p.Tenant = "hoarder"
	var ids []int64
	for i := 0; i < 5; i++ {
		j, rej := s.Submit(nil, p)
		if rej != nil {
			t.Fatalf("submission %d rejected: %v", i, rej)
		}
		ids = append(ids, j.ID)
	}
	if got := len(s.List("hoarder")); got != 2 {
		t.Fatalf("tracking %d jobs, want 2", got)
	}
	for _, id := range ids[:3] {
		if s.Get(id) != nil {
			t.Fatalf("job %d not evicted", id)
		}
	}
	for _, id := range ids[3:] {
		if s.Get(id) == nil {
			t.Fatalf("recent job %d evicted", id)
		}
	}
	var b strings.Builder
	s.WriteMetrics(&b)
	if !strings.Contains(b.String(), `staticpipe_serve_evicted_total{tenant="hoarder"} 3`) {
		t.Fatalf("eviction counter missing or wrong:\n%s", b.String())
	}
	// Other tenants are unaffected by hoarder's eviction pressure.
	q := spec(progs.Fig2(16))
	q.Tenant = "frugal"
	j, _ := s.Submit(nil, q)
	if s.Get(j.ID) == nil {
		t.Fatal("frugal tenant's job evicted by hoarder's history")
	}
}

// TestInvalidSpecRejects400 covers the three client-error classes: parse
// failure, unknown model, bad input binding.
func TestInvalidSpecRejects400(t *testing.T) {
	s := newService(t, Config{})
	cases := []Spec{
		{Source: "this is not val"},
		{Source: progs.Fig2(8).Source, Model: "quantum"},
		{Source: progs.Fig2(8).Source, Inputs: map[string]Stream{"nope": value.Reals([]float64{1})}},
	}
	for i, sp := range cases {
		_, rej := s.Submit(nil, sp)
		if rej == nil {
			t.Fatalf("case %d admitted", i)
		}
		if rej.Status != 400 || rej.Reason != ReasonInvalid {
			t.Fatalf("case %d: status %d reason %s", i, rej.Status, rej.Reason)
		}
	}
	if sub, adm, rejN := s.Counters("default"); sub != 3 || adm != 0 || rejN != 3 {
		t.Fatalf("ledger: submitted %d admitted %d rejected %d", sub, adm, rejN)
	}
}

// TestSubmitAfterCloseRejectsShutdown: a draining service turns
// submissions away with 503 and still reconciles its ledger.
func TestSubmitAfterCloseRejectsShutdown(t *testing.T) {
	s := New(Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatal(err)
	}
	_, rej := s.Submit(nil, spec(progs.Fig2(8)))
	if rej == nil || rej.Status != 503 || rej.Reason != ReasonShutdown {
		t.Fatalf("rejection: %+v", rej)
	}
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestTelemetryRunsRegistered: executing jobs appear in the telemetry
// registry under tenant/j<id> and are finished with the job.
func TestTelemetryRunsRegistered(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := newService(t, Config{OffloadThreshold: 1 << 40, Registry: reg})
	p := spec(progs.Fig2(32))
	p.Tenant = "obs"
	j, rej := s.Submit(nil, p)
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	runs := reg.Runs()
	if len(runs) != 1 {
		t.Fatalf("%d telemetry runs, want 1", len(runs))
	}
	info := runs[0].Info()
	want := fmt.Sprintf("obs/j%d", j.ID)
	if info.Label != want {
		t.Fatalf("run label %q, want %q", info.Label, want)
	}
	if info.State != telemetry.StateDone {
		t.Fatalf("run state %v after job completion", info.State)
	}
}

// TestCostEstimateOrdering sanity-checks the admission cost model: more
// data and more cells must both raise the estimate, and the estimate is
// capped by the cycle bound.
func TestCostEstimateOrdering(t *testing.T) {
	mk := func(p progs.Program, maxCycles int) int64 {
		u, err := core.Compile(p.Source, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sp := spec(p)
		sp.MaxCycles = maxCycles
		cost, _ := estimateCost(u.Artifact(), sp)
		return cost
	}
	small := mk(progs.Fig2(16), exec.DefaultMaxCycles)
	big := mk(progs.Fig2(4096), exec.DefaultMaxCycles)
	if big <= small {
		t.Fatalf("cost(4096)=%d <= cost(16)=%d", big, small)
	}
	capped := mk(progs.Fig2(4096), 8)
	if capped >= big {
		t.Fatalf("cycle cap did not bound the estimate: %d >= %d", capped, big)
	}
}
