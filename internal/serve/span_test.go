package serve

import (
	"strings"
	"testing"
	"time"

	"staticpipe/internal/obs"
	"staticpipe/internal/progs"
)

// treeOf waits for the job's tree and snapshots it.
func treeOf(t *testing.T, j *Job) *obs.SpanJSON {
	t.Helper()
	snap := j.SpanTree().Snapshot()
	if snap == nil {
		t.Fatalf("job %d has no span tree", j.ID)
	}
	return snap
}

// TestFastPathSpanTree pins the span-tree shape of an inline job:
// job → admission + run, no queue.wait, root closed with correct label,
// duration consistent with the job's own elapsed clock.
func TestFastPathSpanTree(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: 1 << 40})
	j, rej := s.Submit(nil, spec(progs.Fig2(128)))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	root := treeOf(t, j)
	if root.Kind != obs.KindJob || root.Open {
		t.Fatalf("root = kind %s open=%v", root.Kind, root.Open)
	}
	if want := j.View(false); want.ID != 0 && !strings.HasSuffix(root.Name, "j1") {
		t.Fatalf("root name %q, want tenant/j1", root.Name)
	}
	if root.Attrs["state"] != string(StateDone) {
		t.Fatalf("root state attr = %v", root.Attrs)
	}
	adm := root.Find(obs.KindAdmission)
	if adm == nil || adm.Open {
		t.Fatalf("admission span = %+v", adm)
	}
	if adm.Attrs["path"] != PathFast || adm.Attrs["cost"] != j.Cost {
		t.Fatalf("admission attrs = %v (cost %d)", adm.Attrs, j.Cost)
	}
	if qs := root.Find(obs.KindQueueWait); qs != nil {
		t.Fatalf("fast-path job has a queue.wait span: %+v", qs)
	}
	run := root.Find(obs.KindRun)
	if run == nil || run.Open || run.Name != ModelExec {
		t.Fatalf("run span = %+v", run)
	}
	for _, k := range []string{"cells", "arcs", "cycles", "clean", "cost_ratio"} {
		if run.Attrs[k] == nil {
			t.Fatalf("run span missing %q: %v", k, run.Attrs)
		}
	}
	// Root duration tracks the job's wall clock.
	elapsed := j.View(false).ElapsedSec
	if root.DurSec <= 0 || root.DurSec > elapsed+0.25 {
		t.Fatalf("root duration %.4fs vs job elapsed %.4fs", root.DurSec, elapsed)
	}
}

// TestOffloadSpanTreeHasShards pins the offloaded sharded shape: a
// queue.wait child between admission and run, and one shard child per
// engine worker under run.
func TestOffloadSpanTreeHasShards(t *testing.T) {
	s := newService(t, Config{OffloadThreshold: -1, SimWorkers: 4})
	j, rej := s.Submit(nil, spec(progs.Fig2(256)))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	await(t, j, 30*time.Second)
	root := treeOf(t, j)
	qs := root.Find(obs.KindQueueWait)
	if qs == nil || qs.Open {
		t.Fatalf("queue.wait span = %+v", qs)
	}
	run := root.Find(obs.KindRun)
	if run == nil || run.Open {
		t.Fatalf("run span = %+v", run)
	}
	var shards int
	for _, c := range run.Children {
		if c.Kind == obs.KindShard {
			shards++
			if c.Attrs["firings"] == nil || c.Attrs["barrier_wait_ns"] == nil {
				t.Fatalf("shard attrs = %v", c.Attrs)
			}
		}
	}
	if shards != 4 {
		t.Fatalf("shard children = %d, want 4", shards)
	}
	// Phase spans are ordered admission → queue.wait → run.
	kinds := make([]string, len(root.Children))
	for i, c := range root.Children {
		kinds[i] = c.Kind
	}
	want := []string{obs.KindAdmission, obs.KindQueueWait, obs.KindRun}
	if strings.Join(kinds, ",") != strings.Join(want, ",") {
		t.Fatalf("phase order = %v, want %v", kinds, want)
	}
}

// TestBatchedSpanTreeHasLanes pins per-lane children on batched jobs.
func TestBatchedSpanTreeHasLanes(t *testing.T) {
	p := progs.Fig2(64)
	sp := spec(p)
	sp.Batch = 4
	s := newService(t, Config{OffloadThreshold: 1 << 40})
	j, rej := s.Submit(nil, sp)
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	run := treeOf(t, j).Find(obs.KindRun)
	if run == nil {
		t.Fatal("no run span")
	}
	var lanes int
	for _, c := range run.Children {
		if c.Kind == obs.KindLane {
			lanes++
		}
	}
	if lanes != 4 {
		t.Fatalf("lane children = %d, want 4", lanes)
	}
}

// TestFlightRecordsJobAndAdmission checks the always-on recorder sees the
// tree and the admission decision without any per-job opt-in.
func TestFlightRecordsJobAndAdmission(t *testing.T) {
	fl := obs.NewFlight(0, 0, 0)
	s := newService(t, Config{OffloadThreshold: 1 << 40, Flight: fl})
	j, rej := s.Submit(nil, spec(progs.Fig2(64)))
	if rej != nil {
		t.Fatalf("rejected: %v", rej)
	}
	d := fl.Dump()
	if len(d.Spans) != 1 || d.Spans[0].Kind != obs.KindJob {
		t.Fatalf("flight spans = %+v", d.Spans)
	}
	if len(d.Admissions) != 1 || d.Admissions[0].JobID != j.ID || d.Admissions[0].Decision != PathFast {
		t.Fatalf("flight admissions = %+v", d.Admissions)
	}
	// A rejected submission leaves an admission record too.
	if _, rej := s.Submit(nil, Spec{Source: "not a program"}); rej == nil {
		t.Fatal("bad source admitted")
	}
	d = fl.Dump()
	if len(d.Admissions) != 2 || d.Admissions[1].Decision != "rejected:"+ReasonInvalid {
		t.Fatalf("flight admissions after reject = %+v", d.Admissions)
	}
}

// TestSLOObservedOnCompletion checks that a clean run feeds every
// applicable objective and the verdict stays ok.
func TestSLOObservedOnCompletion(t *testing.T) {
	slo := DefaultSLOs()
	s := newService(t, Config{OffloadThreshold: 1 << 40, SLO: slo})
	for i := 0; i < 4; i++ {
		if _, rej := s.Submit(nil, spec(progs.Fig2(64))); rej != nil {
			t.Fatalf("rejected: %v", rej)
		}
	}
	byName := map[string]obs.SLOStatus{}
	for _, st := range slo.Evaluate() {
		byName[st.Name] = st
	}
	for _, name := range []string{SLOQueueWait, SLOJobErrors, SLOCostModel, SLOStallFree} {
		st, ok := byName[name]
		if !ok {
			t.Fatalf("objective %s missing", name)
		}
		if st.GoodTotal == 0 || st.BadTotal != 0 {
			t.Fatalf("%s totals = %d good / %d bad", name, st.GoodTotal, st.BadTotal)
		}
	}
	if v := slo.Verdict(); v != "slo: ok" {
		t.Fatalf("verdict = %q", v)
	}
}

// TestSLOBurnsUnderSaturation pins the degraded path: queue waits past the
// bound classify bad, and sustained bad traffic trips the greppable
// burning verdict while the flight recorder holds the offending trees.
func TestSLOBurnsUnderSaturation(t *testing.T) {
	slo := DefaultSLOs()
	fl := obs.NewFlight(0, 0, 0)
	s := newService(t, Config{
		OffloadThreshold: -1, PoolWorkers: 1, QueueDepth: 64,
		SLO: slo, Flight: fl,
		SLOQueueWaitMax: time.Nanosecond, // every queue wait classifies bad
	})
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, rej := s.Submit(nil, spec(progs.Fig2(64)))
		if rej != nil {
			t.Fatalf("rejected: %v", rej)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		await(t, j, 30*time.Second)
	}
	v := slo.Verdict()
	if !strings.Contains(v, "slo: burning") || !strings.Contains(v, SLOQueueWait) {
		t.Fatalf("verdict = %q, want burning %s", v, SLOQueueWait)
	}
	if d := fl.Dump(); len(d.Spans) != len(jobs) {
		t.Fatalf("flight holds %d trees, want %d", len(d.Spans), len(jobs))
	}
}

// TestSpanRecordingDoesNotPerturbResults pins the service-level
// zero-perturbation bound: the same spec through a span/flight/SLO-laden
// service yields byte-identical simulation results to a bare one.
func TestSpanRecordingDoesNotPerturbResults(t *testing.T) {
	p := progs.Fig2(256)
	bare := newService(t, Config{OffloadThreshold: -1, SimWorkers: 4})
	laden := newService(t, Config{OffloadThreshold: -1, SimWorkers: 4,
		Flight: obs.NewFlight(0, 0, 0), SLO: DefaultSLOs()})
	jb, rej := bare.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("bare rejected: %v", rej)
	}
	jl, rej := laden.Submit(nil, spec(p))
	if rej != nil {
		t.Fatalf("laden rejected: %v", rej)
	}
	await(t, jb, 30*time.Second)
	await(t, jl, 30*time.Second)
	rb, rl := jb.Result(), jl.Result()
	if rb == nil || rl == nil {
		t.Fatal("missing results")
	}
	if rb.Cycles != rl.Cycles || rb.Clean != rl.Clean {
		t.Fatalf("cycles/clean diverged: %d/%v vs %d/%v", rb.Cycles, rb.Clean, rl.Cycles, rl.Clean)
	}
	gb, gl := rb.Outputs[p.Output], rl.Outputs[p.Output]
	if len(gb.Values) != len(gl.Values) {
		t.Fatalf("output lengths diverged: %d vs %d", len(gb.Values), len(gl.Values))
	}
	for i := range gb.Values {
		if gb.Values[i] != gl.Values[i] {
			t.Fatalf("output[%d] diverged: %v vs %v", i, gb.Values[i], gl.Values[i])
		}
	}
}

// TestFlightDumpDuringActiveRuns races flight dumps against live traffic —
// the ci.sh race pin for the recorder's locking discipline.
func TestFlightDumpDuringActiveRuns(t *testing.T) {
	fl := obs.NewFlight(8, 32, 8)
	s := newService(t, Config{OffloadThreshold: -1, SimWorkers: 2, Flight: fl, SLO: DefaultSLOs()})
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				fl.Dump()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, rej := s.Submit(nil, spec(progs.Fig2(128)))
		if rej != nil {
			t.Fatalf("rejected: %v", rej)
		}
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		await(t, j, 30*time.Second)
	}
	close(stop)
	if d := fl.Dump(); len(d.Spans) == 0 {
		t.Fatal("no trees recorded")
	}
}
