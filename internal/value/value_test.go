package value

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{Int: "integer", Real: "real", Bool: "boolean", Invalid: "invalid"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if v := I(42); v.Kind() != Int || v.AsInt() != 42 || !v.Valid() {
		t.Errorf("I(42) broken: %v", v)
	}
	if v := R(2.5); v.Kind() != Real || v.AsReal() != 2.5 {
		t.Errorf("R(2.5) broken: %v", v)
	}
	if v := B(true); v.Kind() != Bool || !v.AsBool() {
		t.Errorf("B(true) broken: %v", v)
	}
	var zero Value
	if zero.Valid() {
		t.Error("zero Value should be invalid")
	}
}

func TestIntPromotesToRealInAsReal(t *testing.T) {
	if I(3).AsReal() != 3.0 {
		t.Error("AsReal should promote Int")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { R(1).AsInt() },
		func() { B(true).AsReal() },
		func() { I(1).AsBool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestArithmetic(t *testing.T) {
	if Add(I(2), I(3)).AsInt() != 5 {
		t.Error("int add")
	}
	if Add(I(2), R(3.5)).AsReal() != 5.5 {
		t.Error("mixed add should promote to real")
	}
	if Sub(R(2), R(3)).AsReal() != -1 {
		t.Error("real sub")
	}
	if Mul(I(4), I(5)).AsInt() != 20 {
		t.Error("int mul")
	}
	if Div(I(7), I(2)).AsInt() != 3 {
		t.Error("int div truncates")
	}
	if Div(R(1), R(4)).AsReal() != 0.25 {
		t.Error("real div")
	}
	if Neg(I(3)).AsInt() != -3 || Neg(R(2)).AsReal() != -2 {
		t.Error("neg")
	}
	if Abs(I(-3)).AsInt() != 3 || Abs(R(-2)).AsReal() != 2 || Abs(I(4)).AsInt() != 4 {
		t.Error("abs")
	}
	if Min(I(2), I(5)).AsInt() != 2 || Max(R(2), I(5)).AsReal() != 5 {
		t.Error("min/max")
	}
}

func TestDivByZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("integer division by zero should panic")
		}
	}()
	Div(I(1), I(0))
}

func TestRealDivByZeroIEEE(t *testing.T) {
	if !math.IsInf(Div(R(1), R(0)).AsReal(), 1) {
		t.Error("real division by zero should yield +Inf")
	}
}

func TestArithmeticTypePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("add of booleans should panic")
		}
	}()
	Add(B(true), B(false))
}

func TestRelational(t *testing.T) {
	if !LT(I(1), I(2)).AsBool() || LT(I(2), I(2)).AsBool() {
		t.Error("LT")
	}
	if !LE(I(2), I(2)).AsBool() || LE(I(3), I(2)).AsBool() {
		t.Error("LE")
	}
	if !GT(R(2.5), I(2)).AsBool() {
		t.Error("GT mixed")
	}
	if !GE(I(2), I(2)).AsBool() {
		t.Error("GE")
	}
	if !EQ(I(2), R(2)).AsBool() {
		t.Error("EQ mixed int/real")
	}
	if !NE(I(2), I(3)).AsBool() || NE(I(2), I(2)).AsBool() {
		t.Error("NE")
	}
	if !EQ(B(true), B(true)).AsBool() || EQ(B(true), B(false)).AsBool() {
		t.Error("EQ bool")
	}
}

func TestBooleanOps(t *testing.T) {
	if !And(B(true), B(true)).AsBool() || And(B(true), B(false)).AsBool() {
		t.Error("And")
	}
	if !Or(B(false), B(true)).AsBool() || Or(B(false), B(false)).AsBool() {
		t.Error("Or")
	}
	if !Not(B(false)).AsBool() || Not(B(true)).AsBool() {
		t.Error("Not")
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{I(7), "7"}, {R(2.5), "2.5"}, {B(true), "true"}, {B(false), "false"}, {Value{}, "<invalid>"},
	}
	for _, c := range cases {
		if c.v.String() != c.want {
			t.Errorf("%v.String() = %q, want %q", c.v, c.v.String(), c.want)
		}
	}
}

func TestEqual(t *testing.T) {
	if !Equal(I(1), I(1)) || Equal(I(1), I(2)) || Equal(I(1), R(1)) {
		t.Error("Equal")
	}
	if !Equal(B(true), B(true)) || Equal(B(true), B(false)) {
		t.Error("Equal bool")
	}
	if !Equal(Value{}, Value{}) {
		t.Error("invalid values compare equal")
	}
}

func TestClose(t *testing.T) {
	if !Close(R(1), R(1+1e-13), 1e-9) {
		t.Error("Close should accept tiny relative error")
	}
	if Close(R(1), R(1.1), 1e-9) {
		t.Error("Close should reject large error")
	}
	if !Close(I(2), R(2+1e-13), 1e-9) {
		t.Error("Close should promote ints")
	}
	if Close(B(true), R(1), 1e-9) {
		t.Error("Close must not conflate bool and real")
	}
	if !Close(I(5), I(5), 0) || Close(I(5), I(6), 1) {
		t.Error("int Close is exact")
	}
}

func TestCloseSlices(t *testing.T) {
	a := Reals([]float64{1, 2, 3})
	b := Reals([]float64{1, 2, 3 + 1e-14})
	if !CloseSlices(a, b, 1e-9) {
		t.Error("CloseSlices should accept")
	}
	if CloseSlices(a, b[:2], 1e-9) {
		t.Error("length mismatch must fail")
	}
	b[1] = R(9)
	if CloseSlices(a, b, 1e-9) {
		t.Error("value mismatch must fail")
	}
}

func TestConversionHelpers(t *testing.T) {
	vs := Reals([]float64{1.5, 2.5})
	if len(vs) != 2 || vs[1].AsReal() != 2.5 {
		t.Error("Reals")
	}
	is := Ints([]int64{3, 4})
	if is[0].AsInt() != 3 {
		t.Error("Ints")
	}
	bs := Bools([]bool{true, false})
	if !bs[0].AsBool() || bs[1].AsBool() {
		t.Error("Bools")
	}
	fs := Floats(vs)
	if fs[0] != 1.5 {
		t.Error("Floats")
	}
}

// Property: arithmetic on Int values agrees with native int64 arithmetic.
func TestQuickIntArithmetic(t *testing.T) {
	f := func(a, b int64) bool {
		if Add(I(a), I(b)).AsInt() != a+b {
			return false
		}
		if Sub(I(a), I(b)).AsInt() != a-b {
			return false
		}
		if Mul(I(a), I(b)).AsInt() != a*b {
			return false
		}
		return LT(I(a), I(b)).AsBool() == (a < b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: comparison trichotomy on reals (excluding NaN).
func TestQuickRealTrichotomy(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lt := LT(R(a), R(b)).AsBool()
		gt := GT(R(a), R(b)).AsBool()
		eq := EQ(R(a), R(b)).AsBool()
		n := 0
		for _, v := range []bool{lt, gt, eq} {
			if v {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Close is reflexive and symmetric.
func TestQuickCloseSymmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if !Close(R(a), R(a), 0) {
			return false
		}
		return Close(R(a), R(b), 1e-9) == Close(R(b), R(a), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	cases := []Value{I(42), I(-7), R(2.5), R(-1e-9), B(true), B(false), {}}
	for _, v := range cases {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !Equal(v, back) {
			t.Errorf("round trip %v -> %s -> %v", v, data, back)
		}
	}
}

func TestJSONErrors(t *testing.T) {
	bad := []string{
		`{"k":"int"}`, `{"k":"real"}`, `{"k":"bool"}`, `{"k":"martian"}`, `17`,
	}
	for _, s := range bad {
		var v Value
		if err := json.Unmarshal([]byte(s), &v); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

// Property: every valid value survives a JSON round trip exactly.
func TestQuickJSONRoundTrip(t *testing.T) {
	f := func(i int64, r float64, b bool, pick uint8) bool {
		if math.IsNaN(r) || math.IsInf(r, 0) {
			return true // JSON cannot carry these; simulator never produces them from finite inputs
		}
		var v Value
		switch pick % 3 {
		case 0:
			v = I(i)
		case 1:
			v = R(r)
		default:
			v = B(b)
		}
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		var back Value
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		return Equal(v, back)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
