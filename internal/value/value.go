// Package value defines the scalar values that flow through static dataflow
// instruction graphs: integers, reals, and booleans, mirroring the scalar
// types of the Val subset used in Dennis & Gao, "Maximum Pipelining of Array
// Operations on Static Data Flow Machine" (CSG Memo 233).
//
// A Value is a small immutable tagged union. Arithmetic follows Val's rules
// for the subset: integer operators stay in the integer domain, real
// operators in the real domain, and mixed int/real arithmetic promotes to
// real (the paper's examples freely mix integer literals with real arrays).
package value

import (
	"encoding/json"
	"fmt"
	"math"
)

// Kind discriminates the scalar domains of the Val subset.
type Kind uint8

const (
	// Invalid is the zero Kind; operations on it panic. A zero Value is
	// deliberately unusable so that uninitialized operands are caught early.
	Invalid Kind = iota
	// Int is Val's integer type (index arithmetic, loop counters).
	Int
	// Real is Val's real type, modeled as float64.
	Real
	// Bool is Val's boolean type (gate and merge control values).
	Bool
)

// String returns the Val name of the kind.
func (k Kind) String() string {
	switch k {
	case Int:
		return "integer"
	case Real:
		return "real"
	case Bool:
		return "boolean"
	default:
		return "invalid"
	}
}

// Value is a scalar datum carried by one result packet. The zero Value is
// invalid; construct values with I, R, and B.
type Value struct {
	kind Kind
	i    int64
	r    float64
	b    bool
}

// I returns an integer value.
func I(v int64) Value { return Value{kind: Int, i: v} }

// R returns a real value.
func R(v float64) Value { return Value{kind: Real, r: v} }

// B returns a boolean value.
func B(v bool) Value { return Value{kind: Bool, b: v} }

// Kind reports the value's scalar domain.
func (v Value) Kind() Kind { return v.kind }

// Valid reports whether the value has been initialized.
func (v Value) Valid() bool { return v.kind != Invalid }

// AsInt returns the integer payload; it panics if the value is not an Int.
func (v Value) AsInt() int64 {
	if v.kind != Int {
		panic(fmt.Sprintf("value: AsInt on %s value", v.kind))
	}
	return v.i
}

// AsReal returns the real payload, converting an Int if necessary; it panics
// on booleans and invalid values.
func (v Value) AsReal() float64 {
	switch v.kind {
	case Real:
		return v.r
	case Int:
		return float64(v.i)
	default:
		panic(fmt.Sprintf("value: AsReal on %s value", v.kind))
	}
}

// AsBool returns the boolean payload; it panics if the value is not a Bool.
func (v Value) AsBool() bool {
	if v.kind != Bool {
		panic(fmt.Sprintf("value: AsBool on %s value", v.kind))
	}
	return v.b
}

// String renders the value in Val literal syntax.
func (v Value) String() string {
	switch v.kind {
	case Int:
		return fmt.Sprintf("%d", v.i)
	case Real:
		return fmt.Sprintf("%g", v.r)
	case Bool:
		if v.b {
			return "true"
		}
		return "false"
	default:
		return "<invalid>"
	}
}

// numeric reports whether v is Int or Real.
func (v Value) numeric() bool { return v.kind == Int || v.kind == Real }

// binaryNumeric applies fi/fr after the usual promotion: Int op Int stays
// Int, otherwise both operands promote to Real. Callers on hot paths check
// the all-Real case inline first — the closure indirection here is
// measurable at simulator firing rates.
func binaryNumeric(a, b Value, op string, fi func(int64, int64) int64, fr func(float64, float64) float64) Value {
	if !a.numeric() || !b.numeric() {
		panic(fmt.Sprintf("value: %s on %s and %s", op, a.kind, b.kind))
	}
	if a.kind == Int && b.kind == Int {
		return I(fi(a.i, b.i))
	}
	return R(fr(a.AsReal(), b.AsReal()))
}

// Add returns a+b under Val promotion rules. The all-Real case is inline
// (simulator firing loops hit it once per token per lane); promotion and
// type errors live in the outlined slow path.
func Add(a, b Value) Value {
	if a.kind == Real && b.kind == Real {
		a.r += b.r
		return a
	}
	return addSlow(a, b)
}

func addSlow(a, b Value) Value {
	return binaryNumeric(a, b, "add", func(x, y int64) int64 { return x + y }, func(x, y float64) float64 { return x + y })
}

// Sub returns a-b under Val promotion rules.
func Sub(a, b Value) Value {
	if a.kind == Real && b.kind == Real {
		a.r -= b.r
		return a
	}
	return subSlow(a, b)
}

func subSlow(a, b Value) Value {
	return binaryNumeric(a, b, "sub", func(x, y int64) int64 { return x - y }, func(x, y float64) float64 { return x - y })
}

// Mul returns a*b under Val promotion rules.
func Mul(a, b Value) Value {
	if a.kind == Real && b.kind == Real {
		a.r *= b.r
		return a
	}
	return mulSlow(a, b)
}

func mulSlow(a, b Value) Value {
	return binaryNumeric(a, b, "mul", func(x, y int64) int64 { return x * y }, func(x, y float64) float64 { return x * y })
}

// Div returns a/b. Integer division truncates toward zero as in Val;
// division by integer zero panics (the simulator treats it as a program
// error), while real division follows IEEE semantics.
func Div(a, b Value) Value {
	return binaryNumeric(a, b, "div",
		func(x, y int64) int64 {
			if y == 0 {
				panic("value: integer division by zero")
			}
			return x / y
		},
		func(x, y float64) float64 { return x / y })
}

// Neg returns the arithmetic negation of a numeric value.
func Neg(a Value) Value {
	switch a.kind {
	case Int:
		return I(-a.i)
	case Real:
		return R(-a.r)
	default:
		panic(fmt.Sprintf("value: neg on %s", a.kind))
	}
}

// Abs returns the absolute value of a numeric value.
func Abs(a Value) Value {
	switch a.kind {
	case Int:
		if a.i < 0 {
			return I(-a.i)
		}
		return a
	case Real:
		return R(math.Abs(a.r))
	default:
		panic(fmt.Sprintf("value: abs on %s", a.kind))
	}
}

// Min returns the smaller of two numeric values under Val promotion rules.
func Min(a, b Value) Value {
	return binaryNumeric(a, b, "min",
		func(x, y int64) int64 { return min(x, y) },
		func(x, y float64) float64 { return math.Min(x, y) })
}

// Max returns the larger of two numeric values under Val promotion rules.
func Max(a, b Value) Value {
	return binaryNumeric(a, b, "max",
		func(x, y int64) int64 { return max(x, y) },
		func(x, y float64) float64 { return math.Max(x, y) })
}

// compare returns -1, 0, or +1 comparing numeric values after promotion.
func compare(a, b Value, op string) int {
	if !a.numeric() || !b.numeric() {
		panic(fmt.Sprintf("value: %s on %s and %s", op, a.kind, b.kind))
	}
	if a.kind == Int && b.kind == Int {
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	x, y := a.AsReal(), b.AsReal()
	switch {
	case x < y:
		return -1
	case x > y:
		return 1
	default:
		return 0
	}
}

// LT returns the boolean a < b.
func LT(a, b Value) Value { return B(compare(a, b, "lt") < 0) }

// LE returns the boolean a <= b.
func LE(a, b Value) Value { return B(compare(a, b, "le") <= 0) }

// GT returns the boolean a > b.
func GT(a, b Value) Value { return B(compare(a, b, "gt") > 0) }

// GE returns the boolean a >= b.
func GE(a, b Value) Value { return B(compare(a, b, "ge") >= 0) }

// EQ returns the boolean a = b. Booleans compare with booleans; numeric
// values compare after promotion.
func EQ(a, b Value) Value {
	if a.kind == Bool && b.kind == Bool {
		return B(a.b == b.b)
	}
	return B(compare(a, b, "eq") == 0)
}

// NE returns the boolean a ≠ b.
func NE(a, b Value) Value {
	eq := EQ(a, b)
	return B(!eq.b)
}

// And returns the boolean conjunction.
func And(a, b Value) Value { return B(a.AsBool() && b.AsBool()) }

// Or returns the boolean disjunction.
func Or(a, b Value) Value { return B(a.AsBool() || b.AsBool()) }

// Not returns the boolean negation.
func Not(a Value) Value { return B(!a.AsBool()) }

// Equal reports exact equality of kind and payload.
func Equal(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case Int:
		return a.i == b.i
	case Real:
		return a.r == b.r
	case Bool:
		return a.b == b.b
	default:
		return true
	}
}

// Close reports whether two values are equal, comparing reals within a
// relative/absolute tolerance. Reassociated floating-point pipelines (the
// companion-function transformation reorders multiplies) produce values that
// differ in the last bits; Close is the comparison the test suite uses for
// cross-checking pipelined against sequential evaluation.
func Close(a, b Value, tol float64) bool {
	if a.kind == Bool || b.kind == Bool || a.kind == Invalid || b.kind == Invalid {
		return Equal(a, b)
	}
	if a.kind == Int && b.kind == Int {
		return a.i == b.i
	}
	x, y := a.AsReal(), b.AsReal()
	if x == y {
		return true
	}
	diff := math.Abs(x - y)
	scale := math.Max(math.Abs(x), math.Abs(y))
	return diff <= tol || diff <= tol*scale
}

// CloseSlices reports element-wise Close over two streams of equal length.
func CloseSlices(a, b []Value, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !Close(a[i], b[i], tol) {
			return false
		}
	}
	return true
}

// Reals converts a float64 slice into a Real value stream.
func Reals(xs []float64) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = R(x)
	}
	return out
}

// Ints converts an int64 slice into an Int value stream.
func Ints(xs []int64) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = I(x)
	}
	return out
}

// Bools converts a bool slice into a Bool value stream.
func Bools(xs []bool) []Value {
	out := make([]Value, len(xs))
	for i, x := range xs {
		out[i] = B(x)
	}
	return out
}

// Floats converts a Real/Int value stream back to float64s; it panics on
// booleans.
func Floats(vs []Value) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = v.AsReal()
	}
	return out
}

// jsonValue is the serialized form of a Value.
type jsonValue struct {
	Kind string   `json:"k"`
	I    *int64   `json:"i,omitempty"`
	R    *float64 `json:"r,omitempty"`
	B    *bool    `json:"b,omitempty"`
}

// MarshalJSON encodes the value as a small tagged object, preserving the
// scalar domain exactly (reals round-trip via strconv's shortest form).
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{}
	switch v.kind {
	case Int:
		jv.Kind = "int"
		jv.I = &v.i
	case Real:
		jv.Kind = "real"
		jv.R = &v.r
	case Bool:
		jv.Kind = "bool"
		jv.B = &v.b
	default:
		jv.Kind = "invalid"
	}
	return json.Marshal(jv)
}

// UnmarshalJSON decodes a value written by MarshalJSON.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	switch jv.Kind {
	case "int":
		if jv.I == nil {
			return fmt.Errorf("value: int payload missing")
		}
		*v = I(*jv.I)
	case "real":
		if jv.R == nil {
			return fmt.Errorf("value: real payload missing")
		}
		*v = R(*jv.R)
	case "bool":
		if jv.B == nil {
			return fmt.Errorf("value: bool payload missing")
		}
		*v = B(*jv.B)
	case "invalid":
		*v = Value{}
	default:
		return fmt.Errorf("value: unknown kind %q", jv.Kind)
	}
	return nil
}
