package opt

import (
	"testing"

	"staticpipe/internal/exec"
	"staticpipe/internal/graph"
	"staticpipe/internal/value"
)

// buildDup builds a graph with obvious duplicates: two identical gates on
// one source, two identical control generators, and two identical adders.
func buildDup() *graph.Graph {
	g := graph.New()
	src := g.AddSource("C", value.Reals([]float64{1, 2, 3, 4, 5, 6}))
	mk := func() *graph.Node {
		ctl := g.AddCtl("w", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 4, Suffix: []bool{false}})
		gate := g.Add(graph.OpTGate, "sel")
		g.Connect(ctl, gate, 0)
		a := g.Connect(src, gate, 1)
		a.Skew = 1
		add := g.Add(graph.OpAdd, "")
		g.Connect(gate, add, 0)
		g.SetLiteral(add, 1, value.R(10))
		return add
	}
	l, r := mk(), mk()
	mul := g.Add(graph.OpMul, "")
	g.Connect(l, mul, 0)
	g.Connect(r, mul, 1)
	g.Connect(mul, g.AddSink("out"), 0)
	return g
}

func TestDedupMergesDuplicates(t *testing.T) {
	g := buildDup()
	before := g.NumNodes() // src + 2*(ctl+gate+add) + mul + sink = 9
	d, removed := Dedup(g)
	if removed != 3 { // one ctl, one gate, one add
		t.Errorf("removed %d cells, want 3", removed)
	}
	if d.NumNodes() != before-3 {
		t.Errorf("deduped graph has %d cells", d.NumNodes())
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Identical results.
	want, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(d, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	w, o := want.Output("out"), got.Output("out")
	if len(w) != len(o) {
		t.Fatalf("output lengths %d vs %d", len(w), len(o))
	}
	for i := range w {
		if !value.Equal(w[i], o[i]) {
			t.Errorf("out[%d] = %v, want %v", i, o[i], w[i])
		}
	}
}

func TestDedupKeepsDistinct(t *testing.T) {
	// Same ops but different literals must not merge.
	g := graph.New()
	src := g.AddSource("C", value.Reals([]float64{1, 2, 3}))
	a1 := g.Add(graph.OpAdd, "")
	g.Connect(src, a1, 0)
	g.SetLiteral(a1, 1, value.R(1))
	a2 := g.Add(graph.OpAdd, "")
	g.Connect(src, a2, 0)
	g.SetLiteral(a2, 1, value.R(2))
	mul := g.Add(graph.OpMul, "")
	g.Connect(a1, mul, 0)
	g.Connect(a2, mul, 1)
	g.Connect(mul, g.AddSink("out"), 0)
	_, removed := Dedup(g)
	if removed != 0 {
		t.Errorf("removed %d cells from a duplicate-free graph", removed)
	}
}

func TestDedupSkipsLoops(t *testing.T) {
	// Two identical accumulator loops must both survive: their cells sit on
	// feedback cycles.
	g := graph.New()
	mkLoop := func(label string) {
		a := g.AddSource(label, value.Ints([]int64{1, 2, 3}))
		add := g.Add(graph.OpAdd, "")
		merge := g.Add(graph.OpMerge, "")
		g.Connect(g.AddCtl(label+"ctl", graph.Pattern{Prefix: []bool{false}, Body: []bool{true}, Repeat: 3}), merge, 0)
		g.Connect(a, add, 0)
		g.Connect(add, merge, 1)
		g.SetLiteral(merge, 2, value.I(0))
		gp := g.AddGate(merge)
		g.Connect(g.AddCtl(label+"fb", graph.Pattern{Body: []bool{true}, Repeat: 3, Suffix: []bool{false}}), merge, gp)
		fb := g.ConnectGated(merge, gp, add, 1)
		fb.Feedback = true
		g.Connect(merge, g.AddSink(label+"x"), 0)
	}
	mkLoop("a")
	mkLoop("b")
	before := g.NumNodes()
	d, removed := Dedup(g)
	// Sources differ by label; ctl gens differ by... identical patterns DO
	// merge (they are outside the cycles), but the loop cells must not.
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	adders, merges := 0, 0
	for _, n := range d.Nodes() {
		switch n.Op {
		case graph.OpAdd:
			adders++
		case graph.OpMerge:
			merges++
		}
	}
	if adders != 2 || merges != 2 {
		t.Errorf("loop cells merged: %d adders, %d merges (want 2/2)", adders, merges)
	}
	if before-d.NumNodes() != removed {
		t.Errorf("removed accounting off")
	}
	// Results unchanged.
	want, err := exec.Run(g, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Run(d, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, label := range []string{"ax", "bx"} {
		w, o := want.Output(label), got.Output(label)
		if len(w) != len(o) {
			t.Fatalf("%s lengths differ", label)
		}
		for i := range w {
			if !value.Equal(w[i], o[i]) {
				t.Errorf("%s[%d] differs", label, i)
			}
		}
	}
}

func TestDedupKeepsEmptyInputSources(t *testing.T) {
	// Two placeholder input sources (distinct program inputs) must never
	// merge even though both are empty.
	g := graph.New()
	a := g.AddSource("A", []value.Value{})
	b := g.AddSource("B", []value.Value{})
	add := g.Add(graph.OpAdd, "")
	g.Connect(a, add, 0)
	g.Connect(b, add, 1)
	g.Connect(add, g.AddSink("out"), 0)
	_, removed := Dedup(g)
	if removed != 0 {
		t.Errorf("merged %d input placeholders", removed)
	}
}
