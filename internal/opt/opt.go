// Package opt implements machine-independent optimization of instruction
// graphs, the kind of compiler polish the paper leaves to "further study"
// (§9's compiler design remark).
//
// The one pass implemented is common-cell elimination (hash-consing):
// structurally identical cells fed by identical operands compute identical
// streams, so one cell with fanout replaces them all. Compiled blocks
// produce duplicates routinely — repeated references A[i] in one
// expression each emit their own selection gate, and different references
// often share a control pattern. Cells on feedback cycles are left alone
// (their streams depend on loop state, and cycle-aware hash-consing buys
// nothing for the paper's graphs).
//
// The pass runs before balancing: fewer cells also means fewer paths for
// the balancer to equalize.
//
// Sharing a generator or gate across regions with different dynamic
// behaviour — e.g. a control generator consumed both by a free-running
// forall region and by a for-iter loop whose fill transient briefly stalls
// its consumers — couples those regions through the shared cell's
// acknowledge discipline (measured in experiment E17). On a balanced graph
// results and drainage are unchanged; on an UNBALANCED graph the coupling
// can deadlock the pipeline entirely (found by the differential pass
// harness). Dedup must therefore always be followed by a balancing pass;
// the pass manager enforces this by appending one (with a warning) to any
// pipeline where dedup would otherwise run last, so a deduped graph that
// leaves compilation is always balanced and live. The pass is opt-in
// (Options.Dedup), matching the paper's default of one generator per gate.
package opt

import (
	"fmt"
	"strings"

	"staticpipe/internal/graph"
)

// Dedup returns a semantically equivalent graph with structurally duplicate
// cells merged, and the number of cells removed. The input graph is not
// modified.
func Dedup(g *graph.Graph) (*graph.Graph, int) {
	n := g.NumNodes()
	inCycle := g.OnCycle()

	// rep maps every old node to its representative old node.
	rep := make([]graph.NodeID, n)
	for i := range rep {
		rep[i] = graph.NodeID(i)
	}
	byKey := map[string]graph.NodeID{}

	// Process in topological order of the acyclic part so operand
	// representatives are final before a node is keyed. Cycle nodes (and
	// anything downstream of nothing) keep themselves.
	order := topoOrder(g)
	for _, id := range order {
		nd := g.Node(id)
		if inCycle[id] || !dedupable(nd) {
			continue
		}
		key := nodeKey(g, nd, rep)
		if prev, ok := byKey[key]; ok {
			rep[id] = prev
		} else {
			byKey[key] = id
		}
	}

	// Rebuild the graph with representatives only.
	out := graph.New()
	newOf := make(map[graph.NodeID]*graph.Node, n)
	removed := 0
	for _, nd := range g.Nodes() {
		if rep[nd.ID] != nd.ID {
			removed++
			continue
		}
		c := out.Add(nd.Op, nd.Label)
		c.Cap = nd.Cap
		c.Stream = nd.Stream
		c.Pattern = nd.Pattern
		c.Buffer = nd.Buffer
		for len(c.In) < len(nd.In) {
			out.AddGate(c)
		}
		newOf[nd.ID] = c
	}
	for _, nd := range g.Nodes() {
		if rep[nd.ID] != nd.ID {
			continue
		}
		for p, in := range nd.In {
			if in.Literal != nil {
				out.SetLiteral(newOf[nd.ID], p, *in.Literal)
			}
		}
	}
	for _, a := range g.Arcs() {
		to := g.Node(a.To)
		if rep[to.ID] != to.ID {
			continue // the representative's own input arcs stand in
		}
		from := newOf[rep[a.From]]
		na := out.ConnectGated(from, a.Gate, newOf[to.ID], a.ToPort)
		if a.Init != nil {
			out.SetInit(na, *a.Init)
		}
		na.Feedback = a.Feedback
		na.Rigid = a.Rigid
		na.Skew = a.Skew
		na.Marking = a.Marking
	}
	return out, removed
}

// dedupable reports whether merging this cell kind is sound and useful.
func dedupable(n *graph.Node) bool {
	switch n.Op {
	case graph.OpSink:
		return false // sinks are observation points, keyed by label
	case graph.OpSource:
		// Input sources are bound to data at run time; only sources that
		// already carry identical streams (compiler-materialized constants)
		// may merge, which nodeKey handles — but empty-stream sources are
		// placeholders for distinct program inputs.
		return len(n.Stream) > 0
	default:
		return true
	}
}

// nodeKey builds a structural identity string for the cell.
func nodeKey(g *graph.Graph, n *graph.Node, rep []graph.NodeID) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|", n.Op, n.Cap)
	if n.Op == graph.OpSource {
		fmt.Fprintf(&b, "src:%s:", n.Label)
		for _, v := range n.Stream {
			fmt.Fprintf(&b, "%s,", v)
		}
	}
	if n.Op == graph.OpCtlGen {
		fmt.Fprintf(&b, "ctl:%s", n.Pattern)
	}
	for p, in := range n.In {
		if in.Literal != nil {
			fmt.Fprintf(&b, "|p%d=#%s", p, in.Literal)
		} else if in.Arc != nil {
			fmt.Fprintf(&b, "|p%d<-%d:g%d:s%d:i%v", p, rep[in.Arc.From], in.Arc.Gate, in.Arc.Skew, in.Arc.Init)
		} else {
			fmt.Fprintf(&b, "|p%d=?", p)
		}
	}
	return b.String()
}

// topoOrder returns node ids with every acyclic predecessor before its
// consumers; nodes on cycles appear in id order at their first possible
// position (they are never deduped, so their exact position is moot).
func topoOrder(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	state := make([]uint8, n) // 0 unvisited, 1 visiting, 2 done
	order := make([]graph.NodeID, 0, n)
	var visit func(id graph.NodeID)
	visit = func(id graph.NodeID) {
		if state[id] != 0 {
			return
		}
		state[id] = 1
		for _, in := range g.Node(id).In {
			if in.Arc != nil && state[in.Arc.From] == 0 {
				visit(in.Arc.From)
			}
		}
		state[id] = 2
		order = append(order, id)
	}
	for _, nd := range g.Nodes() {
		visit(nd.ID)
	}
	return order
}
