package progs

import (
	"testing"

	"staticpipe/internal/core"
)

// TestAllProgramsCompileAndValidate compiles every bundled program,
// cross-checks the compiled graph against the reference interpreter, and
// confirms the full-pipelining headline where it applies.
func TestAllProgramsCompileAndValidate(t *testing.T) {
	for _, p := range []Program{
		Fig2(64), Fig4(48), Fig5(64), Example1(32), Example2(32), Fig3(32), Weather(40),
	} {
		t.Run(p.Name, func(t *testing.T) {
			u, err := core.Compile(p.Source, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := u.Validate(p.Inputs, 1e-9); err != nil {
				t.Fatal(err)
			}
			res, err := u.Run(p.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			// The paper's own figures all sustain the maximum rate II = 2.
			// The weather kernel composes a data-dependent conditional
			// block with a deep recurrence consumer; runs of same-branch
			// tokens briefly backpressure the shared field stream under
			// the one-token-per-arc discipline, costing ~10% of the
			// maximum rate (measured II ≈ 2.2; see EXPERIMENTS.md).
			wantII := 2.0
			if p.Name == "weather" {
				wantII = 2.3
			}
			if ii := res.II(p.Output); ii > wantII {
				t.Errorf("%s: II = %v, want ≤ %v", p.Name, ii, wantII)
			}
			if !res.Exec.Clean {
				t.Errorf("%s: not clean: %v", p.Name, res.Exec.Stalled)
			}
		})
	}
}

func TestInputsMatchDeclaredRanges(t *testing.T) {
	for _, p := range []Program{Fig2(16), Fig4(16), Fig5(16), Example1(16), Example2(16), Fig3(16), Weather(16)} {
		u, err := core.Compile(p.Source, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		for _, in := range u.Checked.Inputs {
			vals, ok := p.Inputs[in.Name]
			if !ok {
				t.Errorf("%s: missing input %s", p.Name, in.Name)
				continue
			}
			if len(vals) != in.Len() {
				t.Errorf("%s: input %s has %d values, declared %d", p.Name, in.Name, len(vals), in.Len())
			}
		}
		if _, ok := u.Compiled.Outputs[p.Output]; !ok {
			t.Errorf("%s: output %s not declared", p.Name, p.Output)
		}
	}
}

func TestSynth(t *testing.T) {
	for _, kind := range []string{"ramp", "sin", "const", "alt", "anything-else"} {
		vs := Synth(kind, 6)
		if len(vs) != 6 {
			t.Fatalf("%s: %d values", kind, len(vs))
		}
	}
	if Synth("const", 3)[2].AsReal() != 1 {
		t.Error("const fill")
	}
	if Synth("alt", 4)[1].AsReal() != -1 {
		t.Error("alt fill")
	}
	if Synth("ramp", 4)[3].AsReal() != 3 {
		t.Error("ramp fill")
	}
}
